#pragma once

#include <vector>

#include "alloc/allocator.hpp"
#include "mesh/page_table.hpp"

namespace procsim::alloc {

/// Paging strategy (Lo et al., TPDS 1997). The mesh is tiled into pages of
/// side 2^size_index; a page is the allocation unit and pages are handed out
/// in indexing order (the paper's main results use row-major). Paging(0)
/// has one-node pages, hence no internal fragmentation; larger pages trade
/// internal fragmentation for contiguity.
class PagingAllocator final : public Allocator {
 public:
  PagingAllocator(mesh::Geometry geom, std::int32_t size_index,
                  mesh::PageIndexing indexing = mesh::PageIndexing::kRowMajor);

  [[nodiscard]] std::optional<Placement> allocate(const Request& req) override;
  [[nodiscard]] bool can_allocate(const Request& req) const override;
  void release(const Placement& placement) override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] bool is_noncontiguous() const override { return true; }
  void reset() override;

  [[nodiscard]] const mesh::PageTable& pages() const noexcept { return table_; }
  [[nodiscard]] std::size_t free_pages() const noexcept { return free_page_count_; }

 private:
  mesh::PageTable table_;
  std::vector<std::uint8_t> page_busy_;  // by page index
  std::size_t free_page_count_;
};

}  // namespace procsim::alloc
