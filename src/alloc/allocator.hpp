#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "mesh/coord.hpp"
#include "mesh/mesh_state.hpp"
#include "mesh/occupancy_index.hpp"
#include "mesh/submesh.hpp"

namespace procsim::obs {
class Recorder;
}  // namespace procsim::obs

namespace procsim::alloc {

/// An allocation request. Stochastic workloads request a sub-mesh shape
/// (a = width, b = length) with processors == a*b; trace-driven workloads
/// request `processors` directly and the shape is a derived bounding hint
/// (see workload::shape_for_processors).
struct Request {
  std::int32_t width{1};       ///< a
  std::int32_t length{1};      ///< b
  std::int32_t processors{1};  ///< p, the processors that actually compute
};

/// The outcome of a successful allocation.
struct Placement {
  /// Disjoint rectangles whose processors are held by the job.
  std::vector<mesh::SubMesh> blocks;
  /// Exactly `Request::processors` node ids that run the job and exchange
  /// messages; a subset of the blocks' nodes in deterministic scan order.
  std::vector<mesh::NodeId> compute_nodes;
  /// Total processors held — may exceed compute_nodes.size() (internal
  /// fragmentation: Paging with pages > 1 node, GABL's a*b bounding).
  std::int32_t allocated{0};
  /// Strategy-private bookkeeping (page indices, buddy block ids).
  std::vector<std::int32_t> tags;
};

/// Common interface of every allocation strategy. Each strategy owns the
/// mesh occupancy (one strategy drives one simulated machine) plus whatever
/// auxiliary index it needs, and guarantees:
///   * allocate() either returns a Placement of disjoint, previously-free
///     blocks (now marked busy) or changes nothing;
///   * release() returns exactly the Placement's blocks to the free pool.
///
/// The base keeps two views of the occupancy in lock-step: the per-node
/// MeshState (ground truth for tests and diagnostics) and the bit-parallel
/// OccupancyIndex that answers the strategies' free-rectangle queries without
/// any per-event snapshot rebuild. Strategies mutate occupancy only through
/// occupy()/vacate(), which update both.
class Allocator {
 public:
  explicit Allocator(mesh::Geometry geom) : state_(geom), index_(geom) {}
  virtual ~Allocator() = default;

  Allocator(const Allocator&) = delete;
  Allocator& operator=(const Allocator&) = delete;

  /// Attempts to place `req` now; nullopt means the request must wait.
  [[nodiscard]] virtual std::optional<Placement> allocate(const Request& req) = 0;

  /// The scheduler's transactional probe: true iff allocate(req) would
  /// return a placement at this instant. Exact for every shipped strategy
  /// and side-effect free — non-contiguous strategies answer from the free
  /// count, the contiguous baselines from one occupancy-index fit query —
  /// so a scheduling pass may probe many queued jobs without perturbing
  /// allocator state (Random's RNG included).
  [[nodiscard]] virtual bool can_allocate(const Request& req) const = 0;

  /// The probe-at-instant: true iff allocate(req) would succeed once every
  /// node of `released` (blocks of running jobs projected to finish by then)
  /// had been returned to the free pool. Reservation-aware schedulers use it
  /// to place a blocked job's reservation at a *shape-feasible* release
  /// instant instead of a merely count-feasible one. With an empty
  /// `released` this is exactly can_allocate(req).
  ///
  /// The default is the count model every non-contiguous strategy's
  /// can_allocate already uses (free + released area >= need) — exact for
  /// them, an optimistic approximation for strategies whose feasibility
  /// depends on arrangement; the contiguous baselines override it with a
  /// hypothetical-occupancy index query, which is exact.
  [[nodiscard]] virtual bool can_allocate_with_free(
      const Request& req, const std::vector<mesh::SubMesh>& released) const;

  /// Returns a placement obtained from allocate() on this allocator.
  virtual void release(const Placement& placement) = 0;

  [[nodiscard]] virtual std::string name() const = 0;

  /// True when the strategy is non-contiguous in the paper's sense:
  /// allocation succeeds whenever enough processors are free, regardless of
  /// their arrangement (no external fragmentation).
  [[nodiscard]] virtual bool is_noncontiguous() const = 0;

  /// Restores the pristine empty mesh (between replications).
  virtual void reset() {
    state_.clear();
    index_.clear();
  }

  [[nodiscard]] const mesh::MeshState& state() const noexcept { return state_; }
  [[nodiscard]] const mesh::OccupancyIndex& index() const noexcept { return index_; }
  [[nodiscard]] const mesh::Geometry& geometry() const noexcept {
    return state_.geometry();
  }
  [[nodiscard]] std::int32_t free_processors() const noexcept {
    return index_.free_count();
  }

  /// Attaches (nullptr detaches) the observability recorder. Observation-only
  /// like every obs hook: strategies note attempts/fallbacks through it, never
  /// read it. SystemSim::run wires this from SystemConfig::recorder.
  void set_recorder(obs::Recorder* rec) noexcept { rec_ = rec; }

 protected:
  /// Marks `s` (all currently free) busy in both occupancy views.
  void occupy(const mesh::SubMesh& s) {
    state_.allocate(s);
    index_.allocate(s);
  }
  /// Returns `s` (all currently busy) to the free pool in both views.
  void vacate(const mesh::SubMesh& s) {
    state_.release(s);
    index_.release(s);
  }
  void occupy(mesh::NodeId n) {
    state_.allocate(n);
    index_.allocate(n);
  }
  void vacate(mesh::NodeId n) {
    state_.release(n);
    index_.release(n);
  }

  /// Fills placement.compute_nodes with the first `p` nodes of the blocks in
  /// block order (row-major inside each block) and sets `allocated`.
  static void finalize_placement(Placement& placement, const mesh::Geometry& geom,
                                 std::int32_t p);

  /// Strategy-level observability notes (no-ops when detached). Strategies
  /// call note_attempt() at allocate() entry and note_fallback() when they
  /// leave their contiguous fast path (GABL carving, MBS buddy splitting).
  void note_attempt(const Request& req) const;
  void note_fallback(const Request& req) const;

 private:
  mesh::MeshState state_;
  mesh::OccupancyIndex index_;
  obs::Recorder* rec_{nullptr};  ///< non-owning; null = observability off
};

/// Validates a request against a geometry (shared by all strategies).
/// Throws std::invalid_argument for non-positive or oversized requests.
void validate_request(const Request& req, const mesh::Geometry& geom);

}  // namespace procsim::alloc
