#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "mesh/coord.hpp"
#include "mesh/mesh_state.hpp"
#include "mesh/submesh.hpp"

namespace procsim::alloc {

/// An allocation request. Stochastic workloads request a sub-mesh shape
/// (a = width, b = length) with processors == a*b; trace-driven workloads
/// request `processors` directly and the shape is a derived bounding hint
/// (see workload::shape_for_processors).
struct Request {
  std::int32_t width{1};       ///< a
  std::int32_t length{1};      ///< b
  std::int32_t processors{1};  ///< p, the processors that actually compute
};

/// The outcome of a successful allocation.
struct Placement {
  /// Disjoint rectangles whose processors are held by the job.
  std::vector<mesh::SubMesh> blocks;
  /// Exactly `Request::processors` node ids that run the job and exchange
  /// messages; a subset of the blocks' nodes in deterministic scan order.
  std::vector<mesh::NodeId> compute_nodes;
  /// Total processors held — may exceed compute_nodes.size() (internal
  /// fragmentation: Paging with pages > 1 node, GABL's a*b bounding).
  std::int32_t allocated{0};
  /// Strategy-private bookkeeping (page indices, buddy block ids).
  std::vector<std::int32_t> tags;
};

/// Common interface of every allocation strategy. Each strategy owns the
/// mesh occupancy (one strategy drives one simulated machine) plus whatever
/// auxiliary index it needs, and guarantees:
///   * allocate() either returns a Placement of disjoint, previously-free
///     blocks (now marked busy) or changes nothing;
///   * release() returns exactly the Placement's blocks to the free pool.
class Allocator {
 public:
  explicit Allocator(mesh::Geometry geom) : state_(geom) {}
  virtual ~Allocator() = default;

  Allocator(const Allocator&) = delete;
  Allocator& operator=(const Allocator&) = delete;

  /// Attempts to place `req` now; nullopt means the request must wait.
  [[nodiscard]] virtual std::optional<Placement> allocate(const Request& req) = 0;

  /// Returns a placement obtained from allocate() on this allocator.
  virtual void release(const Placement& placement) = 0;

  [[nodiscard]] virtual std::string name() const = 0;

  /// True when the strategy is non-contiguous in the paper's sense:
  /// allocation succeeds whenever enough processors are free, regardless of
  /// their arrangement (no external fragmentation).
  [[nodiscard]] virtual bool is_noncontiguous() const = 0;

  /// Restores the pristine empty mesh (between replications).
  virtual void reset() { state_.clear(); }

  [[nodiscard]] const mesh::MeshState& state() const noexcept { return state_; }
  [[nodiscard]] const mesh::Geometry& geometry() const noexcept {
    return state_.geometry();
  }
  [[nodiscard]] std::int32_t free_processors() const noexcept {
    return state_.free_count();
  }

 protected:
  [[nodiscard]] mesh::MeshState& mutable_state() noexcept { return state_; }

  /// Fills placement.compute_nodes with the first `p` nodes of the blocks in
  /// block order (row-major inside each block) and sets `allocated`.
  static void finalize_placement(Placement& placement, const mesh::Geometry& geom,
                                 std::int32_t p);

 private:
  mesh::MeshState state_;
};

/// Validates a request against a geometry (shared by all strategies).
/// Throws std::invalid_argument for non-positive or oversized requests.
void validate_request(const Request& req, const mesh::Geometry& geom);

}  // namespace procsim::alloc
