#pragma once

#include <cstdint>
#include <vector>

#include "alloc/allocator.hpp"

namespace procsim::alloc {

/// Greedy Available Busy List strategy (Bani-Mohammad et al., SIMPAT 2007).
///
/// For a request S(a, b):
///  1. If a suitable free a×b (or rotated b×a) sub-mesh exists, allocate it
///     whole — the job runs contiguously.
///  2. Otherwise, provided at least a*b processors are free, greedily carve:
///     allocate the largest free sub-mesh fitting in (a, b), then repeatedly
///     the largest free sub-mesh whose sides do not exceed the previous
///     piece's sides, trimmed so the running total never exceeds a*b, until
///     exactly a*b processors are held.
/// Allocation therefore succeeds iff free >= a*b, while keeping a high
/// degree of contiguity (few large pieces), which is what cuts message
/// distances and contention relative to Paging and MBS.
///
/// Allocated pieces live in a busy list (kept here per the published
/// algorithm and exposed for tests); the occupancy bitmap mirrors it.
class GablAllocator final : public Allocator {
 public:
  explicit GablAllocator(mesh::Geometry geom) : Allocator(geom) {}

  [[nodiscard]] std::optional<Placement> allocate(const Request& req) override;
  void release(const Placement& placement) override;
  [[nodiscard]] std::string name() const override { return "GABL"; }
  [[nodiscard]] bool is_noncontiguous() const override { return true; }
  void reset() override;

  /// All sub-meshes currently allocated across jobs, in allocation order.
  [[nodiscard]] const std::vector<mesh::SubMesh>& busy_list() const noexcept {
    return busy_list_;
  }

 private:
  std::vector<mesh::SubMesh> busy_list_;
};

}  // namespace procsim::alloc
