#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "alloc/allocator.hpp"

namespace procsim::alloc {

/// Greedy Available Busy List strategy (Bani-Mohammad et al., SIMPAT 2007).
///
/// For a request S(a, b):
///  1. If a suitable free a×b (or rotated b×a) sub-mesh exists, allocate it
///     whole — the job runs contiguously.
///  2. Otherwise, provided at least a*b processors are free, greedily carve:
///     allocate the largest free sub-mesh fitting in (a, b), then repeatedly
///     the largest free sub-mesh whose sides do not exceed the previous
///     piece's sides, trimmed so the running total never exceeds a*b, until
///     exactly a*b processors are held.
/// Allocation therefore succeeds iff free >= a*b, while keeping a high
/// degree of contiguity (few large pieces), which is what cuts message
/// distances and contention relative to Paging and MBS.
///
/// Allocated pieces live in a busy list (kept here per the published
/// algorithm and exposed for tests); the occupancy bitmap mirrors it. The
/// list's order is unspecified: a side index maps each block to its slot so
/// release() is O(1) per block (swap-and-pop) instead of a linear find over
/// every busy block in the machine — the published algorithm never reads the
/// list's order, only its contents.
class GablAllocator final : public Allocator {
 public:
  explicit GablAllocator(mesh::Geometry geom) : Allocator(geom) {}

  [[nodiscard]] std::optional<Placement> allocate(const Request& req) override;
  [[nodiscard]] bool can_allocate(const Request& req) const override;
  /// Count model against GABL's bounding-area (w×l) guard.
  [[nodiscard]] bool can_allocate_with_free(
      const Request& req, const std::vector<mesh::SubMesh>& released) const override;
  void release(const Placement& placement) override;
  [[nodiscard]] std::string name() const override { return "GABL"; }
  [[nodiscard]] bool is_noncontiguous() const override { return true; }
  void reset() override;

  /// All sub-meshes currently allocated across jobs (unspecified order).
  [[nodiscard]] const std::vector<mesh::SubMesh>& busy_list() const noexcept {
    return busy_list_;
  }

 private:
  struct BlockHash {
    std::size_t operator()(const mesh::SubMesh& s) const noexcept {
      // Pack base and end into one 64-bit word each, then mix (splitmix64).
      std::uint64_t h = (static_cast<std::uint64_t>(static_cast<std::uint32_t>(s.x1)) << 32 |
                         static_cast<std::uint32_t>(s.y1)) ^
                        ((static_cast<std::uint64_t>(static_cast<std::uint32_t>(s.x2)) << 32 |
                          static_cast<std::uint32_t>(s.y2)) *
                         0x9E3779B97F4A7C15ULL);
      h ^= h >> 30;
      h *= 0xBF58476D1CE4E5B9ULL;
      h ^= h >> 27;
      return static_cast<std::size_t>(h);
    }
  };

  std::vector<mesh::SubMesh> busy_list_;
  std::unordered_map<mesh::SubMesh, std::size_t, BlockHash> busy_slot_;  ///< block -> index
};

}  // namespace procsim::alloc
