#include "alloc/paging.hpp"

namespace procsim::alloc {

PagingAllocator::PagingAllocator(mesh::Geometry geom, std::int32_t size_index,
                                 mesh::PageIndexing indexing)
    : Allocator(geom),
      table_(geom, size_index, indexing),
      page_busy_(table_.page_count(), 0),
      free_page_count_(table_.page_count()) {}

std::optional<Placement> PagingAllocator::allocate(const Request& req) {
  validate_request(req, geometry());
  note_attempt(req);
  // Pages are whole allocation units, so under pure Paging the free
  // processor count equals the capacity of the free pages.
  if (free_processors() < req.processors) return std::nullopt;

  Placement placement;
  // Reserve a lower-bound page count (full side² pages); clipped edge pages
  // can only raise it slightly, so growth reallocations are rare.
  const std::int32_t full_page = table_.page_side() * table_.page_side();
  const std::size_t pages_hint =
      static_cast<std::size_t>((req.processors + full_page - 1) / full_page);
  placement.tags.reserve(pages_hint);
  placement.blocks.reserve(pages_hint);
  std::int32_t capacity = 0;
  for (std::size_t i = 0; i < table_.page_count() && capacity < req.processors; ++i) {
    if (page_busy_[i]) continue;
    placement.tags.push_back(static_cast<std::int32_t>(i));
    placement.blocks.push_back(table_.page(i));
    capacity += table_.page(i).area();
  }
  if (capacity < req.processors) return std::nullopt;  // unreachable under pure Paging

  for (const std::int32_t tag : placement.tags) {
    page_busy_[static_cast<std::size_t>(tag)] = 1;
    --free_page_count_;
  }
  for (const mesh::SubMesh& b : placement.blocks) occupy(b);
  finalize_placement(placement, geometry(), req.processors);
  return placement;
}

bool PagingAllocator::can_allocate(const Request& req) const {
  validate_request(req, geometry());
  // Pages are whole allocation units, so the free processor count equals the
  // free pages' capacity: the same guard allocate() uses.
  return free_processors() >= req.processors;
}

void PagingAllocator::release(const Placement& placement) {
  for (const std::int32_t tag : placement.tags) {
    page_busy_.at(static_cast<std::size_t>(tag)) = 0;
    ++free_page_count_;
  }
  for (const mesh::SubMesh& b : placement.blocks) vacate(b);
}

std::string PagingAllocator::name() const {
  return "Paging(" + std::to_string(table_.size_index()) + ")";
}

void PagingAllocator::reset() {
  Allocator::reset();
  std::fill(page_busy_.begin(), page_busy_.end(), std::uint8_t{0});
  free_page_count_ = table_.page_count();
}

}  // namespace procsim::alloc
