#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "alloc/allocator.hpp"
#include "mesh/page_table.hpp"

namespace procsim::alloc {

/// Strategy families the registry can instantiate.
enum class Family { kGabl, kPaging, kMbs, kFirstFit, kBestFit, kRandom };

/// Result of parsing an allocator name: the family, the canonical spelling
/// (which Allocator::name() reproduces), and family-specific parameters.
struct ParsedAllocatorName {
  Family family{Family::kGabl};
  std::string canonical;
  std::int32_t paging_size_index{0};
};

/// Construction knobs that are not part of the name.
struct AllocatorParams {
  /// Experiment seed; Random derives its private RNG stream from it.
  std::uint64_t seed{1};
  mesh::PageIndexing paging_indexing{mesh::PageIndexing::kRowMajor};
};

/// Case-insensitive parse of an allocator name. Accepted spellings: "GABL",
/// "MBS", "FirstFit", "BestFit", "Random", and "Paging" / "Paging(k)" with
/// page-size index 0 <= k <= 15 (PageTable's bound, enforced here so a name
/// that parses can always be constructed). Returns nullopt for anything else.
[[nodiscard]] std::optional<ParsedAllocatorName> parse_allocator_name(
    std::string_view name);

/// Canonical names accepted by make_allocator (Paging listed as "Paging(0)").
[[nodiscard]] std::vector<std::string> known_allocators();

/// Name-based factory for drivers and sweeps; guarantees
/// make_allocator(name, ...)->name() equals the canonical spelling. Throws
/// std::invalid_argument (listing the known names) when `name` doesn't parse.
[[nodiscard]] std::unique_ptr<Allocator> make_allocator(
    const std::string& name, mesh::Geometry geom, const AllocatorParams& params = {});

}  // namespace procsim::alloc
