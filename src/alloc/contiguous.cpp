#include "alloc/contiguous.hpp"

#include <algorithm>

namespace procsim::alloc {

std::optional<Placement> ContiguousAllocator::allocate(const Request& req) {
  validate_request(req, geometry());
  note_attempt(req);
  const std::int32_t a = std::min(req.width, geometry().width());
  const std::int32_t b = std::min(req.length, geometry().length());

  std::optional<mesh::SubMesh> found;
  if (policy_ == ContiguousPolicy::kFirstFit) {
    found = index().first_fit_rotatable(a, b);
  } else {
    found = index().best_fit(a, b);
    if (!found && a != b) found = index().best_fit(b, a);
  }
  if (!found) return std::nullopt;

  Placement placement;
  placement.blocks.push_back(*found);
  occupy(*found);
  finalize_placement(placement, geometry(), req.processors);
  return placement;
}

bool ContiguousAllocator::can_allocate(const Request& req) const {
  validate_request(req, geometry());
  const std::int32_t a = std::min(req.width, geometry().width());
  const std::int32_t b = std::min(req.length, geometry().length());
  // Feasibility is rotation-symmetric and policy-independent: a best-fit
  // placement exists iff a first-fit one does, so the cheaper query answers
  // for both policies.
  return index().first_fit_rotatable(a, b).has_value();
}

bool ContiguousAllocator::can_allocate_with_free(
    const Request& req, const std::vector<mesh::SubMesh>& released) const {
  if (released.empty()) return can_allocate(req);  // no bitmap copy needed
  validate_request(req, geometry());
  const std::int32_t a = std::min(req.width, geometry().width());
  const std::int32_t b = std::min(req.length, geometry().length());
  // Same rotation-symmetric feasibility as can_allocate, on the bitmap with
  // the released blocks OR-ed back in.
  return index().first_fit_rotatable_assuming_free(a, b, released).has_value();
}

void ContiguousAllocator::release(const Placement& placement) {
  for (const mesh::SubMesh& blk : placement.blocks) vacate(blk);
}

}  // namespace procsim::alloc
