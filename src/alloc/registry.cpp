#include "alloc/registry.hpp"

#include <cctype>
#include <stdexcept>

#include "alloc/contiguous.hpp"
#include "alloc/gabl.hpp"
#include "alloc/mbs.hpp"
#include "alloc/paging.hpp"
#include "alloc/random_alloc.hpp"
#include "util/strings.hpp"

namespace procsim::alloc {
namespace {

using util::iequals;

/// Parses "Paging" (index 0) or "Paging(k)"; nullopt if not a Paging name.
[[nodiscard]] std::optional<std::int32_t> parse_paging(std::string_view name) {
  constexpr std::string_view kPrefix = "Paging";
  if (name.size() < kPrefix.size() ||
      !iequals(name.substr(0, kPrefix.size()), kPrefix))
    return std::nullopt;
  std::string_view rest = name.substr(kPrefix.size());
  if (rest.empty()) return 0;
  if (rest.size() < 3 || rest.front() != '(' || rest.back() != ')')
    return std::nullopt;
  rest = rest.substr(1, rest.size() - 2);
  std::int32_t k = 0;
  for (const char c : rest) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return std::nullopt;
    k = k * 10 + (c - '0');
    // Same bound PageTable::checked_page_side enforces, so a name that
    // parses here can never blow up later at construction time.
    if (k > 15) return std::nullopt;
  }
  return k;
}

}  // namespace

std::optional<ParsedAllocatorName> parse_allocator_name(std::string_view name) {
  if (iequals(name, "GABL"))
    return ParsedAllocatorName{Family::kGabl, "GABL", 0};
  if (iequals(name, "MBS")) return ParsedAllocatorName{Family::kMbs, "MBS", 0};
  if (iequals(name, "FirstFit"))
    return ParsedAllocatorName{Family::kFirstFit, "FirstFit", 0};
  if (iequals(name, "BestFit"))
    return ParsedAllocatorName{Family::kBestFit, "BestFit", 0};
  if (iequals(name, "Random"))
    return ParsedAllocatorName{Family::kRandom, "Random", 0};
  if (const auto k = parse_paging(name))
    return ParsedAllocatorName{Family::kPaging, "Paging(" + std::to_string(*k) + ")",
                               *k};
  return std::nullopt;
}

std::vector<std::string> known_allocators() {
  return {"GABL", "Paging(0)", "MBS", "FirstFit", "BestFit", "Random"};
}

std::unique_ptr<Allocator> make_allocator(const std::string& name,
                                          mesh::Geometry geom,
                                          const AllocatorParams& params) {
  const auto parsed = parse_allocator_name(name);
  if (!parsed) {
    std::string known;
    for (const std::string& n : known_allocators()) {
      if (!known.empty()) known += ", ";
      known += n;
    }
    throw std::invalid_argument("make_allocator: unknown allocator '" + name +
                                "' (known: " + known + ")");
  }
  switch (parsed->family) {
    case Family::kGabl:
      return std::make_unique<GablAllocator>(geom);
    case Family::kPaging:
      return std::make_unique<PagingAllocator>(geom, parsed->paging_size_index,
                                               params.paging_indexing);
    case Family::kMbs:
      return std::make_unique<MbsAllocator>(geom);
    case Family::kFirstFit:
      return std::make_unique<ContiguousAllocator>(geom, ContiguousPolicy::kFirstFit);
    case Family::kBestFit:
      return std::make_unique<ContiguousAllocator>(geom, ContiguousPolicy::kBestFit);
    case Family::kRandom:
      // Keep the historical seed derivation so fixed-seed experiment output
      // is unchanged by the registry refactor.
      return std::make_unique<RandomAllocator>(geom, params.seed ^ 0xA110CA7EULL);
  }
  throw std::logic_error("make_allocator: unhandled family");
}

}  // namespace procsim::alloc
