#pragma once

#include "alloc/allocator.hpp"

namespace procsim::alloc {

/// Placement rule of the contiguous baselines.
enum class ContiguousPolicy {
  kFirstFit,  ///< lowest row-major base that fits (Zhu 1992)
  kBestFit,   ///< fitting base with the fewest free border nodes
};

/// Contiguous sub-mesh allocation: the job gets a single free a×b sub-mesh
/// (rotation allowed) or waits. The paper's motivating baseline: contiguity
/// preserves network locality but suffers external fragmentation — a request
/// can starve while more than enough processors sit free but scattered.
class ContiguousAllocator final : public Allocator {
 public:
  ContiguousAllocator(mesh::Geometry geom, ContiguousPolicy policy)
      : Allocator(geom), policy_(policy) {}

  [[nodiscard]] std::optional<Placement> allocate(const Request& req) override;
  [[nodiscard]] bool can_allocate(const Request& req) const override;
  /// Exact: one hypothetical-occupancy index query (the scheduler's
  /// shape-aware reservation probe).
  [[nodiscard]] bool can_allocate_with_free(
      const Request& req, const std::vector<mesh::SubMesh>& released) const override;
  void release(const Placement& placement) override;
  [[nodiscard]] std::string name() const override {
    return policy_ == ContiguousPolicy::kFirstFit ? "FirstFit" : "BestFit";
  }
  [[nodiscard]] bool is_noncontiguous() const override { return false; }

 private:
  ContiguousPolicy policy_;
};

}  // namespace procsim::alloc
