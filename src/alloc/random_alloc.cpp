#include "alloc/random_alloc.hpp"

#include "des/distributions.hpp"

namespace procsim::alloc {

std::optional<Placement> RandomAllocator::allocate(const Request& req) {
  validate_request(req, geometry());
  note_attempt(req);
  if (free_processors() < req.processors) return std::nullopt;

  // Reused scratch: the free list is rebuilt in place each call instead of
  // allocating a fresh vector per request (this is the allocator's hot path).
  state().free_nodes_into(free_scratch_);
  std::vector<mesh::NodeId>& free = free_scratch_;
  // Partial Fisher-Yates: draw p distinct nodes uniformly.
  Placement placement;
  placement.blocks.reserve(static_cast<std::size_t>(req.processors));
  for (std::int32_t i = 0; i < req.processors; ++i) {
    const auto j = static_cast<std::size_t>(des::sample_uniform_int(
        rng_, i, static_cast<std::int64_t>(free.size()) - 1));
    std::swap(free[static_cast<std::size_t>(i)], free[j]);
    const mesh::Coord c = geometry().coord(free[static_cast<std::size_t>(i)]);
    placement.blocks.push_back(mesh::SubMesh{c.x, c.y, c.x, c.y});
    occupy(free[static_cast<std::size_t>(i)]);
  }
  finalize_placement(placement, geometry(), req.processors);
  return placement;
}

bool RandomAllocator::can_allocate(const Request& req) const {
  validate_request(req, geometry());
  // Any p free nodes do; crucially this draws nothing from rng_, so probing
  // leaves the strategy's placement sequence untouched.
  return free_processors() >= req.processors;
}

void RandomAllocator::release(const Placement& placement) {
  for (const mesh::SubMesh& blk : placement.blocks) vacate(blk);
}

}  // namespace procsim::alloc
