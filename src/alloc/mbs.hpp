#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "alloc/allocator.hpp"
#include "mesh/buddy.hpp"

namespace procsim::alloc {

/// Multiple Buddy Strategy (Lo et al., TPDS 1997).
///
/// The requested processor count p is factorised base 4,
///   p = sum_i d_i * (2^i × 2^i),  0 <= d_i <= 3,
/// and d_i square blocks of side 2^i are requested per order. A missing
/// block is produced by splitting a larger free square into four buddies; if
/// no larger square exists the block request itself is broken into four
/// requests one order down. MBS therefore allocates exactly p processors and
/// succeeds whenever p processors are free — but it seeks contiguity only
/// for requests of the form 2^n × 2^n, which is what makes it lose to
/// Paging(0) on real traces full of non-power-of-two sizes (paper, Fig. 2).
class MbsAllocator final : public Allocator {
 public:
  explicit MbsAllocator(mesh::Geometry geom);

  [[nodiscard]] std::optional<Placement> allocate(const Request& req) override;
  [[nodiscard]] bool can_allocate(const Request& req) const override;
  void release(const Placement& placement) override;
  [[nodiscard]] std::string name() const override { return "MBS"; }
  [[nodiscard]] bool is_noncontiguous() const override { return true; }
  void reset() override;

  /// Base-4 digits of p, least significant first: p = sum d[i] * 4^i.
  [[nodiscard]] static std::vector<std::int32_t> base4_factorize(std::int32_t p);

  [[nodiscard]] const mesh::BuddyTiling& tiling() const noexcept { return tiling_; }

 private:
  mesh::BuddyTiling tiling_;
};

}  // namespace procsim::alloc
