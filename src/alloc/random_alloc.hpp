#pragma once

#include <vector>

#include "alloc/allocator.hpp"
#include "des/rng.hpp"

namespace procsim::alloc {

/// Fully scattered non-contiguous allocation: p uniformly random free
/// processors, no contiguity effort at all. Not in the paper's comparison —
/// it is the lower bound for the `abl_contiguity` ablation, quantifying how
/// much GABL's contiguity actually buys over "just grab any free nodes".
class RandomAllocator final : public Allocator {
 public:
  RandomAllocator(mesh::Geometry geom, std::uint64_t seed)
      : Allocator(geom), rng_(seed) {}

  [[nodiscard]] std::optional<Placement> allocate(const Request& req) override;
  [[nodiscard]] bool can_allocate(const Request& req) const override;
  void release(const Placement& placement) override;
  [[nodiscard]] std::string name() const override { return "Random"; }
  [[nodiscard]] bool is_noncontiguous() const override { return true; }

 private:
  des::Xoshiro256SS rng_;
  std::vector<mesh::NodeId> free_scratch_;  ///< reused free-list buffer
};

}  // namespace procsim::alloc
