#include "alloc/allocator.hpp"

#include <stdexcept>
#include <utility>

#include "obs/recorder.hpp"

namespace procsim::alloc {

void Allocator::note_attempt(const Request& req) const {
  if (rec_ != nullptr) rec_->alloc_attempt(req.width, req.length, req.processors);
}

void Allocator::note_fallback(const Request& req) const {
  if (rec_ != nullptr) rec_->alloc_fallback(req.width, req.length, req.processors);
}

void Allocator::finalize_placement(Placement& placement, const mesh::Geometry& geom,
                                   std::int32_t p) {
  placement.allocated = 0;
  for (const mesh::SubMesh& b : placement.blocks) placement.allocated += b.area();
  placement.compute_nodes.clear();
  placement.compute_nodes.reserve(static_cast<std::size_t>(p));
  for (const mesh::SubMesh& b : placement.blocks) {
    for (std::int32_t y = b.y1; y <= b.y2 && std::cmp_less(placement.compute_nodes.size(), p); ++y)
      for (std::int32_t x = b.x1; x <= b.x2 && std::cmp_less(placement.compute_nodes.size(), p); ++x)
        placement.compute_nodes.push_back(geom.id(mesh::Coord{x, y}));
    if (std::cmp_greater_equal(placement.compute_nodes.size(), p)) break;
  }
  if (std::cmp_less(placement.compute_nodes.size(), p))
    throw std::logic_error("Allocator: placement holds fewer processors than requested");
}

bool Allocator::can_allocate_with_free(
    const Request& req, const std::vector<mesh::SubMesh>& released) const {
  if (released.empty()) return can_allocate(req);
  validate_request(req, geometry());
  std::int64_t extra = 0;
  for (const mesh::SubMesh& s : released) extra += s.area();
  return free_processors() + extra >= req.processors;
}

void validate_request(const Request& req, const mesh::Geometry& geom) {
  if (req.width <= 0 || req.length <= 0 || req.processors <= 0)
    throw std::invalid_argument("Request: non-positive dimensions");
  if (req.processors > geom.nodes())
    throw std::invalid_argument("Request: more processors than the mesh has");
}

}  // namespace procsim::alloc
