#include "alloc/gabl.hpp"

#include <algorithm>
#include <stdexcept>

namespace procsim::alloc {
namespace {

/// Largest sub-rectangle of a free w×l rectangle with area <= budget,
/// anchored at the rectangle's base. Maximises the kept area.
[[nodiscard]] mesh::SubMesh trim_to_budget(const mesh::SubMesh& found, std::int64_t budget) {
  if (found.area() <= budget) return found;
  std::int32_t best_w = 1;
  std::int32_t best_l = 1;
  std::int64_t best_area = 0;
  for (std::int32_t w = 1; w <= found.width(); ++w) {
    const std::int32_t l =
        std::min<std::int32_t>(found.length(), static_cast<std::int32_t>(budget / w));
    if (l < 1) break;
    const std::int64_t area = static_cast<std::int64_t>(w) * l;
    if (area > best_area) {
      best_area = area;
      best_w = w;
      best_l = l;
    }
  }
  return mesh::SubMesh::from_base(found.base(), best_w, best_l);
}

}  // namespace

std::optional<Placement> GablAllocator::allocate(const Request& req) {
  validate_request(req, geometry());
  note_attempt(req);
  const std::int64_t target = static_cast<std::int64_t>(req.width) * req.length;
  if (free_processors() < target) return std::nullopt;

  Placement placement;

  // The contiguous fast path tries the request as stated and rotated;
  // first_fit itself rejects sides that exceed the mesh.
  if (auto whole = index().first_fit_rotatable(req.width, req.length)) {
    // Contiguous fast path — but the job still owes `target` processors,
    // which the rotated/clamped footprint may not cover for oversized
    // requests; fall through to carving for the remainder in that case.
    placement.blocks.push_back(*whole);
    occupy(*whole);
  }

  std::int64_t held = 0;
  for (const mesh::SubMesh& blk : placement.blocks) held += blk.area();

  // Carving caps clamp to the mesh (an oversized side can never fit whole).
  if (held < target) note_fallback(req);
  std::int32_t prev_w = std::min(req.width, geometry().width());
  std::int32_t prev_l = std::min(req.length, geometry().length());
  while (held < target) {
    const auto found = index().largest_free(prev_w, prev_l);
    if (!found) {
      // Free count >= target guarantees at least a 1×1 piece exists; the
      // side caps always admit 1×1, so this is unreachable. Roll back.
      for (const mesh::SubMesh& blk : placement.blocks) vacate(blk);
      return std::nullopt;
    }
    const mesh::SubMesh piece = trim_to_budget(*found, target - held);
    placement.blocks.push_back(piece);
    occupy(piece);
    held += piece.area();
    prev_w = piece.width();
    prev_l = piece.length();
  }

  for (const mesh::SubMesh& blk : placement.blocks) {
    busy_slot_.emplace(blk, busy_list_.size());
    busy_list_.push_back(blk);
  }
  finalize_placement(placement, geometry(), req.processors);
  return placement;
}

bool GablAllocator::can_allocate(const Request& req) const {
  validate_request(req, geometry());
  // Greedy carving succeeds iff enough processors are free, full stop —
  // the defining property of the strategy.
  return free_processors() >= static_cast<std::int64_t>(req.width) * req.length;
}

bool GablAllocator::can_allocate_with_free(
    const Request& req, const std::vector<mesh::SubMesh>& released) const {
  if (released.empty()) return can_allocate(req);
  validate_request(req, geometry());
  // The base's count model, but against GABL's bounding-area guard.
  std::int64_t extra = 0;
  for (const mesh::SubMesh& s : released) extra += s.area();
  return free_processors() + extra >= static_cast<std::int64_t>(req.width) * req.length;
}

void GablAllocator::release(const Placement& placement) {
  for (const mesh::SubMesh& blk : placement.blocks) {
    const auto it = busy_slot_.find(blk);
    if (it == busy_slot_.end())
      throw std::logic_error("GablAllocator: releasing a block not in the busy list");
    const std::size_t slot = it->second;
    busy_slot_.erase(it);
    if (slot + 1 != busy_list_.size()) {
      busy_list_[slot] = busy_list_.back();
      busy_slot_[busy_list_[slot]] = slot;
    }
    busy_list_.pop_back();
    vacate(blk);
  }
}

void GablAllocator::reset() {
  Allocator::reset();
  busy_list_.clear();
  busy_slot_.clear();
}

}  // namespace procsim::alloc
