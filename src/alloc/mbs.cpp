#include "alloc/mbs.hpp"

#include <stdexcept>

namespace procsim::alloc {

MbsAllocator::MbsAllocator(mesh::Geometry geom) : Allocator(geom), tiling_(geom) {}

std::vector<std::int32_t> MbsAllocator::base4_factorize(std::int32_t p) {
  if (p <= 0) throw std::invalid_argument("base4_factorize: p must be positive");
  std::vector<std::int32_t> digits;
  while (p > 0) {
    digits.push_back(p % 4);
    p /= 4;
  }
  return digits;
}

std::optional<Placement> MbsAllocator::allocate(const Request& req) {
  validate_request(req, geometry());
  note_attempt(req);
  if (free_processors() < req.processors) return std::nullopt;

  // Outstanding block requests per order. Digits above the tiling's maximum
  // order cannot exist as blocks; fold them down immediately (4x at the next
  // order down).
  std::vector<std::int64_t> want(static_cast<std::size_t>(tiling_.max_order()) + 1, 0);
  {
    const std::vector<std::int32_t> digits = base4_factorize(req.processors);
    std::int64_t overflow = 0;
    for (std::size_t i = digits.size(); i-- > 0;) {
      if (i > static_cast<std::size_t>(tiling_.max_order())) {
        overflow = overflow * 4 + digits[i];
      } else {
        want[i] += digits[i];
        if (overflow > 0) {
          want[i] += overflow * 4;
          overflow = 0;
        }
      }
    }
    if (overflow > 0) want[0] += overflow;  // degenerate 1-wide meshes
  }

  Placement placement;
  bool split = false;  // left the factorized shape (buddy break-up happened)
  std::vector<mesh::BuddyTiling::BlockId> taken;
  for (std::size_t order = want.size(); order-- > 0;) {
    while (want[order] > 0) {
      if (auto block = tiling_.take_block(static_cast<std::int32_t>(order))) {
        taken.push_back(*block);
        --want[order];
      } else if (order > 0) {
        split = true;
        // Break the request into four buddies one order down (paper: "the
        // requested block is broken into 4 requests for smaller blocks").
        want[order - 1] += 4 * want[order];
        want[order] = 0;
      } else {
        // Out of single nodes: only possible when free < p, which the guard
        // above excludes. Roll back defensively.
        for (const auto id : taken) tiling_.release_block(id);
        return std::nullopt;
      }
    }
  }

  placement.blocks.reserve(taken.size());
  placement.tags.reserve(taken.size());
  for (const auto id : taken) {
    placement.blocks.push_back(tiling_.rect(id));
    placement.tags.push_back(id);
  }
  if (split) note_fallback(req);
  for (const mesh::SubMesh& b : placement.blocks) occupy(b);
  finalize_placement(placement, geometry(), req.processors);
  return placement;
}

bool MbsAllocator::can_allocate(const Request& req) const {
  validate_request(req, geometry());
  // Buddy splitting reaches single nodes, so MBS succeeds whenever p
  // processors are free regardless of their arrangement.
  return free_processors() >= req.processors;
}

void MbsAllocator::release(const Placement& placement) {
  for (const std::int32_t tag : placement.tags) tiling_.release_block(tag);
  for (const mesh::SubMesh& b : placement.blocks) vacate(b);
}

void MbsAllocator::reset() {
  Allocator::reset();
  tiling_.clear();
}

}  // namespace procsim::alloc
