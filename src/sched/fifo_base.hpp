#pragma once

#include <algorithm>
#include <vector>

#include "sched/scheduler.hpp"

namespace procsim::sched {

/// Common arrival-ordered (FCFS) queue for the disciplines that keep the
/// paper's base order but pick non-head jobs transactionally (lookahead
/// windows, backfilling). The queue is a vector kept sorted by `seq`; the
/// simulator enqueues in arrival order, so the sorted insert almost always
/// degenerates to push_back — the general path only exists so property tests
/// may enqueue out of order.
class FifoBase : public Scheduler {
 public:
  void enqueue(const QueuedJob& job) override {
    const auto pos = std::upper_bound(
        queue_.begin(), queue_.end(), job,
        [](const QueuedJob& a, const QueuedJob& b) { return a.seq < b.seq; });
    queue_.insert(pos, job);
  }

  [[nodiscard]] std::size_t size() const override { return queue_.size(); }

  [[nodiscard]] QueuedJob job_at(std::size_t pos) const override {
    return queue_.at(pos);
  }

  QueuedJob take(std::size_t pos) override {
    QueuedJob job = queue_.at(pos);
    queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(pos));
    return job;
  }

  void clear() override { queue_.clear(); }

 protected:
  [[nodiscard]] const std::vector<QueuedJob>& queue() const noexcept { return queue_; }

 private:
  std::vector<QueuedJob> queue_;
};

}  // namespace procsim::sched
