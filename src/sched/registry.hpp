#pragma once

#include <array>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "sched/ordered_scheduler.hpp"
#include "sched/scheduler.hpp"

namespace procsim::sched {

/// Single source of truth for policy names: to_string(Policy), parse_policy()
/// and make_scheduler(name) all read this table, so a name printed in a CSV
/// header or by Scheduler::name() always round-trips through the registry.
inline constexpr std::array<std::pair<Policy, const char*>, 4> kPolicyNames{{
    {Policy::kFcfs, "FCFS"},
    {Policy::kSsd, "SSD"},
    {Policy::kSmallestJob, "SJF"},
    {Policy::kLargestJob, "LJF"},
}};

/// Case-insensitive name -> policy; nullopt for unknown names.
[[nodiscard]] std::optional<Policy> parse_policy(std::string_view name) noexcept;

/// Canonical names accepted by make_scheduler, in table order.
[[nodiscard]] std::vector<std::string> known_schedulers();

[[nodiscard]] std::unique_ptr<Scheduler> make_scheduler(Policy policy);

/// Name-based factory for drivers; throws std::invalid_argument (listing the
/// known names) when `name` does not parse.
[[nodiscard]] std::unique_ptr<Scheduler> make_scheduler(const std::string& name);

}  // namespace procsim::sched
