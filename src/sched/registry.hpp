#pragma once

#include <array>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "sched/ordered_scheduler.hpp"
#include "sched/scheduler.hpp"

namespace procsim::sched {

/// Single source of truth for the ordered-policy names: to_string(Policy),
/// parse_policy() and make_scheduler(name) all read this table, so a name
/// printed in a CSV header or by Scheduler::name() always round-trips
/// through the registry.
inline constexpr std::array<std::pair<Policy, const char*>, 4> kPolicyNames{{
    {Policy::kFcfs, "FCFS"},
    {Policy::kSsd, "SSD"},
    {Policy::kSmallestJob, "SJF"},
    {Policy::kLargestJob, "LJF"},
}};

/// Window size "lookahead" resolves to when no :k argument is given.
inline constexpr std::size_t kDefaultLookahead = 4;

/// A validated, canonical scheduler spec — what ExperimentConfig carries and
/// drivers print. Grammar (case-insensitive; parse_sched_spec validates):
///
///   spec := FCFS | SSD | SJF | LJF          (blocking ordered disciplines)
///         | lookahead[:k]                   (k >= 1, default 4)
///         | backfill[:easy|:conservative][;shape]
///
/// backfill alone (or :easy, which canonicalises away) is EASY — one
/// reservation for the blocked head; :conservative reserves for every queued
/// job; ;shape asks for shape-aware reservation probes against the
/// projected occupancy (effective for the contiguous allocators, a no-op
/// refinement for count-exact ones).
///
/// Implicitly constructible from Policy so paper-era call sites
/// (`cfg.scheduler = Policy::kFcfs`) keep compiling unchanged.
struct SchedSpec {
  std::string canonical{"FCFS"};

  SchedSpec() = default;
  SchedSpec(Policy p) : canonical(to_string(p)) {}  // NOLINT: implicit by design
  explicit SchedSpec(std::string c) : canonical(std::move(c)) {}

  [[nodiscard]] const std::string& name() const noexcept { return canonical; }
  friend bool operator==(const SchedSpec& a, const SchedSpec& b) {
    return a.canonical == b.canonical;
  }
};

/// Case-insensitive name -> ordered policy; nullopt for unknown names (and
/// for the policies beyond the ordered set: lookahead/backfill are specs,
/// not Policy values).
[[nodiscard]] std::optional<Policy> parse_policy(std::string_view name) noexcept;

/// Case-insensitive spec -> canonical SchedSpec covering every registered
/// discipline; nullopt when the name/argument does not parse.
[[nodiscard]] std::optional<SchedSpec> parse_sched_spec(std::string_view spec) noexcept;

/// The registered disciplines for error messages and help text, in table
/// order. Every entry is a canonical spec except the parameterised
/// lookahead, shown as the placeholder "lookahead:<k>" (the same idiom as
/// the workload registry's "swf:<path>") — substitute a number to parse it.
[[nodiscard]] std::vector<std::string> known_schedulers();

/// known_schedulers() joined with ", " — the listing drivers and the
/// factory's invalid_argument message both print.
[[nodiscard]] std::string known_scheduler_list();

[[nodiscard]] std::unique_ptr<Scheduler> make_scheduler(Policy policy);

/// Spec-based factory: guarantees make_scheduler(spec)->name() ==
/// spec.canonical for any parse_sched_spec result. Throws
/// std::invalid_argument (listing the known names) for an unvalidated spec
/// that does not parse.
[[nodiscard]] std::unique_ptr<Scheduler> make_scheduler(const SchedSpec& spec);

/// Name-based factory for drivers; throws std::invalid_argument (listing the
/// known names) when `name` does not parse.
[[nodiscard]] std::unique_ptr<Scheduler> make_scheduler(const std::string& name);

}  // namespace procsim::sched
