#pragma once

#include <cstdint>
#include <set>
#include <unordered_map>
#include <vector>

#include "sched/fifo_base.hpp"

namespace procsim::sched {

/// Which backfilling discipline a BackfillScheduler runs.
struct BackfillOptions {
  /// false: EASY-style (aggressive) backfilling — Lifka's Extensible Argonne
  /// Scheduler, one reservation for the blocked head only. true:
  /// conservative backfilling — *every* queued job gets a reservation
  /// (computed against a processor-availability profile), and a job may
  /// start out of order only when doing so delays none of them.
  bool conservative{false};
  /// When the simulator provides a shape probe (SchedSnapshot::shape_fit),
  /// place reservations at instants where the blocked job's sub-mesh
  /// actually fits the projected occupancy — the running jobs' blocks
  /// released by then OR-ed back into the bitmap — instead of instants where
  /// merely enough nodes are free. Matters for the contiguous baselines,
  /// whose external fragmentation makes counts optimistic; without a probe
  /// (or for count-exact strategies) behaviour degrades gracefully to the
  /// count model.
  bool shape_aware{false};
};

/// Backfilling over the paper's FCFS base order, in two variants.
///
/// **EASY** (the default): when the head cannot be allocated, its
/// reservation ("shadow time") is the earliest instant the running jobs'
/// estimated completions free enough processors for it; each queued job's
/// known `demand` serves as the runtime estimate (the paper's SSD key — the
/// real service time remains an output of network contention, so estimates
/// are exactly as accurate as SSD's ordering key). A later job may overtake
/// the head only if it fits right now (the probe) and cannot delay the
/// reservation: it either finishes (by its own estimate) before the shadow
/// time, or it needs no more than the processors left over at the shadow
/// time after the head is seated.
///
/// **Conservative**: every pass rebuilds an availability profile (free
/// processors as a step function of time, fed by the running set's estimated
/// releases) and walks the queue in order, granting each job the earliest
/// profile slot that holds its processors for its estimated duration and
/// then subtracting that slot from the profile. A job is nominated iff its
/// own reserved start is *now* — so no nomination can push any
/// earlier-queued job's reservation back, the defining guarantee
/// (starvation-free by construction, at the cost of backfill opportunities
/// EASY would take).
///
/// Processor arithmetic is count-based, in the job's *compute* processor
/// count (QueuedJob::processors — what the non-contiguous strategies
/// actually allocate by) against the running jobs' exact held counts; exact
/// for Paging(0), MBS and Random, optimistic under external (contiguous
/// baselines) or internal (Paging(k>0), GABL) fragmentation. The shape_aware
/// option replaces the optimistic count at reservation instants with an
/// exact hypothetical-occupancy fit query where the simulator provides one —
/// reservations against *queued* jobs' hypothetical placements remain
/// count-based (nobody knows where they will land).
class BackfillScheduler final : public FifoBase {
 public:
  explicit BackfillScheduler(BackfillOptions opts = {}) : opts_(opts) {}

  [[nodiscard]] std::optional<std::size_t> select(const AllocProbe& probe,
                                                  const SchedSnapshot& snap) override;

  void on_start(const QueuedJob& job, double now, std::int64_t allocated,
                const std::vector<mesh::SubMesh>& blocks) override;
  void on_complete(std::uint64_t job_id, double now) override;

  /// "backfill[:conservative][;shape]" — the registry spec grammar.
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] const BackfillOptions& options() const noexcept { return opts_; }
  void clear() override;

  /// Reservation-keeping counters: a job's *first* reservation instant is
  /// remembered when it is placed, and its eventual start classifies it as
  /// honored (started no later than promised) or broken (started later —
  /// possible under EASY, whose single-reservation guarantee does not extend
  /// to jobs behind the head; conservative breaks none by construction).
  void export_counters(
      std::vector<std::pair<std::string, std::uint64_t>>& out) const override;

 private:
  struct Running {
    double finish_estimate{0};  ///< start + demand
    std::uint64_t job_id{0};    ///< deterministic tie-breaker
    std::int64_t allocated{0};  ///< processors actually held
    std::vector<mesh::SubMesh> blocks;  ///< placement, for the shape probe
    friend bool operator<(const Running& a, const Running& b) {
      if (a.finish_estimate != b.finish_estimate)
        return a.finish_estimate < b.finish_estimate;
      return a.job_id < b.job_id;
    }
  };

  [[nodiscard]] std::optional<std::size_t> select_easy(const AllocProbe& probe,
                                                       const SchedSnapshot& snap);
  [[nodiscard]] std::optional<std::size_t> select_conservative(
      const AllocProbe& probe, const SchedSnapshot& snap);

  BackfillOptions opts_;

  /// Kept ordered by estimated finish so the reservation walks are plain
  /// in-order traversals — no per-pass copy + sort; slot_ locates a job's
  /// entry for the O(log R) on_complete erase.
  std::multiset<Running> running_;
  std::unordered_map<std::uint64_t, std::multiset<Running>::iterator> slot_;

  /// job_id -> first reserved start instant (see export_counters).
  std::unordered_map<std::uint64_t, double> first_reservation_;
  std::uint64_t reservations_honored_{0};
  std::uint64_t reservations_broken_{0};

  // select() scratch (cleared per pass, capacity reused).
  std::vector<mesh::SubMesh> released_scratch_;
};

}  // namespace procsim::sched
