#pragma once

#include <cstdint>
#include <set>
#include <unordered_map>

#include "sched/fifo_base.hpp"

namespace procsim::sched {

/// EASY-style (aggressive) backfilling — Lifka's Extensible Argonne
/// Scheduler, the batch-scheduling baseline of Casanova et al.: FCFS order
/// with a single reservation, for the blocked head only. (Conservative
/// backfilling, which reserves for *every* waiting job, is a different
/// discipline — see the ROADMAP's open items.)
///
/// When the head cannot be allocated, its reservation ("shadow time") is the
/// earliest instant the running jobs' estimated completions free enough
/// processors for it; each queued job's known `demand` serves as the runtime
/// estimate (the paper's SSD key — the real service time remains an output
/// of network contention, so estimates are exactly as accurate as SSD's
/// ordering key). A later job may overtake the head only if it fits right
/// now (the probe) and cannot delay the reservation: it either finishes (by
/// its own estimate) before the shadow time, or it needs no more than the
/// processors left over at the shadow time after the head is seated.
///
/// Processor arithmetic is count-based, in the job's *compute* processor
/// count (QueuedJob::processors — what the non-contiguous strategies
/// actually allocate by) against the running jobs' exact held counts. That
/// makes the reservation exact for Paging(0), MBS and Random; for the
/// contiguous baselines fragmentation can block a request despite a
/// sufficient count, and for strategies with internal fragmentation
/// (Paging(k>0) pages, GABL's bounding box) a backfilled candidate may hold
/// somewhat more than its requested count — both documented approximations
/// of this count-based model.
class BackfillScheduler final : public FifoBase {
 public:
  [[nodiscard]] std::optional<std::size_t> select(const AllocProbe& probe,
                                                  const SchedSnapshot& snap) override;

  void on_start(const QueuedJob& job, double now, std::int64_t allocated) override;
  void on_complete(std::uint64_t job_id, double now) override;

  [[nodiscard]] std::string name() const override { return "backfill"; }
  void clear() override;

 private:
  struct Running {
    double finish_estimate{0};  ///< start + demand
    std::uint64_t job_id{0};    ///< deterministic tie-breaker
    std::int64_t allocated{0};  ///< processors actually held
    friend bool operator<(const Running& a, const Running& b) {
      if (a.finish_estimate != b.finish_estimate)
        return a.finish_estimate < b.finish_estimate;
      return a.job_id < b.job_id;
    }
  };

  /// Kept ordered by estimated finish so select()'s reservation walk is a
  /// plain in-order traversal — no per-pass copy + sort; slot_ locates a
  /// job's entry for the O(log R) on_complete erase.
  std::multiset<Running> running_;
  std::unordered_map<std::uint64_t, std::multiset<Running>::iterator> slot_;
};

}  // namespace procsim::sched
