#pragma once

#include <iterator>
#include <set>
#include <utility>

#include "sched/scheduler.hpp"

namespace procsim::sched {

/// Job-ordering disciplines implemented over one ordered-set scheduler.
enum class Policy {
  kFcfs,          ///< First-Come-First-Served: arrival order
  kSsd,           ///< Shortest-Service-Demand: smallest demand first
  kSmallestJob,   ///< fewest requested processors first (extra, ablations)
  kLargestJob,    ///< most requested processors first (extra, ablations)
};

[[nodiscard]] const char* to_string(Policy p) noexcept;

/// Scheduler that keeps the waiting queue ordered by the policy's key with
/// arrival sequence as the final tie-breaker (so equal keys behave FCFS,
/// and behaviour is deterministic).
///
/// select() always nominates the head and never consults the probe: the
/// simulator's real allocation attempt failing is what ends the pass — the
/// paper's blocking head-of-queue semantics, preserved bit for bit across
/// the transactional-interface refactor.
class OrderedScheduler final : public Scheduler {
 public:
  explicit OrderedScheduler(Policy policy) : policy_(policy), queue_(Less{policy}) {}

  void enqueue(const QueuedJob& job) override { queue_.insert(job); }

  [[nodiscard]] std::size_t size() const override { return queue_.size(); }

  [[nodiscard]] QueuedJob job_at(std::size_t pos) const override {
    return *std::next(queue_.begin(), static_cast<std::ptrdiff_t>(pos));
  }

  [[nodiscard]] std::optional<std::size_t> select(const AllocProbe&,
                                                  const SchedSnapshot&) override {
    if (queue_.empty()) return std::nullopt;
    return 0;  // blocking semantics: only ever nominate the head
  }

  QueuedJob take(std::size_t pos) override {
    const auto it = std::next(queue_.begin(), static_cast<std::ptrdiff_t>(pos));
    QueuedJob job = *it;
    queue_.erase(it);
    return job;
  }

  [[nodiscard]] std::string name() const override { return to_string(policy_); }
  void clear() override { queue_.clear(); }

  [[nodiscard]] Policy policy() const noexcept { return policy_; }

 private:
  struct Less {
    Policy policy;
    bool operator()(const QueuedJob& a, const QueuedJob& b) const {
      switch (policy) {
        case Policy::kFcfs:
          break;  // sequence alone
        case Policy::kSsd:
          if (a.demand != b.demand) return a.demand < b.demand;
          break;
        case Policy::kSmallestJob:
          if (a.area != b.area) return a.area < b.area;
          break;
        case Policy::kLargestJob:
          if (a.area != b.area) return a.area > b.area;
          break;
      }
      return a.seq < b.seq;
    }
  };

  Policy policy_;
  std::set<QueuedJob, Less> queue_;
};

}  // namespace procsim::sched
