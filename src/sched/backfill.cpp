#include "sched/backfill.hpp"

#include <limits>

namespace procsim::sched {

std::optional<std::size_t> BackfillScheduler::select(const AllocProbe& probe,
                                                     const SchedSnapshot& snap) {
  if (empty()) return std::nullopt;
  const QueuedJob head = job_at(0);
  if (probe(head)) return 0;

  // The head is blocked: place its reservation. Walk the running jobs in
  // estimated-finish order accumulating released processors until the head's
  // request is covered; that instant is the shadow time, and whatever exceeds
  // the head's need there is the backfill slack ("extra" processors).
  double shadow = snap.now;
  std::int64_t avail = snap.free_processors;
  const std::int64_t head_need = head.processors;
  bool reachable = avail >= head_need;
  if (!reachable) {
    for (const Running& r : running_) {  // ordered by (finish_estimate, id)
      avail += r.allocated;
      shadow = r.finish_estimate;
      if (avail >= head_need) {
        reachable = true;
        break;
      }
    }
  }
  // When even draining every running job cannot seat the head, there is no
  // reservation to protect — plain first-fit backfill applies.
  const std::int64_t extra =
      reachable ? avail - head_need : std::numeric_limits<std::int64_t>::max();

  for (std::size_t i = 1; i < size(); ++i) {
    const QueuedJob c = job_at(i);
    // Cheap O(1) reservation conditions first; the occupancy-index probe
    // only runs for candidates that could not delay the head anyway:
    // either done (by estimate) before the shadow time, or within the
    // processors left over there after the head is seated.
    if (reachable && snap.now + c.demand > shadow && c.processors > extra) continue;
    if (probe(c)) return i;
  }
  return std::nullopt;
}

void BackfillScheduler::on_start(const QueuedJob& job, double now,
                                 std::int64_t allocated) {
  const auto it = running_.insert(Running{now + job.demand, job.job_id, allocated});
  slot_.emplace(job.job_id, it);
}

void BackfillScheduler::on_complete(std::uint64_t job_id, double) {
  const auto it = slot_.find(job_id);
  if (it == slot_.end()) return;
  running_.erase(it->second);
  slot_.erase(it);
}

void BackfillScheduler::clear() {
  FifoBase::clear();
  running_.clear();
  slot_.clear();
}

}  // namespace procsim::sched
