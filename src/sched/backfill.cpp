#include "sched/backfill.hpp"

#include <algorithm>
#include <limits>

namespace procsim::sched {

namespace {

/// Free processors as a right-continuous step function of time: avail(t) is
/// the value of the last step at or before t, the final step extending to
/// infinity. Built per conservative pass from the running set's estimated
/// releases; reservations subtract capacity over their interval.
class CapacityProfile {
 public:
  CapacityProfile(double now, std::int64_t avail) { steps_.push_back({now, avail}); }

  /// Capacity returning to the pool at `t` (>= the origin), e.g. a running
  /// job's estimated release. Must be fed in non-decreasing `t` order.
  void add_release(double t, std::int64_t procs) {
    if (steps_.back().t == t) {
      steps_.back().avail += procs;
      return;
    }
    steps_.push_back({t, steps_.back().avail + procs});
  }

  /// Earliest start >= `from` at which `procs` processors stay available for
  /// `duration`. Always exists: the final step has every reservation-free
  /// processor back (a reservation-only subtraction ends).
  [[nodiscard]] double earliest_fit(double from, std::int64_t procs,
                                    double duration) const {
    std::size_t i = step_at(from);
    for (;;) {
      const double start = std::max(from, steps_[i].t);
      const double end = start + duration;
      // Scan the steps the interval [start, end) overlaps.
      std::size_t j = i;
      bool ok = steps_[i].avail >= procs;
      while (ok && j + 1 < steps_.size() && steps_[j + 1].t < end) {
        ++j;
        ok = steps_[j].avail >= procs;
      }
      if (ok) return start;
      // Restart after the violating step.
      i = j + 1;
      if (i >= steps_.size()) return steps_.back().t;  // unreachable by contract
    }
  }

  /// Subtracts `procs` over [t, t + duration) — a reservation.
  void reserve(double t, double duration, std::int64_t procs) {
    if (duration <= 0 || procs <= 0) return;
    split_at(t);
    split_at(t + duration);
    for (std::size_t i = step_at(t); i < steps_.size() && steps_[i].t < t + duration;
         ++i)
      steps_[i].avail -= procs;
  }

 private:
  struct Step {
    double t;
    std::int64_t avail;
  };

  /// Index of the step active at `t` (t >= origin by construction).
  [[nodiscard]] std::size_t step_at(double t) const {
    std::size_t i = 0;
    while (i + 1 < steps_.size() && steps_[i + 1].t <= t) ++i;
    return i;
  }

  void split_at(double t) {
    if (t <= steps_.front().t) return;
    const std::size_t i = step_at(t);
    if (steps_[i].t == t) return;
    steps_.insert(steps_.begin() + static_cast<std::ptrdiff_t>(i) + 1,
                  Step{t, steps_[i].avail});
  }

  std::vector<Step> steps_;
};

}  // namespace

std::optional<std::size_t> BackfillScheduler::select(const AllocProbe& probe,
                                                     const SchedSnapshot& snap) {
  return opts_.conservative ? select_conservative(probe, snap)
                            : select_easy(probe, snap);
}

std::optional<std::size_t> BackfillScheduler::select_easy(const AllocProbe& probe,
                                                          const SchedSnapshot& snap) {
  if (empty()) return std::nullopt;
  const QueuedJob head = job_at(0);
  if (probe(head)) return 0;
  const bool use_shape = opts_.shape_aware && snap.shape_fit != nullptr;

  // The head is blocked: place its reservation. Walk the running jobs in
  // estimated-finish order accumulating released processors until the head's
  // request is covered — and, shape-aware, until its sub-mesh actually fits
  // the projected occupancy; that instant is the shadow time, and whatever
  // exceeds the head's need there is the backfill slack ("extra"
  // processors).
  double shadow = snap.now;
  std::int64_t avail = snap.free_processors;
  const std::int64_t head_need = head.processors;
  released_scratch_.clear();
  // Right now the probe already failed, so shape-aware the head does not
  // fit; count-based it may (fragmentation), in which case the shadow stays
  // at `now` exactly as before.
  bool reachable = !use_shape && avail >= head_need;
  if (!reachable) {
    for (const Running& r : running_) {  // ordered by (finish_estimate, id)
      avail += r.allocated;
      shadow = r.finish_estimate;
      if (use_shape) {
        released_scratch_.insert(released_scratch_.end(), r.blocks.begin(),
                                 r.blocks.end());
        if (avail >= head_need && (*snap.shape_fit)(head, released_scratch_)) {
          reachable = true;
          break;
        }
      } else if (avail >= head_need) {
        reachable = true;
        break;
      }
    }
  }
  // When even draining every running job cannot seat the head, there is no
  // reservation to protect — plain first-fit backfill applies.
  if (reachable) first_reservation_.emplace(head.job_id, shadow);
  const std::int64_t extra =
      reachable ? avail - head_need : std::numeric_limits<std::int64_t>::max();

  for (std::size_t i = 1; i < size(); ++i) {
    const QueuedJob c = job_at(i);
    // Cheap O(1) reservation conditions first; the occupancy-index probe
    // only runs for candidates that could not delay the head anyway:
    // either done (by estimate) before the shadow time, or within the
    // processors left over there after the head is seated.
    if (reachable && snap.now + c.demand > shadow && c.processors > extra) continue;
    if (probe(c)) return i;
  }
  return std::nullopt;
}

std::optional<std::size_t> BackfillScheduler::select_conservative(
    const AllocProbe& probe, const SchedSnapshot& snap) {
  if (empty()) return std::nullopt;
  // Fast path shared with every discipline: a fitting head starts.
  if (probe(job_at(0))) return 0;
  const bool use_shape = opts_.shape_aware && snap.shape_fit != nullptr;

  // Build the availability profile from the running set. Overdue estimates
  // (still running past start + demand) release "any moment now".
  CapacityProfile profile(snap.now, snap.free_processors);
  for (const Running& r : running_)
    profile.add_release(std::max(r.finish_estimate, snap.now), r.allocated);

  // Walk the queue in FCFS order, reserving every job's earliest feasible
  // slot. A job whose slot is *now* (and whose real allocation the probe
  // approves) is nominated; anything later holds its reservation so no
  // later candidate can take capacity from under it.
  const std::size_t n = size();
  for (std::size_t i = 0; i < n; ++i) {
    const QueuedJob c = job_at(i);
    double t = profile.earliest_fit(snap.now, c.processors, c.demand);
    if (t <= snap.now && probe(c)) return i;
    if (use_shape) {
      // The job cannot start now, so its reservation must sit at a
      // *shape-feasible* instant — including when the count model says it
      // fits right now but no rectangle exists (the contiguous baselines'
      // fragmentation case, exactly what ;shape is for). Advance through
      // the running releases until the job's sub-mesh fits the blocks
      // released by then. Reservations of queued jobs are invisible to the
      // bitmap (their placements are unknown), so this refinement is exact
      // against the running set and count-based against the queue.
      released_scratch_.clear();
      auto it = running_.begin();
      for (; it != running_.end(); ++it) {
        if (std::max(it->finish_estimate, snap.now) > t) break;
        released_scratch_.insert(released_scratch_.end(), it->blocks.begin(),
                                 it->blocks.end());
      }
      while (it != running_.end() && !(*snap.shape_fit)(c, released_scratch_)) {
        const double next_release = std::max(it->finish_estimate, snap.now);
        t = profile.earliest_fit(std::max(t, next_release), c.processors, c.demand);
        for (; it != running_.end() &&
               std::max(it->finish_estimate, snap.now) <= t;
             ++it)
          released_scratch_.insert(released_scratch_.end(), it->blocks.begin(),
                                   it->blocks.end());
      }
    }
    if (t > snap.now) first_reservation_.emplace(c.job_id, t);
    profile.reserve(t, c.demand, c.processors);
  }
  return std::nullopt;
}

void BackfillScheduler::on_start(const QueuedJob& job, double now,
                                 std::int64_t allocated,
                                 const std::vector<mesh::SubMesh>& blocks) {
  const auto res = first_reservation_.find(job.job_id);
  if (res != first_reservation_.end()) {
    // The promise was an *estimate*-based instant; a hair of float slack
    // keeps an exactly-on-time start from counting as broken.
    if (now <= res->second + 1e-9)
      ++reservations_honored_;
    else
      ++reservations_broken_;
    first_reservation_.erase(res);
  }
  const auto it =
      running_.insert(Running{now + job.demand, job.job_id, allocated, blocks});
  slot_.emplace(job.job_id, it);
}

void BackfillScheduler::on_complete(std::uint64_t job_id, double) {
  const auto it = slot_.find(job_id);
  if (it == slot_.end()) return;
  running_.erase(it->second);
  slot_.erase(it);
}

std::string BackfillScheduler::name() const {
  std::string n = "backfill";
  if (opts_.conservative) n += ":conservative";
  if (opts_.shape_aware) n += ";shape";
  return n;
}

void BackfillScheduler::export_counters(
    std::vector<std::pair<std::string, std::uint64_t>>& out) const {
  out.emplace_back("backfill_reservations_honored", reservations_honored_);
  out.emplace_back("backfill_reservations_broken", reservations_broken_);
}

void BackfillScheduler::clear() {
  FifoBase::clear();
  running_.clear();
  slot_.clear();
  first_reservation_.clear();
  reservations_honored_ = 0;
  reservations_broken_ = 0;
}

}  // namespace procsim::sched
