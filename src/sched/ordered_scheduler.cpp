#include "sched/ordered_scheduler.hpp"

#include "sched/registry.hpp"

namespace procsim::sched {

const char* to_string(Policy p) noexcept {
  // kPolicyNames is the single source of truth shared with the registry's
  // parse_policy/make_scheduler, so printed names always round-trip.
  for (const auto& [policy, name] : kPolicyNames)
    if (policy == p) return name;
  return "?";
}

}  // namespace procsim::sched
