#include "sched/ordered_scheduler.hpp"

namespace procsim::sched {

const char* to_string(Policy p) noexcept {
  switch (p) {
    case Policy::kFcfs: return "FCFS";
    case Policy::kSsd: return "SSD";
    case Policy::kSmallestJob: return "SJF";
    case Policy::kLargestJob: return "LJF";
  }
  return "?";
}

}  // namespace procsim::sched
