#pragma once

#include <cstddef>

#include "sched/fifo_base.hpp"

namespace procsim::sched {

/// Lookahead-k window scheduling: FCFS order, but when the head cannot be
/// allocated the pass may start any of the first `k` queued jobs that fits
/// right now (first fitting position wins, so earlier arrivals keep
/// priority inside the window).
///
/// This deliberately relaxes the paper's blocking semantics — a fitting
/// non-head job overtakes a blocked head, which can delay the head
/// indefinitely under adversarial streams (no reservation; see
/// BackfillScheduler for the starvation-free variant). k = 1 degenerates to
/// FCFS with a probe instead of a failed attempt, which is
/// allocation-equivalent to the blocking path for every shipped strategy
/// (can_allocate is exact).
class LookaheadScheduler final : public FifoBase {
 public:
  /// `window` must be >= 1 (checked by the registry's spec parser).
  explicit LookaheadScheduler(std::size_t window) : window_(window) {}

  [[nodiscard]] std::optional<std::size_t> select(const AllocProbe& probe,
                                                  const SchedSnapshot& snap) override;

  [[nodiscard]] std::string name() const override;

  [[nodiscard]] std::size_t window() const noexcept { return window_; }

 private:
  std::size_t window_;
};

}  // namespace procsim::sched
