#include "sched/registry.hpp"

#include <stdexcept>

#include "util/strings.hpp"

namespace procsim::sched {

using util::iequals;

std::optional<Policy> parse_policy(std::string_view name) noexcept {
  for (const auto& [policy, canonical] : kPolicyNames)
    if (iequals(name, canonical)) return policy;
  return std::nullopt;
}

std::vector<std::string> known_schedulers() {
  std::vector<std::string> out;
  out.reserve(kPolicyNames.size());
  for (const auto& [policy, canonical] : kPolicyNames) out.emplace_back(canonical);
  return out;
}

std::unique_ptr<Scheduler> make_scheduler(Policy policy) {
  return std::make_unique<OrderedScheduler>(policy);
}

std::unique_ptr<Scheduler> make_scheduler(const std::string& name) {
  if (const auto policy = parse_policy(name)) return make_scheduler(*policy);
  std::string known;
  for (const std::string& n : known_schedulers()) {
    if (!known.empty()) known += ", ";
    known += n;
  }
  throw std::invalid_argument("make_scheduler: unknown policy '" + name +
                              "' (known: " + known + ")");
}

}  // namespace procsim::sched
