#include "sched/registry.hpp"

#include <stdexcept>
#include <utility>

#include "sched/backfill.hpp"
#include "sched/lookahead.hpp"
#include "util/strings.hpp"

namespace procsim::sched {

using util::iequals;

namespace {

/// Parses the ":k" window argument of a lookahead spec (absent -> default).
[[nodiscard]] std::optional<std::size_t> parse_window(std::string_view arg) {
  if (arg.empty()) return std::nullopt;
  std::size_t value = 0;
  for (const char c : arg) {
    if (c < '0' || c > '9') return std::nullopt;
    value = value * 10 + static_cast<std::size_t>(c - '0');
    if (value > 1'000'000) return std::nullopt;  // absurd windows are typos
  }
  if (value == 0) return std::nullopt;
  return value;
}

/// The one copy of the backfill grammar — backfill[:easy|:conservative]
/// [;shape] — shared by parse_sched_spec (canonicalisation) and
/// make_scheduler (construction), so the two can never drift apart.
struct BackfillParse {
  BackfillOptions opts;
  std::string canonical;
};

[[nodiscard]] std::optional<BackfillParse> parse_backfill(std::string_view spec) {
  bool shape = false;
  const std::size_t semi = spec.find(';');
  if (semi != std::string_view::npos) {
    if (!iequals(spec.substr(semi + 1), "shape")) return std::nullopt;
    shape = true;
    spec = spec.substr(0, semi);
  }
  const std::size_t colon = spec.find(':');
  if (!iequals(spec.substr(0, colon), "backfill")) return std::nullopt;
  bool conservative = false;
  if (colon != std::string_view::npos) {
    const std::string_view variant = spec.substr(colon + 1);
    if (iequals(variant, "conservative"))
      conservative = true;
    else if (!iequals(variant, "easy"))  // ":easy" canonicalises away
      return std::nullopt;
  }
  BackfillParse out;
  out.opts.conservative = conservative;
  out.opts.shape_aware = shape;
  out.canonical = "backfill";
  if (conservative) out.canonical += ":conservative";
  if (shape) out.canonical += ";shape";
  return out;
}

}  // namespace

std::optional<Policy> parse_policy(std::string_view name) noexcept {
  for (const auto& [policy, canonical] : kPolicyNames)
    if (iequals(name, canonical)) return policy;
  return std::nullopt;
}

std::optional<SchedSpec> parse_sched_spec(std::string_view spec) noexcept {
  if (const auto policy = parse_policy(spec)) return SchedSpec{*policy};
  if (auto bf = parse_backfill(spec)) return SchedSpec{std::move(bf->canonical)};
  if (spec.find(';') != std::string_view::npos)
    return std::nullopt;  // ";shape" is a backfill-only option

  const std::size_t colon = spec.find(':');
  const std::string_view kind = spec.substr(0, colon);
  if (iequals(kind, "lookahead")) {
    std::size_t window = kDefaultLookahead;
    if (colon != std::string_view::npos) {
      const auto parsed = parse_window(spec.substr(colon + 1));
      if (!parsed) return std::nullopt;
      window = *parsed;
    }
    return SchedSpec{"lookahead:" + std::to_string(window)};
  }
  return std::nullopt;
}

std::vector<std::string> known_schedulers() {
  std::vector<std::string> out;
  out.reserve(kPolicyNames.size() + 2);
  for (const auto& [policy, canonical] : kPolicyNames) out.emplace_back(canonical);
  out.emplace_back("lookahead:<k>");
  out.emplace_back("backfill[:conservative][;shape]");
  return out;
}

std::string known_scheduler_list() {
  std::string known;
  for (const std::string& n : known_schedulers()) {
    if (!known.empty()) known += ", ";
    known += n;
  }
  return known;
}

std::unique_ptr<Scheduler> make_scheduler(Policy policy) {
  return std::make_unique<OrderedScheduler>(policy);
}

std::unique_ptr<Scheduler> make_scheduler(const SchedSpec& spec) {
  if (const auto policy = parse_policy(spec.canonical))
    return std::make_unique<OrderedScheduler>(*policy);
  // Same grammar object the parser used; requiring canonical == spec keeps
  // the contract that name() round-trips (aliases like "backfill:easy" are
  // the parser's business, not the factory's).
  if (const auto bf = parse_backfill(spec.canonical);
      bf && bf->canonical == spec.canonical)
    return std::make_unique<BackfillScheduler>(bf->opts);
  constexpr std::string_view kLookahead = "lookahead:";
  if (spec.canonical.size() > kLookahead.size() &&
      std::string_view(spec.canonical).substr(0, kLookahead.size()) == kLookahead) {
    const auto window =
        parse_window(std::string_view(spec.canonical).substr(kLookahead.size()));
    if (window) return std::make_unique<LookaheadScheduler>(*window);
  }
  throw std::invalid_argument("make_scheduler: unknown policy '" + spec.canonical +
                              "' (known: " + known_scheduler_list() + ")");
}

std::unique_ptr<Scheduler> make_scheduler(const std::string& name) {
  if (const auto spec = parse_sched_spec(name)) return make_scheduler(*spec);
  throw std::invalid_argument("make_scheduler: unknown policy '" + name +
                              "' (known: " + known_scheduler_list() + ")");
}

}  // namespace procsim::sched
