#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "mesh/submesh.hpp"

namespace procsim::sched {

/// A job waiting for processors, as the scheduler sees it.
struct QueuedJob {
  std::uint64_t job_id{0};
  double arrival{0};      ///< submission time
  double demand{0};       ///< SSD key: known service demand
  std::int64_t area{0};   ///< bounding w×l footprint (the size-ordering key)
  /// Processors the job actually computes on (<= area for trace-shaped
  /// requests) — what reservation arithmetic must count, since the
  /// non-contiguous strategies allocate by this number, not the bounding box.
  std::int32_t processors{0};
  std::uint64_t seq{0};   ///< arrival sequence, the universal tie-breaker
};

/// Allocatability probe the simulator hands to select(): true when the job
/// could be allocated at this instant. Probing never commits — it is the
/// allocator's exact feasibility test (Allocator::can_allocate), answered
/// from the occupancy index without touching any state, so a discipline may
/// test many non-head jobs per scheduling pass cheaply.
using AllocProbe = std::function<bool(const QueuedJob&)>;

/// The probe-at-instant companion of AllocProbe: true when the job could be
/// allocated once the given currently-held blocks (running jobs projected to
/// have finished by the probed instant) were released. Side-effect free like
/// AllocProbe — the allocator answers from a hypothetical occupancy bitmap
/// (Allocator::can_allocate_with_free) without committing anything. Shape-
/// aware backfilling uses it to place reservations at instants where the
/// head's sub-mesh actually *fits*, not merely where enough nodes are free.
using ShapeProbe =
    std::function<bool(const QueuedJob&, const std::vector<mesh::SubMesh>&)>;

/// Machine-state snapshot for one select() step (reservation-aware
/// disciplines need the clock and the free-processor count; the simple
/// orderings ignore it). `shape_fit`, when the simulator provides it, lets a
/// shape-aware discipline probe hypothetical future occupancies; it is
/// non-owning and valid only for the duration of the select() call.
struct SchedSnapshot {
  double now{0};
  std::int64_t free_processors{0};
  const ShapeProbe* shape_fit{nullptr};
};

/// Queueing discipline behind the transactional scheduling pass.
///
/// The simulator repeatedly asks `select(probe, snap)` for the queue
/// position of the job to start next, attempts the real allocation, and on
/// success removes the job with `take(pos)`; the pass ends when select()
/// returns nullopt or an allocation attempt fails.
///
/// The paper's blocking semantics (FCFS/SSD: "allocation attempts stop when
/// they fail for the current queue head") fall out of the simplest
/// implementation — return position 0 without consulting the probe and let
/// the simulator's failed attempt end the pass. Disciplines that go beyond
/// the paper (lookahead windows, backfilling) probe non-head jobs and only
/// return positions the probe approved.
///
/// `job_at` exposes the queue in discipline order (position 0 is the head),
/// so a pass can inspect any candidate without consuming it. `on_start` /
/// `on_complete` keep reservation-aware disciplines' view of the running set
/// current; the simple orderings inherit the no-op defaults.
class Scheduler {
 public:
  virtual ~Scheduler() = default;

  virtual void enqueue(const QueuedJob& job) = 0;

  [[nodiscard]] virtual std::size_t size() const = 0;
  [[nodiscard]] bool empty() const { return size() == 0; }

  /// The queue in discipline order: position 0 is the job the discipline
  /// would start first. Precondition: pos < size().
  [[nodiscard]] virtual QueuedJob job_at(std::size_t pos) const = 0;

  /// One step of the transactional scheduling pass: the position of the job
  /// to try to start now, or nullopt to end the pass. A discipline that
  /// returns a position it probed guarantees the probe approved it; a
  /// discipline that never probes (the blocking orderings) relies on the
  /// simulator's real attempt instead.
  [[nodiscard]] virtual std::optional<std::size_t> select(const AllocProbe& probe,
                                                          const SchedSnapshot& snap) = 0;

  /// Removes and returns the job at `pos`. Precondition: pos < size().
  virtual QueuedJob take(std::size_t pos) = 0;

  /// Notification that `job` started on `allocated` processors at `now`
  /// (allocated may exceed job.area: internal fragmentation); `blocks` are
  /// the placement's rectangles, which reservation-aware disciplines retain
  /// so a future release instant can be probed by shape. Default no-op.
  virtual void on_start(const QueuedJob& job, double now, std::int64_t allocated,
                        const std::vector<mesh::SubMesh>& blocks) {
    (void)job;
    (void)now;
    (void)allocated;
    (void)blocks;
  }
  /// Notification that the job with `job_id` released its processors at
  /// `now`. Default no-op.
  virtual void on_complete(std::uint64_t job_id, double now) {
    (void)job_id;
    (void)now;
  }

  /// Convenience view of position 0; nullopt when empty.
  [[nodiscard]] std::optional<QueuedJob> head() const {
    if (empty()) return std::nullopt;
    return job_at(0);
  }

  /// Canonical registry name (round-trips through make_scheduler).
  [[nodiscard]] virtual std::string name() const = 0;

  /// Appends discipline-specific observability counters as (name, value)
  /// pairs — consumed by the counter registry at end of run (obs::Counters
  /// extras). Default: none. Deliberately takes a plain vector so base
  /// schedulers stay free of any obs dependency.
  virtual void export_counters(
      std::vector<std::pair<std::string, std::uint64_t>>& out) const {
    (void)out;
  }

  /// Empties the queue and any running-set bookkeeping (fresh replication).
  virtual void clear() = 0;
};

}  // namespace procsim::sched
