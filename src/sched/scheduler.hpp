#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace procsim::sched {

/// A job waiting for processors, as the scheduler sees it.
struct QueuedJob {
  std::uint64_t job_id{0};
  double arrival{0};      ///< submission time
  double demand{0};       ///< SSD key: known service demand
  std::int64_t area{0};   ///< requested processors (for size-based extras)
  std::uint64_t seq{0};   ///< arrival sequence, the universal tie-breaker
};

/// Queueing discipline. The simulator repeatedly takes `head()`, tries to
/// allocate it, and stops at the first failure — the paper's blocking
/// semantics for both FCFS and SSD ("allocation attempts stop when they fail
/// for the current queue head"); the disciplines differ only in who the head
/// is.
class Scheduler {
 public:
  virtual ~Scheduler() = default;

  virtual void enqueue(const QueuedJob& job) = 0;
  /// The job the discipline would start next; nullopt when empty.
  [[nodiscard]] virtual std::optional<QueuedJob> head() const = 0;
  /// Removes the current head. Precondition: !empty().
  virtual void pop_head() = 0;

  [[nodiscard]] virtual std::size_t size() const = 0;
  [[nodiscard]] bool empty() const { return size() == 0; }
  [[nodiscard]] virtual std::string name() const = 0;
  virtual void clear() = 0;
};

}  // namespace procsim::sched
