#include "sched/lookahead.hpp"

#include <algorithm>

namespace procsim::sched {

std::optional<std::size_t> LookaheadScheduler::select(const AllocProbe& probe,
                                                      const SchedSnapshot&) {
  const std::size_t n = std::min(window_, size());
  for (std::size_t i = 0; i < n; ++i)
    if (probe(job_at(i))) return i;
  return std::nullopt;
}

std::string LookaheadScheduler::name() const {
  return "lookahead:" + std::to_string(window_);
}

}  // namespace procsim::sched
