#include "network/wormhole_network.hpp"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>
#include <string>

#include "obs/recorder.hpp"

namespace procsim::network {

namespace {

std::size_t run_len_bucket(std::int32_t n) noexcept {
  if (n <= 1) return 0;
  if (n <= 3) return 1;
  if (n <= 7) return 2;
  if (n <= 15) return 3;
  if (n <= 31) return 4;
  return 5;
}

}  // namespace

NetEngine default_net_engine() {
  static const NetEngine parsed = [] {
    const char* env = std::getenv("PROCSIM_NET_ENGINE");
    if (env == nullptr || *env == '\0') return NetEngine::kBatched;
    return parse_net_engine(env);
  }();
  return parsed;
}

NetEngine parse_net_engine(std::string_view name) {
  if (name == "stepped") return NetEngine::kStepped;
  if (name == "batched") return NetEngine::kBatched;
  if (name == "verify") return NetEngine::kVerify;
  if (name == "analytic") return NetEngine::kAnalytic;
  throw std::invalid_argument(
      "net engine must be stepped, batched, verify or analytic (got '" +
      std::string(name) + "')");
}

const char* net_engine_name(NetEngine engine) noexcept {
  switch (engine) {
    case NetEngine::kStepped: return "stepped";
    case NetEngine::kBatched: return "batched";
    case NetEngine::kVerify: return "verify";
    case NetEngine::kAnalytic: return "analytic";
  }
  return "?";
}

WormholeNetwork::WormholeNetwork(des::Simulator& sim, mesh::Geometry geom,
                                 NetworkParams params)
    : sim_(sim), map_(geom, params.torus), params_(params) {
  if (params.st < 0 || params.packet_len < 1)
    throw std::invalid_argument("WormholeNetwork: bad parameters");
  const auto n_channels = static_cast<std::size_t>(map_.channel_count());
  if (params_.engine == NetEngine::kAnalytic) {
    busy_cycles_.assign(n_channels, 0.0);
    return;
  }
  primary_ = std::make_unique<EngineState>();
  primary_->stepped = (params_.engine == NetEngine::kStepped);
  primary_->channels.resize(n_channels);
  if (params_.engine == NetEngine::kVerify) {
    shadow_ = std::make_unique<EngineState>();
    shadow_->stepped = true;
    shadow_->shadow = true;
    shadow_->channels.resize(n_channels);
  }
}

std::int32_t WormholeNetwork::alloc_packet(EngineState& st, mesh::NodeId src,
                                           mesh::NodeId dst, std::uint64_t tag) {
  std::int32_t idx;
  if (!st.free_pool.empty()) {
    idx = st.free_pool.back();
    st.free_pool.pop_back();
  } else {
    idx = static_cast<std::int32_t>(st.pool.size());
    st.pool.emplace_back();
  }
  Packet& p = st.pool[static_cast<std::size_t>(idx)];
  p.path = map_.route(src, dst);  // reuses pool slot; vector realloc amortises
  p.next = 0;
  p.res_end = 0;
  p.next_waiter = -1;
  p.seq = st.next_seq++;
  // run_epoch deliberately not reset: a recycled slot keeps growing it so any
  // straggler event stamped for the previous occupant can never match.
  p.inject_time = sim_.now();
  p.attempt_time = 0;
  p.blocked = 0;
  p.tag = tag;
  p.src = src;
  p.dst = dst;
  p.fresh_block = false;
  return idx;
}

void WormholeNetwork::inject(mesh::NodeId src, mesh::NodeId dst, std::uint64_t tag) {
  if (params_.engine == NetEngine::kAnalytic) {
    inject_analytic(src, dst, tag);
    return;
  }
  ++metrics_.injected;
  if (rec_ != nullptr)
    rec_->packet_inject(sim_.now(), tag, static_cast<std::int32_t>(src),
                        static_cast<std::int32_t>(dst));
  const std::int32_t p = alloc_packet(*primary_, src, dst, tag);
  register_attempt(*primary_, p, sim_.now());
  if (shadow_ != nullptr) {
    const std::int32_t s = alloc_packet(*shadow_, src, dst, tag);
    register_attempt(*shadow_, s, sim_.now());
  }
}

// Inserts `pkt` into the channel's waiter FIFO keyed by (attempt_time, seq).
// Insertion is at the tail except among same-instant attempts, so the walk
// is O(1) in practice.
namespace {
struct FifoKey {
  double t;
  std::uint64_t seq;
  [[nodiscard]] bool before(double ot, std::uint64_t oseq) const noexcept {
    return t < ot || (t == ot && seq < oseq);
  }
};
}  // namespace

void WormholeNetwork::register_attempt(EngineState& st, std::int32_t pkt, double t) {
  Packet& p = st.pool[static_cast<std::size_t>(pkt)];
  p.attempt_time = t;
  p.fresh_block = true;
  const ChannelId cid = p.path[static_cast<std::size_t>(p.next)];
  Channel& ch = st.channels[static_cast<std::size_t>(cid)];
  p.next_waiter = -1;
  if (ch.wait_tail < 0) {
    ch.wait_head = ch.wait_tail = pkt;
  } else {
    Packet& tail = st.pool[static_cast<std::size_t>(ch.wait_tail)];
    if (FifoKey{tail.attempt_time, tail.seq}.before(t, p.seq)) {
      tail.next_waiter = pkt;
      ch.wait_tail = pkt;
    } else {
      std::int32_t prev = -1;
      std::int32_t cur = ch.wait_head;
      while (cur >= 0) {
        const Packet& w = st.pool[static_cast<std::size_t>(cur)];
        if (FifoKey{t, p.seq}.before(w.attempt_time, w.seq)) break;
        prev = cur;
        cur = w.next_waiter;
      }
      p.next_waiter = cur;
      if (prev < 0)
        ch.wait_head = pkt;
      else
        st.pool[static_cast<std::size_t>(prev)].next_waiter = pkt;
      if (cur < 0) ch.wait_tail = pkt;
    }
  }
  mark_dirty(st, cid);
  ensure_arbitration(st);
}

void WormholeNetwork::mark_dirty(EngineState& st, ChannelId cid) {
  Channel& ch = st.channels[static_cast<std::size_t>(cid)];
  if (ch.dirty) return;
  ch.dirty = true;
  st.dirty.push_back(cid);
  if (params_.engine == NetEngine::kVerify) st.touched.push_back(cid);
}

void WormholeNetwork::ensure_arbitration(EngineState& st) {
  const double now = sim_.now();
  if (st.arb_time == now) return;
  st.arb_time = now;
  EngineState* sp = &st;
  sim_.schedule_at(now, [this, sp] { run_pass(*sp); });
}

// The canonical arbitration pass: runs once per network-active timestamp
// after every other event at that time, resolving contested channels in
// ascending id order, then flushing ejection completions sorted by ejection
// channel. Both engines funnel through here, which pins every tie-break to
// an engine-independent order.
void WormholeNetwork::run_pass(EngineState& st) {
  const double t = sim_.now();
  st.arb_time = -1.0;  // later registrations at this timestamp re-arm
  std::sort(st.dirty.begin(), st.dirty.end());
  for (std::size_t i = 0; i < st.dirty.size(); ++i) arbitrate(st, st.dirty[i], t);
  st.dirty.clear();
  std::sort(st.ejections.begin(), st.ejections.end(),
            [](const Ejection& a, const Ejection& b) { return a.ch < b.ch; });
  for (std::size_t i = 0; i < st.ejections.size(); ++i) {
    const Ejection& e = st.ejections[i];
    if (st.pool[static_cast<std::size_t>(e.pkt)].run_epoch == e.epoch)
      complete(st, e.pkt, t);
  }
  st.ejections.clear();
  if (params_.engine == NetEngine::kVerify && !verify_cmp_armed_) {
    verify_cmp_armed_ = true;
    sim_.at_batch_end([this] {
      verify_cmp_armed_ = false;
      verify_compare_states();
    });
  }
}

void WormholeNetwork::arbitrate(EngineState& st, ChannelId cid, double t) {
  Channel& ch = st.channels[static_cast<std::size_t>(cid)];
  ch.dirty = false;
  if (ch.holder >= 0 && ch.rel_time <= t) {  // lazy release
    ch.holder = -1;
    ch.acq_time = 0;
    ch.rel_time = kNoRelease;
    ch.reserved = false;
  }
  if (ch.holder >= 0 && ch.wait_head >= 0 && ch.reserved && ch.acq_time >= t) {
    // The holder only reserved this channel (acquisition at or after now):
    // an attempt with a smaller canonical key arrived first and steals it.
    // Realized acquisitions are never truncated — a holder granted at this
    // very timestamp may have leftover waiters with earlier attempt times,
    // and those already lost their arbitration.
    const Packet& w = st.pool[static_cast<std::size_t>(ch.wait_head)];
    const Packet& h = st.pool[static_cast<std::size_t>(ch.holder)];
    if (FifoKey{w.attempt_time, w.seq}.before(ch.acq_time, h.seq))
      truncate(st, cid, t);
  }
  if (ch.holder < 0 && ch.wait_head >= 0) {
    const std::int32_t winner = ch.wait_head;
    Packet& w = st.pool[static_cast<std::size_t>(winner)];
    ch.wait_head = w.next_waiter;
    if (ch.wait_head < 0) ch.wait_tail = -1;
    w.next_waiter = -1;
    w.blocked += t - w.attempt_time;
    w.fresh_block = false;
    grant(st, winner, t);
  }
  // Attempts that stayed blocked this pass are reported once, in FIFO order.
  for (std::int32_t i = ch.wait_head; i >= 0;
       i = st.pool[static_cast<std::size_t>(i)].next_waiter) {
    Packet& w = st.pool[static_cast<std::size_t>(i)];
    if (w.fresh_block) {
      w.fresh_block = false;
      if (rec_ != nullptr && !st.shadow) rec_->channel_block(t, w.tag, cid);
    }
  }
  if (ch.holder >= 0 && ch.wait_head >= 0 && ch.rel_time != kNoRelease &&
      !ch.grant_scheduled) {
    ch.grant_scheduled = true;
    const std::uint32_t e = ch.epoch;
    EngineState* sp = &st;
    sim_.schedule_at(ch.rel_time, [this, sp, cid, e] {
      Channel& c = sp->channels[static_cast<std::size_t>(cid)];
      if (c.epoch != e) return;
      c.grant_scheduled = false;
      mark_dirty(*sp, cid);
      ensure_arbitration(*sp);
    });
  }
}

void WormholeNetwork::grant(EngineState& st, std::int32_t pkt, double t) {
  if (st.stepped)
    step_acquire(st, pkt, t);
  else
    start_run(st, pkt, t);
}

// Stepped (oracle) continuation: acquire exactly one channel and schedule
// the next attempt 1 + st cycles ahead — O(hops) events per packet.
void WormholeNetwork::step_acquire(EngineState& st, std::int32_t pkt, double t) {
  Packet& p = st.pool[static_cast<std::size_t>(pkt)];
  const std::int32_t i = p.next;
  const ChannelId cid = p.path[static_cast<std::size_t>(i)];
  Channel& ch = st.channels[static_cast<std::size_t>(cid)];
  ch.holder = pkt;
  ch.acq_time = t;
  ch.rel_time = kNoRelease;
  ch.reserved = false;
  p.next = i + 1;
  p.res_end = i + 1;
  // The worm spans at most P_len channels: acquiring channel i slides the
  // tail out of channel i - P_len one cycle later.
  if (i >= params_.packet_len)
    set_release(st, p.path[static_cast<std::size_t>(i - params_.packet_len)], t + 1.0);
  if (static_cast<std::size_t>(i) + 1 == p.path.size()) {
    st.ejections.push_back({pkt, cid, p.run_epoch});  // flushed by this pass
  } else {
    const std::uint32_t e = p.run_epoch;
    EngineState* sp = &st;
    sim_.schedule_at(t + static_cast<double>(1 + params_.st), [this, sp, pkt, e] {
      if (sp->pool[static_cast<std::size_t>(pkt)].run_epoch != e) return;
      register_attempt(*sp, pkt, sim_.now());
    });
  }
}

// Batched continuation: acquire the maximal run of currently-free consecutive
// path channels in one shot. Channels past the first are reservations with
// future acquisition times (t + k*(1+st)); worm-slide releases inside the run
// are computed arithmetically. One event total: the virtual arrival at the
// first non-free channel (or the ejection completion).
void WormholeNetwork::start_run(EngineState& st, std::int32_t pkt, double t) {
  Packet& p = st.pool[static_cast<std::size_t>(pkt)];
  const auto len = static_cast<std::int32_t>(p.path.size());
  const std::int32_t first = p.next;
  const std::int32_t plen = params_.packet_len;
  const std::int64_t step = 1 + params_.st;
  {
    Channel& head = st.channels[static_cast<std::size_t>(p.path[static_cast<std::size_t>(first)])];
    head.holder = pkt;
    head.acq_time = t;
    head.rel_time = kNoRelease;
    head.reserved = false;
  }
  if (first >= plen)
    set_release(st, p.path[static_cast<std::size_t>(first - plen)], t + 1.0);
  if (params_.engine == NetEngine::kVerify)
    st.touched.push_back(p.path[static_cast<std::size_t>(first)]);
  std::int32_t j = first + 1;
  while (j < len) {
    Channel& ch = st.channels[static_cast<std::size_t>(p.path[static_cast<std::size_t>(j)])];
    if (ch.holder >= 0 && ch.rel_time <= t) {  // lazy release
      ch.holder = -1;
      ch.acq_time = 0;
      ch.rel_time = kNoRelease;
      ch.reserved = false;
    }
    if (ch.holder >= 0 || ch.wait_head >= 0) break;
    const double vt = t + static_cast<double>(static_cast<std::int64_t>(j - first) * step);
    ch.holder = pkt;
    ch.acq_time = vt;
    ch.rel_time = kNoRelease;
    ch.reserved = true;
    if (j >= plen)
      set_release(st, p.path[static_cast<std::size_t>(j - plen)], vt + 1.0);
    if (params_.engine == NetEngine::kVerify)
      st.touched.push_back(p.path[static_cast<std::size_t>(j)]);
    ++j;
  }
  p.next = j;
  p.res_end = j;
  ++stats_.runs_batched;
  ++stats_.run_len_hist[run_len_bucket(j - first)];
  const std::uint32_t e = p.run_epoch;
  EngineState* sp = &st;
  if (j == len) {
    const ChannelId ej = p.path[static_cast<std::size_t>(len - 1)];
    const double t_eject = st.channels[static_cast<std::size_t>(ej)].acq_time;
    if (t_eject == t) {
      st.ejections.push_back({pkt, ej, e});  // flushed by this pass
    } else {
      sim_.schedule_at(t_eject, [this, sp, pkt, e, ej] {
        if (sp->pool[static_cast<std::size_t>(pkt)].run_epoch != e) return;
        sp->ejections.push_back({pkt, ej, e});
        ensure_arbitration(*sp);
      });
    }
  } else {
    const double arrive = t + static_cast<double>(static_cast<std::int64_t>(j - first) * step);
    sim_.schedule_at(arrive, [this, sp, pkt, e] {
      if (sp->pool[static_cast<std::size_t>(pkt)].run_epoch != e) return;
      register_attempt(*sp, pkt, sim_.now());
    });
  }
}

// An attempt with a smaller canonical key arrived before the reservation's
// acquisition time: the reservation (and everything the holder reserved
// downstream of it) is rolled back and the holder re-attempts at the time it
// would have arrived — exactly where the stepped engine's per-hop header
// would have been.
void WormholeNetwork::truncate(EngineState& st, ChannelId cid, double t) {
  Channel& target = st.channels[static_cast<std::size_t>(cid)];
  const std::int32_t victim = target.holder;
  Packet& p = st.pool[static_cast<std::size_t>(victim)];
  std::int32_t cut = p.res_end - 1;
  while (cut >= 0 && p.path[static_cast<std::size_t>(cut)] != cid) --cut;
  const double arrive = target.acq_time;
  for (std::int32_t m = cut; m < p.res_end; ++m) {
    Channel& ch = st.channels[static_cast<std::size_t>(p.path[static_cast<std::size_t>(m)])];
    ch.holder = -1;
    ch.acq_time = 0;
    ch.rel_time = kNoRelease;
    ch.reserved = false;
    ++ch.epoch;
    ch.grant_scheduled = false;
  }
  // Slide releases of the worm's tail were computed from the freed
  // acquisitions; they are unknown again until the holder advances.
  for (std::int32_t m = std::max(0, cut - params_.packet_len); m < cut; ++m) {
    Channel& ch = st.channels[static_cast<std::size_t>(p.path[static_cast<std::size_t>(m)])];
    if (ch.holder == victim) {
      ch.rel_time = kNoRelease;
      ++ch.epoch;
      ch.grant_scheduled = false;
    }
  }
  ++p.run_epoch;  // cancels the pending arrival / ejection event
  p.next = cut;
  p.res_end = cut;
  ++stats_.truncations;
  if (arrive == t) {
    // Re-attempt right now: joins this very arbitration with its true key.
    p.attempt_time = t;
    p.fresh_block = true;
    p.next_waiter = -1;
    Channel& ch = target;
    if (ch.wait_tail < 0) {
      ch.wait_head = ch.wait_tail = victim;
    } else {
      std::int32_t prev = -1;
      std::int32_t cur = ch.wait_head;
      while (cur >= 0) {
        const Packet& w = st.pool[static_cast<std::size_t>(cur)];
        if (FifoKey{t, p.seq}.before(w.attempt_time, w.seq)) break;
        prev = cur;
        cur = w.next_waiter;
      }
      p.next_waiter = cur;
      if (prev < 0)
        ch.wait_head = victim;
      else
        st.pool[static_cast<std::size_t>(prev)].next_waiter = victim;
      if (cur < 0) ch.wait_tail = victim;
    }
  } else {
    const std::uint32_t e = p.run_epoch;
    EngineState* sp = &st;
    sim_.schedule_at(arrive, [this, sp, victim, e] {
      if (sp->pool[static_cast<std::size_t>(victim)].run_epoch != e) return;
      register_attempt(*sp, victim, sim_.now());
    });
  }
}

void WormholeNetwork::set_release(EngineState& st, ChannelId cid, double when) {
  Channel& ch = st.channels[static_cast<std::size_t>(cid)];
  ch.rel_time = when;
  if (ch.wait_head >= 0 && !ch.grant_scheduled) {
    ch.grant_scheduled = true;
    const std::uint32_t e = ch.epoch;
    EngineState* sp = &st;
    sim_.schedule_at(when, [this, sp, cid, e] {
      Channel& c = sp->channels[static_cast<std::size_t>(cid)];
      if (c.epoch != e) return;
      c.grant_scheduled = false;
      mark_dirty(*sp, cid);
      ensure_arbitration(*sp);
    });
  }
}

void WormholeNetwork::complete(EngineState& st, std::int32_t pkt, double t_eject) {
  Packet& p = st.pool[static_cast<std::size_t>(pkt)];
  const auto len = static_cast<std::int32_t>(p.path.size());
  const double t_done = t_eject + static_cast<double>(params_.packet_len);
  // Channels without a slide-release: the last min(P_len, len) drain
  // back-to-front behind the ejected header.
  const std::int32_t h = std::min(params_.packet_len, len);
  for (std::int32_t d = h - 1; d >= 0; --d)
    set_release(st, p.path[static_cast<std::size_t>(len - 1 - d)],
                t_done - static_cast<double>(d));
  EngineState* sp = &st;
  sim_.schedule_at(t_done, [this, sp, pkt] { deliver(*sp, pkt); });
}

void WormholeNetwork::deliver(EngineState& st, std::int32_t pkt) {
  Packet& p = st.pool[static_cast<std::size_t>(pkt)];
  Delivery d;
  d.tag = p.tag;
  d.src = p.src;
  d.dst = p.dst;
  d.latency = sim_.now() - p.inject_time;
  d.blocked = p.blocked;
  d.hops = static_cast<std::int32_t>(p.path.size()) - 2;
  const std::uint64_t id = p.seq;
  if (st.shadow) {
    verify_match(id, VerifyRec{sim_.now(), d.latency, d.blocked, d.hops, true});
    recycle(st, pkt);
    return;
  }
  metrics_.latency.add(d.latency);
  metrics_.blocking.add(d.blocked);
  metrics_.hops.add(static_cast<double>(d.hops));
  ++metrics_.delivered;
  if (params_.engine == NetEngine::kVerify)
    verify_match(id, VerifyRec{sim_.now(), d.latency, d.blocked, d.hops, false});
  if (rec_ != nullptr)
    rec_->packet_deliver(sim_.now(), d.tag, static_cast<std::int32_t>(d.src),
                         static_cast<std::int32_t>(d.dst), d.hops, d.latency,
                         d.blocked);
  recycle(st, pkt);
  if (sink_ != nullptr) sink_(sink_ctx_, d);
}

void WormholeNetwork::recycle(EngineState& st, std::int32_t pkt) {
  st.pool[static_cast<std::size_t>(pkt)].path.clear();
  st.free_pool.push_back(pkt);
}

// Analytic fast mode: one event per packet. Latency is the contention-free
// base plus an M/M/1-style waiting term rho/(1-rho) * S per path channel,
// where rho is the channel's running utilization (busy cycles / elapsed
// time, capped at 0.95) and S = channel_hold_cycles(). Trend-accurate only:
// cross-validated against the cycle model with a tolerance band, never
// byte-compared.
void WormholeNetwork::inject_analytic(mesh::NodeId src, mesh::NodeId dst,
                                      std::uint64_t tag) {
  ++metrics_.injected;
  ++stats_.analytic_packets;
  if (rec_ != nullptr)
    rec_->packet_inject(sim_.now(), tag, static_cast<std::int32_t>(src),
                        static_cast<std::int32_t>(dst));
  const std::vector<ChannelId> path = map_.route(src, dst);
  const auto hops = static_cast<std::int32_t>(path.size()) - 2;
  const double service = static_cast<double>(channel_hold_cycles());
  const double elapsed = std::max(sim_.now(), 1.0);
  double wait = 0;
  for (const ChannelId cid : path) {
    const double rho =
        std::min(busy_cycles_[static_cast<std::size_t>(cid)] / elapsed, 0.95);
    wait += rho / (1.0 - rho) * service;
  }
  for (const ChannelId cid : path)
    busy_cycles_[static_cast<std::size_t>(cid)] += service;
  const double latency = static_cast<double>(base_latency_cycles(hops)) + wait;
  sim_.schedule_at(sim_.now() + latency,
                   [this, tag, src, dst, latency, wait, hops] {
                     Delivery d;
                     d.tag = tag;
                     d.src = src;
                     d.dst = dst;
                     d.latency = latency;
                     d.blocked = wait;
                     d.hops = hops;
                     metrics_.latency.add(d.latency);
                     metrics_.blocking.add(d.blocked);
                     metrics_.hops.add(static_cast<double>(d.hops));
                     ++metrics_.delivered;
                     if (rec_ != nullptr)
                       rec_->packet_deliver(sim_.now(), d.tag,
                                            static_cast<std::int32_t>(d.src),
                                            static_cast<std::int32_t>(d.dst),
                                            d.hops, d.latency, d.blocked);
                     if (sink_ != nullptr) sink_(sink_ctx_, d);
                   });
}

void WormholeNetwork::verify_match(std::uint64_t id, const VerifyRec& rec) {
  auto it = verify_pending_.find(id);
  if (it == verify_pending_.end()) {
    verify_pending_.emplace(id, rec);
    return;
  }
  const VerifyRec& other = it->second;
  if (other.from_shadow == rec.from_shadow)
    throw std::logic_error("WormholeNetwork verify: duplicate delivery for packet " +
                           std::to_string(id));
  if (other.time != rec.time || other.latency != rec.latency ||
      other.blocked != rec.blocked || other.hops != rec.hops)
    throw std::logic_error(
        "WormholeNetwork verify: batched/stepped delivery mismatch for packet " +
        std::to_string(id) + " (time " + std::to_string(other.time) + " vs " +
        std::to_string(rec.time) + ", latency " + std::to_string(other.latency) +
        " vs " + std::to_string(rec.latency) + ", blocked " +
        std::to_string(other.blocked) + " vs " + std::to_string(rec.blocked) + ")");
  verify_pending_.erase(it);
}

// Lock-step state cross-check, run at the end of every network-active
// timestamp (after both engines' passes): for every channel either engine
// touched, the effective holder and the waiter FIFO (order included) must
// agree. Batched reservations whose acquisition lies in the future must be
// free in the stepped engine — the per-hop header has not arrived yet.
void WormholeNetwork::verify_compare_states() {
  const double t = sim_.now();
  std::vector<ChannelId> all;
  all.reserve(primary_->touched.size() + shadow_->touched.size());
  all.insert(all.end(), primary_->touched.begin(), primary_->touched.end());
  all.insert(all.end(), shadow_->touched.begin(), shadow_->touched.end());
  primary_->touched.clear();
  shadow_->touched.clear();
  std::sort(all.begin(), all.end());
  all.erase(std::unique(all.begin(), all.end()), all.end());
  const auto eff = [t](const EngineState& st, const Channel& c) -> std::int64_t {
    if (c.holder < 0 || c.rel_time <= t) return -1;
    return static_cast<std::int64_t>(
        st.pool[static_cast<std::size_t>(c.holder)].seq);
  };
  for (const ChannelId cid : all) {
    const Channel& a = primary_->channels[static_cast<std::size_t>(cid)];
    const Channel& b = shadow_->channels[static_cast<std::size_t>(cid)];
    if (a.holder >= 0 && a.acq_time > t) {
      if (eff(*shadow_, b) != -1)
        throw std::logic_error(
            "WormholeNetwork verify: stepped holds channel " +
            std::to_string(cid) + " that batched only reserved");
    } else if (eff(*primary_, a) != eff(*shadow_, b)) {
      throw std::logic_error("WormholeNetwork verify: holder mismatch on channel " +
                             std::to_string(cid) + " at t=" + std::to_string(t));
    }
    std::int32_t wa = a.wait_head;
    std::int32_t wb = b.wait_head;
    while (wa >= 0 && wb >= 0) {
      const Packet& pa = primary_->pool[static_cast<std::size_t>(wa)];
      const Packet& pb = shadow_->pool[static_cast<std::size_t>(wb)];
      if (pa.seq != pb.seq || pa.attempt_time != pb.attempt_time)
        throw std::logic_error(
            "WormholeNetwork verify: waiter FIFO mismatch on channel " +
            std::to_string(cid) + " at t=" + std::to_string(t));
      wa = pa.next_waiter;
      wb = pb.next_waiter;
    }
    if (wa >= 0 || wb >= 0)
      throw std::logic_error(
          "WormholeNetwork verify: waiter FIFO length mismatch on channel " +
          std::to_string(cid) + " at t=" + std::to_string(t));
  }
}

void WormholeNetwork::reset_state(EngineState& st) {
  std::fill(st.channels.begin(), st.channels.end(), Channel{});
  st.pool.clear();
  st.free_pool.clear();
  st.dirty.clear();
  st.ejections.clear();
  st.touched.clear();
  st.next_seq = 0;
  st.arb_time = -1.0;
}

void WormholeNetwork::reset() {
  if (in_flight() != 0)
    throw std::logic_error("WormholeNetwork::reset: packets still in flight");
  if (!verify_pending_.empty())
    throw std::logic_error("WormholeNetwork::reset: unmatched verify deliveries");
  if (primary_ != nullptr) reset_state(*primary_);
  if (shadow_ != nullptr) reset_state(*shadow_);
  std::fill(busy_cycles_.begin(), busy_cycles_.end(), 0.0);
  verify_cmp_armed_ = false;
  metrics_.reset();
  stats_.reset();
}

}  // namespace procsim::network
