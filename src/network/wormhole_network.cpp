#include "network/wormhole_network.hpp"

#include <stdexcept>

#include "obs/recorder.hpp"

namespace procsim::network {

WormholeNetwork::WormholeNetwork(des::Simulator& sim, mesh::Geometry geom,
                                 NetworkParams params)
    : sim_(sim), map_(geom, params.torus), params_(params) {
  if (params.st < 0 || params.packet_len < 1)
    throw std::invalid_argument("WormholeNetwork: bad parameters");
  channels_.resize(static_cast<std::size_t>(map_.channel_count()));
}

void WormholeNetwork::inject(mesh::NodeId src, mesh::NodeId dst, std::uint64_t tag) {
  std::int32_t idx;
  if (!free_pool_.empty()) {
    idx = free_pool_.back();
    free_pool_.pop_back();
  } else {
    idx = static_cast<std::int32_t>(pool_.size());
    pool_.emplace_back();
  }
  Packet& p = pool_[static_cast<std::size_t>(idx)];
  p.path = map_.route(src, dst);  // reuses pool slot; vector realloc amortises
  p.next = 0;
  p.held = 0;
  p.inject_time = sim_.now();
  p.blocked = 0;
  p.tag = tag;
  p.src = src;
  p.dst = dst;
  p.waiting = false;
  p.next_waiter = -1;
  ++metrics_.injected;
  if (rec_ != nullptr)
    rec_->packet_inject(sim_.now(), tag, static_cast<std::int32_t>(src),
                        static_cast<std::int32_t>(dst));
  try_advance(idx);
}

void WormholeNetwork::try_advance(std::int32_t pkt) {
  Packet& p = pool_[static_cast<std::size_t>(pkt)];
  Channel& ch = channels_[static_cast<std::size_t>(p.path[static_cast<std::size_t>(p.next)])];
  if (ch.holder < 0) {
    acquire(pkt, sim_.now());
  } else {
    p.waiting = true;
    p.block_start = sim_.now();
    p.next_waiter = -1;
    if (rec_ != nullptr)
      rec_->channel_block(sim_.now(), p.tag,
                          static_cast<std::int32_t>(
                              p.path[static_cast<std::size_t>(p.next)]));
    if (ch.wait_tail < 0) {
      ch.wait_head = ch.wait_tail = pkt;
    } else {
      pool_[static_cast<std::size_t>(ch.wait_tail)].next_waiter = pkt;
      ch.wait_tail = pkt;
    }
  }
}

void WormholeNetwork::acquire(std::int32_t pkt, double now) {
  Packet& p = pool_[static_cast<std::size_t>(pkt)];
  const std::int32_t i = p.next;
  const ChannelId ch_id = p.path[static_cast<std::size_t>(i)];
  channels_[static_cast<std::size_t>(ch_id)].holder = pkt;
  ++p.held;
  ++p.next;

  // The worm spans at most P_len channels: acquiring channel i slides the
  // tail out of channel i - P_len one cycle later.
  if (i >= params_.packet_len) {
    const ChannelId trailing = p.path[static_cast<std::size_t>(i - params_.packet_len)];
    sim_.schedule_in(1.0, [this, trailing] { release_channel(trailing); });
  }

  if (static_cast<std::size_t>(i) + 1 == p.path.size()) {
    complete(pkt, now);
  } else {
    sim_.schedule_in(1.0 + static_cast<double>(params_.st),
                     [this, pkt] { try_advance(pkt); });
  }
}

void WormholeNetwork::complete(std::int32_t pkt, double t_eject_acquired) {
  Packet& p = pool_[static_cast<std::size_t>(pkt)];
  const auto len = static_cast<std::int32_t>(p.path.size());
  const double t_done = t_eject_acquired + static_cast<double>(params_.packet_len);
  // Channels without a scheduled slide-release: the last min(P_len, len).
  const std::int32_t h = std::min(params_.packet_len, len);
  for (std::int32_t d = h - 1; d >= 0; --d) {
    const ChannelId ch = p.path[static_cast<std::size_t>(len - 1 - d)];
    sim_.schedule_at(t_done - d, [this, ch] { release_channel(ch); });
  }
  sim_.schedule_at(t_done, [this, pkt] {
    Packet& q = pool_[static_cast<std::size_t>(pkt)];
    if (q.held != 0)
      throw std::logic_error("WormholeNetwork: delivery before all channels released");
    Delivery d;
    d.tag = q.tag;
    d.src = q.src;
    d.dst = q.dst;
    d.latency = sim_.now() - q.inject_time;
    d.blocked = q.blocked;
    d.hops = static_cast<std::int32_t>(q.path.size()) - 2;
    metrics_.latency.add(d.latency);
    metrics_.blocking.add(d.blocked);
    metrics_.hops.add(static_cast<double>(d.hops));
    ++metrics_.delivered;
    if (rec_ != nullptr)
      rec_->packet_deliver(sim_.now(), d.tag, static_cast<std::int32_t>(d.src),
                           static_cast<std::int32_t>(d.dst), d.hops, d.latency,
                           d.blocked);
    recycle(pkt);
    if (on_delivery_) on_delivery_(d);
  });
}

void WormholeNetwork::release_channel(ChannelId ch_id) {
  Channel& ch = channels_[static_cast<std::size_t>(ch_id)];
  if (ch.holder < 0) throw std::logic_error("WormholeNetwork: releasing a free channel");
  Packet& holder = pool_[static_cast<std::size_t>(ch.holder)];
  --holder.held;
  ch.holder = -1;
  if (ch.wait_head >= 0) {
    const std::int32_t next_pkt = ch.wait_head;
    Packet& p = pool_[static_cast<std::size_t>(next_pkt)];
    ch.wait_head = p.next_waiter;
    if (ch.wait_head < 0) ch.wait_tail = -1;
    p.next_waiter = -1;
    p.waiting = false;
    p.blocked += sim_.now() - p.block_start;
    acquire(next_pkt, sim_.now());
  }
}

void WormholeNetwork::recycle(std::int32_t pkt) {
  pool_[static_cast<std::size_t>(pkt)].path.clear();
  free_pool_.push_back(pkt);
}

void WormholeNetwork::reset() {
  if (in_flight() != 0)
    throw std::logic_error("WormholeNetwork::reset: packets still in flight");
  for (Channel& c : channels_) c = Channel{};
  pool_.clear();
  free_pool_.clear();
  metrics_.reset();
}

}  // namespace procsim::network
