#include "network/routing.hpp"

#include <cmath>
#include <stdexcept>

namespace procsim::network {
namespace {

/// Signed steps and direction for one axis, torus-aware (shorter way around,
/// positive direction on ties).
struct AxisPlan {
  std::int32_t steps{0};
  Direction dir{Direction::kEast};
};

[[nodiscard]] AxisPlan plan_axis(std::int32_t from, std::int32_t to, std::int32_t extent,
                                 bool torus, Direction pos, Direction neg) noexcept {
  std::int32_t delta = to - from;
  if (torus) {
    const std::int32_t wrap = delta > 0 ? delta - extent : delta + extent;
    if (std::abs(wrap) < std::abs(delta)) delta = wrap;
  }
  if (delta >= 0) return AxisPlan{delta, pos};
  return AxisPlan{-delta, neg};
}

}  // namespace

mesh::NodeId ChannelMap::neighbour(mesh::NodeId n, Direction dir) const noexcept {
  mesh::Coord c = geom_.coord(n);
  switch (dir) {
    case Direction::kEast: ++c.x; break;
    case Direction::kWest: --c.x; break;
    case Direction::kNorth: ++c.y; break;
    case Direction::kSouth: --c.y; break;
  }
  if (torus_) {
    c.x = (c.x + geom_.width()) % geom_.width();
    c.y = (c.y + geom_.length()) % geom_.length();
    return geom_.id(c);
  }
  return geom_.contains(c) ? geom_.id(c) : -1;
}

std::vector<ChannelId> ChannelMap::route(mesh::NodeId src, mesh::NodeId dst) const {
  if (src == dst) throw std::invalid_argument("ChannelMap::route: src == dst");
  const mesh::Coord a = geom_.coord(src);
  const mesh::Coord b = geom_.coord(dst);
  const AxisPlan px =
      plan_axis(a.x, b.x, geom_.width(), torus_, Direction::kEast, Direction::kWest);
  const AxisPlan py =
      plan_axis(a.y, b.y, geom_.length(), torus_, Direction::kNorth, Direction::kSouth);

  std::vector<ChannelId> path;
  path.reserve(static_cast<std::size_t>(px.steps + py.steps) + 2);
  path.push_back(injection(src));

  mesh::NodeId cur = src;
  const auto walk_axis = [&](const AxisPlan& plan) {
    std::int32_t vc = 0;
    for (std::int32_t i = 0; i < plan.steps; ++i) {
      if (torus_) {
        // Dateline: the wrap-around link and everything after it in this
        // dimension use VC1.
        const mesh::Coord c = geom_.coord(cur);
        const bool wraps =
            (plan.dir == Direction::kEast && c.x == geom_.width() - 1) ||
            (plan.dir == Direction::kWest && c.x == 0) ||
            (plan.dir == Direction::kNorth && c.y == geom_.length() - 1) ||
            (plan.dir == Direction::kSouth && c.y == 0);
        if (wraps) vc = 1;
      }
      path.push_back(link(cur, plan.dir, vc));
      cur = neighbour(cur, plan.dir);
    }
  };
  walk_axis(px);
  walk_axis(py);

  path.push_back(ejection(dst));
  return path;
}

std::int32_t ChannelMap::hop_count(mesh::NodeId src, mesh::NodeId dst) const noexcept {
  const mesh::Coord a = geom_.coord(src);
  const mesh::Coord b = geom_.coord(dst);
  const AxisPlan px =
      plan_axis(a.x, b.x, geom_.width(), torus_, Direction::kEast, Direction::kWest);
  const AxisPlan py =
      plan_axis(a.y, b.y, geom_.length(), torus_, Direction::kNorth, Direction::kSouth);
  return px.steps + py.steps;
}

}  // namespace procsim::network
