#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "des/rng.hpp"
#include "mesh/coord.hpp"

namespace procsim::network {

/// Communication patterns a parallel job can exercise. The paper's
/// experiments use all-to-all exclusively ("it causes much message collision
/// and is known as the weak point for non-contiguous allocation"); the other
/// ProcSimity patterns are provided for the ablation benches and examples.
enum class TrafficPattern {
  kAllToAll,      ///< messages sweep the ordered processor pairs round-robin
  kOneToAll,      ///< processor 0 multicasts across the peers
  kRandomPairs,   ///< independent uniform source/destination pairs
  kRingNeighbour, ///< processor i talks to processor i+1 (mod k)
};

[[nodiscard]] const char* to_string(TrafficPattern p) noexcept;

/// (source index, destination index) within a job's processor list.
using IndexPair = std::pair<std::int32_t, std::int32_t>;

/// Samples a job's communication plan: `count` messages among `k`
/// processors following `pattern`. Indices, not nodes — the plan is fixed at
/// job arrival and reused unchanged under every allocation strategy. For
/// all-to-all the messages take `count` consecutive entries of the ordered
/// pair enumeration starting at a random offset, spreading traffic across
/// the whole job exactly like a sliced all-to-all exchange. Empty for k < 2.
[[nodiscard]] std::vector<IndexPair> generate_message_plan(TrafficPattern pattern,
                                                           std::int32_t k,
                                                           std::int64_t count,
                                                           des::Xoshiro256SS& rng);

/// One packet to inject: (source node, destination node).
using SrcDst = std::pair<mesh::NodeId, mesh::NodeId>;

/// Binds a plan to the processors the allocator granted.
[[nodiscard]] std::vector<SrcDst> map_plan(std::span<const IndexPair> plan,
                                           std::span<const mesh::NodeId> nodes);

}  // namespace procsim::network
