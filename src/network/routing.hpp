#pragma once

#include <cstdint>
#include <vector>

#include "mesh/coord.hpp"

namespace procsim::network {

/// Directed channel identifiers for a W×L mesh or torus.
///
/// Every directed link carries two virtual channels:
///   id = (dir*2 + vc)*N + source_node,           dirs 0..3, vc 0..1
/// followed by injection ports (8N..9N-1) and ejection ports (9N..10N-1).
/// On the mesh only VC0 is ever used. On the torus the second VC implements
/// the classic dateline scheme: a packet starts a dimension on VC0 and
/// switches to VC1 when it crosses that dimension's wrap-around link, which
/// breaks the ring's cyclic channel dependency — without this, wormhole
/// switching on a torus deadlocks (caught by tests/test_network.cpp).
///
/// Injection/ejection are modelled as channels too, so packets from one
/// source serialise naturally and hot destinations contend, as in ProcSimity.
enum class Direction : std::int32_t { kEast = 0, kWest = 1, kNorth = 2, kSouth = 3 };

using ChannelId = std::int32_t;

class ChannelMap {
 public:
  explicit ChannelMap(mesh::Geometry geom, bool torus = false) noexcept
      : geom_(geom), torus_(torus) {}

  [[nodiscard]] std::int32_t channel_count() const noexcept { return 10 * geom_.nodes(); }

  [[nodiscard]] ChannelId link(mesh::NodeId from, Direction dir,
                               std::int32_t vc = 0) const noexcept {
    return (static_cast<std::int32_t>(dir) * 2 + vc) * geom_.nodes() + from;
  }
  [[nodiscard]] ChannelId injection(mesh::NodeId node) const noexcept {
    return 8 * geom_.nodes() + node;
  }
  [[nodiscard]] ChannelId ejection(mesh::NodeId node) const noexcept {
    return 9 * geom_.nodes() + node;
  }

  [[nodiscard]] bool is_injection(ChannelId c) const noexcept {
    return c >= 8 * geom_.nodes() && c < 9 * geom_.nodes();
  }
  [[nodiscard]] bool is_ejection(ChannelId c) const noexcept {
    return c >= 9 * geom_.nodes();
  }

  [[nodiscard]] const mesh::Geometry& geometry() const noexcept { return geom_; }
  [[nodiscard]] bool torus() const noexcept { return torus_; }

  /// Neighbour of `n` in direction `dir`; -1 when the mesh edge blocks it.
  [[nodiscard]] mesh::NodeId neighbour(mesh::NodeId n, Direction dir) const noexcept;

  /// XY dimension-ordered route: full channel path from src's injection port
  /// to dst's ejection port, dateline VCs applied on the torus.
  /// Precondition: src != dst.
  [[nodiscard]] std::vector<ChannelId> route(mesh::NodeId src, mesh::NodeId dst) const;

  /// Number of links an XY-routed packet traverses (torus: shorter way).
  [[nodiscard]] std::int32_t hop_count(mesh::NodeId src, mesh::NodeId dst) const noexcept;

 private:
  mesh::Geometry geom_;
  bool torus_;
};

}  // namespace procsim::network
