#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "des/simulator.hpp"
#include "mesh/coord.hpp"
#include "network/routing.hpp"
#include "stats/welford.hpp"

namespace procsim::obs {
class Recorder;
}  // namespace procsim::obs

namespace procsim::network {

/// Simulation parameters of the interconnect, names following the paper:
/// `st` cycles of routing delay per node, `packet_len` flits per packet
/// (P_len), one cycle per link per flit.
struct NetworkParams {
  std::int32_t st{3};
  std::int32_t packet_len{8};
  bool torus{false};
};

/// Completed-delivery record passed to the delivery callback.
struct Delivery {
  std::uint64_t tag{0};  ///< caller-defined (the owning job id)
  mesh::NodeId src{0};
  mesh::NodeId dst{0};
  double latency{0};   ///< injection -> last flit delivered
  double blocked{0};   ///< total time the header waited on busy channels
  std::int32_t hops{0};
};

/// Aggregate network statistics for one simulation run.
struct NetworkMetrics {
  stats::Welford latency;
  stats::Welford blocking;
  stats::Welford hops;
  std::uint64_t injected{0};
  std::uint64_t delivered{0};

  void reset() { *this = NetworkMetrics{}; }
};

/// Event-driven flit-level wormhole network.
///
/// Model (single-flit channel buffers, as in ProcSimity):
///  * A packet's header acquires the channels of its XY path one by one.
///    Crossing a channel takes 1 cycle; each router adds `st` cycles before
///    the next acquisition attempt.
///  * A blocked header waits in the channel's FIFO, holding everything it
///    already acquired — the defining behaviour of wormhole switching.
///  * A worm of P_len flits spans at most P_len consecutive channels:
///    acquiring path channel i releases path channel i-P_len one cycle later
///    (the worm slides forward).
///  * When the header is ejected at time t, the remaining flits drain one per
///    cycle: delivery completes at t + P_len and trailing channels release
///    back-to-front.
///
/// Latency and blocking are accumulated per packet and reported through both
/// the delivery callback (for per-job bookkeeping) and NetworkMetrics.
class WormholeNetwork {
 public:
  using DeliveryCallback = std::function<void(const Delivery&)>;

  WormholeNetwork(des::Simulator& sim, mesh::Geometry geom, NetworkParams params);

  WormholeNetwork(const WormholeNetwork&) = delete;
  WormholeNetwork& operator=(const WormholeNetwork&) = delete;

  /// Injects one packet src -> dst at the current simulation time.
  /// Precondition: src != dst.
  void inject(mesh::NodeId src, mesh::NodeId dst, std::uint64_t tag);

  /// Invoked on every completed delivery (after metrics are updated).
  void set_delivery_callback(DeliveryCallback cb) { on_delivery_ = std::move(cb); }

  /// Attaches (nullptr detaches) the observability recorder; observation-only,
  /// wired by SystemSim::run from SystemConfig::recorder.
  void set_recorder(obs::Recorder* rec) noexcept { rec_ = rec; }

  [[nodiscard]] const NetworkMetrics& metrics() const noexcept { return metrics_; }
  [[nodiscard]] std::uint64_t in_flight() const noexcept {
    return metrics_.injected - metrics_.delivered;
  }
  [[nodiscard]] const NetworkParams& params() const noexcept { return params_; }
  [[nodiscard]] const ChannelMap& channels() const noexcept { return map_; }

  /// Contention-free latency of one packet over `hops` mesh links: every
  /// channel (injection, links, ejection) costs 1 cycle plus `st` routing
  /// before the next, and the tail drains P_len - 1 cycles behind the header.
  [[nodiscard]] double base_latency(std::int32_t hops) const noexcept {
    return static_cast<double>((hops + 1) * (1 + params_.st) + params_.packet_len);
  }

  /// Drops all state (between replications). Precondition: no packet in
  /// flight (enforced).
  void reset();

 private:
  // The waiter FIFO is intrusive (head/tail indices here, a `next_waiter`
  // link in Packet): a header blocks on at most one channel at a time, and a
  // per-channel container would cost one heap allocation per channel just to
  // default-construct — ~2M channels on a 512×512 mesh, rebuilt every
  // replication.
  struct Channel {
    std::int32_t holder{-1};     // packet pool index, -1 when free
    std::int32_t wait_head{-1};  // first blocked packet index, -1 when none
    std::int32_t wait_tail{-1};  // last blocked packet index
  };

  struct Packet {
    std::vector<ChannelId> path;
    std::int32_t next{0};        // next path index to acquire
    std::int32_t held{0};        // channels currently held
    std::int32_t next_waiter{-1};  // FIFO link while blocked on a channel
    double inject_time{0};
    double block_start{0};
    double blocked{0};
    std::uint64_t tag{0};
    mesh::NodeId src{0};
    mesh::NodeId dst{0};
    bool waiting{false};
  };

  void try_advance(std::int32_t pkt);
  void acquire(std::int32_t pkt, double now);
  void release_channel(ChannelId ch);
  void complete(std::int32_t pkt, double t_eject_acquired);
  void recycle(std::int32_t pkt);

  des::Simulator& sim_;
  ChannelMap map_;
  NetworkParams params_;
  std::vector<Channel> channels_;
  std::vector<Packet> pool_;
  std::vector<std::int32_t> free_pool_;
  NetworkMetrics metrics_;
  DeliveryCallback on_delivery_;
  obs::Recorder* rec_{nullptr};  ///< non-owning; null = observability off
};

}  // namespace procsim::network
