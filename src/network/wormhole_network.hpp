#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "des/simulator.hpp"
#include "mesh/coord.hpp"
#include "network/routing.hpp"
#include "stats/welford.hpp"

namespace procsim::obs {
class Recorder;
}  // namespace procsim::obs

namespace procsim::network {

/// Network advancement engines.
///
///  * kStepped  — the original per-hop oracle: one simulator event per
///    channel acquisition (`1 + st` cycles each), O(hops) events per packet.
///  * kBatched  — hop-run advancement: a header acquires the maximal run of
///    currently-free consecutive path channels in one event and schedules a
///    single arrival `run_len * (1 + st)` ahead, with the worm-slide releases
///    computed arithmetically. An uncontended packet costs O(1) events; a
///    contended one pays one event per blocking point. Delivery times,
///    blocked times, hop counts and waiter-FIFO order are bit-identical to
///    kStepped (both engines share one canonical arbitration core).
///  * kVerify   — runs kBatched as primary and kStepped as an in-process
///    shadow, lock-step cross-checking per-packet deliveries and per-channel
///    holder/waiter state every network-active timestamp.
///  * kAnalytic — contention-free base latency plus an M/M/1-style
///    per-channel utilization waiting term accumulated over the XY path.
///    One event per packet; trend-accurate, never byte-compared to the
///    cycle model (tolerance-banded in tests).
enum class NetEngine : std::uint8_t { kStepped, kBatched, kVerify, kAnalytic };

/// The process-wide default: PROCSIM_NET_ENGINE if set
/// (stepped | batched | verify | analytic), else kBatched. Parsed once.
[[nodiscard]] NetEngine default_net_engine();

/// Registry of engine modes (used by `procsim_sweep --net=`).
[[nodiscard]] NetEngine parse_net_engine(std::string_view name);
[[nodiscard]] const char* net_engine_name(NetEngine engine) noexcept;

/// Simulation parameters of the interconnect, names following the paper:
/// `st` cycles of routing delay per node, `packet_len` flits per packet
/// (P_len), one cycle per link per flit.
struct NetworkParams {
  std::int32_t st{3};
  std::int32_t packet_len{8};
  bool torus{false};
  NetEngine engine{default_net_engine()};
};

/// Completed-delivery record passed to the delivery sink.
struct Delivery {
  std::uint64_t tag{0};  ///< caller-defined (the owning job id)
  mesh::NodeId src{0};
  mesh::NodeId dst{0};
  double latency{0};   ///< injection -> last flit delivered
  double blocked{0};   ///< total time the header waited on busy channels
  std::int32_t hops{0};
};

/// Aggregate network statistics for one simulation run.
struct NetworkMetrics {
  stats::Welford latency;
  stats::Welford blocking;
  stats::Welford hops;
  std::uint64_t injected{0};
  std::uint64_t delivered{0};

  void reset() { *this = NetworkMetrics{}; }
};

/// Engine-level counters for one run (pulled into obs::Counters by
/// SystemSim). `run_len_hist` buckets maximal-run lengths at
/// 1, 2-3, 4-7, 8-15, 16-31, 32+ channels.
struct NetStats {
  std::uint64_t runs_batched{0};
  std::uint64_t run_len_hist[6]{};
  std::uint64_t truncations{0};       ///< reservations stolen by earlier attempts
  std::uint64_t analytic_packets{0};

  void reset() { *this = NetStats{}; }
};

/// Event-driven flit-level wormhole network.
///
/// Model (single-flit channel buffers, as in ProcSimity):
///  * A packet's header acquires the channels of its XY path one by one.
///    Crossing a channel takes 1 cycle; each router adds `st` cycles before
///    the next acquisition attempt.
///  * A blocked header waits in the channel's FIFO, holding everything it
///    already acquired — the defining behaviour of wormhole switching.
///  * A worm of P_len flits spans at most P_len consecutive channels:
///    acquiring path channel i releases path channel i-P_len one cycle later
///    (the worm slides forward).
///  * When the header is ejected at time t, the remaining flits drain one per
///    cycle: delivery completes at t + P_len and trailing channels release
///    back-to-front.
///
/// Arbitration is canonical and engine-independent: all acquisition attempts
/// at one timestamp are collected and resolved by a single arbitration event
/// that runs after every other event at that timestamp, channels in ascending
/// id order, winner = min (attempt_time, injection_seq). Both cycle engines
/// share this core, which is what makes kBatched bit-identical to kStepped.
///
/// Latency and blocking are accumulated per packet and reported through both
/// the delivery sink (for per-job bookkeeping) and NetworkMetrics.
class WormholeNetwork {
 public:
  /// Per-delivery sink: a raw function pointer + context instead of a
  /// std::function — the callback fires once per packet on the hot path and
  /// the type-erased call showed up in bench_network profiles.
  using DeliverySink = void (*)(void* ctx, const Delivery& d);

  WormholeNetwork(des::Simulator& sim, mesh::Geometry geom, NetworkParams params);

  WormholeNetwork(const WormholeNetwork&) = delete;
  WormholeNetwork& operator=(const WormholeNetwork&) = delete;

  /// Injects one packet src -> dst at the current simulation time.
  /// Precondition: src != dst.
  void inject(mesh::NodeId src, mesh::NodeId dst, std::uint64_t tag);

  /// Invoked on every completed delivery (after metrics are updated).
  void set_delivery_sink(DeliverySink sink, void* ctx) noexcept {
    sink_ = sink;
    sink_ctx_ = ctx;
  }

  /// Attaches (nullptr detaches) the observability recorder; observation-only,
  /// wired by SystemSim::run from SystemConfig::recorder.
  void set_recorder(obs::Recorder* rec) noexcept { rec_ = rec; }

  [[nodiscard]] const NetworkMetrics& metrics() const noexcept { return metrics_; }
  [[nodiscard]] const NetStats& stats() const noexcept { return stats_; }
  [[nodiscard]] std::uint64_t in_flight() const noexcept {
    return metrics_.injected - metrics_.delivered;
  }
  [[nodiscard]] const NetworkParams& params() const noexcept { return params_; }
  [[nodiscard]] NetEngine engine() const noexcept { return params_.engine; }
  [[nodiscard]] const ChannelMap& channels() const noexcept { return map_; }

  /// Contention-free latency of one packet over `hops` mesh links, in whole
  /// cycles: every channel (injection, links, ejection) costs 1 cycle plus
  /// `st` routing before the next, and the tail drains P_len - 1 cycles
  /// behind the header. All cycle arithmetic in the engines routes through
  /// this integer form; simulation times are exact integers in double.
  [[nodiscard]] std::int64_t base_latency_cycles(std::int32_t hops) const noexcept {
    return (static_cast<std::int64_t>(hops) + 1) * (1 + params_.st) + params_.packet_len;
  }
  [[nodiscard]] double base_latency(std::int32_t hops) const noexcept {
    return static_cast<double>(base_latency_cycles(hops));
  }

  /// Cycles one channel is occupied by one uncontended crossing (the analytic
  /// mode's per-channel service time): held from acquisition until the worm
  /// slides P_len channels ahead.
  [[nodiscard]] std::int64_t channel_hold_cycles() const noexcept {
    return static_cast<std::int64_t>(params_.packet_len) * (1 + params_.st) + 1;
  }

  /// Drops all state (between replications). Precondition: no packet in
  /// flight (enforced).
  void reset();

 private:
  static constexpr double kNoRelease = std::numeric_limits<double>::infinity();

  // The waiter FIFO is intrusive (head/tail indices here, a `next_waiter`
  // link in Packet): a header blocks on at most one channel at a time, and a
  // per-channel container would cost one heap allocation per channel just to
  // default-construct — ~2M channels on a 512×512 mesh, rebuilt every
  // replication.
  struct Channel {
    std::int32_t holder{-1};     // packet pool index, -1 when free
    std::int32_t wait_head{-1};  // blocked packets, ascending (attempt, seq)
    std::int32_t wait_tail{-1};
    double acq_time{0};          // holder's (possibly future) acquisition time
    double rel_time{kNoRelease};  // known release time, +inf until learned
    std::uint32_t epoch{0};       // cancels stale grant events on truncation
    bool reserved{false};         // held by a batched run's virtual (future)
                                  // acquisition, not a realized one — only
                                  // reservations can be truncated
    bool grant_scheduled{false};  // a grant event targets rel_time
    bool dirty{false};            // queued for arbitration this timestamp
  };

  struct Packet {
    std::vector<ChannelId> path;
    std::int32_t next{0};          // next path index to attempt
    std::int32_t res_end{0};       // one past the last reserved path index
    std::int32_t next_waiter{-1};  // FIFO link while blocked on a channel
    std::uint64_t seq{0};          // injection order; arbitration tie-break
    std::uint32_t run_epoch{0};    // cancels stale arrival/run-end events
    double inject_time{0};
    double attempt_time{0};        // when the pending attempt was made
    double blocked{0};
    std::uint64_t tag{0};
    mesh::NodeId src{0};
    mesh::NodeId dst{0};
    bool fresh_block{false};       // attempt not yet reported as blocked
  };

  struct Ejection {
    std::int32_t pkt;
    ChannelId ch;
    std::uint32_t epoch;  // packet run_epoch at registration
  };

  // One cycle engine's complete state. stepped/batched share all mechanics
  // except the continuation after a grant; kVerify instantiates two.
  struct EngineState {
    bool stepped{false};
    bool shadow{false};  // verify shadow: no metrics/recorder/sink
    std::vector<Channel> channels;
    std::vector<Packet> pool;
    std::vector<std::int32_t> free_pool;
    std::vector<ChannelId> dirty;      // channels awaiting arbitration
    std::vector<Ejection> ejections;   // completions this timestamp
    std::vector<ChannelId> touched;    // verify: channels to cross-check
    std::uint64_t next_seq{0};
    double arb_time{-1.0};  // timestamp with a scheduled arbitration event
  };

  struct VerifyRec {
    double time{0};
    double latency{0};
    double blocked{0};
    std::int32_t hops{0};
    bool from_shadow{false};
  };

  [[nodiscard]] std::int32_t alloc_packet(EngineState& st, mesh::NodeId src,
                                          mesh::NodeId dst, std::uint64_t tag);
  void register_attempt(EngineState& st, std::int32_t pkt, double t);
  void ensure_arbitration(EngineState& st);
  void mark_dirty(EngineState& st, ChannelId ch);
  void run_pass(EngineState& st);
  void arbitrate(EngineState& st, ChannelId ch, double t);
  void grant(EngineState& st, std::int32_t pkt, double t);
  void step_acquire(EngineState& st, std::int32_t pkt, double t);
  void start_run(EngineState& st, std::int32_t pkt, double t);
  void truncate(EngineState& st, ChannelId ch, double t);
  void set_release(EngineState& st, ChannelId ch, double when);
  void complete(EngineState& st, std::int32_t pkt, double t_eject);
  void deliver(EngineState& st, std::int32_t pkt);
  void recycle(EngineState& st, std::int32_t pkt);
  void inject_analytic(mesh::NodeId src, mesh::NodeId dst, std::uint64_t tag);
  void verify_match(std::uint64_t id, const VerifyRec& rec);
  void verify_compare_states();
  void reset_state(EngineState& st);

  des::Simulator& sim_;
  ChannelMap map_;
  NetworkParams params_;
  NetworkMetrics metrics_;
  NetStats stats_;
  std::unique_ptr<EngineState> primary_;
  std::unique_ptr<EngineState> shadow_;  // kVerify only
  std::vector<double> busy_cycles_;      // kAnalytic per-channel utilization
  std::unordered_map<std::uint64_t, VerifyRec> verify_pending_;
  bool verify_cmp_armed_{false};
  DeliverySink sink_{nullptr};
  void* sink_ctx_{nullptr};
  obs::Recorder* rec_{nullptr};  ///< non-owning; null = observability off
};

}  // namespace procsim::network
