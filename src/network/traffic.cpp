#include "network/traffic.hpp"

#include <stdexcept>

#include "des/distributions.hpp"

namespace procsim::network {

const char* to_string(TrafficPattern p) noexcept {
  switch (p) {
    case TrafficPattern::kAllToAll: return "all-to-all";
    case TrafficPattern::kOneToAll: return "one-to-all";
    case TrafficPattern::kRandomPairs: return "random";
    case TrafficPattern::kRingNeighbour: return "ring-neighbour";
  }
  return "?";
}

std::vector<IndexPair> generate_message_plan(TrafficPattern pattern, std::int32_t k,
                                             std::int64_t count, des::Xoshiro256SS& rng) {
  if (count < 0) throw std::invalid_argument("generate_message_plan: negative count");
  std::vector<IndexPair> plan;
  if (k < 2 || count == 0) return plan;
  plan.reserve(static_cast<std::size_t>(count));

  switch (pattern) {
    case TrafficPattern::kAllToAll: {
      // Sliced all-to-all phase schedule: in round r every processor i
      // addresses (i + 1 + r) mod k, so any `count` consecutive slots keep
      // sources maximally spread (no artificial serialisation on one
      // injection port). A random starting slot decorrelates jobs.
      const std::int64_t slots = static_cast<std::int64_t>(k) * (k - 1);
      std::int64_t at = des::sample_uniform_int(rng, 0, slots - 1);
      for (std::int64_t m = 0; m < count; ++m) {
        const auto r = static_cast<std::int32_t>(at / k);  // round: 0..k-2
        const auto i = static_cast<std::int32_t>(at % k);
        plan.emplace_back(i, (i + 1 + r) % k);
        at = (at + 1) % slots;
      }
      break;
    }
    case TrafficPattern::kOneToAll: {
      std::int64_t at = des::sample_uniform_int(rng, 0, k - 2);
      for (std::int64_t m = 0; m < count; ++m) {
        plan.emplace_back(0, static_cast<std::int32_t>(1 + at));
        at = (at + 1) % (k - 1);
      }
      break;
    }
    case TrafficPattern::kRandomPairs: {
      for (std::int64_t m = 0; m < count; ++m) {
        const auto src = static_cast<std::int32_t>(des::sample_uniform_int(rng, 0, k - 1));
        auto dst = static_cast<std::int32_t>(des::sample_uniform_int(rng, 0, k - 2));
        if (dst >= src) ++dst;
        plan.emplace_back(src, dst);
      }
      break;
    }
    case TrafficPattern::kRingNeighbour: {
      std::int64_t at = des::sample_uniform_int(rng, 0, k - 1);
      for (std::int64_t m = 0; m < count; ++m) {
        const auto src = static_cast<std::int32_t>(at);
        plan.emplace_back(src, static_cast<std::int32_t>((at + 1) % k));
        at = (at + 1) % k;
      }
      break;
    }
  }
  return plan;
}

std::vector<SrcDst> map_plan(std::span<const IndexPair> plan,
                             std::span<const mesh::NodeId> nodes) {
  std::vector<SrcDst> out;
  out.reserve(plan.size());
  for (const auto& [si, di] : plan) {
    if (si < 0 || di < 0 || std::cmp_greater_equal(si, nodes.size()) ||
        std::cmp_greater_equal(di, nodes.size()) || si == di)
      throw std::invalid_argument("map_plan: plan index out of range");
    out.emplace_back(nodes[static_cast<std::size_t>(si)],
                     nodes[static_cast<std::size_t>(di)]);
  }
  return out;
}

}  // namespace procsim::network
