#pragma once

#include <cstdint>
#include <memory>

#include "obs/counters.hpp"
#include "obs/gauge_sampler.hpp"
#include "obs/trace.hpp"

namespace procsim::obs {

/// The single observability attach point: one Recorder bundles the three
/// pillars — structured event tracing (TraceBuffer), time-series telemetry
/// (GaugeSampler) and the counter/timer registry (Counters) — behind
/// `SystemConfig::recorder` (null by default).
///
/// Contract (the MetricsSink rule, extended):
///  * Observation-only. A hook reads model state and writes recorder state,
///    never the reverse — attaching a Recorder cannot change a single
///    simulated event, and the figure CSVs are byte-identical attached vs
///    detached (test_obs + the CI byte-compare enforce this).
///  * Zero overhead off. Every instrumentation site in the simulation hot
///    path is `if (recorder) recorder->hook(...)` — a null-pointer check and
///    nothing else when detached (< 2 % on the 128x128 churn bench, gated).
///  * Cheap on. Hooks are inline; with tracing disabled each costs a few
///    counter increments.
///
/// Counters are always live when attached; tracing and telemetry are opt-in
/// (enable_trace / enable_telemetry). Telemetry sampling events are
/// scheduled by SystemSim — they interleave with model events but the
/// (time, seq) pop order keeps every model-event pair in its original
/// relative order, so trajectories are unchanged.
///
/// A Recorder is single-simulation state, exactly like the allocator it
/// observes: concurrent replications must each attach their own.
class Recorder {
 public:
  Recorder() = default;

  /// Allocates the trace buffer; hooks start appending records.
  void enable_trace();
  /// Constructs the gauge sampler with a sim-time sampling interval.
  void enable_telemetry(double interval);
  /// Opt into wall-clock phase timers (Counters::timers). Off by default so
  /// the counters-only overhead stays at plain increments.
  void enable_phase_timers() noexcept { timers_enabled_ = true; }

  [[nodiscard]] Counters& counters() noexcept { return counters_; }
  [[nodiscard]] const Counters& counters() const noexcept { return counters_; }
  [[nodiscard]] TraceBuffer* trace() noexcept { return trace_.get(); }
  [[nodiscard]] const TraceBuffer* trace() const noexcept { return trace_.get(); }
  [[nodiscard]] GaugeSampler* sampler() noexcept { return sampler_.get(); }
  [[nodiscard]] const GaugeSampler* sampler() const noexcept { return sampler_.get(); }
  [[nodiscard]] bool timers_enabled() const noexcept { return timers_enabled_; }

  /// Clears all collected data (counters, trace records, samples) while
  /// keeping what is enabled — call between runs that share one Recorder.
  void reset_run();

  // --- Hot instrumentation hooks (called only behind a null check) -------

  /// Hooks without a time argument (the strategy-level allocator notes)
  /// stamp records with the last time any timed hook saw; SystemSim's pass
  /// hooks keep it current, since strategy calls only happen inside passes.
  void set_now(double t) noexcept { now_ = t; }

  void job_arrival(double t, std::uint64_t id, std::int32_t w, std::int32_t l,
                   std::int32_t p) {
    now_ = t;
    ++counters_.jobs_arrived;
    if (trace_)
      trace_->append({t, 0, 0, id, static_cast<std::uint32_t>(TraceKind::kArrival),
                      0, w, l, p, 0});
  }

  void pass_begin(double t, std::uint64_t pass, std::uint64_t queued) {
    now_ = t;
    ++counters_.schedule_passes;
    if (trace_)
      trace_->append({t, 0, 0, pass,
                      static_cast<std::uint32_t>(TraceKind::kPassBegin),
                      static_cast<std::uint32_t>(queued), 0, 0, 0, 0});
  }

  void pass_end(double t, std::uint64_t pass, std::uint32_t probes,
                std::int32_t nominees, std::int32_t started,
                std::int32_t queued_after) {
    counters_.nominations += static_cast<std::uint64_t>(nominees);
    counters_.jobs_started += static_cast<std::uint64_t>(started);
    if (trace_)
      trace_->append({t, 0, 0, pass, static_cast<std::uint32_t>(TraceKind::kPassEnd),
                      probes, nominees, started, queued_after, 0});
  }

  void probe_call() noexcept { ++counters_.probe_calls; }

  /// Strategy-level allocate() entry (alloc::Allocator::note_attempt).
  void alloc_attempt(std::int32_t w, std::int32_t l, std::int32_t p) {
    ++counters_.alloc_attempts;
    if (trace_)
      trace_->append({now_, 0, 0, 0,
                      static_cast<std::uint32_t>(TraceKind::kAllocAttempt), 0, w, l,
                      p, 0});
  }

  /// Strategy left its contiguous fast path (GABL carving, MBS buddy split).
  void alloc_fallback(std::int32_t w, std::int32_t l, std::int32_t p) {
    ++counters_.alloc_fallbacks;
    if (trace_)
      trace_->append({now_, 0, 0, 0,
                      static_cast<std::uint32_t>(TraceKind::kAllocFallback), 0, w,
                      l, p, 0});
  }

  void alloc_success(double t, std::uint64_t id, std::int32_t allocated,
                     std::uint32_t blocks, std::int32_t base_x, std::int32_t base_y,
                     std::int32_t blk_w, std::int32_t blk_l) {
    now_ = t;
    ++counters_.alloc_successes;
    if (trace_)
      trace_->append({t, static_cast<double>(allocated), 0, id,
                      static_cast<std::uint32_t>(TraceKind::kAllocSuccess), blocks,
                      base_x, base_y, blk_w, blk_l});
  }

  void alloc_fail(double t, std::uint64_t id, std::int32_t w, std::int32_t l,
                  std::int32_t p) {
    now_ = t;
    ++counters_.alloc_failures;
    if (trace_)
      trace_->append({t, 0, 0, id, static_cast<std::uint32_t>(TraceKind::kAllocFail),
                      0, w, l, p, 0});
  }

  void release(double t, std::uint64_t id, std::int32_t allocated) {
    now_ = t;
    ++counters_.jobs_released;
    if (trace_)
      trace_->append({t, static_cast<double>(allocated), 0, id,
                      static_cast<std::uint32_t>(TraceKind::kRelease), 0, 0, 0, 0,
                      0});
  }

  void complete(double t, std::uint64_t id, double turnaround) {
    now_ = t;
    ++counters_.jobs_completed;
    if (trace_)
      trace_->append({t, turnaround, 0, id,
                      static_cast<std::uint32_t>(TraceKind::kComplete), 0, 0, 0, 0,
                      0});
  }

  void packet_inject(double t, std::uint64_t tag, std::int32_t src,
                     std::int32_t dst) {
    now_ = t;
    ++counters_.packets_injected;
    if (trace_)
      trace_->append({t, 0, 0, tag,
                      static_cast<std::uint32_t>(TraceKind::kPacketInject), 0, src,
                      dst, 0, 0});
  }

  void packet_deliver(double t, std::uint64_t tag, std::int32_t src,
                      std::int32_t dst, std::int32_t hops, double latency,
                      double blocked) {
    now_ = t;
    ++counters_.packets_delivered;
    if (trace_)
      trace_->append({t, latency, blocked, tag,
                      static_cast<std::uint32_t>(TraceKind::kPacketDeliver),
                      static_cast<std::uint32_t>(hops), src, dst, 0, 0});
  }

  void channel_block(double t, std::uint64_t tag, std::int32_t channel) {
    now_ = t;
    ++counters_.channel_blocks;
    if (trace_)
      trace_->append({t, 0, 0, tag,
                      static_cast<std::uint32_t>(TraceKind::kChannelBlock), 0,
                      channel, 0, 0, 0});
  }

 private:
  Counters counters_;
  std::unique_ptr<TraceBuffer> trace_;
  std::unique_ptr<GaugeSampler> sampler_;
  double now_{0};
  bool timers_enabled_{false};
};

}  // namespace procsim::obs
