#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <stdexcept>
#include <vector>

namespace procsim::obs {

/// The time-series telemetry pillar: a columnar store of machine-state
/// snapshots taken every `interval` units of *simulated* time. SystemSim
/// drives the sampling (it owns the clock and the drain guard); the sampler
/// only stores and exports.
///
/// Columns (one vector per gauge, SoA like JobRecordStore) keep a long
/// sweep's telemetry cache-friendly and make the CSV export a column zip.
class GaugeSampler {
 public:
  explicit GaugeSampler(double interval) : interval_(interval) {
    if (!(interval > 0))
      throw std::invalid_argument("GaugeSampler: interval must be positive");
  }

  /// Sim-time spacing between samples.
  [[nodiscard]] double interval() const noexcept { return interval_; }

  /// One machine-state snapshot. `external_frag` is the paper's external
  /// fragmentation view: 1 - largest_free_rect / free_nodes (0 when nothing
  /// is free) — how much of the free pool is unusable by the largest
  /// contiguous request that still fits.
  struct Sample {
    double t{0};
    std::uint64_t queue_depth{0};   ///< jobs waiting
    std::uint64_t running_jobs{0};  ///< jobs holding processors
    std::int64_t busy_nodes{0};
    std::int64_t free_nodes{0};
    std::int32_t max_free_run{0};   ///< widest per-row free run (frontier width)
    std::int64_t largest_rect{0};   ///< area of the largest free sub-mesh
    double external_frag{0};
  };

  void append(const Sample& s) {
    t_.push_back(s.t);
    queue_depth_.push_back(s.queue_depth);
    running_jobs_.push_back(s.running_jobs);
    busy_nodes_.push_back(s.busy_nodes);
    free_nodes_.push_back(s.free_nodes);
    max_free_run_.push_back(s.max_free_run);
    largest_rect_.push_back(s.largest_rect);
    external_frag_.push_back(s.external_frag);
  }

  [[nodiscard]] std::size_t size() const noexcept { return t_.size(); }
  [[nodiscard]] bool empty() const noexcept { return t_.empty(); }

  /// Reassembles the i-th sample. Precondition: i < size().
  [[nodiscard]] Sample sample(std::size_t i) const;

  void clear();

  /// The telemetry artifact: header + one row per sample, fixed %.6g
  /// formatting (byte-stable for identical trajectories).
  static constexpr const char* kCsvHeader =
      "t,queue_depth,running_jobs,busy_nodes,free_nodes,max_free_run,"
      "largest_rect,external_frag";
  void write_csv(std::ostream& out) const;

 private:
  double interval_;
  std::vector<double> t_;
  std::vector<std::uint64_t> queue_depth_, running_jobs_;
  std::vector<std::int64_t> busy_nodes_, free_nodes_, largest_rect_;
  std::vector<std::int32_t> max_free_run_;
  std::vector<double> external_frag_;
};

}  // namespace procsim::obs
