#include "obs/trace.hpp"

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <istream>
#include <ostream>

namespace procsim::obs {

namespace {

constexpr char kMagic[8] = {'P', 'S', 'T', 'R', 'A', 'C', 'E', '\0'};
constexpr std::uint32_t kVersion = 1;

struct FileHeader {
  char magic[8];
  std::uint32_t version;
  std::uint32_t record_size;
  std::uint64_t count;
};
static_assert(sizeof(FileHeader) == 24);
static_assert(std::is_trivially_copyable_v<FileHeader>);

constexpr const char* kKindNames[] = {
    "unknown",        "arrival",        "pass_begin",   "pass_end",
    "alloc_attempt",  "alloc_success",  "alloc_fail",   "alloc_fallback",
    "release",        "complete",       "packet_inject", "packet_deliver",
    "channel_block",
};
constexpr std::size_t kKindCount = sizeof(kKindNames) / sizeof(kKindNames[0]);

void fail(std::string* error, const std::string& msg) {
  if (error) *error = msg;
}

}  // namespace

const char* kind_name(TraceKind k) noexcept {
  const auto i = static_cast<std::uint32_t>(k);
  return i < kKindCount ? kKindNames[i] : "unknown";
}

bool kind_from_name(const std::string& name, TraceKind& out) noexcept {
  for (std::size_t i = 1; i < kKindCount; ++i) {
    if (name == kKindNames[i]) {
      out = static_cast<TraceKind>(i);
      return true;
    }
  }
  return false;
}

void write_binary(const TraceBuffer& buf, std::ostream& out) {
  FileHeader h{};
  std::memcpy(h.magic, kMagic, sizeof kMagic);
  h.version = kVersion;
  h.record_size = sizeof(TraceRecord);
  h.count = buf.size();
  out.write(reinterpret_cast<const char*>(&h), sizeof h);
  if (!buf.empty())
    out.write(reinterpret_cast<const char*>(buf.records().data()),
              static_cast<std::streamsize>(buf.size() * sizeof(TraceRecord)));
}

bool read_binary(std::istream& in, std::vector<TraceRecord>& out, std::string* error) {
  FileHeader h{};
  in.read(reinterpret_cast<char*>(&h), sizeof h);
  if (in.gcount() != sizeof h) {
    fail(error, "trace: truncated header");
    return false;
  }
  if (std::memcmp(h.magic, kMagic, sizeof kMagic) != 0) {
    fail(error, "trace: bad magic (not a PSTRACE file)");
    return false;
  }
  if (h.version != kVersion) {
    fail(error, "trace: unsupported version " + std::to_string(h.version));
    return false;
  }
  if (h.record_size != sizeof(TraceRecord)) {
    fail(error, "trace: record size mismatch (file " + std::to_string(h.record_size) +
                    ", expected " + std::to_string(sizeof(TraceRecord)) + ")");
    return false;
  }
  out.resize(h.count);
  if (h.count != 0) {
    in.read(reinterpret_cast<char*>(out.data()),
            static_cast<std::streamsize>(h.count * sizeof(TraceRecord)));
    if (static_cast<std::uint64_t>(in.gcount()) != h.count * sizeof(TraceRecord)) {
      fail(error, "trace: truncated payload (header promises " +
                      std::to_string(h.count) + " records)");
      return false;
    }
  }
  return true;
}

void write_jsonl(const std::vector<TraceRecord>& records, std::ostream& out) {
  char line[512];
  for (const TraceRecord& r : records) {
    std::snprintf(line, sizeof line,
                  "{\"t\":%.17g,\"kind\":\"%s\",\"id\":%" PRIu64
                  ",\"a\":%" PRIu32 ",\"v\":%.17g,\"v2\":%.17g,"
                  "\"f\":[%" PRId32 ",%" PRId32 ",%" PRId32 ",%" PRId32 "]}\n",
                  r.t, kind_name(static_cast<TraceKind>(r.kind)), r.id, r.a, r.v,
                  r.v2, r.f0, r.f1, r.f2, r.f3);
    out << line;
  }
}

bool read_jsonl(std::istream& in, std::vector<TraceRecord>& out, std::string* error) {
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    TraceRecord r{};
    char name[32] = {0};
    // The exact inverse of the write_jsonl format string; %lg parses the
    // %.17g output losslessly.
    const int n = std::sscanf(
        line.c_str(),
        "{\"t\":%lg,\"kind\":\"%31[^\"]\",\"id\":%" SCNu64 ",\"a\":%" SCNu32
        ",\"v\":%lg,\"v2\":%lg,\"f\":[%" SCNd32 ",%" SCNd32 ",%" SCNd32
        ",%" SCNd32 "]}",
        &r.t, name, &r.id, &r.a, &r.v, &r.v2, &r.f0, &r.f1, &r.f2, &r.f3);
    TraceKind kind{};
    if (n != 10 || !kind_from_name(name, kind)) {
      fail(error, "trace jsonl: malformed record at line " + std::to_string(lineno));
      return false;
    }
    r.kind = static_cast<std::uint32_t>(kind);
    out.push_back(r);
  }
  return true;
}

void write_chrome_trace(const std::vector<TraceRecord>& records, std::ostream& out) {
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"
         "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"args\":"
         "{\"name\":\"procsim\"}},\n"
         "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\"args\":"
         "{\"name\":\"scheduler\"}}";
  char line[512];
  for (const TraceRecord& r : records) {
    switch (static_cast<TraceKind>(r.kind)) {
      case TraceKind::kArrival:
        std::snprintf(line, sizeof line,
                      ",\n{\"name\":\"arrival\",\"ph\":\"i\",\"s\":\"p\",\"pid\":1,"
                      "\"tid\":0,\"ts\":%.3f,\"args\":{\"job\":%" PRIu64
                      ",\"w\":%" PRId32 ",\"l\":%" PRId32 ",\"p\":%" PRId32 "}}",
                      r.t, r.id, r.f0, r.f1, r.f2);
        break;
      case TraceKind::kPassBegin:
        std::snprintf(line, sizeof line,
                      ",\n{\"name\":\"schedule_pass\",\"ph\":\"B\",\"pid\":1,"
                      "\"tid\":0,\"ts\":%.3f,\"args\":{\"queued\":%" PRIu32 "}}",
                      r.t, r.a);
        break;
      case TraceKind::kPassEnd:
        std::snprintf(line, sizeof line,
                      ",\n{\"name\":\"schedule_pass\",\"ph\":\"E\",\"pid\":1,"
                      "\"tid\":0,\"ts\":%.3f,\"args\":{\"probes\":%" PRIu32
                      ",\"nominees\":%" PRId32 ",\"started\":%" PRId32 "}}",
                      r.t, r.a, r.f0, r.f1);
        break;
      case TraceKind::kAllocSuccess:
        std::snprintf(line, sizeof line,
                      ",\n{\"name\":\"job %" PRIu64
                      "\",\"ph\":\"B\",\"pid\":1,\"tid\":%" PRIu64
                      ",\"ts\":%.3f,\"args\":{\"allocated\":%.17g,\"blocks\":%" PRIu32
                      ",\"base\":\"%" PRId32 ",%" PRId32 "\",\"shape\":\"%" PRId32
                      "x%" PRId32 "\"}}",
                      r.id, r.id + 1, r.t, r.v, r.a, r.f0, r.f1, r.f2, r.f3);
        break;
      case TraceKind::kComplete:
        std::snprintf(line, sizeof line,
                      ",\n{\"name\":\"job %" PRIu64
                      "\",\"ph\":\"E\",\"pid\":1,\"tid\":%" PRIu64
                      ",\"ts\":%.3f,\"args\":{\"turnaround\":%.17g}}",
                      r.id, r.id + 1, r.t, r.v);
        break;
      case TraceKind::kAllocFail:
        std::snprintf(line, sizeof line,
                      ",\n{\"name\":\"alloc_fail\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,"
                      "\"tid\":0,\"ts\":%.3f,\"args\":{\"job\":%" PRIu64
                      ",\"w\":%" PRId32 ",\"l\":%" PRId32 ",\"p\":%" PRId32 "}}",
                      r.t, r.id, r.f0, r.f1, r.f2);
        break;
      default:
        continue;  // packet-level kinds: JSONL only (see header)
    }
    out << line;
  }
  out << "\n]}\n";
}

}  // namespace procsim::obs
