#include "obs/counters.hpp"

#include <cinttypes>
#include <cstdio>
#include <ostream>

namespace procsim::obs {

namespace {

void field(std::ostream& out, const char* name, std::uint64_t v, bool& first) {
  char line[128];
  std::snprintf(line, sizeof line, "%s  \"%s\": %" PRIu64, first ? "" : ",\n", name, v);
  out << line;
  first = false;
}

/// Minimal JSON string escaping for counter/timer names (registry names are
/// plain identifiers today; quotes and backslashes are escaped defensively).
std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace

void Counters::write_json(std::ostream& out) const {
  out << "{\n";
  bool first = true;
  field(out, "jobs_arrived", jobs_arrived, first);
  field(out, "jobs_started", jobs_started, first);
  field(out, "jobs_completed", jobs_completed, first);
  field(out, "jobs_released", jobs_released, first);
  field(out, "schedule_passes", schedule_passes, first);
  field(out, "probe_calls", probe_calls, first);
  field(out, "nominations", nominations, first);
  field(out, "alloc_attempts", alloc_attempts, first);
  field(out, "alloc_successes", alloc_successes, first);
  field(out, "alloc_failures", alloc_failures, first);
  field(out, "alloc_fallbacks", alloc_fallbacks, first);
  field(out, "packets_injected", packets_injected, first);
  field(out, "packets_delivered", packets_delivered, first);
  field(out, "channel_blocks", channel_blocks, first);
  field(out, "telemetry_samples", telemetry_samples, first);
  field(out, "index_frontier_passes", index_frontier_passes, first);
  field(out, "index_frontier_hits", index_frontier_hits, first);
  field(out, "index_descent_queries", index_descent_queries, first);
  field(out, "index_first_fit_queries", index_first_fit_queries, first);
  field(out, "index_best_fit_queries", index_best_fit_queries, first);
  field(out, "calendar_rebuckets", calendar_rebuckets, first);
  field(out, "sim_events", sim_events, first);
  field(out, "net_runs_batched", net_runs_batched, first);
  field(out, "net_run_len_1", net_run_len_hist[0], first);
  field(out, "net_run_len_2_3", net_run_len_hist[1], first);
  field(out, "net_run_len_4_7", net_run_len_hist[2], first);
  field(out, "net_run_len_8_15", net_run_len_hist[3], first);
  field(out, "net_run_len_16_31", net_run_len_hist[4], first);
  field(out, "net_run_len_32_plus", net_run_len_hist[5], first);
  field(out, "net_truncations", net_truncations, first);
  field(out, "net_analytic_packets", net_analytic_packets, first);
  out << ",\n  \"extras\": {";
  for (std::size_t i = 0; i < extras.size(); ++i) {
    char line[160];
    std::snprintf(line, sizeof line, "%s\"%s\": %" PRIu64, i ? ", " : "",
                  escape(extras[i].first).c_str(), extras[i].second);
    out << line;
  }
  out << "},\n  \"timers\": {";
  for (std::size_t i = 0; i < timers.size(); ++i) {
    char line[160];
    std::snprintf(line, sizeof line, "%s\"%s\": %.6f", i ? ", " : "",
                  escape(timers[i].first).c_str(), timers[i].second);
    out << line;
  }
  out << "}\n}\n";
}

}  // namespace procsim::obs
