#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

namespace procsim::obs {

/// The counter/timer registry pillar: run-wide tallies bumped by the
/// Recorder's hot-path hooks plus subsystem tallies (occupancy index,
/// calendar queue, backfill reservations) pulled in once at the end of a
/// run. Dumped as one JSON report per run (write_json), printed by
/// `procsim_sweep --counters`.
///
/// Plain public fields on purpose: a hook costs one `++c.field`, no name
/// lookup — the zero-overhead-off contract extends to "cheap when on".
struct Counters {
  // Bumped by the SystemSim / Allocator / WormholeNetwork hooks.
  std::uint64_t jobs_arrived{0};
  std::uint64_t jobs_started{0};
  std::uint64_t jobs_completed{0};
  std::uint64_t jobs_released{0};
  std::uint64_t schedule_passes{0};
  std::uint64_t probe_calls{0};      ///< AllocProbe invocations (can_allocate)
  std::uint64_t nominations{0};      ///< select() returned a candidate
  std::uint64_t alloc_attempts{0};   ///< strategy allocate() entries
  std::uint64_t alloc_successes{0};
  std::uint64_t alloc_failures{0};
  std::uint64_t alloc_fallbacks{0};  ///< strategy left its contiguous fast path
  std::uint64_t packets_injected{0};
  std::uint64_t packets_delivered{0};
  std::uint64_t channel_blocks{0};
  std::uint64_t telemetry_samples{0};

  // Pulled from subsystem tallies at the end of each run (SystemSim::run).
  std::uint64_t index_frontier_passes{0};  ///< full maximal-rectangle sweeps
  std::uint64_t index_frontier_hits{0};    ///< largest_free answered from frontier
  std::uint64_t index_descent_queries{0};  ///< stale-narrow fast-path queries
  std::uint64_t index_first_fit_queries{0};
  std::uint64_t index_best_fit_queries{0};
  std::uint64_t calendar_rebuckets{0};     ///< calendar-queue resizes
  std::uint64_t sim_events{0};
  std::uint64_t net_runs_batched{0};       ///< batched-engine maximal runs started
  /// Maximal-run lengths (channels acquired per run), buckets
  /// 1, 2-3, 4-7, 8-15, 16-31, 32+.
  std::uint64_t net_run_len_hist[6]{};
  std::uint64_t net_truncations{0};        ///< reservations stolen by earlier attempts
  std::uint64_t net_analytic_packets{0};   ///< packets served by the analytic mode

  /// Named extension counters (e.g. Scheduler::export_counters — backfill
  /// reservations honored/broken) appended in registration order.
  std::vector<std::pair<std::string, std::uint64_t>> extras;
  /// Wall-clock phase timers in seconds, appended in completion order.
  /// Opt-in (Recorder::enable_phase_timers) — wall time is measurement, not
  /// simulation, and the overhead bench runs without it.
  std::vector<std::pair<std::string, double>> timers;

  void add_extra(std::string name, std::uint64_t value) {
    extras.emplace_back(std::move(name), value);
  }
  void add_timer(std::string name, double seconds) {
    timers.emplace_back(std::move(name), seconds);
  }

  void reset() { *this = Counters{}; }

  /// One JSON object, fixed key order (named fields, then "extras", then
  /// "timers") — byte-stable across runs with identical tallies.
  void write_json(std::ostream& out) const;
};

}  // namespace procsim::obs
