#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <type_traits>
#include <vector>

namespace procsim::obs {

/// What one TraceRecord describes. Values are part of the binary trace
/// format — append new kinds, never renumber.
enum class TraceKind : std::uint32_t {
  kArrival = 1,        ///< job entered the queue
  kPassBegin = 2,      ///< scheduling pass opened
  kPassEnd = 3,        ///< scheduling pass closed (nominee/probe/start counts)
  kAllocAttempt = 4,   ///< strategy-level allocate() entry
  kAllocSuccess = 5,   ///< job placed (first block + block count)
  kAllocFail = 6,      ///< allocation attempt returned nothing
  kAllocFallback = 7,  ///< strategy left its contiguous fast path (carve/split)
  kRelease = 8,        ///< job's processors returned to the free pool
  kComplete = 9,       ///< job departed
  kPacketInject = 10,  ///< packet entered the wormhole network
  kPacketDeliver = 11, ///< packet's last flit drained
  kChannelBlock = 12,  ///< packet header queued on a busy channel
};

/// Canonical lower-snake name of a kind ("arrival", "pass_begin", ...);
/// "unknown" for out-of-range values.
[[nodiscard]] const char* kind_name(TraceKind k) noexcept;

/// Inverse of kind_name; false when `name` is not a known kind.
[[nodiscard]] bool kind_from_name(const std::string& name, TraceKind& out) noexcept;

/// One fixed-width trace record. Field semantics per kind (unused fields
/// stay zero):
///
///   kind            id        v            v2       a        f0..f3
///   arrival         job                                      w, l, p
///   pass_begin      pass#                          queued
///   pass_end        pass#                          probes   nominees, started, queued_after
///   alloc_attempt                                           w, l, p
///   alloc_success   job       allocated             blocks  base_x, base_y, blk_w, blk_l
///   alloc_fail      job                                     w, l, p
///   alloc_fallback                                          w, l, p
///   release         job       allocated
///   complete        job       turnaround
///   packet_inject   tag                                     src, dst
///   packet_deliver  tag       latency      blocked  hops    src, dst
///   channel_block   tag                                     channel
///
/// Trivially copyable by design: the binary writer emits the records raw
/// (native endianness, see write_binary).
struct TraceRecord {
  double t{0};           ///< sim time of the event
  double v{0};           ///< kind-specific value (latency, turnaround, ...)
  double v2{0};          ///< second value (deliver: blocked time)
  std::uint64_t id{0};   ///< job id / packet tag / pass sequence
  std::uint32_t kind{0}; ///< TraceKind
  std::uint32_t a{0};    ///< kind-specific count
  std::int32_t f0{0}, f1{0}, f2{0}, f3{0};  ///< shape / coordinates

  friend bool operator==(const TraceRecord&, const TraceRecord&) = default;
};
static_assert(sizeof(TraceRecord) == 56, "trace format is fixed-width");
static_assert(std::is_trivially_copyable_v<TraceRecord>);

/// Append-only in-memory record stream — the Recorder's tracing pillar.
/// Deliberately minimal: a hot-path append must cost one push_back.
class TraceBuffer {
 public:
  void append(const TraceRecord& r) { records_.push_back(r); }
  [[nodiscard]] const std::vector<TraceRecord>& records() const noexcept {
    return records_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return records_.size(); }
  [[nodiscard]] bool empty() const noexcept { return records_.empty(); }
  void clear() { records_.clear(); }

 private:
  std::vector<TraceRecord> records_;
};

/// Binary trace file: a fixed header (magic "PSTRACE\0", format version,
/// record size, record count) followed by the raw records. Native
/// endianness — the trace is a run artifact consumed on the machine that
/// produced it (trace_convert), not an interchange format; JSONL is.
void write_binary(const TraceBuffer& buf, std::ostream& out);

/// Reads a write_binary stream back. Returns false (with a message in
/// `error` when non-null) on a bad magic, version, record size, or a
/// truncated payload.
[[nodiscard]] bool read_binary(std::istream& in, std::vector<TraceRecord>& out,
                               std::string* error = nullptr);

/// One JSON object per record, fixed key order, doubles printed with %.17g
/// so read_jsonl reproduces every record bit for bit (lossless round-trip;
/// pinned by test_obs).
void write_jsonl(const std::vector<TraceRecord>& records, std::ostream& out);

/// Parses write_jsonl output. Returns false (with the offending line number
/// in `error` when non-null) on any malformed line.
[[nodiscard]] bool read_jsonl(std::istream& in, std::vector<TraceRecord>& out,
                              std::string* error = nullptr);

/// Chrome trace_event JSON ("chrome://tracing" / Perfetto loadable): one
/// B/E duration pair per scheduling pass (tid 0) and per job (tid = job id
/// + 1, alloc_success -> complete), instants for arrivals and allocation
/// failures. Sim time maps to microseconds (1 cycle = 1 us). Packet-level
/// records are deliberately not emitted — a churn run has millions and the
/// JSONL export carries them; the Chrome view is for queue/job dynamics.
void write_chrome_trace(const std::vector<TraceRecord>& records, std::ostream& out);

}  // namespace procsim::obs
