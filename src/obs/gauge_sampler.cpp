#include "obs/gauge_sampler.hpp"

#include <cinttypes>
#include <cstdio>
#include <ostream>

namespace procsim::obs {

GaugeSampler::Sample GaugeSampler::sample(std::size_t i) const {
  Sample s;
  s.t = t_[i];
  s.queue_depth = queue_depth_[i];
  s.running_jobs = running_jobs_[i];
  s.busy_nodes = busy_nodes_[i];
  s.free_nodes = free_nodes_[i];
  s.max_free_run = max_free_run_[i];
  s.largest_rect = largest_rect_[i];
  s.external_frag = external_frag_[i];
  return s;
}

void GaugeSampler::clear() {
  t_.clear();
  queue_depth_.clear();
  running_jobs_.clear();
  busy_nodes_.clear();
  free_nodes_.clear();
  max_free_run_.clear();
  largest_rect_.clear();
  external_frag_.clear();
}

void GaugeSampler::write_csv(std::ostream& out) const {
  out << kCsvHeader << "\n";
  char line[256];
  for (std::size_t i = 0; i < t_.size(); ++i) {
    std::snprintf(line, sizeof line,
                  "%.6g,%" PRIu64 ",%" PRIu64 ",%" PRId64 ",%" PRId64 ",%" PRId32
                  ",%" PRId64 ",%.6g\n",
                  t_[i], queue_depth_[i], running_jobs_[i], busy_nodes_[i],
                  free_nodes_[i], max_free_run_[i], largest_rect_[i],
                  external_frag_[i]);
    out << line;
  }
}

}  // namespace procsim::obs
