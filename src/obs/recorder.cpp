#include "obs/recorder.hpp"

namespace procsim::obs {

void Recorder::enable_trace() {
  if (!trace_) trace_ = std::make_unique<TraceBuffer>();
}

void Recorder::enable_telemetry(double interval) {
  sampler_ = std::make_unique<GaugeSampler>(interval);
}

void Recorder::reset_run() {
  counters_.reset();
  if (trace_) trace_->clear();
  if (sampler_) sampler_->clear();
  now_ = 0;
}

}  // namespace procsim::obs
