#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace procsim::util {

/// Fixed-size pool of worker threads draining a shared FIFO task queue.
///
/// The pool is deliberately simple: simulation work units (one replication,
/// one figure cell) run for milliseconds to seconds, so queue contention is
/// negligible and FIFO order keeps scheduling easy to reason about. All
/// determinism guarantees in procsim come from the *callers*: work items own
/// their RNG substream and write to pre-sized slots, never to shared state.
class ThreadPool {
 public:
  /// Spawns `max(threads, 1)` workers, so submit() can never deadlock on an
  /// empty pool. Use resolve_threads() to map a `--threads=N` value first.
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueues `fn` and returns a future for its result.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> result = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return result;
  }

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  bool stop_{false};
};

/// Maps a user-facing `--threads=N` value to a worker count: 0 means "use
/// all hardware threads", anything else is taken literally.
[[nodiscard]] std::size_t resolve_threads(std::size_t requested) noexcept;

/// Runs `fn(0) ... fn(n-1)`, blocking until all calls return. With a null or
/// single-thread pool the calls happen inline, in index order, on the calling
/// thread — the exact serial semantics. With a larger pool the calls are
/// distributed across workers; `fn` must therefore only touch per-index state.
/// The first exception thrown by any call is rethrown after the join.
void parallel_for(ThreadPool* pool, std::size_t n,
                  const std::function<void(std::size_t)>& fn);

}  // namespace procsim::util
