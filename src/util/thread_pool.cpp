#include "util/thread_pool.hpp"

#include <exception>

namespace procsim::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = 1;
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to drain
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

std::size_t resolve_threads(std::size_t requested) noexcept {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw ? hw : 1;
}

void parallel_for(ThreadPool* pool, std::size_t n,
                  const std::function<void(std::size_t)>& fn) {
  if (pool == nullptr || pool->size() <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::vector<std::future<void>> pending;
  pending.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    pending.push_back(pool->submit([&fn, i] { fn(i); }));
  std::exception_ptr first_error;
  for (std::future<void>& f : pending) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace procsim::util
