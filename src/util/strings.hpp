#pragma once

#include <cctype>
#include <string_view>

namespace procsim::util {

/// ASCII case-insensitive equality — the name-matching rule shared by the
/// allocator and scheduler registries.
[[nodiscard]] inline bool iequals(std::string_view a, std::string_view b) noexcept {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i])))
      return false;
  return true;
}

}  // namespace procsim::util
