#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace procsim::cluster {

/// Fresh per-mesh load, sampled by ClusterSim at each dispatch decision.
/// Dispatchers that model staleness copy these into a private snapshot and
/// ignore the fresh values between refreshes.
struct MeshLoadView {
  std::int64_t queue_depth{0};      ///< jobs waiting in the mesh's FCFS queue
  std::int64_t free_processors{0};  ///< unallocated nodes right now
  std::int64_t running_jobs{0};     ///< jobs currently placed on the mesh
};

/// A load-balancing dispatch policy: given the fresh per-mesh load and the
/// subset of meshes the job fits on, returns the index of the mesh to send
/// it to. Implementations must be deterministic given construction seed and
/// call sequence — cluster CSV byte-determinism rides on it.
class Dispatcher {
 public:
  virtual ~Dispatcher() = default;

  /// Picks one mesh from `eligible` (indices into `loads`, ascending,
  /// non-empty). `now` is the simulation clock, used by snapshot policies
  /// to decide whether a refresh is due.
  [[nodiscard]] virtual std::size_t pick(double now,
                                         const std::vector<MeshLoadView>& loads,
                                         const std::vector<std::size_t>& eligible) = 0;

  /// Canonical policy name ("round_robin", ...).
  [[nodiscard]] virtual std::string_view name() const = 0;
};

/// Factory mirroring alloc::make_allocator: `name` must be one of
/// known_dispatchers(). `stale_refresh` parameterizes the snapshot policies
/// (stale_queue, improved) and is ignored by the rest; `seed` feeds the
/// random policy's private stream. Throws std::invalid_argument listing the
/// known policies for anything else.
[[nodiscard]] std::unique_ptr<Dispatcher> make_dispatcher(const std::string& name,
                                                          double stale_refresh,
                                                          std::uint64_t seed);

}  // namespace procsim::cluster
