#include "cluster/cluster_sim.hpp"

#include <chrono>
#include <stdexcept>
#include <string>
#include <utility>

#include "alloc/registry.hpp"
#include "des/rng.hpp"
#include "obs/recorder.hpp"

namespace procsim::cluster {

/// One mesh of the fleet: its allocator and scheduler instances (each mesh
/// schedules independently) and the SystemSim wired to the shared clock.
struct ClusterSim::MeshUnit {
  std::unique_ptr<alloc::Allocator> allocator;
  std::unique_ptr<sched::Scheduler> scheduler;
  std::unique_ptr<core::SystemSim> sim;
};

namespace {

bool fits(const workload::Job& job, const mesh::Geometry& geom) {
  return job.width <= geom.width() && job.length <= geom.length() &&
         job.processors <= geom.nodes();
}

}  // namespace

ClusterSim::ClusterSim(ClusterSimConfig cfg)
    : cfg_(std::move(cfg)), sim_(cfg_.event_engine) {
  const std::size_t n = cfg_.spec.size();
  if (n == 0) throw std::invalid_argument("ClusterSim: empty cluster spec");
  meshes_raw_.reserve(n);
  meshes_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const MeshSpec& m = cfg_.spec.meshes[i];
    const std::string alloc_name = m.alloc.empty() ? cfg_.default_alloc : m.alloc;
    auto unit = std::make_unique<MeshUnit>();
    alloc::AllocatorParams params;
    // One RNG substream per mesh: mesh i's randomness is independent of its
    // siblings and of the mesh count, like replications are of each other.
    params.seed = des::substream_seed(cfg_.seed, i);
    unit->allocator = alloc::make_allocator(alloc_name, m.geom, params);
    unit->scheduler = sched::make_scheduler(cfg_.scheduler);
    core::SystemConfig sys;
    sys.geom = m.geom;
    sys.net = cfg_.net;
    sys.think_time = cfg_.think_time;
    // Per-mesh completion targets stay off: the cluster gates warmup and
    // stop centrally via the completion hook (a mesh can't know the fleet's
    // progress).
    sys.target_completions = 0;
    sys.warmup_completions = 0;
    sys.seed = des::substream_seed(cfg_.seed ^ 0x5EEDF00DULL, i);
    sys.max_events = cfg_.max_events;
    sys.event_engine = cfg_.event_engine;
    sys.recorder = cfg_.recorder;
    unit->sim = std::make_unique<core::SystemSim>(sys, *unit->allocator,
                                                  *unit->scheduler, &sim_);
    unit->sim->set_completion_hook(&ClusterSim::on_mesh_complete, this);
    meshes_.push_back(unit->sim.get());
    meshes_raw_.push_back(std::move(unit));
  }
}

ClusterSim::~ClusterSim() = default;

core::RunMetrics ClusterSim::run(workload::Source& source) {
  const auto wall_start = std::chrono::steady_clock::now();
  sim_.reset();
  for (core::SystemSim* mesh : meshes_) mesh->begin_external_run();
  dispatcher_ = make_dispatcher(cfg_.spec.balance, cfg_.spec.stale_refresh,
                                des::substream_seed(cfg_.seed, 0xD15Bu));
  completed_ = 0;
  migrations_ = 0;
  migration_latency_paid_ = 0;
  stale_errors_ = 0;
  turnaround_ = stats::Welford{};
  service_ = stats::Welford{};
  inbound_.assign(meshes_.size(), 0);

  source_ = &source;
  pump_arrival();
  sim_.run(cfg_.max_events);
  source_ = nullptr;

  // Aggregate the fleet: per-mesh end-of-run metrics first (this also does
  // each mesh's recorder pulls, minus the shared-clock counters).
  core::RunMetrics out;
  stats::Welford util;
  std::int64_t total_nodes = 0;
  double node_weighted_util = 0;
  for (core::SystemSim* mesh : meshes_) {
    const core::RunMetrics m = mesh->finish_external_run();
    out.packet_latency.merge(m.packet_latency);
    out.packet_blocking.merge(m.packet_blocking);
    out.packet_hops.merge(m.packet_hops);
    out.packets += m.packets;
    out.mean_queue_length += m.mean_queue_length;  // fleet-wide queued jobs
    util.add(m.utilization);
    const std::int64_t nodes = mesh->config().geom.nodes();
    node_weighted_util += m.utilization * static_cast<double>(nodes);
    total_nodes += nodes;
  }
  out.turnaround = turnaround_;
  out.service = service_;
  out.utilization = node_weighted_util / static_cast<double>(total_nodes);
  out.completed =
      completed_ >= cfg_.warmup_completions ? completed_ - cfg_.warmup_completions : 0;
  out.makespan = sim_.now();
  out.events = sim_.events_executed();
  out.cluster.meshes = meshes_.size();
  out.cluster.util_min = util.min();
  out.cluster.util_max = util.max();
  out.cluster.util_mean = util.mean();
  out.cluster.util_stddev = util.stddev();
  out.cluster.migrations = migrations_;
  out.cluster.migration_latency = migration_latency_paid_;
  out.cluster.stale_errors = stale_errors_;

  if (cfg_.recorder != nullptr) {
    // The shared-clock tallies the per-mesh finish skipped, added exactly
    // once, plus the fleet-level counters.
    obs::Counters& c = cfg_.recorder->counters();
    c.calendar_rebuckets += sim_.queue().rebucket_count();
    c.sim_events += sim_.events_executed();
    c.extras.emplace_back("cluster_meshes", meshes_.size());
    c.extras.emplace_back("cluster_migrations", migrations_);
    c.extras.emplace_back("cluster_stale_errors", stale_errors_);
    if (cfg_.recorder->timers_enabled()) {
      const std::chrono::duration<double> wall =
          std::chrono::steady_clock::now() - wall_start;
      c.add_timer("run_wall_s", wall.count());
    }
  }
  return out;
}

void ClusterSim::pump_arrival() {
  const std::optional<double> next = source_->peek_arrival();
  if (!next) return;
  if (*next < sim_.now())
    throw std::invalid_argument("ClusterSim: source arrivals must be non-decreasing");
  sim_.schedule_at(*next, [this] {
    std::optional<workload::Job> job = source_->next_job();
    if (!job) return;
    pump_arrival();
    dispatch(std::move(*job));
  });
}

void ClusterSim::dispatch(workload::Job job) {
  const std::size_t n = meshes_.size();
  loads_.resize(n);
  eligible_.clear();
  for (std::size_t i = 0; i < n; ++i) {
    loads_[i].queue_depth = static_cast<std::int64_t>(meshes_[i]->queue_depth());
    loads_[i].free_processors = meshes_[i]->free_processors();
    loads_[i].running_jobs = static_cast<std::int64_t>(meshes_[i]->running_jobs());
    if (fits(job, meshes_[i]->config().geom)) eligible_.push_back(i);
  }
  if (eligible_.empty()) {
    throw std::invalid_argument(
        "ClusterSim: job " + std::to_string(job.id) + " (" +
        std::to_string(job.width) + "x" + std::to_string(job.length) +
        ") fits no mesh in the cluster");
  }
  const std::size_t pick = dispatcher_->pick(sim_.now(), loads_, eligible_);
  // A staleness error is a decision the fresh state disagrees with: the
  // chosen mesh's queue is strictly deeper than the shortest eligible one.
  std::int64_t fresh_min = loads_[eligible_.front()].queue_depth;
  for (const std::size_t e : eligible_) {
    if (loads_[e].queue_depth < fresh_min) fresh_min = loads_[e].queue_depth;
  }
  if (loads_[pick].queue_depth > fresh_min) ++stale_errors_;
  meshes_[pick]->submit(std::move(job));
}

void ClusterSim::on_mesh_complete(void* ctx, core::SystemSim& mesh,
                                  const core::JobRecord& rec) {
  static_cast<ClusterSim*>(ctx)->handle_completion(mesh, rec);
}

void ClusterSim::handle_completion(core::SystemSim& mesh, const core::JobRecord& rec) {
  if (measuring()) {
    turnaround_.add(rec.turnaround());
    service_.add(rec.service());
    if (sink_ != nullptr) sink_->on_job(rec);
  }
  ++completed_;
  if (cfg_.target_completions != 0 &&
      completed_ >= cfg_.target_completions + cfg_.warmup_completions) {
    sim_.stop();
    return;
  }
  if (cfg_.spec.migrate) {
    for (std::size_t i = 0; i < meshes_.size(); ++i) {
      if (meshes_[i] == &mesh) {
        maybe_migrate(i);
        break;
      }
    }
  }
}

void ClusterSim::maybe_migrate(std::size_t receiver) {
  core::SystemSim& r = *meshes_[receiver];
  // Underloaded = idle queue with capacity and nothing already on its way.
  if (r.queue_depth() != 0 || r.free_processors() <= 0 || inbound_[receiver] != 0)
    return;
  const mesh::Geometry r_geom = r.config().geom;
  // Overloaded donor: deepest queue with at least two waiting jobs (stealing
  // a lone queued job just moves the wait plus latency) whose youngest
  // queued job actually fits the receiver. Ties go to the lowest index.
  std::size_t donor = meshes_.size();
  std::int64_t donor_depth = 1;
  for (std::size_t i = 0; i < meshes_.size(); ++i) {
    if (i == receiver) continue;
    const auto depth = static_cast<std::int64_t>(meshes_[i]->queue_depth());
    if (depth < 2 || depth <= donor_depth) continue;
    const workload::Job* candidate = meshes_[i]->peek_last_queued();
    if (candidate == nullptr || !fits(*candidate, r_geom)) continue;
    donor = i;
    donor_depth = depth;
  }
  if (donor == meshes_.size()) return;
  std::optional<workload::Job> job = meshes_[donor]->steal_last_queued();
  if (!job) return;  // unreachable: depth was checked above
  ++migrations_;
  migration_latency_paid_ += cfg_.spec.migrate_latency;
  ++inbound_[receiver];
  // The job travels: it re-queues on the receiver only after the modeled
  // migration latency. Exactly one copy exists throughout — it left the
  // donor's arena above and enters the receiver's at submit time.
  sim_.schedule_in(cfg_.spec.migrate_latency, [this, receiver, j = std::move(*job)] {
    --inbound_[receiver];
    meshes_[receiver]->submit(j);
  });
}

}  // namespace procsim::cluster
