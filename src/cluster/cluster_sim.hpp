#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster_spec.hpp"
#include "cluster/dispatcher.hpp"
#include "core/system_sim.hpp"
#include "des/simulator.hpp"
#include "sched/registry.hpp"
#include "stats/welford.hpp"
#include "workload/source.hpp"

namespace procsim::cluster {

/// Cluster-wide run configuration — the SystemConfig of the fleet. Per-mesh
/// geometry/allocator come from the spec; everything here is shared.
struct ClusterSimConfig {
  ClusterSpec spec{};
  network::NetworkParams net{};     ///< one network model per mesh, same knobs
  double think_time{0};
  std::size_t target_completions{1000};  ///< cluster-wide stop (0 = drain)
  std::size_t warmup_completions{0};     ///< cluster-wide warmup threshold
  std::uint64_t seed{1};
  std::uint64_t max_events{2'000'000'000};
  des::EventEngine event_engine{des::EventQueue::default_engine()};
  obs::Recorder* recorder{nullptr};
  /// Allocator registry name used by meshes whose group carries none.
  std::string default_alloc{"GABL"};
  sched::SchedSpec scheduler{};     ///< each mesh gets its own instance
};

/// N SystemSim meshes under ONE event clock behind a pluggable Dispatcher —
/// the fleet-scale layer. Jobs stream from a single Source; every arrival is
/// routed by the dispatch policy to a mesh it fits (width<=W, length<=L);
/// each mesh then schedules, allocates and routes exactly as a single-mesh
/// run does. With migrate=steal, a mesh going idle (empty queue, free
/// processors, no inbound job already in flight) steals the most recently
/// queued job from the deepest-queued sibling, paying the modeled migration
/// latency before the job re-queues — the job is moved whole (one resident
/// copy ever, never duplicated, never lost).
///
/// Determinism: one clock, one (time, seq) pop order, one RNG substream per
/// mesh — fixed-seed cluster runs are bit-identical everywhere, so the
/// serial-vs-threaded CSV byte contract holds for cluster sweeps too.
class ClusterSim {
 public:
  explicit ClusterSim(ClusterSimConfig cfg);
  ~ClusterSim();

  ClusterSim(const ClusterSim&) = delete;
  ClusterSim& operator=(const ClusterSim&) = delete;

  /// Runs the stream to the cluster-wide completion target (or drain).
  /// Returns cluster-aggregated metrics: turnaround/service over all
  /// measured completions, merged packet statistics, node-weighted
  /// utilization, and RunMetrics::cluster filled with the per-mesh spread
  /// and dispatcher/migration tallies.
  [[nodiscard]] core::RunMetrics run(workload::Source& source);

  /// Cluster-level per-job record observer (observation-only, like
  /// SystemSim's): one JobRecord per measured completion, any mesh.
  void set_metrics_sink(core::MetricsSink* sink) noexcept { sink_ = sink; }

  [[nodiscard]] std::size_t meshes() const noexcept { return meshes_.size(); }
  [[nodiscard]] const core::SystemSim& mesh(std::size_t i) const { return *meshes_[i]; }

 private:
  struct MeshUnit;  ///< allocator + scheduler + SystemSim, one per mesh

  void pump_arrival();
  void dispatch(workload::Job job);
  /// The completion hook target (see SystemSim::CompletionHook).
  static void on_mesh_complete(void* ctx, core::SystemSim& mesh,
                               const core::JobRecord& rec);
  void handle_completion(core::SystemSim& mesh, const core::JobRecord& rec);
  /// Steals for `receiver` if it is idle and a donor exists (migrate=steal).
  void maybe_migrate(std::size_t receiver);
  [[nodiscard]] bool measuring() const noexcept {
    return completed_ >= cfg_.warmup_completions;
  }

  ClusterSimConfig cfg_;
  des::Simulator sim_;  ///< the one shared clock
  std::vector<std::unique_ptr<MeshUnit>> meshes_raw_;
  std::vector<core::SystemSim*> meshes_;  ///< flat view of meshes_raw_
  std::unique_ptr<Dispatcher> dispatcher_;
  core::MetricsSink* sink_{nullptr};

  // Per-run state.
  workload::Source* source_{nullptr};
  std::vector<MeshLoadView> loads_;        ///< scratch for dispatch decisions
  std::vector<std::size_t> eligible_;      ///< scratch for dispatch decisions
  std::vector<std::int32_t> inbound_;      ///< in-flight migrations per mesh
  stats::Welford turnaround_;
  stats::Welford service_;
  std::uint64_t completed_{0};
  std::uint64_t migrations_{0};
  double migration_latency_paid_{0};
  std::uint64_t stale_errors_{0};
};

}  // namespace procsim::cluster
