#include "cluster/cluster_spec.hpp"

#include <cctype>
#include <charconv>
#include <sstream>

#include "alloc/registry.hpp"

namespace procsim::cluster {
namespace {

std::string lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) s.remove_prefix(1);
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) s.remove_suffix(1);
  return s;
}

bool parse_i32(std::string_view s, std::int32_t& out) {
  s = trim(s);
  if (s.empty()) return false;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), out);
  return ec == std::errc{} && ptr == s.data() + s.size();
}

bool parse_f64(std::string_view s, double& out) {
  s = trim(s);
  if (s.empty()) return false;
  // from_chars<double> is spotty on older libstdc++; stod via string is fine
  // for spec parsing (cold path).
  try {
    std::size_t pos = 0;
    out = std::stod(std::string(s), &pos);
    return pos == s.size();
  } catch (...) {
    return false;
  }
}

bool fail(std::string* error, std::string msg) {
  if (error != nullptr) *error = std::move(msg);
  return false;
}

constexpr std::int32_t kMaxSide = 4096;  // same bound as --mesh

/// Parses one group `N x ( W x L [: ALLOC] )` and appends N MeshSpecs.
bool parse_group(std::string_view g, std::vector<MeshSpec>& out, std::string* error) {
  g = trim(g);
  const std::size_t open = g.find('(');
  if (open == std::string_view::npos || g.empty() || g.back() != ')') {
    return fail(error, "cluster group '" + std::string(g) +
                           "' is not of the form Nx(WxL[:ALLOC])");
  }
  std::string_view count_part = trim(g.substr(0, open));
  if (count_part.empty() || (count_part.back() != 'x' && count_part.back() != 'X')) {
    return fail(error, "cluster group '" + std::string(g) +
                           "' is missing the count prefix Nx(...)");
  }
  count_part.remove_suffix(1);
  std::int32_t count = 0;
  if (!parse_i32(count_part, count) || count < 1) {
    return fail(error, "cluster group count '" + std::string(count_part) +
                           "' must be a positive integer");
  }
  std::string_view inner = g.substr(open + 1, g.size() - open - 2);
  std::string alloc;
  if (const std::size_t colon = inner.find(':'); colon != std::string_view::npos) {
    const std::string_view alloc_part = trim(inner.substr(colon + 1));
    const auto parsed = alloc::parse_allocator_name(alloc_part);
    if (!parsed) {
      std::string known;
      for (const std::string& k : alloc::known_allocators()) {
        if (!known.empty()) known += ", ";
        known += k;
      }
      return fail(error, "unknown allocator '" + std::string(alloc_part) +
                             "' in cluster group; known: " + known);
    }
    alloc = parsed->canonical;
    inner = inner.substr(0, colon);
  }
  const std::size_t x = lower(inner).find('x');
  if (x == std::string::npos) {
    return fail(error, "cluster group geometry '" + std::string(inner) +
                           "' is not of the form WxL");
  }
  std::int32_t w = 0;
  std::int32_t l = 0;
  if (!parse_i32(inner.substr(0, x), w) || !parse_i32(inner.substr(x + 1), l) ||
      w < 1 || l < 1 || w > kMaxSide || l > kMaxSide) {
    return fail(error, "cluster group geometry '" + std::string(inner) +
                           "' must be WxL with 1 <= side <= 4096");
  }
  for (std::int32_t i = 0; i < count; ++i) {
    out.push_back(MeshSpec{mesh::Geometry{w, l}, alloc});
  }
  return true;
}

std::string format_double(double v) {
  // Integral values print without the trailing ".000000" so canonical specs
  // stay readable ("stale=10", not "stale=10.000000").
  if (v == static_cast<double>(static_cast<long long>(v))) {
    return std::to_string(static_cast<long long>(v));
  }
  std::ostringstream os;
  os << v;
  return os.str();
}

}  // namespace

std::vector<std::string> known_dispatchers() {
  return {"random", "round_robin", "shortest_queue", "stale_queue", "improved"};
}

std::string known_dispatcher_list() {
  std::string out;
  for (const std::string& n : known_dispatchers()) {
    if (!out.empty()) out += ", ";
    out += n;
  }
  return out;
}

std::optional<ClusterSpec> parse_cluster_spec(std::string_view spec, std::string* error) {
  ClusterSpec out;
  std::string_view rest = trim(spec);
  if (rest.empty()) {
    fail(error, "empty cluster spec");
    return std::nullopt;
  }

  // Split off ';'-separated key=value options; the first segment is the
  // group list.
  std::vector<std::string_view> segments;
  while (!rest.empty()) {
    const std::size_t semi = rest.find(';');
    segments.push_back(trim(rest.substr(0, semi)));
    if (semi == std::string_view::npos) break;
    rest.remove_prefix(semi + 1);
  }

  // Group list: group ("+" group)*.
  std::string_view groups = segments.front();
  while (!groups.empty()) {
    // '+' inside parentheses never occurs (groups are Nx(WxL[:ALLOC])), so a
    // flat split is safe.
    const std::size_t plus = groups.find('+');
    if (!parse_group(groups.substr(0, plus), out.meshes, error)) return std::nullopt;
    if (plus == std::string_view::npos) break;
    groups.remove_prefix(plus + 1);
  }
  if (out.meshes.empty()) {
    fail(error, "cluster spec has no mesh groups");
    return std::nullopt;
  }

  bool migrate_set = false;
  for (std::size_t i = 1; i < segments.size(); ++i) {
    const std::string_view seg = segments[i];
    if (seg.empty()) continue;
    const std::size_t eq = seg.find('=');
    if (eq == std::string_view::npos) {
      fail(error, "cluster option '" + std::string(seg) + "' is not key=value");
      return std::nullopt;
    }
    const std::string key = lower(trim(seg.substr(0, eq)));
    const std::string_view value = trim(seg.substr(eq + 1));
    if (key == "balance") {
      const std::string name = lower(value);
      bool known = false;
      for (const std::string& k : known_dispatchers()) known = known || k == name;
      if (!known) {
        fail(error, "unknown dispatcher '" + std::string(value) +
                        "'; known: " + known_dispatcher_list());
        return std::nullopt;
      }
      out.balance = name;
    } else if (key == "stale") {
      if (!parse_f64(value, out.stale_refresh) || out.stale_refresh <= 0.0) {
        fail(error, "cluster option stale=" + std::string(value) +
                        " must be a positive refresh period");
        return std::nullopt;
      }
    } else if (key == "migrate") {
      const std::string mode = lower(value);
      if (mode == "steal") {
        out.migrate = true;
      } else if (mode == "off") {
        out.migrate = false;
      } else {
        fail(error, "cluster option migrate=" + std::string(value) +
                        " must be 'steal' or 'off'");
        return std::nullopt;
      }
      migrate_set = true;
    } else if (key == "lat") {
      if (!parse_f64(value, out.migrate_latency) || out.migrate_latency < 0.0) {
        fail(error, "cluster option lat=" + std::string(value) +
                        " must be a non-negative migration latency");
        return std::nullopt;
      }
    } else {
      fail(error, "unknown cluster option '" + key +
                      "'; known: balance, stale, migrate, lat");
      return std::nullopt;
    }
  }
  (void)migrate_set;

  // Canonical spelling: re-run-length-encode consecutive identical groups,
  // then append non-default options in fixed order. parse(canonical) == spec.
  std::string canon;
  std::size_t i = 0;
  while (i < out.meshes.size()) {
    std::size_t j = i;
    while (j < out.meshes.size() && out.meshes[j].geom == out.meshes[i].geom &&
           out.meshes[j].alloc == out.meshes[i].alloc) {
      ++j;
    }
    if (!canon.empty()) canon += "+";
    canon += std::to_string(j - i) + "x(" + std::to_string(out.meshes[i].geom.width()) +
             "x" + std::to_string(out.meshes[i].geom.length());
    if (!out.meshes[i].alloc.empty()) canon += ":" + out.meshes[i].alloc;
    canon += ")";
    i = j;
  }
  canon += ";balance=" + out.balance;
  if (out.balance == "stale_queue" || out.balance == "improved") {
    canon += ";stale=" + format_double(out.stale_refresh);
  }
  if (out.migrate) {
    canon += ";migrate=steal;lat=" + format_double(out.migrate_latency);
  }
  out.canonical = std::move(canon);
  return out;
}

}  // namespace procsim::cluster
