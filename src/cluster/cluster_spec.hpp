#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "mesh/coord.hpp"

namespace procsim::cluster {

/// One mesh of a cluster: its geometry and, optionally, a per-mesh allocator
/// registry name overriding the experiment's default — heterogeneous
/// clusters are plain spec strings, no enum axis to widen.
struct MeshSpec {
  mesh::Geometry geom{16, 22};
  std::string alloc;  ///< canonical allocator name; empty = experiment default
};

/// A validated, canonical cluster spec — the fleet axis of an experiment.
/// Grammar (case-insensitive keys/names; parse_cluster_spec validates):
///
///   cluster := group ("+" group)* (";" key "=" value)*
///   group   := N "x(" W "x" L [":" ALLOC] ")"
///   keys    := balance = random | round_robin | shortest_queue
///                      | stale_queue | improved        (default round_robin)
///            | stale   = T   refresh period of the stale snapshot
///                            (stale_queue / improved only; default 10)
///            | migrate = steal | off                   (default off)
///            | lat     = L   migration latency paid per stolen job
///                            (default 50)
///
/// Examples:
///   4x(32x32);balance=shortest_queue;stale=10;migrate=steal;lat=50
///   2x(32x32:GABL)+2x(16x16:FirstFit);balance=improved
///
/// `canonical` is the normalized spelling; parse_cluster_spec(canonical)
/// reproduces the identical spec (round-trip pinned by test).
struct ClusterSpec {
  std::vector<MeshSpec> meshes;    ///< expanded groups, in spec order
  std::string balance{"round_robin"};
  double stale_refresh{10.0};      ///< snapshot period (stale_queue/improved)
  bool migrate{false};             ///< work-stealing migration enabled
  double migrate_latency{50.0};    ///< simulated cost per migrated job
  std::string canonical;

  [[nodiscard]] std::size_t size() const noexcept { return meshes.size(); }
  [[nodiscard]] std::int64_t total_nodes() const noexcept {
    std::int64_t n = 0;
    for (const MeshSpec& m : meshes) n += m.geom.nodes();
    return n;
  }
  friend bool operator==(const ClusterSpec& a, const ClusterSpec& b) {
    return a.canonical == b.canonical;
  }
};

/// The dispatch-policy names `balance=` accepts, in registry order — the
/// listing every unknown-name error prints (the same fail-fast idiom as
/// workload::make_source).
[[nodiscard]] std::vector<std::string> known_dispatchers();

/// known_dispatchers() joined with ", ".
[[nodiscard]] std::string known_dispatcher_list();

/// Case-insensitive parse of a cluster spec. Returns nullopt and (when
/// `error` is non-null) a one-line reason for malformed specs: bad group
/// syntax, zero counts, unknown allocator names, unknown balance policies,
/// unknown keys, or non-positive stale/lat values. Geometry sides obey the
/// same 1..4096 bound as `--mesh`.
[[nodiscard]] std::optional<ClusterSpec> parse_cluster_spec(std::string_view spec,
                                                            std::string* error = nullptr);

}  // namespace procsim::cluster
