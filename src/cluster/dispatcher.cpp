#include "cluster/dispatcher.hpp"

#include <limits>
#include <stdexcept>

#include "cluster/cluster_spec.hpp"
#include "des/rng.hpp"

namespace procsim::cluster {
namespace {

/// Uniform pick among the eligible meshes from a private xoshiro stream.
class RandomDispatcher final : public Dispatcher {
 public:
  explicit RandomDispatcher(std::uint64_t seed) : rng_(seed) {}

  std::size_t pick(double /*now*/, const std::vector<MeshLoadView>& /*loads*/,
                   const std::vector<std::size_t>& eligible) override {
    return eligible[static_cast<std::size_t>(rng_() % eligible.size())];
  }

  std::string_view name() const override { return "random"; }

 private:
  des::Xoshiro256SS rng_;
};

/// Cycles through mesh indices; skips ahead past ineligible meshes so every
/// eligible mesh is still visited in cyclic order.
class RoundRobinDispatcher final : public Dispatcher {
 public:
  std::size_t pick(double /*now*/, const std::vector<MeshLoadView>& loads,
                   const std::vector<std::size_t>& eligible) override {
    const std::size_t n = loads.size();
    for (std::size_t tried = 0; tried < n; ++tried) {
      const std::size_t candidate = next_++ % n;
      for (const std::size_t e : eligible) {
        if (e == candidate) return candidate;
      }
    }
    return eligible.front();  // unreachable: eligible is non-empty
  }

  std::string_view name() const override { return "round_robin"; }

 private:
  std::size_t next_{0};
};

std::size_t argmin_depth(const std::vector<MeshLoadView>& loads,
                         const std::vector<std::size_t>& eligible) {
  std::size_t best = eligible.front();
  std::int64_t best_depth = std::numeric_limits<std::int64_t>::max();
  for (const std::size_t e : eligible) {
    if (loads[e].queue_depth < best_depth) {
      best = e;
      best_depth = loads[e].queue_depth;
    }
  }
  return best;
}

/// Always consults the fresh load view: the omniscient baseline.
class ShortestQueueDispatcher final : public Dispatcher {
 public:
  std::size_t pick(double /*now*/, const std::vector<MeshLoadView>& loads,
                   const std::vector<std::size_t>& eligible) override {
    return argmin_depth(loads, eligible);
  }

  std::string_view name() const override { return "shortest_queue"; }
};

/// Shortest-queue over a snapshot refreshed every `refresh` time units —
/// models a dispatcher polling mesh state periodically instead of reading
/// it per decision. Between refreshes the fresh `loads` are ignored, so
/// decisions can be (measurably) stale.
class StaleQueueDispatcher : public Dispatcher {
 public:
  explicit StaleQueueDispatcher(double refresh) : refresh_(refresh) {}

  std::size_t pick(double now, const std::vector<MeshLoadView>& loads,
                   const std::vector<std::size_t>& eligible) override {
    maybe_refresh(now, loads);
    return argmin_depth(snapshot_, eligible);
  }

  std::string_view name() const override { return "stale_queue"; }

 protected:
  void maybe_refresh(double now, const std::vector<MeshLoadView>& loads) {
    if (!have_snapshot_ || now - last_refresh_ >= refresh_) {
      snapshot_ = loads;
      last_refresh_ = now;
      have_snapshot_ = true;
    }
  }

  double refresh_;
  double last_refresh_{0.0};
  bool have_snapshot_{false};
  std::vector<MeshLoadView> snapshot_;
};

/// The hybrid: stale snapshot plus a local increment of the chosen mesh's
/// queue depth between refreshes. Cheap like stale_queue (no per-decision
/// poll) but avoids the herd effect of sending every arrival in a refresh
/// window to the same then-shortest queue.
class ImprovedDispatcher final : public StaleQueueDispatcher {
 public:
  explicit ImprovedDispatcher(double refresh) : StaleQueueDispatcher(refresh) {}

  std::size_t pick(double now, const std::vector<MeshLoadView>& loads,
                   const std::vector<std::size_t>& eligible) override {
    maybe_refresh(now, loads);
    const std::size_t chosen = argmin_depth(snapshot_, eligible);
    snapshot_[chosen].queue_depth += 1;
    return chosen;
  }

  std::string_view name() const override { return "improved"; }
};

}  // namespace

std::unique_ptr<Dispatcher> make_dispatcher(const std::string& name, double stale_refresh,
                                            std::uint64_t seed) {
  if (name == "random") return std::make_unique<RandomDispatcher>(seed);
  if (name == "round_robin") return std::make_unique<RoundRobinDispatcher>();
  if (name == "shortest_queue") return std::make_unique<ShortestQueueDispatcher>();
  if (name == "stale_queue") return std::make_unique<StaleQueueDispatcher>(stale_refresh);
  if (name == "improved") return std::make_unique<ImprovedDispatcher>(stale_refresh);
  throw std::invalid_argument("unknown dispatcher '" + name +
                              "'; known: " + known_dispatcher_list());
}

}  // namespace procsim::cluster
