#pragma once

#include <cstdint>

#include "stats/welford.hpp"

namespace procsim::stats {

/// Two-sided Student-t critical value for the given confidence level
/// (supported: 0.90, 0.95, 0.99) and degrees of freedom (df >= 1; large df
/// falls back to the normal quantile).
[[nodiscard]] double t_critical(std::uint64_t df, double confidence);

/// A mean estimate with its confidence half-width.
struct Interval {
  double mean{0};
  double half_width{0};
  std::uint64_t samples{0};

  [[nodiscard]] double lo() const noexcept { return mean - half_width; }
  [[nodiscard]] double hi() const noexcept { return mean + half_width; }

  /// half_width / |mean|; infinity when the mean is zero but the spread is
  /// not, zero when both are.
  [[nodiscard]] double relative_error() const noexcept;
};

/// Confidence interval for the mean of the accumulated samples.
/// Requires at least two samples (half-width is infinite below that).
[[nodiscard]] Interval confidence_interval(const Welford& w, double confidence = 0.95);

}  // namespace procsim::stats
