#pragma once

#include <stdexcept>

namespace procsim::stats {

/// Time-weighted average of a piecewise-constant signal, e.g. the number of
/// busy processors. `set(t, v)` records that the signal takes value `v` from
/// time `t` onward; `average(t)` integrates up to `t`.
class TimeWeighted {
 public:
  explicit TimeWeighted(double start_time = 0, double initial_value = 0) noexcept
      : last_time_(start_time), value_(initial_value), start_(start_time) {}

  /// Records a new value from time `t` (monotonically non-decreasing).
  void set(double t, double v) {
    if (t < last_time_) throw std::invalid_argument("TimeWeighted: time went backwards");
    integral_ += value_ * (t - last_time_);
    last_time_ = t;
    value_ = v;
  }

  /// Adds `dv` to the current value at time `t`.
  void add(double t, double dv) { set(t, value_ + dv); }

  [[nodiscard]] double current() const noexcept { return value_; }

  /// Integral of the signal over [start, t].
  [[nodiscard]] double integral(double t) const {
    if (t < last_time_) throw std::invalid_argument("TimeWeighted: time went backwards");
    return integral_ + value_ * (t - last_time_);
  }

  /// Time average over [start, t]; 0 over an empty interval.
  [[nodiscard]] double average(double t) const {
    const double span = t - start_;
    return span > 0 ? integral(t) / span : 0.0;
  }

  /// Restarts the observation window at time `t`, keeping the current value.
  /// Used to discard the warm-up transient.
  void reset_window(double t) {
    if (t < last_time_) throw std::invalid_argument("TimeWeighted: time went backwards");
    integral_ = 0;
    last_time_ = t;
    start_ = t;
  }

 private:
  double last_time_;
  double value_;
  double start_;
  double integral_{0};
};

}  // namespace procsim::stats
