#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <limits>

namespace procsim::stats {

/// Streaming quantile estimate via the P² algorithm (Jain & Chlamtac 1985):
/// five markers track the target quantile and its neighbours, adjusted with
/// piecewise-parabolic interpolation as observations arrive. O(1) memory and
/// O(1) per observation — the point of a sketch: a sweep cell can fold
/// millions of per-job waits into a P99 without ever holding them.
///
/// Exact while fewer than five observations have arrived (the markers then
/// *are* the sorted sample); the classic P² error bounds apply beyond that.
/// Deterministic: the estimate is a pure function of the observation
/// sequence, so fixed-seed replications reproduce it bit for bit.
class P2Quantile {
 public:
  /// `p` in (0, 1), e.g. 0.5, 0.95, 0.99.
  explicit P2Quantile(double p) noexcept : p_(p) {}

  void add(double x) noexcept {
    if (n_ < 5) {
      // Insert into the sorted marker prefix (5 elements at most).
      std::size_t i = n_++;
      while (i > 0 && q_[i - 1] > x) {
        q_[i] = q_[i - 1];
        --i;
      }
      q_[i] = x;
      if (n_ == 5) {
        for (int i = 0; i < 5; ++i) pos_[i] = i + 1;
        desired_[0] = 1;
        desired_[1] = 1 + 2 * p_;
        desired_[2] = 1 + 4 * p_;
        desired_[3] = 3 + 2 * p_;
        desired_[4] = 5;
      }
      return;
    }

    // Locate the cell, bumping the extreme markers when x falls outside.
    int k;
    if (x < q_[0]) {
      q_[0] = x;
      k = 0;
    } else if (x >= q_[4]) {
      q_[4] = std::max(q_[4], x);
      k = 3;
    } else {
      k = 0;
      while (k < 3 && x >= q_[k + 1]) ++k;
    }
    for (int i = k + 1; i < 5; ++i) ++pos_[i];
    desired_[1] += p_ / 2;
    desired_[2] += p_;
    desired_[3] += (1 + p_) / 2;
    desired_[4] += 1;
    ++n_;

    // Nudge the three interior markers toward their desired positions.
    for (int i = 1; i <= 3; ++i) {
      const double d = desired_[i] - pos_[i];
      if ((d >= 1 && pos_[i + 1] - pos_[i] > 1) ||
          (d <= -1 && pos_[i - 1] - pos_[i] < -1)) {
        const int s = d >= 0 ? 1 : -1;
        const double candidate = parabolic(i, s);
        q_[i] = (q_[i - 1] < candidate && candidate < q_[i + 1]) ? candidate
                                                                 : linear(i, s);
        pos_[i] += s;
      }
    }
  }

  /// The current estimate; NaN before any observation. With fewer than five
  /// observations this is the exact order statistic at ceil(p·n).
  [[nodiscard]] double estimate() const noexcept {
    if (n_ == 0) return std::numeric_limits<double>::quiet_NaN();
    if (n_ < 5) {
      const auto rank = static_cast<std::uint64_t>(p_ * static_cast<double>(n_));
      return q_[std::min(rank, n_ - 1)];
    }
    return q_[2];
  }

  [[nodiscard]] std::uint64_t count() const noexcept { return n_; }
  [[nodiscard]] double probability() const noexcept { return p_; }

 private:
  [[nodiscard]] double parabolic(int i, int s) const noexcept {
    const double d = static_cast<double>(s);
    return q_[i] + d / (pos_[i + 1] - pos_[i - 1]) *
                       ((pos_[i] - pos_[i - 1] + d) * (q_[i + 1] - q_[i]) /
                            (pos_[i + 1] - pos_[i]) +
                        (pos_[i + 1] - pos_[i] - d) * (q_[i] - q_[i - 1]) /
                            (pos_[i] - pos_[i - 1]));
  }
  [[nodiscard]] double linear(int i, int s) const noexcept {
    return q_[i] + static_cast<double>(s) * (q_[i + s] - q_[i]) /
                       (pos_[i + s] - pos_[i]);
  }

  double p_;
  std::uint64_t n_{0};
  std::array<double, 5> q_{};    ///< marker heights
  std::array<double, 5> pos_{};  ///< marker positions (1-based observation ranks)
  std::array<double, 5> desired_{};
};

}  // namespace procsim::stats
