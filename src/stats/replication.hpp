#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "stats/confidence.hpp"
#include "stats/welford.hpp"

namespace procsim::stats {

/// Stopping rule for independent replications, as used in the paper:
/// "simulation results are averaged over enough independent runs so that the
/// confidence level is 95% and the relative errors do not exceed 5%".
struct ReplicationPolicy {
  std::uint64_t min_replications{3};
  std::uint64_t max_replications{30};
  double confidence{0.95};
  double max_relative_error{0.05};
  /// Metrics whose relative error drives the stopping rule; empty = every
  /// accumulated metric (the historical behaviour). Callers that fold
  /// high-variance analytics (tail quantiles, starvation counts) into the
  /// same observation maps pin this to the paper's aggregate metrics so the
  /// analytics never change how many replications a cell runs — the
  /// fixed-seed figure CSVs stay byte-identical with or without them.
  std::vector<std::string> precision_metrics;
};

/// Collects one scalar observation per metric per replication and decides
/// when the policy's precision target is met across *all* registered metrics.
class ReplicationController {
 public:
  explicit ReplicationController(ReplicationPolicy policy = {}) : policy_(policy) {}

  /// Records replication results: one value per metric name.
  void add_replication(const std::unordered_map<std::string, double>& metrics);

  /// True once every metric meets the relative-error target (or the cap on
  /// replications is reached).
  [[nodiscard]] bool done() const;

  [[nodiscard]] std::uint64_t replications() const noexcept { return reps_; }
  [[nodiscard]] Interval interval(const std::string& metric) const;
  [[nodiscard]] const ReplicationPolicy& policy() const noexcept { return policy_; }
  [[nodiscard]] std::vector<std::string> metric_names() const;

 private:
  ReplicationPolicy policy_;
  std::uint64_t reps_{0};
  std::unordered_map<std::string, Welford> acc_;
};

}  // namespace procsim::stats
