#include "stats/parallel_replication.hpp"

#include <algorithm>
#include <vector>

namespace procsim::stats {

ReplicationController ParallelReplicationRunner::run(const ReplicationFn& fn) const {
  ReplicationController controller(policy_);
  const std::size_t workers = pool_ ? pool_->size() : 1;
  // done() never fires below min_replications, even above max_replications —
  // so the serial loop's true cap is the larger of the two.
  const std::uint64_t cap =
      std::max(policy_.min_replications, policy_.max_replications);
  std::uint64_t next = 0;  // index of the first replication not yet computed
  while (!controller.done() && next < cap) {
    // First wave: the minimum the policy will demand anyway (free of waste).
    // Later waves: one task per worker, the speculation granularity.
    std::uint64_t want = controller.replications() < policy_.min_replications
                             ? policy_.min_replications - controller.replications()
                             : static_cast<std::uint64_t>(std::max<std::size_t>(workers, 1));
    want = std::min(want, cap - next);
    std::vector<std::unordered_map<std::string, double>> wave(want);
    util::parallel_for(pool_, static_cast<std::size_t>(want),
                       [&](std::size_t i) { wave[i] = fn(next + i); });
    for (auto& observations : wave) {
      if (controller.done()) break;  // speculative extras: the serial loop stops here
      controller.add_replication(observations);
    }
    next += want;
  }
  return controller;
}

}  // namespace procsim::stats
