#pragma once

#include <cstdint>
#include <vector>

#include "core/metrics_sink.hpp"
#include "stats/quantile_sketch.hpp"
#include "stats/welford.hpp"

namespace procsim::stats {

/// Knobs of the per-job fairness analytics.
struct JobMetricsConfig {
  /// A job is starved when its wait exceeds `starvation_factor` × the median
  /// wait of the run. Kim's aging disciplines and the lookahead/backfill
  /// unfairness question both live in this tail.
  double starvation_factor{4.0};
  /// Bounded-slowdown runtime floor tau (JobRecord::bounded_slowdown). The
  /// default is one cycle: every simulated service takes at least the nominal
  /// packet time, so tau mainly guards the degenerate zero-service record.
  double slowdown_tau{1.0};
};

/// P50/P95/P99 + extremes of one per-job distribution.
struct QuantileSummary {
  double p50{0};
  double p95{0};
  double p99{0};
  double max{0};
  double mean{0};
  std::uint64_t count{0};
};

/// One job the starvation rule flagged.
struct StarvedJob {
  std::uint64_t id{0};
  double arrival{0};
  double wait{0};
};

/// The starvation report: which jobs waited more than k× the median wait.
struct StarvationReport {
  double median_wait{0};  ///< sketch estimate the threshold derives from
  double threshold{0};    ///< starvation_factor × median_wait
  std::vector<StarvedJob> jobs;  ///< flagged jobs in completion order
  [[nodiscard]] std::size_t count() const noexcept { return jobs.size(); }
};

/// Folds the simulator's JobRecord stream into wait / turnaround /
/// bounded-slowdown quantiles and a starvation report.
///
/// Quantiles run through O(1)-memory P² sketches, so the layer never holds or
/// sorts the full distributions; the starvation report additionally logs each
/// job's (id, arrival, wait) — 24 bytes per completion — because "which jobs
/// starved" is an identity question a sketch cannot answer. The log is the
/// only per-job state, and callers that need pure O(1) memory can read the
/// quantile summaries and ignore the report.
class JobMetrics final : public core::MetricsSink {
 public:
  explicit JobMetrics(JobMetricsConfig cfg = {});

  void on_job(const core::JobRecord& record) override;

  [[nodiscard]] QuantileSummary wait() const;
  [[nodiscard]] QuantileSummary turnaround() const;
  [[nodiscard]] QuantileSummary bounded_slowdown() const;

  /// Flags jobs with wait > starvation_factor × median wait. The median is
  /// the final sketch estimate, so the report is computed on demand from the
  /// complete run (a job early in the stream is judged by the same threshold
  /// as a late one).
  [[nodiscard]] StarvationReport starvation() const;

  [[nodiscard]] std::uint64_t completed() const noexcept { return waits_.size(); }
  [[nodiscard]] const JobMetricsConfig& config() const noexcept { return cfg_; }

  /// Fresh run (same configuration).
  void reset();

 private:
  struct Sketch {
    P2Quantile p50{0.50};
    P2Quantile p95{0.95};
    P2Quantile p99{0.99};
    Welford moments;
    void add(double x) noexcept;
    [[nodiscard]] QuantileSummary summary() const;
  };

  JobMetricsConfig cfg_;
  Sketch wait_;
  Sketch turnaround_;
  Sketch slowdown_;
  std::vector<StarvedJob> waits_;  ///< (id, arrival, wait) per completion
};

}  // namespace procsim::stats
