#include "stats/confidence.hpp"

#include <array>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace procsim::stats {
namespace {

// Two-sided critical values t_{alpha/2, df} for df = 1..30.
constexpr std::array<double, 30> kT90 = {
    6.314, 2.920, 2.353, 2.132, 2.015, 1.943, 1.895, 1.860, 1.833, 1.812,
    1.796, 1.782, 1.771, 1.761, 1.753, 1.746, 1.740, 1.734, 1.729, 1.725,
    1.721, 1.717, 1.714, 1.711, 1.708, 1.706, 1.703, 1.701, 1.699, 1.697};
constexpr std::array<double, 30> kT95 = {
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
    2.201,  2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
    2.080,  2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042};
constexpr std::array<double, 30> kT99 = {
    63.657, 9.925, 5.841, 4.604, 4.032, 3.707, 3.499, 3.355, 3.250, 3.169,
    3.106,  3.055, 3.012, 2.977, 2.947, 2.921, 2.898, 2.878, 2.861, 2.845,
    2.831,  2.819, 2.807, 2.797, 2.787, 2.779, 2.771, 2.763, 2.756, 2.750};

}  // namespace

double t_critical(std::uint64_t df, double confidence) {
  const std::array<double, 30>* table = nullptr;
  double z = 0;
  if (confidence == 0.90) {
    table = &kT90;
    z = 1.645;
  } else if (confidence == 0.95) {
    table = &kT95;
    z = 1.960;
  } else if (confidence == 0.99) {
    table = &kT99;
    z = 2.576;
  } else {
    throw std::invalid_argument("t_critical: unsupported confidence level");
  }
  if (df == 0) throw std::invalid_argument("t_critical: df must be >= 1");
  if (df <= 30) return (*table)[df - 1];
  return z;
}

double Interval::relative_error() const noexcept {
  if (mean != 0.0) return half_width / std::abs(mean);
  return half_width == 0.0 ? 0.0 : std::numeric_limits<double>::infinity();
}

Interval confidence_interval(const Welford& w, double confidence) {
  Interval iv;
  iv.mean = w.mean();
  iv.samples = w.count();
  if (w.count() < 2) {
    iv.half_width = std::numeric_limits<double>::infinity();
    return iv;
  }
  const double se = w.stddev() / std::sqrt(static_cast<double>(w.count()));
  iv.half_width = t_critical(w.count() - 1, confidence) * se;
  return iv;
}

}  // namespace procsim::stats
