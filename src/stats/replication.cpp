#include "stats/replication.hpp"

#include <stdexcept>

namespace procsim::stats {

void ReplicationController::add_replication(
    const std::unordered_map<std::string, double>& metrics) {
  for (const auto& [name, value] : metrics) acc_[name].add(value);
  ++reps_;
}

bool ReplicationController::done() const {
  if (reps_ < policy_.min_replications) return false;
  if (reps_ >= policy_.max_replications) return true;
  const auto gated = [this](const std::string& name) {
    if (policy_.precision_metrics.empty()) return true;
    for (const std::string& g : policy_.precision_metrics)
      if (g == name) return true;
    return false;
  };
  for (const auto& [name, w] : acc_) {
    if (!gated(name)) continue;
    const Interval iv = confidence_interval(w, policy_.confidence);
    if (iv.relative_error() > policy_.max_relative_error) return false;
  }
  return true;
}

Interval ReplicationController::interval(const std::string& metric) const {
  const auto it = acc_.find(metric);
  if (it == acc_.end())
    throw std::out_of_range("ReplicationController: unknown metric " + metric);
  return confidence_interval(it->second, policy_.confidence);
}

std::vector<std::string> ReplicationController::metric_names() const {
  std::vector<std::string> names;
  names.reserve(acc_.size());
  for (const auto& [name, _] : acc_) names.push_back(name);
  return names;
}

}  // namespace procsim::stats
