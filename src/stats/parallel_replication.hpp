#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>

#include "stats/replication.hpp"
#include "util/thread_pool.hpp"

namespace procsim::stats {

/// Farms independent replications across a thread pool while reproducing the
/// serial stopping rule bit for bit.
///
/// The sequential-stopping loop ("run one more replication until the 95 % / 5 %
/// target holds") is inherently ordered: whether replication k runs depends on
/// the results of replications 0..k-1. We parallelise it by *speculation*:
/// waves of replications are computed concurrently, then fed to the
/// ReplicationController strictly in replication order; results the serial
/// loop would never have computed are discarded. Because each replication's
/// RNG substream is a pure function of its index, the controller observes the
/// exact sequence the serial loop observes and stops at the same count — the
/// aggregate is bit-identical for any thread count.
class ParallelReplicationRunner {
 public:
  /// One replication: index -> scalar observations per metric. Must be pure
  /// in the index (derive all randomness from it) and thread-safe.
  using ReplicationFn =
      std::function<std::unordered_map<std::string, double>(std::uint64_t)>;

  /// `pool` may be null (or single-threaded); replications then run inline in
  /// index order with zero speculation — the serial path.
  ParallelReplicationRunner(ReplicationPolicy policy, util::ThreadPool* pool)
      : policy_(policy), pool_(pool) {}

  /// Runs replications of `fn` until the policy's precision target is met and
  /// returns the controller holding the aggregated intervals.
  [[nodiscard]] ReplicationController run(const ReplicationFn& fn) const;

 private:
  ReplicationPolicy policy_;
  util::ThreadPool* pool_;
};

}  // namespace procsim::stats
