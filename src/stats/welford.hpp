#pragma once

#include <cmath>
#include <cstdint>
#include <limits>

namespace procsim::stats {

/// Numerically stable running mean/variance (Welford's algorithm).
/// Used for every per-job and per-packet metric in the simulator, where a
/// naive sum-of-squares would lose precision over millions of samples.
class Welford {
 public:
  void add(double x) noexcept {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }

  /// Merges another accumulator (Chan et al. parallel combination).
  void merge(const Welford& other) noexcept {
    if (other.n_ == 0) return;
    if (n_ == 0) {
      *this = other;
      return;
    }
    const double na = static_cast<double>(n_);
    const double nb = static_cast<double>(other.n_);
    const double delta = other.mean_ - mean_;
    const double n = na + nb;
    mean_ += delta * nb / n;
    m2_ += other.m2_ + delta * delta * na * nb / n;
    n_ += other.n_;
    if (other.min_ < min_) min_ = other.min_;
    if (other.max_ > max_) max_ = other.max_;
  }

  [[nodiscard]] std::uint64_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }

  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const noexcept {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const noexcept { return std::sqrt(variance()); }

  [[nodiscard]] double min() const noexcept {
    return n_ ? min_ : std::numeric_limits<double>::quiet_NaN();
  }
  [[nodiscard]] double max() const noexcept {
    return n_ ? max_ : std::numeric_limits<double>::quiet_NaN();
  }

  void reset() noexcept { *this = Welford{}; }

 private:
  std::uint64_t n_{0};
  double mean_{0};
  double m2_{0};
  double min_{std::numeric_limits<double>::infinity()};
  double max_{-std::numeric_limits<double>::infinity()};
};

}  // namespace procsim::stats
