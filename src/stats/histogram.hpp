#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

namespace procsim::stats {

/// Fixed-width histogram over [lo, hi); out-of-range samples clamp into the
/// first/last bin. Used to validate workload-model distributions in tests
/// and to summarise trace statistics in the examples.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins) : lo_(lo), hi_(hi), counts_(bins, 0) {
    if (!(hi > lo) || bins == 0) throw std::invalid_argument("Histogram: bad range/bins");
  }

  void add(double x) noexcept {
    const double t = (x - lo_) / (hi_ - lo_);
    auto idx = static_cast<std::int64_t>(t * static_cast<double>(counts_.size()));
    if (idx < 0) idx = 0;
    if (idx >= static_cast<std::int64_t>(counts_.size()))
      idx = static_cast<std::int64_t>(counts_.size()) - 1;
    ++counts_[static_cast<std::size_t>(idx)];
    ++total_;
  }

  [[nodiscard]] std::uint64_t count(std::size_t bin) const { return counts_.at(bin); }
  [[nodiscard]] std::size_t bins() const noexcept { return counts_.size(); }
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }

  /// Fraction of samples in `bin` (0 when empty).
  [[nodiscard]] double fraction(std::size_t bin) const {
    return total_ ? static_cast<double>(counts_.at(bin)) / static_cast<double>(total_) : 0.0;
  }

  [[nodiscard]] double bin_lo(std::size_t bin) const {
    return lo_ + (hi_ - lo_) * static_cast<double>(bin) / static_cast<double>(counts_.size());
  }

 private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_{0};
};

}  // namespace procsim::stats
