#include "stats/job_metrics.hpp"

namespace procsim::stats {

JobMetrics::JobMetrics(JobMetricsConfig cfg) : cfg_(cfg) {}

void JobMetrics::Sketch::add(double x) noexcept {
  p50.add(x);
  p95.add(x);
  p99.add(x);
  moments.add(x);
}

QuantileSummary JobMetrics::Sketch::summary() const {
  QuantileSummary s;
  s.count = moments.count();
  if (s.count == 0) return s;  // all-zero summary, not NaNs: keeps the
                               // observation maps CSV-friendly on empty runs
  s.p50 = p50.estimate();
  s.p95 = p95.estimate();
  s.p99 = p99.estimate();
  s.max = moments.max();
  s.mean = moments.mean();
  return s;
}

void JobMetrics::on_job(const core::JobRecord& record) {
  wait_.add(record.wait());
  turnaround_.add(record.turnaround());
  slowdown_.add(record.bounded_slowdown(cfg_.slowdown_tau));
  waits_.push_back(StarvedJob{record.id, record.arrival, record.wait()});
}

QuantileSummary JobMetrics::wait() const { return wait_.summary(); }
QuantileSummary JobMetrics::turnaround() const { return turnaround_.summary(); }
QuantileSummary JobMetrics::bounded_slowdown() const { return slowdown_.summary(); }

StarvationReport JobMetrics::starvation() const {
  StarvationReport report;
  if (waits_.empty()) return report;
  report.median_wait = wait_.p50.estimate();
  report.threshold = cfg_.starvation_factor * report.median_wait;
  for (const StarvedJob& j : waits_)
    if (j.wait > report.threshold) report.jobs.push_back(j);
  return report;
}

void JobMetrics::reset() { *this = JobMetrics(cfg_); }

}  // namespace procsim::stats
