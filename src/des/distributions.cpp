#include "des/distributions.hpp"

#include <numbers>

namespace procsim::des {

double sample_normal(Xoshiro256SS& rng) {
  // Box–Muller, discarding the second variate so each call consumes a fixed
  // number of engine draws (two) — important for stream reproducibility.
  const double u1 = 1.0 - rng.next_double();  // (0, 1]
  const double u2 = rng.next_double();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * std::numbers::pi * u2);
}

std::size_t sample_discrete(Xoshiro256SS& rng, std::span<const double> weights) {
  if (weights.empty()) throw std::invalid_argument("sample_discrete: empty weights");
  double total = 0;
  for (double w : weights) {
    if (w < 0) throw std::invalid_argument("sample_discrete: negative weight");
    total += w;
  }
  if (total <= 0) throw std::invalid_argument("sample_discrete: zero total weight");
  double x = rng.next_double() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    x -= weights[i];
    if (x < 0) return i;
  }
  return weights.size() - 1;  // floating-point edge: land in the last bucket
}

}  // namespace procsim::des
