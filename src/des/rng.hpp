#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace procsim::des {

/// SplitMix64: used only to expand a user seed into engine state.
/// Reference: Steele, Lea, Flood, "Fast splittable pseudorandom number
/// generators", OOPSLA 2014.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 (Blackman & Vigna) — the simulator's primary generator.
/// Deterministic across platforms (unlike distribution adaptors in <random>),
/// 2^256-1 period, and `jump()` provides 2^128 independent sub-streams so
/// every replication and every workload component can draw from its own
/// stream without correlation.
class Xoshiro256SS {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256SS(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Advances the state by 2^128 draws; equivalent to that many calls.
  void jump() noexcept;

  /// Returns a new engine 2^128 draws ahead, advancing this one.
  [[nodiscard]] Xoshiro256SS split() noexcept {
    Xoshiro256SS child = *this;
    jump();
    return child;
  }

  /// Uniform double in [0, 1) with 53 random mantissa bits.
  [[nodiscard]] double next_double() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

/// Derives the seed of substream `stream` from a base seed. Replication k of
/// an experiment seeds its engines from substream_seed(seed, k), so any
/// replication can be (re)computed independently of the others — the property
/// the parallel replication runner relies on. The double SplitMix64 pass
/// decorrelates both nearby base seeds and nearby stream indices.
[[nodiscard]] std::uint64_t substream_seed(std::uint64_t base,
                                           std::uint64_t stream) noexcept;

}  // namespace procsim::des
