#include "des/simulator.hpp"

namespace procsim::des {

void Simulator::flush_batch() {
  // An action may defer further actions (batch_end_ refills) or schedule new
  // events at now_ (the caller's loop keeps the batch open); the swap keeps
  // iteration valid either way. batch_scratch_ recycles the vector capacity.
  while (!batch_end_.empty() && !stopped_ &&
         (queue_.empty() || queue_.next_time() > now_)) {
    batch_scratch_.clear();
    std::swap(batch_scratch_, batch_end_);
    for (EventAction& action : batch_scratch_) {
      action();
      if (stopped_) break;
    }
  }
}

std::uint64_t Simulator::run(std::uint64_t max_events) {
  std::uint64_t fired = 0;
  stopped_ = false;
  while (!queue_.empty() && !stopped_ && fired < max_events) {
    Event ev = queue_.pop();
    now_ = ev.time;
    ev.action();
    ++fired;
    ++executed_;
    // Timestamp exhausted: run the deferred batch-end work before the clock
    // advances. flush_batch re-checks, since an action may extend the batch.
    if (!batch_end_.empty() && (queue_.empty() || queue_.next_time() > now_))
      flush_batch();
  }
  return fired;
}

std::uint64_t Simulator::run_until(SimTime horizon, std::uint64_t max_events) {
  std::uint64_t fired = 0;
  stopped_ = false;
  while (!queue_.empty() && !stopped_ && fired < max_events &&
         queue_.next_time() <= horizon) {
    Event ev = queue_.pop();
    now_ = ev.time;
    ev.action();
    ++fired;
    ++executed_;
    if (!batch_end_.empty() && (queue_.empty() || queue_.next_time() > now_))
      flush_batch();
  }
  if (!stopped_ && (queue_.empty() || queue_.next_time() > horizon)) now_ = horizon;
  return fired;
}

}  // namespace procsim::des
