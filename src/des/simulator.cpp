#include "des/simulator.hpp"

namespace procsim::des {

std::uint64_t Simulator::run(std::uint64_t max_events) {
  std::uint64_t fired = 0;
  stopped_ = false;
  while (!queue_.empty() && !stopped_ && fired < max_events) {
    Event ev = queue_.pop();
    now_ = ev.time;
    ev.action();
    ++fired;
    ++executed_;
  }
  return fired;
}

std::uint64_t Simulator::run_until(SimTime horizon, std::uint64_t max_events) {
  std::uint64_t fired = 0;
  stopped_ = false;
  while (!queue_.empty() && !stopped_ && fired < max_events &&
         queue_.next_time() <= horizon) {
    Event ev = queue_.pop();
    now_ = ev.time;
    ev.action();
    ++fired;
    ++executed_;
  }
  if (!stopped_ && (queue_.empty() || queue_.next_time() > horizon)) now_ = horizon;
  return fired;
}

}  // namespace procsim::des
