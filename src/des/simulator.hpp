#pragma once

#include <cstdint>
#include <limits>
#include <stdexcept>
#include <utility>

#include "des/event_queue.hpp"

namespace procsim::des {

/// Discrete-event simulation kernel: a clock plus a pending-event set.
///
/// Components schedule closures at absolute or relative times; `run()` fires
/// them in (time, insertion) order until the queue drains, `stop()` is
/// called, or an event horizon is reached. The kernel itself holds no model
/// state, which keeps every substrate (network, allocator, workload)
/// independently testable against a bare Simulator.
class Simulator {
 public:
  /// Current simulation time.
  [[nodiscard]] SimTime now() const noexcept { return now_; }

  /// Schedules `action` at absolute time `when` (must be >= now()).
  void schedule_at(SimTime when, EventAction action) {
    if (when < now_) throw std::invalid_argument("Simulator: scheduling into the past");
    queue_.push(when, std::move(action));
  }

  /// Schedules `action` `delay` time units from now (delay >= 0).
  void schedule_in(SimTime delay, EventAction action) {
    schedule_at(now_ + delay, std::move(action));
  }

  /// Runs until the event queue is empty, `stop()` is called, or more than
  /// `max_events` events have fired (guard against runaway models).
  /// Returns the number of events executed.
  std::uint64_t run(std::uint64_t max_events = std::numeric_limits<std::uint64_t>::max());

  /// Runs like `run()` but never past time `horizon`; events at exactly
  /// `horizon` still fire. The clock is left at min(horizon, last event).
  std::uint64_t run_until(SimTime horizon,
                          std::uint64_t max_events = std::numeric_limits<std::uint64_t>::max());

  /// Makes `run()` return after the currently executing event completes.
  void stop() noexcept { stopped_ = true; }

  [[nodiscard]] bool stopped() const noexcept { return stopped_; }
  [[nodiscard]] std::uint64_t events_executed() const noexcept { return executed_; }
  [[nodiscard]] const EventQueue& queue() const noexcept { return queue_; }

  /// Resets clock, queue and counters for a fresh replication.
  void reset() {
    queue_.clear();
    now_ = 0;
    executed_ = 0;
    stopped_ = false;
  }

 private:
  EventQueue queue_;
  SimTime now_{0};
  std::uint64_t executed_{0};
  bool stopped_{false};
};

}  // namespace procsim::des
