#pragma once

#include <cstdint>
#include <limits>
#include <stdexcept>
#include <utility>
#include <vector>

#include "des/event_queue.hpp"

namespace procsim::des {

/// Discrete-event simulation kernel: a clock plus a pending-event set.
///
/// Components schedule closures at absolute or relative times; `run()` fires
/// them in (time, insertion) order until the queue drains, `stop()` is
/// called, or an event horizon is reached. The kernel itself holds no model
/// state, which keeps every substrate (network, allocator, workload)
/// independently testable against a bare Simulator.
class Simulator {
 public:
  /// Pending-event set backed by the process default engine (the
  /// PROCSIM_EVENT_ENGINE environment variable, calendar when unset).
  Simulator() = default;
  /// Pins the event-queue engine for this kernel — how the benches compare
  /// engines within one process.
  explicit Simulator(EventEngine engine) : queue_(engine) {}

  /// Current simulation time.
  [[nodiscard]] SimTime now() const noexcept { return now_; }

  /// Schedules `action` at absolute time `when` (must be >= now()).
  void schedule_at(SimTime when, EventAction action) {
    if (when < now_) throw std::invalid_argument("Simulator: scheduling into the past");
    queue_.push(when, std::move(action));
  }

  /// Schedules `action` `delay` time units from now (delay >= 0).
  void schedule_in(SimTime delay, EventAction action) {
    schedule_at(now_ + delay, std::move(action));
  }

  /// Defers `action` to the end of the current timestamp batch: it runs once
  /// every pending event at the current time has fired (before the clock
  /// advances), in registration order. Deferred actions may schedule new
  /// events — including at the current time, which keeps the batch open —
  /// and may defer further actions. This is how a burst of same-timestamp
  /// completions triggers one scheduling pass instead of N: the model
  /// registers the pass once per timestamp instead of running it per event.
  /// Actions still pending when `stop()` ends a run are dropped, matching
  /// the pre-batching behaviour of work that never got to run.
  void at_batch_end(EventAction action) { batch_end_.push_back(std::move(action)); }

  /// Runs until the event queue is empty, `stop()` is called, or more than
  /// `max_events` events have fired (guard against runaway models).
  /// Returns the number of events executed.
  std::uint64_t run(std::uint64_t max_events = std::numeric_limits<std::uint64_t>::max());

  /// Runs like `run()` but never past time `horizon`; events at exactly
  /// `horizon` still fire. The clock is left at min(horizon, last event).
  std::uint64_t run_until(SimTime horizon,
                          std::uint64_t max_events = std::numeric_limits<std::uint64_t>::max());

  /// Makes `run()` return after the currently executing event completes.
  void stop() noexcept { stopped_ = true; }

  [[nodiscard]] bool stopped() const noexcept { return stopped_; }
  [[nodiscard]] std::uint64_t events_executed() const noexcept { return executed_; }
  [[nodiscard]] const EventQueue& queue() const noexcept { return queue_; }

  /// Resets clock, queue and counters for a fresh replication.
  void reset() {
    queue_.clear();
    batch_end_.clear();
    now_ = 0;
    executed_ = 0;
    stopped_ = false;
  }

 private:
  /// Runs deferred batch-end actions until none remain or the batch reopens
  /// (an action scheduled a new event at the current time).
  void flush_batch();

  EventQueue queue_;
  std::vector<EventAction> batch_end_;
  std::vector<EventAction> batch_scratch_;  ///< swap target during a flush
  SimTime now_{0};
  std::uint64_t executed_{0};
  bool stopped_{false};
};

}  // namespace procsim::des
