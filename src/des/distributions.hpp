#pragma once

#include <cmath>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

#include "des/rng.hpp"

namespace procsim::des {

/// Hand-rolled sampling routines. <random>'s distributions are not
/// bit-reproducible across standard libraries; these are, which lets tests
/// pin golden values and makes every experiment replayable from its seed.

/// Exponential with the given mean (inter-arrival times, message counts...).
[[nodiscard]] inline double sample_exponential(Xoshiro256SS& rng, double mean) {
  if (mean <= 0) throw std::invalid_argument("sample_exponential: mean must be > 0");
  // 1 - u in (0,1]: log() never sees zero.
  return -mean * std::log1p(-rng.next_double());
}

/// Uniform double in [lo, hi).
[[nodiscard]] inline double sample_uniform(Xoshiro256SS& rng, double lo, double hi) {
  return lo + (hi - lo) * rng.next_double();
}

/// Uniform integer in [lo, hi] (inclusive), unbiased via rejection.
[[nodiscard]] inline std::int64_t sample_uniform_int(Xoshiro256SS& rng,
                                                     std::int64_t lo,
                                                     std::int64_t hi) {
  if (lo > hi) throw std::invalid_argument("sample_uniform_int: lo > hi");
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(rng());  // full 64-bit range
  const std::uint64_t limit = std::numeric_limits<std::uint64_t>::max() -
                              std::numeric_limits<std::uint64_t>::max() % span;
  std::uint64_t draw = rng();
  while (draw >= limit) draw = rng();
  return lo + static_cast<std::int64_t>(draw % span);
}

/// Standard normal via Box–Muller (deterministic, one value per call).
[[nodiscard]] double sample_normal(Xoshiro256SS& rng);

/// Lognormal with the given parameters of the underlying normal.
[[nodiscard]] inline double sample_lognormal(Xoshiro256SS& rng, double mu, double sigma) {
  return std::exp(mu + sigma * sample_normal(rng));
}

/// Exponential rounded to an integer, clamped to at least `min_value`.
/// Used for per-processor message counts (paper: Exp(num_mes), at least one
/// message once a job communicates at all).
[[nodiscard]] inline std::int64_t sample_exponential_count(Xoshiro256SS& rng,
                                                           double mean,
                                                           std::int64_t min_value = 1) {
  const auto n = static_cast<std::int64_t>(std::llround(sample_exponential(rng, mean)));
  return n < min_value ? min_value : n;
}

/// Samples an index in [0, weights.size()) proportional to `weights`.
/// Linear scan over the cumulative sum — the mixtures used here have a
/// handful of buckets, so no alias table is warranted.
[[nodiscard]] std::size_t sample_discrete(Xoshiro256SS& rng, std::span<const double> weights);

/// Bernoulli trial with success probability p.
[[nodiscard]] inline bool sample_bernoulli(Xoshiro256SS& rng, double p) {
  return rng.next_double() < p;
}

}  // namespace procsim::des
