#include "des/rng.hpp"

namespace procsim::des {

void Xoshiro256SS::jump() noexcept {
  static constexpr std::uint64_t kJump[] = {
      0x180EC6D33CFD0ABAULL, 0xD5A61266F0C9392CULL,
      0xA9582618E03FC9AAULL, 0x39ABDC4529B1661CULL};
  std::uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  for (std::uint64_t word : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (word & (1ULL << b)) {
        s0 ^= state_[0];
        s1 ^= state_[1];
        s2 ^= state_[2];
        s3 ^= state_[3];
      }
      (*this)();
    }
  }
  state_ = {s0, s1, s2, s3};
}

std::uint64_t substream_seed(std::uint64_t base, std::uint64_t stream) noexcept {
  std::uint64_t h = SplitMix64(base).next();
  h ^= 0x9E3779B97F4A7C15ULL * (stream + 1);
  return SplitMix64(h).next();
}

}  // namespace procsim::des
