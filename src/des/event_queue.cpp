#include "des/event_queue.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <utility>

namespace procsim::des {

namespace {

// Initial/minimum calendar geometry. Buckets double once the pending set
// exceeds kGrowFactor events per bucket and halve below 1/kShrinkDivisor,
// keeping the expected bucket occupancy O(1).
constexpr std::size_t kMinBuckets = 16;
constexpr std::size_t kMaxBuckets = std::size_t{1} << 22;
constexpr std::size_t kGrowFactor = 2;
constexpr std::size_t kShrinkDivisor = 4;

[[nodiscard]] std::size_t pow2_at_least(std::size_t n) {
  std::size_t p = kMinBuckets;
  while (p < n && p < kMaxBuckets) p <<= 1;
  return p;
}

[[nodiscard]] bool event_before(const Event& a, const Event& b) noexcept {
  if (a.time != b.time) return a.time < b.time;
  return a.seq < b.seq;
}

}  // namespace

EventEngine EventQueue::default_engine() {
  static const EventEngine parsed = [] {
    const char* env = std::getenv("PROCSIM_EVENT_ENGINE");
    if (env == nullptr || *env == '\0') return EventEngine::kCalendar;
    if (std::strcmp(env, "calendar") == 0) return EventEngine::kCalendar;
    if (std::strcmp(env, "heap") == 0) return EventEngine::kHeap;
    if (std::strcmp(env, "verify") == 0) return EventEngine::kCrossCheck;
    throw std::invalid_argument(
        "PROCSIM_EVENT_ENGINE must be calendar, heap or verify");
  }();
  return parsed;
}

EventQueue::EventQueue(EventEngine engine) : engine_(engine) {
  if (engine_ != EventEngine::kHeap) buckets_.resize(kMinBuckets);
}

double EventQueue::slot_of(SimTime time) const noexcept {
  return std::floor(time / width_);
}

std::size_t EventQueue::bucket_of_slot(double slot) const noexcept {
  // fmod is exact for doubles, so arbitrarily large virtual slot numbers
  // (huge times over a small width) still map to a stable bucket; the slot
  // value itself keeps the year, which is what preserves pop order.
  double m = std::fmod(slot, static_cast<double>(buckets_.size()));
  if (m < 0) m += static_cast<double>(buckets_.size());
  return static_cast<std::size_t>(m);
}

void EventQueue::push(SimTime time, EventAction action) {
  Event ev{time, next_seq_++, std::move(action)};
  switch (engine_) {
    case EventEngine::kHeap:
      heap_push(std::move(ev));
      break;
    case EventEngine::kCalendar:
      calendar_push(time, std::move(ev));
      break;
    case EventEngine::kCrossCheck:
      heap_push(Event{time, ev.seq, nullptr});  // shadow key, no action copy
      calendar_push(time, std::move(ev));
      break;
  }
  ++size_;
  if (engine_ != EventEngine::kHeap && size_ > kGrowFactor * buckets_.size() &&
      buckets_.size() < kMaxBuckets)
    rebucket(buckets_.size() * 2);
}

Event EventQueue::pop() {
  Event out;
  switch (engine_) {
    case EventEngine::kHeap:
      out = heap_pop();
      break;
    case EventEngine::kCalendar:
      out = calendar_pop();
      break;
    case EventEngine::kCrossCheck: {
      out = calendar_pop();
      const Event shadow = heap_pop();
      if (shadow.time != out.time || shadow.seq != out.seq)
        throw std::logic_error(
            "EventQueue cross-check: calendar and heap pop order diverged");
      break;
    }
  }
  --size_;
  if (engine_ != EventEngine::kHeap && buckets_.size() > kMinBuckets &&
      size_ < buckets_.size() / kShrinkDivisor)
    rebucket(buckets_.size() / 2);
  return out;
}

SimTime EventQueue::next_time() const noexcept {
  if (engine_ == EventEngine::kHeap) return heap_.front().time;
  const std::size_t b = find_min_bucket();
  return buckets_[b].front().time;
}

void EventQueue::clear() {
  buckets_.clear();
  if (engine_ != EventEngine::kHeap) buckets_.resize(kMinBuckets);
  heap_.clear();
  width_ = 1.0;
  cur_slot_ = 0;
  cur_bucket_ = 0;
  size_ = 0;
  next_seq_ = 0;
  rebuckets_ = 0;
}

// ---------------------------------------------------------------------------
// Calendar engine
// ---------------------------------------------------------------------------

void EventQueue::calendar_push(SimTime time, Event ev) {
  const double slot = slot_of(time);
  if (size_ == 0 || slot < cur_slot_) {
    // The scan cursor never sits past a pending event: rewinding here is
    // what keeps the pop-side invariant (`no pending event lives in a slot
    // before cur_slot_`) true without ever searching on push.
    cur_slot_ = slot;
    cur_bucket_ = bucket_of_slot(slot);
  }
  Bucket& b = buckets_[bucket_of_slot(slot)];
  // Insert sorted by (time, seq), scanning from the back: pushes are mostly
  // time-ascending, and same-timestamp pushes carry an ascending seq, so the
  // common insertion point is the end.
  std::size_t pos = b.items.size();
  while (pos > b.head && event_before(ev, b.items[pos - 1])) --pos;
  b.items.insert(b.items.begin() + static_cast<std::ptrdiff_t>(pos), std::move(ev));
}

std::size_t EventQueue::find_min_bucket() const {
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    const Bucket& b = buckets_[cur_bucket_];
    // Only events in slot == cur_slot_ can satisfy this under the scan
    // invariant (nothing pending lives in an earlier slot), and one slot
    // maps to exactly one bucket — so a hit here is the global minimum.
    if (!b.drained() && slot_of(b.front().time) <= cur_slot_)
      return cur_bucket_;
    cur_slot_ += 1.0;  // may stall at 2^53; the year bound below saves us
    cur_bucket_ = cur_bucket_ + 1 == buckets_.size() ? 0 : cur_bucket_ + 1;
  }
  // A whole year without a due event (sparse far-future pending set, or a
  // slot counter too large to increment): locate the minimum directly and
  // resync the cursor. O(buckets), amortized away by re-bucketing.
  const Bucket* best = nullptr;
  std::size_t best_idx = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    const Bucket& b = buckets_[i];
    if (b.drained()) continue;
    if (best == nullptr || event_before(b.front(), best->front())) {
      best = &b;
      best_idx = i;
    }
  }
  cur_slot_ = slot_of(best->front().time);
  cur_bucket_ = best_idx;
  return best_idx;
}

Event EventQueue::calendar_pop() {
  Bucket& b = buckets_[find_min_bucket()];
  Event out = std::move(b.items[b.head]);
  ++b.head;
  if (b.drained()) {
    b.items.clear();  // reclaims the popped prefix, keeps capacity
    b.head = 0;
  }
  return out;
}

void EventQueue::rebucket(std::size_t new_bucket_count) {
  new_bucket_count = pow2_at_least(new_bucket_count);
  ++rebuckets_;

  // Drain the old calendar bucket by bucket. Events sharing a timestamp
  // always share a bucket and are seq-sorted there, so the scratch vector
  // preserves relative order within every timestamp — re-inserting from it
  // keeps each new bucket's (time, seq) order intact.
  std::vector<Event> scratch;
  scratch.reserve(size_);
  for (Bucket& b : buckets_)
    for (std::size_t i = b.head; i < b.items.size(); ++i)
      scratch.push_back(std::move(b.items[i]));
  buckets_.assign(new_bucket_count, Bucket{});

  // Width from the event-time spread, robust to far-future outliers: the
  // 10th-to-90th percentile span of a deterministic strided sample, spread
  // over the events it covers. Aim for ~1 event per occupied slot.
  if (scratch.size() >= 2) {
    std::vector<double> sample;
    const std::size_t stride = std::max<std::size_t>(1, scratch.size() / 4096);
    for (std::size_t i = 0; i < scratch.size(); i += stride)
      sample.push_back(scratch[i].time);
    std::sort(sample.begin(), sample.end());
    const double lo = sample[sample.size() / 10];
    const double hi = sample[sample.size() - 1 - sample.size() / 10];
    const double span = hi - lo;
    if (span > 0) {
      const double covered =
          0.8 * static_cast<double>(scratch.size());  // events inside [lo, hi]
      width_ = span / std::max(1.0, covered);
    }
    // span == 0 (clustered timestamps): keep the current width.
  }

  double min_time = 0;
  std::uint64_t min_seq = 0;
  bool have_min = false;
  for (Event& ev : scratch) {
    if (!have_min || ev.time < min_time ||
        (ev.time == min_time && ev.seq < min_seq)) {
      min_time = ev.time;
      min_seq = ev.seq;
      have_min = true;
    }
    Bucket& b = buckets_[bucket_of_slot(slot_of(ev.time))];
    std::size_t pos = b.items.size();
    while (pos > 0 && event_before(ev, b.items[pos - 1])) --pos;
    b.items.insert(b.items.begin() + static_cast<std::ptrdiff_t>(pos),
                   std::move(ev));
  }
  cur_slot_ = have_min ? slot_of(min_time) : 0;
  cur_bucket_ = bucket_of_slot(cur_slot_);
}

// ---------------------------------------------------------------------------
// Heap engine (the oracle). std::push_heap/std::pop_heap on EventLater; the
// old std::priority_queue needed a const_cast to move the top out, which was
// UB-adjacent — pop_heap hands the element back legitimately.
// ---------------------------------------------------------------------------

void EventQueue::heap_push(Event ev) {
  heap_.push_back(std::move(ev));
  std::push_heap(heap_.begin(), heap_.end(), EventLater{});
}

Event EventQueue::heap_pop() {
  std::pop_heap(heap_.begin(), heap_.end(), EventLater{});
  Event out = std::move(heap_.back());
  heap_.pop_back();
  return out;
}

}  // namespace procsim::des
