#pragma once

#include <cstddef>
#include <queue>
#include <utility>
#include <vector>

#include "des/event.hpp"

namespace procsim::des {

/// Pending-event set of a discrete-event simulation: a binary min-heap keyed
/// by (time, insertion sequence). Insertion order breaks timestamp ties so
/// identical seeds reproduce identical trajectories.
class EventQueue {
 public:
  /// Schedules `action` to fire at absolute time `time`.
  void push(SimTime time, EventAction action) {
    heap_.push(Event{time, next_seq_++, std::move(action)});
  }

  /// Removes and returns the earliest event. Precondition: !empty().
  [[nodiscard]] Event pop() {
    Event ev = std::move(const_cast<Event&>(heap_.top()));
    heap_.pop();
    return ev;
  }

  /// Timestamp of the earliest pending event. Precondition: !empty().
  [[nodiscard]] SimTime next_time() const noexcept { return heap_.top().time; }

  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return heap_.size(); }

  /// Drops every pending event (used between replications).
  void clear() {
    heap_ = {};
    next_seq_ = 0;
  }

  /// Total number of events ever scheduled (diagnostic).
  [[nodiscard]] std::uint64_t scheduled_count() const noexcept { return next_seq_; }

 private:
  std::priority_queue<Event, std::vector<Event>, EventLater> heap_;
  std::uint64_t next_seq_{0};
};

}  // namespace procsim::des
