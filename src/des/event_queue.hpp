#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "des/event.hpp"

namespace procsim::des {

/// Which pending-event structure an EventQueue uses.
///
///  * kCalendar — the production engine: a calendar queue (Brown 1988)
///    bucketed by time, O(1) push/pop under a stationary event-time profile,
///    with automatic re-bucketing as the pending set grows or shrinks.
///  * kHeap — the pre-calendar binary heap, kept as the randomized-
///    equivalence oracle (the OccupancyIndex / FreeSubmeshScan pattern).
///  * kCrossCheck — runs the calendar queue with a shadow (time, seq) heap
///    and verifies every pop against it; throws std::logic_error on the
///    first divergence. Opt-in, for tests and debugging.
///
/// Both engines implement the identical contract — events leave in strict
/// (time, insertion-sequence) order — so trajectories are bit-for-bit the
/// same whichever engine runs. The default is kCalendar; the environment
/// variable PROCSIM_EVENT_ENGINE (calendar | heap | verify) overrides it
/// process-wide, which is how a driver binary is flipped onto the oracle
/// without a rebuild.
enum class EventEngine { kCalendar, kHeap, kCrossCheck };

/// Pending-event set of a discrete-event simulation, keyed by
/// (time, insertion sequence). Insertion order breaks timestamp ties so
/// identical seeds reproduce identical trajectories.
class EventQueue {
 public:
  /// Engine from PROCSIM_EVENT_ENGINE (default kCalendar).
  EventQueue() : EventQueue(default_engine()) {}
  explicit EventQueue(EventEngine engine);

  /// Schedules `action` to fire at absolute time `time`.
  void push(SimTime time, EventAction action);

  /// Removes and returns the earliest event. Precondition: !empty().
  [[nodiscard]] Event pop();

  /// Timestamp of the earliest pending event. Precondition: !empty().
  [[nodiscard]] SimTime next_time() const noexcept;

  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }

  /// Drops every pending event (used between replications). Bucket geometry
  /// resets to the initial configuration so replications are independent.
  void clear();

  /// Total number of events ever scheduled (diagnostic).
  [[nodiscard]] std::uint64_t scheduled_count() const noexcept { return next_seq_; }

  [[nodiscard]] EventEngine engine() const noexcept { return engine_; }

  /// The process-wide default: PROCSIM_EVENT_ENGINE if set (calendar | heap
  /// | verify), else kCalendar. Parsed once.
  [[nodiscard]] static EventEngine default_engine();

  // Calendar internals exposed read-only for tests/benchmarks.
  [[nodiscard]] std::size_t bucket_count() const noexcept { return buckets_.size(); }
  [[nodiscard]] double bucket_width() const noexcept { return width_; }
  /// Calendar resizes (grow + shrink) since construction/clear() — an
  /// observability counter: a run that rebuckets often has an event-time
  /// profile the bucket-width estimator keeps chasing.
  [[nodiscard]] std::uint64_t rebucket_count() const noexcept { return rebuckets_; }

 private:
  /// One calendar bucket: events sorted ascending by (time, seq), consumed
  /// from `head` so a pop never shifts the vector. The popped prefix is
  /// reclaimed when the bucket empties; capacities persist across reuse.
  struct Bucket {
    std::vector<Event> items;
    std::size_t head{0};

    [[nodiscard]] bool drained() const noexcept { return head == items.size(); }
    [[nodiscard]] const Event& front() const noexcept { return items[head]; }
  };

  // -- calendar engine --------------------------------------------------
  void calendar_push(SimTime time, Event ev);
  [[nodiscard]] Event calendar_pop();
  /// Positions cur_slot_/cur_bucket_ on the bucket holding the earliest
  /// pending event (the calendar scan; falls back to a direct search after
  /// one full year). Precondition: size_ > 0. Logically const: only the
  /// scan cursor moves, never an event.
  std::size_t find_min_bucket() const;
  void rebucket(std::size_t new_bucket_count);
  [[nodiscard]] double slot_of(SimTime time) const noexcept;
  [[nodiscard]] std::size_t bucket_of_slot(double slot) const noexcept;

  // -- heap engine (the oracle) -----------------------------------------
  void heap_push(Event ev);
  [[nodiscard]] Event heap_pop();

  EventEngine engine_;

  // Calendar state. cur_slot_/cur_bucket_ form the scan cursor; mutable so
  // next_time() can advance it (the subsequent pop then hits immediately).
  std::vector<Bucket> buckets_;
  double width_{1.0};
  mutable double cur_slot_{0};
  mutable std::size_t cur_bucket_{0};

  // Heap state: a std::push_heap/std::pop_heap min-heap on EventLater. In
  // kCrossCheck the calendar holds the actions and this shadow holds bare
  // (time, seq) keys for the pop-order identity assertion.
  std::vector<Event> heap_;

  std::size_t size_{0};
  std::uint64_t next_seq_{0};
  std::uint64_t rebuckets_{0};
};

}  // namespace procsim::des
