#pragma once

#include <cstdint>
#include <functional>

namespace procsim::des {

/// Simulation time. One unit corresponds to one network cycle (the time a
/// flit needs to cross one link), matching the paper's "time units".
using SimTime = double;

/// Action executed when an event fires. Events carry no payload of their
/// own; closures capture whatever state they need.
using EventAction = std::function<void()>;

/// A scheduled event. Ordering is (time, sequence): two events at the same
/// timestamp fire in the order they were scheduled, which keeps runs
/// deterministic under a fixed seed.
struct Event {
  SimTime time{0};
  std::uint64_t seq{0};
  EventAction action;
};

/// Min-heap comparator for Event (later time == lower priority).
struct EventLater {
  [[nodiscard]] bool operator()(const Event& a, const Event& b) const noexcept {
    if (a.time != b.time) return a.time > b.time;
    return a.seq > b.seq;
  }
};

}  // namespace procsim::des
