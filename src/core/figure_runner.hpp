#pragma once

#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "core/experiment.hpp"

namespace procsim::core {

/// One strategy pair plotted as a series in a paper figure.
struct Series {
  AllocatorSpec allocator;
  sched::Policy scheduler;
};

/// The six series every main figure of the paper plots:
/// {GABL, Paging(0), MBS} × {FCFS, SSD}.
[[nodiscard]] std::vector<Series> paper_series();

/// Declarative description of one figure: sweep `loads`, run every series at
/// each point, report `metric` (a key of to_observations()).
struct FigureSpec {
  std::string id;          ///< e.g. "fig02"
  std::string title;       ///< printed as a comment header
  std::string metric;      ///< turnaround | service | utilization | latency | blocking
  std::vector<double> loads;
  std::vector<Series> series;
  ExperimentConfig base;   ///< workload/sys template; load+strategy filled per cell
};

/// Effort knobs shared by all figure benches (see bench/README note in each
/// binary: --fast, --jobs=N, --reps=N, --seed=N, --threads=N).
struct RunOptions {
  std::size_t jobs{0};          ///< 0 = keep spec default
  std::uint64_t min_reps{2};
  std::uint64_t max_reps{3};
  std::uint64_t seed{42};
  std::size_t threads{1};       ///< figure-cell workers; 0 = all hardware threads
  bool fast{false};             ///< shrink jobs/reps for smoke runs
};

[[nodiscard]] RunOptions parse_run_options(int argc, char** argv);

/// Runs the sweep and prints a CSV table: one row per load, one column per
/// series (the exact series the paper's figure plots), means of the chosen
/// metric. Also prints per-cell 95 % half-widths as trailing columns when
/// `with_ci` is set.
///
/// With `opts.threads > 1` (or 0 = all hardware threads) the independent
/// (load, series) cells are farmed across a thread pool. Every cell starts
/// from the same base `opts.seed` (cells differ by configuration — load and
/// strategy pair — not by seed) and derives its replication seeds from it
/// deterministically, so the CSV is byte-identical to the single-threaded run.
void run_figure(const FigureSpec& spec, const RunOptions& opts, std::ostream& out,
                bool with_ci = false);

}  // namespace procsim::core
