#pragma once

#include <cstddef>
#include <functional>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "core/experiment.hpp"

namespace procsim::core {

/// One strategy pair plotted as a series in a paper figure.
struct Series {
  AllocatorSpec allocator;
  sched::SchedSpec scheduler;  ///< Policy converts implicitly; specs welcome
};

/// The six series every main figure of the paper plots:
/// {GABL, Paging(0), MBS} × {FCFS, SSD}.
[[nodiscard]] std::vector<Series> paper_series();

/// Declarative description of one figure: sweep `loads`, run every series at
/// each point, report `metric` (a key of to_observations()).
struct FigureSpec {
  std::string id;          ///< e.g. "fig02"
  std::string title;       ///< printed as a comment header
  std::string metric;      ///< turnaround | service | utilization | latency | blocking
  std::vector<double> loads;
  std::vector<Series> series;
  ExperimentConfig base;   ///< workload/sys template; load+strategy filled per cell
};

/// Effort knobs shared by all figure benches (see bench/README note in each
/// binary: --fast, --jobs=N, --reps=N, --seed=N, --threads=N).
struct RunOptions {
  std::size_t jobs{0};          ///< 0 = keep spec default
  std::uint64_t min_reps{2};
  std::uint64_t max_reps{3};
  std::uint64_t seed{42};
  std::size_t threads{1};       ///< figure-cell workers; 0 = all hardware threads
  bool fast{false};             ///< shrink jobs/reps for smoke runs
  /// Attach a throwaway fully-enabled obs::Recorder to every replication
  /// (ExperimentConfig::obs_probe) — the CSV must not change by a byte.
  bool obs_probe{false};
};

[[nodiscard]] RunOptions parse_run_options(int argc, char** argv);

/// The generic experiment grid under run_figure and the sweep drivers: any
/// row axis (loads, mesh sizes, ...) × any column axis (series), one
/// replicated experiment per cell, CSV rows streamed in order. `cell(r, c)`
/// must be a pure function of its indices — cells run in any order and, with
/// `opts.threads != 1`, concurrently.
struct GridSpec {
  std::string corner;             ///< first header cell, e.g. "load" or "mesh"
  std::vector<std::string> rows;  ///< row labels, printed verbatim
  std::vector<std::string> cols;  ///< column labels, e.g. series labels
  std::string metric;             ///< key of to_observations()
  std::function<ExperimentConfig(std::size_t row, std::size_t col)> cell;
};

/// Runs every cell of the grid and prints the CSV table (means of the chosen
/// metric; per-cell 95 % half-widths as trailing columns when `with_ci`).
///
/// With `opts.threads > 1` (or 0 = all hardware threads) the independent
/// cells are farmed across a thread pool. Every cell starts from the same
/// base `opts.seed` (cells differ by configuration, not by seed) and derives
/// its replication seeds from it deterministically, so the CSV is
/// byte-identical to the single-threaded run.
void run_grid(const GridSpec& spec, const RunOptions& opts, std::ostream& out,
              bool with_ci = false);

/// Runs the sweep and prints a CSV table: one row per load, one column per
/// series (the exact series the paper's figure plots). A thin wrapper that
/// lowers the figure onto run_grid, inheriting its determinism guarantee.
void run_figure(const FigureSpec& spec, const RunOptions& opts, std::ostream& out,
                bool with_ci = false);

/// Applies the effort knobs (--jobs, --fast) to one cell configuration —
/// shared by run_figure and the generic sweep drivers.
void apply_effort(ExperimentConfig& cfg, const RunOptions& opts);

/// Sets the offered load on whichever workload family `cfg` uses — the one
/// place that knows stochastic loads live in workload.stochastic.load and
/// trace loads in workload.load.
void set_offered_load(ExperimentConfig& cfg, double load);

}  // namespace procsim::core
