#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "alloc/allocator.hpp"
#include "core/job_arena.hpp"
#include "core/metrics_sink.hpp"
#include "des/rng.hpp"
#include "des/simulator.hpp"
#include "network/traffic.hpp"
#include "network/wormhole_network.hpp"
#include "sched/scheduler.hpp"
#include "stats/job_metrics.hpp"
#include "stats/time_weighted.hpp"
#include "stats/welford.hpp"
#include "workload/job.hpp"
#include "workload/source.hpp"

namespace procsim::obs {
class Recorder;
}  // namespace procsim::obs

namespace procsim::core {

/// Machine- and run-level configuration of one simulation.
struct SystemConfig {
  mesh::Geometry geom{16, 22};       ///< the paper's W×L partition
  network::NetworkParams net{};      ///< st = 3, P_len = 8 by default
  /// Cycles a processor computes between delivering one of its messages and
  /// injecting the next (blocking-send pacing; 0 = send immediately).
  double think_time{0};
  std::size_t target_completions{1000};  ///< stop after this many (0 = all jobs)
  std::size_t warmup_completions{0};     ///< completions excluded from statistics
  std::uint64_t seed{1};                 ///< run-local randomness (random traffic)
  std::uint64_t max_events{2'000'000'000};  ///< runaway guard
  /// Run one scheduling pass per simulated timestamp instead of one per
  /// triggering event: a burst of same-time completions or arrivals defers a
  /// single pass to the end of the batch. Trajectory-identical whenever job
  /// boundaries never share a timestamp, but the cycle-quantized network
  /// makes same-time completion bursts real, and a pass that sees several
  /// releases at once can place jobs differently (still deterministically).
  /// Off by default so every figure reproduces its published bytes; the
  /// throughput paths (event-engine bench, nightly replay) opt in.
  bool coalesce_passes{false};
  /// Event-queue engine for this run. Defaults to the process-wide choice
  /// (PROCSIM_EVENT_ENGINE, calendar when unset); the engines are pop-order
  /// identical, so this never changes results — only throughput.
  des::EventEngine event_engine{des::EventQueue::default_engine()};
  /// Observability attach point (null = off). Observation-only like the
  /// MetricsSink: attaching cannot change a simulated event, and every
  /// hot-path hook is a null-pointer check when detached (obs::Recorder).
  /// Non-owning; the recorder outlives every run() it observes.
  obs::Recorder* recorder{nullptr};
};

/// Per-job wait/slowdown distribution summary — the fairness view the means
/// above hide. Filled by experiment::run_once, which attaches a
/// stats::JobMetrics sink to the record stream; zero when a SystemSim is
/// driven directly without one.
struct JobDistributions {
  stats::QuantileSummary wait;        ///< arrival -> allocation per job
  stats::QuantileSummary turnaround;  ///< arrival -> departure per job
  stats::QuantileSummary slowdown;    ///< bounded slowdown (stretch)
  double starved{0};  ///< jobs waiting > starvation_factor × median wait
};

/// Cluster-level extras, filled only by cluster::ClusterSim (meshes == 0 on
/// a single-mesh run, and every derived observation reads 0). The per-mesh
/// utilization spread is the load-balance quality signal; the migration and
/// staleness tallies characterize the dispatcher.
struct ClusterStats {
  std::size_t meshes{0};          ///< 0 = not a cluster run
  double util_min{0};             ///< min over per-mesh utilizations
  double util_max{0};
  double util_mean{0};            ///< unweighted mean over meshes
  double util_stddev{0};
  std::uint64_t migrations{0};    ///< jobs stolen between meshes
  double migration_latency{0};    ///< total modeled latency paid
  std::uint64_t stale_errors{0};  ///< dispatches to a non-shortest queue

  [[nodiscard]] double spread() const noexcept { return util_max - util_min; }
};

/// Everything one run measures — the paper's five performance parameters
/// plus diagnostics.
struct RunMetrics {
  stats::Welford turnaround;       ///< arrival -> departure per job
  stats::Welford service;          ///< allocation -> departure per job
  stats::Welford packet_latency;   ///< per delivered packet
  stats::Welford packet_blocking;  ///< per delivered packet
  stats::Welford packet_hops;      ///< mesh links traversed per packet
  double utilization{0};           ///< time-averaged allocated fraction
  double mean_queue_length{0};
  std::uint64_t completed{0};
  double makespan{0};
  std::uint64_t events{0};
  std::uint64_t packets{0};
  JobDistributions jobs;           ///< per-job fairness summary (see above)
  ClusterStats cluster;            ///< cluster runs only (see ClusterStats)
};

/// Couples scheduler, allocator, wormhole network and a job stream into one
/// discrete-event simulation (the ProcSimity role).
///
/// Lifecycle of a job: arrival -> queue -> (scheduling pass nominates it +
/// allocator success) -> processors held, packets injected -> last delivery
/// -> processors released, next scheduling round. A job's service time is an
/// *output*: the time its communication takes under the contention its
/// placement creates.
class SystemSim {
 public:
  SystemSim(SystemConfig cfg, alloc::Allocator& allocator, sched::Scheduler& scheduler);

  /// External-clock mode (the cluster layer): this mesh shares `clock` with
  /// its siblings instead of owning a simulator. The caller owns the event
  /// loop — begin_external_run() / submit() / finish_external_run() replace
  /// run(); the caller resets and runs `clock` itself.
  SystemSim(SystemConfig cfg, alloc::Allocator& allocator, sched::Scheduler& scheduler,
            des::Simulator* clock);

  /// Runs a streaming job source to exhaustion (or the completion target).
  /// The source is reset-ready (caller calls source.reset(seed) first); jobs
  /// are pulled one arrival ahead, so a stream never has to exist in memory
  /// as a whole. The allocator and scheduler are reset first; metrics cover
  /// completions after the warmup threshold. An unbounded source is stopped
  /// by `target_completions` (or, as a last resort, `max_events`).
  [[nodiscard]] RunMetrics run(workload::Source& source);

  /// Convenience wrapper: streams an eager job vector (must be sorted by
  /// arrival time) through the source path.
  [[nodiscard]] RunMetrics run(const std::vector<workload::Job>& jobs);

  /// Attaches (or, with nullptr, detaches) the per-job record stream
  /// observer. The sink outlives every run() it observes; it receives one
  /// JobRecord per measured completion and can never influence the
  /// simulation (see MetricsSink).
  void set_metrics_sink(MetricsSink* sink) noexcept { sink_ = sink; }

  // ---- External-clock (cluster) interface ------------------------------
  // The owner of the shared clock drives these; the single-mesh run() path
  // never touches them, so its event trajectory is unchanged.

  /// Per-run reset of everything except the shared clock (which the cluster
  /// resets once). Call before the first submit() of a run.
  void begin_external_run();

  /// Injects one job at the current clock time — the dispatcher's hand-off.
  /// Arrival bookkeeping and scheduling are identical to a source arrival.
  void submit(workload::Job job);

  /// Computes this mesh's end-of-run metrics at the shared clock's final
  /// time. Skips the clock-level counter pulls (sim_events,
  /// calendar_rebuckets, run_wall_s) — the cluster accounts those once.
  [[nodiscard]] RunMetrics finish_external_run();

  /// Removes and returns the most recently queued job (the work-stealing
  /// victim's donation), or nullopt when the queue is empty. Leaves every
  /// running job untouched; updates the queue-length gauge.
  [[nodiscard]] std::optional<workload::Job> steal_last_queued();

  /// The job steal_last_queued() would remove, without removing it — the
  /// cluster checks the candidate fits the receiver before committing the
  /// steal. Null when the queue is empty.
  [[nodiscard]] const workload::Job* peek_last_queued() const;

  /// Fresh load view for dispatch decisions.
  [[nodiscard]] std::size_t queue_depth() const noexcept { return scheduler_.size(); }
  [[nodiscard]] std::size_t running_jobs() const noexcept {
    return arena_.active() - scheduler_.size();
  }
  [[nodiscard]] std::int64_t free_processors() const noexcept {
    return static_cast<std::int64_t>(allocator_.free_processors());
  }
  [[nodiscard]] const SystemConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] std::uint64_t completions() const noexcept { return completed_; }

  /// Completion hook for the cluster layer: called once per completion (any
  /// warmup gating is the caller's) with the full JobRecord, after the mesh
  /// has fully accounted the completion and released the job. Raw (fn, ctx)
  /// like the delivery sink — no type-erased std::function on this path.
  using CompletionHook = void (*)(void* ctx, SystemSim& mesh, const JobRecord& rec);
  void set_completion_hook(CompletionHook fn, void* ctx) noexcept {
    hook_ = fn;
    hook_ctx_ = ctx;
  }

 private:
  /// run()'s per-run reset minus the clock reset (shared in cluster mode).
  void begin_run();
  /// End-of-run metric finalization; `own_clock` gates the clock-level
  /// counter pulls and the wall timer.
  void finalize_run(bool own_clock,
                    std::chrono::steady_clock::time_point wall_start);
  /// Schedules the source's next arrival instant (if any).
  void pump_arrival();
  void on_arrival(workload::Job job);
  /// The waiting job behind a queue entry; throws if the record is missing.
  [[nodiscard]] const workload::Job& queued_job(std::uint64_t job_id) const;
  /// One transactional scheduling pass (see Scheduler::select).
  void try_schedule();
  /// Requests a pass: immediate when `coalesce_passes` is off, otherwise
  /// deferred (once) to the end of the current timestamp batch.
  void request_schedule();
  void start_job(JobArena::Slot slot, alloc::Placement placement);
  void on_delivery(const network::Delivery& d);
  void complete_job(JobArena::Slot slot);
  /// Takes one telemetry snapshot and, while jobs are resident or arrivals
  /// pending, schedules the next (the drain guard: bounded runs still end).
  void sample_telemetry();
  [[nodiscard]] bool measuring() const noexcept {
    return completed_ >= cfg_.warmup_completions;
  }

  SystemConfig cfg_;
  alloc::Allocator& allocator_;
  sched::Scheduler& scheduler_;
  MetricsSink* sink_{nullptr};  ///< optional per-job record observer
  obs::Recorder* rec_{nullptr};  ///< cfg_.recorder; hot-path null check
  CompletionHook hook_{nullptr};  ///< cluster completion hook (null = off)
  void* hook_ctx_{nullptr};

  // Per-run state (rebuilt in run()).
  des::Simulator own_sim_;  ///< the single-mesh clock; idle in cluster mode
  des::Simulator* sim_;     ///< &own_sim_, or the cluster's shared clock
  workload::Source* source_{nullptr};  ///< the run's job stream (non-owning)
  std::unique_ptr<network::WormholeNetwork> net_;
  des::Xoshiro256SS rng_{1};
  /// Every resident job (queued or running): slot-reused, SoA hot fields,
  /// slot index == network tag. Messages one processor sends are paced
  /// one-at-a-time (blocking sends, see StreamSet); all of a job's sources
  /// stream concurrently.
  JobArena arena_;
  stats::TimeWeighted busy_procs_;
  stats::TimeWeighted queue_len_;
  RunMetrics metrics_;
  std::uint64_t completed_{0};
  std::uint64_t seq_{0};
  double measure_start_{0};
  bool pass_pending_{false};  ///< a coalesced scheduling pass is queued
};

}  // namespace procsim::core
