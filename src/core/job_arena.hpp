#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "alloc/allocator.hpp"
#include "mesh/coord.hpp"
#include "network/traffic.hpp"
#include "workload/job.hpp"

namespace procsim::core {

/// A running job's outgoing message streams in one flat layout: the sorted
/// source nodes, a [begin, end) window into a shared destination vector per
/// source, and a cursor per source. Replaces the per-job
/// `std::map<NodeId, vector<NodeId>>` — no node allocations per job, and the
/// vectors keep their capacity across slot reuse, so a steady-state run
/// builds streams allocation-free.
///
/// Semantics match the map exactly: sources iterate in ascending NodeId and
/// each source's destinations keep message-plan order, so the injection
/// sequence (and therefore every simulated byte) is unchanged.
class StreamSet {
 public:
  /// Rebuilds from a job's mapped traffic (plan order). Keeps capacity.
  void build(const std::vector<network::SrcDst>& traffic);

  [[nodiscard]] std::size_t sources() const noexcept { return srcs_.size(); }
  [[nodiscard]] mesh::NodeId source(std::size_t i) const noexcept { return srcs_[i]; }
  [[nodiscard]] std::size_t messages() const noexcept { return dsts_.size(); }

  /// Next destination for the i-th source, advancing its cursor.
  [[nodiscard]] std::optional<mesh::NodeId> next_at(std::size_t i) noexcept {
    if (next_[i] == end_[i]) return std::nullopt;
    return dsts_[next_[i]++];
  }

  /// Next destination for source node `src` (binary search over the sorted
  /// source list — the per-delivery path). std::nullopt when the stream is
  /// exhausted; throws std::logic_error for a node that never sent.
  [[nodiscard]] std::optional<mesh::NodeId> advance(mesh::NodeId src);

  void clear() noexcept;

 private:
  std::vector<mesh::NodeId> srcs_;     ///< sorted ascending, unique
  std::vector<std::uint32_t> begin_;   ///< per source: first index in dsts_
  std::vector<std::uint32_t> next_;    ///< per source: cursor into dsts_
  std::vector<std::uint32_t> end_;     ///< per source: one past the last
  std::vector<mesh::NodeId> dsts_;     ///< all destinations, grouped by source
};

/// Slot-reusing storage for every job the simulator currently tracks (queued
/// or running). Hot per-delivery fields — the packets-outstanding counter and
/// the start time — live in their own contiguous arrays (SoA), cold state
/// (the Job, its Placement, its StreamSet) in parallel slot vectors.
///
/// The slot index doubles as the network tag, making the delivery path a
/// direct array access; the id → slot hash map exists only for the scheduler
/// path, which speaks job ids. Released slots go to a free list and their
/// containers keep capacity, so long replays stop allocating once the peak
/// concurrent-job count is reached.
class JobArena {
 public:
  using Slot = std::uint32_t;

  /// Admits a job (at arrival) and returns its slot. Throws
  /// std::invalid_argument on a duplicate job id.
  [[nodiscard]] Slot acquire(workload::Job job);

  /// Frees the slot for reuse and forgets the id mapping.
  void release(Slot s);

  /// Removes the job from the slot and returns it (release + payload move).
  /// The inter-mesh migration path: the stolen job leaves this arena whole
  /// and re-enters another mesh's arena on re-queue — one resident copy ever.
  [[nodiscard]] workload::Job extract(Slot s);

  /// Forgets everything; keeps slot capacity for the next run.
  void clear();

  [[nodiscard]] std::size_t active() const noexcept { return index_.size(); }
  [[nodiscard]] std::size_t capacity() const noexcept { return jobs_.size(); }
  [[nodiscard]] bool occupied(Slot s) const noexcept {
    return s < occupied_.size() && occupied_[s] != 0;
  }

  /// Slot behind a job id (the scheduler path); throws std::logic_error if
  /// the id is not resident.
  [[nodiscard]] Slot slot_of(std::uint64_t id) const;
  [[nodiscard]] bool contains(std::uint64_t id) const {
    return index_.find(id) != index_.end();
  }

  [[nodiscard]] workload::Job& job(Slot s) noexcept { return jobs_[s]; }
  [[nodiscard]] const workload::Job& job(Slot s) const noexcept { return jobs_[s]; }
  [[nodiscard]] alloc::Placement& placement(Slot s) noexcept { return placements_[s]; }
  [[nodiscard]] const alloc::Placement& placement(Slot s) const noexcept {
    return placements_[s];
  }
  [[nodiscard]] double& start_time(Slot s) noexcept { return start_time_[s]; }
  [[nodiscard]] std::int64_t& outstanding(Slot s) noexcept { return outstanding_[s]; }
  [[nodiscard]] StreamSet& streams(Slot s) noexcept { return streams_[s]; }

 private:
  // Hot (per-delivery) columns.
  std::vector<std::int64_t> outstanding_;
  std::vector<double> start_time_;
  // Cold columns.
  std::vector<workload::Job> jobs_;
  std::vector<alloc::Placement> placements_;
  std::vector<StreamSet> streams_;
  std::vector<char> occupied_;
  std::vector<Slot> free_;
  std::unordered_map<std::uint64_t, Slot> index_;
};

}  // namespace procsim::core
