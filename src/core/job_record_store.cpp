#include "core/job_record_store.hpp"

#include <cinttypes>
#include <cstdio>

namespace procsim::core {

void JobRecordStore::on_job(const JobRecord& r) {
  if (chunks_.empty() || chunks_.back()->id.size() == kChunkRecords) {
    chunks_.push_back(std::make_unique<Chunk>());
    Chunk& c = *chunks_.back();
    c.id.reserve(kChunkRecords);
    c.arrival.reserve(kChunkRecords);
    c.start.reserve(kChunkRecords);
    c.finish.reserve(kChunkRecords);
    c.demand.reserve(kChunkRecords);
    c.width.reserve(kChunkRecords);
    c.length.reserve(kChunkRecords);
    c.processors.reserve(kChunkRecords);
    c.allocated.reserve(kChunkRecords);
    c.alloc_blocks.reserve(kChunkRecords);
    c.alloc_width.reserve(kChunkRecords);
    c.alloc_length.reserve(kChunkRecords);
  }
  Chunk& c = *chunks_.back();
  c.id.push_back(r.id);
  c.arrival.push_back(r.arrival);
  c.start.push_back(r.start);
  c.finish.push_back(r.finish);
  c.demand.push_back(r.demand);
  c.width.push_back(r.width);
  c.length.push_back(r.length);
  c.processors.push_back(r.processors);
  c.allocated.push_back(r.allocated);
  c.alloc_blocks.push_back(r.alloc_blocks);
  c.alloc_width.push_back(r.alloc_width);
  c.alloc_length.push_back(r.alloc_length);
  ++size_;
}

JobRecord JobRecordStore::record(std::size_t i) const {
  const Chunk& c = *chunks_[i / kChunkRecords];
  const std::size_t j = i % kChunkRecords;
  JobRecord r;
  r.id = c.id[j];
  r.arrival = c.arrival[j];
  r.start = c.start[j];
  r.finish = c.finish[j];
  r.demand = c.demand[j];
  r.width = c.width[j];
  r.length = c.length[j];
  r.processors = c.processors[j];
  r.allocated = c.allocated[j];
  r.alloc_blocks = c.alloc_blocks[j];
  r.alloc_width = c.alloc_width[j];
  r.alloc_length = c.alloc_length[j];
  return r;
}

void JobRecordStore::clear() {
  chunks_.clear();
  size_ = 0;
}

void JobRecordStore::write_csv(std::ostream& out) const {
  out << "id,arrival,start,finish,demand,width,length,processors,"
         "allocated,alloc_blocks,alloc_width,alloc_length\n";
  char line[256];
  for (std::size_t i = 0; i < size_; ++i) {
    const JobRecord r = record(i);
    std::snprintf(line, sizeof line,
                  "%" PRIu64 ",%.6g,%.6g,%.6g,%.6g,%d,%d,%d,%d,%d,%d,%d\n",
                  r.id, r.arrival, r.start, r.finish, r.demand, r.width,
                  r.length, r.processors, r.allocated, r.alloc_blocks,
                  r.alloc_width, r.alloc_length);
    out << line;
  }
}

void JobRecordStore::write_jsonl(std::ostream& out) const {
  // %.17g round-trips every double exactly; integers keep %d/%PRIu64 so the
  // line is valid JSON with no quoting needed anywhere.
  char line[512];
  for (std::size_t i = 0; i < size_; ++i) {
    const JobRecord r = record(i);
    std::snprintf(line, sizeof line,
                  "{\"id\":%" PRIu64
                  ",\"arrival\":%.17g,\"start\":%.17g,\"finish\":%.17g,"
                  "\"demand\":%.17g,\"width\":%d,\"length\":%d,"
                  "\"processors\":%d,\"allocated\":%d,\"alloc_blocks\":%d,"
                  "\"alloc_width\":%d,\"alloc_length\":%d}\n",
                  r.id, r.arrival, r.start, r.finish, r.demand, r.width,
                  r.length, r.processors, r.allocated, r.alloc_blocks,
                  r.alloc_width, r.alloc_length);
    out << line;
  }
}

}  // namespace procsim::core
