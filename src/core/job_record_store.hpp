#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <ostream>
#include <vector>

#include "core/metrics_sink.hpp"

namespace procsim::core {

/// A MetricsSink that retains every per-job record in columnar, chunked
/// storage: each column is its own array (SoA), grown chunk-by-chunk so a
/// multi-million-job replay never pays a monolithic reallocation-and-copy
/// and memory use tracks the record count exactly. Columns make the
/// analytics passes (quantiles over wait, slowdown sweeps) cache-friendly;
/// `record(i)` reassembles a JobRecord when row access is wanted.
///
/// Like every sink it is observation-only: attaching one changes nothing in
/// the simulation.
class JobRecordStore final : public MetricsSink {
 public:
  void on_job(const JobRecord& record) override;

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  /// Reassembles the i-th record (completion order). Precondition: i < size().
  [[nodiscard]] JobRecord record(std::size_t i) const;

  /// Frees all chunks.
  void clear();

  /// Writes `id,arrival,start,finish,...` rows (with a header) — the per-job
  /// metrics artifact of the replay drivers. Completion order, fixed format:
  /// two runs that simulated identical trajectories write identical bytes.
  void write_csv(std::ostream& out) const;

  /// Same records as one JSON object per line (JSON Lines) — the
  /// stream-friendly export: every line parses standalone, so consumers can
  /// tail, split or partially read a multi-million-job file. Same field
  /// order, completion order, and byte-determinism contract as write_csv.
  void write_jsonl(std::ostream& out) const;

 private:
  // One bounded SoA block; kChunkRecords trades allocation count against the
  // size of the final partially-filled block.
  static constexpr std::size_t kChunkRecords = 1u << 16;
  struct Chunk {
    std::vector<std::uint64_t> id;
    std::vector<double> arrival, start, finish, demand;
    std::vector<std::int32_t> width, length, processors;
    std::vector<std::int32_t> allocated, alloc_blocks, alloc_width, alloc_length;
  };

  std::vector<std::unique_ptr<Chunk>> chunks_;
  std::size_t size_{0};
};

}  // namespace procsim::core
