#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "alloc/allocator.hpp"
#include "cluster/cluster_spec.hpp"
#include "core/system_sim.hpp"
#include "mesh/page_table.hpp"
#include "sched/registry.hpp"
#include "stats/replication.hpp"
#include "util/thread_pool.hpp"
#include "workload/paragon_model.hpp"
#include "workload/source.hpp"
#include "workload/stochastic.hpp"
#include "workload/trace_replay.hpp"

namespace procsim::core {

/// Thin wrapper over an allocator registry name — the experiment layer's
/// allocator axis IS the registry's, one construction path (the legacy
/// AllocatorKind enum is gone). `canonical` is always a spelling
/// alloc::parse_allocator_name accepts and normalizes; label() returns it
/// verbatim and parse_allocator_spec(label()) round-trips (pinned by test).
struct AllocatorSpec {
  std::string canonical{"GABL"};
  /// Page-indexing curve for the Paging family; not part of the name (same
  /// as alloc::AllocatorParams).
  mesh::PageIndexing paging_indexing{mesh::PageIndexing::kRowMajor};

  AllocatorSpec() = default;
  /// Validating constructor: throws std::invalid_argument (listing the known
  /// allocators) unless `name` parses; stores the canonical spelling.
  explicit AllocatorSpec(const std::string& name);

  [[nodiscard]] std::string label() const { return canonical; }

  friend bool operator==(const AllocatorSpec& a, const AllocatorSpec& b) {
    return a.canonical == b.canonical && a.paging_indexing == b.paging_indexing;
  }
};

/// Delegates to the alloc/sched registries (alloc::make_allocator,
/// sched::make_scheduler): spec.label() is a registry name by construction.
[[nodiscard]] std::unique_ptr<alloc::Allocator> make_allocator(const AllocatorSpec& spec,
                                                               mesh::Geometry geom,
                                                               std::uint64_t seed);
/// sched::Policy converts implicitly, so both the paper's ordered policies
/// and the registry specs (lookahead:k, backfill) resolve here.
[[nodiscard]] std::unique_ptr<sched::Scheduler> make_scheduler(
    const sched::SchedSpec& spec);

/// Registry-name -> AllocatorSpec (case-insensitive, "Paging(k)" parsed);
/// nullopt for unknown names. Inverse of AllocatorSpec::label().
[[nodiscard]] std::optional<AllocatorSpec> parse_allocator_spec(const std::string& name);

/// The two workload families of the paper.
enum class WorkloadKind { kStochastic, kTrace };

struct WorkloadSpec {
  WorkloadKind kind{WorkloadKind::kStochastic};

  // Stochastic family.
  workload::StochasticParams stochastic{};
  std::size_t job_count{1000};

  // Trace family: a synthetic Paragon stream by default, or an SWF file.
  workload::ParagonModelParams paragon{};
  workload::TraceReplayParams replay{};
  std::string swf_path;  ///< when non-empty, load this instead of the model
  double load{0.01};     ///< offered load; sets replay.arrival_factor

  /// When non-empty, a `workload::make_source` spec (e.g. "swf:trace.swf",
  /// "saturation;n=5000", "bursty;b=8") that overrides `kind`; `load` and
  /// `job_count` still act as driver-level overrides where the spec doesn't
  /// pin them (`--loads` sweep axes, `--jobs`, `--fast`).
  std::string source_spec;
};

/// One experiment point: machine + strategy pair + workload + seed.
struct ExperimentConfig {
  SystemConfig sys{};
  AllocatorSpec allocator{};
  sched::SchedSpec scheduler{};  ///< canonical registry spec; default FCFS
  WorkloadSpec workload{};
  /// The fleet axis: when set, the run is a cluster::ClusterSim over the
  /// spec's meshes instead of one SystemSim over sys.geom (which is then
  /// ignored except as workload shaping fallback — jobs are shaped for the
  /// cluster's first mesh, and `workload.load` stays the *per-mesh* offered
  /// load: the cluster path scales the source's arrival rate by
  /// total_nodes/first_mesh_nodes). `allocator` is the default for meshes
  /// whose group names none.
  std::optional<cluster::ClusterSpec> cluster;
  std::uint64_t seed{1};
  /// Attach a throwaway fully-enabled obs::Recorder (trace + telemetry) to
  /// every replication, discarding what it collects. Exists to *exercise*
  /// the observation-only contract on real figure runs (--obs-probe): the
  /// CSVs must come out byte-identical with this on.
  bool obs_probe{false};

  [[nodiscard]] std::string series_label() const;
};

/// Builds the streaming job source one replication runs against. The caller
/// seeds it (`source->reset(seed)`) before handing it to SystemSim — the
/// replication seed is `des::substream_seed(base, rep)`, so serial and
/// threaded replication schedules see bit-identical streams.
[[nodiscard]] std::unique_ptr<workload::Source> make_workload_source(
    const WorkloadSpec& spec, const mesh::Geometry& geom, std::int32_t packet_len);

/// Materialises the workload's job stream for one replication — a drain of
/// `make_workload_source` kept for tests and tools that want the eager
/// vector; the simulation path streams instead.
[[nodiscard]] std::vector<workload::Job> build_jobs(const WorkloadSpec& spec,
                                                    const mesh::Geometry& geom,
                                                    std::int32_t packet_len,
                                                    std::uint64_t seed);

/// Runs a single replication end to end.
[[nodiscard]] RunMetrics run_once(const ExperimentConfig& cfg);

/// run_once's engine with explicit observability wiring: builds the
/// allocator/scheduler/source for `cfg`, attaches `recorder` (overriding
/// cfg.sys.recorder when non-null) and `sink` (when non-null), and runs one
/// replication. This is how tools instrument a run — procsim_sweep's
/// --telemetry/--counters/--trace/--job-records all lower onto it — while
/// run_once itself stays the uninstrumented figure path.
[[nodiscard]] RunMetrics run_probed(const ExperimentConfig& cfg,
                                    obs::Recorder* recorder, MetricsSink* sink);

/// Scalar per-replication observations, keyed by the metric names used
/// throughout the benches: the paper's aggregates (turnaround, service,
/// utilization, latency, blocking, hops, queue_length) plus the per-job
/// fairness analytics (wait_mean/p50/p95/p99/max, turnaround_p50/p95/p99/max,
/// slowdown_p50/p95/p99/max, starved).
[[nodiscard]] std::map<std::string, double> to_observations(const RunMetrics& m);

/// The metric names to_observations emits — what run_grid/run_figure accept;
/// drivers validate --metric against this before spending any compute.
[[nodiscard]] std::vector<std::string> known_metrics();

/// The subset of observation names the replication stopping rule gates on:
/// the paper's aggregate metrics, exactly as before the per-job analytics
/// existed. run_replicated pins ReplicationPolicy::precision_metrics to this
/// set when the caller left it empty, so quantile/starvation observations
/// ride along without ever changing a cell's replication count.
[[nodiscard]] std::vector<std::string> precision_observation_names();

/// Replicated experiment: reruns with per-replication RNG substream seeds
/// (des::substream_seed) until the policy's 95 % / 5 % precision target
/// (paper §5) is met or the cap is reached. With a pool of more than one
/// worker, replications are farmed across its threads; the result is
/// bit-identical to the serial (null pool) path for any thread count.
struct AggregateResult {
  std::map<std::string, stats::Interval> metrics;
  std::uint64_t replications{0};
};

[[nodiscard]] AggregateResult run_replicated(const ExperimentConfig& cfg,
                                             const stats::ReplicationPolicy& policy,
                                             util::ThreadPool* pool = nullptr);

}  // namespace procsim::core
