#pragma once

// Unified experiment-spec parsing: the single fail-fast entry point every
// driver lowers its flag parsing onto. Each axis — mesh/cluster, allocator,
// scheduler, workload, network engine — is a registry spec string; unknown
// names throw std::invalid_argument listing the known kinds, exactly like
// workload::make_source does, before any simulation time is spent.

#include <optional>
#include <string>

#include "core/experiment.hpp"
#include "mesh/coord.hpp"

namespace procsim::core {

/// Raw string axes as a driver's flags collect them. An empty axis leaves the
/// config's current value alone, so drivers can layer a spec over a workload
/// template (bench_common's figure bases) without re-stating every field.
struct ExperimentSpecStrings {
  std::string mesh;      ///< "WxL", sides 1..4096 — the single-mesh axis
  std::string cluster;   ///< cluster::parse_cluster_spec grammar — the fleet axis
  std::string alloc;     ///< allocator registry name (alloc::known_allocators)
  std::string sched;     ///< scheduler registry spec (sched::known_schedulers)
  std::string workload;  ///< workload::make_source registry spec
  std::string net;       ///< network engine name (stepped|batched|verify|analytic)
};

/// "WxL" with both sides in 1..4096; nullopt when malformed. The shared
/// mesh-geometry grammar of `--mesh=` and the cluster spec's groups.
[[nodiscard]] std::optional<mesh::Geometry> parse_mesh_geometry(
    const std::string& s);

/// Parses every non-empty axis of `axes` and applies it to `cfg` in place.
/// Throws std::invalid_argument naming the offending axis and listing the
/// known kinds. `mesh` and `cluster` together is a conflict (the cluster
/// spec already fixes every mesh geometry). The three bare figure families
/// ("uniform" | "exponential" | "real", no options) keep the template
/// WorkloadSpec path — and its exact figure CSV bytes; any other workload
/// spec lowers onto workload::make_source with the registry's own stream
/// defaults (job_count 0, i.e. no driver-level cap).
void apply_experiment_spec(const ExperimentSpecStrings& axes,
                           ExperimentConfig& cfg);

/// apply_experiment_spec over a default-constructed ExperimentConfig.
[[nodiscard]] ExperimentConfig parse_experiment_spec(
    const ExperimentSpecStrings& axes);

}  // namespace procsim::core
