#include "core/system_sim.hpp"

#include <algorithm>
#include <chrono>
#include <memory>
#include <stdexcept>

#include "obs/recorder.hpp"

namespace procsim::core {

SystemSim::SystemSim(SystemConfig cfg, alloc::Allocator& allocator,
                     sched::Scheduler& scheduler)
    : cfg_(cfg), allocator_(allocator), scheduler_(scheduler),
      rec_(cfg.recorder), own_sim_(cfg.event_engine), sim_(&own_sim_) {
  if (!(allocator.geometry() == cfg.geom))
    throw std::invalid_argument("SystemSim: allocator geometry mismatch");
}

SystemSim::SystemSim(SystemConfig cfg, alloc::Allocator& allocator,
                     sched::Scheduler& scheduler, des::Simulator* clock)
    : cfg_(cfg), allocator_(allocator), scheduler_(scheduler),
      rec_(cfg.recorder), own_sim_(cfg.event_engine), sim_(clock) {
  if (clock == nullptr)
    throw std::invalid_argument("SystemSim: external clock must be non-null");
  if (!(allocator.geometry() == cfg.geom))
    throw std::invalid_argument("SystemSim: allocator geometry mismatch");
}

RunMetrics SystemSim::run(const std::vector<workload::Job>& jobs) {
  if (!std::is_sorted(jobs.begin(), jobs.end(),
                      [](const workload::Job& a, const workload::Job& b) {
                        return a.arrival < b.arrival;
                      }))
    throw std::invalid_argument("SystemSim::run: jobs must be sorted by arrival");
  workload::VectorSource source(jobs);
  return run(source);
}

RunMetrics SystemSim::run(workload::Source& source) {
  const auto wall_start = std::chrono::steady_clock::now();
  sim_->reset();
  begin_run();

  source_ = &source;
  pump_arrival();
  // The first telemetry snapshot lands at t = 0 (the pristine mesh); every
  // sampling event is pure observation plus its own reschedule, and the
  // (time, seq) pop order keeps all model-event pairs in their original
  // relative order — trajectories are bit-identical with sampling on.
  if (rec_ != nullptr && rec_->sampler() != nullptr) sample_telemetry();
  sim_->run(cfg_.max_events);
  source_ = nullptr;

  finalize_run(/*own_clock=*/true, wall_start);
  return metrics_;
}

void SystemSim::begin_run() {
  allocator_.reset();
  allocator_.set_recorder(rec_);
  scheduler_.clear();
  arena_.clear();
  metrics_ = RunMetrics{};
  completed_ = 0;
  seq_ = 0;
  measure_start_ = 0;
  pass_pending_ = false;
  busy_procs_ = stats::TimeWeighted{};
  queue_len_ = stats::TimeWeighted{};
  rng_ = des::Xoshiro256SS{cfg_.seed};
  net_ = std::make_unique<network::WormholeNetwork>(*sim_, cfg_.geom, cfg_.net);
  // Captureless-lambda-to-function-pointer: the per-delivery dispatch is a
  // raw call through (fn, ctx), not a type-erased std::function.
  net_->set_delivery_sink(
      [](void* ctx, const network::Delivery& d) {
        static_cast<SystemSim*>(ctx)->on_delivery(d);
      },
      this);
  net_->set_recorder(rec_);
}

void SystemSim::finalize_run(bool own_clock,
                             std::chrono::steady_clock::time_point wall_start) {
  const double end = sim_->now();
  metrics_.completed = completed_ >= cfg_.warmup_completions
                           ? completed_ - cfg_.warmup_completions
                           : 0;
  metrics_.makespan = end;
  metrics_.utilization =
      busy_procs_.average(end) / static_cast<double>(cfg_.geom.nodes());
  metrics_.mean_queue_length = queue_len_.average(end);
  metrics_.events = sim_->events_executed();
  if (rec_ != nullptr) {
    // End-of-run pull of the subsystem tallies the hot hooks never touch:
    // the occupancy index and calendar queue keep their own lightweight
    // counts (reset with the run), and reservation-aware schedulers export
    // named counters without depending on obs.
    obs::Counters& c = rec_->counters();
    const mesh::OccupancyIndex::QueryStats& qs = allocator_.index().query_stats();
    c.index_frontier_passes += qs.frontier_passes;
    c.index_frontier_hits += qs.frontier_hits;
    c.index_descent_queries += qs.descent_queries;
    c.index_first_fit_queries += qs.first_fit_queries;
    c.index_best_fit_queries += qs.best_fit_queries;
    if (own_clock) {
      // The clock-level tallies belong to whoever owns the event loop: in
      // cluster mode N meshes share one clock and the cluster adds these
      // once, else every counter would be N-fold.
      c.calendar_rebuckets += sim_->queue().rebucket_count();
      c.sim_events += sim_->events_executed();
    }
    const network::NetStats& ns = net_->stats();
    c.net_runs_batched += ns.runs_batched;
    for (std::size_t i = 0; i < 6; ++i)
      c.net_run_len_hist[i] += ns.run_len_hist[i];
    c.net_truncations += ns.truncations;
    c.net_analytic_packets += ns.analytic_packets;
    scheduler_.export_counters(c.extras);
    if (own_clock && rec_->timers_enabled()) {
      const std::chrono::duration<double> wall =
          std::chrono::steady_clock::now() - wall_start;
      c.add_timer("run_wall_s", wall.count());
    }
  }
}

void SystemSim::begin_external_run() { begin_run(); }

void SystemSim::submit(workload::Job job) { on_arrival(std::move(job)); }

RunMetrics SystemSim::finish_external_run() {
  finalize_run(/*own_clock=*/false, {});
  return metrics_;
}

const workload::Job* SystemSim::peek_last_queued() const {
  if (scheduler_.size() == 0) return nullptr;
  const sched::QueuedJob q = scheduler_.job_at(scheduler_.size() - 1);
  return &arena_.job(arena_.slot_of(q.job_id));
}

std::optional<workload::Job> SystemSim::steal_last_queued() {
  if (scheduler_.size() == 0) return std::nullopt;
  const sched::QueuedJob taken = scheduler_.take(scheduler_.size() - 1);
  queue_len_.set(sim_->now(), static_cast<double>(scheduler_.size()));
  return arena_.extract(arena_.slot_of(taken.job_id));
}

void SystemSim::pump_arrival() {
  const std::optional<double> next = source_->peek_arrival();
  if (!next) return;
  if (*next < sim_->now())
    throw std::invalid_argument("SystemSim: source arrivals must be non-decreasing");
  // The next arrival is scheduled *before* this one's side effects run (see
  // the call site in the arrival event), preserving the event order of the
  // historical schedule-all-arrivals-up-front implementation.
  sim_->schedule_at(*next, [this] {
    std::optional<workload::Job> job = source_->next_job();
    if (!job) return;  // a source must not retract a peeked job; be lenient
    pump_arrival();
    on_arrival(std::move(*job));
  });
}

void SystemSim::on_arrival(workload::Job job) {
  if (rec_ != nullptr)
    rec_->job_arrival(sim_->now(), job.id, job.width, job.length, job.processors);
  sched::QueuedJob q;
  q.job_id = job.id;
  q.arrival = job.arrival;
  q.demand = job.demand;
  q.area = static_cast<std::int64_t>(job.width) * job.length;
  q.processors = job.processors;
  q.seq = seq_++;
  scheduler_.enqueue(q);
  queue_len_.set(sim_->now(), static_cast<double>(scheduler_.size()));

  (void)arena_.acquire(std::move(job));  // queued; placed at start
  request_schedule();
}

void SystemSim::request_schedule() {
  if (!cfg_.coalesce_passes) {
    try_schedule();
    return;
  }
  if (pass_pending_) return;
  pass_pending_ = true;
  // One pass per timestamp: every same-time trigger after the first folds
  // into the already-registered batch-end action. The flag clears before the
  // pass runs so job starts *inside* the pass (which may complete instantly
  // at the same timestamp) can re-request and extend the batch.
  sim_->at_batch_end([this] {
    pass_pending_ = false;
    try_schedule();
  });
}

const workload::Job& SystemSim::queued_job(std::uint64_t job_id) const {
  return arena_.job(arena_.slot_of(job_id));
}

void SystemSim::try_schedule() {
  // One transactional scheduling pass. Each step the discipline nominates a
  // queue position (probing the allocatability of non-head jobs if it wants
  // to — can_allocate answers from the occupancy index without committing
  // anything), the simulator attempts the real allocation, and on success
  // removes the job and starts it. The pass ends when the discipline has no
  // candidate or an attempt fails — for the ordered disciplines, which
  // always nominate the head and never probe, that failed attempt is
  // exactly the paper's blocking head-of-queue semantics (§4).
  std::uint32_t probes = 0;
  std::int32_t nominees = 0;
  std::int32_t started = 0;
  std::uint64_t pass_seq = 0;
  if (rec_ != nullptr) {
    pass_seq = rec_->counters().schedule_passes;
    rec_->pass_begin(sim_->now(), pass_seq,
                     static_cast<std::uint64_t>(scheduler_.size()));
  }
  const sched::AllocProbe probe = [this, &probes](const sched::QueuedJob& q) {
    if (rec_ != nullptr) {
      rec_->probe_call();
      ++probes;
    }
    const workload::Job& job = queued_job(q.job_id);
    return allocator_.can_allocate(alloc::Request{job.width, job.length, job.processors});
  };
  // The probe-at-instant companion: would the job fit once these running
  // jobs' blocks were released? Also side-effect free (a hypothetical-bitmap
  // query), so shape-aware reservations cost queries, never state.
  const sched::ShapeProbe shape_fit =
      [this](const sched::QueuedJob& q, const std::vector<mesh::SubMesh>& released) {
        const workload::Job& job = queued_job(q.job_id);
        return allocator_.can_allocate_with_free(
            alloc::Request{job.width, job.length, job.processors}, released);
      };
  for (;;) {
    const sched::SchedSnapshot snap{sim_->now(),
                                    static_cast<std::int64_t>(allocator_.free_processors()),
                                    &shape_fit};
    const auto pos = scheduler_.select(probe, snap);
    if (!pos) break;
    if (rec_ != nullptr) ++nominees;
    const sched::QueuedJob candidate = scheduler_.job_at(*pos);
    const workload::Job& job = queued_job(candidate.job_id);
    alloc::Request req{job.width, job.length, job.processors};
    auto placement = allocator_.allocate(req);
    if (!placement) {
      if (rec_ != nullptr)
        rec_->alloc_fail(sim_->now(), job.id, req.width, req.length, req.processors);
      break;  // blocking semantics / a stale probe ends the pass
    }
    if (rec_ != nullptr) {
      const mesh::SubMesh& first = placement->blocks.front();
      rec_->alloc_success(sim_->now(), job.id, placement->allocated,
                          static_cast<std::uint32_t>(placement->blocks.size()),
                          first.x1, first.y1, first.width(), first.length());
      ++started;
    }
    const sched::QueuedJob taken = scheduler_.take(*pos);
    scheduler_.on_start(taken, sim_->now(), placement->allocated, placement->blocks);
    queue_len_.set(sim_->now(), static_cast<double>(scheduler_.size()));
    start_job(arena_.slot_of(taken.job_id), std::move(*placement));
  }
  if (rec_ != nullptr)
    rec_->pass_end(sim_->now(), pass_seq, probes, nominees, started,
                   static_cast<std::int32_t>(scheduler_.size()));
}

void SystemSim::start_job(JobArena::Slot slot, alloc::Placement placement) {
  const workload::Job& job = arena_.job(slot);
  arena_.start_time(slot) = sim_->now();
  arena_.placement(slot) = std::move(placement);
  busy_procs_.add(sim_->now(),
                  static_cast<double>(arena_.placement(slot).allocated));

  const std::vector<network::SrcDst> traffic =
      network::map_plan(job.message_plan, arena_.placement(slot).compute_nodes);

  if (traffic.empty()) {
    // Single-processor job (or no messages): nominal local service of one
    // packet's worth of work (a zero-hop traversal).
    const double nominal = static_cast<double>(net_->base_latency_cycles(0));
    arena_.outstanding(slot) = 0;
    sim_->schedule_in(nominal, [this, slot] { complete_job(slot); });
    return;
  }

  arena_.outstanding(slot) = static_cast<std::int64_t>(traffic.size());
  metrics_.packets += traffic.size();
  // Group messages by source, preserving plan order; every source streams
  // its messages one at a time (blocking sends), all sources concurrently.
  // The slot rides along as the packet tag, so deliveries come back O(1).
  StreamSet& streams = arena_.streams(slot);
  streams.build(traffic);
  for (std::size_t i = 0; i < streams.sources(); ++i) {
    const auto dst = streams.next_at(i);
    net_->inject(streams.source(i), *dst, slot);
  }
}

void SystemSim::on_delivery(const network::Delivery& d) {
  if (measuring()) {
    metrics_.packet_latency.add(d.latency);
    metrics_.packet_blocking.add(d.blocked);
    metrics_.packet_hops.add(static_cast<double>(d.hops));
  }
  const auto slot = static_cast<JobArena::Slot>(d.tag);
  if (!arena_.occupied(slot))
    throw std::logic_error("SystemSim: delivery for unknown job");

  // The source that just completed a send issues its next message after the
  // (optional) compute gap.
  if (const auto next_dst = arena_.streams(slot).advance(d.src)) {
    const mesh::NodeId src = d.src;
    const mesh::NodeId dst = *next_dst;
    if (cfg_.think_time > 0) {
      sim_->schedule_in(cfg_.think_time,
                       [this, src, dst, slot] { net_->inject(src, dst, slot); });
    } else {
      net_->inject(src, dst, slot);
    }
  }

  if (--arena_.outstanding(slot) == 0) complete_job(slot);
}

void SystemSim::complete_job(JobArena::Slot slot) {
  if (!arena_.occupied(slot))
    throw std::logic_error("SystemSim: completing unknown job");
  const workload::Job& job = arena_.job(slot);
  const alloc::Placement& placement = arena_.placement(slot);
  const double start_time = arena_.start_time(slot);
  const double now = sim_->now();

  busy_procs_.add(now, -static_cast<double>(placement.allocated));
  allocator_.release(placement);
  scheduler_.on_complete(job.id, now);
  if (rec_ != nullptr) {
    rec_->release(now, job.id, placement.allocated);
    rec_->complete(now, job.id, now - job.arrival);
  }

  JobRecord rec;
  const bool want_record =
      hook_ != nullptr || (sink_ != nullptr && measuring());
  if (want_record) {
    rec.id = job.id;
    rec.arrival = job.arrival;
    rec.start = start_time;
    rec.finish = now;
    rec.demand = job.demand;
    rec.width = job.width;
    rec.length = job.length;
    rec.processors = job.processors;
    rec.allocated = placement.allocated;
    rec.alloc_blocks = static_cast<std::int32_t>(placement.blocks.size());
    if (placement.blocks.size() == 1) {
      rec.alloc_width = placement.blocks.front().width();
      rec.alloc_length = placement.blocks.front().length();
    }
  }
  if (measuring()) {
    metrics_.turnaround.add(now - job.arrival);
    metrics_.service.add(now - start_time);
    if (sink_ != nullptr) sink_->on_job(rec);
  }
  ++completed_;
  if (completed_ == cfg_.warmup_completions) {
    // Steady state reached: restart the time-averaged windows.
    busy_procs_.reset_window(now);
    queue_len_.reset_window(now);
    measure_start_ = now;
  }
  arena_.release(slot);

  if (cfg_.target_completions != 0 &&
      completed_ >= cfg_.target_completions + cfg_.warmup_completions) {
    sim_->stop();
    return;
  }
  request_schedule();
  // The cluster hook runs last: the completion is fully accounted, the slot
  // released, and any same-time scheduling pass done, so the hook sees this
  // mesh's post-completion state (migration decisions key off it).
  if (hook_ != nullptr) hook_(hook_ctx_, *this, rec);
}

void SystemSim::sample_telemetry() {
  obs::GaugeSampler& sampler = *rec_->sampler();
  const mesh::OccupancyIndex& index = allocator_.index();
  obs::GaugeSampler::Sample s;
  s.t = sim_->now();
  s.queue_depth = scheduler_.size();
  // Every resident job is either queued or holding processors.
  s.running_jobs = arena_.active() - scheduler_.size();
  s.busy_nodes = index.busy_count();
  s.free_nodes = index.free_count();
  s.max_free_run = index.max_free_run();
  // The largest free sub-mesh, uncapped. Reading it may warm the index's
  // frontier cache, but caches are semantically transparent — every
  // subsequent query answers identically — so sampling stays observation-
  // only (the attached-vs-detached byte compare pins this).
  const auto rect = index.largest_free(cfg_.geom.width(), cfg_.geom.length());
  s.largest_rect = rect ? rect->area() : 0;
  s.external_frag =
      s.free_nodes > 0
          ? 1.0 - static_cast<double>(s.largest_rect) / static_cast<double>(s.free_nodes)
          : 0.0;
  sampler.append(s);
  ++rec_->counters().telemetry_samples;
  // Drain guard: keep sampling only while the run still has work — resident
  // jobs or pending arrivals. Without it an unbounded reschedule would keep
  // the event queue non-empty forever on runs that end by draining.
  if (arena_.active() > 0 || (source_ != nullptr && source_->peek_arrival()))
    sim_->schedule_in(sampler.interval(), [this] { sample_telemetry(); });
}

}  // namespace procsim::core
