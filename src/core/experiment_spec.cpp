#include "core/experiment_spec.hpp"

#include <cstdlib>
#include <stdexcept>

#include "cluster/cluster_spec.hpp"
#include "network/wormhole_network.hpp"
#include "sched/registry.hpp"
#include "workload/source_registry.hpp"

namespace procsim::core {

std::optional<mesh::Geometry> parse_mesh_geometry(const std::string& s) {
  const auto x = s.find_first_of("xX");
  if (x == std::string::npos || x == 0 || x + 1 >= s.size()) return std::nullopt;
  char* end = nullptr;
  const long w = std::strtol(s.c_str(), &end, 10);
  if (end != s.c_str() + x) return std::nullopt;
  const long l = std::strtol(s.c_str() + x + 1, &end, 10);
  if (*end != '\0' || w <= 0 || l <= 0 || w > 4096 || l > 4096)
    return std::nullopt;
  return mesh::Geometry(static_cast<std::int32_t>(w),
                        static_cast<std::int32_t>(l));
}

void apply_experiment_spec(const ExperimentSpecStrings& axes,
                           ExperimentConfig& cfg) {
  if (!axes.mesh.empty() && !axes.cluster.empty())
    throw std::invalid_argument(
        "--mesh and --cluster are mutually exclusive (the cluster spec "
        "already fixes every mesh geometry)");
  if (!axes.mesh.empty()) {
    const auto geom = parse_mesh_geometry(axes.mesh);
    if (!geom)
      throw std::invalid_argument("bad mesh '" + axes.mesh +
                                  "' (expected WxL, sides 1..4096)");
    cfg.sys.geom = *geom;
    cfg.cluster.reset();
  }
  if (!axes.cluster.empty()) {
    std::string error;
    auto spec = cluster::parse_cluster_spec(axes.cluster, &error);
    if (!spec)
      throw std::invalid_argument("bad cluster spec '" + axes.cluster +
                                  "': " + error);
    cfg.cluster = std::move(*spec);
    // Workload shaping fallback: jobs are sized for the first mesh (see
    // ExperimentConfig::cluster), so keep sys.geom consistent with it.
    cfg.sys.geom = cfg.cluster->meshes.front().geom;
  }
  // AllocatorSpec's validating constructor throws listing known_allocators.
  if (!axes.alloc.empty()) cfg.allocator = AllocatorSpec{axes.alloc};
  if (!axes.sched.empty()) {
    const auto spec = sched::parse_sched_spec(axes.sched);
    if (!spec)
      throw std::invalid_argument("unknown scheduler '" + axes.sched +
                                  "' (known: " +
                                  sched::known_scheduler_list() + ")");
    cfg.scheduler = *spec;
  }
  if (!axes.workload.empty()) {
    const auto spec = workload::parse_source_spec(axes.workload);
    if (!spec) {
      std::string known;
      for (const std::string& k : workload::known_sources()) {
        if (!known.empty()) known += ", ";
        known += k;
      }
      throw std::invalid_argument("unknown workload '" + axes.workload +
                                  "' (known: " + known + ")");
    }
    const bool bare_family =
        spec->arg.empty() && spec->params.empty() &&
        (spec->kind == "uniform" || spec->kind == "exponential" ||
         spec->kind == "real");
    if (bare_family) {
      // The three figure families keep the template WorkloadSpec path so the
      // fixed-seed figure CSVs stay byte-identical with the spec API.
      cfg.workload.source_spec.clear();
      if (spec->kind == "real") {
        cfg.workload.kind = WorkloadKind::kTrace;
      } else {
        cfg.workload.kind = WorkloadKind::kStochastic;
        cfg.workload.stochastic.side_dist =
            spec->kind == "uniform" ? workload::SideDistribution::kUniform
                                    : workload::SideDistribution::kExponential;
      }
    } else {
      cfg.workload.source_spec = spec->canonical;
      // No stream-length override: the registry defaults apply (trace kinds
      // replay the whole file). Drivers' --jobs/--fast still cap it.
      cfg.workload.job_count = 0;
    }
    // Fail fast on bad option keys / unreadable SWF files before any cell
    // spends a replicated simulation on them (make_source validates values;
    // parse only validates syntax).
    if (!cfg.workload.source_spec.empty())
      (void)workload::make_source(cfg.workload.source_spec, cfg.sys.geom);
  }
  // parse_net_engine throws std::invalid_argument listing the engine names.
  if (!axes.net.empty()) cfg.sys.net.engine = network::parse_net_engine(axes.net);
}

ExperimentConfig parse_experiment_spec(const ExperimentSpecStrings& axes) {
  ExperimentConfig cfg;
  apply_experiment_spec(axes, cfg);
  return cfg;
}

}  // namespace procsim::core
