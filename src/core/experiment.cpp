#include "core/experiment.hpp"

#include <stdexcept>

#include "alloc/registry.hpp"
#include "sched/registry.hpp"
#include "stats/parallel_replication.hpp"
#include "workload/swf.hpp"

namespace procsim::core {

std::string AllocatorSpec::label() const {
  switch (kind) {
    case AllocatorKind::kGabl: return "GABL";
    case AllocatorKind::kPaging: return "Paging(" + std::to_string(paging_size_index) + ")";
    case AllocatorKind::kMbs: return "MBS";
    case AllocatorKind::kFirstFit: return "FirstFit";
    case AllocatorKind::kBestFit: return "BestFit";
    case AllocatorKind::kRandom: return "Random";
  }
  return "?";
}

std::unique_ptr<alloc::Allocator> make_allocator(const AllocatorSpec& spec,
                                                 mesh::Geometry geom, std::uint64_t seed) {
  alloc::AllocatorParams params;
  params.seed = seed;
  params.paging_indexing = spec.paging_indexing;
  return alloc::make_allocator(spec.label(), geom, params);
}

std::unique_ptr<sched::Scheduler> make_scheduler(sched::Policy policy) {
  return sched::make_scheduler(policy);
}

std::optional<AllocatorSpec> parse_allocator_spec(const std::string& name) {
  const auto parsed = alloc::parse_allocator_name(name);
  if (!parsed) return std::nullopt;
  AllocatorSpec spec;
  spec.paging_size_index = parsed->paging_size_index;
  switch (parsed->family) {
    case alloc::Family::kGabl: spec.kind = AllocatorKind::kGabl; break;
    case alloc::Family::kPaging: spec.kind = AllocatorKind::kPaging; break;
    case alloc::Family::kMbs: spec.kind = AllocatorKind::kMbs; break;
    case alloc::Family::kFirstFit: spec.kind = AllocatorKind::kFirstFit; break;
    case alloc::Family::kBestFit: spec.kind = AllocatorKind::kBestFit; break;
    case alloc::Family::kRandom: spec.kind = AllocatorKind::kRandom; break;
  }
  return spec;
}

std::string ExperimentConfig::series_label() const {
  return allocator.label() + "(" + sched::to_string(scheduler) + ")";
}

std::vector<workload::Job> build_jobs(const WorkloadSpec& spec, const mesh::Geometry& geom,
                                      std::int32_t packet_len, std::uint64_t seed) {
  des::Xoshiro256SS rng(seed);
  switch (spec.kind) {
    case WorkloadKind::kStochastic: {
      workload::StochasticParams p = spec.stochastic;
      p.packet_len = packet_len;
      return workload::generate_stochastic(p, geom, spec.job_count, rng);
    }
    case WorkloadKind::kTrace: {
      std::vector<workload::TraceJob> trace =
          spec.swf_path.empty()
              ? workload::generate_paragon_trace(spec.paragon, rng)
              : workload::load_swf_file(spec.swf_path, geom.nodes());
      const workload::TraceStats st = workload::compute_stats(trace);
      workload::TraceReplayParams rp = spec.replay;
      if (spec.load > 0 && st.mean_interarrival > 0)
        rp.arrival_factor = workload::arrival_factor_for_load(spec.load, st.mean_interarrival);
      return workload::make_trace_jobs(trace, rp, geom, rng);
    }
  }
  throw std::invalid_argument("build_jobs: bad workload kind");
}

RunMetrics run_once(const ExperimentConfig& cfg) {
  const auto allocator = make_allocator(cfg.allocator, cfg.sys.geom, cfg.seed);
  const auto scheduler = core::make_scheduler(cfg.scheduler);
  const std::vector<workload::Job> jobs =
      build_jobs(cfg.workload, cfg.sys.geom, cfg.sys.net.packet_len, cfg.seed);
  SystemConfig sys = cfg.sys;
  sys.seed = cfg.seed ^ 0x5EEDF00DULL;
  SystemSim sim(sys, *allocator, *scheduler);
  return sim.run(jobs);
}

std::map<std::string, double> to_observations(const RunMetrics& m) {
  return {
      {"turnaround", m.turnaround.mean()},
      {"service", m.service.mean()},
      {"utilization", m.utilization},
      {"latency", m.packet_latency.mean()},
      {"blocking", m.packet_blocking.mean()},
      {"hops", m.packet_hops.mean()},
      {"queue_length", m.mean_queue_length},
  };
}

std::vector<std::string> known_metrics() {
  std::vector<std::string> out;
  for (const auto& [name, value] : to_observations(RunMetrics{})) out.push_back(name);
  return out;
}

AggregateResult run_replicated(const ExperimentConfig& cfg,
                               const stats::ReplicationPolicy& policy,
                               util::ThreadPool* pool) {
  const stats::ParallelReplicationRunner runner(policy, pool);
  const stats::ReplicationController controller =
      runner.run([&cfg](std::uint64_t rep) {
        ExperimentConfig rep_cfg = cfg;
        rep_cfg.seed = des::substream_seed(cfg.seed, rep);
        const RunMetrics m = run_once(rep_cfg);
        // Unordered-map iteration order is irrelevant here: each metric is keyed.
        std::unordered_map<std::string, double> obs;
        for (const auto& [k, v] : to_observations(m)) obs.emplace(k, v);
        return obs;
      });
  AggregateResult out;
  out.replications = controller.replications();
  for (const std::string& name : controller.metric_names())
    out.metrics.emplace(name, controller.interval(name));
  return out;
}

}  // namespace procsim::core
