#include "core/experiment.hpp"

#include <stdexcept>

#include "alloc/registry.hpp"
#include "cluster/cluster_sim.hpp"
#include "obs/recorder.hpp"
#include "sched/registry.hpp"
#include "stats/parallel_replication.hpp"
#include "workload/source_registry.hpp"
#include "workload/swf.hpp"

namespace procsim::core {

AllocatorSpec::AllocatorSpec(const std::string& name) {
  const auto parsed = alloc::parse_allocator_name(name);
  if (!parsed) {
    std::string known;
    for (const std::string& k : alloc::known_allocators()) {
      if (!known.empty()) known += ", ";
      known += k;
    }
    throw std::invalid_argument("unknown allocator '" + name + "'; known: " + known);
  }
  canonical = parsed->canonical;
}

std::unique_ptr<alloc::Allocator> make_allocator(const AllocatorSpec& spec,
                                                 mesh::Geometry geom, std::uint64_t seed) {
  alloc::AllocatorParams params;
  params.seed = seed;
  params.paging_indexing = spec.paging_indexing;
  return alloc::make_allocator(spec.canonical, geom, params);
}

std::unique_ptr<sched::Scheduler> make_scheduler(const sched::SchedSpec& spec) {
  return sched::make_scheduler(spec);
}

std::optional<AllocatorSpec> parse_allocator_spec(const std::string& name) {
  const auto parsed = alloc::parse_allocator_name(name);
  if (!parsed) return std::nullopt;
  AllocatorSpec spec;
  spec.canonical = parsed->canonical;
  return spec;
}

std::string ExperimentConfig::series_label() const {
  return allocator.label() + "(" + scheduler.name() + ")";
}

std::unique_ptr<workload::Source> make_workload_source(const WorkloadSpec& spec,
                                                       const mesh::Geometry& geom,
                                                       std::int32_t packet_len) {
  if (!spec.source_spec.empty()) {
    workload::SourceOverrides overrides;
    overrides.load = spec.load;
    overrides.count = spec.job_count;
    overrides.packet_len = packet_len;
    return workload::make_source(spec.source_spec, geom, overrides);
  }
  switch (spec.kind) {
    case WorkloadKind::kStochastic: {
      workload::StochasticParams p = spec.stochastic;
      p.packet_len = packet_len;
      return std::make_unique<workload::StochasticSource>(
          p, geom, spec.job_count, workload::to_string(p.side_dist));
    }
    case WorkloadKind::kTrace: {
      if (spec.swf_path.empty())
        return std::make_unique<workload::TraceSource>(spec.paragon, spec.replay,
                                                       spec.load, geom, "real");
      // Shared parse: replications alias one immutable record vector.
      return std::make_unique<workload::TraceSource>(
          workload::load_swf_file_shared(spec.swf_path, geom.nodes()), spec.replay,
          spec.load, geom, "swf:" + spec.swf_path);
    }
  }
  throw std::invalid_argument("make_workload_source: bad workload kind");
}

std::vector<workload::Job> build_jobs(const WorkloadSpec& spec, const mesh::Geometry& geom,
                                      std::int32_t packet_len, std::uint64_t seed) {
  // An unbounded stream (stochastic job_count = 0) cannot be materialised;
  // the eager contract has always been "0 jobs" for that configuration.
  if (spec.source_spec.empty() && spec.kind == WorkloadKind::kStochastic &&
      spec.job_count == 0)
    return {};
  const auto source = make_workload_source(spec, geom, packet_len);
  if (!source->bounded())
    throw std::invalid_argument(
        "build_jobs: source '" + source->name() +
        "' is unbounded and cannot be materialised; cap it with jobs=N");
  source->reset(seed);
  std::vector<workload::Job> jobs;
  if (spec.job_count) jobs.reserve(spec.job_count);
  while (auto job = source->next_job()) jobs.push_back(std::move(*job));
  return jobs;
}

RunMetrics run_probed(const ExperimentConfig& cfg, obs::Recorder* recorder,
                      MetricsSink* sink) {
  if (cfg.cluster.has_value()) {
    const cluster::ClusterSpec& spec = *cfg.cluster;
    // Jobs are shaped for the first mesh's geometry; `workload.load` means
    // per-mesh offered load, so the fleet's arrival rate scales with its
    // aggregate capacity (load is linear in arrival rate for every source).
    const mesh::Geometry shape_geom = spec.meshes.front().geom;
    WorkloadSpec scaled = cfg.workload;
    scaled.load *= static_cast<double>(spec.total_nodes()) /
                   static_cast<double>(shape_geom.nodes());
    const auto source =
        make_workload_source(scaled, shape_geom, cfg.sys.net.packet_len);
    source->reset(cfg.seed);
    cluster::ClusterSimConfig ccfg;
    ccfg.spec = spec;
    ccfg.net = cfg.sys.net;
    ccfg.think_time = cfg.sys.think_time;
    ccfg.target_completions = cfg.sys.target_completions;
    ccfg.warmup_completions = cfg.sys.warmup_completions;
    ccfg.seed = cfg.seed;
    ccfg.max_events = cfg.sys.max_events;
    ccfg.event_engine = cfg.sys.event_engine;
    ccfg.recorder = recorder != nullptr ? recorder : cfg.sys.recorder;
    ccfg.default_alloc = cfg.allocator.label();
    ccfg.scheduler = cfg.scheduler;
    cluster::ClusterSim csim(std::move(ccfg));
    if (sink != nullptr) csim.set_metrics_sink(sink);
    return csim.run(*source);
  }
  const auto allocator = make_allocator(cfg.allocator, cfg.sys.geom, cfg.seed);
  const auto scheduler = core::make_scheduler(cfg.scheduler);
  const auto source =
      make_workload_source(cfg.workload, cfg.sys.geom, cfg.sys.net.packet_len);
  source->reset(cfg.seed);
  SystemConfig sys = cfg.sys;
  sys.seed = cfg.seed ^ 0x5EEDF00DULL;
  if (recorder != nullptr) sys.recorder = recorder;
  SystemSim sim(sys, *allocator, *scheduler);
  if (sink != nullptr) sim.set_metrics_sink(sink);
  return sim.run(*source);
}

RunMetrics run_once(const ExperimentConfig& cfg) {
  // The per-job record stream feeds the fairness analytics. Collection is
  // observation-only (MetricsSink contract), so attaching the sink cannot
  // change a single simulated event.
  stats::JobMetrics job_metrics;
  // --obs-probe: a per-replication fully-enabled recorder whose collected
  // data is thrown away — runs the recorder contract on real figure work.
  // Replication-local so concurrent grid cells never share recorder state.
  std::unique_ptr<obs::Recorder> probe;
  if (cfg.obs_probe) {
    probe = std::make_unique<obs::Recorder>();
    probe->enable_trace();
    probe->enable_telemetry(100.0);
  }
  RunMetrics m = run_probed(cfg, probe.get(), &job_metrics);
  m.jobs.wait = job_metrics.wait();
  m.jobs.turnaround = job_metrics.turnaround();
  m.jobs.slowdown = job_metrics.bounded_slowdown();
  m.jobs.starved = static_cast<double>(job_metrics.starvation().count());
  return m;
}

std::map<std::string, double> to_observations(const RunMetrics& m) {
  return {
      {"turnaround", m.turnaround.mean()},
      {"service", m.service.mean()},
      {"utilization", m.utilization},
      {"latency", m.packet_latency.mean()},
      {"blocking", m.packet_blocking.mean()},
      {"hops", m.packet_hops.mean()},
      {"queue_length", m.mean_queue_length},
      // Per-job fairness analytics (stats::JobMetrics over the JobRecord
      // stream). Excluded from the replication stopping rule — see
      // precision_observation_names().
      {"wait_mean", m.jobs.wait.mean},
      {"wait_p50", m.jobs.wait.p50},
      {"wait_p95", m.jobs.wait.p95},
      {"wait_p99", m.jobs.wait.p99},
      {"wait_max", m.jobs.wait.max},
      {"turnaround_p50", m.jobs.turnaround.p50},
      {"turnaround_p95", m.jobs.turnaround.p95},
      {"turnaround_p99", m.jobs.turnaround.p99},
      {"turnaround_max", m.jobs.turnaround.max},
      {"slowdown_p50", m.jobs.slowdown.p50},
      {"slowdown_p95", m.jobs.slowdown.p95},
      {"slowdown_p99", m.jobs.slowdown.p99},
      {"slowdown_max", m.jobs.slowdown.max},
      {"starved", m.jobs.starved},
      // Cluster observations (ClusterStats; all 0 on single-mesh runs).
      // Excluded from the replication stopping rule like the fairness
      // analytics — see precision_observation_names().
      {"util_spread", m.cluster.spread()},
      {"util_min", m.cluster.util_min},
      {"util_max", m.cluster.util_max},
      {"util_stddev", m.cluster.util_stddev},
      {"migrations", static_cast<double>(m.cluster.migrations)},
      {"migration_latency", m.cluster.migration_latency},
      {"stale_errors", static_cast<double>(m.cluster.stale_errors)},
  };
}

std::vector<std::string> precision_observation_names() {
  // The paper's aggregate metrics — exactly the observation set that existed
  // before the per-job analytics, so the 95 %/5 % stopping rule sees the
  // same accumulators it always has. Tail quantiles and starvation counts
  // are deliberately absent: a P99's relative error would inflate
  // replication counts (and shift every fixed-seed CSV) without improving
  // the means the figures plot.
  return {"turnaround", "service",      "utilization", "latency",
          "blocking",   "hops",         "queue_length"};
}

std::vector<std::string> known_metrics() {
  std::vector<std::string> out;
  for (const auto& [name, value] : to_observations(RunMetrics{})) out.push_back(name);
  return out;
}

AggregateResult run_replicated(const ExperimentConfig& cfg,
                               const stats::ReplicationPolicy& policy,
                               util::ThreadPool* pool) {
  stats::ReplicationPolicy gated = policy;
  if (gated.precision_metrics.empty())
    gated.precision_metrics = precision_observation_names();
  const stats::ParallelReplicationRunner runner(gated, pool);
  const stats::ReplicationController controller =
      runner.run([&cfg](std::uint64_t rep) {
        ExperimentConfig rep_cfg = cfg;
        rep_cfg.seed = des::substream_seed(cfg.seed, rep);
        const RunMetrics m = run_once(rep_cfg);
        // Unordered-map iteration order is irrelevant here: each metric is keyed.
        std::unordered_map<std::string, double> obs;
        for (const auto& [k, v] : to_observations(m)) obs.emplace(k, v);
        return obs;
      });
  AggregateResult out;
  out.replications = controller.replications();
  for (const std::string& name : controller.metric_names())
    out.metrics.emplace(name, controller.interval(name));
  return out;
}

}  // namespace procsim::core
