#include "core/job_arena.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <string>
#include <utility>

namespace procsim::core {

void StreamSet::build(const std::vector<network::SrcDst>& traffic) {
  clear();
  srcs_.reserve(traffic.size());
  for (const auto& [src, dst] : traffic) srcs_.push_back(src);
  std::sort(srcs_.begin(), srcs_.end());
  srcs_.erase(std::unique(srcs_.begin(), srcs_.end()), srcs_.end());

  begin_.assign(srcs_.size(), 0);
  next_.assign(srcs_.size(), 0);
  end_.assign(srcs_.size(), 0);
  const auto index_of = [this](mesh::NodeId src) {
    return static_cast<std::size_t>(
        std::lower_bound(srcs_.begin(), srcs_.end(), src) - srcs_.begin());
  };
  for (const auto& [src, dst] : traffic) ++end_[index_of(src)];

  std::uint32_t offset = 0;
  for (std::size_t i = 0; i < srcs_.size(); ++i) {
    begin_[i] = offset;
    next_[i] = offset;  // doubles as the fill cursor below
    offset += end_[i];
    end_[i] = offset;
  }

  // Grouped fill in plan order: each source's destinations land contiguously
  // and in the order the message plan issued them.
  dsts_.resize(traffic.size());
  for (const auto& [src, dst] : traffic) dsts_[next_[index_of(src)]++] = dst;
  next_ = begin_;
}

std::optional<mesh::NodeId> StreamSet::advance(mesh::NodeId src) {
  const auto it = std::lower_bound(srcs_.begin(), srcs_.end(), src);
  if (it == srcs_.end() || *it != src)
    throw std::logic_error("StreamSet: delivery from unknown source stream");
  return next_at(static_cast<std::size_t>(it - srcs_.begin()));
}

void StreamSet::clear() noexcept {
  srcs_.clear();
  begin_.clear();
  next_.clear();
  end_.clear();
  dsts_.clear();
}

JobArena::Slot JobArena::acquire(workload::Job job) {
  const std::uint64_t id = job.id;
  Slot s;
  if (!free_.empty()) {
    s = free_.back();
  } else {
    if (jobs_.size() > std::numeric_limits<Slot>::max())
      throw std::length_error("JobArena: slot index overflow");
    s = static_cast<Slot>(jobs_.size());
    outstanding_.emplace_back();
    start_time_.emplace_back();
    jobs_.emplace_back();
    placements_.emplace_back();
    streams_.emplace_back();
    occupied_.push_back(0);
  }
  if (!index_.emplace(id, s).second)
    throw std::invalid_argument("JobArena: duplicate job id " + std::to_string(id));
  if (!free_.empty()) free_.pop_back();  // committed only after the id check
  outstanding_[s] = 0;
  start_time_[s] = 0;
  jobs_[s] = std::move(job);
  placements_[s] = alloc::Placement{};
  streams_[s].clear();
  occupied_[s] = 1;
  return s;
}

void JobArena::release(Slot s) {
  if (!occupied(s)) throw std::logic_error("JobArena: releasing a free slot");
  index_.erase(jobs_[s].id);
  jobs_[s] = workload::Job{};          // drop the message plan's memory
  placements_[s] = alloc::Placement{}; // drop the node list's memory
  occupied_[s] = 0;
  free_.push_back(s);
}

workload::Job JobArena::extract(Slot s) {
  if (!occupied(s)) throw std::logic_error("JobArena: extracting a free slot");
  workload::Job out = std::move(jobs_[s]);
  release(s);
  return out;
}

void JobArena::clear() {
  index_.clear();
  free_.clear();
  // Keep the slot vectors (and every StreamSet's capacity); only the job
  // payloads are dropped. The free list is rebuilt descending so the next
  // run reuses slot 0 first — the same slot sequence a fresh arena produces.
  for (std::size_t s = jobs_.size(); s-- > 0;) {
    jobs_[s] = workload::Job{};
    placements_[s] = alloc::Placement{};
    occupied_[s] = 0;
    free_.push_back(static_cast<Slot>(s));
  }
}

JobArena::Slot JobArena::slot_of(std::uint64_t id) const {
  const auto it = index_.find(id);
  if (it == index_.end())
    throw std::logic_error("JobArena: no slot for job id " + std::to_string(id));
  return it->second;
}

}  // namespace procsim::core
