#include "core/figure_runner.hpp"

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <ostream>

namespace procsim::core {

std::vector<Series> paper_series() {
  std::vector<Series> out;
  const AllocatorSpec gabl{AllocatorKind::kGabl, 0, mesh::PageIndexing::kRowMajor};
  const AllocatorSpec paging0{AllocatorKind::kPaging, 0, mesh::PageIndexing::kRowMajor};
  const AllocatorSpec mbs{AllocatorKind::kMbs, 0, mesh::PageIndexing::kRowMajor};
  for (const auto policy : {sched::Policy::kFcfs, sched::Policy::kSsd}) {
    out.push_back(Series{gabl, policy});
    out.push_back(Series{paging0, policy});
    out.push_back(Series{mbs, policy});
  }
  return out;
}

RunOptions parse_run_options(int argc, char** argv) {
  RunOptions opts;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--fast") == 0) {
      opts.fast = true;
    } else if (std::strncmp(arg, "--jobs=", 7) == 0) {
      opts.jobs = static_cast<std::size_t>(std::strtoull(arg + 7, nullptr, 10));
    } else if (std::strncmp(arg, "--reps=", 7) == 0) {
      opts.max_reps = std::strtoull(arg + 7, nullptr, 10);
      if (opts.min_reps > opts.max_reps) opts.min_reps = opts.max_reps;
    } else if (std::strncmp(arg, "--seed=", 7) == 0) {
      opts.seed = std::strtoull(arg + 7, nullptr, 10);
    } else if (std::strncmp(arg, "--benchmark", 11) == 0) {
      // Tolerate google-benchmark style flags so `for b in bench/*` harness
      // loops can pass uniform arguments.
    } else {
      std::cerr << "warning: unknown option " << arg << "\n";
    }
  }
  if (opts.fast) {
    opts.min_reps = 1;
    opts.max_reps = 1;
  }
  return opts;
}

void run_figure(const FigureSpec& spec, const RunOptions& opts, std::ostream& out,
                bool with_ci) {
  stats::ReplicationPolicy policy;
  policy.min_replications = opts.min_reps;
  policy.max_replications = opts.max_reps;

  out << "# " << spec.id << ": " << spec.title << "\n";
  out << "# metric=" << spec.metric << " mesh=" << spec.base.sys.geom.width() << "x"
      << spec.base.sys.geom.length() << " st=" << spec.base.sys.net.st
      << " Plen=" << spec.base.sys.net.packet_len << "\n";

  out << "load";
  for (const Series& s : spec.series) {
    ExperimentConfig labelled = spec.base;
    labelled.allocator = s.allocator;
    labelled.scheduler = s.scheduler;
    out << "," << labelled.series_label();
  }
  if (with_ci)
    for (const Series& s : spec.series) {
      ExperimentConfig labelled = spec.base;
      labelled.allocator = s.allocator;
      labelled.scheduler = s.scheduler;
      out << ",ci:" << labelled.series_label();
    }
  out << "\n";

  for (const double load : spec.loads) {
    out << load;
    std::vector<stats::Interval> cells;
    for (const Series& s : spec.series) {
      ExperimentConfig cfg = spec.base;
      cfg.allocator = s.allocator;
      cfg.scheduler = s.scheduler;
      cfg.seed = opts.seed;
      if (cfg.workload.kind == WorkloadKind::kStochastic) {
        cfg.workload.stochastic.load = load;
        if (opts.jobs) {
          cfg.workload.job_count = opts.jobs;
          cfg.sys.target_completions = opts.jobs;
        }
        if (opts.fast) {
          cfg.workload.job_count = std::min<std::size_t>(cfg.workload.job_count, 200);
          cfg.sys.target_completions =
              std::min<std::size_t>(cfg.sys.target_completions, 200);
        }
      } else {
        cfg.workload.load = load;
        if (opts.jobs) {
          cfg.workload.replay.prefix = opts.jobs;
          cfg.sys.target_completions = opts.jobs;
        }
        if (opts.fast) {
          cfg.workload.replay.prefix = std::min<std::size_t>(
              cfg.workload.replay.prefix ? cfg.workload.replay.prefix : 10658, 200);
          cfg.sys.target_completions =
              std::min<std::size_t>(cfg.sys.target_completions, 200);
        }
      }
      const AggregateResult res = run_replicated(cfg, policy);
      const auto it = res.metrics.find(spec.metric);
      if (it == res.metrics.end())
        throw std::logic_error("run_figure: unknown metric " + spec.metric);
      cells.push_back(it->second);
      out << "," << it->second.mean;
    }
    if (with_ci)
      for (const stats::Interval& c : cells) out << "," << c.half_width;
    out << "\n";
    out.flush();
  }
}

}  // namespace procsim::core
