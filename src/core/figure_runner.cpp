#include "core/figure_runner.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <future>
#include <iostream>
#include <ostream>
#include <stdexcept>

#include "util/thread_pool.hpp"

namespace procsim::core {

std::vector<Series> paper_series() {
  std::vector<Series> out;
  const AllocatorSpec gabl{AllocatorKind::kGabl, 0, mesh::PageIndexing::kRowMajor};
  const AllocatorSpec paging0{AllocatorKind::kPaging, 0, mesh::PageIndexing::kRowMajor};
  const AllocatorSpec mbs{AllocatorKind::kMbs, 0, mesh::PageIndexing::kRowMajor};
  for (const auto policy : {sched::Policy::kFcfs, sched::Policy::kSsd}) {
    out.push_back(Series{gabl, policy});
    out.push_back(Series{paging0, policy});
    out.push_back(Series{mbs, policy});
  }
  return out;
}

RunOptions parse_run_options(int argc, char** argv) {
  RunOptions opts;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--fast") == 0) {
      opts.fast = true;
    } else if (std::strncmp(arg, "--jobs=", 7) == 0) {
      opts.jobs = static_cast<std::size_t>(std::strtoull(arg + 7, nullptr, 10));
    } else if (std::strncmp(arg, "--reps=", 7) == 0) {
      opts.max_reps = std::strtoull(arg + 7, nullptr, 10);
      if (opts.min_reps > opts.max_reps) opts.min_reps = opts.max_reps;
    } else if (std::strncmp(arg, "--seed=", 7) == 0) {
      opts.seed = std::strtoull(arg + 7, nullptr, 10);
    } else if (std::strncmp(arg, "--threads=", 10) == 0) {
      opts.threads = static_cast<std::size_t>(std::strtoull(arg + 10, nullptr, 10));
    } else if (std::strncmp(arg, "--benchmark", 11) == 0) {
      // Tolerate google-benchmark style flags so `for b in bench/*` harness
      // loops can pass uniform arguments.
    } else {
      std::cerr << "warning: unknown option " << arg << "\n";
    }
  }
  if (opts.fast) {
    opts.min_reps = 1;
    opts.max_reps = 1;
  }
  // Zero replications would leave every metric empty and abort the figure
  // with a confusing "unknown metric" error; one replication is the floor.
  if (opts.max_reps == 0) opts.max_reps = 1;
  if (opts.min_reps == 0) opts.min_reps = 1;
  return opts;
}

void run_figure(const FigureSpec& spec, const RunOptions& opts, std::ostream& out,
                bool with_ci) {
  stats::ReplicationPolicy policy;
  policy.min_replications = opts.min_reps;
  policy.max_replications = opts.max_reps;

  out << "# " << spec.id << ": " << spec.title << "\n";
  out << "# metric=" << spec.metric << " mesh=" << spec.base.sys.geom.width() << "x"
      << spec.base.sys.geom.length() << " st=" << spec.base.sys.net.st
      << " Plen=" << spec.base.sys.net.packet_len << "\n";

  out << "load";
  for (const Series& s : spec.series) {
    ExperimentConfig labelled = spec.base;
    labelled.allocator = s.allocator;
    labelled.scheduler = s.scheduler;
    out << "," << labelled.series_label();
  }
  if (with_ci)
    for (const Series& s : spec.series) {
      ExperimentConfig labelled = spec.base;
      labelled.allocator = s.allocator;
      labelled.scheduler = s.scheduler;
      out << ",ci:" << labelled.series_label();
    }
  out << "\n";

  // Every (load, series) cell is an independent replicated experiment whose
  // randomness is a pure function of opts.seed, so cells can run in any order
  // — and concurrently — without changing a single output byte. Compute them
  // all into an index-addressed grid, then print rows in figure order.
  const std::size_t n_series = spec.series.size();
  const std::size_t n_cells = spec.loads.size() * n_series;
  std::vector<stats::Interval> grid(n_cells);

  const auto run_cell = [&](std::size_t idx) {
    const double load = spec.loads[idx / n_series];
    const Series& s = spec.series[idx % n_series];
    ExperimentConfig cfg = spec.base;
    cfg.allocator = s.allocator;
    cfg.scheduler = s.scheduler;
    cfg.seed = opts.seed;
    if (cfg.workload.kind == WorkloadKind::kStochastic) {
      cfg.workload.stochastic.load = load;
      if (opts.jobs) {
        cfg.workload.job_count = opts.jobs;
        cfg.sys.target_completions = opts.jobs;
      }
      if (opts.fast) {
        cfg.workload.job_count = std::min<std::size_t>(cfg.workload.job_count, 200);
        cfg.sys.target_completions =
            std::min<std::size_t>(cfg.sys.target_completions, 200);
      }
    } else {
      cfg.workload.load = load;
      if (opts.jobs) {
        cfg.workload.replay.prefix = opts.jobs;
        cfg.sys.target_completions = opts.jobs;
      }
      if (opts.fast) {
        cfg.workload.replay.prefix = std::min<std::size_t>(
            cfg.workload.replay.prefix ? cfg.workload.replay.prefix : 10658, 200);
        cfg.sys.target_completions =
            std::min<std::size_t>(cfg.sys.target_completions, 200);
      }
    }
    // Cells parallelise, replications within a cell stay serial (null pool):
    // nesting both levels on one fixed pool could park every worker on a
    // future only another queued task can satisfy.
    const AggregateResult res = run_replicated(cfg, policy);
    const auto it = res.metrics.find(spec.metric);
    if (it == res.metrics.end())
      throw std::logic_error("run_figure: unknown metric " + spec.metric);
    grid[idx] = it->second;
  };

  const auto print_row = [&](std::size_t li) {
    out << spec.loads[li];
    for (std::size_t si = 0; si < n_series; ++si)
      out << "," << grid[li * n_series + si].mean;
    if (with_ci)
      for (std::size_t si = 0; si < n_series; ++si)
        out << "," << grid[li * n_series + si].half_width;
    out << "\n";
    out.flush();  // stream each row: long sweeps show progress / survive ^C
  };

  const std::size_t workers =
      std::min(util::resolve_threads(opts.threads), n_cells);
  if (workers > 1 && n_cells > 1) {
    util::ThreadPool pool(workers);
    // Submit every cell up front so workers are never idle at row
    // boundaries, but print each row as soon as *its* cells are done —
    // streaming output in figure order, still byte-identical to serial.
    std::vector<std::future<void>> done;
    done.reserve(n_cells);
    for (std::size_t idx = 0; idx < n_cells; ++idx)
      done.push_back(pool.submit([&run_cell, idx] { run_cell(idx); }));
    // On error, keep draining every future: workers must not outlive the
    // locals their queued tasks reference.
    std::exception_ptr first_error;
    for (std::size_t li = 0; li < spec.loads.size(); ++li) {
      for (std::size_t si = 0; si < n_series; ++si) {
        try {
          done[li * n_series + si].get();
        } catch (...) {
          if (!first_error) first_error = std::current_exception();
        }
      }
      if (!first_error) print_row(li);
    }
    if (first_error) std::rethrow_exception(first_error);
  } else {
    for (std::size_t li = 0; li < spec.loads.size(); ++li) {
      for (std::size_t si = 0; si < n_series; ++si) run_cell(li * n_series + si);
      print_row(li);
    }
  }
}

}  // namespace procsim::core
