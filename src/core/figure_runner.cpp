#include "core/figure_runner.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <future>
#include <iostream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "util/thread_pool.hpp"

namespace procsim::core {

std::vector<Series> paper_series() {
  std::vector<Series> out;
  const AllocatorSpec gabl{"GABL"};
  const AllocatorSpec paging0{"Paging(0)"};
  const AllocatorSpec mbs{"MBS"};
  for (const auto policy : {sched::Policy::kFcfs, sched::Policy::kSsd}) {
    out.push_back(Series{gabl, policy});
    out.push_back(Series{paging0, policy});
    out.push_back(Series{mbs, policy});
  }
  return out;
}

RunOptions parse_run_options(int argc, char** argv) {
  RunOptions opts;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--fast") == 0) {
      opts.fast = true;
    } else if (std::strncmp(arg, "--jobs=", 7) == 0) {
      opts.jobs = static_cast<std::size_t>(std::strtoull(arg + 7, nullptr, 10));
    } else if (std::strncmp(arg, "--reps=", 7) == 0) {
      opts.max_reps = std::strtoull(arg + 7, nullptr, 10);
      if (opts.min_reps > opts.max_reps) opts.min_reps = opts.max_reps;
    } else if (std::strncmp(arg, "--seed=", 7) == 0) {
      opts.seed = std::strtoull(arg + 7, nullptr, 10);
    } else if (std::strncmp(arg, "--threads=", 10) == 0) {
      opts.threads = static_cast<std::size_t>(std::strtoull(arg + 10, nullptr, 10));
    } else if (std::strcmp(arg, "--obs-probe") == 0) {
      opts.obs_probe = true;
    } else if (std::strncmp(arg, "--benchmark", 11) == 0) {
      // Tolerate google-benchmark style flags so `for b in bench/*` harness
      // loops can pass uniform arguments.
    } else {
      std::cerr << "warning: unknown option " << arg << "\n";
    }
  }
  if (opts.fast) {
    opts.min_reps = 1;
    opts.max_reps = 1;
  }
  // Zero replications would leave every metric empty and abort the figure
  // with a confusing "unknown metric" error; one replication is the floor.
  if (opts.max_reps == 0) opts.max_reps = 1;
  if (opts.min_reps == 0) opts.min_reps = 1;
  return opts;
}

void apply_effort(ExperimentConfig& cfg, const RunOptions& opts) {
  cfg.obs_probe = opts.obs_probe;
  if (!cfg.workload.source_spec.empty()) {
    // Registry-spec workloads: job_count is the stream-length override the
    // source registry consumes (spec-pinned keys still win).
    if (opts.jobs) {
      cfg.workload.job_count = opts.jobs;
      cfg.sys.target_completions = opts.jobs;
    }
    if (opts.fast) {
      cfg.workload.job_count =
          cfg.workload.job_count ? std::min<std::size_t>(cfg.workload.job_count, 200) : 200;
      cfg.sys.target_completions =
          std::min<std::size_t>(cfg.sys.target_completions, 200);
    }
    return;
  }
  if (cfg.workload.kind == WorkloadKind::kStochastic) {
    if (opts.jobs) {
      cfg.workload.job_count = opts.jobs;
      cfg.sys.target_completions = opts.jobs;
    }
    if (opts.fast) {
      cfg.workload.job_count = std::min<std::size_t>(cfg.workload.job_count, 200);
      cfg.sys.target_completions =
          std::min<std::size_t>(cfg.sys.target_completions, 200);
    }
  } else {
    if (opts.jobs) {
      cfg.workload.replay.prefix = opts.jobs;
      cfg.sys.target_completions = opts.jobs;
    }
    if (opts.fast) {
      cfg.workload.replay.prefix = std::min<std::size_t>(
          cfg.workload.replay.prefix ? cfg.workload.replay.prefix : 10658, 200);
      cfg.sys.target_completions =
          std::min<std::size_t>(cfg.sys.target_completions, 200);
    }
  }
}

void set_offered_load(ExperimentConfig& cfg, double load) {
  if (!cfg.workload.source_spec.empty())
    cfg.workload.load = load;  // registry override; ignored by saturation
  else if (cfg.workload.kind == WorkloadKind::kStochastic)
    cfg.workload.stochastic.load = load;
  else
    cfg.workload.load = load;
}

void run_grid(const GridSpec& spec, const RunOptions& opts, std::ostream& out,
              bool with_ci) {
  stats::ReplicationPolicy policy;
  policy.min_replications = opts.min_reps;
  policy.max_replications = opts.max_reps;

  out << spec.corner;
  for (const std::string& col : spec.cols) out << "," << col;
  if (with_ci)
    for (const std::string& col : spec.cols) out << ",ci:" << col;
  out << "\n";

  // Every cell is an independent replicated experiment whose randomness is a
  // pure function of opts.seed, so cells can run in any order — and
  // concurrently — without changing a single output byte. Compute them all
  // into an index-addressed grid, then print rows in order.
  const std::size_t n_cols = spec.cols.size();
  const std::size_t n_cells = spec.rows.size() * n_cols;
  std::vector<stats::Interval> grid(n_cells);

  const auto run_cell = [&](std::size_t idx) {
    ExperimentConfig cfg = spec.cell(idx / n_cols, idx % n_cols);
    cfg.seed = opts.seed;
    const AggregateResult res = run_replicated(cfg, policy);
    const auto it = res.metrics.find(spec.metric);
    if (it == res.metrics.end()) {
      std::string known;
      for (const std::string& m : known_metrics()) {
        if (!known.empty()) known += ", ";
        known += m;
      }
      throw std::logic_error("run_grid: unknown metric " + spec.metric +
                             " (known: " + known + ")");
    }
    grid[idx] = it->second;
  };

  const auto print_row = [&](std::size_t ri) {
    out << spec.rows[ri];
    for (std::size_t ci = 0; ci < n_cols; ++ci)
      out << "," << grid[ri * n_cols + ci].mean;
    if (with_ci)
      for (std::size_t ci = 0; ci < n_cols; ++ci)
        out << "," << grid[ri * n_cols + ci].half_width;
    out << "\n";
    out.flush();  // stream each row: long sweeps show progress / survive ^C
  };

  const std::size_t workers = std::min(util::resolve_threads(opts.threads), n_cells);
  if (workers > 1 && n_cells > 1) {
    // Cells parallelise, replications within a cell stay serial (null pool):
    // nesting both levels on one fixed pool could park every worker on a
    // future only another queued task can satisfy.
    util::ThreadPool pool(workers);
    // Submit every cell up front so workers are never idle at row
    // boundaries, but print each row as soon as *its* cells are done —
    // streaming output in row order, still byte-identical to serial.
    std::vector<std::future<void>> done;
    done.reserve(n_cells);
    for (std::size_t idx = 0; idx < n_cells; ++idx)
      done.push_back(pool.submit([&run_cell, idx] { run_cell(idx); }));
    // On error, keep draining every future: workers must not outlive the
    // locals their queued tasks reference.
    std::exception_ptr first_error;
    for (std::size_t ri = 0; ri < spec.rows.size(); ++ri) {
      for (std::size_t ci = 0; ci < n_cols; ++ci) {
        try {
          done[ri * n_cols + ci].get();
        } catch (...) {
          if (!first_error) first_error = std::current_exception();
        }
      }
      if (!first_error) print_row(ri);
    }
    if (first_error) std::rethrow_exception(first_error);
  } else {
    for (std::size_t ri = 0; ri < spec.rows.size(); ++ri) {
      for (std::size_t ci = 0; ci < n_cols; ++ci) run_cell(ri * n_cols + ci);
      print_row(ri);
    }
  }
}

void run_figure(const FigureSpec& spec, const RunOptions& opts, std::ostream& out,
                bool with_ci) {
  out << "# " << spec.id << ": " << spec.title << "\n";
  out << "# metric=" << spec.metric << " mesh=" << spec.base.sys.geom.width() << "x"
      << spec.base.sys.geom.length() << " st=" << spec.base.sys.net.st
      << " Plen=" << spec.base.sys.net.packet_len << "\n";

  GridSpec grid;
  grid.corner = "load";
  grid.metric = spec.metric;
  grid.rows.reserve(spec.loads.size());
  for (const double load : spec.loads) {
    std::ostringstream label;  // default stream formatting, same bytes as
    label << load;             // the historical direct `out << load`
    grid.rows.push_back(label.str());
  }
  grid.cols.reserve(spec.series.size());
  for (const Series& s : spec.series) {
    ExperimentConfig labelled = spec.base;
    labelled.allocator = s.allocator;
    labelled.scheduler = s.scheduler;
    grid.cols.push_back(labelled.series_label());
  }
  grid.cell = [&spec, &opts](std::size_t row, std::size_t col) {
    const Series& s = spec.series[col];
    ExperimentConfig cfg = spec.base;
    cfg.allocator = s.allocator;
    cfg.scheduler = s.scheduler;
    set_offered_load(cfg, spec.loads[row]);
    apply_effort(cfg, opts);
    return cfg;
  };
  run_grid(grid, opts, out, with_ci);
}

}  // namespace procsim::core
