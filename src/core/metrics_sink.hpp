#pragma once

#include <algorithm>
#include <cstdint>

namespace procsim::core {

/// One completed job, as the simulator observed it — the per-job record
/// stream behind the fairness/starvation analytics. Emitted by SystemSim at
/// completion time (after the warmup threshold, like every other metric), so
/// a sink sees exactly the jobs the run's aggregate statistics cover.
struct JobRecord {
  std::uint64_t id{0};
  double arrival{0};  ///< submission instant
  double start{0};    ///< allocation instant (processors granted)
  double finish{0};   ///< last delivery / completion instant
  double demand{0};   ///< the job's SSD key (known service demand estimate)

  // Requested shape.
  std::int32_t width{0};       ///< requested sub-mesh width a
  std::int32_t length{0};      ///< requested sub-mesh length b
  std::int32_t processors{0};  ///< computing processors requested

  // Allocated shape.
  std::int32_t allocated{0};     ///< processors actually held (>= processors
                                 ///< under internal fragmentation)
  std::int32_t alloc_blocks{0};  ///< disjoint rectangles of the placement
  std::int32_t alloc_width{0};   ///< single-block placements: its dimensions;
  std::int32_t alloc_length{0};  ///< 0x0 when the placement is fragmented

  [[nodiscard]] double wait() const noexcept { return start - arrival; }
  [[nodiscard]] double service() const noexcept { return finish - start; }
  [[nodiscard]] double turnaround() const noexcept { return finish - arrival; }

  /// Bounded slowdown (Feitelson's stretch with a runtime floor): turnaround
  /// over service, with service clamped to `tau` so near-instant jobs do not
  /// report astronomic ratios, and the whole value floored at 1.
  [[nodiscard]] double bounded_slowdown(double tau) const noexcept {
    const double denom = std::max(service(), tau);
    return denom > 0 ? std::max(turnaround() / denom, 1.0) : 1.0;
  }
};

/// Pluggable observer of the simulator's per-job record stream. Sinks are
/// observation-only by contract: SystemSim calls on_job() after a completion
/// has been fully accounted, and nothing a sink does can feed back into
/// scheduling, allocation or the RNG — attaching one never changes a single
/// simulated event (the fixed-seed figure CSVs are byte-identical either
/// way).
class MetricsSink {
 public:
  virtual ~MetricsSink() = default;
  virtual void on_job(const JobRecord& record) = 0;
};

}  // namespace procsim::core
