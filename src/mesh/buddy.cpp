#include "mesh/buddy.hpp"

#include <algorithm>
#include <stdexcept>

namespace procsim::mesh {
namespace {

[[nodiscard]] std::int32_t floor_log2(std::int32_t v) noexcept {
  std::int32_t r = 0;
  while ((1 << (r + 1)) <= v) ++r;
  return r;
}

}  // namespace

BuddyTiling::BuddyTiling(Geometry geom) : geom_(geom) {
  max_order_ = floor_log2(std::min(geom.width(), geom.length()));
  free_lists_.assign(static_cast<std::size_t>(max_order_) + 1, {});
  tile_region(0, 0, geom.width(), geom.length());
  for (const Block& b : blocks_) free_processors_ += b.rect.area();
}

void BuddyTiling::tile_region(std::int32_t x0, std::int32_t y0, std::int32_t w,
                              std::int32_t l) {
  if (w <= 0 || l <= 0) return;
  const std::int32_t order = floor_log2(std::min(w, l));
  const std::int32_t side = 1 << order;
  const std::int32_t cols = w / side;
  const std::int32_t rows = l / side;
  for (std::int32_t r = 0; r < rows; ++r) {
    for (std::int32_t c = 0; c < cols; ++c) {
      Block b;
      b.rect = SubMesh::from_base(Coord{x0 + c * side, y0 + r * side}, side, side);
      b.order = order;
      const BlockId id = static_cast<BlockId>(blocks_.size());
      blocks_.push_back(b);
      roots_.push_back(id);
      blocks_[static_cast<std::size_t>(id)].fseq = next_fseq_++;
      free_lists_[static_cast<std::size_t>(order)].insert(
          {blocks_[static_cast<std::size_t>(id)].fseq, id});
    }
  }
  // Remainder strips: right of the covered columns, then below the covered
  // rows (spanning the full original width so the corner is covered once).
  tile_region(x0 + cols * side, y0, w - cols * side, rows * side);
  tile_region(x0, y0 + rows * side, w, l - rows * side);
}

std::size_t BuddyTiling::checked(BlockId id) const {
  if (id < 0 || static_cast<std::size_t>(id) >= blocks_.size())
    throw std::out_of_range("BuddyTiling: bad block id");
  return static_cast<std::size_t>(id);
}

void BuddyTiling::add_free(BlockId id) {
  Block& b = blocks_[checked(id)];
  b.is_free = true;
  b.fseq = next_fseq_++;
  free_lists_[static_cast<std::size_t>(b.order)].insert({b.fseq, id});
}

void BuddyTiling::remove_free(BlockId id) {
  Block& b = blocks_[checked(id)];
  b.is_free = false;
  free_lists_[static_cast<std::size_t>(b.order)].erase({b.fseq, id});
}

void BuddyTiling::split(BlockId id) {
  Block& parent = blocks_[checked(id)];
  if (parent.order == 0) throw std::logic_error("BuddyTiling: splitting an order-0 block");
  if (parent.is_split) throw std::logic_error("BuddyTiling: splitting a split block");
  remove_free(id);
  const std::int32_t half = (1 << parent.order) / 2;
  const Coord base = parent.rect.base();
  const std::int32_t child_order = parent.order - 1;
  for (int q = 0; q < 4; ++q) {
    const Coord cb{base.x + (q % 2) * half, base.y + (q / 2) * half};
    Block child;
    child.rect = SubMesh::from_base(cb, half, half);
    child.order = child_order;
    child.parent = id;
    const BlockId cid = static_cast<BlockId>(blocks_.size());
    blocks_.push_back(child);
    // `parent` reference may dangle after push_back; re-index.
    blocks_[static_cast<std::size_t>(id)].children[static_cast<std::size_t>(q)] = cid;
    blocks_[static_cast<std::size_t>(cid)].fseq = next_fseq_++;
    free_lists_[static_cast<std::size_t>(child_order)].insert(
        {blocks_[static_cast<std::size_t>(cid)].fseq, cid});
  }
  blocks_[static_cast<std::size_t>(id)].is_split = true;
}

std::optional<BuddyTiling::BlockId> BuddyTiling::take_block(std::int32_t order) {
  if (order < 0) throw std::invalid_argument("BuddyTiling: negative order");
  if (order > max_order_) return std::nullopt;
  if (!free_lists_[static_cast<std::size_t>(order)].empty()) {
    const BlockId id = free_lists_[static_cast<std::size_t>(order)].begin()->second;
    remove_free(id);
    free_processors_ -= blocks_[static_cast<std::size_t>(id)].rect.area();
    return id;
  }
  // Split the smallest larger free block down to this order.
  for (std::int32_t larger = order + 1; larger <= max_order_; ++larger) {
    if (free_lists_[static_cast<std::size_t>(larger)].empty()) continue;
    BlockId id = free_lists_[static_cast<std::size_t>(larger)].begin()->second;
    while (blocks_[static_cast<std::size_t>(id)].order > order) {
      split(id);
      id = blocks_[static_cast<std::size_t>(id)].children[0];
    }
    remove_free(id);
    free_processors_ -= blocks_[static_cast<std::size_t>(id)].rect.area();
    return id;
  }
  return std::nullopt;
}

void BuddyTiling::release_block(BlockId id) {
  {
    const Block& b = blocks_[checked(id)];
    if (b.is_free || b.is_split || b.is_dead)
      throw std::logic_error("BuddyTiling: bad release");
    free_processors_ += b.rect.area();
  }
  add_free(id);
  // Merge complete free buddy sets upward.
  BlockId cur = id;
  while (true) {
    const BlockId parent = blocks_[static_cast<std::size_t>(cur)].parent;
    if (parent == kNone) break;
    const Block& p = blocks_[static_cast<std::size_t>(parent)];
    const bool all_free = std::all_of(p.children.begin(), p.children.end(), [this](BlockId c) {
      const Block& cb = blocks_[static_cast<std::size_t>(c)];
      return cb.is_free && !cb.is_split;
    });
    if (!all_free) break;
    for (const BlockId c : p.children) {
      remove_free(c);
      blocks_[static_cast<std::size_t>(c)].is_dead = true;
    }
    blocks_[static_cast<std::size_t>(parent)].is_split = false;
    blocks_[static_cast<std::size_t>(parent)].children = {kNone, kNone, kNone, kNone};
    add_free(parent);
    cur = parent;
  }
  // Note: child Block records of merged parents stay in blocks_ as inert
  // tombstones; they are unreachable until the parent splits again, which
  // recreates fresh children. Bounded growth is fine at simulation scale —
  // clear() compacts between replications.
}

std::size_t BuddyTiling::free_blocks_at(std::int32_t order) const {
  if (order < 0 || order > max_order_) return 0;
  return free_lists_[static_cast<std::size_t>(order)].size();
}

void BuddyTiling::clear() {
  blocks_.clear();
  roots_.clear();
  for (auto& fl : free_lists_) fl.clear();
  next_fseq_ = 0;
  free_processors_ = 0;
  tile_region(0, 0, geom_.width(), geom_.length());
  for (const Block& b : blocks_) free_processors_ += b.rect.area();
}

}  // namespace procsim::mesh
