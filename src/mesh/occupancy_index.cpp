#include "mesh/occupancy_index.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstdlib>
#include <stdexcept>
#include <string>

#include "mesh/free_submesh_scan.hpp"
#include "mesh/mesh_state.hpp"

namespace procsim::mesh {
namespace {

std::atomic<bool> g_cross_check{[] {
  const char* env = std::getenv("PROCSIM_INDEX_CROSS_CHECK");
  return env != nullptr && env[0] != '\0' &&
         !(env[0] == '0' && env[1] == '\0');
}()};

/// Mask with bits [b1, b2] of a word set (0 <= b1 <= b2 <= 63).
[[nodiscard]] constexpr std::uint64_t bit_range(int b1, int b2) noexcept {
  const std::uint64_t upto = b2 == 63 ? ~std::uint64_t{0}
                                      : ((std::uint64_t{1} << (b2 + 1)) - 1);
  return upto & ~((std::uint64_t{1} << b1) - 1);
}

/// In-place r &= (r >> t) over a multi-word little-endian bit span. Safe to
/// run ascending: position i only reads words at indices >= i, and reads its
/// own pre-modification value.
void and_shr(std::uint64_t* r, std::size_t words, std::int32_t t) {
  const std::size_t word_off = static_cast<std::size_t>(t) / 64;
  const int bit_off = t % 64;
  for (std::size_t i = 0; i < words; ++i) {
    const std::size_t j = i + word_off;
    std::uint64_t v = j < words ? r[j] >> bit_off : 0;
    if (bit_off != 0 && j + 1 < words) v |= r[j + 1] << (64 - bit_off);
    r[i] &= v;
  }
}

/// dst = src >> t over a multi-word little-endian bit span.
void shr_into(std::uint64_t* dst, const std::uint64_t* src, std::size_t words,
              std::int32_t t) {
  const std::size_t word_off = static_cast<std::size_t>(t) / 64;
  const int bit_off = t % 64;
  for (std::size_t i = 0; i < words; ++i) {
    const std::size_t j = i + word_off;
    std::uint64_t v = j < words ? src[j] >> bit_off : 0;
    if (bit_off != 0 && j + 1 < words) v |= src[j + 1] << (64 - bit_off);
    dst[i] = v;
  }
}

/// Column of the lowest set bit of a row span; caller guarantees one exists.
[[nodiscard]] std::int32_t lowest_bit(const std::uint64_t* r, std::size_t words) {
  for (std::size_t i = 0; i < words; ++i)
    if (r[i] != 0)
      return static_cast<std::int32_t>(i * 64 + static_cast<std::size_t>(
                                                    std::countr_zero(r[i])));
  return -1;  // unreachable by contract
}

[[noreturn]] void report_divergence(const char* query, std::int32_t a, std::int32_t b,
                                    const std::optional<SubMesh>& got,
                                    const std::optional<SubMesh>& want) {
  throw std::logic_error(
      std::string("OccupancyIndex cross-check: ") + query + "(" + std::to_string(a) +
      "," + std::to_string(b) + ") diverged from FreeSubmeshScan: index=" +
      (got ? got->to_string() : "nullopt") +
      " oracle=" + (want ? want->to_string() : "nullopt"));
}

}  // namespace

void OccupancyIndex::set_cross_check(bool enabled) noexcept {
  g_cross_check.store(enabled, std::memory_order_relaxed);
}

bool OccupancyIndex::cross_check_enabled() noexcept {
  return g_cross_check.load(std::memory_order_relaxed);
}

OccupancyIndex::OccupancyIndex(Geometry geom)
    : geom_(geom),
      words_(static_cast<std::size_t>(geom.width() + 63) / 64),
      tail_mask_(geom.width() % 64 == 0
                     ? ~std::uint64_t{0}
                     : (std::uint64_t{1} << (geom.width() % 64)) - 1),
      free_(static_cast<std::size_t>(geom.length()) * words_, 0),
      free_count_(geom.nodes()),
      row_gen_(static_cast<std::size_t>(geom.length()), 0) {
  clear();
}

void OccupancyIndex::clear() {
  for (std::int32_t y = 0; y < geom_.length(); ++y) {
    std::uint64_t* r = row(y);
    for (std::size_t i = 0; i < words_; ++i) r[i] = ~std::uint64_t{0};
    r[words_ - 1] = tail_mask_;
    dirty_row(y);
  }
  free_count_ = geom_.nodes();
  qstats_ = QueryStats{};
}

bool OccupancyIndex::is_busy(Coord c) const {
  if (!geom_.contains(c)) throw std::out_of_range("OccupancyIndex: node out of range");
  return (row(c.y)[static_cast<std::size_t>(c.x) / 64] &
          (std::uint64_t{1} << (c.x % 64))) == 0;
}

void OccupancyIndex::check_inside(const SubMesh& s) const {
  if (!s.valid() || !geom_.contains(s.base()) || !geom_.contains(s.end()))
    throw std::out_of_range("OccupancyIndex: sub-mesh outside mesh");
}

void OccupancyIndex::allocate(const SubMesh& s) {
  check_inside(s);
  const std::size_t w1 = static_cast<std::size_t>(s.x1) / 64;
  const std::size_t w2 = static_cast<std::size_t>(s.x2) / 64;
  for (std::int32_t y = s.y1; y <= s.y2; ++y) {
    std::uint64_t* r = row(y);
    for (std::size_t w = w1; w <= w2; ++w) {
      const std::uint64_t m = bit_range(w == w1 ? s.x1 % 64 : 0,
                                        w == w2 ? s.x2 % 64 : 63);
      if ((r[w] & m) != m)
        throw std::logic_error("OccupancyIndex: double allocation of node");
      r[w] &= ~m;
    }
    dirty_row(y);
  }
  free_count_ -= s.area();
}

void OccupancyIndex::release(const SubMesh& s) {
  check_inside(s);
  const std::size_t w1 = static_cast<std::size_t>(s.x1) / 64;
  const std::size_t w2 = static_cast<std::size_t>(s.x2) / 64;
  for (std::int32_t y = s.y1; y <= s.y2; ++y) {
    std::uint64_t* r = row(y);
    for (std::size_t w = w1; w <= w2; ++w) {
      const std::uint64_t m = bit_range(w == w1 ? s.x1 % 64 : 0,
                                        w == w2 ? s.x2 % 64 : 63);
      if ((r[w] & m) != 0)
        throw std::logic_error("OccupancyIndex: releasing a free node");
      r[w] |= m;
    }
    dirty_row(y);
  }
  free_count_ += s.area();
}

void OccupancyIndex::allocate(NodeId n) {
  const Coord c = geom_.coord(n);
  allocate(SubMesh{c.x, c.y, c.x, c.y});
}

void OccupancyIndex::release(NodeId n) {
  const Coord c = geom_.coord(n);
  release(SubMesh{c.x, c.y, c.x, c.y});
}

std::int32_t OccupancyIndex::free_in_row_range(std::int32_t y, std::int32_t c1,
                                               std::int32_t c2) const {
  const std::uint64_t* r = row(y);
  const std::size_t w1 = static_cast<std::size_t>(c1) / 64;
  const std::size_t w2 = static_cast<std::size_t>(c2) / 64;
  std::int32_t total = 0;
  for (std::size_t w = w1; w <= w2; ++w) {
    const std::uint64_t m = bit_range(w == w1 ? c1 % 64 : 0, w == w2 ? c2 % 64 : 63);
    total += std::popcount(r[w] & m);
  }
  return total;
}

std::int32_t OccupancyIndex::busy_in(const SubMesh& s) const {
  if (!s.valid() || !geom_.contains(s.base()) || !geom_.contains(s.end()))
    throw std::invalid_argument("OccupancyIndex::busy_in: sub-mesh outside mesh");
  std::int32_t free = 0;
  for (std::int32_t y = s.y1; y <= s.y2; ++y) free += free_in_row_range(y, s.x1, s.x2);
  return s.area() - free;
}

bool OccupancyIndex::is_free(const SubMesh& s) const {
  if (!s.valid() || !geom_.contains(s.base()) || !geom_.contains(s.end())) return false;
  for (std::int32_t y = s.y1; y <= s.y2; ++y)
    if (free_in_row_range(y, s.x1, s.x2) != s.width()) return false;
  return true;
}

void OccupancyIndex::compute_run_row(const std::uint64_t* bits, std::int32_t y,
                                     std::int32_t a) const {
  // Doubling shift-AND: afterwards, bit x of the row mask is set iff bits
  // x .. x+a-1 of the row are all free.
  const std::uint64_t* src = bits + static_cast<std::size_t>(y) * words_;
  std::uint64_t* r = runs_.data() + static_cast<std::size_t>(y) * words_;
  std::copy(src, src + words_, r);
  std::int32_t have = 1;
  while (have < a) {
    const std::int32_t t = std::min(have, a - have);
    and_shr(r, words_, t);
    have += t;
  }
}

void OccupancyIndex::ensure_run_row(const std::uint64_t* bits, std::int32_t y,
                                    std::int32_t a) const {
  const std::size_t yi = static_cast<std::size_t>(y);
  if (runs_row_epoch_[yi] == runs_epoch_) return;
  compute_run_row(bits, y, a);
  runs_row_epoch_[yi] = runs_epoch_;
}

bool OccupancyIndex::window_into_win(std::int32_t y, std::int32_t b) const {
  const std::uint64_t* r0 = runs_.data() + static_cast<std::size_t>(y) * words_;
  bool nonzero = false;
  for (std::size_t i = 0; i < words_; ++i) nonzero |= (win_[i] = r0[i]) != 0;
  for (std::int32_t k = 1; k < b && nonzero; ++k) {
    const std::uint64_t* rk = runs_.data() + static_cast<std::size_t>(y + k) * words_;
    nonzero = false;
    for (std::size_t i = 0; i < words_; ++i) nonzero |= (win_[i] &= rk[i]) != 0;
  }
  return nonzero;
}

void OccupancyIndex::ensure_summaries() const {
  const std::int32_t L = geom_.length();
  const std::size_t nblk = (static_cast<std::size_t>(L) + 63) / 64;
  if (row_max_run_.empty()) {
    row_max_run_.assign(static_cast<std::size_t>(L), 0);
    sum_gen_.assign(static_cast<std::size_t>(L), 0);  // 0 never matches (clear() stamps >= 1)
    rows_all_free_.assign(nblk, 0);
    rows_any_free_.assign(nblk, 0);
    blk_max_run_.assign(nblk, 0);
  }
  bool touched = false;
  for (std::int32_t y = 0; y < L; ++y) {
    const std::size_t yi = static_cast<std::size_t>(y);
    if (sum_gen_[yi] == row_gen_[yi]) continue;
    touched = true;
    const std::uint64_t* r = row(y);
    std::uint64_t any = 0;
    bool all = true;
    std::int32_t best = 0;
    std::int32_t run = 0;
    for (std::size_t i = 0; i < words_; ++i) {
      const std::uint64_t v = r[i];
      any |= v;
      all = all && v == (i + 1 == words_ ? tail_mask_ : ~std::uint64_t{0});
      // Longest free run, carried across word boundaries; the tail bits past
      // the width are zero, so runs clip at the mesh edge automatically.
      int pos = 0;
      while (pos < 64) {
        const std::uint64_t rest = v >> pos;
        if (rest & 1) {
          const int ones = std::countr_one(rest);
          run += ones;
          pos += ones;
          if (pos < 64) {
            best = std::max(best, run);
            run = 0;
          }
        } else {
          best = std::max(best, run);
          run = 0;
          pos += rest == 0 ? 64 - pos : std::countr_zero(rest);
        }
      }
    }
    row_max_run_[yi] = std::max(best, run);
    const std::uint64_t bit = std::uint64_t{1} << (y % 64);
    if (all)
      rows_all_free_[yi / 64] |= bit;
    else
      rows_all_free_[yi / 64] &= ~bit;
    if (any != 0)
      rows_any_free_[yi / 64] |= bit;
    else
      rows_any_free_[yi / 64] &= ~bit;
    sum_gen_[yi] = row_gen_[yi];
  }
  if (touched) {
    // Level 2: per-64-row-block max runs. O(L) — cheaper than tracking which
    // blocks went stale, and already dominated by the stamp scan above.
    for (std::size_t blk = 0; blk < nblk; ++blk) {
      std::int32_t m = 0;
      const std::size_t y_end = std::min(static_cast<std::size_t>(L), blk * 64 + 64);
      for (std::size_t y = blk * 64; y < y_end; ++y) m = std::max(m, row_max_run_[y]);
      blk_max_run_[blk] = m;
    }
  }
}

std::optional<SubMesh> OccupancyIndex::first_fit_impl(const std::uint64_t* bits,
                                                      std::int32_t a,
                                                      std::int32_t b) const {
  if (a <= 0 || b <= 0) throw std::invalid_argument("first_fit: non-positive request");
  if (a > geom_.width() || b > geom_.length()) return std::nullopt;
  const std::int32_t L = geom_.length();
  runs_.resize(free_.size());
  runs_row_epoch_.resize(static_cast<std::size_t>(L), 0);
  win_.resize(words_);
  ++runs_epoch_;

  if (bits != free_.data()) {
    // Hypothetical occupancy (first_fit_assuming_free): the summaries
    // describe the real bitmap, so fall back to the plain lazy descent. Run
    // masks are computed as the scan reaches their rows — a hit in the first
    // rows never touches the rest of the mesh.
    std::int32_t ready = 0;
    for (std::int32_t y = 0; y + b <= L; ++y) {
      while (ready < y + b) compute_run_row(bits, ready++, a);
      if (window_into_win(y, b))
        return SubMesh::from_base(Coord{lowest_bit(win_.data(), words_), y}, a, b);
    }
    return std::nullopt;
  }

  // Real occupancy: walk rows through the summaries. `viable` counts the
  // consecutive rows (ending at y) holding a width-a run — only windows of b
  // such rows can host a hit, everything else is skipped without touching a
  // run mask; fully-busy 64-row blocks are skipped in one compare, and a
  // window of b all-free rows is answered at column 0 directly.
  ensure_summaries();
  std::int32_t viable = 0;
  std::int32_t allfree = 0;
  for (std::int32_t y = 0; y < L; ++y) {
    if (viable == 0 && (y & 63) == 0) {
      while (y + 64 <= L && blk_max_run_[static_cast<std::size_t>(y) >> 6] < a) y += 64;
      if (y >= L) break;
    }
    if (row_max_run_[static_cast<std::size_t>(y)] < a) {
      viable = 0;
      allfree = 0;
      continue;
    }
    ++viable;
    const bool af = (rows_all_free_[static_cast<std::size_t>(y) / 64] >>
                     (y % 64)) & 1u;
    allfree = af ? allfree + 1 : 0;
    if (viable < b) continue;
    const std::int32_t ys = y - b + 1;
    if (allfree >= b) return SubMesh::from_base(Coord{0, ys}, a, b);
    for (std::int32_t r = ys; r <= y; ++r) ensure_run_row(bits, r, a);
    if (window_into_win(ys, b))
      return SubMesh::from_base(Coord{lowest_bit(win_.data(), words_), ys}, a, b);
  }
  return std::nullopt;
}

std::optional<SubMesh> OccupancyIndex::best_fit_impl(std::int32_t a,
                                                     std::int32_t b) const {
  if (a <= 0 || b <= 0) throw std::invalid_argument("best_fit: non-positive request");
  if (a > geom_.width() || b > geom_.length()) return std::nullopt;
  const std::int32_t W = geom_.width();
  const std::int32_t L = geom_.length();
  runs_.resize(free_.size());
  runs_row_epoch_.resize(static_cast<std::size_t>(L), 0);
  win_.resize(words_);
  ++runs_epoch_;
  ensure_summaries();

  // Scoring: a candidate's free border is the free-node count of its clipped
  // ring, i.e. free(ring ∪ s) - area(s). bf_win_[x] holds the prefix sum of
  // free nodes in columns [0, x) over the current window of rows [y-1, y+b]
  // (out-of-mesh rows contribute nothing), making each candidate's score an
  // O(1) window difference. The window is the sum of per-row prefix blocks
  // from the generation-stamped cache — rows untouched since the last query
  // (the common churn case) cost two vectorizable adds to enter/leave the
  // window, never a bitmap rescan.
  const std::size_t stride = static_cast<std::size_t>(W) + 1;
  bf_win_.assign(stride, 0);
  std::int32_t cached_y = std::numeric_limits<std::int32_t>::min();
  const auto apply_row = [&](std::int32_t r, std::int32_t sign) {
    if (r < 0 || r >= L) return;
    const std::int32_t* p = ensure_rowpref(r);
    if (sign > 0)
      for (std::size_t x = 0; x < stride; ++x) bf_win_[x] += p[x];
    else
      for (std::size_t x = 0; x < stride; ++x) bf_win_[x] -= p[x];
  };
  const auto set_window = [&](std::int32_t y) {
    if (cached_y != std::numeric_limits<std::int32_t>::min() && y > cached_y &&
        y - cached_y <= b) {
      while (cached_y < y) {
        apply_row(cached_y - 1, -1);
        ++cached_y;
        apply_row(cached_y + b, +1);
      }
    } else if (cached_y != y) {
      std::fill(bf_win_.begin(), bf_win_.end(), 0);
      for (std::int32_t r = y - 1; r <= y + b; ++r) apply_row(r, +1);
      cached_y = y;
    }
  };

  // Candidate windows are pre-filtered through the summaries exactly like
  // first_fit: a window containing a row without a width-a run has an empty
  // mask, so skipping it drops no candidate and saves both the AND and the
  // scoring. best_fit must still visit every viable window — the best score
  // can sit anywhere — so there is no all-free shortcut here.
  std::optional<SubMesh> best;
  std::int32_t best_score = std::numeric_limits<std::int32_t>::max();
  std::int32_t viable = 0;
  for (std::int32_t y = 0; y < L; ++y) {
    if (viable == 0 && (y & 63) == 0) {
      while (y + 64 <= L && blk_max_run_[static_cast<std::size_t>(y) >> 6] < a) y += 64;
      if (y >= L) break;
    }
    if (row_max_run_[static_cast<std::size_t>(y)] < a) {
      viable = 0;
      continue;
    }
    ++viable;
    if (viable < b) continue;
    const std::int32_t ys = y - b + 1;
    for (std::int32_t r = ys; r <= y; ++r) ensure_run_row(free_.data(), r, a);
    if (!window_into_win(ys, b)) continue;
    set_window(ys);
    for (std::size_t i = 0; i < words_; ++i) {
      std::uint64_t v = win_[i];
      while (v != 0) {
        const std::int32_t x = static_cast<std::int32_t>(
            i * 64 + static_cast<std::size_t>(std::countr_zero(v)));
        v &= v - 1;
        const std::int32_t c1 = std::max(x - 1, 0);
        const std::int32_t c2 = std::min(x + a, W - 1);
        const std::int32_t score = bf_win_[static_cast<std::size_t>(c2) + 1] -
                                   bf_win_[static_cast<std::size_t>(c1)] - a * b;
        if (score < best_score) {
          best_score = score;
          best = SubMesh::from_base(Coord{x, ys}, a, b);
        }
      }
    }
  }
  return best;
}

const std::int32_t* OccupancyIndex::ensure_rowpref(std::int32_t y) const {
  const std::size_t stride = static_cast<std::size_t>(geom_.width()) + 1;
  if (bf_rowpref_.empty()) {
    bf_rowpref_.assign(static_cast<std::size_t>(geom_.length()) * stride, 0);
    bf_rowpref_gen_.assign(static_cast<std::size_t>(geom_.length()), 0);
    // Stamp 0 is never valid: clear() dirties every row, so row_gen_ >= 1.
  }
  const std::size_t yi = static_cast<std::size_t>(y);
  std::int32_t* p = bf_rowpref_.data() + yi * stride;
  if (bf_rowpref_gen_[yi] != row_gen_[yi]) {
    const std::uint64_t* r = row(y);
    std::int32_t acc = 0;
    p[0] = 0;
    for (std::int32_t x = 0; x < geom_.width(); ++x) {
      acc += static_cast<std::int32_t>(
          (r[static_cast<std::size_t>(x) / 64] >> (x % 64)) & 1u);
      p[x + 1] = acc;
    }
    bf_rowpref_gen_[yi] = row_gen_[yi];
  }
  return p;
}

void OccupancyIndex::ensure_frontier() const {
  if (lf_frontier_gen_ == gen_counter_ && !lf_frontier_.empty()) return;
  ++qstats_.frontier_passes;
  const std::int32_t W = geom_.width();
  const std::int32_t L = geom_.length();
  lf_frontier_.assign(static_cast<std::size_t>(W) + 2, 0);
  lf_ht_.assign(static_cast<std::size_t>(W), 0);
  lf_stack_x_.resize(static_cast<std::size_t>(W) + 1);
  lf_stack_h_.resize(static_cast<std::size_t>(W) + 1);
  std::int32_t* H = lf_frontier_.data();
  std::int32_t* ht = lf_ht_.data();
  std::int32_t* sx = lf_stack_x_.data();
  std::int32_t* sh = lf_stack_h_.data();

  // One maximal-rectangle sweep: per-column heights of consecutive free rows
  // ending at the current row, and per row a monotonic stack enumerating
  // every maximal free rectangle whose bottom edge is this row. Each
  // rectangle (height h, span s) raises the frontier at its span; the
  // suffix max afterwards turns that into H[w] = tallest free w-wide
  // rectangle for every w. Heights reach the stack already clipped by the
  // tail mask (bits past the width read busy), so spans clip at the edge.
  bool ht_zero = true;
  for (std::int32_t y = 0; y < L; ++y) {
    const std::uint64_t* r = row(y);
    std::uint64_t any = 0;
    for (std::size_t i = 0; i < words_; ++i) any |= r[i];
    if (any == 0) {
      // Fully busy row: every height resets; rectangles ending above were
      // already flushed at their own bottom rows.
      if (!ht_zero) {
        std::fill(ht, ht + W, 0);
        ht_zero = true;
      }
      continue;
    }
    ht_zero = false;
    std::int32_t sp = 0;
    std::int32_t x = 0;
    for (std::size_t i = 0; i < words_; ++i) {
      std::uint64_t bits = r[i];
      const std::int32_t lim = std::min<std::int32_t>(64, W - x);
      for (std::int32_t j = 0; j < lim; ++j, ++x, bits >>= 1) {
        const std::int32_t h = (bits & 1u) ? ht[x] + 1 : 0;
        ht[x] = h;
        std::int32_t start = x;
        while (sp > 0 && sh[sp - 1] >= h) {
          --sp;
          if (sh[sp] > H[x - sx[sp]]) H[x - sx[sp]] = sh[sp];
          start = sx[sp];
        }
        if (h > 0 && (sp == 0 || sh[sp - 1] < h)) {
          sx[sp] = start;
          sh[sp] = h;
          ++sp;
        }
      }
    }
    while (sp > 0) {
      --sp;
      if (sh[sp] > H[W - sx[sp]]) H[W - sx[sp]] = sh[sp];
    }
  }
  for (std::int32_t w = W - 1; w >= 1; --w) H[w] = std::max(H[w], H[w + 1]);
  lf_frontier_gen_ = gen_counter_;
}

const std::uint64_t* OccupancyIndex::ensure_lf_level(std::int32_t w) const {
  const std::size_t li = static_cast<std::size_t>(w) - 1;
  if (lf_levels_.size() <= li) {
    lf_levels_.resize(li + 1);
    lf_level_gen_.resize(li + 1);
    lf_level_nz_.resize(li + 1);
  }
  std::vector<std::uint64_t>& block = lf_levels_[li];
  std::vector<std::uint64_t>& gens = lf_level_gen_[li];
  std::vector<std::uint8_t>& nz = lf_level_nz_[li];
  if (block.empty()) {
    block.assign(free_.size(), 0);
    gens.assign(static_cast<std::size_t>(geom_.length()), 0);  // 0 = never valid
    nz.assign(static_cast<std::size_t>(geom_.length()), 0);
  }
  const std::uint64_t* prev = li == 0 ? nullptr : lf_levels_[li - 1].data();
  for (std::int32_t y = 0; y < geom_.length(); ++y) {
    const std::size_t yi = static_cast<std::size_t>(y);
    if (gens[yi] == row_gen_[yi]) continue;
    std::uint64_t* dst = block.data() + yi * words_;
    const std::uint64_t* src = row(y);
    std::uint64_t any = 0;
    if (w == 1) {
      for (std::size_t i = 0; i < words_; ++i) any |= (dst[i] = src[i]);
    } else {
      // R_w[y] = R_{w-1}[y] & (row >> (w-1)): a run of w starts at x iff a
      // run of w-1 does and bit x+w-1 is also free.
      shr_into(dst, src, words_, w - 1);
      const std::uint64_t* p = prev + yi * words_;
      for (std::size_t i = 0; i < words_; ++i) any |= (dst[i] &= p[i]);
    }
    nz[yi] = any != 0;
    gens[yi] = row_gen_[yi];
  }
  return block.data();
}

std::optional<SubMesh> OccupancyIndex::largest_free_descent(
    std::int32_t max_w, std::int32_t max_l, std::int64_t max_area) const {
  const std::int32_t L = geom_.length();
  lf_c_.resize(free_.size());

  // The search ascends widths; each level's R_w masks (width-w run starts
  // per row) come from the generation-stamped cache, so a carving loop's
  // repeated queries recompute only the rows its own allocations dirtied.
  // lf_c_ holds the height-l window AND within each w.
  std::optional<SubMesh> best;
  std::int64_t best_area = 0;
  for (std::int32_t w = 1; w <= max_w; ++w) {
    const std::uint64_t* level = ensure_lf_level(w);

    // Seed the height-1 windows and the active-row list from the level's
    // cached nonzero flags: only rows that actually hold a width-w run are
    // copied or ever touched again. Rows whose window has gone empty can
    // never come back as l grows, so each taller step touches only the
    // surviving rows — on a busy mesh windows die fast and the l ascent
    // costs next to nothing. The list is kept in ascending y, so its front
    // is the legacy scan's "first base" row.
    lf_active_.clear();
    const std::vector<std::uint8_t>& nz = lf_level_nz_[static_cast<std::size_t>(w) - 1];
    for (std::int32_t y = 0; y < L; ++y) {
      if (!nz[static_cast<std::size_t>(y)]) continue;
      const std::uint64_t* src = level + static_cast<std::size_t>(y) * words_;
      std::uint64_t* dst = lf_c_.data() + static_cast<std::size_t>(y) * words_;
      std::copy(src, src + words_, dst);
      lf_active_.push_back(y);
    }
    if (lf_active_.empty()) break;  // no width-w free run ⇒ none wider either

    for (std::int32_t l = 1; l <= max_l; ++l) {
      if (l > 1) {
        std::size_t out = 0;
        for (const std::int32_t y : lf_active_) {
          if (y + l > L) continue;  // window would stick out the bottom
          std::uint64_t* c = lf_c_.data() + static_cast<std::size_t>(y) * words_;
          const std::uint64_t* r = level + static_cast<std::size_t>(y + l - 1) * words_;
          bool nonzero = false;
          for (std::size_t i = 0; i < words_; ++i) nonzero |= (c[i] &= r[i]) != 0;
          if (nonzero) lf_active_[out++] = y;
        }
        lf_active_.resize(out);
      }
      if (lf_active_.empty()) break;  // taller windows only lose candidates

      const std::int64_t area = static_cast<std::int64_t>(w) * l;
      if (area > max_area) break;     // area grows with l for fixed w
      if (area <= best_area) continue;  // same skip rule as the legacy scan
      const std::int32_t y = lf_active_.front();
      const std::uint64_t* c = lf_c_.data() + static_cast<std::size_t>(y) * words_;
      best = SubMesh::from_base(Coord{lowest_bit(c, words_), y}, w, l);
      best_area = area;
    }
  }
  return best;
}

std::optional<SubMesh> OccupancyIndex::largest_free_impl(std::int32_t max_w,
                                                         std::int32_t max_l,
                                                         std::int64_t max_area) const {
  max_w = std::min(max_w, geom_.width());
  max_l = std::min(max_l, geom_.length());
  if (max_w <= 0 || max_l <= 0 || max_area <= 0) return std::nullopt;

  // Dispatch (see the header): a fresh frontier answers in O(max_w); a
  // stale one is recomputed unless the query is narrow and the occupancy
  // changed since the previous query — the carving shape — in which case
  // the stamped-level descent only touches dirtied rows. "Narrow" is capped
  // both relatively (max_w ≤ W/4) and absolutely (max_w ≤ 48): the descent
  // builds one run-mask level per candidate width, so past a few dozen
  // widths the single maximal-rectangle pass is cheaper even when it scans
  // the whole bitmap (measured crossover on the 512×512 sweep profile).
  if (lf_frontier_gen_ != gen_counter_) {
    const bool burst = lf_last_query_gen_ == gen_counter_;
    lf_last_query_gen_ = gen_counter_;
    if (!burst && max_w * 4 <= geom_.width() && max_w <= 48) {
      ++qstats_.descent_queries;
      return largest_free_descent(max_w, max_l, max_area);
    }
    ensure_frontier();
  } else {
    ++qstats_.frontier_hits;
  }
  return largest_free_from_frontier(max_w, max_l, max_area);
}

std::optional<SubMesh> OccupancyIndex::largest_free_from_frontier(
    std::int32_t max_w, std::int32_t max_l, std::int64_t max_area) const {
  // Winner selection over the feasibility frontier, reproducing the oracle's
  // (width asc, length asc) scan: for width w the best feasible capped
  // length is l_w = min(H[w], max_l, max_area/w); the oracle's answer is the
  // maximum of w·l_w with the *first* (smallest) w attaining it, because in
  // its scan a later pair only replaces the best on a strictly larger area.
  std::int64_t best_area = 0;
  std::int32_t best_w = 0;
  std::int32_t best_l = 0;
  const std::int32_t* H = lf_frontier_.data();
  for (std::int32_t w = 1; w <= max_w; ++w) {
    std::int32_t l = H[w];
    if (l == 0) break;  // the frontier is non-increasing: no wider rect exists
    l = std::min(l, max_l);
    if (static_cast<std::int64_t>(w) * l > max_area)
      l = static_cast<std::int32_t>(max_area / w);
    if (l < 1) continue;
    const std::int64_t area = static_cast<std::int64_t>(w) * l;
    if (area > best_area) {
      best_area = area;
      best_w = w;
      best_l = l;
    }
  }
  if (best_area == 0) return std::nullopt;
  // The base is the first (y, x) hosting the winning width×length — exactly
  // the oracle's inner row-major scan, i.e. a first_fit of that shape (which
  // must succeed: the frontier only reports feasible shapes).
  return first_fit_impl(free_.data(), best_w, best_l);
}

std::optional<SubMesh> OccupancyIndex::first_fit(std::int32_t a, std::int32_t b) const {
  ++qstats_.first_fit_queries;
  const auto got = first_fit_impl(free_.data(), a, b);
  if (cross_check_enabled()) {
    const FreeSubmeshScan oracle(to_mesh_state());
    const auto want = oracle.first_fit(a, b);
    if (got != want) report_divergence("first_fit", a, b, got, want);
  }
  return got;
}

std::optional<SubMesh> OccupancyIndex::first_fit_assuming_free(
    std::int32_t a, std::int32_t b, const std::vector<SubMesh>& extra_free) const {
  ++qstats_.first_fit_queries;
  assume_ = free_;
  for (const SubMesh& s : extra_free) {
    check_inside(s);
    const std::size_t w1 = static_cast<std::size_t>(s.x1) / 64;
    const std::size_t w2 = static_cast<std::size_t>(s.x2) / 64;
    for (std::int32_t y = s.y1; y <= s.y2; ++y) {
      std::uint64_t* r = assume_.data() + static_cast<std::size_t>(y) * words_;
      for (std::size_t w = w1; w <= w2; ++w)
        r[w] |= bit_range(w == w1 ? s.x1 % 64 : 0, w == w2 ? s.x2 % 64 : 63);
    }
  }
  const auto got = first_fit_impl(assume_.data(), a, b);
  if (cross_check_enabled()) {
    // Oracle on the same hypothetical occupancy, rebuilt per node.
    MeshState state(geom_);
    for (std::int32_t y = 0; y < geom_.length(); ++y)
      for (std::int32_t x = 0; x < geom_.width(); ++x)
        if ((assume_[static_cast<std::size_t>(y) * words_ +
                     static_cast<std::size_t>(x) / 64] &
             (std::uint64_t{1} << (x % 64))) == 0)
          state.allocate(geom_.id(Coord{x, y}));
    const FreeSubmeshScan oracle(state);
    const auto want = oracle.first_fit(a, b);
    if (got != want) report_divergence("first_fit_assuming_free", a, b, got, want);
  }
  return got;
}

std::optional<SubMesh> OccupancyIndex::first_fit_rotatable_assuming_free(
    std::int32_t a, std::int32_t b, const std::vector<SubMesh>& extra_free) const {
  if (auto s = first_fit_assuming_free(a, b, extra_free)) return s;
  if (a != b) return first_fit_assuming_free(b, a, extra_free);
  return std::nullopt;
}

std::optional<SubMesh> OccupancyIndex::first_fit_rotatable(std::int32_t a,
                                                           std::int32_t b) const {
  if (auto s = first_fit(a, b)) return s;
  if (a != b) return first_fit(b, a);
  return std::nullopt;
}

std::optional<SubMesh> OccupancyIndex::best_fit(std::int32_t a, std::int32_t b) const {
  ++qstats_.best_fit_queries;
  const auto got = best_fit_impl(a, b);
  if (cross_check_enabled()) {
    const FreeSubmeshScan oracle(to_mesh_state());
    const auto want = oracle.best_fit(a, b);
    if (got != want) report_divergence("best_fit", a, b, got, want);
  }
  return got;
}

std::optional<SubMesh> OccupancyIndex::largest_free(std::int32_t max_w,
                                                    std::int32_t max_l,
                                                    std::int64_t max_area) const {
  ++qstats_.largest_free_queries;
  const auto got = largest_free_impl(max_w, max_l, max_area);
  if (cross_check_enabled()) {
    const FreeSubmeshScan oracle(to_mesh_state());
    const auto want = oracle.largest_free(max_w, max_l, max_area);
    if (got != want) report_divergence("largest_free", max_w, max_l, got, want);
  }
  return got;
}

std::int32_t OccupancyIndex::max_free_run() const {
  ensure_summaries();
  std::int32_t best = 0;
  for (const std::int32_t r : row_max_run_) best = std::max(best, r);
  return best;
}

MeshState OccupancyIndex::to_mesh_state() const {
  MeshState state(geom_);
  for (std::int32_t y = 0; y < geom_.length(); ++y)
    for (std::int32_t x = 0; x < geom_.width(); ++x)
      if (is_busy(Coord{x, y})) state.allocate(geom_.id(Coord{x, y}));
  return state;
}

}  // namespace procsim::mesh
