#include "mesh/occupancy_index.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <stdexcept>
#include <string>

#include "mesh/free_submesh_scan.hpp"
#include "mesh/mesh_state.hpp"

namespace procsim::mesh {
namespace {

std::atomic<bool> g_cross_check{false};

/// Mask with bits [b1, b2] of a word set (0 <= b1 <= b2 <= 63).
[[nodiscard]] constexpr std::uint64_t bit_range(int b1, int b2) noexcept {
  const std::uint64_t upto = b2 == 63 ? ~std::uint64_t{0}
                                      : ((std::uint64_t{1} << (b2 + 1)) - 1);
  return upto & ~((std::uint64_t{1} << b1) - 1);
}

/// In-place r &= (r >> t) over a multi-word little-endian bit span. Safe to
/// run ascending: position i only reads words at indices >= i, and reads its
/// own pre-modification value.
void and_shr(std::uint64_t* r, std::size_t words, std::int32_t t) {
  const std::size_t word_off = static_cast<std::size_t>(t) / 64;
  const int bit_off = t % 64;
  for (std::size_t i = 0; i < words; ++i) {
    const std::size_t j = i + word_off;
    std::uint64_t v = j < words ? r[j] >> bit_off : 0;
    if (bit_off != 0 && j + 1 < words) v |= r[j + 1] << (64 - bit_off);
    r[i] &= v;
  }
}

/// dst = src >> t over a multi-word little-endian bit span (dst != src ok,
/// dst == src ok: position i only reads indices >= i).
void shr_into(std::uint64_t* dst, const std::uint64_t* src, std::size_t words,
              std::int32_t t) {
  const std::size_t word_off = static_cast<std::size_t>(t) / 64;
  const int bit_off = t % 64;
  for (std::size_t i = 0; i < words; ++i) {
    const std::size_t j = i + word_off;
    std::uint64_t v = j < words ? src[j] >> bit_off : 0;
    if (bit_off != 0 && j + 1 < words) v |= src[j + 1] << (64 - bit_off);
    dst[i] = v;
  }
}

/// Column of the lowest set bit of a row span; caller guarantees one exists.
[[nodiscard]] std::int32_t lowest_bit(const std::uint64_t* r, std::size_t words) {
  for (std::size_t i = 0; i < words; ++i)
    if (r[i] != 0)
      return static_cast<std::int32_t>(i * 64 + static_cast<std::size_t>(
                                                    std::countr_zero(r[i])));
  return -1;  // unreachable by contract
}

[[noreturn]] void report_divergence(const char* query, std::int32_t a, std::int32_t b,
                                    const std::optional<SubMesh>& got,
                                    const std::optional<SubMesh>& want) {
  throw std::logic_error(
      std::string("OccupancyIndex cross-check: ") + query + "(" + std::to_string(a) +
      "," + std::to_string(b) + ") diverged from FreeSubmeshScan: index=" +
      (got ? got->to_string() : "nullopt") +
      " oracle=" + (want ? want->to_string() : "nullopt"));
}

}  // namespace

void OccupancyIndex::set_cross_check(bool enabled) noexcept {
  g_cross_check.store(enabled, std::memory_order_relaxed);
}

bool OccupancyIndex::cross_check_enabled() noexcept {
  return g_cross_check.load(std::memory_order_relaxed);
}

OccupancyIndex::OccupancyIndex(Geometry geom)
    : geom_(geom),
      words_(static_cast<std::size_t>(geom.width() + 63) / 64),
      tail_mask_(geom.width() % 64 == 0
                     ? ~std::uint64_t{0}
                     : (std::uint64_t{1} << (geom.width() % 64)) - 1),
      free_(static_cast<std::size_t>(geom.length()) * words_, 0),
      free_count_(geom.nodes()),
      row_gen_(static_cast<std::size_t>(geom.length()), 0) {
  clear();
}

void OccupancyIndex::clear() {
  for (std::int32_t y = 0; y < geom_.length(); ++y) {
    std::uint64_t* r = row(y);
    for (std::size_t i = 0; i < words_; ++i) r[i] = ~std::uint64_t{0};
    r[words_ - 1] = tail_mask_;
    dirty_row(y);
  }
  free_count_ = geom_.nodes();
}

bool OccupancyIndex::is_busy(Coord c) const {
  if (!geom_.contains(c)) throw std::out_of_range("OccupancyIndex: node out of range");
  return (row(c.y)[static_cast<std::size_t>(c.x) / 64] &
          (std::uint64_t{1} << (c.x % 64))) == 0;
}

void OccupancyIndex::check_inside(const SubMesh& s) const {
  if (!s.valid() || !geom_.contains(s.base()) || !geom_.contains(s.end()))
    throw std::out_of_range("OccupancyIndex: sub-mesh outside mesh");
}

void OccupancyIndex::allocate(const SubMesh& s) {
  check_inside(s);
  const std::size_t w1 = static_cast<std::size_t>(s.x1) / 64;
  const std::size_t w2 = static_cast<std::size_t>(s.x2) / 64;
  for (std::int32_t y = s.y1; y <= s.y2; ++y) {
    std::uint64_t* r = row(y);
    for (std::size_t w = w1; w <= w2; ++w) {
      const std::uint64_t m = bit_range(w == w1 ? s.x1 % 64 : 0,
                                        w == w2 ? s.x2 % 64 : 63);
      if ((r[w] & m) != m)
        throw std::logic_error("OccupancyIndex: double allocation of node");
      r[w] &= ~m;
    }
    dirty_row(y);
  }
  free_count_ -= s.area();
}

void OccupancyIndex::release(const SubMesh& s) {
  check_inside(s);
  const std::size_t w1 = static_cast<std::size_t>(s.x1) / 64;
  const std::size_t w2 = static_cast<std::size_t>(s.x2) / 64;
  for (std::int32_t y = s.y1; y <= s.y2; ++y) {
    std::uint64_t* r = row(y);
    for (std::size_t w = w1; w <= w2; ++w) {
      const std::uint64_t m = bit_range(w == w1 ? s.x1 % 64 : 0,
                                        w == w2 ? s.x2 % 64 : 63);
      if ((r[w] & m) != 0)
        throw std::logic_error("OccupancyIndex: releasing a free node");
      r[w] |= m;
    }
    dirty_row(y);
  }
  free_count_ += s.area();
}

void OccupancyIndex::allocate(NodeId n) {
  const Coord c = geom_.coord(n);
  allocate(SubMesh{c.x, c.y, c.x, c.y});
}

void OccupancyIndex::release(NodeId n) {
  const Coord c = geom_.coord(n);
  release(SubMesh{c.x, c.y, c.x, c.y});
}

std::int32_t OccupancyIndex::free_in_row_range(std::int32_t y, std::int32_t c1,
                                               std::int32_t c2) const {
  const std::uint64_t* r = row(y);
  const std::size_t w1 = static_cast<std::size_t>(c1) / 64;
  const std::size_t w2 = static_cast<std::size_t>(c2) / 64;
  std::int32_t total = 0;
  for (std::size_t w = w1; w <= w2; ++w) {
    const std::uint64_t m = bit_range(w == w1 ? c1 % 64 : 0, w == w2 ? c2 % 64 : 63);
    total += std::popcount(r[w] & m);
  }
  return total;
}

std::int32_t OccupancyIndex::busy_in(const SubMesh& s) const {
  if (!s.valid() || !geom_.contains(s.base()) || !geom_.contains(s.end()))
    throw std::invalid_argument("OccupancyIndex::busy_in: sub-mesh outside mesh");
  std::int32_t free = 0;
  for (std::int32_t y = s.y1; y <= s.y2; ++y) free += free_in_row_range(y, s.x1, s.x2);
  return s.area() - free;
}

bool OccupancyIndex::is_free(const SubMesh& s) const {
  if (!s.valid() || !geom_.contains(s.base()) || !geom_.contains(s.end())) return false;
  for (std::int32_t y = s.y1; y <= s.y2; ++y)
    if (free_in_row_range(y, s.x1, s.x2) != s.width()) return false;
  return true;
}

void OccupancyIndex::compute_run_row(const std::uint64_t* bits, std::int32_t y,
                                     std::int32_t a) const {
  // Doubling shift-AND: afterwards, bit x of the row mask is set iff bits
  // x .. x+a-1 of the row are all free.
  const std::uint64_t* src = bits + static_cast<std::size_t>(y) * words_;
  std::uint64_t* r = runs_.data() + static_cast<std::size_t>(y) * words_;
  std::copy(src, src + words_, r);
  std::int32_t have = 1;
  while (have < a) {
    const std::int32_t t = std::min(have, a - have);
    and_shr(r, words_, t);
    have += t;
  }
}

bool OccupancyIndex::window_into_win(std::int32_t y, std::int32_t b) const {
  const std::uint64_t* r0 = runs_.data() + static_cast<std::size_t>(y) * words_;
  bool nonzero = false;
  for (std::size_t i = 0; i < words_; ++i) nonzero |= (win_[i] = r0[i]) != 0;
  for (std::int32_t k = 1; k < b && nonzero; ++k) {
    const std::uint64_t* rk = runs_.data() + static_cast<std::size_t>(y + k) * words_;
    nonzero = false;
    for (std::size_t i = 0; i < words_; ++i) nonzero |= (win_[i] &= rk[i]) != 0;
  }
  return nonzero;
}

std::optional<SubMesh> OccupancyIndex::first_fit_impl(const std::uint64_t* bits,
                                                      std::int32_t a,
                                                      std::int32_t b) const {
  if (a <= 0 || b <= 0) throw std::invalid_argument("first_fit: non-positive request");
  if (a > geom_.width() || b > geom_.length()) return std::nullopt;
  runs_.resize(free_.size());
  win_.resize(words_);
  // Run masks are computed lazily as the scan descends: a hit in the first
  // rows (the common near-empty case, GABL's contiguous fast path) never
  // touches the rest of the mesh.
  std::int32_t ready = 0;
  for (std::int32_t y = 0; y + b <= geom_.length(); ++y) {
    while (ready < y + b) compute_run_row(bits, ready++, a);
    if (window_into_win(y, b))
      return SubMesh::from_base(Coord{lowest_bit(win_.data(), words_), y}, a, b);
  }
  return std::nullopt;
}

std::optional<SubMesh> OccupancyIndex::best_fit_impl(std::int32_t a,
                                                     std::int32_t b) const {
  if (a <= 0 || b <= 0) throw std::invalid_argument("best_fit: non-positive request");
  if (a > geom_.width() || b > geom_.length()) return std::nullopt;
  const std::int32_t W = geom_.width();
  const std::int32_t L = geom_.length();
  runs_.resize(free_.size());
  for (std::int32_t y = 0; y < L; ++y) compute_run_row(free_.data(), y, a);
  win_.resize(words_);

  // Scoring: a candidate's free border is the free-node count of its clipped
  // ring, i.e. free(ring ∪ s) - area(s). bf_win_[x] holds the prefix sum of
  // free nodes in columns [0, x) over the current window of rows [y-1, y+b]
  // (out-of-mesh rows contribute nothing), making each candidate's score an
  // O(1) window difference. The window is the sum of per-row prefix blocks
  // from the generation-stamped cache — rows untouched since the last query
  // (the common churn case) cost two vectorizable adds to enter/leave the
  // window, never a bitmap rescan, and the serial colf_→colp_ prefix rebuild
  // the old code ran per window row is gone entirely.
  const std::size_t stride = static_cast<std::size_t>(W) + 1;
  bf_win_.assign(stride, 0);
  std::int32_t cached_y = std::numeric_limits<std::int32_t>::min();
  const auto apply_row = [&](std::int32_t r, std::int32_t sign) {
    if (r < 0 || r >= L) return;
    const std::int32_t* p = ensure_rowpref(r);
    if (sign > 0)
      for (std::size_t x = 0; x < stride; ++x) bf_win_[x] += p[x];
    else
      for (std::size_t x = 0; x < stride; ++x) bf_win_[x] -= p[x];
  };
  const auto set_window = [&](std::int32_t y) {
    if (cached_y != std::numeric_limits<std::int32_t>::min() && y > cached_y &&
        y - cached_y <= b) {
      while (cached_y < y) {
        apply_row(cached_y - 1, -1);
        ++cached_y;
        apply_row(cached_y + b, +1);
      }
    } else if (cached_y != y) {
      std::fill(bf_win_.begin(), bf_win_.end(), 0);
      for (std::int32_t r = y - 1; r <= y + b; ++r) apply_row(r, +1);
      cached_y = y;
    }
  };

  std::optional<SubMesh> best;
  std::int32_t best_score = std::numeric_limits<std::int32_t>::max();
  for (std::int32_t y = 0; y + b <= L; ++y) {
    if (!window_into_win(y, b)) continue;
    set_window(y);
    for (std::size_t i = 0; i < words_; ++i) {
      std::uint64_t v = win_[i];
      while (v != 0) {
        const std::int32_t x = static_cast<std::int32_t>(
            i * 64 + static_cast<std::size_t>(std::countr_zero(v)));
        v &= v - 1;
        const std::int32_t c1 = std::max(x - 1, 0);
        const std::int32_t c2 = std::min(x + a, W - 1);
        const std::int32_t score = bf_win_[static_cast<std::size_t>(c2) + 1] -
                                   bf_win_[static_cast<std::size_t>(c1)] - a * b;
        if (score < best_score) {
          best_score = score;
          best = SubMesh::from_base(Coord{x, y}, a, b);
        }
      }
    }
  }
  return best;
}

const std::int32_t* OccupancyIndex::ensure_rowpref(std::int32_t y) const {
  const std::size_t stride = static_cast<std::size_t>(geom_.width()) + 1;
  if (bf_rowpref_.empty()) {
    bf_rowpref_.assign(static_cast<std::size_t>(geom_.length()) * stride, 0);
    bf_rowpref_gen_.assign(static_cast<std::size_t>(geom_.length()), 0);
    // Stamp 0 is never valid: clear() dirties every row, so row_gen_ >= 1.
  }
  const std::size_t yi = static_cast<std::size_t>(y);
  std::int32_t* p = bf_rowpref_.data() + yi * stride;
  if (bf_rowpref_gen_[yi] != row_gen_[yi]) {
    const std::uint64_t* r = row(y);
    std::int32_t acc = 0;
    p[0] = 0;
    for (std::int32_t x = 0; x < geom_.width(); ++x) {
      acc += static_cast<std::int32_t>(
          (r[static_cast<std::size_t>(x) / 64] >> (x % 64)) & 1u);
      p[x + 1] = acc;
    }
    bf_rowpref_gen_[yi] = row_gen_[yi];
  }
  return p;
}

const std::uint64_t* OccupancyIndex::ensure_lf_level(std::int32_t w) const {
  const std::size_t li = static_cast<std::size_t>(w) - 1;
  if (lf_levels_.size() <= li) {
    lf_levels_.resize(li + 1);
    lf_level_gen_.resize(li + 1);
    lf_level_nz_.resize(li + 1);
  }
  std::vector<std::uint64_t>& block = lf_levels_[li];
  std::vector<std::uint64_t>& gens = lf_level_gen_[li];
  std::vector<std::uint8_t>& nz = lf_level_nz_[li];
  if (block.empty()) {
    block.assign(free_.size(), 0);
    gens.assign(static_cast<std::size_t>(geom_.length()), 0);  // 0 = never valid
    nz.assign(static_cast<std::size_t>(geom_.length()), 0);
  }
  const std::uint64_t* prev = li == 0 ? nullptr : lf_levels_[li - 1].data();
  for (std::int32_t y = 0; y < geom_.length(); ++y) {
    const std::size_t yi = static_cast<std::size_t>(y);
    if (gens[yi] == row_gen_[yi]) continue;
    std::uint64_t* dst = block.data() + yi * words_;
    const std::uint64_t* src = row(y);
    std::uint64_t any = 0;
    if (w == 1) {
      for (std::size_t i = 0; i < words_; ++i) any |= (dst[i] = src[i]);
    } else {
      // R_w[y] = R_{w-1}[y] & (row >> (w-1)): a run of w starts at x iff a
      // run of w-1 does and bit x+w-1 is also free.
      shr_into(dst, src, words_, w - 1);
      const std::uint64_t* p = prev + yi * words_;
      for (std::size_t i = 0; i < words_; ++i) any |= (dst[i] &= p[i]);
    }
    nz[yi] = any != 0;
    gens[yi] = row_gen_[yi];
  }
  return block.data();
}

std::optional<SubMesh> OccupancyIndex::largest_free_impl(std::int32_t max_w,
                                                         std::int32_t max_l,
                                                         std::int64_t max_area) const {
  max_w = std::min(max_w, geom_.width());
  max_l = std::min(max_l, geom_.length());
  if (max_w <= 0 || max_l <= 0 || max_area <= 0) return std::nullopt;
  const std::int32_t L = geom_.length();
  const std::size_t row_words = free_.size();

  // The search ascends widths; each level's R_w masks (width-w run starts
  // per row) come from the generation-stamped cache, so a carving loop's
  // repeated queries recompute only the rows its own allocations dirtied.
  // lf_c_ holds the height-l window AND within each w, as before.
  lf_c_.resize(row_words);

  std::optional<SubMesh> best;
  std::int64_t best_area = 0;
  for (std::int32_t w = 1; w <= max_w; ++w) {
    const std::uint64_t* level = ensure_lf_level(w);

    // Seed the height-1 windows and the active-row list from the level's
    // cached nonzero flags: only rows that actually hold a width-w run are
    // copied or ever touched again. Rows whose window has gone empty can
    // never come back as l grows, so each taller step touches only the
    // surviving rows — on a busy mesh windows die fast and the l ascent
    // costs next to nothing. The list is kept in ascending y, so its front
    // is the legacy scan's "first base" row.
    lf_active_.clear();
    const std::vector<std::uint8_t>& nz = lf_level_nz_[static_cast<std::size_t>(w) - 1];
    for (std::int32_t y = 0; y < L; ++y) {
      if (!nz[static_cast<std::size_t>(y)]) continue;
      const std::uint64_t* src = level + static_cast<std::size_t>(y) * words_;
      std::uint64_t* dst = lf_c_.data() + static_cast<std::size_t>(y) * words_;
      std::copy(src, src + words_, dst);
      lf_active_.push_back(y);
    }
    if (lf_active_.empty()) break;  // no width-w free run ⇒ none wider either

    for (std::int32_t l = 1; l <= max_l; ++l) {
      if (l > 1) {
        std::size_t out = 0;
        for (const std::int32_t y : lf_active_) {
          if (y + l > L) continue;  // window would stick out the bottom
          std::uint64_t* c = lf_c_.data() + static_cast<std::size_t>(y) * words_;
          const std::uint64_t* r = level + static_cast<std::size_t>(y + l - 1) * words_;
          bool nonzero = false;
          for (std::size_t i = 0; i < words_; ++i) nonzero |= (c[i] &= r[i]) != 0;
          if (nonzero) lf_active_[out++] = y;
        }
        lf_active_.resize(out);
      }
      if (lf_active_.empty()) break;  // taller windows only lose candidates

      const std::int64_t area = static_cast<std::int64_t>(w) * l;
      if (area > max_area) break;     // area grows with l for fixed w
      if (area <= best_area) continue;  // same skip rule as the legacy scan
      const std::int32_t y = lf_active_.front();
      const std::uint64_t* c = lf_c_.data() + static_cast<std::size_t>(y) * words_;
      best = SubMesh::from_base(Coord{lowest_bit(c, words_), y}, w, l);
      best_area = area;
    }
  }
  return best;
}

std::optional<SubMesh> OccupancyIndex::first_fit(std::int32_t a, std::int32_t b) const {
  const auto got = first_fit_impl(free_.data(), a, b);
  if (cross_check_enabled()) {
    const FreeSubmeshScan oracle(to_mesh_state());
    const auto want = oracle.first_fit(a, b);
    if (got != want) report_divergence("first_fit", a, b, got, want);
  }
  return got;
}

std::optional<SubMesh> OccupancyIndex::first_fit_assuming_free(
    std::int32_t a, std::int32_t b, const std::vector<SubMesh>& extra_free) const {
  assume_ = free_;
  for (const SubMesh& s : extra_free) {
    check_inside(s);
    const std::size_t w1 = static_cast<std::size_t>(s.x1) / 64;
    const std::size_t w2 = static_cast<std::size_t>(s.x2) / 64;
    for (std::int32_t y = s.y1; y <= s.y2; ++y) {
      std::uint64_t* r = assume_.data() + static_cast<std::size_t>(y) * words_;
      for (std::size_t w = w1; w <= w2; ++w)
        r[w] |= bit_range(w == w1 ? s.x1 % 64 : 0, w == w2 ? s.x2 % 64 : 63);
    }
  }
  const auto got = first_fit_impl(assume_.data(), a, b);
  if (cross_check_enabled()) {
    // Oracle on the same hypothetical occupancy, rebuilt per node.
    MeshState state(geom_);
    for (std::int32_t y = 0; y < geom_.length(); ++y)
      for (std::int32_t x = 0; x < geom_.width(); ++x)
        if ((assume_[static_cast<std::size_t>(y) * words_ +
                     static_cast<std::size_t>(x) / 64] &
             (std::uint64_t{1} << (x % 64))) == 0)
          state.allocate(geom_.id(Coord{x, y}));
    const FreeSubmeshScan oracle(state);
    const auto want = oracle.first_fit(a, b);
    if (got != want) report_divergence("first_fit_assuming_free", a, b, got, want);
  }
  return got;
}

std::optional<SubMesh> OccupancyIndex::first_fit_rotatable_assuming_free(
    std::int32_t a, std::int32_t b, const std::vector<SubMesh>& extra_free) const {
  if (auto s = first_fit_assuming_free(a, b, extra_free)) return s;
  if (a != b) return first_fit_assuming_free(b, a, extra_free);
  return std::nullopt;
}

std::optional<SubMesh> OccupancyIndex::first_fit_rotatable(std::int32_t a,
                                                           std::int32_t b) const {
  if (auto s = first_fit(a, b)) return s;
  if (a != b) return first_fit(b, a);
  return std::nullopt;
}

std::optional<SubMesh> OccupancyIndex::best_fit(std::int32_t a, std::int32_t b) const {
  const auto got = best_fit_impl(a, b);
  if (cross_check_enabled()) {
    const FreeSubmeshScan oracle(to_mesh_state());
    const auto want = oracle.best_fit(a, b);
    if (got != want) report_divergence("best_fit", a, b, got, want);
  }
  return got;
}

std::optional<SubMesh> OccupancyIndex::largest_free(std::int32_t max_w,
                                                    std::int32_t max_l,
                                                    std::int64_t max_area) const {
  const auto got = largest_free_impl(max_w, max_l, max_area);
  if (cross_check_enabled()) {
    const FreeSubmeshScan oracle(to_mesh_state());
    const auto want = oracle.largest_free(max_w, max_l, max_area);
    if (got != want) report_divergence("largest_free", max_w, max_l, got, want);
  }
  return got;
}

MeshState OccupancyIndex::to_mesh_state() const {
  MeshState state(geom_);
  for (std::int32_t y = 0; y < geom_.length(); ++y)
    for (std::int32_t x = 0; x < geom_.width(); ++x)
      if (is_busy(Coord{x, y})) state.allocate(geom_.id(Coord{x, y}));
  return state;
}

}  // namespace procsim::mesh
