#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <vector>

#include "mesh/coord.hpp"
#include "mesh/submesh.hpp"

namespace procsim::mesh {

class MeshState;

/// Incrementally maintained occupancy bitmap with bit-parallel free-sub-mesh
/// queries — the scalable successor of FreeSubmeshScan's snapshot rebuild.
///
/// Each mesh row is a chain of 64-bit words holding one *free* bit per node
/// (tail bits past the width stay zero, i.e. read as busy). allocate() and
/// release() touch only the words of the rows they span, so maintaining the
/// index costs O(rows touched) per event instead of an O(W·L) rebuild per
/// query. The rectangle queries then run on whole words: "columns where `a`
/// consecutive free bits start" is a handful of shift-ANDs per row, and a
/// height-`b` window is the AND of `b` row masks.
///
/// Every query reproduces FreeSubmeshScan's answer bit for bit — same scan
/// order, same tie-breaking — which the randomized equivalence test and the
/// opt-in cross-check oracle (set_cross_check) both enforce; the paper-scale
/// figure CSVs are byte-identical either way.
///
/// Queries reuse internal scratch buffers (that reuse is part of the point:
/// no per-query vector allocations), so one OccupancyIndex must not be
/// queried from two threads at once. Allocators are per-simulated-machine
/// and single-threaded; parallel replications each own their allocator.
class OccupancyIndex {
 public:
  explicit OccupancyIndex(Geometry geom);

  [[nodiscard]] const Geometry& geometry() const noexcept { return geom_; }
  [[nodiscard]] std::int32_t free_count() const noexcept { return free_count_; }
  [[nodiscard]] std::int32_t busy_count() const noexcept {
    return geom_.nodes() - free_count_;
  }
  [[nodiscard]] bool is_busy(Coord c) const;

  /// O(rows touched) incremental updates. Preconditions mirror MeshState:
  /// allocate() requires every node of `s` free, release() every node busy;
  /// violations throw std::logic_error, out-of-mesh throws std::out_of_range.
  void allocate(const SubMesh& s);
  void release(const SubMesh& s);
  void allocate(NodeId n);
  void release(NodeId n);

  /// Frees every node (fresh replication).
  void clear();

  // --- Queries, answer-identical to FreeSubmeshScan on the same occupancy ---

  /// Number of busy nodes inside `s` (must lie within the mesh).
  [[nodiscard]] std::int32_t busy_in(const SubMesh& s) const;

  /// True if `s` lies within the mesh and contains no busy node.
  [[nodiscard]] bool is_free(const SubMesh& s) const;

  /// First-fit: lowest base in row-major order hosting a free a×b sub-mesh.
  [[nodiscard]] std::optional<SubMesh> first_fit(std::int32_t a, std::int32_t b) const;

  /// First-fit trying a×b then, if that fails and a != b, the rotated b×a.
  [[nodiscard]] std::optional<SubMesh> first_fit_rotatable(std::int32_t a,
                                                           std::int32_t b) const;

  /// First-fit on a *hypothetical* occupancy: the current bitmap with every
  /// node of `extra_free` additionally marked free (blocks may be busy, free
  /// or overlapping — the union is what counts). This is the scheduler's
  /// probe-at-instant: "would an a×b sub-mesh fit once these running jobs'
  /// blocks are released?" answered without mutating the index, in one
  /// bitmap copy + the standard scan. Same scan order and tie-breaking as
  /// first_fit on a real occupancy (the shape-aware backfill tests replay
  /// the releases for real and compare).
  [[nodiscard]] std::optional<SubMesh> first_fit_assuming_free(
      std::int32_t a, std::int32_t b, const std::vector<SubMesh>& extra_free) const;

  /// Rotatable variant of the hypothetical-occupancy first fit.
  [[nodiscard]] std::optional<SubMesh> first_fit_rotatable_assuming_free(
      std::int32_t a, std::int32_t b, const std::vector<SubMesh>& extra_free) const;

  /// Best-fit: among all free a×b placements, the one bordered by the fewest
  /// free nodes; ties resolve to the lowest row-major base.
  ///
  /// Candidate scoring reads per-row free-count prefix sums from a
  /// generation-stamped cache maintained in lock-step with allocate/release
  /// (the stamps are bumped there; a stale row recomputes on first use), so
  /// repeat queries under churn reuse every untouched row instead of
  /// rebuilding column counts from the bitmap per query — the ROADMAP's
  /// "maintain column counts incrementally" item. Answers are bit-identical
  /// to the rebuild-per-query path (a cached row is a pure function of the
  /// row's free bits; oracle equivalence and cross-check cover it).
  [[nodiscard]] std::optional<SubMesh> best_fit(std::int32_t a, std::int32_t b) const;

  /// Largest-area free sub-mesh with width <= max_w, length <= max_l and
  /// optionally area <= max_area; ties resolve to the first candidate in
  /// deterministic (width, length, base) scan order (GABL's inner search).
  ///
  /// The per-row width-w run masks the search ascends through are cached
  /// with per-row generation stamps: a repeat query — GABL's carving loop
  /// issues one largest_free per carved piece, each dirtying only the
  /// piece's rows — recomputes masks only for rows whose occupancy changed
  /// since they were last stamped, instead of rebuilding every level from
  /// the whole bitmap. Answers are bit-identical either way (a cached row
  /// is a pure function of the row's free bits; the cross-check oracle and
  /// the randomized equivalence test both cover the cached path).
  [[nodiscard]] std::optional<SubMesh> largest_free(
      std::int32_t max_w, std::int32_t max_l,
      std::int64_t max_area = std::numeric_limits<std::int64_t>::max()) const;

  /// Reconstructs the equivalent per-node MeshState (oracle and diagnostics).
  [[nodiscard]] MeshState to_mesh_state() const;

  /// Debug-mode oracle: when enabled, every fit query also runs the legacy
  /// FreeSubmeshScan on a reconstructed snapshot and throws std::logic_error
  /// on any divergence. Process-wide and off by default — it restores the
  /// O(W·L)-per-query cost the index exists to remove.
  static void set_cross_check(bool enabled) noexcept;
  [[nodiscard]] static bool cross_check_enabled() noexcept;

 private:
  [[nodiscard]] const std::uint64_t* row(std::int32_t y) const {
    return free_.data() + static_cast<std::size_t>(y) * words_;
  }
  [[nodiscard]] std::uint64_t* row(std::int32_t y) {
    return free_.data() + static_cast<std::size_t>(y) * words_;
  }
  void check_inside(const SubMesh& s) const;
  /// Free nodes of row `y` in inclusive column range [c1, c2] (caller clips).
  [[nodiscard]] std::int32_t free_in_row_range(std::int32_t y, std::int32_t c1,
                                               std::int32_t c2) const;
  /// Fills runs_ row `y` with the mask of columns where a run of `a` free
  /// bits starts, reading the occupancy from `bits` (free_.data() for the
  /// real bitmap, assume_.data() for hypothetical queries; caller sizes
  /// runs_ to free_.size() first).
  void compute_run_row(const std::uint64_t* bits, std::int32_t y, std::int32_t a) const;
  /// win_ = AND of runs_ rows [y, y+b); false (with early exit) if empty.
  [[nodiscard]] bool window_into_win(std::int32_t y, std::int32_t b) const;

  [[nodiscard]] std::optional<SubMesh> first_fit_impl(const std::uint64_t* bits,
                                                      std::int32_t a,
                                                      std::int32_t b) const;
  [[nodiscard]] std::optional<SubMesh> best_fit_impl(std::int32_t a,
                                                     std::int32_t b) const;
  [[nodiscard]] std::optional<SubMesh> largest_free_impl(std::int32_t max_w,
                                                         std::int32_t max_l,
                                                         std::int64_t max_area) const;

  /// Validates the cached width-`w` run-mask block (recomputing only rows
  /// whose generation stamp is stale) and returns it. Levels must be
  /// ensured in ascending w within one query — level w derives from level
  /// w-1 — which largest_free_impl's ascent guarantees.
  [[nodiscard]] const std::uint64_t* ensure_lf_level(std::int32_t w) const;

  /// Marks row `y`'s cached run masks stale (occupancy changed).
  void dirty_row(std::int32_t y) { row_gen_[static_cast<std::size_t>(y)] = ++gen_counter_; }

  /// Validates (recomputing iff the row's stamp is stale) and returns row
  /// `y`'s free-count prefix block: entry x = free nodes in columns [0, x).
  [[nodiscard]] const std::int32_t* ensure_rowpref(std::int32_t y) const;

  Geometry geom_;
  std::size_t words_;             ///< 64-bit words per row
  std::uint64_t tail_mask_;       ///< valid bits of the last word of a row
  std::vector<std::uint64_t> free_;  ///< length() * words_, bit = 1 ⇒ free
  std::int32_t free_count_;

  // Run-mask cache generations: row_gen_[y] advances on every occupancy
  // change touching row y; a cached row is valid iff its stamp matches.
  std::vector<std::uint64_t> row_gen_;  ///< per-row occupancy generation
  std::uint64_t gen_counter_{0};

  // Query scratch, reused across calls (see class comment on thread-safety).
  mutable std::vector<std::uint64_t> runs_;  ///< per-row run-start masks
  mutable std::vector<std::uint64_t> win_;   ///< height-b window AND
  mutable std::vector<std::uint64_t> assume_;  ///< hypothetical-occupancy bitmap
  mutable std::vector<std::uint64_t> lf_c_;  ///< largest_free: window AND
  mutable std::vector<std::int32_t> lf_active_;  ///< rows with live windows
  mutable std::vector<std::vector<std::uint64_t>> lf_levels_;    ///< R_w blocks
  mutable std::vector<std::vector<std::uint64_t>> lf_level_gen_; ///< stamps
  mutable std::vector<std::vector<std::uint8_t>> lf_level_nz_;   ///< row has runs?
  // best_fit scoring cache: per-row within-row free-count prefix sums,
  // valid iff the row's stamp matches row_gen_ (so allocate/release keep it
  // incrementally current), plus the sliding window column sums.
  mutable std::vector<std::int32_t> bf_rowpref_;        ///< L × (W+1) prefix blocks
  mutable std::vector<std::uint64_t> bf_rowpref_gen_;   ///< per-row stamps
  mutable std::vector<std::int32_t> bf_win_;  ///< Σ rowpref over window rows
};

}  // namespace procsim::mesh
