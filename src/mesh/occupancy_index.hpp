#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <vector>

#include "mesh/coord.hpp"
#include "mesh/submesh.hpp"

namespace procsim::mesh {

class MeshState;

/// Incrementally maintained occupancy bitmap with bit-parallel free-sub-mesh
/// queries — the scalable successor of FreeSubmeshScan's snapshot rebuild.
///
/// Each mesh row is a chain of 64-bit words holding one *free* bit per node
/// (tail bits past the width stay zero, i.e. read as busy). allocate() and
/// release() touch only the words of the rows they span, so maintaining the
/// index costs O(rows touched) per event instead of an O(W·L) rebuild per
/// query. The rectangle queries then run on whole words: "columns where `a`
/// consecutive free bits start" is a handful of shift-ANDs per row, and a
/// height-`b` window is the AND of `b` row masks.
///
/// On top of the bitmap sit two generation-stamped summary levels (the
/// 512×512 fast path):
///
///  * level 1 — one record per row: longest free run, row-is-all-free and
///    row-has-any-free flags (the flags packed into 64-row bitset words);
///  * level 2 — one record per 64-row block: the max over the block's
///    per-row longest runs.
///
/// first_fit and best_fit walk rows through these summaries: a whole block
/// whose max run is shorter than the request width is skipped in one
/// comparison (fully-busy regions), a window of all-free rows answers
/// first_fit without touching run masks (fully-free regions), and only rows
/// inside a *viable* window — b consecutive rows that each hold a run of
/// `a` — ever compute run masks. Summaries are validated lazily per query,
/// recomputing only rows whose generation stamp went stale, so steady churn
/// pays O(rows touched) not O(L).
///
/// Every query reproduces FreeSubmeshScan's answer bit for bit — same scan
/// order, same tie-breaking — which the randomized equivalence test and the
/// opt-in cross-check oracle (set_cross_check) both enforce; the paper-scale
/// figure CSVs are byte-identical either way.
///
/// Queries reuse internal scratch buffers (that reuse is part of the point:
/// no per-query vector allocations), so one OccupancyIndex must not be
/// queried from two threads at once. Allocators are per-simulated-machine
/// and single-threaded; parallel replications each own their allocator.
class OccupancyIndex {
 public:
  explicit OccupancyIndex(Geometry geom);

  [[nodiscard]] const Geometry& geometry() const noexcept { return geom_; }
  [[nodiscard]] std::int32_t free_count() const noexcept { return free_count_; }
  [[nodiscard]] std::int32_t busy_count() const noexcept {
    return geom_.nodes() - free_count_;
  }
  [[nodiscard]] bool is_busy(Coord c) const;

  /// O(rows touched) incremental updates. Preconditions mirror MeshState:
  /// allocate() requires every node of `s` free, release() every node busy;
  /// violations throw std::logic_error, out-of-mesh throws std::out_of_range.
  void allocate(const SubMesh& s);
  void release(const SubMesh& s);
  void allocate(NodeId n);
  void release(NodeId n);

  /// Frees every node (fresh replication).
  void clear();

  // --- Queries, answer-identical to FreeSubmeshScan on the same occupancy ---

  /// Number of busy nodes inside `s` (must lie within the mesh).
  [[nodiscard]] std::int32_t busy_in(const SubMesh& s) const;

  /// True if `s` lies within the mesh and contains no busy node.
  [[nodiscard]] bool is_free(const SubMesh& s) const;

  /// First-fit: lowest base in row-major order hosting a free a×b sub-mesh.
  [[nodiscard]] std::optional<SubMesh> first_fit(std::int32_t a, std::int32_t b) const;

  /// First-fit trying a×b then, if that fails and a != b, the rotated b×a.
  [[nodiscard]] std::optional<SubMesh> first_fit_rotatable(std::int32_t a,
                                                           std::int32_t b) const;

  /// First-fit on a *hypothetical* occupancy: the current bitmap with every
  /// node of `extra_free` additionally marked free (blocks may be busy, free
  /// or overlapping — the union is what counts). This is the scheduler's
  /// probe-at-instant: "would an a×b sub-mesh fit once these running jobs'
  /// blocks are released?" answered without mutating the index, in one
  /// bitmap copy + the standard scan. Same scan order and tie-breaking as
  /// first_fit on a real occupancy (the shape-aware backfill tests replay
  /// the releases for real and compare).
  [[nodiscard]] std::optional<SubMesh> first_fit_assuming_free(
      std::int32_t a, std::int32_t b, const std::vector<SubMesh>& extra_free) const;

  /// Rotatable variant of the hypothetical-occupancy first fit.
  [[nodiscard]] std::optional<SubMesh> first_fit_rotatable_assuming_free(
      std::int32_t a, std::int32_t b, const std::vector<SubMesh>& extra_free) const;

  /// Best-fit: among all free a×b placements, the one bordered by the fewest
  /// free nodes; ties resolve to the lowest row-major base.
  ///
  /// Candidate scoring reads per-row free-count prefix sums from a
  /// generation-stamped cache maintained in lock-step with allocate/release
  /// (the stamps are bumped there; a stale row recomputes on first use), so
  /// repeat queries under churn reuse every untouched row instead of
  /// rebuilding column counts from the bitmap per query. Candidate windows
  /// are pre-filtered through the row/block summaries: a window containing
  /// a row with no width-a run has an empty mask and is never ANDed or
  /// scored. Answers are bit-identical to the exhaustive path (skipped
  /// windows contribute no candidates; oracle equivalence and cross-check
  /// cover it).
  [[nodiscard]] std::optional<SubMesh> best_fit(std::int32_t a, std::int32_t b) const;

  /// Largest-area free sub-mesh with width <= max_w, length <= max_l and
  /// optionally area <= max_area; ties resolve to the first candidate in
  /// deterministic (width, length, base) scan order (GABL's inner search).
  ///
  /// Primary algorithm: a maximal-rectangle computation. One pass over the
  /// bitmap maintains per-column free-run heights and runs a monotonic
  /// stack per row, recording every maximal free rectangle into the
  /// *feasibility frontier* H — H[w] is the tallest l such that a free w×l
  /// sub-mesh exists, non-increasing in w. The frontier is cached under the
  /// index generation counter, so any number of queries between occupancy
  /// changes share one O(W·L) pass and each cost O(max_w) to pick the
  /// winner plus one first_fit for its base.
  ///
  /// Cap-bounded staleness path: when the frontier is stale, the caps are
  /// narrow (max_w ≤ W/4) and the previous query saw a different occupancy
  /// (no burst), a full-mesh pass would mostly measure rectangles the caps
  /// exclude — GABL's carving loop is exactly this shape, one narrowing
  /// query per carved piece. Those queries run a per-width descent over
  /// generation-stamped run-mask levels instead, recomputing only rows the
  /// carving itself dirtied. A second query on the *same* occupancy (a
  /// burst) or wide caps promote to the frontier pass, so repeated queries
  /// always end up amortized O(max_w). Both paths reproduce the oracle
  /// answer bit for bit; which one runs is never observable.
  ///
  /// Tie-breaking semantics (bit-identical to FreeSubmeshScan::largest_free,
  /// see README "Allocators & the occupancy index"): maximum capped area
  /// first; among equal areas the smallest width; the base is the first
  /// (y, x) in row-major order hosting that width×length — exactly the
  /// oracle's (width asc, length asc, y asc, x asc) scan order.
  [[nodiscard]] std::optional<SubMesh> largest_free(
      std::int32_t max_w, std::int32_t max_l,
      std::int64_t max_area = std::numeric_limits<std::int64_t>::max()) const;

  /// Longest horizontal run of free nodes over all rows — a cheap
  /// fragmentation gauge (telemetry): reads the row summaries, recomputing
  /// only stale rows, so steady churn pays O(rows touched).
  [[nodiscard]] std::int32_t max_free_run() const;

  /// Observability: how often each query family ran and which largest_free
  /// path answered. Monotone per run (clear() resets); bumping them is the
  /// only side effect queries have on this struct, so attaching a reader
  /// can never change an answer.
  struct QueryStats {
    std::uint64_t first_fit_queries{0};   ///< first_fit + rotatable + assuming
    std::uint64_t best_fit_queries{0};
    std::uint64_t largest_free_queries{0};
    std::uint64_t frontier_passes{0};     ///< full maximal-rectangle passes
    std::uint64_t frontier_hits{0};       ///< largest_free served by a valid frontier
    std::uint64_t descent_queries{0};     ///< cap-bounded stale-path answers
  };
  [[nodiscard]] const QueryStats& query_stats() const noexcept { return qstats_; }

  /// Reconstructs the equivalent per-node MeshState (oracle and diagnostics).
  [[nodiscard]] MeshState to_mesh_state() const;

  /// Debug-mode oracle: when enabled, every fit query also runs the legacy
  /// FreeSubmeshScan on a reconstructed snapshot and throws std::logic_error
  /// on any divergence. Process-wide and off by default — it restores the
  /// O(W·L)-per-query cost the index exists to remove. The initial value
  /// honours the PROCSIM_INDEX_CROSS_CHECK environment variable (any value
  /// other than empty or "0" enables it), so CI smokes can run whole sweeps
  /// under the oracle without a code change.
  static void set_cross_check(bool enabled) noexcept;
  [[nodiscard]] static bool cross_check_enabled() noexcept;

 private:
  [[nodiscard]] const std::uint64_t* row(std::int32_t y) const {
    return free_.data() + static_cast<std::size_t>(y) * words_;
  }
  [[nodiscard]] std::uint64_t* row(std::int32_t y) {
    return free_.data() + static_cast<std::size_t>(y) * words_;
  }
  void check_inside(const SubMesh& s) const;
  /// Free nodes of row `y` in inclusive column range [c1, c2] (caller clips).
  [[nodiscard]] std::int32_t free_in_row_range(std::int32_t y, std::int32_t c1,
                                               std::int32_t c2) const;
  /// Fills runs_ row `y` with the mask of columns where a run of `a` free
  /// bits starts, reading the occupancy from `bits` (free_.data() for the
  /// real bitmap, assume_.data() for hypothetical queries; caller sizes
  /// runs_ to free_.size() first).
  void compute_run_row(const std::uint64_t* bits, std::int32_t y, std::int32_t a) const;
  /// compute_run_row at most once per row per query (runs_epoch_ marks).
  void ensure_run_row(const std::uint64_t* bits, std::int32_t y, std::int32_t a) const;
  /// win_ = AND of runs_ rows [y, y+b); false (with early exit) if empty.
  [[nodiscard]] bool window_into_win(std::int32_t y, std::int32_t b) const;

  [[nodiscard]] std::optional<SubMesh> first_fit_impl(const std::uint64_t* bits,
                                                      std::int32_t a,
                                                      std::int32_t b) const;
  [[nodiscard]] std::optional<SubMesh> best_fit_impl(std::int32_t a,
                                                     std::int32_t b) const;
  [[nodiscard]] std::optional<SubMesh> largest_free_impl(std::int32_t max_w,
                                                         std::int32_t max_l,
                                                         std::int64_t max_area) const;

  /// Validates the two summary levels (row flags + longest runs, per-block
  /// max runs), recomputing only rows whose generation stamp is stale.
  void ensure_summaries() const;

  /// Validates the largest_free feasibility frontier: one maximal-rectangle
  /// pass (per-column heights + monotonic stack) whenever any occupancy
  /// changed since the last pass.
  void ensure_frontier() const;

  /// Winner selection over a *fresh* frontier (caller ensures validity).
  [[nodiscard]] std::optional<SubMesh> largest_free_from_frontier(
      std::int32_t max_w, std::int32_t max_l, std::int64_t max_area) const;

  /// Cap-bounded per-width descent for stale-frontier narrow queries; exact
  /// and oracle-identical for any caps, but only profitable when max_w is
  /// small against the mesh width.
  [[nodiscard]] std::optional<SubMesh> largest_free_descent(
      std::int32_t max_w, std::int32_t max_l, std::int64_t max_area) const;

  /// Validates (against per-row stamps) and returns the width-`w` run-mask
  /// level block for the descent: bit x of row y ⇒ a horizontal run of `w`
  /// free nodes starts at (x, y). Levels build incrementally (level w reads
  /// level w-1), so callers ascend w from 1.
  [[nodiscard]] const std::uint64_t* ensure_lf_level(std::int32_t w) const;

  /// Marks row `y`'s cached summaries stale (occupancy changed).
  void dirty_row(std::int32_t y) { row_gen_[static_cast<std::size_t>(y)] = ++gen_counter_; }

  /// Validates (recomputing iff the row's stamp is stale) and returns row
  /// `y`'s free-count prefix block: entry x = free nodes in columns [0, x).
  [[nodiscard]] const std::int32_t* ensure_rowpref(std::int32_t y) const;

  Geometry geom_;
  std::size_t words_;             ///< 64-bit words per row
  std::uint64_t tail_mask_;       ///< valid bits of the last word of a row
  std::vector<std::uint64_t> free_;  ///< length() * words_, bit = 1 ⇒ free
  std::int32_t free_count_;

  // Cache generations: row_gen_[y] advances on every occupancy change
  // touching row y; a cached row is valid iff its stamp matches, and a
  // whole-mesh cache (the largest_free frontier) is valid iff it was built
  // at the current gen_counter_.
  std::vector<std::uint64_t> row_gen_;  ///< per-row occupancy generation
  std::uint64_t gen_counter_{0};

  // Query scratch, reused across calls (see class comment on thread-safety).
  mutable std::vector<std::uint64_t> runs_;  ///< per-row run-start masks
  mutable std::vector<std::uint64_t> runs_row_epoch_;  ///< runs_ row valid marks
  mutable std::uint64_t runs_epoch_{0};      ///< bumped per query
  mutable std::vector<std::uint64_t> win_;   ///< height-b window AND
  mutable std::vector<std::uint64_t> assume_;  ///< hypothetical-occupancy bitmap

  // Hierarchical occupancy summaries (level 1: rows, level 2: 64-row blocks).
  mutable std::vector<std::uint64_t> sum_gen_;      ///< per-row summary stamps
  mutable std::vector<std::int32_t> row_max_run_;   ///< longest free run per row
  mutable std::vector<std::uint64_t> rows_all_free_;  ///< bit y ⇒ row y all free
  mutable std::vector<std::uint64_t> rows_any_free_;  ///< bit y ⇒ row y has a free node
  mutable std::vector<std::int32_t> blk_max_run_;   ///< max row_max_run_ per block

  // largest_free feasibility frontier + maximal-rectangle pass scratch.
  mutable std::vector<std::int32_t> lf_frontier_;  ///< H[w]: tallest free w-wide rect
  mutable std::uint64_t lf_frontier_gen_{0};       ///< gen_counter_ at last pass
  mutable std::uint64_t lf_last_query_gen_{0};     ///< burst detection
  mutable std::vector<std::int32_t> lf_ht_;        ///< per-column free-run heights
  mutable std::vector<std::int32_t> lf_stack_x_;   ///< monotonic stack: start col
  mutable std::vector<std::int32_t> lf_stack_h_;   ///< monotonic stack: height

  // largest_free descent path (stale-frontier narrow queries): per-width
  // run-mask levels with per-row stamps, window AND scratch, live-row list.
  mutable std::vector<std::uint64_t> lf_c_;  ///< descent: window AND
  mutable std::vector<std::int32_t> lf_active_;  ///< rows with live windows
  mutable std::vector<std::vector<std::uint64_t>> lf_levels_;    ///< R_w blocks
  mutable std::vector<std::vector<std::uint64_t>> lf_level_gen_; ///< stamps
  mutable std::vector<std::vector<std::uint8_t>> lf_level_nz_;   ///< row has runs?

  // best_fit scoring cache: per-row within-row free-count prefix sums,
  // valid iff the row's stamp matches row_gen_ (so allocate/release keep it
  // incrementally current), plus the sliding window column sums.
  mutable std::vector<std::int32_t> bf_rowpref_;        ///< L × (W+1) prefix blocks
  mutable std::vector<std::uint64_t> bf_rowpref_gen_;   ///< per-row stamps
  mutable std::vector<std::int32_t> bf_win_;  ///< Σ rowpref over window rows

  mutable QueryStats qstats_;  ///< observability tallies (see query_stats)
};

}  // namespace procsim::mesh
