#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <vector>

#include "mesh/mesh_state.hpp"
#include "mesh/submesh.hpp"

namespace procsim::mesh {

/// Free-sub-mesh queries over a MeshState occupancy bitmap.
///
/// Builds a 2D prefix sum of the busy map once, after which "is this
/// rectangle entirely free?" is O(1). The scan object is a snapshot: rebuild
/// after any allocation — which is exactly why production queries now go
/// through the incrementally maintained OccupancyIndex instead. This class
/// stays as the reference oracle: its exhaustive scans are obviously
/// correct, and the equivalence tests plus OccupancyIndex::set_cross_check
/// hold the index to its answers bit for bit.
class FreeSubmeshScan {
 public:
  explicit FreeSubmeshScan(const MeshState& state);

  /// Number of busy nodes inside `s` (must lie within the mesh).
  [[nodiscard]] std::int32_t busy_in(const SubMesh& s) const;

  /// True if `s` lies within the mesh and contains no busy node.
  [[nodiscard]] bool is_free(const SubMesh& s) const;

  /// First-fit: lowest base in row-major order hosting a free a×b sub-mesh.
  [[nodiscard]] std::optional<SubMesh> first_fit(std::int32_t a, std::int32_t b) const;

  /// First-fit trying a×b then, if that fails and a != b, the rotated b×a
  /// (standard orientation switch of contiguous strategies).
  [[nodiscard]] std::optional<SubMesh> first_fit_rotatable(std::int32_t a,
                                                           std::int32_t b) const;

  /// Best-fit: among all free a×b placements, the one bordered by the fewest
  /// free nodes (tightest packing); ties resolve to the lowest row-major base.
  [[nodiscard]] std::optional<SubMesh> best_fit(std::int32_t a, std::int32_t b) const;

  /// Largest-area free sub-mesh with width <= max_w and length <= max_l,
  /// optionally also area <= max_area. Ties resolve to the first candidate in
  /// deterministic (width, length, base) scan order. This is GABL's inner
  /// search. Returns nullopt only when no free node exists.
  [[nodiscard]] std::optional<SubMesh> largest_free(
      std::int32_t max_w, std::int32_t max_l,
      std::int64_t max_area = std::numeric_limits<std::int64_t>::max()) const;

  [[nodiscard]] const Geometry& geometry() const noexcept { return geom_; }

 private:
  [[nodiscard]] std::int64_t rect_sum(std::int32_t x1, std::int32_t y1, std::int32_t x2,
                                      std::int32_t y2) const;
  /// Free nodes in the one-node-wide ring around `s`, clipped to the mesh.
  [[nodiscard]] std::int32_t free_border(const SubMesh& s) const;

  Geometry geom_;
  std::vector<std::int64_t> prefix_;  // (W+1)×(L+1) inclusive prefix sums of busy
};

}  // namespace procsim::mesh
