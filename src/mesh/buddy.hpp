#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <set>
#include <vector>

#include "mesh/coord.hpp"
#include "mesh/submesh.hpp"

namespace procsim::mesh {

/// Quad-buddy tiling of a mesh, the substrate of the Multiple Buddy Strategy
/// (MBS, Lo et al. 1997): "the mesh is divided into non-overlapping square
/// sub-meshes with side lengths equal to powers of two upon initialization".
///
/// Meshes whose sides are not powers of two (the paper's 16×22) are covered
/// greedily by maximal power-of-two squares; each initial square is the root
/// of a quad-tree whose nodes split into four equal buddies. Free blocks are
/// kept per order as FIFO free lists, matching a linked-list implementation:
/// initially in tiling order, but scrambled spatially by allocation churn.
/// That scrambling is load-bearing for the paper's results — it is why MBS
/// disperses non-power-of-two jobs across the mesh once the system has run
/// for a while, where Paging's index ordering keeps compacting. Everything
/// remains deterministic for a fixed request sequence.
class BuddyTiling {
 public:
  using BlockId = std::int32_t;
  static constexpr BlockId kNone = -1;

  explicit BuddyTiling(Geometry geom);

  /// Hands out a free block of exactly this order (side 2^order), splitting a
  /// larger free block if necessary. Returns nullopt when no block of this
  /// order can be produced.
  [[nodiscard]] std::optional<BlockId> take_block(std::int32_t order);

  /// Returns a block obtained from take_block; merges complete buddy sets
  /// back into their parent recursively.
  void release_block(BlockId id);

  [[nodiscard]] const SubMesh& rect(BlockId id) const { return blocks_.at(checked(id)).rect; }
  [[nodiscard]] std::int32_t order_of(BlockId id) const {
    return blocks_.at(checked(id)).order;
  }

  /// Number of free processors summed over free blocks.
  [[nodiscard]] std::int64_t free_processors() const noexcept { return free_processors_; }

  /// Free blocks currently available at `order` (diagnostics/tests).
  [[nodiscard]] std::size_t free_blocks_at(std::int32_t order) const;

  [[nodiscard]] std::int32_t max_order() const noexcept { return max_order_; }
  [[nodiscard]] const Geometry& geometry() const noexcept { return geom_; }

  /// Resets to the initial tiling. Precondition: every taken block released.
  void clear();

 private:
  struct Block {
    SubMesh rect;
    std::int32_t order{0};
    BlockId parent{kNone};
    std::array<BlockId, 4> children{kNone, kNone, kNone, kNone};
    std::uint64_t fseq{0};  ///< insertion ticket in its free list
    bool is_split{false};
    bool is_free{true};
    bool is_dead{false};  ///< tombstone: parent merged back, id retired
  };

  [[nodiscard]] std::size_t checked(BlockId id) const;
  void tile_region(std::int32_t x0, std::int32_t y0, std::int32_t w, std::int32_t l);
  void split(BlockId id);
  void add_free(BlockId id);
  void remove_free(BlockId id);

  Geometry geom_;
  std::vector<Block> blocks_;
  /// FIFO free lists: (insertion ticket, block), oldest first.
  std::vector<std::set<std::pair<std::uint64_t, BlockId>>> free_lists_;
  std::vector<BlockId> roots_;
  std::uint64_t next_fseq_{0};
  std::int64_t free_processors_{0};
  std::int32_t max_order_{0};
};

}  // namespace procsim::mesh
