#pragma once

#include <compare>
#include <cstdint>
#include <string>

#include "mesh/coord.hpp"

namespace procsim::mesh {

/// A rectangular sub-mesh S(w, l), stored as base (x1, y1) and end (x2, y2)
/// coordinates, both inclusive — Definition 1 of the paper.
struct SubMesh {
  std::int32_t x1{0};
  std::int32_t y1{0};
  std::int32_t x2{0};
  std::int32_t y2{0};

  /// Builds a sub-mesh from its base coordinate and side lengths.
  [[nodiscard]] static constexpr SubMesh from_base(Coord base, std::int32_t width,
                                                   std::int32_t length) noexcept {
    return SubMesh{base.x, base.y, base.x + width - 1, base.y + length - 1};
  }

  [[nodiscard]] constexpr std::int32_t width() const noexcept { return x2 - x1 + 1; }
  [[nodiscard]] constexpr std::int32_t length() const noexcept { return y2 - y1 + 1; }
  [[nodiscard]] constexpr std::int32_t area() const noexcept { return width() * length(); }

  [[nodiscard]] constexpr Coord base() const noexcept { return Coord{x1, y1}; }
  [[nodiscard]] constexpr Coord end() const noexcept { return Coord{x2, y2}; }

  [[nodiscard]] constexpr bool valid() const noexcept { return x1 <= x2 && y1 <= y2; }

  [[nodiscard]] constexpr bool contains(Coord c) const noexcept {
    return c.x >= x1 && c.x <= x2 && c.y >= y1 && c.y <= y2;
  }

  [[nodiscard]] constexpr bool contains(const SubMesh& o) const noexcept {
    return o.x1 >= x1 && o.x2 <= x2 && o.y1 >= y1 && o.y2 <= y2;
  }

  [[nodiscard]] constexpr bool overlaps(const SubMesh& o) const noexcept {
    return x1 <= o.x2 && o.x1 <= x2 && y1 <= o.y2 && o.y1 <= y2;
  }

  /// True if this sub-mesh is large enough to host an a×b request
  /// (Definition 4: "suitable").
  [[nodiscard]] constexpr bool suitable_for(std::int32_t a, std::int32_t b) const noexcept {
    return width() >= a && length() >= b;
  }

  [[nodiscard]] std::string to_string() const {
    // Built by append rather than operator+ chaining: GCC 12's -Wrestrict
    // false-positives on the `"(" + std::to_string(...)` pattern (PR105651).
    std::string out;
    out += '(';
    out += std::to_string(x1);
    out += ',';
    out += std::to_string(y1);
    out += ',';
    out += std::to_string(x2);
    out += ',';
    out += std::to_string(y2);
    out += ')';
    return out;
  }

  friend constexpr auto operator<=>(const SubMesh&, const SubMesh&) = default;
};

}  // namespace procsim::mesh
