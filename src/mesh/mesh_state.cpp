#include "mesh/mesh_state.hpp"

#include <stdexcept>

namespace procsim::mesh {

std::size_t MeshState::checked(NodeId n) const {
  if (n < 0 || n >= geom_.nodes()) throw std::out_of_range("MeshState: node id out of range");
  return static_cast<std::size_t>(n);
}

void MeshState::allocate(NodeId n) {
  const std::size_t i = checked(n);
  if (busy_[i]) throw std::logic_error("MeshState: double allocation of node");
  busy_[i] = 1;
  --free_;
}

void MeshState::release(NodeId n) {
  const std::size_t i = checked(n);
  if (!busy_[i]) throw std::logic_error("MeshState: releasing a free node");
  busy_[i] = 0;
  ++free_;
}

void MeshState::allocate(const SubMesh& s) {
  for (std::int32_t y = s.y1; y <= s.y2; ++y)
    for (std::int32_t x = s.x1; x <= s.x2; ++x) allocate(geom_.id(Coord{x, y}));
}

void MeshState::release(const SubMesh& s) {
  for (std::int32_t y = s.y1; y <= s.y2; ++y)
    for (std::int32_t x = s.x1; x <= s.x2; ++x) release(geom_.id(Coord{x, y}));
}

bool MeshState::all_free(const SubMesh& s) const {
  if (!s.valid() || !geom_.contains(s.base()) || !geom_.contains(s.end())) return false;
  for (std::int32_t y = s.y1; y <= s.y2; ++y)
    for (std::int32_t x = s.x1; x <= s.x2; ++x)
      if (busy_[static_cast<std::size_t>(geom_.id(Coord{x, y}))]) return false;
  return true;
}

void MeshState::clear() {
  std::fill(busy_.begin(), busy_.end(), std::uint8_t{0});
  free_ = geom_.nodes();
}

std::vector<NodeId> MeshState::free_nodes() const {
  std::vector<NodeId> out;
  free_nodes_into(out);
  return out;
}

void MeshState::free_nodes_into(std::vector<NodeId>& out) const {
  out.clear();
  out.reserve(static_cast<std::size_t>(free_));
  for (NodeId n = 0; n < geom_.nodes(); ++n)
    if (!busy_[static_cast<std::size_t>(n)]) out.push_back(n);
}

}  // namespace procsim::mesh
