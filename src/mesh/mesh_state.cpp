#include "mesh/mesh_state.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

namespace procsim::mesh {

std::size_t MeshState::checked(NodeId n) const {
  if (n < 0 || n >= geom_.nodes()) throw std::out_of_range("MeshState: node id out of range");
  return static_cast<std::size_t>(n);
}

void MeshState::allocate(NodeId n) {
  const std::size_t i = checked(n);
  if (busy_[i]) throw std::logic_error("MeshState: double allocation of node");
  busy_[i] = 1;
  --free_;
}

void MeshState::release(NodeId n) {
  const std::size_t i = checked(n);
  if (!busy_[i]) throw std::logic_error("MeshState: releasing a free node");
  busy_[i] = 0;
  ++free_;
}

// The sub-mesh variants work a contiguous row span at a time (node ids are
// row-major), replacing the per-node id arithmetic and bounds re-checks with
// one memchr precondition scan and one fill per row — at 512 columns that is
// 512 bytes of straight-line memory traffic instead of 512 call-and-check
// iterations, and the per-event cost that used to show beside the allocator
// queries in the 512×512 profile.

void MeshState::allocate(const SubMesh& s) {
  if (!s.valid() || !geom_.contains(s.base()) || !geom_.contains(s.end()))
    throw std::out_of_range("MeshState: sub-mesh outside mesh");
  const std::size_t w = static_cast<std::size_t>(s.width());
  for (std::int32_t y = s.y1; y <= s.y2; ++y) {
    std::uint8_t* r = busy_.data() + static_cast<std::size_t>(geom_.id(Coord{s.x1, y}));
    if (std::memchr(r, 1, w) != nullptr)
      throw std::logic_error("MeshState: double allocation of node");
    std::fill(r, r + w, std::uint8_t{1});
  }
  free_ -= s.area();
}

void MeshState::release(const SubMesh& s) {
  if (!s.valid() || !geom_.contains(s.base()) || !geom_.contains(s.end()))
    throw std::out_of_range("MeshState: sub-mesh outside mesh");
  const std::size_t w = static_cast<std::size_t>(s.width());
  for (std::int32_t y = s.y1; y <= s.y2; ++y) {
    std::uint8_t* r = busy_.data() + static_cast<std::size_t>(geom_.id(Coord{s.x1, y}));
    if (std::memchr(r, 0, w) != nullptr)
      throw std::logic_error("MeshState: releasing a free node");
    std::fill(r, r + w, std::uint8_t{0});
  }
  free_ += s.area();
}

bool MeshState::all_free(const SubMesh& s) const {
  if (!s.valid() || !geom_.contains(s.base()) || !geom_.contains(s.end())) return false;
  const std::size_t w = static_cast<std::size_t>(s.width());
  for (std::int32_t y = s.y1; y <= s.y2; ++y) {
    const std::uint8_t* r =
        busy_.data() + static_cast<std::size_t>(geom_.id(Coord{s.x1, y}));
    if (std::memchr(r, 1, w) != nullptr) return false;
  }
  return true;
}

void MeshState::clear() {
  std::fill(busy_.begin(), busy_.end(), std::uint8_t{0});
  free_ = geom_.nodes();
}

std::vector<NodeId> MeshState::free_nodes() const {
  std::vector<NodeId> out;
  free_nodes_into(out);
  return out;
}

void MeshState::free_nodes_into(std::vector<NodeId>& out) const {
  out.clear();
  out.reserve(static_cast<std::size_t>(free_));
  for (NodeId n = 0; n < geom_.nodes(); ++n)
    if (!busy_[static_cast<std::size_t>(n)]) out.push_back(n);
}

}  // namespace procsim::mesh
