#include "mesh/free_submesh_scan.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace procsim::mesh {

FreeSubmeshScan::FreeSubmeshScan(const MeshState& state)
    : geom_(state.geometry()),
      prefix_(static_cast<std::size_t>((geom_.width() + 1) * (geom_.length() + 1)), 0) {
  const std::int32_t w = geom_.width();
  for (std::int32_t y = 0; y < geom_.length(); ++y) {
    for (std::int32_t x = 0; x < w; ++x) {
      const std::int64_t cell = state.is_busy(Coord{x, y}) ? 1 : 0;
      const auto idx = [this](std::int32_t px, std::int32_t py) {
        return static_cast<std::size_t>(py * (geom_.width() + 1) + px);
      };
      prefix_[idx(x + 1, y + 1)] =
          cell + prefix_[idx(x, y + 1)] + prefix_[idx(x + 1, y)] - prefix_[idx(x, y)];
    }
  }
}

std::int64_t FreeSubmeshScan::rect_sum(std::int32_t x1, std::int32_t y1, std::int32_t x2,
                                       std::int32_t y2) const {
  const auto idx = [this](std::int32_t px, std::int32_t py) {
    return static_cast<std::size_t>(py * (geom_.width() + 1) + px);
  };
  return prefix_[idx(x2 + 1, y2 + 1)] - prefix_[idx(x1, y2 + 1)] - prefix_[idx(x2 + 1, y1)] +
         prefix_[idx(x1, y1)];
}

std::int32_t FreeSubmeshScan::busy_in(const SubMesh& s) const {
  if (!s.valid() || !geom_.contains(s.base()) || !geom_.contains(s.end()))
    throw std::invalid_argument("FreeSubmeshScan::busy_in: sub-mesh outside mesh");
  return static_cast<std::int32_t>(rect_sum(s.x1, s.y1, s.x2, s.y2));
}

bool FreeSubmeshScan::is_free(const SubMesh& s) const {
  if (!s.valid() || !geom_.contains(s.base()) || !geom_.contains(s.end())) return false;
  return rect_sum(s.x1, s.y1, s.x2, s.y2) == 0;
}

std::optional<SubMesh> FreeSubmeshScan::first_fit(std::int32_t a, std::int32_t b) const {
  if (a <= 0 || b <= 0) throw std::invalid_argument("first_fit: non-positive request");
  if (a > geom_.width() || b > geom_.length()) return std::nullopt;
  for (std::int32_t y = 0; y + b <= geom_.length(); ++y) {
    for (std::int32_t x = 0; x + a <= geom_.width(); ++x) {
      const SubMesh cand = SubMesh::from_base(Coord{x, y}, a, b);
      if (rect_sum(cand.x1, cand.y1, cand.x2, cand.y2) == 0) return cand;
    }
  }
  return std::nullopt;
}

std::optional<SubMesh> FreeSubmeshScan::first_fit_rotatable(std::int32_t a,
                                                            std::int32_t b) const {
  if (auto s = first_fit(a, b)) return s;
  if (a != b) return first_fit(b, a);
  return std::nullopt;
}

std::int32_t FreeSubmeshScan::free_border(const SubMesh& s) const {
  const SubMesh ring{std::max(s.x1 - 1, 0), std::max(s.y1 - 1, 0),
                     std::min(s.x2 + 1, geom_.width() - 1),
                     std::min(s.y2 + 1, geom_.length() - 1)};
  const std::int64_t ring_nodes = ring.area() - s.area();
  const std::int64_t ring_busy =
      rect_sum(ring.x1, ring.y1, ring.x2, ring.y2) - rect_sum(s.x1, s.y1, s.x2, s.y2);
  return static_cast<std::int32_t>(ring_nodes - ring_busy);
}

std::optional<SubMesh> FreeSubmeshScan::best_fit(std::int32_t a, std::int32_t b) const {
  if (a <= 0 || b <= 0) throw std::invalid_argument("best_fit: non-positive request");
  if (a > geom_.width() || b > geom_.length()) return std::nullopt;
  std::optional<SubMesh> best;
  std::int32_t best_score = std::numeric_limits<std::int32_t>::max();
  for (std::int32_t y = 0; y + b <= geom_.length(); ++y) {
    for (std::int32_t x = 0; x + a <= geom_.width(); ++x) {
      const SubMesh cand = SubMesh::from_base(Coord{x, y}, a, b);
      if (rect_sum(cand.x1, cand.y1, cand.x2, cand.y2) != 0) continue;
      const std::int32_t score = free_border(cand);
      if (score < best_score) {
        best_score = score;
        best = cand;
      }
    }
  }
  return best;
}

std::optional<SubMesh> FreeSubmeshScan::largest_free(std::int32_t max_w, std::int32_t max_l,
                                                     std::int64_t max_area) const {
  max_w = std::min(max_w, geom_.width());
  max_l = std::min(max_l, geom_.length());
  if (max_w <= 0 || max_l <= 0 || max_area <= 0) return std::nullopt;
  std::optional<SubMesh> best;
  std::int64_t best_area = 0;
  for (std::int32_t w = 1; w <= max_w; ++w) {
    for (std::int32_t l = 1; l <= max_l; ++l) {
      const std::int64_t area = static_cast<std::int64_t>(w) * l;
      if (area > max_area || area <= best_area) continue;
      for (std::int32_t y = 0; y + l <= geom_.length(); ++y) {
        bool found = false;
        for (std::int32_t x = 0; x + w <= geom_.width(); ++x) {
          const SubMesh cand = SubMesh::from_base(Coord{x, y}, w, l);
          if (rect_sum(cand.x1, cand.y1, cand.x2, cand.y2) == 0) {
            best = cand;
            best_area = area;
            found = true;
            break;
          }
        }
        if (found) break;
      }
    }
  }
  return best;
}

}  // namespace procsim::mesh
