#pragma once

#include <compare>
#include <cstdint>

namespace procsim::mesh {

/// Node index into a W×L mesh, row-major: id = y*W + x.
using NodeId = std::int32_t;

/// Processor coordinates. Following the paper, a node is (x, y) with
/// 0 <= x < W (width) and 0 <= y < L (length).
struct Coord {
  std::int32_t x{0};
  std::int32_t y{0};

  friend constexpr auto operator<=>(const Coord&, const Coord&) = default;
};

/// Static shape of a W×L mesh (no occupancy), with id<->coordinate mapping.
class Geometry {
 public:
  constexpr Geometry(std::int32_t width, std::int32_t length) noexcept
      : width_(width), length_(length) {}

  [[nodiscard]] constexpr std::int32_t width() const noexcept { return width_; }
  [[nodiscard]] constexpr std::int32_t length() const noexcept { return length_; }
  [[nodiscard]] constexpr std::int32_t nodes() const noexcept { return width_ * length_; }

  [[nodiscard]] constexpr bool contains(Coord c) const noexcept {
    return c.x >= 0 && c.x < width_ && c.y >= 0 && c.y < length_;
  }

  [[nodiscard]] constexpr NodeId id(Coord c) const noexcept { return c.y * width_ + c.x; }
  [[nodiscard]] constexpr Coord coord(NodeId n) const noexcept {
    return Coord{n % width_, n / width_};
  }

  friend constexpr bool operator==(const Geometry&, const Geometry&) = default;

 private:
  std::int32_t width_;
  std::int32_t length_;
};

}  // namespace procsim::mesh
