#pragma once

#include <cstdint>
#include <vector>

#include "mesh/coord.hpp"
#include "mesh/submesh.hpp"

namespace procsim::mesh {

/// Page ordering schemes of the Paging strategy (Lo et al., TPDS 1997).
/// The paper's main results use row-major only; the others feed the
/// `abl_paging_index` ablation bench.
enum class PageIndexing {
  kRowMajor,
  kSnake,            // boustrophedon rows
  kShuffledRowMajor, // Morton (bit-interleaved) order
  kShuffledSnake,    // Morton order of snake-flipped coordinates
};

/// Tiling of a W×L mesh into pages of side 2^size_index, indexed by one of
/// the four Paging schemes. Pages at the right/top edges are clipped when the
/// mesh side is not a multiple of the page side, so the table covers every
/// mesh exactly (the paper's 16×22 mesh is not divisible by 4).
class PageTable {
 public:
  PageTable(Geometry geom, std::int32_t size_index,
            PageIndexing indexing = PageIndexing::kRowMajor);

  [[nodiscard]] std::int32_t size_index() const noexcept { return size_index_; }
  [[nodiscard]] std::int32_t page_side() const noexcept { return side_; }
  [[nodiscard]] PageIndexing indexing() const noexcept { return indexing_; }
  [[nodiscard]] std::size_t page_count() const noexcept { return pages_.size(); }

  /// Pages in allocation-scan order (index 0 first).
  [[nodiscard]] const SubMesh& page(std::size_t index) const { return pages_.at(index); }

  /// Page grid position (column, row) of the page holding mesh coordinate c.
  [[nodiscard]] Coord grid_of(Coord c) const noexcept {
    return Coord{c.x / side_, c.y / side_};
  }

  [[nodiscard]] const Geometry& geometry() const noexcept { return geom_; }

 private:
  Geometry geom_;
  std::int32_t size_index_;
  std::int32_t side_;
  PageIndexing indexing_;
  std::vector<SubMesh> pages_;
};

}  // namespace procsim::mesh
