#include "mesh/page_table.hpp"

#include <algorithm>
#include <stdexcept>

namespace procsim::mesh {
namespace {

/// Interleaves the low 16 bits of r (odd positions) and c (even positions):
/// the Morton / Z-order code used by the "shuffled" indexing schemes.
[[nodiscard]] std::uint64_t morton(std::uint32_t c, std::uint32_t r) noexcept {
  std::uint64_t code = 0;
  for (int b = 0; b < 16; ++b) {
    code |= static_cast<std::uint64_t>((c >> b) & 1U) << (2 * b);
    code |= static_cast<std::uint64_t>((r >> b) & 1U) << (2 * b + 1);
  }
  return code;
}

/// Validates before shifting: the check must precede the `1 << size_index`
/// in the member-initialiser list, where a negative exponent would be UB.
[[nodiscard]] std::int32_t checked_page_side(std::int32_t size_index) {
  if (size_index < 0 || size_index > 15)
    throw std::invalid_argument("PageTable: size_index out of range");
  return 1 << size_index;
}

}  // namespace

PageTable::PageTable(Geometry geom, std::int32_t size_index, PageIndexing indexing)
    : geom_(geom), size_index_(size_index), side_(checked_page_side(size_index)), indexing_(indexing) {
  const std::int32_t cols = (geom.width() + side_ - 1) / side_;
  const std::int32_t rows = (geom.length() + side_ - 1) / side_;

  struct Keyed {
    std::uint64_t key;
    std::int32_t row;
    std::int32_t col;
  };
  std::vector<Keyed> order;
  order.reserve(static_cast<std::size_t>(cols * rows));
  for (std::int32_t r = 0; r < rows; ++r) {
    for (std::int32_t c = 0; c < cols; ++c) {
      // Snake variants flip the column direction on odd rows before keying.
      const std::int32_t cs = (r % 2 == 1) ? cols - 1 - c : c;
      std::uint64_t key = 0;
      switch (indexing_) {
        case PageIndexing::kRowMajor:
          key = static_cast<std::uint64_t>(r) * static_cast<std::uint64_t>(cols) +
                static_cast<std::uint64_t>(c);
          break;
        case PageIndexing::kSnake:
          key = static_cast<std::uint64_t>(r) * static_cast<std::uint64_t>(cols) +
                static_cast<std::uint64_t>(cs);
          break;
        case PageIndexing::kShuffledRowMajor:
          key = morton(static_cast<std::uint32_t>(c), static_cast<std::uint32_t>(r));
          break;
        case PageIndexing::kShuffledSnake:
          key = morton(static_cast<std::uint32_t>(cs), static_cast<std::uint32_t>(r));
          break;
      }
      order.push_back(Keyed{key, r, c});
    }
  }
  std::sort(order.begin(), order.end(), [](const Keyed& a, const Keyed& b) {
    if (a.key != b.key) return a.key < b.key;
    if (a.row != b.row) return a.row < b.row;
    return a.col < b.col;
  });

  pages_.reserve(order.size());
  for (const Keyed& k : order) {
    const std::int32_t x1 = k.col * side_;
    const std::int32_t y1 = k.row * side_;
    const std::int32_t x2 = std::min(x1 + side_ - 1, geom.width() - 1);
    const std::int32_t y2 = std::min(y1 + side_ - 1, geom.length() - 1);
    pages_.push_back(SubMesh{x1, y1, x2, y2});
  }
}

}  // namespace procsim::mesh
