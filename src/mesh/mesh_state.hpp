#pragma once

#include <cstdint>
#include <vector>

#include "mesh/coord.hpp"
#include "mesh/submesh.hpp"

namespace procsim::mesh {

/// Occupancy bitmap of a mesh: which processors are currently allocated.
/// Shared vocabulary of every allocation strategy; the strategies keep their
/// own auxiliary indexes (page tables, buddy trees, busy lists) in sync with
/// this ground truth, and the tests cross-check them against it.
class MeshState {
 public:
  explicit MeshState(Geometry geom)
      : geom_(geom),
        busy_(static_cast<std::size_t>(geom.nodes()), 0),
        free_(geom.nodes()) {}

  [[nodiscard]] const Geometry& geometry() const noexcept { return geom_; }

  [[nodiscard]] bool is_busy(NodeId n) const { return busy_[checked(n)] != 0; }
  [[nodiscard]] bool is_busy(Coord c) const { return is_busy(geom_.id(c)); }

  [[nodiscard]] std::int32_t free_count() const noexcept { return free_; }
  [[nodiscard]] std::int32_t busy_count() const noexcept { return geom_.nodes() - free_; }

  /// Marks a single node allocated. Precondition: currently free.
  void allocate(NodeId n);
  /// Marks a single node free. Precondition: currently busy.
  void release(NodeId n);

  /// Marks all nodes of `s` allocated. Precondition: all free.
  void allocate(const SubMesh& s);
  /// Marks all nodes of `s` free. Precondition: all busy.
  void release(const SubMesh& s);

  /// True if every node of `s` is free (s must lie inside the mesh).
  [[nodiscard]] bool all_free(const SubMesh& s) const;

  /// Frees every node (fresh replication).
  void clear();

  /// Row-major list of free node ids (Paging(0) ground truth / diagnostics).
  [[nodiscard]] std::vector<NodeId> free_nodes() const;

  /// free_nodes() into a caller-owned buffer (cleared first) so hot paths can
  /// reuse one allocation across calls.
  void free_nodes_into(std::vector<NodeId>& out) const;

 private:
  [[nodiscard]] std::size_t checked(NodeId n) const;

  Geometry geom_;
  std::vector<std::uint8_t> busy_;
  std::int32_t free_;
};

}  // namespace procsim::mesh
