#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "des/rng.hpp"
#include "mesh/coord.hpp"
#include "network/traffic.hpp"
#include "workload/job.hpp"
#include "workload/paragon_model.hpp"
#include "workload/stochastic.hpp"
#include "workload/swf.hpp"
#include "workload/trace_replay.hpp"

namespace procsim::workload {

/// Pull-based job stream: the layer between the workload models and the DES
/// engine. The simulator asks for the next arrival instant, schedules it,
/// and materialises the job only when that instant fires — so a stream (an
/// SWF trace, an unbounded synthetic model) never has to exist as one eager
/// std::vector<Job>.
///
/// Contract:
///   * `reset(seed)` restarts the stream for one replication. Replication k
///     of an experiment passes `des::substream_seed(base, k)` (the same
///     derivation `run_replicated` uses), so serial and threaded replications
///     see bit-identical streams.
///   * `peek_arrival()` is the arrival time of the job `next_job()` will
///     return, without consuming it; nullopt once the stream is exhausted.
///   * Arrivals are non-decreasing. Job ids are unique within a stream.
///   * All randomness derives from the reset seed: two resets with the same
///     seed replay the identical stream.
class Source {
 public:
  virtual ~Source() = default;

  /// Canonical spec of this source — a string `make_source` accepts.
  [[nodiscard]] virtual const std::string& name() const noexcept = 0;

  /// False when the stream never exhausts on its own (an unbounded synthetic
  /// model): such a stream can be simulated (the completion target stops it)
  /// but never materialised into a vector.
  [[nodiscard]] virtual bool bounded() const noexcept { return true; }

  virtual void reset(std::uint64_t seed) = 0;
  [[nodiscard]] virtual std::optional<double> peek_arrival() = 0;
  [[nodiscard]] virtual std::optional<Job> next_job() = 0;
};

/// Implements peek via a one-job lookahead buffer over a `generate()` hook.
/// Generation order is strictly job-sequential (job i is fully sampled before
/// job i+1), so a buffered stream draws the exact RNG sequence the eager
/// vector builders drew — the property that keeps fixed-seed figure CSVs
/// byte-identical across the streaming rewire.
class BufferedSource : public Source {
 public:
  void reset(std::uint64_t seed) final {
    do_reset(seed);
    pending_ = generate();
  }
  [[nodiscard]] std::optional<double> peek_arrival() final {
    if (!pending_) return std::nullopt;
    return pending_->arrival;
  }
  [[nodiscard]] std::optional<Job> next_job() final {
    if (!pending_) return std::nullopt;
    std::optional<Job> out = std::move(pending_);
    pending_ = generate();
    return out;
  }

 protected:
  virtual void do_reset(std::uint64_t seed) = 0;
  /// Next job of the stream, nullopt when exhausted.
  [[nodiscard]] virtual std::optional<Job> generate() = 0;

 private:
  std::optional<Job> pending_;
};

/// Streams an existing job vector (tests, SystemSim's vector-run wrapper).
/// `reset` rewinds; the seed is ignored — the jobs are already frozen.
class VectorSource final : public BufferedSource {
 public:
  explicit VectorSource(const std::vector<Job>& jobs) : jobs_(&jobs) {
    reset(0);
  }
  [[nodiscard]] const std::string& name() const noexcept override { return name_; }

 protected:
  void do_reset(std::uint64_t) override { next_ = 0; }
  [[nodiscard]] std::optional<Job> generate() override {
    if (next_ >= jobs_->size()) return std::nullopt;
    return (*jobs_)[next_++];
  }

 private:
  const std::vector<Job>* jobs_;
  std::size_t next_{0};
  std::string name_{"vector"};
};

/// The paper's stochastic streams (uniform / exponential side distributions)
/// as a source. Emits exactly `count` jobs (0 = unbounded); draws the same
/// substream sequence as the eager `generate_stochastic`.
class StochasticSource final : public BufferedSource {
 public:
  StochasticSource(StochasticParams params, mesh::Geometry geom,
                   std::size_t count, std::string name);
  [[nodiscard]] const std::string& name() const noexcept override { return name_; }
  [[nodiscard]] bool bounded() const noexcept override { return count_ != 0; }

 protected:
  void do_reset(std::uint64_t seed) override;
  [[nodiscard]] std::optional<Job> generate() override;

 private:
  StochasticParams params_;
  mesh::Geometry geom_;
  std::size_t count_;
  std::string name_;
  des::Xoshiro256SS rng_{1};
  double t_{0};
  std::uint64_t next_id_{0};
};

/// Trace replay as a source: either a fixed record vector (an SWF file,
/// parsed once — optionally shared immutably across every replication and
/// sweep cell via workload::load_swf_file_shared) or the synthetic Paragon
/// model (regenerated from each reset seed, as the eager path did). When
/// `load > 0`, the arrival factor is derived from the trace's mean
/// inter-arrival per `arrival_factor_for_load`; otherwise
/// `replay.arrival_factor` applies as given.
class TraceSource final : public BufferedSource {
 public:
  /// Shares an already-parsed immutable trace (must be non-null).
  TraceSource(std::shared_ptr<const std::vector<TraceJob>> trace,
              TraceReplayParams replay, double load, mesh::Geometry geom,
              std::string name);
  TraceSource(std::vector<TraceJob> trace, TraceReplayParams replay, double load,
              mesh::Geometry geom, std::string name);
  TraceSource(ParagonModelParams model, TraceReplayParams replay, double load,
              mesh::Geometry geom, std::string name);
  [[nodiscard]] const std::string& name() const noexcept override { return name_; }

  /// Stats of the current trace (valid after reset; fixed-trace sources are
  /// valid from construction).
  [[nodiscard]] const TraceStats& stats() const noexcept { return stats_; }

 protected:
  void do_reset(std::uint64_t seed) override;
  [[nodiscard]] std::optional<Job> generate() override;

 private:
  /// Fixed traces alias the shared parse; the Paragon model re-points this
  /// at a freshly generated vector per reset. Never null after construction
  /// (model sources hold an empty trace until the first reset).
  std::shared_ptr<const std::vector<TraceJob>> trace_;
  std::optional<ParagonModelParams> model_;
  TraceReplayParams replay_;       ///< template; arrival factor set per reset
  TraceReplayParams active_;       ///< the replication's effective params
  double load_;
  mesh::Geometry geom_;
  std::string name_;
  TraceStats stats_;
  des::Xoshiro256SS rng_{1};
  std::size_t next_{0};
  std::size_t limit_{0};
};

/// Saturation stream: `count` jobs all arriving at time zero — the paper's
/// utilization-figure setup, where "the waiting queue is filled very early,
/// allowing each strategy to reach its upper limits of utilization". Job
/// shapes and message plans follow the stochastic model; only the arrival
/// process degenerates to a fully backlogged queue.
struct SaturationParams {
  std::size_t count{5000};
  SideDistribution side_dist{SideDistribution::kUniform};
  double mean_messages{5.0};
  std::int32_t packet_len{8};
  network::TrafficPattern pattern{network::TrafficPattern::kAllToAll};
};

class SaturationSource final : public BufferedSource {
 public:
  SaturationSource(SaturationParams params, mesh::Geometry geom, std::string name);
  [[nodiscard]] const std::string& name() const noexcept override { return name_; }

 protected:
  void do_reset(std::uint64_t seed) override;
  [[nodiscard]] std::optional<Job> generate() override;

 private:
  SaturationParams params_;
  mesh::Geometry geom_;
  std::string name_;
  des::Xoshiro256SS rng_{1};
  std::uint64_t next_id_{0};
};

/// Bursty (two-state MMPP) stream — a synthetic model beyond the paper.
/// Arrivals are Poisson with a rate that alternates between a high and a low
/// phase (geometric phase lengths with mean `phase_jobs` jobs). Rates are
/// chosen so the long-run arrival rate equals `load` for any `burst_ratio`:
/// the time-average of alternating equal-job-count phases is the harmonic
/// mean of the two rates, so r_low = load·(b+1)/(2b), r_high = b·r_low.
struct BurstyParams {
  double load{0.01};       ///< long-run jobs per time unit
  double burst_ratio{8};   ///< high-phase rate / low-phase rate (>= 1)
  double phase_jobs{32};   ///< mean jobs per phase before switching
  std::size_t count{1000};
  SideDistribution side_dist{SideDistribution::kUniform};
  double mean_messages{5.0};
  std::int32_t packet_len{8};
  network::TrafficPattern pattern{network::TrafficPattern::kAllToAll};
};

class BurstySource final : public BufferedSource {
 public:
  BurstySource(BurstyParams params, mesh::Geometry geom, std::string name);
  [[nodiscard]] const std::string& name() const noexcept override { return name_; }
  [[nodiscard]] bool bounded() const noexcept override { return params_.count != 0; }

 protected:
  void do_reset(std::uint64_t seed) override;
  [[nodiscard]] std::optional<Job> generate() override;

 private:
  BurstyParams params_;
  mesh::Geometry geom_;
  std::string name_;
  des::Xoshiro256SS rng_{1};
  double t_{0};
  bool high_{true};
  std::uint64_t next_id_{0};
};

}  // namespace procsim::workload
