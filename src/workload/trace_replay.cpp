#include "workload/trace_replay.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "des/distributions.hpp"
#include "workload/shape.hpp"

namespace procsim::workload {

double arrival_factor_for_load(double load, double trace_mean_interarrival) {
  if (load <= 0) throw std::invalid_argument("arrival_factor_for_load: load must be > 0");
  // Degenerate trace (empty or single job): no inter-arrival information to
  // rescale, so replay at the recorded (trivial) arrival times.
  if (!std::isfinite(trace_mean_interarrival) || trace_mean_interarrival <= 0) return 1.0;
  return 1.0 / (load * trace_mean_interarrival);
}

Job make_trace_job(const TraceJob& rec, std::uint64_t index,
                   const TraceReplayParams& params, const mesh::Geometry& geom,
                   des::Xoshiro256SS& rng) {
  Job job;
  job.id = index;
  job.arrival = rec.submit * params.arrival_factor;
  job.processors = std::clamp(rec.processors, 1, geom.nodes());
  const auto [a, b] = shape_for_processors(job.processors, geom);
  job.width = a;
  job.length = b;
  job.trace_runtime = rec.runtime;
  job.demand = rec.runtime;  // SSD orders by recorded execution time

  const double mean_msgs =
      std::clamp(rec.runtime / params.runtime_scale, 1.0,
                 static_cast<double>(params.max_messages));
  const std::int64_t messages =
      std::min(des::sample_exponential_count(rng, mean_msgs), params.max_messages);
  job.message_plan =
      network::generate_message_plan(params.pattern, job.processors, messages, rng);
  return job;
}

std::vector<Job> make_trace_jobs(const std::vector<TraceJob>& trace,
                                 const TraceReplayParams& params,
                                 const mesh::Geometry& geom, des::Xoshiro256SS& rng) {
  if (params.arrival_factor <= 0)
    throw std::invalid_argument("make_trace_jobs: arrival_factor must be > 0");
  const std::size_t count =
      params.prefix == 0 ? trace.size() : std::min(params.prefix, trace.size());

  std::vector<Job> jobs;
  jobs.reserve(count);
  for (std::size_t i = 0; i < count; ++i)
    jobs.push_back(make_trace_job(trace[i], i, params, geom, rng));
  return jobs;
}

}  // namespace procsim::workload
