#pragma once

#include <cstdint>
#include <vector>

#include "des/rng.hpp"
#include "mesh/coord.hpp"
#include "network/traffic.hpp"
#include "workload/job.hpp"

namespace procsim::workload {

/// Side-length distributions of the paper's stochastic workload.
enum class SideDistribution {
  kUniform,      ///< width ~ U[1, W], length ~ U[1, L], independent
  kExponential,  ///< exponential with mean W/2 (resp. L/2), clamped to [1, side]
};

[[nodiscard]] const char* to_string(SideDistribution d) noexcept;

/// Parameters of the stochastic job stream (paper §5): exponential
/// inter-arrival times with rate `load` (the "system load" axis of every
/// figure), request sides from `side_dist`, and a per-job message count
/// Exp(mean_messages) — num_mes = 5 packets in all main experiments.
struct StochasticParams {
  double load{0.01};  ///< jobs per time unit; mean inter-arrival = 1/load
  SideDistribution side_dist{SideDistribution::kUniform};
  double mean_messages{5.0};   ///< num_mes: mean packets per job
  std::int32_t packet_len{8};  ///< flits; demand = total messages * packet_len
  network::TrafficPattern pattern{network::TrafficPattern::kAllToAll};
};

/// Samples the single next job of a stochastic stream: advances `t` by an
/// exponential inter-arrival, then freezes shape, message plan and demand.
/// `generate_stochastic` and the streaming `StochasticSource` both lower onto
/// this, so the two paths draw the identical RNG sequence.
[[nodiscard]] Job next_stochastic_job(const StochasticParams& params,
                                      const mesh::Geometry& geom,
                                      des::Xoshiro256SS& rng, double& t,
                                      std::uint64_t id);

/// Generates the next `count` jobs of a stochastic stream starting at time
/// `start`. Each job's shape and message counts are frozen here; demand is
/// the total flit count (what SSD can know before running the job).
[[nodiscard]] std::vector<Job> generate_stochastic(const StochasticParams& params,
                                                   const mesh::Geometry& geom,
                                                   std::size_t count,
                                                   des::Xoshiro256SS& rng,
                                                   double start = 0,
                                                   std::uint64_t first_id = 0);

}  // namespace procsim::workload
