#include "workload/shape.hpp"

#include <limits>
#include <stdexcept>

namespace procsim::workload {

std::pair<std::int32_t, std::int32_t> shape_for_processors(std::int32_t p,
                                                           const mesh::Geometry& geom) {
  if (p <= 0) throw std::invalid_argument("shape_for_processors: p must be positive");
  if (p > geom.nodes())
    throw std::invalid_argument("shape_for_processors: p exceeds mesh size");

  std::int64_t best_area = std::numeric_limits<std::int64_t>::max();
  std::int32_t best_perim = std::numeric_limits<std::int32_t>::max();
  std::pair<std::int32_t, std::int32_t> best{geom.width(), geom.length()};
  for (std::int32_t a = 1; a <= geom.width(); ++a) {
    const std::int32_t b_min = static_cast<std::int32_t>((p + a - 1) / a);
    if (b_min > geom.length()) continue;
    const std::int64_t area = static_cast<std::int64_t>(a) * b_min;
    const std::int32_t perim = a + b_min;
    if (area < best_area || (area == best_area && perim < best_perim)) {
      best_area = area;
      best_perim = perim;
      best = {a, b_min};
    }
  }
  return best;
}

}  // namespace procsim::workload
