#include "workload/source.hpp"

#include <stdexcept>
#include <utility>

#include "des/distributions.hpp"

namespace procsim::workload {

// ------------------------------------------------------------- stochastic

StochasticSource::StochasticSource(StochasticParams params, mesh::Geometry geom,
                                   std::size_t count, std::string name)
    : params_(params), geom_(geom), count_(count), name_(std::move(name)) {
  if (params_.load <= 0)
    throw std::invalid_argument("StochasticSource: load must be > 0");
}

void StochasticSource::do_reset(std::uint64_t seed) {
  rng_ = des::Xoshiro256SS{seed};
  t_ = 0;
  next_id_ = 0;
}

std::optional<Job> StochasticSource::generate() {
  if (count_ != 0 && next_id_ >= count_) return std::nullopt;
  return next_stochastic_job(params_, geom_, rng_, t_, next_id_++);
}

// ------------------------------------------------------------------ trace

TraceSource::TraceSource(std::shared_ptr<const std::vector<TraceJob>> trace,
                         TraceReplayParams replay, double load, mesh::Geometry geom,
                         std::string name)
    : trace_(std::move(trace)),
      replay_(replay),
      active_(replay),
      load_(load),
      geom_(geom),
      name_(std::move(name)) {
  if (!trace_) throw std::invalid_argument("TraceSource: null shared trace");
  stats_ = compute_stats(*trace_);
}

TraceSource::TraceSource(std::vector<TraceJob> trace, TraceReplayParams replay,
                         double load, mesh::Geometry geom, std::string name)
    : TraceSource(std::make_shared<const std::vector<TraceJob>>(std::move(trace)),
                  replay, load, geom, std::move(name)) {}

TraceSource::TraceSource(ParagonModelParams model, TraceReplayParams replay,
                         double load, mesh::Geometry geom, std::string name)
    : trace_(std::make_shared<const std::vector<TraceJob>>()),
      model_(model),
      replay_(replay),
      active_(replay),
      load_(load),
      geom_(geom),
      name_(std::move(name)) {}

void TraceSource::do_reset(std::uint64_t seed) {
  rng_ = des::Xoshiro256SS{seed};
  if (model_) {
    // The synthetic trace is itself part of the replication's randomness:
    // regenerate it from the replication seed, exactly as the eager path did.
    trace_ = std::make_shared<const std::vector<TraceJob>>(
        generate_paragon_trace(*model_, rng_));
    stats_ = compute_stats(*trace_);
  }
  active_ = replay_;
  if (load_ > 0 && stats_.mean_interarrival > 0)
    active_.arrival_factor = arrival_factor_for_load(load_, stats_.mean_interarrival);
  if (active_.arrival_factor <= 0)
    throw std::invalid_argument("TraceSource: arrival_factor must be > 0");
  next_ = 0;
  limit_ = active_.prefix == 0 ? trace_->size()
                               : std::min(active_.prefix, trace_->size());
}

std::optional<Job> TraceSource::generate() {
  if (next_ >= limit_) return std::nullopt;
  const std::size_t i = next_++;
  return make_trace_job((*trace_)[i], i, active_, geom_, rng_);
}

// ------------------------------------------------------------- saturation

SaturationSource::SaturationSource(SaturationParams params, mesh::Geometry geom,
                                   std::string name)
    : params_(params), geom_(geom), name_(std::move(name)) {
  if (params_.count == 0)
    throw std::invalid_argument("SaturationSource: count must be > 0");
}

void SaturationSource::do_reset(std::uint64_t seed) {
  rng_ = des::Xoshiro256SS{seed};
  next_id_ = 0;
}

std::optional<Job> SaturationSource::generate() {
  if (next_id_ >= params_.count) return std::nullopt;
  // A stochastic job minus the arrival draw: the whole backlog is present at
  // time zero, so the queue is full before the first completion.
  StochasticParams p;
  p.load = 1;  // unused: no inter-arrival is drawn
  p.side_dist = params_.side_dist;
  p.mean_messages = params_.mean_messages;
  p.packet_len = params_.packet_len;
  p.pattern = params_.pattern;
  // Reuse the canonical sampling helper to keep side/message semantics in one
  // place: draw a full stochastic job, then zero its arrival (the unit-rate
  // inter-arrival draw is discarded — every job arrives at t = 0).
  double t = 0;
  Job job = next_stochastic_job(p, geom_, rng_, t, next_id_++);
  job.arrival = 0;
  return job;
}

// ----------------------------------------------------------------- bursty

BurstySource::BurstySource(BurstyParams params, mesh::Geometry geom, std::string name)
    : params_(params), geom_(geom), name_(std::move(name)) {
  if (params_.load <= 0) throw std::invalid_argument("BurstySource: load must be > 0");
  if (params_.burst_ratio < 1)
    throw std::invalid_argument("BurstySource: burst_ratio must be >= 1");
  if (params_.phase_jobs < 1)
    throw std::invalid_argument("BurstySource: phase_jobs must be >= 1");
}

void BurstySource::do_reset(std::uint64_t seed) {
  rng_ = des::Xoshiro256SS{seed};
  t_ = 0;
  high_ = true;
  next_id_ = 0;
}

std::optional<Job> BurstySource::generate() {
  if (params_.count != 0 && next_id_ >= params_.count) return std::nullopt;
  // Alternating equal-mean-length phases: the long-run rate is the harmonic
  // mean of the two phase rates, pinned to `load` by construction.
  const double b = params_.burst_ratio;
  const double rate_low = params_.load * (b + 1) / (2 * b);
  const double rate = high_ ? b * rate_low : rate_low;
  StochasticParams p;
  p.load = rate;
  p.side_dist = params_.side_dist;
  p.mean_messages = params_.mean_messages;
  p.packet_len = params_.packet_len;
  p.pattern = params_.pattern;
  Job job = next_stochastic_job(p, geom_, rng_, t_, next_id_++);
  if (des::sample_bernoulli(rng_, 1.0 / params_.phase_jobs)) high_ = !high_;
  return job;
}

}  // namespace procsim::workload
