#pragma once

#include <cstdint>
#include <utility>

#include "mesh/coord.hpp"

namespace procsim::workload {

/// Maps a trace job's processor count to a requested sub-mesh (a, b):
/// the smallest-area a×b >= p that fits in the mesh, preferring the most
/// square shape (smallest perimeter) among equals. Trace files record only
/// "p processors"; contiguity-seeking strategies (GABL, the contiguous
/// baselines) need a shape, and near-square minimises path lengths.
[[nodiscard]] std::pair<std::int32_t, std::int32_t> shape_for_processors(
    std::int32_t p, const mesh::Geometry& geom);

}  // namespace procsim::workload
