#include "workload/swf.hpp"

#include <bit>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace procsim::workload {

TraceStats compute_stats(const std::vector<TraceJob>& jobs) {
  TraceStats s;
  s.jobs = jobs.size();
  if (jobs.empty()) return s;
  double size_sum = 0;
  double run_sum = 0;
  std::size_t pow2 = 0;
  for (const TraceJob& j : jobs) {
    size_sum += j.processors;
    run_sum += j.runtime;
    if (std::has_single_bit(static_cast<std::uint32_t>(j.processors))) ++pow2;
    if (j.processors > s.max_size) s.max_size = j.processors;
  }
  s.mean_size = size_sum / static_cast<double>(jobs.size());
  s.mean_runtime = run_sum / static_cast<double>(jobs.size());
  s.power_of_two_fraction = static_cast<double>(pow2) / static_cast<double>(jobs.size());
  if (jobs.size() > 1) {
    // Jobs are in submit order in a well-formed trace; be robust to noise.
    double first = jobs.front().submit;
    double last = first;
    for (const TraceJob& j : jobs) {
      if (j.submit < first) first = j.submit;
      if (j.submit > last) last = j.submit;
    }
    s.mean_interarrival = (last - first) / static_cast<double>(jobs.size() - 1);
  }
  return s;
}

std::vector<TraceJob> parse_swf(std::istream& in, std::int32_t max_processors) {
  std::vector<TraceJob> jobs;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == ';') continue;
    std::istringstream fields(line);
    double field[18];
    int n = 0;
    while (n < 18 && (fields >> field[n])) ++n;
    if (n < 5) continue;  // malformed record

    TraceJob j;
    j.submit = field[1];
    j.runtime = field[3];
    const double used = field[4];
    const double requested = n > 7 ? field[7] : -1;
    const double proc_field = requested > 0 ? requested : used;
    if (proc_field <= 0) continue;
    j.processors = static_cast<std::int32_t>(proc_field);
    if (j.runtime < 0 && n > 8 && field[8] > 0) j.runtime = field[8];
    if (j.submit < 0 || j.runtime < 0) continue;
    if (max_processors > 0 && j.processors > max_processors) continue;
    jobs.push_back(j);
  }
  return jobs;
}

std::vector<TraceJob> load_swf_file(const std::string& path, std::int32_t max_processors) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_swf_file: cannot open " + path);
  return parse_swf(in, max_processors);
}

namespace {

/// The process-wide parse cache. Guarded by a mutex: parallel sweep cells
/// and replication workers construct sources concurrently. Parsing happens
/// under the lock on purpose — two racing first loads of a big archive
/// parsing it twice would cost more than the brief serialisation.
struct SwfCache {
  std::mutex mu;
  std::map<std::pair<std::string, std::int32_t>,
           std::shared_ptr<const std::vector<TraceJob>>>
      entries;
  std::uint64_t hits{0};
};

SwfCache& swf_cache() {
  static SwfCache cache;
  return cache;
}

}  // namespace

std::shared_ptr<const std::vector<TraceJob>> load_swf_file_shared(
    const std::string& path, std::int32_t max_processors) {
  SwfCache& cache = swf_cache();
  const std::scoped_lock lock(cache.mu);
  const auto key = std::make_pair(path, max_processors);
  if (const auto it = cache.entries.find(key); it != cache.entries.end()) {
    ++cache.hits;
    return it->second;
  }
  auto trace =
      std::make_shared<const std::vector<TraceJob>>(load_swf_file(path, max_processors));
  cache.entries.emplace(key, trace);
  return trace;
}

SwfCacheStats swf_cache_stats() {
  SwfCache& cache = swf_cache();
  const std::scoped_lock lock(cache.mu);
  return SwfCacheStats{cache.entries.size(), cache.hits};
}

void clear_swf_cache() {
  SwfCache& cache = swf_cache();
  const std::scoped_lock lock(cache.mu);
  cache.entries.clear();
  cache.hits = 0;
}

}  // namespace procsim::workload
