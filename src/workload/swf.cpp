#include "workload/swf.hpp"

#include <bit>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace procsim::workload {

TraceStats compute_stats(const std::vector<TraceJob>& jobs) {
  TraceStats s;
  s.jobs = jobs.size();
  if (jobs.empty()) return s;
  double size_sum = 0;
  double run_sum = 0;
  std::size_t pow2 = 0;
  for (const TraceJob& j : jobs) {
    size_sum += j.processors;
    run_sum += j.runtime;
    if (std::has_single_bit(static_cast<std::uint32_t>(j.processors))) ++pow2;
    if (j.processors > s.max_size) s.max_size = j.processors;
  }
  s.mean_size = size_sum / static_cast<double>(jobs.size());
  s.mean_runtime = run_sum / static_cast<double>(jobs.size());
  s.power_of_two_fraction = static_cast<double>(pow2) / static_cast<double>(jobs.size());
  if (jobs.size() > 1) {
    // Jobs are in submit order in a well-formed trace; be robust to noise.
    double first = jobs.front().submit;
    double last = first;
    for (const TraceJob& j : jobs) {
      if (j.submit < first) first = j.submit;
      if (j.submit > last) last = j.submit;
    }
    s.mean_interarrival = (last - first) / static_cast<double>(jobs.size() - 1);
  }
  return s;
}

std::vector<TraceJob> parse_swf(std::istream& in, std::int32_t max_processors) {
  std::vector<TraceJob> jobs;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == ';') continue;
    std::istringstream fields(line);
    double field[18];
    int n = 0;
    while (n < 18 && (fields >> field[n])) ++n;
    if (n < 5) continue;  // malformed record

    TraceJob j;
    j.submit = field[1];
    j.runtime = field[3];
    const double used = field[4];
    const double requested = n > 7 ? field[7] : -1;
    const double proc_field = requested > 0 ? requested : used;
    if (proc_field <= 0) continue;
    j.processors = static_cast<std::int32_t>(proc_field);
    if (j.runtime < 0 && n > 8 && field[8] > 0) j.runtime = field[8];
    if (j.submit < 0 || j.runtime < 0) continue;
    if (max_processors > 0 && j.processors > max_processors) continue;
    jobs.push_back(j);
  }
  return jobs;
}

std::vector<TraceJob> load_swf_file(const std::string& path, std::int32_t max_processors) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_swf_file: cannot open " + path);
  return parse_swf(in, max_processors);
}

}  // namespace procsim::workload
