#pragma once

#include <cstdint>
#include <istream>
#include <memory>
#include <string>
#include <vector>

namespace procsim::workload {

/// One record of a Standard Workload Format (SWF) trace, reduced to the
/// fields the paper's methodology uses: "Our real workload trace uses the
/// arrival times, job execution times and job sizes."
struct TraceJob {
  double submit{0};          ///< seconds since trace start
  double runtime{0};         ///< recorded execution time, seconds
  std::int32_t processors{1};
};

/// Summary statistics of a trace (compare against the paper's published
/// characterisation of the SDSC Paragon stream).
struct TraceStats {
  std::size_t jobs{0};
  double mean_interarrival{0};
  double mean_size{0};
  double mean_runtime{0};
  double power_of_two_fraction{0};
  std::int32_t max_size{0};
};

[[nodiscard]] TraceStats compute_stats(const std::vector<TraceJob>& jobs);

/// Parses the Standard Workload Format of the Feitelson Parallel Workloads
/// Archive: ';'-prefixed header comments, then whitespace-separated records
///   1 job#  2 submit  3 wait  4 run  5 used-procs  6 avg-cpu  7 used-mem
///   8 req-procs  9 req-time  10 req-mem  11 status  12 uid  13 gid
///   14 exe  15 queue  16 partition  17 preceding-job  18 think-time
/// Processor count prefers field 8 (requested), falling back to field 5;
/// runtime prefers field 4, falling back to field 9. Jobs lacking a usable
/// size or with negative submit/run times are skipped. `max_processors`
/// drops jobs too large for the simulated partition (0 = keep all), the
/// paper's "taken only from the 352 nodes".
[[nodiscard]] std::vector<TraceJob> parse_swf(std::istream& in,
                                              std::int32_t max_processors = 0);

/// Convenience file-loading wrapper; throws std::runtime_error when the file
/// cannot be opened.
[[nodiscard]] std::vector<TraceJob> load_swf_file(const std::string& path,
                                                  std::int32_t max_processors = 0);

/// Loads an SWF file through a process-wide, thread-safe cache keyed by
/// (path, max_processors): each distinct file is parsed once and the
/// immutable record vector is shared by every replication — and every cell
/// of a sweep — that replays it, instead of re-reading the archive per
/// replication. Entries live for the process lifetime (sweeps replay the
/// same handful of fixed archives); the cache assumes trace files do not
/// change underneath a running experiment. Throws like load_swf_file.
[[nodiscard]] std::shared_ptr<const std::vector<TraceJob>> load_swf_file_shared(
    const std::string& path, std::int32_t max_processors = 0);

/// Cache observability (tests, diagnostics).
struct SwfCacheStats {
  std::size_t entries{0};  ///< distinct (path, max_processors) keys parsed
  std::uint64_t hits{0};   ///< shared loads answered without re-parsing
};
[[nodiscard]] SwfCacheStats swf_cache_stats();

/// Drops every cached trace (test isolation hook).
void clear_swf_cache();

}  // namespace procsim::workload
