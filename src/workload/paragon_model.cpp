#include "workload/paragon_model.hpp"

#include <algorithm>
#include <array>

#include "des/distributions.hpp"

namespace procsim::workload {
namespace {

/// Job-size mixture: piecewise-uniform buckets tuned so the mean lands near
/// the published 34.5 nodes with most mass on small, non-power-of-two sizes
/// (uniform ranges make exact powers of two rare). The shape mirrors the
/// published characterisation of the SDSC Paragon stream: mostly small jobs,
/// a thin tail reaching the full 352-node partition.
struct Bucket {
  double weight;
  std::int32_t lo;
  std::int32_t hi;
};
constexpr std::array<Bucket, 6> kSizeBuckets = {{
    {0.28, 1, 8},
    {0.24, 9, 16},
    {0.20, 17, 32},
    {0.16, 33, 64},
    {0.09, 65, 128},
    {0.03, 129, 256},
}};

}  // namespace

std::vector<TraceJob> generate_paragon_trace(const ParagonModelParams& params,
                                             des::Xoshiro256SS& rng) {
  std::array<double, kSizeBuckets.size()> weights{};
  for (std::size_t i = 0; i < kSizeBuckets.size(); ++i) weights[i] = kSizeBuckets[i].weight;

  std::vector<TraceJob> jobs;
  jobs.reserve(params.jobs);
  double t = 0;
  for (std::size_t i = 0; i < params.jobs; ++i) {
    t += des::sample_exponential(rng, params.mean_interarrival);
    const Bucket& b = kSizeBuckets[des::sample_discrete(rng, weights)];
    TraceJob j;
    j.submit = t;
    j.processors = std::min(
        static_cast<std::int32_t>(des::sample_uniform_int(rng, b.lo, b.hi)),
        params.max_processors);
    j.runtime = des::sample_lognormal(rng, params.runtime_mu, params.runtime_sigma);
    jobs.push_back(j);
  }
  return jobs;
}

}  // namespace procsim::workload
