#include "workload/stochastic.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "des/distributions.hpp"

namespace procsim::workload {

const char* to_string(SideDistribution d) noexcept {
  switch (d) {
    case SideDistribution::kUniform: return "uniform";
    case SideDistribution::kExponential: return "exponential";
  }
  return "?";
}

namespace {

[[nodiscard]] std::int32_t sample_side(des::Xoshiro256SS& rng, SideDistribution dist,
                                       std::int32_t extent) {
  switch (dist) {
    case SideDistribution::kUniform:
      return static_cast<std::int32_t>(des::sample_uniform_int(rng, 1, extent));
    case SideDistribution::kExponential: {
      // Mean of half the side, rounded, clamped into [1, extent] — the
      // clamping follows the literature's use of truncated exponentials.
      const double x = des::sample_exponential(rng, static_cast<double>(extent) / 2.0);
      return std::clamp(static_cast<std::int32_t>(std::lround(x)), 1, extent);
    }
  }
  throw std::logic_error("sample_side: bad distribution");
}

}  // namespace

Job next_stochastic_job(const StochasticParams& params, const mesh::Geometry& geom,
                        des::Xoshiro256SS& rng, double& t, std::uint64_t id) {
  if (params.load <= 0) throw std::invalid_argument("next_stochastic_job: load must be > 0");
  t += des::sample_exponential(rng, 1.0 / params.load);
  Job job;
  job.id = id;
  job.arrival = t;
  job.width = sample_side(rng, params.side_dist, geom.width());
  job.length = sample_side(rng, params.side_dist, geom.length());
  job.processors = job.width * job.length;
  const std::int64_t messages = des::sample_exponential_count(rng, params.mean_messages);
  job.message_plan =
      network::generate_message_plan(params.pattern, job.processors, messages, rng);
  job.demand =
      static_cast<double>(job.total_messages()) * static_cast<double>(params.packet_len);
  return job;
}

std::vector<Job> generate_stochastic(const StochasticParams& params,
                                     const mesh::Geometry& geom, std::size_t count,
                                     des::Xoshiro256SS& rng, double start,
                                     std::uint64_t first_id) {
  if (params.load <= 0) throw std::invalid_argument("generate_stochastic: load must be > 0");
  std::vector<Job> jobs;
  jobs.reserve(count);
  double t = start;
  for (std::size_t i = 0; i < count; ++i)
    jobs.push_back(next_stochastic_job(params, geom, rng, t, first_id + i));
  return jobs;
}

}  // namespace procsim::workload
