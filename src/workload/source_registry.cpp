#include "workload/source_registry.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <initializer_list>
#include <stdexcept>

#include "util/strings.hpp"

namespace procsim::workload {

namespace {

[[nodiscard]] std::string to_lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return out;
}

constexpr const char* kKinds[] = {"uniform", "exponential", "real",
                                  "swf",     "saturation",  "bursty"};

[[nodiscard]] std::string known_list() {
  std::string out;
  for (const std::string& k : known_sources()) {
    if (!out.empty()) out += ", ";
    out += k;
  }
  return out;
}

[[noreturn]] void fail(const std::string& msg) {
  throw std::invalid_argument("make_source: " + msg + " (known sources: " +
                              known_list() + ")");
}

/// Typed access to the parsed key/value options, tracking which keys each
/// kind consumed so leftovers fail fast.
class Options {
 public:
  explicit Options(const SourceSpec& spec) : spec_(spec), unused_(spec.params) {}

  [[nodiscard]] double number(const std::string& key, double fallback,
                              double min_exclusive) {
    const auto it = spec_.params.find(key);
    if (it == spec_.params.end()) return fallback;
    unused_.erase(key);
    char* end = nullptr;
    const double v = std::strtod(it->second.c_str(), &end);
    if (end == it->second.c_str() || *end != '\0' || !(v > min_exclusive))
      fail("bad value '" + it->second + "' for key '" + key + "' in '" +
           spec_.canonical + "'");
    return v;
  }

  [[nodiscard]] std::size_t count(const std::string& key, std::size_t fallback) {
    const double v = number(key, static_cast<double>(fallback), -1);
    if (v < 0 || v != static_cast<double>(static_cast<std::size_t>(v)))
      fail("key '" + key + "' must be a non-negative integer in '" +
           spec_.canonical + "'");
    return static_cast<std::size_t>(v);
  }

  [[nodiscard]] SideDistribution dist(const std::string& key,
                                      SideDistribution fallback) {
    const auto it = spec_.params.find(key);
    if (it == spec_.params.end()) return fallback;
    unused_.erase(key);
    if (util::iequals(it->second, "uniform")) return SideDistribution::kUniform;
    if (util::iequals(it->second, "exponential"))
      return SideDistribution::kExponential;
    fail("bad side distribution '" + it->second + "' (uniform | exponential)");
  }

  [[nodiscard]] bool has(const std::string& key) const {
    return spec_.params.contains(key);
  }

  /// Every key the kind did not consume is a spec error.
  void finish() const {
    if (unused_.empty()) return;
    std::string keys;
    for (const auto& [k, v] : unused_) {
      if (!keys.empty()) keys += ", ";
      keys += k;
    }
    fail("unknown key(s) for '" + spec_.kind + "': " + keys);
  }

 private:
  const SourceSpec& spec_;
  std::map<std::string, std::string> unused_;
};

}  // namespace

std::optional<SourceSpec> parse_source_spec(std::string_view spec) {
  SourceSpec out;
  std::size_t pos = 0;
  bool head = true;
  while (pos <= spec.size()) {
    const std::size_t sep = std::min(spec.find(';', pos), spec.size());
    const std::string_view token = spec.substr(pos, sep - pos);
    if (head) {
      const std::size_t colon = token.find(':');
      out.kind = to_lower(token.substr(0, colon));
      if (colon != std::string_view::npos) out.arg = token.substr(colon + 1);
      head = false;
    } else if (!token.empty()) {
      const std::size_t eq = token.find('=');
      if (eq == std::string_view::npos || eq == 0 || eq + 1 > token.size())
        return std::nullopt;
      const std::string key = to_lower(token.substr(0, eq));
      const std::string value{token.substr(eq + 1)};
      if (value.empty() || !out.params.emplace(key, value).second)
        return std::nullopt;  // empty or duplicate key
    }
    pos = sep + 1;
  }

  if (std::find_if(std::begin(kKinds), std::end(kKinds), [&](const char* k) {
        return out.kind == k;
      }) == std::end(kKinds))
    return std::nullopt;
  if (out.kind == "swf" ? out.arg.empty() : !out.arg.empty()) return std::nullopt;

  out.canonical = out.kind;
  if (!out.arg.empty()) out.canonical += ":" + out.arg;
  for (const auto& [k, v] : out.params) out.canonical += ";" + k + "=" + v;
  return out;
}

std::vector<std::string> known_sources() {
  std::vector<std::string> out;
  for (const char* k : kKinds)
    out.emplace_back(std::string(k) == "swf" ? "swf:<path>" : k);
  return out;
}

std::unique_ptr<Source> make_source(const std::string& spec,
                                    const mesh::Geometry& geom,
                                    const SourceOverrides& overrides) {
  const auto parsed = parse_source_spec(spec);
  if (!parsed) fail("bad source spec '" + spec + "'");
  Options opts(*parsed);

  // Driver overrides fill the defaults; explicit spec keys win over both.
  const double load0 = overrides.load > 0 ? overrides.load : 0.01;
  const std::int32_t plen = overrides.packet_len > 0 ? overrides.packet_len : 8;

  if (parsed->kind == "uniform" || parsed->kind == "exponential") {
    StochasticParams p;
    p.side_dist = parsed->kind == "uniform" ? SideDistribution::kUniform
                                            : SideDistribution::kExponential;
    p.load = opts.number("load", load0, 0);
    p.mean_messages = opts.number("mes", 5.0, 0);
    p.packet_len = plen;
    const std::size_t count =
        opts.count("jobs", overrides.count ? overrides.count : 1000);
    opts.finish();
    return std::make_unique<StochasticSource>(p, geom, count, parsed->canonical);
  }

  if (parsed->kind == "real" || parsed->kind == "swf") {
    TraceReplayParams replay;
    replay.prefix = opts.count("jobs", overrides.count);
    double load = opts.number("load", load0, 0);
    if (opts.has("f")) {
      replay.arrival_factor = opts.number("f", 1.0, 0);
      load = 0;  // an explicit factor disables the load-derived one
    }
    opts.finish();
    if (parsed->kind == "real")
      return std::make_unique<TraceSource>(ParagonModelParams{}, replay, load, geom,
                                           parsed->canonical);
    // Shared parse: every replication (and sweep cell) replaying this file
    // aliases one immutable record vector instead of re-reading the archive.
    return std::make_unique<TraceSource>(
        load_swf_file_shared(parsed->arg, geom.nodes()), replay, load, geom,
        parsed->canonical);
  }

  if (parsed->kind == "saturation") {
    SaturationParams p;
    p.count = opts.count("n", overrides.count ? overrides.count : p.count);
    p.side_dist = opts.dist("dist", p.side_dist);
    p.mean_messages = opts.number("mes", p.mean_messages, 0);
    p.packet_len = plen;
    opts.finish();
    if (p.count == 0) fail("saturation needs n > 0");
    return std::make_unique<SaturationSource>(p, geom, parsed->canonical);
  }

  if (parsed->kind == "bursty") {
    BurstyParams p;
    p.load = opts.number("load", load0, 0);
    p.burst_ratio = opts.number("b", p.burst_ratio, 0);
    p.phase_jobs = opts.number("phase", p.phase_jobs, 0);
    p.count = opts.count("jobs", overrides.count ? overrides.count : p.count);
    p.side_dist = opts.dist("dist", p.side_dist);
    p.mean_messages = opts.number("mes", p.mean_messages, 0);
    p.packet_len = plen;
    opts.finish();
    return std::make_unique<BurstySource>(p, geom, parsed->canonical);
  }

  fail("unhandled source kind '" + parsed->kind + "'");
}

}  // namespace procsim::workload
