#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "mesh/coord.hpp"
#include "workload/source.hpp"

namespace procsim::workload {

/// A workload-source spec, parsed. Grammar (mirrors the alloc/sched
/// registries' fail-fast name style, extended with options):
///
///   spec  := kind [":" arg] (";" key "=" value)*
///   kind  := "uniform" | "exponential" | "real" | "swf" | "saturation"
///            | "bursty"
///
/// `arg` is the SWF file path (required for, and exclusive to, "swf").
/// Keys are kind-specific; unknown kinds/keys/values fail to parse:
///   uniform|exponential : load, jobs, mes
///   real                : load, jobs, f
///   swf:<path>          : load, jobs, f
///   saturation          : n, dist, mes
///   bursty              : load, jobs, b, phase, dist, mes
/// where `jobs` caps the stream length (trace kinds: replay prefix), `mes` is
/// the mean message count, `f` pins the trace arrival factor (disabling the
/// load-derived factor), `n` the saturation backlog size, `b` the burst
/// ratio, `phase` the mean jobs per burst phase and `dist` a side
/// distribution name (uniform | exponential).
struct SourceSpec {
  std::string kind;
  std::string arg;                          ///< swf path, empty otherwise
  std::map<std::string, std::string> params;
  std::string canonical;                    ///< normalized spelling of the spec
};

/// Driver-level knobs applied where the spec does not pin them: an explicit
/// spec key always wins over an override (a spec that says `load=0.02` means
/// it, even on a `--loads` sweep axis). Zero means "not set".
struct SourceOverrides {
  double load{0};
  std::size_t count{0};
  std::int32_t packet_len{0};
};

/// Case-insensitive parse of a source spec; nullopt when the kind is unknown
/// or the option syntax is malformed (key/value validation happens in
/// make_source, which can report the offending kind).
[[nodiscard]] std::optional<SourceSpec> parse_source_spec(std::string_view spec);

/// The spec kinds make_source accepts ("swf" listed as "swf:<path>").
[[nodiscard]] std::vector<std::string> known_sources();

/// Spec-based factory for drivers and sweeps; guarantees
/// make_source(spec, ...)->name() is itself an accepted spec. Throws
/// std::invalid_argument (listing the known kinds) when `spec` doesn't parse
/// or pins an unknown key / bad value, and std::runtime_error when an SWF
/// file cannot be opened.
[[nodiscard]] std::unique_ptr<Source> make_source(const std::string& spec,
                                                  const mesh::Geometry& geom,
                                                  const SourceOverrides& overrides = {});

}  // namespace procsim::workload
