#pragma once

#include <cstdint>
#include <vector>

#include "des/rng.hpp"
#include "mesh/coord.hpp"
#include "network/traffic.hpp"
#include "workload/job.hpp"
#include "workload/swf.hpp"

namespace procsim::workload {

/// How trace records become simulator jobs.
struct TraceReplayParams {
  /// Arrival-time multiplier f (paper §5): "to challenge allocation
  /// strategies, we multiply job arrival times by a constant factor f.
  /// When f < 1, the interarrival times decrease, resulting in an increased
  /// system load". Set via `for_load`.
  double arrival_factor{1.0};

  /// Trace runtimes become communication demand: a job's message count is
  /// Exp(runtime / runtime_scale) clamped to [1, max_messages]. The paper
  /// leaves the runtime->traffic coupling to ProcSimity internals; this
  /// mapping preserves what matters — long jobs demand proportionally more
  /// communication, and service time remains an output of network
  /// contention (DESIGN.md §2.2).
  double runtime_scale{20.0};
  std::int64_t max_messages{800};

  /// Replay only the first N records (0 = whole trace).
  std::size_t prefix{0};

  network::TrafficPattern pattern{network::TrafficPattern::kAllToAll};
};

/// Arrival factor that produces a given offered load (jobs per time unit)
/// from a trace with the given mean inter-arrival time. A degenerate trace
/// (empty or single-job: zero, negative or NaN mean inter-arrival) yields the
/// neutral factor 1.0 instead of dividing blindly; a non-positive `load` is a
/// caller bug and still throws.
[[nodiscard]] double arrival_factor_for_load(double load, double trace_mean_interarrival);

/// Expands one trace record (the `index`-th of its stream) into a simulator
/// job: scaled arrival, near-square shape from the processor count,
/// runtime-driven message count, recorded runtime as the SSD demand key.
/// `make_trace_jobs` and the streaming `TraceSource` both lower onto this,
/// so the two paths draw the identical RNG sequence.
[[nodiscard]] Job make_trace_job(const TraceJob& rec, std::uint64_t index,
                                 const TraceReplayParams& params,
                                 const mesh::Geometry& geom, des::Xoshiro256SS& rng);

/// Expands trace records into simulator jobs: scaled arrivals, near-square
/// shape from the processor count, runtime-driven message counts, and the
/// recorded runtime as the SSD demand key.
[[nodiscard]] std::vector<Job> make_trace_jobs(const std::vector<TraceJob>& trace,
                                               const TraceReplayParams& params,
                                               const mesh::Geometry& geom,
                                               des::Xoshiro256SS& rng);

}  // namespace procsim::workload
