#pragma once

#include <cstdint>
#include <vector>

#include "des/rng.hpp"
#include "workload/swf.hpp"

namespace procsim::workload {

/// Synthetic stand-in for the SDSC Intel Paragon trace used by the paper.
///
/// The actual trace (Feitelson Parallel Workloads Archive) is not shipped
/// here; this model reproduces the characteristics the paper reports and
/// leans on — see DESIGN.md §2.1 for the substitution argument:
///   * 10,658 jobs from a 352-node partition,
///   * mean inter-arrival time 1186.7 s (exponential),
///   * mean job size ~34.5 processors with the distribution favouring
///     non-powers-of-two (piecewise-uniform size buckets),
///   * heavy-tailed (lognormal) runtimes.
/// A real SWF file can be used instead via load_swf_file + TraceReplay.
struct ParagonModelParams {
  std::size_t jobs{10658};
  double mean_interarrival{1186.7};  ///< seconds
  std::int32_t max_processors{352};
  double runtime_mu{7.0};     ///< lognormal log-mean   (median ~1100 s)
  double runtime_sigma{1.6};  ///< lognormal log-stddev (mean  ~4000 s)
};

/// Deterministically generates the synthetic trace for a given seed.
[[nodiscard]] std::vector<TraceJob> generate_paragon_trace(const ParagonModelParams& params,
                                                           des::Xoshiro256SS& rng);

}  // namespace procsim::workload
