// fig05: Service time vs system load, all-to-all, real workload, 16x22 mesh
// Regenerates the series of the paper's Figure 05. Usage: see bench_common.hpp.

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace procsim;
  core::FigureSpec spec;
  spec.id = "fig05";
  spec.title = "Service time vs system load, all-to-all, real workload, 16x22 mesh";
  spec.metric = "service";
  spec.loads = bench::loads_real();
  spec.series = core::paper_series();
  spec.base = bench::trace_base();
  return bench::figure_main(argc, argv, std::move(spec));
}
