// Ablation: Paging's size_index. Larger pages buy contiguity but create
// internal fragmentation that grows with size_index (paper §3) — visible
// here as utilization loss and rising turnaround.

#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace procsim;
  const core::RunOptions opts = core::parse_run_options(argc, argv);

  core::FigureSpec spec;
  spec.id = "abl_paging_size";
  spec.title = "Paging(k) page size k=0..3, turnaround vs load, stochastic uniform";
  spec.metric = "turnaround";
  spec.loads = bench::loads_uniform();
  spec.base = bench::stochastic_base(workload::SideDistribution::kUniform);

  for (const std::int32_t k : {0, 1, 2, 3}) {
    core::Series s;
    s.allocator = core::AllocatorSpec{"Paging(" + std::to_string(k) + ")"};
    s.scheduler = sched::Policy::kFcfs;
    spec.series.push_back(s);
  }
  core::run_figure(spec, opts, std::cout);
  return 0;
}
