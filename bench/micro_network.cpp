// Micro-benchmark (google-benchmark): raw event throughput of the wormhole
// network simulator — uniform random traffic on the paper's 16×22 mesh and a
// scaled 32×32, mesh vs torus. This bounds how expensive the figure sweeps
// are and catches event-loop regressions.

#include <benchmark/benchmark.h>

#include "des/rng.hpp"
#include "des/simulator.hpp"
#include "network/wormhole_network.hpp"

namespace {

using namespace procsim;

void uniform_traffic(benchmark::State& state, std::int32_t w, std::int32_t l,
                     bool torus) {
  const mesh::Geometry geom(w, l);
  const auto batch = static_cast<int>(state.range(0));
  std::uint64_t delivered_total = 0;
  for (auto _ : state) {
    des::Simulator sim;
    network::WormholeNetwork net(sim, geom, network::NetworkParams{3, 8, torus});
    des::Xoshiro256SS rng(5);
    for (int i = 0; i < batch; ++i) {
      const auto s =
          static_cast<mesh::NodeId>(rng() % static_cast<std::uint64_t>(geom.nodes()));
      auto t = static_cast<mesh::NodeId>(rng() % static_cast<std::uint64_t>(geom.nodes()));
      if (t == s) t = (t + 1) % geom.nodes();
      net.inject(s, t, static_cast<std::uint64_t>(i));
    }
    sim.run();
    delivered_total += net.metrics().delivered;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(delivered_total));
}

}  // namespace

BENCHMARK_CAPTURE(uniform_traffic, Mesh16x22, 16, 22, false)->Arg(1000)->Arg(5000);
BENCHMARK_CAPTURE(uniform_traffic, Torus16x22, 16, 22, true)->Arg(1000)->Arg(5000);
BENCHMARK_CAPTURE(uniform_traffic, Mesh32x32, 32, 32, false)->Arg(1000)->Arg(5000);
