// Ablation: how much is contiguity worth? GABL (contiguity-seeking
// non-contiguous) vs Random scatter (no contiguity at all) vs the contiguous
// First-Fit/Best-Fit baselines (full contiguity, external fragmentation).
// Latency rewards contiguity; turnaround punishes the contiguous baselines'
// fragmentation-induced queueing — the paper's core trade-off in one table.

#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace procsim;
  const core::RunOptions opts = core::parse_run_options(argc, argv);

  for (const char* metric : {"turnaround", "latency"}) {
    core::FigureSpec spec;
    spec.id = std::string("abl_contiguity_") + metric;
    spec.title = std::string(metric) +
                 " vs load: GABL vs Random scatter vs contiguous FF/BF, stochastic uniform";
    spec.metric = metric;
    spec.loads = bench::loads_uniform();
    spec.base = bench::stochastic_base(workload::SideDistribution::kUniform);

    for (const char* name : {"GABL", "Random", "FirstFit", "BestFit"}) {
      core::Series s;
      s.allocator = core::AllocatorSpec{name};
      s.scheduler = sched::Policy::kFcfs;
      spec.series.push_back(s);
    }
    core::run_figure(spec, opts, std::cout);
    std::cout << "\n";
  }
  return 0;
}
