// procsim_sweep: generic sweep driver over the allocator/scheduler
// registries — any mesh size, any strategy pair, any workload family, any
// metric — the scenarios the hardcoded figure binaries cannot express.
//
//   procsim_sweep [--mesh=16x22[,32x32,...]] [--alloc=GABL,Paging(0),MBS]
//                 [--cluster='N"x("WxL[:ALLOC]")"[+...][;balance=P][;stale=T]
//                            [;migrate=steal][;lat=X]']
//                 [--sched=FCFS,SSD,SJF,LJF,lookahead:k,
//                         backfill[:conservative][;shape]]
//                 [--workload=uniform|exponential|real|swf:<path>|saturation|
//                            bursty[;key=value...]]
//                 [--metric=turnaround|service|utilization|latency|blocking|
//                          hops|queue_length|wait_mean|wait_p50|wait_p95|
//                          wait_p99|wait_max|turnaround_p50|turnaround_p95|
//                          turnaround_p99|turnaround_max|slowdown_p50|
//                          slowdown_p95|slowdown_p99|slowdown_max|starved|
//                          util_spread|util_min|util_max|util_stddev|
//                          migrations|migration_latency|stale_errors]
//                 [--loads=0.005,0.01,...]
//                 [--net=stepped|batched|verify|analytic]
//                 [--fast] [--jobs=N] [--reps=N] [--seed=N] [--threads=N]
//                 [--telemetry=PATH[;dt=X]] [--counters[=PATH]]
//                 [--trace=PATH] [--job-records=PATH[.jsonl|.csv]]
//
// --cluster runs every cell as a cluster::ClusterSim fleet (N meshes, one
// event clock, a pluggable dispatcher — see README "Cluster"); the cluster
// metrics (util_spread & co.) are only non-zero there. `--loads` stays the
// PER-MESH offered load. --cluster conflicts with --mesh and with the
// single-mesh observability flags; conflicts are rejected up front.
//
// The observability flags run ONE extra instrumented replication of the
// grid's first cell (same seed substream as that cell's first replication)
// after the sweep, writing its telemetry CSV / counters JSON / binary trace
// (convert with trace_convert) / per-job records. The grid CSV on stdout is
// byte-identical with or without them — the recorder contract.
//
// With one mesh the CSV has one row per load (the fig binaries' layout).
// With several meshes it has one row per mesh size at the first load — the
// large-mesh scaling scenario (16x16 ... 512x512). Output is byte-identical
// for any --threads value (see run_grid).
//
// Mesh sizes are accepted up to 4096x4096: node ids, sub-mesh areas, and
// channel counts are computed in int32 and stay in range through 4096^2
// (16,777,216 nodes; ~67M channels). 512x512 is the tested first-class scale
// — it runs in the CI index-oracle smoke (with PROCSIM_INDEX_CROSS_CHECK=1)
// and has gated rows in bench_alloc_scaling. Above 128x128 prefer --fast or
// small --jobs/--reps: event counts grow with the node count, and the
// saturation workload keeps the whole mesh busy.
//
// Allocator and scheduler names are resolved through alloc::make_allocator /
// sched::make_scheduler, and workloads beyond the three figure families
// through workload::make_source — SWF trace replay (`swf:<path>`), the
// saturation (backlogged-queue) setup behind the utilization figures, and
// the bursty MMPP stream — so every registry strategy and source is
// reachable; unknown names fail fast listing the known ones.

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "cluster/cluster_spec.hpp"
#include "core/experiment_spec.hpp"
#include "core/job_record_store.hpp"
#include "des/rng.hpp"
#include "network/wormhole_network.hpp"
#include "obs/recorder.hpp"
#include "workload/source_registry.hpp"

namespace {

using namespace procsim;

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::string item;
  std::istringstream in(s);
  while (std::getline(in, item, ','))
    if (!item.empty()) out.push_back(item);
  return out;
}

[[noreturn]] void usage_error(const std::string& msg) {
  std::cerr << "procsim_sweep: " << msg << "\n"
            << "usage: procsim_sweep [--mesh=WxL[,WxL...]] (W,L in 1..4096)\n"
            << "         [--cluster=SPEC]  (fleet of meshes; SPEC grammar:\n"
            << "           N\"x(\"WxL[:ALLOC]\")\" [+group...] [;balance=P]\n"
            << "           [;stale=T] [;migrate=steal] [;lat=X], policies P:\n"
            << "           " << cluster::known_dispatcher_list() << ";\n"
            << "           conflicts with --mesh and the observability flags)\n"
            << "         [--alloc=A[,A...]]\n"
            << "         [--sched=S[,S...]]\n"
            << "           (FCFS|SSD|SJF|LJF|lookahead:k|backfill[:conservative][;shape])\n"
            << "         [--workload=uniform|exponential|real|swf:<path>|saturation|\n"
            << "                    bursty[;key=value...]]\n"
            << "         [--metric=M] [--loads=x[,x...]]\n"
            << "         [--net=stepped|batched|verify|analytic] (network engine;\n"
            << "           default: PROCSIM_NET_ENGINE or batched)\n"
            << "         [--fast] [--jobs=N] [--reps=N] [--seed=N] [--threads=N]\n"
            << "         [--telemetry=PATH[;dt=X]] [--counters[=PATH]]\n"
            << "         [--trace=PATH] [--job-records=PATH[.jsonl|.csv]]\n"
            << "observability flags add ONE instrumented replication of the first\n"
            << "  cell after the sweep (grid CSV bytes unchanged); --counters with\n"
            << "  no path prints the JSON to stderr; --trace writes the binary\n"
            << "  format trace_convert consumes\n"
            << "workload spec keys (workload/source_registry.hpp): load, jobs, mes,\n"
            << "  f (trace arrival factor), n/dist (saturation), b/phase (bursty)\n"
            << "fairness metrics (per-job record stream): wait_mean, wait_p50/p95/p99,\n"
            << "  wait_max, turnaround_p50/p95/p99/max, slowdown_p50/p95/p99/max,\n"
            << "  starved (jobs waiting > 4x the median wait)\n";
  std::exit(2);
}

bool take_value(const char* arg, const char* key, std::string& out) {
  const std::size_t n = std::string::traits_type::length(key);
  if (std::string_view(arg).substr(0, n) != key) return false;
  out = arg + n;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string mesh_arg = "16x22";
  bool mesh_given = false;
  std::string cluster_arg;
  std::string alloc_arg = "GABL,Paging(0),MBS";
  std::string sched_arg = "FCFS,SSD";
  std::string workload = "uniform";
  std::string metric = "turnaround";
  std::string loads_arg;
  std::string net_arg;
  std::string telemetry_path, counters_path, trace_path, job_records_path;
  bool counters_requested = false;
  double telemetry_dt = 100.0;

  std::vector<char*> passthrough;
  passthrough.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    std::string value;
    if (take_value(argv[i], "--mesh=", value)) {
      mesh_arg = value;
      mesh_given = true;
    } else if (take_value(argv[i], "--cluster=", value)) {
      cluster_arg = value;
      if (cluster_arg.empty()) usage_error("empty --cluster");
    } else if (take_value(argv[i], "--alloc=", value)) {
      alloc_arg = value;
    } else if (take_value(argv[i], "--sched=", value)) {
      sched_arg = value;
    } else if (take_value(argv[i], "--workload=", value)) {
      workload = value;
    } else if (take_value(argv[i], "--metric=", value)) {
      metric = value;
    } else if (take_value(argv[i], "--loads=", value)) {
      loads_arg = value;
    } else if (take_value(argv[i], "--net=", value)) {
      net_arg = value;
    } else if (take_value(argv[i], "--telemetry=", value)) {
      // PATH[;dt=X] — the sampling interval rides in the same argument so
      // shell quoting stays one token: --telemetry='out.csv;dt=50'.
      const auto semi = value.find(';');
      telemetry_path = value.substr(0, semi);
      if (semi != std::string::npos) {
        const std::string rest = value.substr(semi + 1);
        if (rest.rfind("dt=", 0) != 0)
          usage_error("bad --telemetry option '" + rest + "' (expected dt=X)");
        char* end = nullptr;
        telemetry_dt = std::strtod(rest.c_str() + 3, &end);
        if (*end != '\0' || telemetry_dt <= 0)
          usage_error("bad --telemetry dt '" + rest.substr(3) + "'");
      }
      if (telemetry_path.empty()) usage_error("empty --telemetry path");
    } else if (take_value(argv[i], "--counters=", value)) {
      counters_requested = true;
      counters_path = value;
    } else if (std::strcmp(argv[i], "--counters") == 0) {
      counters_requested = true;  // bare: JSON to stderr, stdout stays CSV
    } else if (take_value(argv[i], "--trace=", value)) {
      trace_path = value;
    } else if (take_value(argv[i], "--job-records=", value)) {
      job_records_path = value;
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  const core::RunOptions opts =
      core::parse_run_options(static_cast<int>(passthrough.size()), passthrough.data());

  // --cluster conflict audit, before any parsing spends work. The
  // observability flags attach a single-mesh recorder/record-store to ONE
  // SystemSim run; a fleet has N of them, so the combination is rejected
  // rather than silently instrumenting only one member.
  const bool cluster_mode = !cluster_arg.empty();
  if (cluster_mode && mesh_given)
    usage_error("--cluster and --mesh are mutually exclusive "
                "(the cluster spec fixes every mesh geometry)");
  if (cluster_mode && (!telemetry_path.empty() || counters_requested ||
                       !trace_path.empty() || !job_records_path.empty()))
    usage_error("--telemetry/--counters/--trace/--job-records are "
                "single-mesh-only; drop them or drop --cluster");

  std::vector<mesh::Geometry> meshes;
  std::vector<std::string> mesh_labels;
  for (const std::string& ms : split_csv(mesh_arg)) {
    const auto geom = core::parse_mesh_geometry(ms);
    if (!geom) usage_error("bad mesh '" + ms + "' (expected WxL)");
    meshes.push_back(*geom);
    mesh_labels.push_back(std::to_string(geom->width()) + "x" +
                          std::to_string(geom->length()));
  }
  if (meshes.empty()) usage_error("empty --mesh");

  // Workload family template and its default load axis: the three figure
  // families keep their bench_common templates (and their exact CSV bytes);
  // anything else is a workload::make_source registry spec. Template choice
  // is driver policy; the axis itself is validated and applied below through
  // core::apply_experiment_spec, the shared fail-fast entry point.
  const auto wspec = workload::parse_source_spec(workload);
  core::ExperimentConfig base;
  std::vector<double> loads;
  bool saturation = false;
  const bool bare_family =
      wspec && wspec->arg.empty() && wspec->params.empty() &&
      (wspec->kind == "uniform" || wspec->kind == "exponential" ||
       wspec->kind == "real");
  if (bare_family) {
    if (wspec->kind == "uniform") {
      base = bench::stochastic_base(workload::SideDistribution::kUniform);
      loads = bench::loads_uniform();
    } else if (wspec->kind == "exponential") {
      base = bench::stochastic_base(workload::SideDistribution::kExponential);
      loads = bench::loads_exponential();
    } else {
      base = bench::trace_base();
      loads = bench::loads_real();
    }
  } else {
    base = bench::base_config();
    if (wspec && wspec->kind == "swf") {
      base.sys.target_completions = 600;  // the trace_base effort default
      loads = bench::loads_real();
    } else if (wspec && wspec->kind == "saturation") {
      saturation = true;
      loads = {1.0};
    } else {
      loads = bench::loads_uniform();
    }
  }

  // The grid-wide axes — workload, net engine, cluster — through the single
  // fail-fast entry point (unknown names exit listing the known kinds).
  {
    core::ExperimentSpecStrings axes;
    axes.workload = workload;
    axes.net = net_arg;
    axes.cluster = cluster_arg;
    try {
      core::apply_experiment_spec(axes, base);
    } catch (const std::exception& e) {
      usage_error(e.what());
    }
  }
  if (saturation) {
    // The utilization-figure setup: a 3x backlog, warmup skipping the
    // cold-start fill (bench_common::saturated), one row — there is no
    // load axis when every job is already waiting at t = 0.
    base.workload.job_count = 3 * base.sys.target_completions;
    base.sys.warmup_completions = base.sys.target_completions / 10;
  }
  if (!loads_arg.empty()) {
    // Saturation has no load axis: every job is already waiting at t = 0, so
    // sweeping loads would just recompute the identical row.
    if (saturation) usage_error("--loads does not apply to --workload=saturation");
    loads.clear();
    for (const std::string& s : split_csv(loads_arg)) {
      char* end = nullptr;
      const double v = std::strtod(s.c_str(), &end);
      if (*end != '\0' || v <= 0) usage_error("bad load '" + s + "'");
      loads.push_back(v);
    }
  }
  if (loads.empty()) usage_error("empty --loads");

  // Fail fast on a metric typo — run_grid would otherwise only notice after
  // the first cell's full replicated simulation.
  {
    const std::vector<std::string> metrics = core::known_metrics();
    if (std::find(metrics.begin(), metrics.end(), metric) == metrics.end()) {
      std::string known;
      for (const std::string& m : metrics) {
        if (!known.empty()) known += ", ";
        known += m;
      }
      usage_error("unknown metric '" + metric + "' (known: " + known + ")");
    }
  }

  // Strategy pairs, through the same fail-fast entry point (misspellings
  // exit with the registry's known-name list). In cluster mode the --alloc
  // axis is the fleet's DEFAULT allocator — meshes whose spec group names
  // its own (e.g. "2x(16x16:MBS)") keep that one.
  struct SweepSeries {
    core::AllocatorSpec alloc;
    sched::SchedSpec sched;
    std::string label;
  };
  std::vector<SweepSeries> series;
  const std::vector<std::string> alloc_names = split_csv(alloc_arg);
  const std::vector<std::string> sched_names = split_csv(sched_arg);
  if (alloc_names.empty() || sched_names.empty())
    usage_error("need at least one allocator and one scheduler");
  for (const std::string& sn : sched_names) {
    for (const std::string& an : alloc_names) {
      core::ExperimentConfig labelled = base;
      core::ExperimentSpecStrings axes;
      axes.alloc = an;
      axes.sched = sn;
      try {
        core::apply_experiment_spec(axes, labelled);
      } catch (const std::exception& e) {
        usage_error(e.what());
      }
      series.push_back(
          SweepSeries{labelled.allocator, labelled.scheduler, labelled.series_label()});
    }
  }

  core::GridSpec grid;
  grid.metric = metric;
  grid.cols.reserve(series.size());
  for (const SweepSeries& s : series) grid.cols.push_back(s.label);

  // Both layouts share one cell builder; only what the row axis selects —
  // the load or the mesh — differs. In cluster mode the spec fixes every
  // geometry, so the cell keeps base's (the fleet's first mesh).
  const bool scaling = !cluster_mode && meshes.size() > 1;
  const auto make_cell = [&](const mesh::Geometry& geom, double load,
                             const SweepSeries& s) {
    core::ExperimentConfig cfg = base;
    if (!cluster_mode) cfg.sys.geom = geom;
    cfg.allocator = s.alloc;
    cfg.scheduler = s.sched;
    core::set_offered_load(cfg, load);
    core::apply_effort(cfg, opts);
    return cfg;
  };

  std::cout << "# procsim_sweep: workload=" << workload << " metric=" << metric
            << " st=" << base.sys.net.st << " Plen=" << base.sys.net.packet_len
            << " net=" << network::net_engine_name(base.sys.net.engine) << "\n";
  if (!scaling) {
    // Fig-style layout: rows = loads on the one mesh (or the one fleet;
    // loads stay per-mesh offered load there).
    if (cluster_mode)
      std::cout << "# cluster=" << base.cluster->canonical << "\n";
    else
      std::cout << "# mesh=" << mesh_labels[0] << "\n";
    grid.corner = "load";
    for (const double load : loads) {
      std::ostringstream label;
      label << load;
      grid.rows.push_back(saturation ? "saturated" : label.str());
    }
    grid.cell = [&](std::size_t row, std::size_t col) {
      return make_cell(meshes[0], loads[row], series[col]);
    };
  } else {
    // Scaling scenario: rows = mesh sizes at the first load.
    std::cout << "# load=" << loads[0] << " (mesh scaling)\n";
    grid.corner = "mesh";
    grid.rows = mesh_labels;
    grid.cell = [&](std::size_t row, std::size_t col) {
      return make_cell(meshes[row], loads[0], series[col]);
    };
  }

  core::run_grid(grid, opts, std::cout, /*with_ci=*/true);

  // One instrumented replication of the first cell: same configuration and
  // seed substream as that cell's first replication, so the artifacts
  // describe a run the grid actually aggregated. The recorder attaches only
  // here — the grid CSV above is produced detached and must not change by a
  // byte whether or not any of these flags were given.
  const bool obs_requested = !telemetry_path.empty() || counters_requested ||
                             !trace_path.empty() || !job_records_path.empty();
  if (obs_requested) {
    obs::Recorder rec;
    if (!trace_path.empty()) rec.enable_trace();
    if (!telemetry_path.empty()) rec.enable_telemetry(telemetry_dt);
    rec.enable_phase_timers();
    core::JobRecordStore job_records;
    core::ExperimentConfig cfg = grid.cell(0, 0);
    cfg.seed = des::substream_seed(opts.seed, 0);
    (void)core::run_probed(cfg, &rec,
                           job_records_path.empty() ? nullptr : &job_records);

    const auto open_or_die = [](const std::string& path, bool binary,
                                std::ofstream& out) {
      out.open(path, binary ? std::ios::binary | std::ios::trunc
                            : std::ios::trunc);
      if (!out) {
        std::cerr << "procsim_sweep: cannot write " << path << "\n";
        std::exit(3);
      }
    };
    if (!telemetry_path.empty()) {
      std::ofstream out;
      open_or_die(telemetry_path, false, out);
      rec.sampler()->write_csv(out);
    }
    if (!trace_path.empty()) {
      std::ofstream out;
      open_or_die(trace_path, true, out);
      obs::write_binary(*rec.trace(), out);
    }
    if (!job_records_path.empty()) {
      std::ofstream out;
      open_or_die(job_records_path, false, out);
      const bool jsonl = job_records_path.size() >= 6 &&
                         job_records_path.rfind(".jsonl") ==
                             job_records_path.size() - 6;
      if (jsonl)
        job_records.write_jsonl(out);
      else
        job_records.write_csv(out);
    }
    if (counters_requested) {
      if (counters_path.empty()) {
        rec.counters().write_json(std::cerr);
        std::cerr << "\n";
      } else {
        std::ofstream out;
        open_or_die(counters_path, false, out);
        rec.counters().write_json(out);
        out << "\n";
      }
    }
  }
  return 0;
}
