// fig06: Service time vs system load, all-to-all, stochastic uniform side lengths, 16x22 mesh
// Regenerates the series of the paper's Figure 06. Usage: see bench_common.hpp.

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace procsim;
  core::FigureSpec spec;
  spec.id = "fig06";
  spec.title = "Service time vs system load, all-to-all, stochastic uniform side lengths, 16x22 mesh";
  spec.metric = "service";
  spec.loads = bench::loads_uniform();
  spec.series = core::paper_series();
  spec.base = bench::stochastic_base(workload::SideDistribution::kUniform);
  return bench::figure_main(argc, argv, std::move(spec));
}
