// Ablation: Paging's four page-indexing schemes (row-major, snake, shuffled
// row-major, shuffled snake). Lo et al. and the paper both report the choice
// has "only a slight impact" — this bench regenerates that check on the
// stochastic uniform workload across the full load axis.

#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace procsim;
  const core::RunOptions opts = core::parse_run_options(argc, argv);

  core::FigureSpec spec;
  spec.id = "abl_paging_index";
  spec.title = "Paging(0) indexing schemes, turnaround vs load, stochastic uniform";
  spec.metric = "turnaround";
  spec.loads = bench::loads_uniform();
  spec.base = bench::stochastic_base(workload::SideDistribution::kUniform);

  for (const auto indexing :
       {mesh::PageIndexing::kRowMajor, mesh::PageIndexing::kSnake,
        mesh::PageIndexing::kShuffledRowMajor, mesh::PageIndexing::kShuffledSnake}) {
    core::Series s;
    s.allocator = core::AllocatorSpec{"Paging(0)"};
    s.allocator.paging_indexing = indexing;
    s.scheduler = sched::Policy::kFcfs;
    spec.series.push_back(s);
  }
  // Note: series share the Paging(0) label; column order is the enum order
  // above (row-major, snake, shuffled row-major, shuffled snake).
  core::run_figure(spec, opts, std::cout);
  return 0;
}
