// bench_alloc_scaling: allocator-query and allocator-churn throughput across
// mesh sizes, comparing the legacy per-event FreeSubmeshScan snapshot rebuild
// against the incremental bit-parallel OccupancyIndex. Emits machine-readable
// JSON (default BENCH_alloc.json) so the perf trajectory across PRs is
// measurable in CI.
//
//   bench_alloc_scaling [--fast] [--out=BENCH_alloc.json] [--check=5]
//
// --fast    shrink mesh set and iteration counts (CI smoke)
// --check=K exit nonzero unless the first_fit speedup at 64x64 is >= K
//
// Methodology: each mesh is churned to ~50 % occupancy with a deterministic
// request stream, then a fixed query set is timed through both paths. The
// legacy timing includes the FreeSubmeshScan construction, because that
// rebuild was the real per-event cost of the snapshot design.
//
// Meshes above 128x128 (256x256 and 512x512, both modes) time the index path
// and the allocator churn only: the legacy snapshot scan is quadratic-plus in
// the mesh side (its largest_free alone is O(capw·capl·W·L) per query) and
// would push a single row past the whole benchmark's budget. Those rows emit
// legacy_ops_per_sec = 0 and speedup = 0, which the bench gate already treats
// as "no legacy figure" — index_ops_per_sec and events_per_sec are still
// gated, so the large-mesh fast path can never silently regress.

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "alloc/registry.hpp"
#include "des/distributions.hpp"
#include "des/rng.hpp"
#include "mesh/free_submesh_scan.hpp"
#include "mesh/mesh_state.hpp"
#include "mesh/occupancy_index.hpp"

namespace {

using namespace procsim;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

struct QueryRow {
  std::string mesh;
  std::string query;
  double legacy_ops{0};
  double index_ops{0};
  [[nodiscard]] double speedup() const {
    return index_ops > 0 && legacy_ops > 0 ? index_ops / legacy_ops : 0;
  }
};

struct ChurnRow {
  std::string mesh;
  std::string allocator;
  double events_per_sec{0};
};

/// Churns `state`/`index` (kept in lock-step) to roughly half occupancy.
void fill_to_half(mesh::MeshState& state, mesh::OccupancyIndex& index,
                  des::Xoshiro256SS& rng) {
  const mesh::Geometry& g = state.geometry();
  const std::int32_t max_side = std::max(1, g.width() / 4);
  while (index.free_count() > g.nodes() / 2) {
    const auto a = static_cast<std::int32_t>(des::sample_uniform_int(rng, 1, max_side));
    const auto b = static_cast<std::int32_t>(des::sample_uniform_int(rng, 1, max_side));
    const auto s = index.first_fit(a, b);
    if (!s) break;
    state.allocate(*s);
    index.allocate(*s);
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool fast = false;
  std::string out_path = "BENCH_alloc.json";
  double check = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--fast") == 0) {
      fast = true;
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    } else if (std::strncmp(argv[i], "--check=", 8) == 0) {
      check = std::strtod(argv[i] + 8, nullptr);
    } else {
      std::cerr << "warning: unknown option " << argv[i] << "\n";
    }
  }

  const std::vector<std::int32_t> sizes =
      fast ? std::vector<std::int32_t>{16, 32, 64, 256, 512}
           : std::vector<std::int32_t>{16, 32, 64, 96, 128, 256, 512};
  const int q_first_base = fast ? 300 : 2000;
  const int q_best_base = fast ? 100 : 500;
  const int q_largest_base = fast ? 30 : 100;
  const int churn_base = fast ? 500 : 3000;

  std::vector<QueryRow> queries;
  std::vector<ChurnRow> churn;
  std::int64_t sink = 0;  // consumes every query result: nothing optimizes away

  for (const std::int32_t m : sizes) {
    const mesh::Geometry g(m, m);
    const std::string mesh_label = std::to_string(m) + "x" + std::to_string(m);
    // Large meshes: index-only timing (see header comment) and 1/4 the
    // query/event counts — the absolute numbers stay statistically stable
    // because every operation is that much bigger.
    const bool large = m > 128;
    const int q_first = large ? q_first_base / 4 : q_first_base;
    const int q_best = large ? q_best_base / 4 : q_best_base;
    const int q_largest = large ? q_largest_base / 4 : q_largest_base;
    const int churn_events = large ? churn_base / 4 : churn_base;
    mesh::MeshState state(g);
    mesh::OccupancyIndex index(g);
    des::Xoshiro256SS rng(0xBE7C4 + static_cast<std::uint64_t>(m));
    fill_to_half(state, index, rng);

    // One fixed query set per kind, shared by both paths.
    const auto draw_queries = [&](int count, std::int32_t cap) {
      std::vector<std::pair<std::int32_t, std::int32_t>> qs;
      qs.reserve(static_cast<std::size_t>(count));
      for (int i = 0; i < count; ++i)
        qs.emplace_back(
            static_cast<std::int32_t>(des::sample_uniform_int(rng, 1, cap)),
            static_cast<std::int32_t>(des::sample_uniform_int(rng, 1, cap)));
      return qs;
    };
    const auto timed = [&](const auto& body) {
      const auto t0 = Clock::now();
      body();
      return seconds_since(t0);
    };
    const auto use = [&sink](const std::optional<mesh::SubMesh>& s) {
      if (s) sink += s->x1 + s->y1;
    };

    {
      const auto qs = draw_queries(q_first, std::max(1, m / 2));
      QueryRow row{mesh_label, "first_fit", 0, 0};
      if (!large) {
        const double tl = timed([&] {
          for (const auto& [a, b] : qs)
            use(mesh::FreeSubmeshScan(state).first_fit(a, b));
        });
        row.legacy_ops = qs.size() / tl;
      }
      const double ti = timed([&] {
        for (const auto& [a, b] : qs) use(index.first_fit(a, b));
      });
      row.index_ops = qs.size() / ti;
      queries.push_back(row);
    }
    {
      const auto qs = draw_queries(q_best, std::max(1, m / 2));
      QueryRow row{mesh_label, "best_fit", 0, 0};
      if (!large) {
        const double tl = timed([&] {
          for (const auto& [a, b] : qs)
            use(mesh::FreeSubmeshScan(state).best_fit(a, b));
        });
        row.legacy_ops = qs.size() / tl;
      }
      const double ti = timed([&] {
        for (const auto& [a, b] : qs) use(index.best_fit(a, b));
      });
      row.index_ops = qs.size() / ti;
      queries.push_back(row);
    }
    {
      // Side caps stay modest: the legacy largest_free is O(capw·capl·W·L)
      // per query and would dominate the whole benchmark otherwise.
      const auto qs = draw_queries(q_largest, std::min(m, 16));
      QueryRow row{mesh_label, "largest_free", 0, 0};
      if (!large) {
        const double tl = timed([&] {
          for (const auto& [a, b] : qs)
            use(mesh::FreeSubmeshScan(state).largest_free(a, b));
        });
        row.legacy_ops = qs.size() / tl;
      }
      const double ti = timed([&] {
        for (const auto& [a, b] : qs) use(index.largest_free(a, b));
      });
      row.index_ops = qs.size() / ti;
      queries.push_back(row);
    }

    // End-to-end allocator churn (alloc + release events) per strategy.
    for (const std::string& name : alloc::known_allocators()) {
      const auto allocator = alloc::make_allocator(name, g, {.seed = 99});
      des::Xoshiro256SS churn_rng(0xC0FFEE + static_cast<std::uint64_t>(m));
      std::vector<alloc::Placement> live;
      const std::int32_t max_side = std::max(1, m / 4);
      const double t = timed([&] {
        for (int e = 0; e < churn_events; ++e) {
          const bool do_alloc = live.empty() || des::sample_bernoulli(churn_rng, 0.6);
          if (do_alloc) {
            const auto a = static_cast<std::int32_t>(
                des::sample_uniform_int(churn_rng, 1, max_side));
            const auto b = static_cast<std::int32_t>(
                des::sample_uniform_int(churn_rng, 1, max_side));
            const alloc::Request req{a, b, a * b};
            if (auto p = allocator->allocate(req)) {
              live.push_back(std::move(*p));
              continue;
            }
          }
          if (!live.empty()) {
            const auto i = static_cast<std::size_t>(des::sample_uniform_int(
                churn_rng, 0, static_cast<std::int64_t>(live.size()) - 1));
            allocator->release(live[i]);
            live[i] = std::move(live.back());
            live.pop_back();
          }
        }
      });
      churn.push_back(ChurnRow{mesh_label, name, churn_events / t});
    }
  }

  // Human-readable summary.
  std::cout << "query speedups (index vs legacy snapshot scan):\n";
  for (const QueryRow& r : queries)
    std::cout << "  " << r.mesh << " " << r.query << ": " << r.legacy_ops
              << " -> " << r.index_ops << " ops/s (" << r.speedup() << "x)\n";
  std::cout << "allocator churn (alloc+release events/s):\n";
  for (const ChurnRow& r : churn)
    std::cout << "  " << r.mesh << " " << r.allocator << ": " << r.events_per_sec
              << "\n";
  std::cout << "(sink=" << sink << ")\n";

  std::ofstream json(out_path);
  json << "{\n  \"bench\": \"bench_alloc_scaling\",\n  \"mode\": \""
       << (fast ? "fast" : "full") << "\",\n  \"queries\": [\n";
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const QueryRow& r = queries[i];
    json << "    {\"mesh\": \"" << r.mesh << "\", \"query\": \"" << r.query
         << "\", \"legacy_ops_per_sec\": " << r.legacy_ops
         << ", \"index_ops_per_sec\": " << r.index_ops
         << ", \"speedup\": " << r.speedup() << "}"
         << (i + 1 < queries.size() ? "," : "") << "\n";
  }
  json << "  ],\n  \"allocators\": [\n";
  for (std::size_t i = 0; i < churn.size(); ++i) {
    const ChurnRow& r = churn[i];
    json << "    {\"mesh\": \"" << r.mesh << "\", \"allocator\": \"" << r.allocator
         << "\", \"events_per_sec\": " << r.events_per_sec << "}"
         << (i + 1 < churn.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  std::cout << "wrote " << out_path << "\n";

  if (check > 0) {
    // Fail closed: a gate that can't find its row must not pass vacuously.
    const QueryRow* gated = nullptr;
    for (const QueryRow& r : queries)
      if (r.mesh == "64x64" && r.query == "first_fit") gated = &r;
    if (gated == nullptr) {
      std::cerr << "FAIL: --check needs the 64x64 first_fit row, which this "
                   "run did not produce\n";
      return 1;
    }
    if (gated->speedup() < check) {
      std::cerr << "FAIL: first_fit speedup at 64x64 is " << gated->speedup()
                << "x, required >= " << check << "x\n";
      return 1;
    }
  }
  return 0;
}
