// bench_event_engine: pending-event-set throughput for the DES kernel.
// Two views, both emitted as machine-readable JSON (default BENCH_event.json)
// so the perf trajectory across PRs is measurable in CI:
//
//  * queue hold-model churn — a steady pending set of N events, each
//    operation pops the minimum and pushes a replacement an exponential
//    offset later (the classic calendar-queue "hold" workload), timed for
//    the binary-heap oracle and the calendar queue at N = 10k and N = 1M;
//  * end-to-end churn — a full SystemSim run on a 128x128 mesh (first_fit +
//    FCFS, stochastic workload), comparing the legacy configuration (heap
//    engine, one scheduling pass per event) against the current one
//    (calendar engine, coalesced per-timestamp passes), in simulator
//    events per wall-clock second.
//
//  * observability overhead — the same 128x128 churn with a counters-only
//    obs::Recorder attached vs detached, interleaved best-of-N; emitted as
//    an "observability" object with `overhead_frac`, which bench_gate.py
//    holds to the zero-overhead-off budget (<= 2%).
//
//   bench_event_engine [--fast] [--out=BENCH_event.json] [--check=K]
//
// --fast    fewer hold ops / jobs (CI smoke)
// --check=K exit nonzero unless the 128x128 calendar events_per_sec >= K

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "alloc/registry.hpp"
#include "core/system_sim.hpp"
#include "des/distributions.hpp"
#include "des/event_queue.hpp"
#include "des/rng.hpp"
#include "obs/recorder.hpp"
#include "sched/ordered_scheduler.hpp"
#include "workload/stochastic.hpp"

namespace {

using namespace procsim;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

struct QueueRow {
  std::size_t pending{0};
  std::string impl;
  double ops_per_sec{0};
};

struct EndToEndRow {
  std::string mesh;
  std::string allocator;
  std::string engine;
  double events_per_sec{0};
  std::uint64_t events{0};
};

/// Hold-model churn: fill to `pending`, then pop-min + push-replacement for
/// `ops` operations. The replacement lands Exp(pending) after the popped
/// event, which keeps the set spread stationary — the regime a long replay
/// holds the queue in.
double hold_ops_per_sec(des::EventEngine engine, std::size_t pending, int ops) {
  des::EventQueue q(engine);
  des::Xoshiro256SS rng(0x41D + pending);
  double t = 0;
  for (std::size_t i = 0; i < pending; ++i) {
    t += des::sample_exponential(rng, 1.0);
    q.push(t, [] {});
  }
  const auto t0 = Clock::now();
  for (int i = 0; i < ops; ++i) {
    const des::Event ev = q.pop();
    q.push(ev.time + des::sample_exponential(rng, static_cast<double>(pending)),
           [] {});
  }
  const double secs = seconds_since(t0);
  return ops / secs;
}

EndToEndRow run_end_to_end(bool legacy, const std::vector<workload::Job>& jobs,
                           mesh::Geometry geom, obs::Recorder* rec = nullptr) {
  core::SystemConfig cfg;
  cfg.geom = geom;
  cfg.target_completions = 0;  // run the whole stream
  cfg.event_engine = legacy ? des::EventEngine::kHeap : des::EventEngine::kCalendar;
  cfg.coalesce_passes = !legacy;
  cfg.recorder = rec;
  const auto allocator = alloc::make_allocator("FirstFit", geom, {.seed = 99});
  sched::OrderedScheduler scheduler(sched::Policy::kFcfs);
  core::SystemSim sim(cfg, *allocator, scheduler);

  const auto t0 = Clock::now();
  const core::RunMetrics m = sim.run(jobs);
  const double secs = seconds_since(t0);

  EndToEndRow row;
  row.mesh = std::to_string(geom.width()) + "x" + std::to_string(geom.length());
  row.allocator = "FirstFit";
  row.engine = legacy ? "legacy" : "calendar";
  row.events_per_sec = static_cast<double>(m.events) / secs;
  row.events = m.events;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  bool fast = false;
  std::string out_path = "BENCH_event.json";
  double check = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--fast") == 0) {
      fast = true;
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    } else if (std::strncmp(argv[i], "--check=", 8) == 0) {
      check = std::strtod(argv[i] + 8, nullptr);
    } else {
      std::cerr << "warning: unknown option " << argv[i] << "\n";
    }
  }

  // --- queue hold-model churn -------------------------------------------
  std::vector<QueueRow> queues;
  const int hold_ops_small = fast ? 200'000 : 2'000'000;
  const int hold_ops_large = fast ? 100'000 : 1'000'000;
  for (const std::size_t pending : {std::size_t{10'000}, std::size_t{1'000'000}}) {
    const int ops = pending <= 10'000 ? hold_ops_small : hold_ops_large;
    for (const auto& [engine, label] :
         {std::pair{des::EventEngine::kHeap, "heap"},
          std::pair{des::EventEngine::kCalendar, "calendar"}}) {
      QueueRow row;
      row.pending = pending;
      row.impl = label;
      row.ops_per_sec = hold_ops_per_sec(engine, pending, ops);
      queues.push_back(row);
    }
  }

  // --- end-to-end churn at 128x128 --------------------------------------
  const mesh::Geometry geom(128, 128);
  const std::size_t njobs = fast ? 400 : 3000;
  workload::StochasticParams params;
  params.load = 0.2;  // enough concurrency to keep a deep pending set
  des::Xoshiro256SS wl_rng(0xE2E);
  const std::vector<workload::Job> jobs =
      workload::generate_stochastic(params, geom, njobs, wl_rng);

  std::vector<EndToEndRow> e2e;
  e2e.push_back(run_end_to_end(/*legacy=*/true, jobs, geom));
  e2e.push_back(run_end_to_end(/*legacy=*/false, jobs, geom));

  // --- observability overhead at 128x128 --------------------------------
  // The zero-overhead-off budget, measured: alternate detached and
  // attached-counters-only runs of the identical churn (interleaved so a
  // frequency drift hits both arms equally), keep each arm's best. A
  // counters-only Recorder is what `--counters` costs at every hot site;
  // tracing/telemetry are opt-in allocations and deliberately excluded.
  const int overhead_rounds = fast ? 5 : 3;
  double best_detached = 0, best_attached = 0;
  obs::Recorder counters_rec;
  for (int r = 0; r < overhead_rounds; ++r) {
    best_detached = std::max(best_detached,
                             run_end_to_end(false, jobs, geom).events_per_sec);
    counters_rec.reset_run();
    const EndToEndRow on = run_end_to_end(false, jobs, geom, &counters_rec);
    best_attached = std::max(best_attached, on.events_per_sec);
  }
  const double overhead_frac = std::max(0.0, 1.0 - best_attached / best_detached);

  // --- report ------------------------------------------------------------
  std::cout << "queue hold-model churn (pop+push ops/s):\n";
  for (const QueueRow& r : queues)
    std::cout << "  pending=" << r.pending << " " << r.impl << ": "
              << r.ops_per_sec << "\n";
  std::cout << "end-to-end DES churn (simulator events/s):\n";
  for (const EndToEndRow& r : e2e)
    std::cout << "  " << r.mesh << " " << r.allocator << " " << r.engine << ": "
              << r.events_per_sec << " (" << r.events << " events)\n";
  std::cout << "observability overhead (counters-only recorder, best of "
            << overhead_rounds << "):\n  detached " << best_detached
            << " ev/s, attached " << best_attached << " ev/s, overhead "
            << overhead_frac * 100.0 << "%\n";

  std::ofstream json(out_path);
  json << "{\n  \"bench\": \"bench_event_engine\",\n  \"mode\": \""
       << (fast ? "fast" : "full") << "\",\n  \"queues\": [\n";
  for (std::size_t i = 0; i < queues.size(); ++i) {
    const QueueRow& r = queues[i];
    json << "    {\"pending\": " << r.pending << ", \"impl\": \"" << r.impl
         << "\", \"ops_per_sec\": " << r.ops_per_sec << "}"
         << (i + 1 < queues.size() ? "," : "") << "\n";
  }
  json << "  ],\n  \"end_to_end\": [\n";
  for (std::size_t i = 0; i < e2e.size(); ++i) {
    const EndToEndRow& r = e2e[i];
    json << "    {\"mesh\": \"" << r.mesh << "\", \"allocator\": \""
         << r.allocator << "\", \"engine\": \"" << r.engine
         << "\", \"events_per_sec\": " << r.events_per_sec
         << ", \"events\": " << r.events << "}"
         << (i + 1 < e2e.size() ? "," : "") << "\n";
  }
  json << "  ],\n  \"observability\": {\"mesh\": \"128x128\", "
       << "\"detached_events_per_sec\": " << best_detached
       << ", \"attached_events_per_sec\": " << best_attached
       << ", \"overhead_frac\": " << overhead_frac << "}\n}\n";
  std::cout << "wrote " << out_path << "\n";

  if (check > 0) {
    // Fail closed: the gate must find its row.
    const EndToEndRow* gated = nullptr;
    for (const EndToEndRow& r : e2e)
      if (r.mesh == "128x128" && r.engine == "calendar") gated = &r;
    if (gated == nullptr) {
      std::cerr << "FAIL: --check needs the 128x128 calendar row, which this "
                   "run did not produce\n";
      return 1;
    }
    if (gated->events_per_sec < check) {
      std::cerr << "FAIL: 128x128 calendar end-to-end churn is "
                << gated->events_per_sec << " events/s, required >= " << check
                << "\n";
      return 1;
    }
  }
  return 0;
}
