// fig10: System utilization at heavy load, all-to-all, stochastic exponential side lengths, 16x22 mesh
// Regenerates the series of the paper's Figure 10. Usage: see bench_common.hpp.

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace procsim;
  core::FigureSpec spec;
  spec.id = "fig10";
  spec.title = "System utilization at heavy load, all-to-all, stochastic exponential side lengths, 16x22 mesh";
  spec.metric = "utilization";
  spec.loads = {0.15};
  spec.series = core::paper_series();
  spec.base = bench::saturated(bench::stochastic_base(workload::SideDistribution::kExponential));
  return bench::figure_main(argc, argv, std::move(spec));
}
