// trace_convert: converts procsim binary traces (obs::write_binary, the
// --trace=PATH artifact of procsim_sweep) between formats.
//
//   trace_convert --in=trace.bin [--jsonl=out.jsonl] [--chrome=out.json]
//                 [--binary=out.bin]
//   trace_convert --in-jsonl=trace.jsonl [--jsonl=...] [--chrome=...]
//                 [--binary=...]
//
// Exactly one input; any combination of outputs (at least one). JSONL in →
// binary out → JSONL in is lossless (the round-trip CI exercises it); the
// Chrome output is a one-way visualization export for chrome://tracing /
// Perfetto.
//
// Exit codes: 0 ok, 1 usage, 2 unreadable/malformed input, 3 unwritable
// output.

#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace {

int usage(const char* msg) {
  if (msg != nullptr) std::cerr << "error: " << msg << "\n";
  std::cerr << "usage: trace_convert (--in=trace.bin | --in-jsonl=trace.jsonl)"
               " [--jsonl=PATH] [--chrome=PATH] [--binary=PATH]\n";
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string in_bin, in_jsonl, out_jsonl, out_chrome, out_bin;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--in=", 5) == 0) {
      in_bin = arg + 5;
    } else if (std::strncmp(arg, "--in-jsonl=", 11) == 0) {
      in_jsonl = arg + 11;
    } else if (std::strncmp(arg, "--jsonl=", 8) == 0) {
      out_jsonl = arg + 8;
    } else if (std::strncmp(arg, "--chrome=", 9) == 0) {
      out_chrome = arg + 9;
    } else if (std::strncmp(arg, "--binary=", 9) == 0) {
      out_bin = arg + 9;
    } else {
      return usage(("unknown option " + std::string(arg)).c_str());
    }
  }
  if (in_bin.empty() == in_jsonl.empty())
    return usage("exactly one of --in / --in-jsonl is required");
  if (out_jsonl.empty() && out_chrome.empty() && out_bin.empty())
    return usage("no output requested (--jsonl / --chrome / --binary)");

  std::vector<procsim::obs::TraceRecord> records;
  std::string error;
  if (!in_bin.empty()) {
    std::ifstream in(in_bin, std::ios::binary);
    if (!in) {
      std::cerr << "error: cannot open " << in_bin << "\n";
      return 2;
    }
    if (!procsim::obs::read_binary(in, records, &error)) {
      std::cerr << "error: " << in_bin << ": " << error << "\n";
      return 2;
    }
  } else {
    std::ifstream in(in_jsonl);
    if (!in) {
      std::cerr << "error: cannot open " << in_jsonl << "\n";
      return 2;
    }
    if (!procsim::obs::read_jsonl(in, records, &error)) {
      std::cerr << "error: " << in_jsonl << ": " << error << "\n";
      return 2;
    }
  }

  const auto open_out = [](const std::string& path, bool binary,
                           std::ofstream& out) {
    out.open(path, binary ? std::ios::binary | std::ios::trunc : std::ios::trunc);
    if (!out) std::cerr << "error: cannot write " << path << "\n";
    return static_cast<bool>(out);
  };

  if (!out_jsonl.empty()) {
    std::ofstream out;
    if (!open_out(out_jsonl, false, out)) return 3;
    procsim::obs::write_jsonl(records, out);
  }
  if (!out_chrome.empty()) {
    std::ofstream out;
    if (!open_out(out_chrome, false, out)) return 3;
    procsim::obs::write_chrome_trace(records, out);
  }
  if (!out_bin.empty()) {
    std::ofstream out;
    if (!open_out(out_bin, true, out)) return 3;
    procsim::obs::TraceBuffer buf;
    for (const auto& r : records) buf.append(r);
    procsim::obs::write_binary(buf, out);
  }
  std::cerr << "trace_convert: " << records.size() << " records\n";
  return 0;
}
