// bench_swf_replay: multi-million-job SWF replay on a large mesh — the
// nightly soak of the calendar-queue event engine and the arena job storage.
//
// Each replication streams the whole trace through its own SystemSim
// (calendar engine + coalesced per-timestamp scheduling passes by default),
// seeded with des::substream_seed(base, rep) — the derivation
// run_replicated uses — so the per-rep metric rows, and the per-job record
// CSV of replication 0, are byte-identical no matter how many worker
// threads drain the replications. The nightly workflow runs this twice
// (--threads=1, --threads=2) and `cmp`s the CSVs.
//
//   bench_swf_replay --swf=trace.swf [--mesh=256] [--reps=2] [--threads=1]
//                    [--load=0.02] [--prefix=N] [--seed=S]
//                    [--engine=calendar|heap] [--coalesce=0|1]
//                    [--out=REPLAY_metrics.csv] [--records=REPLAY_jobs.csv]
//
// Wall-clock and events/s go to stdout only — they must never enter the
// CSVs the determinism check compares.

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "alloc/registry.hpp"
#include "core/job_record_store.hpp"
#include "core/system_sim.hpp"
#include "des/event_queue.hpp"
#include "des/rng.hpp"
#include "sched/ordered_scheduler.hpp"
#include "util/thread_pool.hpp"
#include "workload/source.hpp"
#include "workload/swf.hpp"

namespace {

using namespace procsim;
using Clock = std::chrono::steady_clock;

struct Options {
  std::string swf;
  std::int32_t mesh{256};
  std::size_t reps{2};
  std::size_t threads{1};
  double load{0.02};
  std::size_t prefix{0};
  std::uint64_t seed{0x5EEDULL};
  des::EventEngine engine{des::EventEngine::kCalendar};
  bool coalesce{true};
  std::string out{"REPLAY_metrics.csv"};
  std::string records;
};

struct RepResult {
  core::RunMetrics metrics;
  double wall_secs{0};
};

[[noreturn]] void usage_error(const std::string& msg) {
  std::cerr << "bench_swf_replay: " << msg << "\n";
  std::exit(2);
}

Options parse_options(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&](const char* prefix) {
      return arg.substr(std::strlen(prefix));
    };
    if (arg.rfind("--swf=", 0) == 0) {
      opt.swf = value("--swf=");
    } else if (arg.rfind("--mesh=", 0) == 0) {
      opt.mesh = static_cast<std::int32_t>(std::stol(value("--mesh=")));
    } else if (arg.rfind("--reps=", 0) == 0) {
      opt.reps = std::stoul(value("--reps="));
    } else if (arg.rfind("--threads=", 0) == 0) {
      opt.threads = std::stoul(value("--threads="));
    } else if (arg.rfind("--load=", 0) == 0) {
      opt.load = std::stod(value("--load="));
    } else if (arg.rfind("--prefix=", 0) == 0) {
      opt.prefix = std::stoul(value("--prefix="));
    } else if (arg.rfind("--seed=", 0) == 0) {
      opt.seed = std::stoull(value("--seed="));
    } else if (arg.rfind("--engine=", 0) == 0) {
      const std::string e = value("--engine=");
      if (e == "calendar") {
        opt.engine = des::EventEngine::kCalendar;
      } else if (e == "heap") {
        opt.engine = des::EventEngine::kHeap;
      } else {
        usage_error("unknown --engine '" + e + "' (calendar|heap)");
      }
    } else if (arg.rfind("--coalesce=", 0) == 0) {
      opt.coalesce = value("--coalesce=") != "0";
    } else if (arg.rfind("--out=", 0) == 0) {
      opt.out = value("--out=");
    } else if (arg.rfind("--records=", 0) == 0) {
      opt.records = value("--records=");
    } else {
      usage_error("unknown option '" + arg + "'");
    }
  }
  if (opt.swf.empty()) usage_error("--swf=PATH is required");
  if (opt.mesh <= 0) usage_error("--mesh must be positive");
  if (opt.reps == 0) usage_error("--reps must be positive");
  return opt;
}

/// One full replication: fresh allocator/scheduler/SystemSim, the shared
/// immutable trace, the rep's derived substream seed.
RepResult run_rep(const Options& opt,
                  const std::shared_ptr<const std::vector<workload::TraceJob>>& trace,
                  std::size_t rep, core::JobRecordStore* store) {
  const mesh::Geometry geom(opt.mesh, opt.mesh);
  core::SystemConfig cfg;
  cfg.geom = geom;
  cfg.target_completions = 0;  // the whole trace
  cfg.event_engine = opt.engine;
  cfg.coalesce_passes = opt.coalesce;
  cfg.seed = des::substream_seed(opt.seed, rep);

  const auto allocator = alloc::make_allocator("FirstFit", geom, {.seed = 99});
  sched::OrderedScheduler scheduler(sched::Policy::kFcfs);
  core::SystemSim sim(cfg, *allocator, scheduler);
  sim.set_metrics_sink(store);

  workload::TraceReplayParams replay;
  replay.prefix = opt.prefix;
  workload::TraceSource source(trace, replay, opt.load, geom, "swf-replay");
  source.reset(cfg.seed);

  const auto t0 = Clock::now();
  RepResult result;
  result.metrics = sim.run(source);
  result.wall_secs = std::chrono::duration<double>(Clock::now() - t0).count();
  return result;
}

void write_metrics_csv(const std::string& path, const Options& opt,
                       const std::vector<RepResult>& reps) {
  std::ofstream out(path);
  if (!out) usage_error("cannot open --out file '" + path + "'");
  out << "rep,completed,events,packets,makespan,utilization,mean_queue_length,"
         "turnaround_mean,service_mean,packet_latency_mean,"
         "packet_blocking_mean\n";
  char line[512];
  for (std::size_t r = 0; r < reps.size(); ++r) {
    const core::RunMetrics& m = reps[r].metrics;
    std::snprintf(line, sizeof(line),
                  "%zu,%" PRIu64 ",%" PRIu64 ",%" PRIu64
                  ",%.10g,%.10g,%.10g,%.10g,%.10g,%.10g,%.10g\n",
                  r, m.completed, m.events, m.packets, m.makespan,
                  m.utilization, m.mean_queue_length, m.turnaround.mean(),
                  m.service.mean(), m.packet_latency.mean(),
                  m.packet_blocking.mean());
    out << line;
  }
  std::cout << "wrote " << path << " (" << reps.size() << " reps, load "
            << opt.load << ")\n";
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse_options(argc, argv);

  const auto trace =
      workload::load_swf_file_shared(opt.swf, opt.mesh * opt.mesh);
  const std::size_t njobs =
      opt.prefix != 0 && opt.prefix < trace->size() ? opt.prefix : trace->size();
  std::cout << "trace: " << trace->size() << " records, replaying " << njobs
            << " per rep x " << opt.reps << " reps on " << opt.mesh << "x"
            << opt.mesh << " (engine "
            << (opt.engine == des::EventEngine::kCalendar ? "calendar" : "heap")
            << ", coalesce " << (opt.coalesce ? "on" : "off") << ")\n";

  // Replication 0 additionally streams its per-job records into the columnar
  // store; the sink is observation-only, so rep 0's trajectory matches the
  // other reps' seeding exactly.
  core::JobRecordStore store;
  std::vector<RepResult> results(opt.reps);
  const auto wall0 = Clock::now();
  if (opt.threads <= 1) {
    for (std::size_t r = 0; r < opt.reps; ++r)
      results[r] = run_rep(opt, trace, r, r == 0 ? &store : nullptr);
  } else {
    util::ThreadPool pool(util::resolve_threads(opt.threads));
    util::parallel_for(&pool, opt.reps, [&](std::size_t r) {
      results[r] = run_rep(opt, trace, r, r == 0 ? &store : nullptr);
    });
  }
  const double wall = std::chrono::duration<double>(Clock::now() - wall0).count();

  std::uint64_t total_events = 0;
  std::uint64_t total_jobs = 0;
  for (std::size_t r = 0; r < results.size(); ++r) {
    const core::RunMetrics& m = results[r].metrics;
    total_events += m.events;
    total_jobs += m.completed;
    std::cout << "  rep " << r << ": " << m.completed << " jobs, " << m.events
              << " events, " << results[r].wall_secs << " s ("
              << static_cast<double>(m.events) / results[r].wall_secs
              << " events/s)\n";
  }
  std::cout << "total: " << total_jobs << " jobs, " << total_events
            << " events in " << wall << " s wall ("
            << static_cast<double>(total_events) / wall
            << " events/s aggregate, " << opt.threads << " threads)\n";

  write_metrics_csv(opt.out, opt, results);
  if (!opt.records.empty()) {
    std::ofstream rec(opt.records);
    if (!rec) usage_error("cannot open --records file '" + opt.records + "'");
    store.write_csv(rec);
    std::cout << "wrote " << opt.records << " (" << store.size()
              << " per-job records, rep 0)\n";
  }
  return 0;
}
