// fig09: System utilization at heavy load, all-to-all, stochastic uniform side lengths, 16x22 mesh
// Regenerates the series of the paper's Figure 09. Usage: see bench_common.hpp.

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace procsim;
  core::FigureSpec spec;
  spec.id = "fig09";
  spec.title = "System utilization at heavy load, all-to-all, stochastic uniform side lengths, 16x22 mesh";
  spec.metric = "utilization";
  spec.loads = {0.1};
  spec.series = core::paper_series();
  spec.base = bench::saturated(bench::stochastic_base(workload::SideDistribution::kUniform));
  return bench::figure_main(argc, argv, std::move(spec));
}
