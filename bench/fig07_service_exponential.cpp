// fig07: Service time vs system load, all-to-all, stochastic exponential side lengths, 16x22 mesh
// Regenerates the series of the paper's Figure 07. Usage: see bench_common.hpp.

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace procsim;
  core::FigureSpec spec;
  spec.id = "fig07";
  spec.title = "Service time vs system load, all-to-all, stochastic exponential side lengths, 16x22 mesh";
  spec.metric = "service";
  spec.loads = bench::loads_exponential();
  spec.series = core::paper_series();
  spec.base = bench::stochastic_base(workload::SideDistribution::kExponential);
  return bench::figure_main(argc, argv, std::move(spec));
}
