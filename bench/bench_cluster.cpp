// bench_cluster: fleet dispatch throughput per load-balancing policy on a
// 4x(64x64) cluster — the cluster::ClusterSim hot path (dispatch decision +
// per-mesh simulation under the shared clock), in completed jobs and
// simulator events per wall-clock second. Emitted as machine-readable JSON
// (default BENCH_cluster.json) so the perf trajectory across PRs is
// measurable in CI: bench_gate.py gates the deterministic round_robin and
// shortest_queue rows (snapshot/RNG policies ride along report-only).
//
//   bench_cluster [--fast] [--out=BENCH_cluster.json]
//
// --fast    fewer jobs (CI smoke)

#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "cluster/cluster_spec.hpp"
#include "core/experiment.hpp"

namespace {

using namespace procsim;
using Clock = std::chrono::steady_clock;

struct DispatchRow {
  std::string cluster;
  std::string policy;
  double jobs_per_sec{0};
  double events_per_sec{0};
  std::uint64_t jobs{0};
  std::uint64_t events{0};
};

DispatchRow run_policy(const std::string& policy, std::size_t jobs) {
  const std::string spec_str = "4x(64x64);balance=" + policy + ";stale=10";
  core::ExperimentConfig cfg;
  cfg.cluster = cluster::parse_cluster_spec(spec_str);
  if (!cfg.cluster) throw std::invalid_argument("bad spec " + spec_str);
  cfg.sys.geom = cfg.cluster->meshes.front().geom;
  cfg.sys.think_time = 50;
  cfg.sys.target_completions = 0;  // drain the whole stream
  cfg.workload.kind = core::WorkloadKind::kStochastic;
  cfg.workload.job_count = jobs;
  cfg.workload.stochastic.load = 0.02;  // per-mesh offered load
  cfg.seed = 42;

  const auto t0 = Clock::now();
  const core::RunMetrics m = core::run_probed(cfg, nullptr, nullptr);
  const double wall = std::chrono::duration<double>(Clock::now() - t0).count();

  DispatchRow row;
  row.cluster = cfg.cluster->canonical;
  row.policy = policy;
  row.jobs = m.completed;
  row.events = m.events;
  row.jobs_per_sec = wall > 0 ? static_cast<double>(m.completed) / wall : 0;
  row.events_per_sec = wall > 0 ? static_cast<double>(m.events) / wall : 0;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  bool fast = false;
  std::string out_path = "BENCH_cluster.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--fast") == 0) {
      fast = true;
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    } else {
      std::cerr << "bench_cluster: unknown flag " << argv[i] << "\n"
                << "usage: bench_cluster [--fast] [--out=BENCH_cluster.json]\n";
      return 2;
    }
  }
  const std::size_t jobs = fast ? 1500 : 8000;

  std::vector<DispatchRow> rows;
  for (const std::string& policy : cluster::known_dispatchers()) {
    rows.push_back(run_policy(policy, jobs));
    const DispatchRow& r = rows.back();
    std::cerr << "  " << r.cluster << " " << r.policy << ": " << r.jobs
              << " jobs, " << static_cast<std::uint64_t>(r.jobs_per_sec)
              << " jobs/s, " << static_cast<std::uint64_t>(r.events_per_sec)
              << " events/s\n";
  }

  std::ofstream out(out_path, std::ios::trunc);
  if (!out) {
    std::cerr << "bench_cluster: cannot write " << out_path << "\n";
    return 3;
  }
  out << "{\n  \"bench\": \"bench_cluster\",\n  \"mode\": \""
      << (fast ? "fast" : "full") << "\",\n  \"dispatch\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const DispatchRow& r = rows[i];
    out << "    {\"cluster\": \"" << r.cluster << "\", \"policy\": \""
        << r.policy << "\", \"jobs_per_sec\": " << r.jobs_per_sec
        << ", \"events_per_sec\": " << r.events_per_sec
        << ", \"jobs\": " << r.jobs << ", \"events\": " << r.events << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::cerr << "bench_cluster: wrote " << out_path << "\n";
  return 0;
}
