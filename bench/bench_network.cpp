// bench_network: wormhole-network throughput, stepped oracle vs batched
// fast path. Three views, emitted as machine-readable JSON (default
// BENCH_network.json) so the perf trajectory across PRs is measurable in CI:
//
//  * network hold-model churn — a steady in-flight set of packets (uniform
//    all-to-all traffic, injections spread one cycle apart) drained to
//    completion on 32x32 and 128x128 meshes, timed for both engines in
//    delivered packets per wall-clock second. The batched engine advances a
//    header across its whole free hop-run in one event, so its DES event
//    count collapses from O(hops) to O(blocking points) per packet — the
//    `events` column makes that visible;
//  * fig14-shaped end-to-end row — a full SystemSim run on the paper's
//    16x22 mesh (GABL + FCFS, stochastic all-to-all workload, think_time
//    50), stepped vs batched. The two runs must produce bit-identical
//    model metrics (turnaround, latency, blocking, packet count) — checked
//    here as a cheap standing guard in front of the perf numbers;
//  * delivery-sink dispatch — ns/delivery through the raw function-pointer
//    sink vs the std::function it replaced, so the devirtualization stays
//    measured rather than assumed.
//
//   bench_network [--fast] [--out=BENCH_network.json] [--check=K]
//
// --fast    fewer packets / jobs (CI smoke)
// --check=K exit nonzero unless the 128x128 batched/stepped speedup >= K
//           (bench_gate.py enforces the same floor from the JSON)

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "alloc/registry.hpp"
#include "core/system_sim.hpp"
#include "des/rng.hpp"
#include "des/simulator.hpp"
#include "network/wormhole_network.hpp"
#include "sched/ordered_scheduler.hpp"
#include "workload/stochastic.hpp"

namespace {

using namespace procsim;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

struct HoldRow {
  std::string mesh;
  std::string engine;
  double packets_per_sec{0};
  std::uint64_t packets{0};
  std::uint64_t events{0};
};

struct EndToEndRow {
  std::string mesh;
  std::string engine;
  double packets_per_sec{0};
  std::uint64_t packets{0};
  std::uint64_t events{0};
  core::RunMetrics metrics;
};

/// Hold-model churn: `npackets` uniform-random all-to-all packets injected
/// one cycle apart (a steady in-flight set of roughly one base latency's
/// worth), drained to empty. Identical injection sequence for both engines.
HoldRow drain_uniform(network::NetEngine engine, mesh::Geometry geom,
                      int npackets) {
  des::Simulator sim;
  network::WormholeNetwork net(sim, geom,
                               network::NetworkParams{3, 8, false, engine});
  std::uint64_t delivered = 0;
  net.set_delivery_sink(
      [](void* ctx, const network::Delivery&) {
        ++*static_cast<std::uint64_t*>(ctx);
      },
      &delivered);
  des::Xoshiro256SS rng(0xB07 + static_cast<std::uint64_t>(geom.nodes()));
  const auto nodes = static_cast<std::uint64_t>(geom.nodes());
  for (int i = 0; i < npackets; ++i) {
    const auto s = static_cast<mesh::NodeId>(rng() % nodes);
    auto t = static_cast<mesh::NodeId>(rng() % nodes);
    if (t == s) t = static_cast<mesh::NodeId>((t + 1) % geom.nodes());
    sim.schedule_at(static_cast<double>(i),
                    [&net, s, t, i] { net.inject(s, t, static_cast<std::uint64_t>(i)); });
  }
  const auto t0 = Clock::now();
  sim.run();
  const double secs = seconds_since(t0);

  HoldRow row;
  row.mesh = std::to_string(geom.width()) + "x" + std::to_string(geom.length());
  row.engine = network::net_engine_name(engine);
  row.packets = delivered;
  row.packets_per_sec = static_cast<double>(delivered) / secs;
  row.events = sim.events_executed();
  return row;
}

/// fig14-shaped end-to-end churn: the paper's 16x22 mesh, GABL + FCFS,
/// stochastic all-to-all workload with blocking-send pacing.
EndToEndRow run_end_to_end(network::NetEngine engine,
                           const std::vector<workload::Job>& jobs,
                           mesh::Geometry geom) {
  core::SystemConfig cfg;
  cfg.geom = geom;
  cfg.net = network::NetworkParams{3, 8, false, engine};
  cfg.think_time = 50;
  cfg.target_completions = 0;  // run the whole stream
  cfg.coalesce_passes = false;
  const auto allocator = alloc::make_allocator("GABL", geom, {.seed = 99});
  sched::OrderedScheduler scheduler(sched::Policy::kFcfs);
  core::SystemSim sim(cfg, *allocator, scheduler);

  const auto t0 = Clock::now();
  const core::RunMetrics m = sim.run(jobs);
  const double secs = seconds_since(t0);

  EndToEndRow row;
  row.mesh = std::to_string(geom.width()) + "x" + std::to_string(geom.length());
  row.engine = network::net_engine_name(engine);
  row.packets = m.packets;
  row.packets_per_sec = static_cast<double>(m.packets) / secs;
  row.events = m.events;
  row.metrics = m;
  return row;
}

/// The engines must agree on every model-visible number; only the DES event
/// count (and wall time) may differ. A mismatch here is a correctness bug,
/// not a perf regression — fail loudly before emitting perf rows.
bool metrics_identical(const core::RunMetrics& a, const core::RunMetrics& b) {
  return a.completed == b.completed && a.packets == b.packets &&
         a.makespan == b.makespan &&
         a.turnaround.mean() == b.turnaround.mean() &&
         a.service.mean() == b.service.mean() &&
         a.packet_latency.mean() == b.packet_latency.mean() &&
         a.packet_blocking.mean() == b.packet_blocking.mean() &&
         a.packet_hops.mean() == b.packet_hops.mean() &&
         a.utilization == b.utilization;
}

/// ns per delivery through the raw (fn, ctx) sink vs the std::function it
/// replaced. The payload (a checksum accumulate) is identical; the delta is
/// pure dispatch cost.
struct SinkTimes {
  double fn_pointer_ns{0};
  double std_function_ns{0};
};

std::uint64_t g_sink_sum = 0;

void raw_sink(void* ctx, const network::Delivery& d) {
  *static_cast<std::uint64_t*>(ctx) += d.tag + static_cast<std::uint64_t>(d.hops);
}

SinkTimes time_sink_dispatch(int calls) {
  network::Delivery d{};
  d.tag = 3;
  d.hops = 4;

  SinkTimes out;
  {
    void (*volatile fn)(void*, const network::Delivery&) = raw_sink;
    g_sink_sum = 0;
    const auto t0 = Clock::now();
    for (int i = 0; i < calls; ++i) fn(&g_sink_sum, d);
    out.fn_pointer_ns = seconds_since(t0) * 1e9 / calls;
  }
  {
    std::uint64_t* sum = &g_sink_sum;
    std::function<void(const network::Delivery&)> fn =
        [sum](const network::Delivery& dd) {
          *sum += dd.tag + static_cast<std::uint64_t>(dd.hops);
        };
    g_sink_sum = 0;
    const auto t0 = Clock::now();
    for (int i = 0; i < calls; ++i) fn(d);
    out.std_function_ns = seconds_since(t0) * 1e9 / calls;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool fast = false;
  std::string out_path = "BENCH_network.json";
  double check = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--fast") == 0) {
      fast = true;
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    } else if (std::strncmp(argv[i], "--check=", 8) == 0) {
      check = std::strtod(argv[i] + 8, nullptr);
    } else {
      std::cerr << "warning: unknown option " << argv[i] << "\n";
    }
  }

  // --- network hold-model churn -----------------------------------------
  std::vector<HoldRow> hold;
  double stepped_128 = 0, batched_128 = 0;
  for (const auto& [w, l, npackets] :
       {std::tuple{32, 32, fast ? 4000 : 40'000},
        std::tuple{128, 128, fast ? 4000 : 30'000}}) {
    const mesh::Geometry geom(w, l);
    for (const auto engine :
         {network::NetEngine::kStepped, network::NetEngine::kBatched}) {
      const HoldRow row = drain_uniform(engine, geom, npackets);
      if (w == 128) {
        (engine == network::NetEngine::kStepped ? stepped_128 : batched_128) =
            row.packets_per_sec;
      }
      hold.push_back(row);
    }
  }
  const double speedup_128 = stepped_128 > 0 ? batched_128 / stepped_128 : 0;

  // --- fig14-shaped end-to-end churn ------------------------------------
  const mesh::Geometry geom(16, 22);
  const std::size_t njobs = fast ? 150 : 800;
  workload::StochasticParams params;
  params.load = 0.01;
  des::Xoshiro256SS wl_rng(0xF14);
  const std::vector<workload::Job> jobs =
      workload::generate_stochastic(params, geom, njobs, wl_rng);

  std::vector<EndToEndRow> e2e;
  e2e.push_back(run_end_to_end(network::NetEngine::kStepped, jobs, geom));
  e2e.push_back(run_end_to_end(network::NetEngine::kBatched, jobs, geom));
  if (!metrics_identical(e2e[0].metrics, e2e[1].metrics)) {
    std::cerr << "FAIL: stepped and batched end-to-end runs disagree on "
                 "model metrics — engine equivalence is broken\n";
    return 1;
  }

  // --- delivery-sink dispatch -------------------------------------------
  const SinkTimes sink = time_sink_dispatch(fast ? 2'000'000 : 20'000'000);

  // --- report ------------------------------------------------------------
  std::cout << "network hold-model churn (delivered packets/s):\n";
  for (const HoldRow& r : hold)
    std::cout << "  " << r.mesh << " " << r.engine << ": " << r.packets_per_sec
              << " (" << r.packets << " packets, " << r.events << " events)\n";
  std::cout << "  128x128 batched/stepped speedup: " << speedup_128 << "x\n";
  std::cout << "fig14-shaped end-to-end churn (packets/s):\n";
  for (const EndToEndRow& r : e2e)
    std::cout << "  " << r.mesh << " GABL " << r.engine << ": "
              << r.packets_per_sec << " (" << r.packets << " packets, "
              << r.events << " events)\n";
  std::cout << "delivery-sink dispatch (ns/call): fn_pointer "
            << sink.fn_pointer_ns << ", std_function " << sink.std_function_ns
            << "\n";

  std::ofstream json(out_path);
  json << "{\n  \"bench\": \"bench_network\",\n  \"mode\": \""
       << (fast ? "fast" : "full") << "\",\n  \"hold\": [\n";
  for (std::size_t i = 0; i < hold.size(); ++i) {
    const HoldRow& r = hold[i];
    json << "    {\"mesh\": \"" << r.mesh << "\", \"engine\": \"" << r.engine
         << "\", \"packets_per_sec\": " << r.packets_per_sec
         << ", \"packets\": " << r.packets << ", \"events\": " << r.events
         << "}" << (i + 1 < hold.size() ? "," : "") << "\n";
  }
  json << "  ],\n  \"end_to_end\": [\n";
  for (std::size_t i = 0; i < e2e.size(); ++i) {
    const EndToEndRow& r = e2e[i];
    json << "    {\"mesh\": \"" << r.mesh << "\", \"engine\": \"" << r.engine
         << "\", \"packets_per_sec\": " << r.packets_per_sec
         << ", \"packets\": " << r.packets << ", \"events\": " << r.events
         << "}" << (i + 1 < e2e.size() ? "," : "") << "\n";
  }
  json << "  ],\n  \"speedup\": {\"mesh\": \"128x128\", \"traffic\": "
          "\"all_to_all\", \"stepped_packets_per_sec\": "
       << stepped_128 << ", \"batched_packets_per_sec\": " << batched_128
       << ", \"speedup\": " << speedup_128
       << "},\n  \"sink_dispatch\": {\"fn_pointer_ns\": " << sink.fn_pointer_ns
       << ", \"std_function_ns\": " << sink.std_function_ns << "}\n}\n";
  std::cout << "wrote " << out_path << "\n";

  if (check > 0 && speedup_128 < check) {
    std::cerr << "FAIL: 128x128 batched/stepped speedup is " << speedup_128
              << "x, required >= " << check << "\n";
    return 1;
  }
  return 0;
}
