// fig08: System utilization at heavy load, all-to-all, real workload, 16x22 mesh
// Regenerates the series of the paper's Figure 08. Usage: see bench_common.hpp.

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace procsim;
  core::FigureSpec spec;
  spec.id = "fig08";
  spec.title = "System utilization at heavy load, all-to-all, real workload, 16x22 mesh";
  spec.metric = "utilization";
  spec.loads = {0.05};
  spec.series = core::paper_series();
  spec.base = bench::saturated(bench::trace_base());
  return bench::figure_main(argc, argv, std::move(spec));
}
