// bench_workload: job-generation throughput of every workload source kind on
// a 64x64 mesh, timed through the streaming interface (reset + drain). Emits
// machine-readable JSON (default BENCH_workload.json) so the workload layer
// joins the perf trajectory alongside BENCH_alloc.json.
//
//   bench_workload [--fast] [--out=BENCH_workload.json] [--swf=tests/data/mini.swf]
//
// --fast shrinks the drained job counts (CI smoke). The SWF row replays the
// given file (looping `reset` + drain until the job budget is spent); it is
// skipped with a notice when the file cannot be opened, so the bench also
// runs from build trees without the fixture checked out.

#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "mesh/coord.hpp"
#include "workload/source_registry.hpp"

namespace {

using namespace procsim;
using Clock = std::chrono::steady_clock;

struct Row {
  std::string source;
  std::uint64_t jobs{0};
  double jobs_per_sec{0};
};

}  // namespace

int main(int argc, char** argv) {
  bool fast = false;
  std::string out_path = "BENCH_workload.json";
  std::string swf_path = "tests/data/mini.swf";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--fast") == 0) {
      fast = true;
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    } else if (std::strncmp(argv[i], "--swf=", 6) == 0) {
      swf_path = argv[i] + 6;
    } else {
      std::cerr << "warning: unknown option " << argv[i] << "\n";
    }
  }

  const mesh::Geometry geom(64, 64);
  const std::uint64_t budget = fast ? 20'000 : 200'000;

  // One spec per source kind; `jobs` pins the per-reset stream length where
  // the kind supports it, so a drain has a defined end.
  std::vector<std::string> specs = {
      "uniform;jobs=" + std::to_string(budget),
      "exponential;jobs=" + std::to_string(budget),
      "real;jobs=" + std::to_string(fast ? 5'000 : 10'658),
      "saturation;n=" + std::to_string(budget),
      "bursty;jobs=" + std::to_string(budget),
      "swf:" + swf_path,
  };

  std::vector<Row> rows;
  std::int64_t sink = 0;  // consumes every job: nothing optimizes away
  for (const std::string& spec : specs) {
    std::unique_ptr<workload::Source> src;
    try {
      src = workload::make_source(spec, geom);
    } catch (const std::exception& e) {
      std::cerr << "skipping " << spec << ": " << e.what() << "\n";
      continue;
    }
    Row row;
    row.source = src->name();
    const auto t0 = Clock::now();
    std::uint64_t seed = 1;
    while (row.jobs < budget) {
      src->reset(seed++);  // short streams (the SWF fixture) loop until spent
      std::uint64_t drained = 0;
      while (auto job = src->next_job()) {
        sink += job->processors + job->total_messages();
        ++row.jobs;
        ++drained;
        if (row.jobs >= budget) break;
      }
      if (drained == 0) break;  // empty stream: avoid spinning forever
    }
    const double dt = std::chrono::duration<double>(Clock::now() - t0).count();
    row.jobs_per_sec = dt > 0 ? static_cast<double>(row.jobs) / dt : 0;
    rows.push_back(row);
  }

  std::cout << "workload source throughput (64x64, streaming reset+drain):\n";
  for (const Row& r : rows)
    std::cout << "  " << r.source << ": " << r.jobs_per_sec << " jobs/s ("
              << r.jobs << " jobs)\n";
  std::cout << "(sink=" << sink << ")\n";

  std::ofstream json(out_path);
  json << "{\n  \"bench\": \"bench_workload\",\n  \"mode\": \""
       << (fast ? "fast" : "full") << "\",\n  \"mesh\": \"64x64\",\n  \"sources\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    json << "    {\"source\": \"" << r.source << "\", \"jobs\": " << r.jobs
         << ", \"jobs_per_sec\": " << r.jobs_per_sec << "}"
         << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  std::cout << "wrote " << out_path << "\n";
  return 0;
}
