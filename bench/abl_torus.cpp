// Ablation (paper's future work, §6): the same strategies on a 2D torus.
// Wrap-around links shorten paths (dateline virtual channels keep wormhole
// routing deadlock-free), which mostly helps the dispersing strategies —
// non-contiguity costs less when the network diameter halves.

#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace procsim;
  const core::RunOptions opts = core::parse_run_options(argc, argv);

  for (const bool torus : {false, true}) {
    core::FigureSpec spec;
    spec.id = torus ? "abl_torus_on" : "abl_torus_off";
    spec.title = std::string("packet latency vs load, stochastic uniform, 16x22 ") +
                 (torus ? "torus" : "mesh");
    spec.metric = "latency";
    spec.loads = bench::loads_uniform();
    spec.base = bench::stochastic_base(workload::SideDistribution::kUniform);
    spec.base.sys.net.torus = torus;
    spec.series = core::paper_series();
    core::run_figure(spec, opts, std::cout);
    std::cout << "\n";
  }
  return 0;
}
