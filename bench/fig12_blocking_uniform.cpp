// fig12: Packet blocking time vs system load, all-to-all, stochastic uniform side lengths, 16x22 mesh
// Regenerates the series of the paper's Figure 12. Usage: see bench_common.hpp.

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace procsim;
  core::FigureSpec spec;
  spec.id = "fig12";
  spec.title = "Packet blocking time vs system load, all-to-all, stochastic uniform side lengths, 16x22 mesh";
  spec.metric = "blocking";
  spec.loads = bench::loads_uniform();
  spec.series = core::paper_series();
  spec.base = bench::stochastic_base(workload::SideDistribution::kUniform);
  return bench::figure_main(argc, argv, std::move(spec));
}
