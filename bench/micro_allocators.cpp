// Micro-benchmark (google-benchmark): allocate/release throughput of every
// strategy under steady churn on the paper's 16×22 mesh. GABL pays for its
// exhaustive largest-free searches; Paging(0) and MBS are near-constant
// time. The paper argues GABL's busy list "is often small even when the size
// of the mesh scales up" — the Mesh32x44 variants probe that scaling claim.

#include <benchmark/benchmark.h>

#include <vector>

#include "core/experiment.hpp"
#include "des/distributions.hpp"
#include "des/rng.hpp"

namespace {

using namespace procsim;

void churn(benchmark::State& state, const char* name, std::int32_t w,
           std::int32_t l) {
  const mesh::Geometry geom(w, l);
  const core::AllocatorSpec spec{name};
  const auto alloc = core::make_allocator(spec, geom, 1);
  des::Xoshiro256SS rng(99);

  std::vector<alloc::Placement> held;
  std::int64_t ops = 0;
  for (auto _ : state) {
    const auto rw =
        static_cast<std::int32_t>(des::sample_uniform_int(rng, 1, geom.width() / 2));
    const auto rl =
        static_cast<std::int32_t>(des::sample_uniform_int(rng, 1, geom.length() / 2));
    if (auto p = alloc->allocate(alloc::Request{rw, rl, rw * rl})) {
      held.push_back(std::move(*p));
    }
    // Keep occupancy around half: release oldest when the mesh fills up.
    while (alloc->free_processors() < geom.nodes() / 2 && !held.empty()) {
      alloc->release(held.front());
      held.erase(held.begin());
    }
    ++ops;
  }
  for (const auto& p : held) alloc->release(p);
  state.SetItemsProcessed(ops);
}

}  // namespace

BENCHMARK_CAPTURE(churn, GABL_16x22, "GABL", 16, 22);
BENCHMARK_CAPTURE(churn, Paging0_16x22, "Paging(0)", 16, 22);
BENCHMARK_CAPTURE(churn, MBS_16x22, "MBS", 16, 22);
BENCHMARK_CAPTURE(churn, FirstFit_16x22, "FirstFit", 16, 22);
BENCHMARK_CAPTURE(churn, BestFit_16x22, "BestFit", 16, 22);
BENCHMARK_CAPTURE(churn, Random_16x22, "Random", 16, 22);
BENCHMARK_CAPTURE(churn, GABL_32x44, "GABL", 32, 44);
BENCHMARK_CAPTURE(churn, Paging0_32x44, "Paging(0)", 32, 44);
BENCHMARK_CAPTURE(churn, MBS_32x44, "MBS", 32, 44);
