#pragma once

// Shared experiment templates for the per-figure bench binaries. Every main
// figure of the paper plots the six series {GABL, Paging(0), MBS} × {FCFS,
// SSD} on a 16×22 mesh with st = 3, P_len = 8, num_mes = 5 and all-to-all
// traffic; the binaries differ only in workload, metric and load axis.
//
// Common flags (parse_run_options): --fast (1 rep, 200 jobs), --jobs=N,
// --reps=N, --seed=N, --threads=N (farm the independent figure cells across
// N worker threads, 0 = all hardware threads; the CSV is byte-identical to
// --threads=1 for the same seed).

#include <iostream>
#include <utility>
#include <vector>

#include "core/experiment.hpp"
#include "core/figure_runner.hpp"

namespace procsim::bench {

/// Shared main() body of the per-figure binaries: parse the common flags,
/// sweep the figure, print the CSV (with 95 % CI columns) to stdout.
inline int figure_main(int argc, char** argv, core::FigureSpec spec) {
  const core::RunOptions opts = core::parse_run_options(argc, argv);
  core::run_figure(spec, opts, std::cout, /*with_ci=*/true);
  return 0;
}

inline core::ExperimentConfig base_config() {
  core::ExperimentConfig cfg;
  cfg.sys.geom = mesh::Geometry(16, 22);
  cfg.sys.net = network::NetworkParams{3, 8, false};
  cfg.sys.think_time = 50;  // compute phase between a processor's sends
  cfg.sys.target_completions = 1000;
  cfg.seed = 42;
  return cfg;
}

/// Stochastic workload template (paper §5, first workload).
inline core::ExperimentConfig stochastic_base(workload::SideDistribution dist) {
  core::ExperimentConfig cfg = base_config();
  cfg.workload.kind = core::WorkloadKind::kStochastic;
  cfg.workload.job_count = cfg.sys.target_completions;
  cfg.workload.stochastic.side_dist = dist;
  cfg.workload.stochastic.mean_messages = 5.0;
  return cfg;
}

/// Real-workload template: the synthetic SDSC Paragon stream (paper §5,
/// second workload; DESIGN.md §2.1 for the substitution).
inline core::ExperimentConfig trace_base() {
  core::ExperimentConfig cfg = base_config();
  cfg.workload.kind = core::WorkloadKind::kTrace;
  // Default replay effort keeps the whole 15-figure suite to minutes; raise
  // with --jobs=N (up to the full 10,658-job stream) for final numbers.
  cfg.sys.target_completions = 600;
  cfg.workload.replay.prefix = 1800;
  return cfg;
}

/// Saturation variant used by the utilization figures: the paper drives the
/// load "such that the waiting queue is filled very early, allowing each
/// strategy to reach its upper limits of utilization".
inline core::ExperimentConfig saturated(core::ExperimentConfig cfg) {
  cfg.workload.job_count = 3 * cfg.sys.target_completions;
  if (cfg.workload.replay.prefix)
    cfg.workload.replay.prefix = 3 * cfg.sys.target_completions;
  // Skip the cold-start fill so the time average reflects the steady state.
  cfg.sys.warmup_completions = cfg.sys.target_completions / 10;
  return cfg;
}

inline std::vector<double> loads_real_turnaround() {
  return {0.0005, 0.001, 0.002, 0.003, 0.004, 0.005};
}
inline std::vector<double> loads_real() {
  return {0.0025, 0.005, 0.0075, 0.01, 0.015, 0.02};
}
inline std::vector<double> loads_uniform() {
  return {0.005, 0.01, 0.015, 0.02, 0.025, 0.03};
}
inline std::vector<double> loads_exponential() {
  return {0.005, 0.01, 0.02, 0.03, 0.04, 0.05};
}

}  // namespace procsim::bench
