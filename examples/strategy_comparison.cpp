// strategy_comparison: every allocation strategy in the library — the
// paper's three non-contiguous strategies, the two contiguous baselines and
// the Random scatter lower bound — under FCFS and SSD on the same stochastic
// workload. The mean-hops column makes the contiguity story visible: GABL
// keeps messages short, Random maximally disperses them, and the contiguous
// baselines pay instead with queueing (turnaround) through external
// fragmentation.
//
//   ./strategy_comparison [--jobs=N] [--seed=N] [--workload=SPEC] [--sched=LIST]
//
// --workload takes any workload::make_source spec (the same grammar as
// `procsim_sweep --workload=`): e.g. "bursty;b=8", "saturation;n=2000",
// "swf:trace.swf" — the whole table then compares the strategies under that
// stream instead of the default uniform stochastic one. --sched takes a
// comma list of scheduler registry specs (default FCFS,SSD; also SJF, LJF,
// lookahead:k, backfill[:conservative][;shape]), one table block per policy.
//
// The wait_p95 / sd_p99 / starved columns are the fairness view: mean
// turnaround hides exactly the per-job tail that lookahead/backfill policies
// trade away, so the overtaking disciplines are judged here by their P95
// wait, P99 bounded slowdown, and how many jobs waited more than 4x the
// median.

#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "core/experiment_spec.hpp"
#include "core/figure_runner.hpp"

int main(int argc, char** argv) {
  using namespace procsim;
  std::string workload_spec;
  std::string sched_arg = "FCFS,SSD";
  std::vector<char*> passthrough{argv[0]};
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--workload=", 11) == 0)
      workload_spec = argv[i] + 11;
    else if (std::strncmp(argv[i], "--sched=", 8) == 0)
      sched_arg = argv[i] + 8;
    else
      passthrough.push_back(argv[i]);
  }
  std::vector<std::string> sched_names;
  {
    std::istringstream in(sched_arg);
    std::string token;
    while (std::getline(in, token, ','))
      if (!token.empty()) sched_names.push_back(token);
  }
  if (sched_names.empty()) {
    std::fprintf(stderr, "--sched needs at least one policy\n");
    return 1;
  }
  const core::RunOptions opts = core::parse_run_options(
      static_cast<int>(passthrough.size()), passthrough.data());

  core::ExperimentConfig cfg;
  cfg.sys.geom = mesh::Geometry(16, 22);
  cfg.sys.think_time = 50;
  cfg.sys.target_completions = opts.jobs ? opts.jobs : 1000;
  cfg.workload.kind = core::WorkloadKind::kStochastic;
  cfg.workload.job_count = cfg.sys.target_completions;
  cfg.workload.stochastic.load = 0.02;
  cfg.workload.load = 0.02;
  cfg.seed = opts.seed;
  if (!workload_spec.empty()) {
    // Through the shared fail-fast entry point (unknown kinds exit listing
    // the known ones); the driver's job cap survives a registry spec.
    const std::size_t cap = cfg.workload.job_count;
    core::ExperimentSpecStrings axes;
    axes.workload = workload_spec;
    try {
      core::apply_experiment_spec(axes, cfg);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return 1;
    }
    if (cfg.workload.job_count == 0) cfg.workload.job_count = cap;
  }

  // Every strategy the registry knows, by name — the same names
  // `procsim_sweep --alloc=...` accepts.
  const char* names[] = {"GABL", "Paging(0)", "MBS", "Random", "FirstFit", "BestFit"};

  std::printf("%s workload, 16x22 mesh, all-to-all\n\n",
              workload_spec.empty() ? "stochastic uniform (load 0.02)"
                                    : workload_spec.c_str());
  std::printf("%-16s %12s %12s %8s %8s %10s %10s %10s %8s %8s\n", "strategy",
              "turnaround", "service", "util", "hops", "latency", "blocking",
              "wait_p95", "sd_p99", "starved");
  for (const std::string& sched_name : sched_names) {
    for (const char* name : names) {
      core::ExperimentSpecStrings axes;
      axes.alloc = name;
      axes.sched = sched_name;
      try {
        core::apply_experiment_spec(axes, cfg);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 1;
      }
      const core::RunMetrics m = core::run_once(cfg);
      std::printf("%-16s %12.1f %12.1f %8.3f %8.2f %10.2f %10.2f %10.1f %8.2f %8.0f\n",
                  cfg.series_label().c_str(), m.turnaround.mean(), m.service.mean(),
                  m.utilization, m.packet_hops.mean(), m.packet_latency.mean(),
                  m.packet_blocking.mean(), m.jobs.wait.p95, m.jobs.slowdown.p99,
                  m.jobs.starved);
    }
    std::printf("\n");
  }
  return 0;
}
