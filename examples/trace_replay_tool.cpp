// trace_replay_tool: inspect a workload trace and replay it through the
// simulator at a chosen offered load.
//
//   ./trace_replay_tool                     # synthetic SDSC-Paragon model
//   ./trace_replay_tool --swf=trace.swf     # a real SWF file
//   ./trace_replay_tool --load=0.01 --jobs=2000
//
// Prints the trace's summary statistics (compare with the paper's published
// characterisation), a job-size histogram, and the five performance metrics
// for each of the paper's six strategy pairs. The replay itself streams:
// run_once builds a workload::TraceSource and the simulator pulls one
// arrival ahead, so traces far larger than memory replay fine.

#include <cstdio>
#include <cstring>
#include <string>

#include "core/experiment.hpp"
#include "core/figure_runner.hpp"
#include "des/rng.hpp"
#include "stats/histogram.hpp"
#include "workload/paragon_model.hpp"
#include "workload/swf.hpp"

int main(int argc, char** argv) {
  using namespace procsim;

  std::string swf_path;
  double load = 0.005;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--swf=", 6) == 0) swf_path = argv[i] + 6;
    if (std::strncmp(argv[i], "--load=", 7) == 0) load = std::atof(argv[i] + 7);
  }
  const core::RunOptions opts = core::parse_run_options(argc, argv);

  // --- trace statistics -----------------------------------------------
  std::vector<workload::TraceJob> trace;
  if (swf_path.empty()) {
    des::Xoshiro256SS rng(opts.seed);
    trace = workload::generate_paragon_trace(workload::ParagonModelParams{}, rng);
    std::printf("trace: synthetic SDSC Paragon model (no --swf given)\n");
  } else {
    trace = workload::load_swf_file(swf_path, 352);
    std::printf("trace: %s\n", swf_path.c_str());
  }
  const workload::TraceStats stats = workload::compute_stats(trace);
  std::printf("jobs=%zu  mean_interarrival=%.1f s  mean_size=%.1f  max_size=%d  "
              "pow2_fraction=%.2f  mean_runtime=%.0f s\n",
              stats.jobs, stats.mean_interarrival, stats.mean_size, stats.max_size,
              stats.power_of_two_fraction, stats.mean_runtime);

  stats::Histogram sizes(0, 360, 12);
  for (const auto& j : trace) sizes.add(j.processors);
  std::printf("\njob-size histogram (30-processor bins):\n");
  for (std::size_t b = 0; b < sizes.bins(); ++b) {
    std::printf("%4.0f-%4.0f |", sizes.bin_lo(b), sizes.bin_lo(b) + 30);
    const int bar = static_cast<int>(sizes.fraction(b) * 120);
    for (int i = 0; i < bar; ++i) std::printf("#");
    std::printf(" %.1f%%\n", sizes.fraction(b) * 100);
  }

  // --- replay ----------------------------------------------------------
  std::printf("\nreplay at load %.4f jobs/time-unit (f = %.4f):\n\n", load,
              workload::arrival_factor_for_load(load, stats.mean_interarrival));
  std::printf("%-16s %12s %12s %8s %10s %10s\n", "strategy", "turnaround", "service",
              "util", "latency", "blocking");

  core::ExperimentConfig cfg;
  cfg.sys.geom = mesh::Geometry(16, 22);
  cfg.sys.think_time = 50;
  cfg.sys.target_completions = opts.jobs ? opts.jobs : 1000;
  cfg.workload.kind = core::WorkloadKind::kTrace;
  cfg.workload.swf_path = swf_path;
  cfg.workload.load = load;
  cfg.workload.replay.prefix = 3 * cfg.sys.target_completions;
  cfg.seed = opts.seed;

  for (const core::Series& s : core::paper_series()) {
    cfg.allocator = s.allocator;
    cfg.scheduler = s.scheduler;
    const core::RunMetrics m = core::run_once(cfg);
    std::printf("%-16s %12.1f %12.1f %8.3f %10.2f %10.2f\n",
                cfg.series_label().c_str(), m.turnaround.mean(), m.service.mean(),
                m.utilization, m.packet_latency.mean(), m.packet_blocking.mean());
  }
  return 0;
}
