// Quickstart: simulate one experiment point of the paper — the six strategy
// pairs {GABL, Paging(0), MBS} × {FCFS, SSD} on a 16×22 wormhole mesh under
// the stochastic uniform workload — and print the five performance metrics.
//
// Build & run:   cmake -B build -G Ninja && cmake --build build
//                ./build/examples/quickstart [--jobs=N] [--seed=N]

#include <cstdio>

#include "core/experiment.hpp"
#include "core/figure_runner.hpp"

int main(int argc, char** argv) {
  using namespace procsim;

  const core::RunOptions opts = core::parse_run_options(argc, argv);

  core::ExperimentConfig cfg;
  cfg.sys.geom = mesh::Geometry(16, 22);            // the paper's partition
  cfg.sys.net = network::NetworkParams{3, 8, false}; // st = 3, P_len = 8
  cfg.sys.target_completions = opts.jobs ? opts.jobs : 1000;
  cfg.workload.kind = core::WorkloadKind::kStochastic;
  cfg.workload.job_count = cfg.sys.target_completions;
  cfg.workload.stochastic.load = 0.015;             // jobs per time unit
  cfg.workload.stochastic.side_dist = workload::SideDistribution::kUniform;
  cfg.workload.stochastic.mean_messages = 5.0;      // num_mes
  cfg.seed = opts.seed;

  std::printf("%-14s %12s %12s %12s %12s %12s\n", "strategy", "turnaround",
              "service", "util", "latency", "blocking");
  for (const core::Series& s : core::paper_series()) {
    cfg.allocator = s.allocator;
    cfg.scheduler = s.scheduler;
    const core::RunMetrics m = core::run_once(cfg);
    std::printf("%-14s %12.1f %12.1f %12.3f %12.2f %12.2f\n",
                cfg.series_label().c_str(), m.turnaround.mean(), m.service.mean(),
                m.utilization, m.packet_latency.mean(), m.packet_blocking.mean());
  }
  return 0;
}
