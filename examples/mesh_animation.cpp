// mesh_animation: watch a 16×22 mesh fill and fragment under an allocation
// strategy. Jobs arrive stochastically, hold their processors for an
// exponential time, and depart; the mesh occupancy is printed as ASCII
// frames (one letter per job). Fragmentation is directly visible: GABL keeps
// rectangular islands, MBS scatters buddies, Paging compacts toward the
// first row.
//
//   ./mesh_animation [gabl|paging|mbs|random] [frames]

#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "des/distributions.hpp"
#include "des/simulator.hpp"
#include "workload/shape.hpp"

namespace {

using namespace procsim;

struct LiveJob {
  alloc::Placement placement;
  char letter;
};

void print_frame(const alloc::Allocator& allocator,
                 const std::map<std::uint64_t, LiveJob>& live, double now,
                 std::size_t queue_len) {
  const mesh::Geometry& g = allocator.geometry();
  std::vector<char> grid(static_cast<std::size_t>(g.nodes()), '.');
  for (const auto& [id, job] : live)
    for (const mesh::SubMesh& b : job.placement.blocks)
      for (std::int32_t y = b.y1; y <= b.y2; ++y)
        for (std::int32_t x = b.x1; x <= b.x2; ++x)
          grid[static_cast<std::size_t>(g.id(mesh::Coord{x, y}))] = job.letter;

  std::printf("t=%-9.0f busy=%d/%d jobs=%zu queued=%zu\n", now,
              g.nodes() - allocator.free_processors(), g.nodes(), live.size(),
              queue_len);
  for (std::int32_t y = g.length() - 1; y >= 0; --y) {
    for (std::int32_t x = 0; x < g.width(); ++x)
      std::printf("%c", grid[static_cast<std::size_t>(g.id(mesh::Coord{x, y}))]);
    std::printf("\n");
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  core::AllocatorSpec spec;  // defaults to GABL
  if (argc > 1) {
    if (std::strcmp(argv[1], "paging") == 0) spec = core::AllocatorSpec{"Paging(0)"};
    if (std::strcmp(argv[1], "mbs") == 0) spec = core::AllocatorSpec{"MBS"};
    if (std::strcmp(argv[1], "random") == 0) spec = core::AllocatorSpec{"Random"};
  }
  const int frames = argc > 2 ? std::atoi(argv[2]) : 6;

  const mesh::Geometry geom(16, 22);
  const auto allocator = core::make_allocator(spec, geom, 7);
  des::Simulator sim;
  des::Xoshiro256SS rng(7);

  std::printf("strategy: %s — '.' free, letters = jobs\n\n", allocator->name().c_str());

  std::map<std::uint64_t, LiveJob> live;
  std::vector<std::pair<alloc::Request, std::uint64_t>> queue;  // FCFS
  std::uint64_t next_id = 0;
  char next_letter = 'A';

  std::function<void()> try_start;  // self-referential: departures re-enter
  try_start = [&] {
    while (!queue.empty()) {
      const auto [req, id] = queue.front();
      auto placement = allocator->allocate(req);
      if (!placement) break;
      queue.erase(queue.begin());
      live.emplace(id, LiveJob{std::move(*placement), next_letter});
      next_letter = next_letter == 'Z' ? 'A' : static_cast<char>(next_letter + 1);
      const double hold = des::sample_exponential(rng, 600.0);
      const std::uint64_t jid = id;
      sim.schedule_in(hold, [&, jid] {
        allocator->release(live.at(jid).placement);
        live.erase(jid);
        try_start();  // departures unblock the FCFS head
      });
    }
  };

  // Poisson arrivals of near-square jobs sized like the Paragon trace.
  std::function<void()> arrive = [&] {
    const auto p = static_cast<std::int32_t>(des::sample_uniform_int(rng, 2, 96));
    const auto [w, l] = workload::shape_for_processors(p, geom);
    queue.emplace_back(alloc::Request{w, l, p}, next_id++);
    try_start();
    sim.schedule_in(des::sample_exponential(rng, 120.0), arrive);
  };
  sim.schedule_in(0, arrive);

  const double frame_dt = 1500;
  for (int f = 1; f <= frames; ++f) {
    const double at = f * frame_dt;
    sim.schedule_at(at, [&, at] { print_frame(*allocator, live, at, queue.size()); });
  }
  sim.run_until(frames * frame_dt + 1);
  return 0;
}
