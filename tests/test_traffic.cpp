#include <gtest/gtest.h>

#include <set>

#include "des/rng.hpp"
#include "network/traffic.hpp"

namespace {

using procsim::des::Xoshiro256SS;
using procsim::network::generate_message_plan;
using procsim::network::IndexPair;
using procsim::network::map_plan;
using procsim::network::TrafficPattern;

TEST(Traffic, EmptyForSingleProcessor) {
  Xoshiro256SS rng(1);
  EXPECT_TRUE(generate_message_plan(TrafficPattern::kAllToAll, 1, 5, rng).empty());
  EXPECT_TRUE(generate_message_plan(TrafficPattern::kAllToAll, 8, 0, rng).empty());
  EXPECT_THROW((void)generate_message_plan(TrafficPattern::kAllToAll, 8, -1, rng),
               std::invalid_argument);
}

TEST(Traffic, NoSelfMessagesAnyPattern) {
  Xoshiro256SS rng(2);
  for (const auto pattern :
       {TrafficPattern::kAllToAll, TrafficPattern::kOneToAll, TrafficPattern::kRandomPairs,
        TrafficPattern::kRingNeighbour}) {
    for (const std::int32_t k : {2, 3, 7, 32}) {
      const auto plan = generate_message_plan(pattern, k, 200, rng);
      ASSERT_EQ(plan.size(), 200u);
      for (const auto& [s, d] : plan) {
        EXPECT_NE(s, d);
        EXPECT_GE(s, 0);
        EXPECT_LT(s, k);
        EXPECT_GE(d, 0);
        EXPECT_LT(d, k);
      }
    }
  }
}

TEST(Traffic, AllToAllSpreadsSources) {
  Xoshiro256SS rng(3);
  // count <= k consecutive slots of the phase schedule have distinct sources.
  const auto plan = generate_message_plan(TrafficPattern::kAllToAll, 20, 20, rng);
  std::set<std::int32_t> sources;
  for (const auto& [s, d] : plan) sources.insert(s);
  EXPECT_EQ(sources.size(), 20u);
}

TEST(Traffic, AllToAllCoversAllPairsOverFullSweep) {
  Xoshiro256SS rng(4);
  const std::int32_t k = 6;
  const auto plan = generate_message_plan(TrafficPattern::kAllToAll, k, k * (k - 1), rng);
  std::set<IndexPair> pairs(plan.begin(), plan.end());
  EXPECT_EQ(pairs.size(), static_cast<std::size_t>(k * (k - 1)));
}

TEST(Traffic, OneToAllAlwaysFromRoot) {
  Xoshiro256SS rng(5);
  const auto plan = generate_message_plan(TrafficPattern::kOneToAll, 9, 40, rng);
  std::set<std::int32_t> dsts;
  for (const auto& [s, d] : plan) {
    EXPECT_EQ(s, 0);
    dsts.insert(d);
  }
  EXPECT_EQ(dsts.size(), 8u);  // sweeps every peer
}

TEST(Traffic, RingNeighbourStepsByOne) {
  Xoshiro256SS rng(6);
  const auto plan = generate_message_plan(TrafficPattern::kRingNeighbour, 5, 30, rng);
  for (const auto& [s, d] : plan) EXPECT_EQ(d, (s + 1) % 5);
}

TEST(Traffic, RandomPairsUniformish) {
  Xoshiro256SS rng(7);
  const auto plan = generate_message_plan(TrafficPattern::kRandomPairs, 4, 40000, rng);
  std::array<int, 4> src_counts{};
  for (const auto& [s, d] : plan) ++src_counts[static_cast<std::size_t>(s)];
  for (const int c : src_counts) EXPECT_NEAR(c, 10000, 500);
}

TEST(Traffic, PlanIsDeterministicPerSeed) {
  Xoshiro256SS a(42), b(42);
  const auto p1 = generate_message_plan(TrafficPattern::kAllToAll, 11, 50, a);
  const auto p2 = generate_message_plan(TrafficPattern::kAllToAll, 11, 50, b);
  EXPECT_EQ(p1, p2);
}

TEST(Traffic, MapPlanBindsIndicesToNodes) {
  const std::vector<IndexPair> plan{{0, 2}, {2, 1}};
  const std::vector<procsim::mesh::NodeId> nodes{10, 20, 30};
  const auto traffic = map_plan(plan, nodes);
  ASSERT_EQ(traffic.size(), 2u);
  EXPECT_EQ(traffic[0], std::make_pair(10, 30));
  EXPECT_EQ(traffic[1], std::make_pair(30, 20));
}

TEST(Traffic, MapPlanRejectsBadIndices) {
  const std::vector<procsim::mesh::NodeId> nodes{10, 20};
  EXPECT_THROW((void)map_plan(std::vector<IndexPair>{{0, 2}}, nodes), std::invalid_argument);
  EXPECT_THROW((void)map_plan(std::vector<IndexPair>{{1, 1}}, nodes), std::invalid_argument);
  EXPECT_THROW((void)map_plan(std::vector<IndexPair>{{-1, 0}}, nodes), std::invalid_argument);
}

TEST(Traffic, PatternNames) {
  EXPECT_STREQ(to_string(TrafficPattern::kAllToAll), "all-to-all");
  EXPECT_STREQ(to_string(TrafficPattern::kOneToAll), "one-to-all");
  EXPECT_STREQ(to_string(TrafficPattern::kRandomPairs), "random");
  EXPECT_STREQ(to_string(TrafficPattern::kRingNeighbour), "ring-neighbour");
}

}  // namespace
