#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "alloc/contiguous.hpp"
#include "alloc/gabl.hpp"
#include "alloc/mbs.hpp"
#include "alloc/paging.hpp"
#include "alloc/random_alloc.hpp"

namespace {

using procsim::alloc::ContiguousAllocator;
using procsim::alloc::ContiguousPolicy;
using procsim::alloc::GablAllocator;
using procsim::alloc::MbsAllocator;
using procsim::alloc::PagingAllocator;
using procsim::alloc::Placement;
using procsim::alloc::RandomAllocator;
using procsim::alloc::Request;
using procsim::mesh::Coord;
using procsim::mesh::Geometry;
using procsim::mesh::SubMesh;

// ------------------------------------------------------------------- Paging

TEST(Paging, Paging0TakesFirstFreeNodesRowMajor) {
  PagingAllocator a(Geometry(4, 4), 0);
  const auto p = a.allocate(Request{2, 3, 5});
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->allocated, 5);
  ASSERT_EQ(p->compute_nodes.size(), 5u);
  for (std::int32_t i = 0; i < 5; ++i) EXPECT_EQ(p->compute_nodes[static_cast<std::size_t>(i)], i);
}

TEST(Paging, Paging0HasNoInternalFragmentation) {
  PagingAllocator a(Geometry(16, 22), 0);
  const auto p = a.allocate(Request{6, 6, 35});
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->allocated, 35);
  EXPECT_EQ(a.free_processors(), 352 - 35);
}

TEST(Paging, LargerPagesCauseInternalFragmentation) {
  PagingAllocator a(Geometry(16, 16), 1);  // 2×2 pages
  const auto p = a.allocate(Request{3, 3, 9});
  ASSERT_TRUE(p.has_value());
  // 9 processors need ceil(9/4) = 3 pages = 12 allocated.
  EXPECT_EQ(p->allocated, 12);
  EXPECT_EQ(static_cast<std::int32_t>(p->compute_nodes.size()), 9);
  EXPECT_EQ(a.free_processors(), 256 - 12);
}

TEST(Paging, SucceedsWheneverEnoughFreeProcessors) {
  PagingAllocator a(Geometry(4, 4), 0);
  // Fragment: allocate 8, free nothing — then ask for the other 8.
  const auto p1 = a.allocate(Request{4, 2, 8});
  ASSERT_TRUE(p1.has_value());
  const auto p2 = a.allocate(Request{4, 2, 8});
  ASSERT_TRUE(p2.has_value());
  EXPECT_FALSE(a.allocate(Request{1, 1, 1}).has_value());
  a.release(*p1);
  EXPECT_TRUE(a.allocate(Request{2, 2, 4}).has_value());
}

TEST(Paging, ReleaseRestoresPages) {
  PagingAllocator a(Geometry(8, 8), 2);  // one 4×4 page quadrant each
  const auto p = a.allocate(Request{4, 4, 16});
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(a.free_pages(), 3u);
  a.release(*p);
  EXPECT_EQ(a.free_pages(), 4u);
  EXPECT_EQ(a.free_processors(), 64);
}

TEST(Paging, NameIncludesSizeIndex) {
  PagingAllocator a(Geometry(4, 4), 0);
  EXPECT_EQ(a.name(), "Paging(0)");
  PagingAllocator b(Geometry(8, 8), 2);
  EXPECT_EQ(b.name(), "Paging(2)");
}

// ---------------------------------------------------------------------- MBS

TEST(Mbs, Base4Factorization) {
  // 37 = 2*16 + 1*4 + 1*1 -> digits (lsb first) {1, 1, 2}.
  const auto d = MbsAllocator::base4_factorize(37);
  ASSERT_EQ(d.size(), 3u);
  EXPECT_EQ(d[0], 1);
  EXPECT_EQ(d[1], 1);
  EXPECT_EQ(d[2], 2);
  EXPECT_THROW((void)MbsAllocator::base4_factorize(0), std::invalid_argument);
}

TEST(Mbs, AllocatesExactlyPProcessors) {
  MbsAllocator a(Geometry(16, 22));
  for (const std::int32_t p : {1, 3, 7, 16, 34, 35, 100, 255, 352}) {
    const auto placement = a.allocate(Request{1, 1, p});
    ASSERT_TRUE(placement.has_value()) << "p=" << p;
    EXPECT_EQ(placement->allocated, p);
    std::int32_t covered = 0;
    for (const SubMesh& b : placement->blocks) covered += b.area();
    EXPECT_EQ(covered, p);
    a.release(*placement);
    EXPECT_EQ(a.free_processors(), 352);
  }
}

TEST(Mbs, PowerOfFourSizesGetOneContiguousSquare) {
  MbsAllocator a(Geometry(16, 16));
  for (const std::int32_t p : {1, 4, 16, 64, 256}) {
    const auto placement = a.allocate(Request{1, 1, p});
    ASSERT_TRUE(placement.has_value());
    EXPECT_EQ(placement->blocks.size(), 1u) << "p=" << p;
    EXPECT_EQ(placement->blocks[0].width(), placement->blocks[0].length());
    a.release(*placement);
  }
}

TEST(Mbs, BreaksRequestsWhenBigBlocksExhausted) {
  MbsAllocator a(Geometry(16, 22));
  const auto big = a.allocate(Request{1, 1, 256});  // consumes the 16×16 root
  ASSERT_TRUE(big.has_value());
  // 64 needs an 8×8, which no longer exists; MBS must still succeed by
  // breaking the request into smaller blocks (96 processors remain).
  const auto p = a.allocate(Request{1, 1, 64});
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->allocated, 64);
  EXPECT_GT(p->blocks.size(), 1u);
}

TEST(Mbs, FailsOnlyWhenNotEnoughFree) {
  MbsAllocator a(Geometry(8, 8));
  const auto p1 = a.allocate(Request{1, 1, 60});
  ASSERT_TRUE(p1.has_value());
  EXPECT_FALSE(a.allocate(Request{1, 1, 5}).has_value());
  EXPECT_TRUE(a.allocate(Request{1, 1, 4}).has_value());
}

// --------------------------------------------------------------------- GABL

TEST(Gabl, ContiguousFastPathWhenPossible) {
  GablAllocator a(Geometry(16, 22));
  const auto p = a.allocate(Request{5, 4, 20});
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->blocks.size(), 1u);
  EXPECT_EQ(p->blocks[0].area(), 20);
  EXPECT_EQ(a.busy_list().size(), 1u);
}

TEST(Gabl, RotatesWhenOnlyRotatedFits) {
  GablAllocator a(Geometry(8, 4));
  const auto p = a.allocate(Request{2, 6, 12});  // fits only as 6×2
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->blocks.size(), 1u);
  EXPECT_EQ(p->blocks[0].width(), 6);
  EXPECT_EQ(p->blocks[0].length(), 2);
}

TEST(Gabl, CarvesWhenNoSuitableSubmesh) {
  GablAllocator a(Geometry(4, 4));
  // Busy anti-diagonal pattern from the paper's Fig. 1: 2×2 contiguous
  // impossible, but 4 processors are free.
  std::vector<Placement> singles;
  // Fill everything, then free the anti-diagonal via targeted allocations:
  // simpler — allocate 3 rows, leaving row 3 free, then take 2 of row 3.
  const auto fill = a.allocate(Request{4, 3, 12});
  ASSERT_TRUE(fill.has_value());
  const auto corner = a.allocate(Request{2, 1, 2});
  ASSERT_TRUE(corner.has_value());
  // Now 2 free nodes remain, not forming a 2×1... they do form one; ask 2×1.
  const auto p = a.allocate(Request{2, 1, 2});
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->allocated, 2);
}

TEST(Gabl, AllocatesExactlyAxB) {
  GablAllocator a(Geometry(16, 22));
  // Fragment the mesh so 7×5 cannot fit contiguously.
  const auto wall = a.allocate(Request{16, 18, 288});
  ASSERT_TRUE(wall.has_value());
  // Free: a 16×4 strip = 64 processors; request 7×5 = 35 -> carved pieces.
  const auto p = a.allocate(Request{7, 5, 35});
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->allocated, 35);
  EXPECT_GT(p->blocks.size(), 1u);
  // Piece sides never exceed the previous piece's sides (monotone greedy).
  for (std::size_t i = 1; i < p->blocks.size(); ++i) {
    EXPECT_LE(p->blocks[i].width(), p->blocks[i - 1].width());
    EXPECT_LE(p->blocks[i].length(), p->blocks[i - 1].length());
  }
}

TEST(Gabl, FailsIffFreeBelowAxB) {
  GablAllocator a(Geometry(6, 6));
  const auto p1 = a.allocate(Request{5, 6, 30});
  ASSERT_TRUE(p1.has_value());
  EXPECT_FALSE(a.allocate(Request{7, 1, 7}).has_value());  // needs 7, free 6
  EXPECT_TRUE(a.allocate(Request{6, 1, 6}).has_value());   // exactly 6 free
}

TEST(Gabl, BusyListTracksAllBlocks) {
  GablAllocator a(Geometry(16, 22));
  const auto p1 = a.allocate(Request{4, 4, 16});
  const auto p2 = a.allocate(Request{3, 3, 9});
  ASSERT_TRUE(p1 && p2);
  EXPECT_EQ(a.busy_list().size(), p1->blocks.size() + p2->blocks.size());
  a.release(*p1);
  EXPECT_EQ(a.busy_list().size(), p2->blocks.size());
  a.release(*p2);
  EXPECT_TRUE(a.busy_list().empty());
}

// --------------------------------------------------------------- Contiguous

TEST(Contiguous, FirstFitExternalFragmentation) {
  ContiguousAllocator a(Geometry(4, 4), ContiguousPolicy::kFirstFit);
  // External fragmentation (paper's Fig. 1 motif): enough free processors,
  // none of them contiguous enough. Fill the mesh with one slab and four
  // 1×2 columns, then free two non-adjacent columns.
  const auto slab = a.allocate(Request{4, 2, 8});  // rows 0-1
  ASSERT_TRUE(slab.has_value());
  std::vector<Placement> cols;
  for (int i = 0; i < 4; ++i) {
    auto c = a.allocate(Request{1, 2, 2});
    ASSERT_TRUE(c.has_value());
    cols.push_back(std::move(*c));
  }
  EXPECT_EQ(a.free_processors(), 0);
  a.release(cols[0]);  // column x=0
  a.release(cols[2]);  // column x=2
  EXPECT_EQ(a.free_processors(), 4);
  // 4 free processors, but no 2×2 is contiguous: external fragmentation.
  EXPECT_FALSE(a.allocate(Request{2, 2, 4}).has_value());
  // A single column still fits (2×1 succeeds via rotation into 1×2).
  EXPECT_TRUE(a.allocate(Request{1, 2, 2}).has_value());
}

TEST(Contiguous, BestFitPacksTighter) {
  ContiguousAllocator ff(Geometry(8, 8), ContiguousPolicy::kFirstFit);
  ContiguousAllocator bf(Geometry(8, 8), ContiguousPolicy::kBestFit);
  EXPECT_EQ(ff.name(), "FirstFit");
  EXPECT_EQ(bf.name(), "BestFit");
  EXPECT_FALSE(ff.is_noncontiguous());
  // Both allocate a single rectangle of exactly a*b.
  const auto p = bf.allocate(Request{3, 2, 6});
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->blocks.size(), 1u);
  EXPECT_EQ(p->allocated, 6);
}

// ------------------------------------------------------------------- Random

TEST(Random, AllocatesDistinctFreeNodes) {
  RandomAllocator a(Geometry(6, 6), 42);
  const auto p = a.allocate(Request{6, 6, 30});
  ASSERT_TRUE(p.has_value());
  std::set<procsim::mesh::NodeId> uniq(p->compute_nodes.begin(), p->compute_nodes.end());
  EXPECT_EQ(uniq.size(), 30u);
  EXPECT_EQ(a.free_processors(), 6);
  EXPECT_FALSE(a.allocate(Request{7, 1, 7}).has_value());
}

}  // namespace
