// Randomized equivalence suite for the calendar-queue event engine: the
// calendar queue must pop in exactly the (time, insertion-sequence) order of
// the binary-heap oracle over adversarial schedules — clustered timestamps,
// huge time jumps, interleaved push/pop, clear/reuse between replications —
// because that order *is* the determinism contract every figure CSV rests on.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "des/distributions.hpp"
#include "des/event_queue.hpp"
#include "des/rng.hpp"
#include "des/simulator.hpp"

namespace {

using procsim::des::EventEngine;
using procsim::des::EventQueue;
using procsim::des::SimTime;
using procsim::des::Xoshiro256SS;

/// Mirrors every operation onto a calendar queue and a heap oracle and
/// asserts pop-for-pop identity of (time, payload id). Payload ids are
/// unique per push, so equality proves the full order, including
/// same-timestamp FIFO tie-breaking.
class MirroredQueues {
 public:
  void push(SimTime t) {
    const int id = next_id_++;
    calendar_.push(t, [this, id] { calendar_fired_.push_back(id); });
    heap_.push(t, [this, id] { heap_fired_.push_back(id); });
  }

  void pop_and_check() {
    ASSERT_FALSE(calendar_.empty());
    ASSERT_FALSE(heap_.empty());
    ASSERT_DOUBLE_EQ(calendar_.next_time(), heap_.next_time());
    auto ev_c = calendar_.pop();
    auto ev_h = heap_.pop();
    ASSERT_DOUBLE_EQ(ev_c.time, ev_h.time);
    ev_c.action();
    ev_h.action();
    ASSERT_EQ(calendar_fired_.back(), heap_fired_.back());
  }

  void drain_and_check() {
    while (!heap_.empty()) pop_and_check();
    EXPECT_TRUE(calendar_.empty());
    EXPECT_EQ(calendar_fired_, heap_fired_);
  }

  void clear() {
    calendar_.clear();
    heap_.clear();
    calendar_fired_.clear();
    heap_fired_.clear();
  }

  [[nodiscard]] EventQueue& calendar() { return calendar_; }
  [[nodiscard]] std::size_t size() const { return heap_.size(); }

 private:
  EventQueue calendar_{EventEngine::kCalendar};
  EventQueue heap_{EventEngine::kHeap};
  std::vector<int> calendar_fired_;
  std::vector<int> heap_fired_;
  int next_id_{0};
};

TEST(CalendarQueue, OrdersByTime) {
  EventQueue q(EventEngine::kCalendar);
  std::vector<int> fired;
  q.push(3.0, [&] { fired.push_back(3); });
  q.push(1.0, [&] { fired.push_back(1); });
  q.push(2.0, [&] { fired.push_back(2); });
  EXPECT_DOUBLE_EQ(q.next_time(), 1.0);
  while (!q.empty()) q.pop().action();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(CalendarQueue, SameTimestampPopsInInsertionOrder) {
  EventQueue q(EventEngine::kCalendar);
  std::vector<int> fired;
  for (int i = 0; i < 1000; ++i) q.push(5.0, [&fired, i] { fired.push_back(i); });
  while (!q.empty()) q.pop().action();
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(fired[static_cast<std::size_t>(i)], i);
}

TEST(CalendarQueue, InterleavedTiesKeepScheduleOrder) {
  // Ties pushed in several rounds around pops: seq must still win.
  EventQueue q(EventEngine::kCalendar);
  std::vector<int> fired;
  q.push(1.0, [&] { fired.push_back(0); });
  q.push(2.0, [&] { fired.push_back(1); });
  q.pop().action();                           // fires id 0 at t=1
  q.push(2.0, [&] { fired.push_back(2); });   // tie with id 1, later seq
  q.push(2.0, [&] { fired.push_back(3); });
  while (!q.empty()) q.pop().action();
  EXPECT_EQ(fired, (std::vector<int>{0, 1, 2, 3}));
}

TEST(CalendarQueue, RandomizedEquivalenceUniformTimes) {
  Xoshiro256SS rng(0xCAFE);
  MirroredQueues m;
  double t = 0;
  for (int step = 0; step < 20000; ++step) {
    if (m.size() == 0 || rng.next_double() < 0.55) {
      t += procsim::des::sample_exponential(rng, 3.0);
      // Pushes go backwards in time too (anywhere >= the last pop): the
      // rewind path must keep the scan invariant.
      const double when =
          rng.next_double() < 0.2 ? t * rng.next_double() : t;
      m.push(when);
    } else {
      m.pop_and_check();
    }
  }
  m.drain_and_check();
}

TEST(CalendarQueue, RandomizedEquivalenceClusteredTimestamps) {
  // Few distinct timestamps, long same-time runs: the tie-breaking stress.
  Xoshiro256SS rng(0xBEEF);
  MirroredQueues m;
  for (int step = 0; step < 20000; ++step) {
    if (m.size() == 0 || rng.next_double() < 0.6) {
      const double when =
          static_cast<double>(procsim::des::sample_uniform_int(rng, 0, 7)) * 100.0;
      m.push(when);
    } else {
      m.pop_and_check();
    }
  }
  m.drain_and_check();
}

TEST(CalendarQueue, RandomizedEquivalenceHugeJumps) {
  // Mixed magnitudes up to 1e18: bucket math must survive virtual slot
  // numbers far beyond any integer range.
  Xoshiro256SS rng(0xDead);
  MirroredQueues m;
  double base = 0;
  for (int step = 0; step < 5000; ++step) {
    if (m.size() == 0 || rng.next_double() < 0.5) {
      const double magnitude = std::pow(10.0, procsim::des::sample_uniform_int(rng, 0, 18));
      m.push(base + rng.next_double() * magnitude);
    } else {
      auto before = m.size();
      m.pop_and_check();
      ASSERT_EQ(m.size(), before - 1);
    }
    if (step % 500 == 499) base += 1e17;  // the whole schedule leaps forward
  }
  m.drain_and_check();
}

TEST(CalendarQueue, ClearAndReuseBetweenReplications) {
  Xoshiro256SS rng(0x5EED);
  MirroredQueues m;
  for (int rep = 0; rep < 5; ++rep) {
    for (int step = 0; step < 3000; ++step) {
      if (m.size() == 0 || rng.next_double() < 0.6) {
        m.push(rng.next_double() * 1000.0);
      } else {
        m.pop_and_check();
      }
    }
    // Alternate full drains and mid-flight clears.
    if (rep % 2 == 0) m.drain_and_check();
    m.clear();
    EXPECT_EQ(m.calendar().size(), 0u);
    EXPECT_EQ(m.calendar().scheduled_count(), 0u);
  }
}

TEST(CalendarQueue, GrowthAndShrinkRebucketing) {
  EventQueue q(EventEngine::kCalendar);
  const std::size_t initial_buckets = q.bucket_count();
  Xoshiro256SS rng(7);
  double last = 0;
  for (int i = 0; i < 100000; ++i)
    q.push(rng.next_double() * 1e6, [] {});
  EXPECT_GT(q.bucket_count(), initial_buckets);  // grew with the pending set
  while (!q.empty()) {
    const auto ev = q.pop();
    EXPECT_GE(ev.time, last);  // still ordered through every resize
    last = ev.time;
  }
  EXPECT_EQ(q.bucket_count(), initial_buckets);  // shrank back to the floor
}

TEST(CalendarQueue, CrossCheckModeAgreesOnRandomSchedule) {
  EventQueue q(EventEngine::kCrossCheck);
  Xoshiro256SS rng(0xAB);
  double t = 0;
  int fired = 0;
  for (int step = 0; step < 5000; ++step) {
    if (q.empty() || rng.next_double() < 0.55) {
      t += procsim::des::sample_exponential(rng, 1.0);
      q.push(t, [&fired] { ++fired; });
    } else {
      q.pop().action();  // throws std::logic_error on any divergence
    }
  }
  while (!q.empty()) q.pop().action();
  EXPECT_GT(fired, 0);
}

TEST(CalendarQueue, DefaultEngineIsCalendar) {
  // The suite runs without PROCSIM_EVENT_ENGINE set; guard the default.
  EventQueue q;
  EXPECT_EQ(q.engine(), EventQueue::default_engine());
}

TEST(CalendarQueue, SimulatorRunsBitIdenticallyOnBothEngines) {
  // The same stochastic schedule drained through each engine must produce
  // the identical firing trace.
  std::vector<std::vector<double>> traces;
  for (const EventEngine engine :
       {EventEngine::kCalendar, EventEngine::kHeap, EventEngine::kCrossCheck}) {
    EventQueue q(engine);
    Xoshiro256SS rng(42);
    std::vector<double> fired;
    double t = 0;
    for (int i = 0; i < 200; ++i) {
      t += procsim::des::sample_exponential(rng, 2.0);
      q.push(t, [&fired, t] { fired.push_back(t); });
    }
    while (!q.empty()) {
      auto ev = q.pop();
      ev.action();
    }
    traces.push_back(std::move(fired));
  }
  EXPECT_EQ(traces[0], traces[1]);
  EXPECT_EQ(traces[0], traces[2]);
}

}  // namespace
