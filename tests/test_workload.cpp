#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>
#include <string>

#include "des/rng.hpp"
#include "mesh/coord.hpp"
#include "stats/welford.hpp"
#include "workload/paragon_model.hpp"
#include "workload/shape.hpp"
#include "workload/stochastic.hpp"
#include "workload/swf.hpp"
#include "workload/trace_replay.hpp"

namespace {

using procsim::des::Xoshiro256SS;
using procsim::mesh::Geometry;
using procsim::workload::arrival_factor_for_load;
using procsim::workload::compute_stats;
using procsim::workload::generate_paragon_trace;
using procsim::workload::generate_stochastic;
using procsim::workload::Job;
using procsim::workload::make_trace_jobs;
using procsim::workload::ParagonModelParams;
using procsim::workload::parse_swf;
using procsim::workload::shape_for_processors;
using procsim::workload::SideDistribution;
using procsim::workload::StochasticParams;
using procsim::workload::TraceJob;
using procsim::workload::TraceReplayParams;

// -------------------------------------------------------------------- shape

TEST(Shape, ExactRectanglesForExactAreas) {
  const Geometry g(16, 22);
  EXPECT_EQ(shape_for_processors(1, g), std::make_pair(1, 1));
  EXPECT_EQ(shape_for_processors(16, g), std::make_pair(4, 4));
  EXPECT_EQ(shape_for_processors(12, g), std::make_pair(3, 4));  // 3×4 beats 4×3? same area; perim equal; first found a=3
  EXPECT_EQ(shape_for_processors(352, g), std::make_pair(16, 22));
}

TEST(Shape, MinimalAreaAtLeastP) {
  const Geometry g(16, 22);
  for (std::int32_t p = 1; p <= 352; ++p) {
    const auto [a, b] = shape_for_processors(p, g);
    EXPECT_GE(a * b, p);
    EXPECT_LE(a, 16);
    EXPECT_LE(b, 22);
    // Minimality: no rectangle with smaller area fits p.
    for (std::int32_t w = 1; w <= 16; ++w) {
      const std::int32_t l = (p + w - 1) / w;
      if (l <= 22) {
        EXPECT_LE(a * b, w * l) << "p=" << p;
      }
    }
  }
}

TEST(Shape, PrefersSquareAmongEqualAreas) {
  const Geometry g(16, 22);
  const auto [a, b] = shape_for_processors(36, g);
  EXPECT_EQ(a * b, 36);
  EXPECT_EQ(a + b, 12);  // 6×6, the minimal perimeter
}

TEST(Shape, RejectsBadInputs) {
  const Geometry g(4, 4);
  EXPECT_THROW((void)shape_for_processors(0, g), std::invalid_argument);
  EXPECT_THROW((void)shape_for_processors(17, g), std::invalid_argument);
}

// --------------------------------------------------------------- stochastic

TEST(Stochastic, ArrivalsAreMonotoneWithCorrectRate) {
  Xoshiro256SS rng(1);
  StochasticParams p;
  p.load = 0.02;
  const auto jobs = generate_stochastic(p, Geometry(16, 22), 20000, rng);
  ASSERT_EQ(jobs.size(), 20000u);
  double prev = 0;
  for (const Job& j : jobs) {
    EXPECT_GE(j.arrival, prev);
    prev = j.arrival;
  }
  // Mean inter-arrival ~ 1/load = 50.
  EXPECT_NEAR(jobs.back().arrival / 20000.0, 50.0, 1.5);
}

TEST(Stochastic, UniformSidesCoverFullRange) {
  Xoshiro256SS rng(2);
  StochasticParams p;
  p.side_dist = SideDistribution::kUniform;
  const auto jobs = generate_stochastic(p, Geometry(16, 22), 5000, rng);
  std::int32_t wmin = 99, wmax = 0, lmin = 99, lmax = 0;
  for (const Job& j : jobs) {
    wmin = std::min(wmin, j.width);
    wmax = std::max(wmax, j.width);
    lmin = std::min(lmin, j.length);
    lmax = std::max(lmax, j.length);
    EXPECT_EQ(j.processors, j.width * j.length);
  }
  EXPECT_EQ(wmin, 1);
  EXPECT_EQ(wmax, 16);
  EXPECT_EQ(lmin, 1);
  EXPECT_EQ(lmax, 22);
}

TEST(Stochastic, UniformSideMeansMatchTheory) {
  Xoshiro256SS rng(3);
  StochasticParams p;
  const auto jobs = generate_stochastic(p, Geometry(16, 22), 30000, rng);
  procsim::stats::Welford w, l;
  for (const Job& j : jobs) {
    w.add(j.width);
    l.add(j.length);
  }
  EXPECT_NEAR(w.mean(), 8.5, 0.1);   // E[U[1,16]]
  EXPECT_NEAR(l.mean(), 11.5, 0.15); // E[U[1,22]]
}

TEST(Stochastic, ExponentialSidesClampedWithHalfSideMean) {
  Xoshiro256SS rng(4);
  StochasticParams p;
  p.side_dist = SideDistribution::kExponential;
  const auto jobs = generate_stochastic(p, Geometry(16, 22), 30000, rng);
  procsim::stats::Welford w;
  for (const Job& j : jobs) {
    EXPECT_GE(j.width, 1);
    EXPECT_LE(j.width, 16);
    w.add(j.width);
  }
  // Clamped Exp(8) over [1,16]: mean below 8, well above 1.
  EXPECT_GT(w.mean(), 5.0);
  EXPECT_LT(w.mean(), 8.0);
}

TEST(Stochastic, MessagePlanAndDemand) {
  Xoshiro256SS rng(5);
  StochasticParams p;
  p.mean_messages = 5.0;
  p.packet_len = 8;
  const auto jobs = generate_stochastic(p, Geometry(16, 22), 20000, rng);
  procsim::stats::Welford msgs;
  for (const Job& j : jobs) {
    if (j.processors == 1) {
      EXPECT_TRUE(j.message_plan.empty());
      continue;
    }
    EXPECT_GE(j.total_messages(), 1);
    EXPECT_DOUBLE_EQ(j.demand, static_cast<double>(j.total_messages()) * 8.0);
    msgs.add(static_cast<double>(j.total_messages()));
  }
  EXPECT_NEAR(msgs.mean(), 5.0, 0.5);  // num_mes
}

TEST(Stochastic, DeterministicPerSeed) {
  Xoshiro256SS a(9), b(9);
  StochasticParams p;
  const auto j1 = generate_stochastic(p, Geometry(8, 8), 100, a);
  const auto j2 = generate_stochastic(p, Geometry(8, 8), 100, b);
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(j1[i].arrival, j2[i].arrival);
    EXPECT_EQ(j1[i].width, j2[i].width);
    EXPECT_EQ(j1[i].message_plan, j2[i].message_plan);
  }
}

TEST(Stochastic, RejectsNonPositiveLoad) {
  Xoshiro256SS rng(1);
  StochasticParams p;
  p.load = 0;
  EXPECT_THROW((void)generate_stochastic(p, Geometry(4, 4), 10, rng),
               std::invalid_argument);
}

// ------------------------------------------------------------ paragon model

TEST(Paragon, MatchesPublishedCharacteristics) {
  Xoshiro256SS rng(6);
  ParagonModelParams params;
  const auto trace = generate_paragon_trace(params, rng);
  const auto stats = compute_stats(trace);
  EXPECT_EQ(stats.jobs, 10658u);
  // Paper: mean inter-arrival 1186.7 s, mean size 34.5 nodes.
  EXPECT_NEAR(stats.mean_interarrival, 1186.7, 60.0);
  EXPECT_NEAR(stats.mean_size, 34.5, 5.0);
  EXPECT_LE(stats.max_size, 352);
  // "distribution favouring sizes that are non-powers of two"
  EXPECT_LT(stats.power_of_two_fraction, 0.25);
}

TEST(Paragon, RuntimesAreHeavyTailed) {
  Xoshiro256SS rng(7);
  ParagonModelParams params;
  params.jobs = 20000;
  const auto trace = generate_paragon_trace(params, rng);
  double max_rt = 0;
  procsim::stats::Welford rt;
  for (const TraceJob& j : trace) {
    rt.add(j.runtime);
    max_rt = std::max(max_rt, j.runtime);
  }
  EXPECT_GT(max_rt, 10 * rt.mean());  // heavy tail
  EXPECT_GT(rt.mean(), 1000);
  EXPECT_LT(rt.mean(), 20000);
}

// ---------------------------------------------------------------------- SWF

constexpr const char* kSampleSwf = R"(; SWF header comment
; MaxProcs: 352
  1  0    10  3600  32 -1 -1  32  4000 -1 1 1 1 1 1 1 -1 -1
  2  120  5   60    1  -1 -1   1    60 -1 1 1 1 1 1 1 -1 -1
  3  500  0   7200 400 -1 -1 400  8000 -1 1 1 1 1 1 1 -1 -1
  4  900  2   -1    16 -1 -1  16   120 -1 1 1 1 1 1 1 -1 -1
  5  -50  1   10     8 -1 -1   8    20 -1 1 1 1 1 1 1 -1 -1
)";

TEST(Swf, ParsesRecordsAndSkipsComments) {
  std::istringstream in(kSampleSwf);
  const auto jobs = parse_swf(in);
  // Job 5 dropped (negative submit); others kept.
  ASSERT_EQ(jobs.size(), 4u);
  EXPECT_DOUBLE_EQ(jobs[0].submit, 0);
  EXPECT_DOUBLE_EQ(jobs[0].runtime, 3600);
  EXPECT_EQ(jobs[0].processors, 32);
}

TEST(Swf, MaxProcessorsFilters) {
  std::istringstream in(kSampleSwf);
  const auto jobs = parse_swf(in, 352);
  ASSERT_EQ(jobs.size(), 3u);  // the 400-proc job is dropped too
  for (const auto& j : jobs) EXPECT_LE(j.processors, 352);
}

TEST(Swf, RuntimeFallsBackToRequestedTime) {
  std::istringstream in(kSampleSwf);
  const auto jobs = parse_swf(in, 352);
  // Job 4 has run = -1 but requested time 120.
  EXPECT_DOUBLE_EQ(jobs.back().runtime, 120);
}

TEST(Swf, MissingFileThrows) {
  EXPECT_THROW((void)procsim::workload::load_swf_file("/nonexistent/trace.swf"),
               std::runtime_error);
}

TEST(Swf, ShortAndMalformedRecordsAreSkipped) {
  std::istringstream in(
      "; header\n"
      "\n"
      "1 0 5 100 16\n"          // exactly 5 fields: still a record
      "2 10 3\n"                // short record: skipped
      "garbage line here\n"     // non-numeric: skipped (no usable fields)
      "3 20 5 100 8 -1 -1 8 100 -1 1 1 1 1 1 1 -1 -1\n");
  const auto jobs = parse_swf(in);
  ASSERT_EQ(jobs.size(), 2u);
  EXPECT_EQ(jobs[0].processors, 16);
  EXPECT_EQ(jobs[1].processors, 8);
}

TEST(Swf, FiveFieldRecordFallsBackToUsedProcessors) {
  // With no field 8 at all, size must come from field 5 (used processors).
  std::istringstream in("1 0 5 60 9\n");
  const auto jobs = parse_swf(in);
  ASSERT_EQ(jobs.size(), 1u);
  EXPECT_EQ(jobs[0].processors, 9);
  EXPECT_DOUBLE_EQ(jobs[0].runtime, 60);
}

TEST(Swf, NegativeRuntimeWithoutRequestedTimeIsSkipped) {
  std::istringstream in(
      "1 0 5 -1 8 -1 -1 8 -1 -1 1 1 1 1 1 1 -1 -1\n"   // no usable runtime
      "2 5 5 -1 8 -1 -1 8 70 -1 1 1 1 1 1 1 -1 -1\n"); // req-time rescue
  const auto jobs = parse_swf(in);
  ASSERT_EQ(jobs.size(), 1u);
  EXPECT_DOUBLE_EQ(jobs[0].runtime, 70);
}

TEST(Swf, MiniFixtureGoldenStats) {
  // tests/data/mini.swf, filtered to a 352-node partition: jobs 5, 6 and 8
  // are dropped by the parser, job 7 (400 procs) by the filter. Six survive
  // with hand-computable statistics.
  const auto jobs = procsim::workload::load_swf_file(
      std::string(PROCSIM_TEST_DATA_DIR) + "/mini.swf", 352);
  ASSERT_EQ(jobs.size(), 6u);
  const auto stats = compute_stats(jobs);
  EXPECT_EQ(stats.jobs, 6u);
  EXPECT_DOUBLE_EQ(stats.mean_interarrival, 160.0);      // (800 - 0) / 5
  EXPECT_NEAR(stats.mean_size, 98.0 / 6.0, 1e-12);       // 16+32+25+10+8+7
  EXPECT_NEAR(stats.mean_runtime, 1225.0 / 6.0, 1e-12);  // 100+200+300+500+50+75
  EXPECT_DOUBLE_EQ(stats.power_of_two_fraction, 0.5);    // 16, 32, 8 of six
  EXPECT_EQ(stats.max_size, 32);

  // Unfiltered, the 400-proc job survives too.
  const auto all = procsim::workload::load_swf_file(
      std::string(PROCSIM_TEST_DATA_DIR) + "/mini.swf");
  EXPECT_EQ(all.size(), 7u);
  EXPECT_EQ(compute_stats(all).max_size, 400);
}

TEST(Swf, StatsOnEmptyTrace) {
  const auto stats = compute_stats({});
  EXPECT_EQ(stats.jobs, 0u);
  EXPECT_DOUBLE_EQ(stats.mean_size, 0);
}

// ------------------------------------------------------------- trace replay

TEST(Replay, ArrivalFactorForLoad) {
  // load 0.01 jobs/unit on a trace with mean inter-arrival 1186.7 s:
  // f = 1 / (0.01 * 1186.7).
  EXPECT_NEAR(arrival_factor_for_load(0.01, 1186.7) * 1186.7, 100.0, 1e-9);
  EXPECT_THROW((void)arrival_factor_for_load(0, 10), std::invalid_argument);
}

TEST(Replay, ArrivalFactorDegenerateTraceFallsBackToNeutral) {
  // Regression: an empty or single-job trace has no inter-arrival
  // information (compute_stats reports 0; a pathological caller could even
  // pass NaN). The factor must be the defined neutral 1.0, not a blind
  // division.
  EXPECT_DOUBLE_EQ(arrival_factor_for_load(0.01, 0), 1.0);
  EXPECT_DOUBLE_EQ(arrival_factor_for_load(0.01, -5), 1.0);
  EXPECT_DOUBLE_EQ(arrival_factor_for_load(0.01, std::nan("")), 1.0);
  EXPECT_DOUBLE_EQ(
      arrival_factor_for_load(0.01, std::numeric_limits<double>::infinity()), 1.0);
  EXPECT_DOUBLE_EQ(arrival_factor_for_load(0.01, compute_stats({}).mean_interarrival),
                   1.0);
}

TEST(Replay, ScalesArrivalsAndKeepsSizes) {
  Xoshiro256SS rng(8);
  const std::vector<TraceJob> trace{{1000, 600, 7}, {3000, 60, 33}};
  TraceReplayParams params;
  params.arrival_factor = 0.5;
  const auto jobs = make_trace_jobs(trace, params, Geometry(16, 22), rng);
  ASSERT_EQ(jobs.size(), 2u);
  EXPECT_DOUBLE_EQ(jobs[0].arrival, 500);
  EXPECT_DOUBLE_EQ(jobs[1].arrival, 1500);
  EXPECT_EQ(jobs[0].processors, 7);
  EXPECT_EQ(jobs[1].processors, 33);
  EXPECT_DOUBLE_EQ(jobs[0].demand, 600);  // SSD key = recorded runtime
  EXPECT_DOUBLE_EQ(jobs[0].trace_runtime, 600);
}

TEST(Replay, ShapesAreDerivedNearSquare) {
  Xoshiro256SS rng(9);
  const std::vector<TraceJob> trace{{0, 100, 16}};
  TraceReplayParams params;
  const auto jobs = make_trace_jobs(trace, params, Geometry(16, 22), rng);
  EXPECT_EQ(jobs[0].width, 4);
  EXPECT_EQ(jobs[0].length, 4);
}

TEST(Replay, MessageCountScalesWithRuntime) {
  Xoshiro256SS rng(10);
  std::vector<TraceJob> trace;
  for (int i = 0; i < 3000; ++i) trace.push_back({i * 10.0, 100.0, 16});
  for (int i = 0; i < 3000; ++i) trace.push_back({30000 + i * 10.0, 10000.0, 16});
  TraceReplayParams params;
  params.runtime_scale = 20;
  params.max_messages = 800;
  const auto jobs = make_trace_jobs(trace, params, Geometry(16, 22), rng);
  procsim::stats::Welford short_jobs, long_jobs;
  for (std::size_t i = 0; i < 3000; ++i)
    short_jobs.add(static_cast<double>(jobs[i].total_messages()));
  for (std::size_t i = 3000; i < 6000; ++i)
    long_jobs.add(static_cast<double>(jobs[i].total_messages()));
  EXPECT_NEAR(short_jobs.mean(), 5.0, 1.0);   // 100/20
  EXPECT_GT(long_jobs.mean(), 50 * short_jobs.mean());
  for (const Job& j : jobs) EXPECT_LE(j.total_messages(), 800);
}

TEST(Replay, PrefixLimitsJobs) {
  Xoshiro256SS rng(11);
  std::vector<TraceJob> trace(100, TraceJob{0, 10, 4});
  TraceReplayParams params;
  params.prefix = 25;
  const auto jobs = make_trace_jobs(trace, params, Geometry(16, 22), rng);
  EXPECT_EQ(jobs.size(), 25u);
}

TEST(Replay, OversizedTraceJobsClampToMesh) {
  Xoshiro256SS rng(12);
  const std::vector<TraceJob> trace{{0, 10, 10000}};
  TraceReplayParams params;
  const auto jobs = make_trace_jobs(trace, params, Geometry(16, 22), rng);
  EXPECT_EQ(jobs[0].processors, 352);
}

}  // namespace
