#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "des/distributions.hpp"
#include "des/rng.hpp"
#include "mesh/buddy.hpp"
#include "mesh/page_table.hpp"

namespace {

using procsim::mesh::BuddyTiling;
using procsim::mesh::Coord;
using procsim::mesh::Geometry;
using procsim::mesh::PageIndexing;
using procsim::mesh::PageTable;
using procsim::mesh::SubMesh;

// ---------------------------------------------------------------- PageTable

TEST(PageTable, Paging0HasOnePagePerNode) {
  const PageTable t(Geometry(16, 22), 0);
  EXPECT_EQ(t.page_count(), 352u);
  EXPECT_EQ(t.page_side(), 1);
  for (std::size_t i = 0; i < t.page_count(); ++i) EXPECT_EQ(t.page(i).area(), 1);
}

TEST(PageTable, RowMajorOrderIsRowMajor) {
  const PageTable t(Geometry(4, 4), 1);  // 2×2 pages, 2 cols × 2 rows
  ASSERT_EQ(t.page_count(), 4u);
  EXPECT_EQ(t.page(0).base(), (Coord{0, 0}));
  EXPECT_EQ(t.page(1).base(), (Coord{2, 0}));
  EXPECT_EQ(t.page(2).base(), (Coord{0, 2}));
  EXPECT_EQ(t.page(3).base(), (Coord{2, 2}));
}

TEST(PageTable, SnakeReversesOddRows) {
  const PageTable t(Geometry(4, 4), 1, PageIndexing::kSnake);
  EXPECT_EQ(t.page(0).base(), (Coord{0, 0}));
  EXPECT_EQ(t.page(1).base(), (Coord{2, 0}));
  EXPECT_EQ(t.page(2).base(), (Coord{2, 2}));  // odd row right-to-left
  EXPECT_EQ(t.page(3).base(), (Coord{0, 2}));
}

TEST(PageTable, ShuffledRowMajorIsMortonOrder) {
  const PageTable t(Geometry(8, 8), 1, PageIndexing::kShuffledRowMajor);
  // Morton order over a 4×4 page grid: (0,0),(1,0),(0,1),(1,1),(2,0)...
  EXPECT_EQ(t.page(0).base(), (Coord{0, 0}));
  EXPECT_EQ(t.page(1).base(), (Coord{2, 0}));
  EXPECT_EQ(t.page(2).base(), (Coord{0, 2}));
  EXPECT_EQ(t.page(3).base(), (Coord{2, 2}));
  EXPECT_EQ(t.page(4).base(), (Coord{4, 0}));
}

TEST(PageTable, CoversWholeMeshExactlyOnceEvenWhenClipped) {
  for (const auto indexing :
       {PageIndexing::kRowMajor, PageIndexing::kSnake, PageIndexing::kShuffledRowMajor,
        PageIndexing::kShuffledSnake}) {
    for (const std::int32_t size_index : {0, 1, 2, 3}) {
      const Geometry g(16, 22);  // 22 is not divisible by 4 or 8
      const PageTable t(g, size_index, indexing);
      std::set<std::int32_t> covered;
      for (std::size_t i = 0; i < t.page_count(); ++i) {
        const SubMesh& p = t.page(i);
        for (std::int32_t y = p.y1; y <= p.y2; ++y)
          for (std::int32_t x = p.x1; x <= p.x2; ++x) {
            const auto [_, inserted] = covered.insert(g.id(Coord{x, y}));
            EXPECT_TRUE(inserted) << "node covered twice";
          }
      }
      EXPECT_EQ(covered.size(), 352u) << "size_index=" << size_index;
    }
  }
}

TEST(PageTable, ClippedEdgePagesAreSmaller) {
  const PageTable t(Geometry(16, 22), 2);  // 4×4 pages; last page row is 16×2
  bool found_clipped = false;
  for (std::size_t i = 0; i < t.page_count(); ++i)
    if (t.page(i).length() == 2) found_clipped = true;
  EXPECT_TRUE(found_clipped);
}

TEST(PageTable, GridOfLocatesPages) {
  const PageTable t(Geometry(8, 8), 1);
  EXPECT_EQ(t.grid_of(Coord{0, 0}), (Coord{0, 0}));
  EXPECT_EQ(t.grid_of(Coord{3, 5}), (Coord{1, 2}));
}

TEST(PageTable, RejectsBadSizeIndex) {
  EXPECT_THROW(PageTable(Geometry(4, 4), -1), std::invalid_argument);
  EXPECT_THROW(PageTable(Geometry(4, 4), 16), std::invalid_argument);
}

// --------------------------------------------------------------- BuddyTiling

TEST(Buddy, InitialTilingCoversPaperMesh) {
  const BuddyTiling t(Geometry(16, 22));
  // 16×22 = one 16×16 + four 4×4 (16×4 strip) + eight 2×2 (16×2 strip).
  EXPECT_EQ(t.free_processors(), 352);
  EXPECT_EQ(t.max_order(), 4);
  EXPECT_EQ(t.free_blocks_at(4), 1u);
  EXPECT_EQ(t.free_blocks_at(2), 4u);
  EXPECT_EQ(t.free_blocks_at(1), 8u);
  EXPECT_EQ(t.free_blocks_at(3), 0u);
  EXPECT_EQ(t.free_blocks_at(0), 0u);
}

TEST(Buddy, PowerOfTwoMeshIsOneRoot) {
  const BuddyTiling t(Geometry(16, 16));
  EXPECT_EQ(t.free_blocks_at(4), 1u);
  EXPECT_EQ(t.free_processors(), 256);
}

TEST(Buddy, TakeExactOrder) {
  BuddyTiling t(Geometry(8, 8));
  const auto b = t.take_block(3);
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(t.rect(*b).area(), 64);
  EXPECT_EQ(t.free_processors(), 0);
  EXPECT_FALSE(t.take_block(0).has_value());
}

TEST(Buddy, SplitsLargerBlockOnDemand) {
  BuddyTiling t(Geometry(8, 8));
  const auto b = t.take_block(1);  // needs two splits of the 8×8 root
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(t.rect(*b).area(), 4);
  EXPECT_EQ(t.free_processors(), 60);
  // Splitting leaves 3 free order-2 buddies and 3 free order-1 buddies.
  EXPECT_EQ(t.free_blocks_at(2), 3u);
  EXPECT_EQ(t.free_blocks_at(1), 3u);
}

TEST(Buddy, ReleaseMergesBuddiesBack) {
  BuddyTiling t(Geometry(8, 8));
  std::vector<BuddyTiling::BlockId> taken;
  for (int i = 0; i < 4; ++i) {
    const auto b = t.take_block(2);
    ASSERT_TRUE(b.has_value());
    taken.push_back(*b);
  }
  EXPECT_EQ(t.free_processors(), 0);
  for (const auto id : taken) t.release_block(id);
  // All four 4×4 buddies free -> merge back into the 8×8 root.
  EXPECT_EQ(t.free_blocks_at(3), 1u);
  EXPECT_EQ(t.free_blocks_at(2), 0u);
  EXPECT_EQ(t.free_processors(), 64);
}

TEST(Buddy, DoubleReleaseThrows) {
  BuddyTiling t(Geometry(4, 4));
  const auto b = t.take_block(1);
  ASSERT_TRUE(b.has_value());
  t.release_block(*b);
  EXPECT_THROW(t.release_block(*b), std::logic_error);
}

TEST(Buddy, TakeBeyondMaxOrderFails) {
  BuddyTiling t(Geometry(4, 4));
  EXPECT_FALSE(t.take_block(3).has_value());
  EXPECT_THROW((void)t.take_block(-1), std::invalid_argument);
}

TEST(Buddy, FifoOrderCyclesThroughBlocks) {
  BuddyTiling t(Geometry(16, 22));
  // The four 4×4 roots: take one, release it, take again — FIFO hands out a
  // *different* block the second time (the released one went to the back).
  const auto first = t.take_block(2);
  ASSERT_TRUE(first.has_value());
  const SubMesh r1 = t.rect(*first);
  t.release_block(*first);
  const auto second = t.take_block(2);
  ASSERT_TRUE(second.has_value());
  EXPECT_NE(t.rect(*second), r1);
  t.release_block(*second);
}

TEST(Buddy, RandomChurnPreservesInvariants) {
  procsim::des::Xoshiro256SS rng(99);
  BuddyTiling t(Geometry(16, 22));
  std::vector<BuddyTiling::BlockId> held;
  std::int64_t held_procs = 0;
  for (int step = 0; step < 3000; ++step) {
    if (held.empty() || procsim::des::sample_bernoulli(rng, 0.55)) {
      const auto order =
          static_cast<std::int32_t>(procsim::des::sample_uniform_int(rng, 0, 4));
      if (const auto b = t.take_block(order)) {
        held.push_back(*b);
        held_procs += t.rect(*b).area();
        EXPECT_EQ(t.order_of(*b), order);
      }
    } else {
      const auto i = static_cast<std::size_t>(
          procsim::des::sample_uniform_int(rng, 0, static_cast<std::int64_t>(held.size()) - 1));
      held_procs -= t.rect(held[i]).area();
      t.release_block(held[i]);
      held[i] = held.back();
      held.pop_back();
    }
    EXPECT_EQ(t.free_processors() + held_procs, 352);
  }
  // Releasing everything merges all the way back to the initial tiling.
  for (const auto id : held) t.release_block(id);
  EXPECT_EQ(t.free_processors(), 352);
  EXPECT_EQ(t.free_blocks_at(4), 1u);
  EXPECT_EQ(t.free_blocks_at(2), 4u);
  EXPECT_EQ(t.free_blocks_at(1), 8u);
}

TEST(Buddy, HeldBlocksAreDisjoint) {
  procsim::des::Xoshiro256SS rng(7);
  BuddyTiling t(Geometry(16, 22));
  std::vector<BuddyTiling::BlockId> held;
  for (int i = 0; i < 60; ++i) {
    const auto order = static_cast<std::int32_t>(procsim::des::sample_uniform_int(rng, 0, 2));
    if (const auto b = t.take_block(order)) held.push_back(*b);
  }
  for (std::size_t i = 0; i < held.size(); ++i)
    for (std::size_t j = i + 1; j < held.size(); ++j)
      EXPECT_FALSE(t.rect(held[i]).overlaps(t.rect(held[j])));
}

TEST(Buddy, ClearRestoresInitialTiling) {
  BuddyTiling t(Geometry(16, 22));
  (void)t.take_block(4);
  (void)t.take_block(0);
  // clear() requires everything released? No: it rebuilds from scratch.
  t.clear();
  EXPECT_EQ(t.free_processors(), 352);
  EXPECT_EQ(t.free_blocks_at(4), 1u);
}

}  // namespace
