// End-to-end integration tests of the coupled scheduler/allocator/network
// simulation on small meshes with hand-checkable schedules.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <sstream>
#include <string>

#include "alloc/gabl.hpp"
#include "alloc/paging.hpp"
#include "core/job_record_store.hpp"
#include "core/system_sim.hpp"
#include "sched/ordered_scheduler.hpp"
#include "workload/stochastic.hpp"

namespace {

using procsim::alloc::GablAllocator;
using procsim::alloc::PagingAllocator;
using procsim::core::RunMetrics;
using procsim::core::SystemConfig;
using procsim::core::SystemSim;
using procsim::mesh::Geometry;
using procsim::sched::OrderedScheduler;
using procsim::sched::Policy;
using procsim::workload::Job;

Job make_job(std::uint64_t id, double arrival, std::int32_t w, std::int32_t l,
             std::vector<procsim::workload::MessagePlanEntry> plan, double demand = 0) {
  Job j;
  j.id = id;
  j.arrival = arrival;
  j.width = w;
  j.length = l;
  j.processors = w * l;
  j.message_plan = std::move(plan);
  j.demand = demand;
  return j;
}

TEST(SystemSim, SingleProcessorJobNominalService) {
  SystemConfig cfg;
  cfg.geom = Geometry(4, 4);
  cfg.target_completions = 1;
  GablAllocator alloc(cfg.geom);
  OrderedScheduler sched(Policy::kFcfs);
  SystemSim sim(cfg, alloc, sched);
  const std::vector<Job> jobs{make_job(0, 10.0, 1, 1, {})};
  const RunMetrics m = sim.run(jobs);
  EXPECT_EQ(m.completed, 1u);
  // Nominal service: 1 + st + P_len = 1 + 3 + 8 = 12.
  EXPECT_DOUBLE_EQ(m.service.mean(), 12.0);
  EXPECT_DOUBLE_EQ(m.turnaround.mean(), 12.0);
}

TEST(SystemSim, TwoProcessorJobServiceEqualsPacketLatency) {
  SystemConfig cfg;
  cfg.geom = Geometry(4, 4);
  cfg.target_completions = 1;
  GablAllocator alloc(cfg.geom);
  OrderedScheduler sched(Policy::kFcfs);
  SystemSim sim(cfg, alloc, sched);
  // 2×1 job, one message between the two (adjacent) processors:
  // latency = 2 channels × (1+3) + ... = (1+1)(1+3)+8 = 16.
  const std::vector<Job> jobs{make_job(0, 0.0, 2, 1, {{0, 1}})};
  const RunMetrics m = sim.run(jobs);
  EXPECT_EQ(m.completed, 1u);
  EXPECT_DOUBLE_EQ(m.packet_latency.mean(), 16.0);
  EXPECT_DOUBLE_EQ(m.service.mean(), 16.0);
  EXPECT_DOUBLE_EQ(m.packet_blocking.mean(), 0.0);
  EXPECT_EQ(m.packets, 1u);
}

TEST(SystemSim, ThinkTimeDelaysSecondMessage) {
  SystemConfig cfg;
  cfg.geom = Geometry(4, 4);
  cfg.target_completions = 1;
  cfg.think_time = 100;
  GablAllocator alloc(cfg.geom);
  OrderedScheduler sched(Policy::kFcfs);
  SystemSim sim(cfg, alloc, sched);
  // Two messages from the same source: service = 16 + 100 + 16 = 132.
  const std::vector<Job> jobs{make_job(0, 0.0, 2, 1, {{0, 1}, {0, 1}})};
  const RunMetrics m = sim.run(jobs);
  EXPECT_DOUBLE_EQ(m.service.mean(), 132.0);
  // Pacing means the second packet never queues: zero blocking.
  EXPECT_DOUBLE_EQ(m.packet_blocking.mean(), 0.0);
}

TEST(SystemSim, FcfsBlocksBehindBigJob) {
  SystemConfig cfg;
  cfg.geom = Geometry(4, 4);
  cfg.target_completions = 3;
  PagingAllocator alloc(cfg.geom, 0);
  OrderedScheduler sched(Policy::kFcfs);
  SystemSim sim(cfg, alloc, sched);
  // Job 0 takes the whole mesh; jobs 1 (whole mesh) and 2 (tiny) queue.
  // Under FCFS the tiny job cannot overtake the waiting whole-mesh job.
  const std::vector<Job> jobs{
      make_job(0, 0.0, 4, 4, {{0, 15}}, 100),
      make_job(1, 1.0, 4, 4, {{0, 15}}, 100),
      make_job(2, 2.0, 1, 2, {{0, 1}}, 1),
  };
  const RunMetrics m = sim.run(jobs);
  EXPECT_EQ(m.completed, 3u);
  // Tiny job waits for both big jobs: its turnaround dominates its service.
  EXPECT_GT(m.turnaround.max(), 2 * m.service.max());
}

TEST(SystemSim, SsdLetsShortJobOvertake) {
  SystemConfig cfg;
  cfg.geom = Geometry(4, 4);
  cfg.target_completions = 3;

  const std::vector<Job> jobs{
      make_job(0, 0.0, 4, 4, {{0, 15}}, 100),
      make_job(1, 1.0, 4, 4, {{0, 15}}, 100),
      make_job(2, 2.0, 1, 2, {{0, 1}}, 1),
  };

  PagingAllocator alloc_fcfs(cfg.geom, 0);
  OrderedScheduler fcfs(Policy::kFcfs);
  const RunMetrics m_fcfs = SystemSim(cfg, alloc_fcfs, fcfs).run(jobs);

  PagingAllocator alloc_ssd(cfg.geom, 0);
  OrderedScheduler ssd(Policy::kSsd);
  const RunMetrics m_ssd = SystemSim(cfg, alloc_ssd, ssd).run(jobs);

  // SSD improves mean turnaround by letting the short job jump the queue.
  EXPECT_LT(m_ssd.turnaround.mean(), m_fcfs.turnaround.mean());
}

TEST(SystemSim, UtilizationWithinBounds) {
  SystemConfig cfg;
  cfg.geom = Geometry(4, 4);
  cfg.target_completions = 2;
  GablAllocator alloc(cfg.geom);
  OrderedScheduler sched(Policy::kFcfs);
  SystemSim sim(cfg, alloc, sched);
  const std::vector<Job> jobs{
      make_job(0, 0.0, 2, 2, {{0, 3}}),
      make_job(1, 0.0, 2, 2, {{0, 3}}),
  };
  const RunMetrics m = sim.run(jobs);
  EXPECT_GT(m.utilization, 0.0);
  EXPECT_LE(m.utilization, 1.0);
  EXPECT_GT(m.makespan, 0.0);
}

TEST(SystemSim, TargetCompletionsStopsEarly) {
  SystemConfig cfg;
  cfg.geom = Geometry(4, 4);
  cfg.target_completions = 2;
  GablAllocator alloc(cfg.geom);
  OrderedScheduler sched(Policy::kFcfs);
  SystemSim sim(cfg, alloc, sched);
  std::vector<Job> jobs;
  for (int i = 0; i < 10; ++i)
    jobs.push_back(make_job(static_cast<std::uint64_t>(i), i * 5.0, 2, 1, {{0, 1}}));
  const RunMetrics m = sim.run(jobs);
  EXPECT_EQ(m.completed, 2u);
}

TEST(SystemSim, WarmupExcludedFromStatistics) {
  SystemConfig cfg;
  cfg.geom = Geometry(4, 4);
  cfg.target_completions = 3;
  cfg.warmup_completions = 2;
  GablAllocator alloc(cfg.geom);
  OrderedScheduler sched(Policy::kFcfs);
  SystemSim sim(cfg, alloc, sched);
  std::vector<Job> jobs;
  for (int i = 0; i < 8; ++i)
    jobs.push_back(make_job(static_cast<std::uint64_t>(i), i * 100.0, 2, 1, {{0, 1}}));
  const RunMetrics m = sim.run(jobs);
  EXPECT_EQ(m.completed, 3u);             // measured completions
  EXPECT_EQ(m.turnaround.count(), 3u);    // warmup jobs not counted
}

TEST(SystemSim, DeterministicAcrossRuns) {
  SystemConfig cfg;
  cfg.geom = Geometry(8, 8);
  cfg.target_completions = 50;
  std::vector<Job> jobs;
  procsim::des::Xoshiro256SS rng(5);
  procsim::workload::StochasticParams params;
  params.load = 0.05;
  jobs = procsim::workload::generate_stochastic(params, cfg.geom, 50, rng);

  GablAllocator a1(cfg.geom);
  OrderedScheduler s1(Policy::kSsd);
  const RunMetrics m1 = SystemSim(cfg, a1, s1).run(jobs);

  GablAllocator a2(cfg.geom);
  OrderedScheduler s2(Policy::kSsd);
  const RunMetrics m2 = SystemSim(cfg, a2, s2).run(jobs);

  EXPECT_DOUBLE_EQ(m1.turnaround.mean(), m2.turnaround.mean());
  EXPECT_DOUBLE_EQ(m1.packet_latency.mean(), m2.packet_latency.mean());
  EXPECT_DOUBLE_EQ(m1.makespan, m2.makespan);
  EXPECT_EQ(m1.events, m2.events);
}

TEST(SystemSim, NetEngineSelectionPreservesTrajectory) {
  // SystemConfig::net.engine swaps the wormhole engine per run; the batched
  // fast path and verify's lock-step shadow must leave every model-visible
  // metric identical to the stepped oracle. Only the DES event count (and
  // wall time) may differ — fewer events per packet is the whole point of
  // batching — so RunMetrics::events is deliberately not compared.
  SystemConfig cfg;
  cfg.geom = Geometry(8, 8);
  cfg.target_completions = 50;
  std::vector<Job> jobs;
  procsim::des::Xoshiro256SS rng(7);
  procsim::workload::StochasticParams params;
  params.load = 0.05;
  jobs = procsim::workload::generate_stochastic(params, cfg.geom, 50, rng);

  auto run_with = [&](procsim::network::NetEngine engine) {
    SystemConfig c = cfg;
    c.net.engine = engine;
    GablAllocator alloc(c.geom);
    OrderedScheduler sched(Policy::kSsd);
    return SystemSim(c, alloc, sched).run(jobs);
  };
  const RunMetrics stepped = run_with(procsim::network::NetEngine::kStepped);
  const RunMetrics batched = run_with(procsim::network::NetEngine::kBatched);
  const RunMetrics verify = run_with(procsim::network::NetEngine::kVerify);

  for (const RunMetrics* m : {&batched, &verify}) {
    EXPECT_DOUBLE_EQ(m->turnaround.mean(), stepped.turnaround.mean());
    EXPECT_DOUBLE_EQ(m->service.mean(), stepped.service.mean());
    EXPECT_DOUBLE_EQ(m->packet_latency.mean(), stepped.packet_latency.mean());
    EXPECT_DOUBLE_EQ(m->packet_blocking.mean(), stepped.packet_blocking.mean());
    EXPECT_DOUBLE_EQ(m->makespan, stepped.makespan);
    EXPECT_EQ(m->packets, stepped.packets);
    EXPECT_EQ(m->completed, stepped.completed);
  }
}

TEST(SystemSim, RunIsRepeatableOnSameInstance) {
  SystemConfig cfg;
  cfg.geom = Geometry(4, 4);
  cfg.target_completions = 2;
  GablAllocator alloc(cfg.geom);
  OrderedScheduler sched(Policy::kFcfs);
  SystemSim sim(cfg, alloc, sched);
  const std::vector<Job> jobs{
      make_job(0, 0.0, 2, 2, {{0, 3}}),
      make_job(1, 5.0, 2, 2, {{1, 2}}),
  };
  const RunMetrics m1 = sim.run(jobs);
  const RunMetrics m2 = sim.run(jobs);  // internal reset between runs
  EXPECT_DOUBLE_EQ(m1.turnaround.mean(), m2.turnaround.mean());
}

TEST(SystemSim, CoalescedPassesMatchLegacyOnContinuousWorkload) {
  // Continuous-time arrivals/completions (almost) never tie, so one pass per
  // timestamp must walk the exact same trajectory as one pass per event.
  SystemConfig cfg;
  cfg.geom = Geometry(8, 8);
  cfg.target_completions = 80;
  std::vector<Job> jobs;
  procsim::des::Xoshiro256SS rng(11);
  procsim::workload::StochasticParams params;
  params.load = 0.08;
  jobs = procsim::workload::generate_stochastic(params, cfg.geom, 80, rng);

  cfg.coalesce_passes = false;
  GablAllocator a1(cfg.geom);
  OrderedScheduler s1(Policy::kFcfs);
  const RunMetrics legacy = SystemSim(cfg, a1, s1).run(jobs);

  cfg.coalesce_passes = true;
  GablAllocator a2(cfg.geom);
  OrderedScheduler s2(Policy::kFcfs);
  const RunMetrics coalesced = SystemSim(cfg, a2, s2).run(jobs);

  EXPECT_DOUBLE_EQ(legacy.turnaround.mean(), coalesced.turnaround.mean());
  EXPECT_DOUBLE_EQ(legacy.service.mean(), coalesced.service.mean());
  EXPECT_DOUBLE_EQ(legacy.packet_latency.mean(), coalesced.packet_latency.mean());
  EXPECT_DOUBLE_EQ(legacy.makespan, coalesced.makespan);
  EXPECT_EQ(legacy.packets, coalesced.packets);
}

TEST(SystemSim, CoalescedSaturationBurstStillCompletesEverything) {
  // All arrivals at t=0: the tie-heavy regime where coalescing may place
  // jobs differently. The invariants that must survive: every job completes
  // and every processor comes back.
  SystemConfig cfg;
  cfg.geom = Geometry(8, 8);
  cfg.target_completions = 0;
  cfg.coalesce_passes = true;
  GablAllocator alloc(cfg.geom);
  OrderedScheduler sched(Policy::kFcfs);
  SystemSim sim(cfg, alloc, sched);
  procsim::des::Xoshiro256SS rng(13);
  procsim::workload::StochasticParams params;
  params.load = 0.1;
  auto jobs = procsim::workload::generate_stochastic(params, cfg.geom, 60, rng);
  for (auto& j : jobs) j.arrival = 0.0;
  const RunMetrics m = sim.run(jobs);
  EXPECT_EQ(m.completed, 60u);
  EXPECT_EQ(alloc.free_processors(), 64);
}

TEST(SystemSim, RejectsDuplicateJobIds) {
  SystemConfig cfg;
  cfg.geom = Geometry(4, 4);
  GablAllocator alloc(cfg.geom);
  OrderedScheduler sched(Policy::kFcfs);
  SystemSim sim(cfg, alloc, sched);
  // Same id twice, arrivals spread out so both reach the arena.
  const std::vector<Job> jobs{
      make_job(7, 0.0, 4, 4, {{0, 1}, {1, 0}}),
      make_job(7, 1.0, 1, 1, {}),
  };
  EXPECT_THROW((void)sim.run(jobs), std::invalid_argument);
}

TEST(SystemSim, JobRecordStoreCollectsColumnarRecords) {
  SystemConfig cfg;
  cfg.geom = Geometry(8, 8);
  cfg.target_completions = 40;
  GablAllocator alloc(cfg.geom);
  OrderedScheduler sched(Policy::kFcfs);
  SystemSim sim(cfg, alloc, sched);
  procsim::core::JobRecordStore store;
  sim.set_metrics_sink(&store);
  procsim::des::Xoshiro256SS rng(17);
  procsim::workload::StochasticParams params;
  params.load = 0.05;
  const auto jobs = procsim::workload::generate_stochastic(params, cfg.geom, 40, rng);
  const RunMetrics m = sim.run(jobs);
  ASSERT_EQ(store.size(), m.completed);

  // The reassembled records must tell the same story as the aggregates.
  double turnaround_sum = 0;
  for (std::size_t i = 0; i < store.size(); ++i) {
    const procsim::core::JobRecord r = store.record(i);
    EXPECT_GE(r.start, r.arrival);
    EXPECT_GT(r.finish, r.start);
    EXPECT_GE(r.allocated, r.processors);
    turnaround_sum += r.turnaround();
  }
  EXPECT_NEAR(turnaround_sum / static_cast<double>(store.size()),
              m.turnaround.mean(), 1e-9);

  // CSV emission is deterministic and one row per record.
  std::ostringstream csv;
  store.write_csv(csv);
  const std::string text = csv.str();
  EXPECT_EQ(static_cast<std::size_t>(
                std::count(text.begin(), text.end(), '\n')),
            store.size() + 1);  // header + rows
  store.clear();
  EXPECT_TRUE(store.empty());
}

TEST(SystemSim, RejectsUnsortedJobs) {
  SystemConfig cfg;
  cfg.geom = Geometry(4, 4);
  GablAllocator alloc(cfg.geom);
  OrderedScheduler sched(Policy::kFcfs);
  SystemSim sim(cfg, alloc, sched);
  const std::vector<Job> jobs{
      make_job(0, 10.0, 1, 1, {}),
      make_job(1, 5.0, 1, 1, {}),
  };
  EXPECT_THROW((void)sim.run(jobs), std::invalid_argument);
}

TEST(SystemSim, RejectsGeometryMismatch) {
  SystemConfig cfg;
  cfg.geom = Geometry(4, 4);
  GablAllocator alloc(Geometry(8, 8));
  OrderedScheduler sched(Policy::kFcfs);
  EXPECT_THROW(SystemSim(cfg, alloc, sched), std::invalid_argument);
}

TEST(SystemSim, AllProcessorsReleasedAtEnd) {
  SystemConfig cfg;
  cfg.geom = Geometry(8, 8);
  cfg.target_completions = 0;  // run all jobs to completion
  GablAllocator alloc(cfg.geom);
  OrderedScheduler sched(Policy::kFcfs);
  SystemSim sim(cfg, alloc, sched);
  procsim::des::Xoshiro256SS rng(3);
  procsim::workload::StochasticParams params;
  params.load = 0.1;
  const auto jobs = procsim::workload::generate_stochastic(params, cfg.geom, 100, rng);
  const RunMetrics m = sim.run(jobs);
  EXPECT_EQ(m.completed, 100u);
  EXPECT_EQ(alloc.free_processors(), 64);  // everything returned
}

}  // namespace
