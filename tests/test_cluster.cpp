#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "cluster/cluster_spec.hpp"
#include "cluster/dispatcher.hpp"
#include "core/experiment.hpp"
#include "core/experiment_spec.hpp"
#include "network/wormhole_network.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace procsim;
using cluster::MeshLoadView;
using cluster::parse_cluster_spec;

std::vector<MeshLoadView> depths(std::vector<std::int64_t> ds) {
  std::vector<MeshLoadView> out;
  for (const std::int64_t d : ds) out.push_back(MeshLoadView{d, 64, 0});
  return out;
}

std::vector<std::size_t> all_eligible(std::size_t n) {
  std::vector<std::size_t> out(n);
  std::iota(out.begin(), out.end(), std::size_t{0});
  return out;
}

// ---------------------------------------------------------------------------
// Spec parsing
// ---------------------------------------------------------------------------

TEST(ClusterSpec, DefaultsAndCanonical) {
  const auto spec = parse_cluster_spec("4x(32x32)");
  ASSERT_TRUE(spec.has_value());
  ASSERT_EQ(spec->size(), 4u);
  for (const auto& m : spec->meshes) {
    EXPECT_EQ(m.geom.width(), 32);
    EXPECT_EQ(m.geom.length(), 32);
    EXPECT_TRUE(m.alloc.empty());
  }
  EXPECT_EQ(spec->balance, "round_robin");
  EXPECT_FALSE(spec->migrate);
  EXPECT_EQ(spec->total_nodes(), 4 * 32 * 32);
  EXPECT_EQ(spec->canonical, "4x(32x32);balance=round_robin");
}

TEST(ClusterSpec, CanonicalRoundTrips) {
  // parse(canonical) must reproduce the identical spec — the same contract
  // as the alloc/sched registries' label round-trips.
  for (const char* s :
       {"4x(32x32);balance=shortest_queue;stale=10;migrate=steal;lat=50",
        "2x(32x32:GABL)+2x(16x16:FirstFit);balance=improved",
        "1x(16x22)", "4x(16x16);balance=stale_queue;stale=25",
        "3x(8x8);balance=random;migrate=steal;lat=12.5"}) {
    const auto spec = parse_cluster_spec(s);
    ASSERT_TRUE(spec.has_value()) << s;
    const auto again = parse_cluster_spec(spec->canonical);
    ASSERT_TRUE(again.has_value()) << spec->canonical;
    EXPECT_EQ(again->canonical, spec->canonical);
    EXPECT_TRUE(*again == *spec);
  }
  // stale= only means something to the snapshot policies; the canonical
  // spelling drops it elsewhere (and keeps it for stale_queue/improved).
  EXPECT_EQ(parse_cluster_spec("4x(32x32);balance=shortest_queue;stale=10")
                ->canonical,
            "4x(32x32);balance=shortest_queue");
  EXPECT_EQ(parse_cluster_spec("2x(16x16);balance=improved")->canonical,
            "2x(16x16);balance=improved;stale=10");
}

TEST(ClusterSpec, GroupsRunLengthEncodeAndNormalize) {
  const auto spec = parse_cluster_spec("1x(8x8)+1x(8x8)+2x(4x4)");
  ASSERT_TRUE(spec.has_value());
  ASSERT_EQ(spec->size(), 4u);
  EXPECT_EQ(spec->canonical, "2x(8x8)+2x(4x4);balance=round_robin");
  // Case-insensitive everywhere; allocator names canonicalize.
  const auto het = parse_cluster_spec("4X(16X16:gabl);BALANCE=IMPROVED;STALE=5");
  ASSERT_TRUE(het.has_value());
  EXPECT_EQ(het->meshes[0].alloc, "GABL");
  EXPECT_EQ(het->canonical, "4x(16x16:GABL);balance=improved;stale=5");
}

TEST(ClusterSpec, HeterogeneousAllocNamesPerMesh) {
  const auto spec = parse_cluster_spec("1x(8x8:MBS)+1x(8x8)");
  ASSERT_TRUE(spec.has_value());
  EXPECT_EQ(spec->meshes[0].alloc, "MBS");
  EXPECT_TRUE(spec->meshes[1].alloc.empty());  // experiment default
}

TEST(ClusterSpec, MalformedSpecsFailWithReason) {
  const auto fails = [](const char* s, const char* needle) {
    std::string error;
    EXPECT_FALSE(parse_cluster_spec(s, &error).has_value()) << s;
    EXPECT_NE(error.find(needle), std::string::npos)
        << s << " -> '" << error << "'";
  };
  fails("", "empty");
  fails("0x(8x8)", "count");
  fails("4x(8x8", "group");
  fails("4x8x8)", "group");
  fails("4x(8x8);balance=bogus", "round_robin");       // lists known policies
  fails("4x(8x8:Buddy)", "GABL");                      // lists known allocators
  fails("4x(8x8);stale=0", "stale");
  fails("4x(8x8);lat=-1", "lat");
  fails("4x(8x8);migrate=maybe", "migrate");
  fails("4x(8x8);bogus=1", "unknown");
  fails("4x(9999x8)", "4096");
}

// ---------------------------------------------------------------------------
// Dispatcher policies
// ---------------------------------------------------------------------------

TEST(Dispatcher, RoundRobinCyclesSkippingIneligible) {
  const auto d = cluster::make_dispatcher("round_robin", 10, 1);
  const auto loads = depths({0, 0, 0, 0});
  const auto all = all_eligible(4);
  for (const std::size_t want : {0u, 1u, 2u, 3u, 0u, 1u})
    EXPECT_EQ(d->pick(0.0, loads, all), want);
  // With meshes 1 and 3 eligible the cycle continues, skipping the rest.
  const std::vector<std::size_t> some{1, 3};
  EXPECT_EQ(d->pick(0.0, loads, some), 3u);
  EXPECT_EQ(d->pick(0.0, loads, some), 1u);
  // The cursor keeps cyclic order: the pick after mesh 1 is mesh 2.
  EXPECT_EQ(d->pick(0.0, loads, all), 2u);
}

TEST(Dispatcher, ShortestQueuePicksArgminLowestIndexTie) {
  const auto d = cluster::make_dispatcher("shortest_queue", 10, 1);
  EXPECT_EQ(d->pick(0.0, depths({3, 1, 2}), all_eligible(3)), 1u);
  EXPECT_EQ(d->pick(0.0, depths({2, 1, 1}), all_eligible(3)), 1u);  // tie -> low
  EXPECT_EQ(d->pick(0.0, depths({0, 9, 9}), {1, 2}), 1u);  // ineligible ignored
}

TEST(Dispatcher, RandomIsSeedDeterministicAndStaysEligible) {
  const auto a = cluster::make_dispatcher("random", 10, 42);
  const auto b = cluster::make_dispatcher("random", 10, 42);
  const auto loads = depths({5, 0, 7, 1});
  const std::vector<std::size_t> eligible{0, 2, 3};
  for (int i = 0; i < 50; ++i) {
    const std::size_t pa = a->pick(0.0, loads, eligible);
    EXPECT_EQ(pa, b->pick(0.0, loads, eligible));
    EXPECT_TRUE(pa == 0 || pa == 2 || pa == 3);
  }
}

TEST(Dispatcher, StaleQueueDivergesFromFreshOnlyBetweenRefreshes) {
  const auto stale = cluster::make_dispatcher("stale_queue", 10, 1);
  const auto fresh = cluster::make_dispatcher("shortest_queue", 10, 1);
  const auto all = all_eligible(3);
  // t=0: snapshot taken; both policies agree on the fresh argmin.
  const auto at0 = depths({0, 5, 5});
  EXPECT_EQ(stale->pick(0.0, at0, all), 0u);
  EXPECT_EQ(fresh->pick(0.0, at0, all), 0u);
  // t=5 (< refresh): the world changed, the snapshot didn't — divergence.
  const auto at5 = depths({9, 5, 0});
  EXPECT_EQ(fresh->pick(5.0, at5, all), 2u);
  EXPECT_EQ(stale->pick(5.0, at5, all), 0u);  // still the stale argmin
  // t=10 (>= refresh): snapshot refreshes, agreement returns.
  EXPECT_EQ(stale->pick(10.0, at5, all), 2u);
  EXPECT_EQ(fresh->pick(10.0, at5, all), 2u);
}

TEST(Dispatcher, ImprovedSpreadsWithinOneRefreshWindow) {
  // The hybrid increments its own snapshot after each pick, so a burst of
  // arrivals inside one refresh window round-robins across the fleet instead
  // of herding onto the mesh that looked emptiest at snapshot time.
  const auto d = cluster::make_dispatcher("improved", 100, 1);
  const auto loads = depths({0, 0, 0, 0});
  const auto all = all_eligible(4);
  std::multiset<std::size_t> picks;
  for (int i = 0; i < 4; ++i) picks.insert(d->pick(1.0, loads, all));
  EXPECT_EQ(picks, (std::multiset<std::size_t>{0, 1, 2, 3}));
}

TEST(Dispatcher, UnknownPolicyThrowsListingKnown) {
  try {
    (void)cluster::make_dispatcher("bogus", 10, 1);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("shortest_queue"), std::string::npos);
  }
  // The registry listing and the factory accept the same set.
  for (const std::string& name : cluster::known_dispatchers())
    EXPECT_EQ(cluster::make_dispatcher(name, 10, 1)->name(), name);
}

// ---------------------------------------------------------------------------
// Unified experiment-spec entry point
// ---------------------------------------------------------------------------

TEST(ExperimentSpec, AppliesEveryAxis) {
  core::ExperimentSpecStrings axes;
  axes.cluster = "4x(16x16);balance=improved";
  axes.alloc = "mbs";
  axes.sched = "ssd";
  axes.workload = "bursty;b=8";
  axes.net = "stepped";
  const core::ExperimentConfig cfg = core::parse_experiment_spec(axes);
  ASSERT_TRUE(cfg.cluster.has_value());
  EXPECT_EQ(cfg.cluster->size(), 4u);
  EXPECT_EQ(cfg.sys.geom.width(), 16);  // shaped for the first mesh
  EXPECT_EQ(cfg.allocator.label(), "MBS");
  EXPECT_EQ(cfg.scheduler.canonical, "SSD");
  EXPECT_FALSE(cfg.workload.source_spec.empty());
  EXPECT_EQ(cfg.workload.job_count, 0u);  // registry stream defaults
  EXPECT_STREQ(network::net_engine_name(cfg.sys.net.engine), "stepped");
}

TEST(ExperimentSpec, BareFiguresKeepTemplatePath) {
  core::ExperimentSpecStrings axes;
  axes.workload = "uniform";
  core::ExperimentConfig cfg = core::parse_experiment_spec(axes);
  EXPECT_TRUE(cfg.workload.source_spec.empty());
  EXPECT_EQ(cfg.workload.kind, core::WorkloadKind::kStochastic);
  axes.workload = "real";
  cfg = core::parse_experiment_spec(axes);
  EXPECT_TRUE(cfg.workload.source_spec.empty());
  EXPECT_EQ(cfg.workload.kind, core::WorkloadKind::kTrace);
}

TEST(ExperimentSpec, MeshAndClusterConflict) {
  core::ExperimentSpecStrings axes;
  axes.mesh = "16x16";
  axes.cluster = "2x(16x16)";
  EXPECT_THROW((void)core::parse_experiment_spec(axes), std::invalid_argument);
}

TEST(ExperimentSpec, UnknownNamesListKnownKinds) {
  const auto error_contains = [](core::ExperimentSpecStrings axes,
                                 const char* needle) {
    try {
      (void)core::parse_experiment_spec(axes);
      FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << e.what();
    }
  };
  core::ExperimentSpecStrings axes;
  axes.alloc = "NoSuch";
  error_contains(axes, "GABL");
  axes = {};
  axes.sched = "NoSuch";
  error_contains(axes, "FCFS");
  axes = {};
  axes.workload = "NoSuch";
  error_contains(axes, "saturation");
  axes = {};
  axes.cluster = "2x(8x8);balance=NoSuch";
  error_contains(axes, "round_robin");
  axes = {};
  axes.mesh = "16";
  error_contains(axes, "WxL");
}

TEST(ExperimentSpec, ClusterMetricsAreKnown) {
  const auto metrics = core::known_metrics();
  for (const char* m : {"util_spread", "util_min", "util_max", "util_stddev",
                        "migrations", "migration_latency", "stale_errors"})
    EXPECT_NE(std::find(metrics.begin(), metrics.end(), m), metrics.end()) << m;
}

// ---------------------------------------------------------------------------
// ClusterSim end-to-end (through the ExperimentConfig cluster axis)
// ---------------------------------------------------------------------------

struct IdSink final : core::MetricsSink {
  std::vector<std::uint64_t> ids;
  void on_job(const core::JobRecord& rec) override { ids.push_back(rec.id); }
};

core::ExperimentConfig cluster_cfg(const std::string& spec, double load,
                                   std::size_t jobs) {
  core::ExperimentConfig cfg;
  cfg.cluster = parse_cluster_spec(spec);
  EXPECT_TRUE(cfg.cluster.has_value()) << spec;
  cfg.sys.geom = cfg.cluster->meshes.front().geom;
  cfg.sys.think_time = 10;
  cfg.sys.target_completions = 0;  // drain the whole stream
  cfg.workload.kind = core::WorkloadKind::kStochastic;
  cfg.workload.job_count = jobs;
  cfg.workload.stochastic.load = load;
  cfg.seed = 7;
  return cfg;
}

TEST(ClusterSim, DrainCompletesEveryJobExactlyOnce) {
  const auto cfg = cluster_cfg("4x(8x8);balance=shortest_queue", 0.05, 200);
  IdSink sink;
  const core::RunMetrics m = core::run_probed(cfg, nullptr, &sink);
  EXPECT_EQ(m.completed, 200u);
  ASSERT_EQ(sink.ids.size(), 200u);
  EXPECT_EQ(std::set(sink.ids.begin(), sink.ids.end()).size(), 200u);
  EXPECT_EQ(m.cluster.meshes, 4u);
  EXPECT_LE(m.cluster.util_min, m.cluster.util_mean);
  EXPECT_LE(m.cluster.util_mean, m.cluster.util_max);
  EXPECT_GE(m.cluster.util_stddev, 0.0);
  EXPECT_DOUBLE_EQ(m.cluster.spread(), m.cluster.util_max - m.cluster.util_min);
  // shortest_queue always picks the fresh argmin: staleness errors impossible.
  EXPECT_EQ(m.cluster.stale_errors, 0u);
  EXPECT_EQ(m.cluster.migrations, 0u);  // migrate=off
}

TEST(ClusterSim, MigrationPaysLatencyAndNeverDuplicatesOrLoses) {
  const auto cfg =
      cluster_cfg("2x(8x8);balance=round_robin;migrate=steal;lat=50", 0.12, 300);
  IdSink sink;
  const core::RunMetrics m = core::run_probed(cfg, nullptr, &sink);
  // Conservation: every job completes exactly once, with or without travel.
  EXPECT_EQ(m.completed, 300u);
  ASSERT_EQ(sink.ids.size(), 300u);
  EXPECT_EQ(std::set(sink.ids.begin(), sink.ids.end()).size(), 300u);
  // The fixed seed produces steals, and each one pays exactly `lat`.
  EXPECT_GE(m.cluster.migrations, 1u);
  EXPECT_DOUBLE_EQ(m.cluster.migration_latency,
                   50.0 * static_cast<double>(m.cluster.migrations));
}

TEST(ClusterSim, StaleQueueMakesStaleErrorsShortestQueueNone) {
  auto cfg = cluster_cfg("4x(8x8);balance=stale_queue;stale=200", 0.12, 300);
  const core::RunMetrics stale = core::run_probed(cfg, nullptr, nullptr);
  EXPECT_GT(stale.cluster.stale_errors, 0u);
  cfg = cluster_cfg("4x(8x8);balance=shortest_queue", 0.12, 300);
  const core::RunMetrics fresh = core::run_probed(cfg, nullptr, nullptr);
  EXPECT_EQ(fresh.cluster.stale_errors, 0u);
}

TEST(ClusterSim, SchedulerAxisReachesEveryMesh) {
  auto cfg = cluster_cfg("2x(8x8);balance=round_robin", 0.15, 250);
  cfg.scheduler = *sched::parse_sched_spec("FCFS");
  const core::RunMetrics fcfs = core::run_once(cfg);
  cfg.scheduler = *sched::parse_sched_spec("SJF");
  const core::RunMetrics sjf = core::run_once(cfg);
  // Under queueing, per-mesh SJF reorders and the aggregate must move.
  EXPECT_NE(fcfs.turnaround.mean(), sjf.turnaround.mean());
}

TEST(ClusterSim, FixedSeedRunsAreBitIdentical) {
  const auto cfg = cluster_cfg("4x(8x8);balance=improved", 0.08, 150);
  const core::RunMetrics a = core::run_once(cfg);
  const core::RunMetrics b = core::run_once(cfg);
  EXPECT_EQ(a.turnaround.mean(), b.turnaround.mean());
  EXPECT_EQ(a.utilization, b.utilization);
  EXPECT_EQ(a.cluster.spread(), b.cluster.spread());
  EXPECT_EQ(a.cluster.stale_errors, b.cluster.stale_errors);
  EXPECT_EQ(a.events, b.events);
}

TEST(ClusterSim, ThreadedReplicationsMatchSerialBitForBit) {
  const auto cfg = cluster_cfg("2x(8x8);balance=random;migrate=steal;lat=25",
                               0.08, 120);
  stats::ReplicationPolicy policy;
  policy.min_replications = policy.max_replications = 3;
  const core::AggregateResult serial = core::run_replicated(cfg, policy, nullptr);
  util::ThreadPool pool(2);
  const core::AggregateResult threaded = core::run_replicated(cfg, policy, &pool);
  ASSERT_EQ(serial.replications, threaded.replications);
  ASSERT_EQ(serial.metrics.size(), threaded.metrics.size());
  for (const auto& [name, interval] : serial.metrics) {
    ASSERT_TRUE(threaded.metrics.contains(name)) << name;
    EXPECT_EQ(interval.mean, threaded.metrics.at(name).mean) << name;
    EXPECT_EQ(interval.half_width, threaded.metrics.at(name).half_width) << name;
  }
}

}  // namespace
