// Cross-engine equivalence suite for the wormhole network: the batched
// hop-run fast path must be bit-identical to the stepped per-hop oracle —
// per-packet delivery time, latency, blocked time, hop count AND delivery
// order — across randomized churn, hotspot pileups and adversarial
// head-of-line patterns. Verify mode (batched primary + stepped shadow in
// lock-step) must run the same traffic without tripping its cross-checks,
// and the analytic mode must sit inside its documented tolerance band.

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "des/rng.hpp"
#include "des/simulator.hpp"
#include "mesh/coord.hpp"
#include "network/routing.hpp"
#include "network/wormhole_network.hpp"

namespace {

using procsim::des::Simulator;
using procsim::des::Xoshiro256SS;
using procsim::mesh::Coord;
using procsim::mesh::Geometry;
using procsim::mesh::NodeId;
using procsim::network::Delivery;
using procsim::network::NetEngine;
using procsim::network::NetworkParams;
using procsim::network::WormholeNetwork;

/// One injection of a churn schedule: packet `tag` enters at absolute
/// integer time `t` (integer times on purpose — they collide, exercising
/// the same-timestamp arbitration that decides FIFO order).
struct Injection {
  double t{0};
  NodeId src{0};
  NodeId dst{0};
  std::uint64_t tag{0};
};

/// Everything an engine may not disagree on, in delivery order.
struct Record {
  double time{0};
  double latency{0};
  double blocked{0};
  std::int32_t hops{0};
  std::uint64_t tag{0};
  NodeId src{0};
  NodeId dst{0};

  bool operator==(const Record&) const = default;
};

struct RunResult {
  std::vector<Record> deliveries;
  std::uint64_t truncations{0};
  std::uint64_t runs_batched{0};
};

/// Replays one injection schedule on one engine and returns the full
/// delivery trajectory.
RunResult run_schedule(const std::vector<Injection>& schedule, Geometry geom,
                       NetworkParams params) {
  Simulator sim;
  WormholeNetwork net(sim, geom, params);
  struct Ctx {
    Simulator* sim;
    std::vector<Record>* out;
  };
  std::vector<Record> deliveries;
  Ctx ctx{&sim, &deliveries};
  net.set_delivery_sink(
      [](void* c, const Delivery& d) {
        auto* x = static_cast<Ctx*>(c);
        x->out->push_back(Record{x->sim->now(), d.latency, d.blocked, d.hops,
                                 d.tag, d.src, d.dst});
      },
      &ctx);
  for (const Injection& in : schedule)
    sim.schedule_at(in.t, [&net, in] { net.inject(in.src, in.dst, in.tag); });
  sim.run();
  EXPECT_EQ(net.in_flight(), 0u);
  RunResult r;
  r.deliveries = std::move(deliveries);
  r.truncations = net.stats().truncations;
  r.runs_batched = net.stats().runs_batched;
  return r;
}

/// Stepped vs batched vs verify on the same schedule: all three must
/// produce the identical delivery trajectory, and verify's internal
/// lock-step cross-checks must not throw.
void expect_engines_agree(const std::vector<Injection>& schedule, Geometry geom,
                          NetworkParams params) {
  params.engine = NetEngine::kStepped;
  const RunResult stepped = run_schedule(schedule, geom, params);
  params.engine = NetEngine::kBatched;
  const RunResult batched = run_schedule(schedule, geom, params);
  params.engine = NetEngine::kVerify;
  const RunResult verify = run_schedule(schedule, geom, params);

  ASSERT_EQ(stepped.deliveries.size(), schedule.size());
  ASSERT_EQ(stepped.deliveries.size(), batched.deliveries.size());
  for (std::size_t i = 0; i < stepped.deliveries.size(); ++i) {
    ASSERT_EQ(stepped.deliveries[i], batched.deliveries[i])
        << "delivery " << i << " diverged (tag "
        << stepped.deliveries[i].tag << " vs " << batched.deliveries[i].tag
        << ")";
  }
  ASSERT_EQ(batched.deliveries, verify.deliveries);
}

std::vector<Injection> uniform_churn(Geometry geom, int count, int span,
                                     std::uint64_t seed) {
  Xoshiro256SS rng(seed);
  const auto nodes = static_cast<std::uint64_t>(geom.nodes());
  std::vector<Injection> schedule;
  schedule.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    Injection in;
    in.t = static_cast<double>(rng() % static_cast<std::uint64_t>(span));
    in.src = static_cast<NodeId>(rng() % nodes);
    in.dst = static_cast<NodeId>(rng() % nodes);
    if (in.dst == in.src) in.dst = static_cast<NodeId>((in.dst + 1) % geom.nodes());
    in.tag = static_cast<std::uint64_t>(i);
    schedule.push_back(in);
  }
  return schedule;
}

// ------------------------------------------------------- randomized churn

TEST(EngineEquivalence, UniformChurnAcrossParams) {
  const Geometry geom(8, 8);
  for (const bool torus : {false, true}) {
    for (const int plen : {1, 8, 64}) {
      const auto schedule = uniform_churn(geom, 300, 400, 0xC0FFEE + plen);
      expect_engines_agree(schedule, geom,
                           NetworkParams{3, plen, torus, NetEngine::kStepped});
    }
  }
}

TEST(EngineEquivalence, UniformChurnZeroRoutingDelay) {
  const Geometry geom(8, 8);
  const auto schedule = uniform_churn(geom, 300, 300, 0xABBA);
  expect_engines_agree(schedule, geom,
                       NetworkParams{0, 8, false, NetEngine::kStepped});
}

TEST(EngineEquivalence, HotspotChurn) {
  // Everyone hammers one corner: deep FIFOs, long waits, heavy same-time
  // contention on the final links and the ejection channel.
  const Geometry geom(8, 8);
  Xoshiro256SS rng(0x407);
  const auto nodes = static_cast<std::uint64_t>(geom.nodes());
  std::vector<Injection> schedule;
  for (int i = 0; i < 200; ++i) {
    Injection in;
    in.t = static_cast<double>(rng() % 64);
    in.src = static_cast<NodeId>(1 + rng() % (nodes - 1));
    in.dst = 0;
    in.tag = static_cast<std::uint64_t>(i);
    schedule.push_back(in);
  }
  for (const int plen : {1, 8, 64})
    expect_engines_agree(schedule, geom,
                         NetworkParams{3, plen, false, NetEngine::kStepped});
}

TEST(EngineEquivalence, AdversarialHeadOfLineTruncatesReservations) {
  // A long worm launched across a full row reserves its whole free path in
  // one batched run; cross traffic injected just behind the header attacks
  // those not-yet-realized reservations with earlier attempt keys. The
  // batched engine must truncate the run and still match the oracle
  // delivery-for-delivery.
  const Geometry geom(16, 4);
  std::vector<Injection> schedule;
  std::uint64_t tag = 0;
  for (int row = 0; row < 4; ++row) {
    schedule.push_back(
        {0.0, static_cast<NodeId>(row * 16), static_cast<NodeId>(row * 16 + 15),
         tag++});
  }
  // Crossers start one cycle later from mid-row, east along the same links.
  for (int row = 0; row < 4; ++row) {
    for (const int x : {3, 7, 11}) {
      schedule.push_back({1.0, static_cast<NodeId>(row * 16 + x),
                          static_cast<NodeId>(row * 16 + 15), tag++});
    }
  }
  NetworkParams p{3, 8, false, NetEngine::kBatched};
  const RunResult batched = run_schedule(schedule, geom, p);
  EXPECT_GT(batched.truncations, 0u)
      << "the adversarial pattern no longer exercises reservation truncation";
  expect_engines_agree(schedule, geom, p);
}

// ------------------------------------------------------- FIFO order pins

TEST(EngineEquivalence, WaiterFifoOrderIsInjectionOrder) {
  // Three same-time injections from one node serialize on the injection
  // channel: grants must follow inject() call order (seq), not any
  // engine-internal order — pinned identically on both engines.
  const Geometry geom(8, 2);
  std::vector<Injection> schedule;
  for (std::uint64_t k = 0; k < 3; ++k)
    schedule.push_back({5.0, 0, static_cast<NodeId>(7), 10 + k});
  for (const auto engine : {NetEngine::kStepped, NetEngine::kBatched}) {
    const RunResult r =
        run_schedule(schedule, geom, NetworkParams{3, 8, false, engine});
    ASSERT_EQ(r.deliveries.size(), 3u);
    EXPECT_EQ(r.deliveries[0].tag, 10u);
    EXPECT_EQ(r.deliveries[1].tag, 11u);
    EXPECT_EQ(r.deliveries[2].tag, 12u);
    // Strictly increasing delivery times: one worm at a time per channel.
    EXPECT_LT(r.deliveries[0].time, r.deliveries[1].time);
    EXPECT_LT(r.deliveries[1].time, r.deliveries[2].time);
    EXPECT_DOUBLE_EQ(r.deliveries[0].blocked, 0.0);
    EXPECT_GT(r.deliveries[1].blocked, 0.0);
  }
  expect_engines_agree(schedule, geom, NetworkParams{3, 8, false});
}

TEST(EngineEquivalence, EarlierAttemptBeatsLaterAtSharedLink) {
  // Two headers reach a shared link; the one that attempted earlier wins,
  // the other's blocked time covers exactly the wait — on both engines.
  const Geometry geom(8, 8);
  const Geometry& g = geom;
  std::vector<Injection> schedule;
  schedule.push_back({0.0, g.id(Coord{0, 2}), g.id(Coord{6, 2}), 1});
  schedule.push_back({2.0, g.id(Coord{2, 0}), g.id(Coord{2, 6}), 2});
  expect_engines_agree(schedule, geom, NetworkParams{3, 8, false});
}

// ------------------------------------------------------- verify lock-step

TEST(VerifyMode, LockStepRunsCleanUnderChurn) {
  const Geometry geom(8, 8);
  const auto schedule = uniform_churn(geom, 400, 300, 0x5EED);
  // run_schedule asserts nothing about verify internals; reaching the end
  // without a logic_error IS the test — every per-packet delivery and every
  // per-timestamp channel/FIFO state was cross-checked on the way.
  const RunResult r =
      run_schedule(schedule, geom, NetworkParams{3, 8, false, NetEngine::kVerify});
  EXPECT_EQ(r.deliveries.size(), schedule.size());
  EXPECT_GT(r.runs_batched, 0u);
}

// ------------------------------------------------------- analytic band

TEST(AnalyticMode, ContentionFreeMatchesBaseLatencyExactly) {
  const Geometry geom(16, 22);
  Simulator sim;
  WormholeNetwork net(sim, geom, NetworkParams{3, 8, false, NetEngine::kAnalytic});
  std::vector<Delivery> out;
  net.set_delivery_sink(
      [](void* c, const Delivery& d) {
        static_cast<std::vector<Delivery>*>(c)->push_back(d);
      },
      &out);
  const Geometry& g = geom;
  net.inject(g.id(Coord{2, 3}), g.id(Coord{9, 10}), 1);
  sim.run();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].hops, 14);
  EXPECT_DOUBLE_EQ(out[0].latency, net.base_latency(14));
  EXPECT_DOUBLE_EQ(out[0].blocked, 0.0);
  EXPECT_EQ(net.stats().analytic_packets, 1u);
}

TEST(AnalyticMode, ChurnLatencyWithinToleranceBand) {
  // The analytic mode replaces simulated contention with an M/M/1-style
  // utilization term per path channel. It is tolerance-banded, never
  // byte-compared: under moderate uniform churn its mean latency must land
  // within a factor of 3 of the simulated (batched) mean, and at least the
  // contention-free mean. The injections start past t=0 because the
  // utilization estimate (busy cycles / elapsed time) is deliberately crude
  // in the cold-start window. The band is documented in README.md — widen
  // it there first if the model legitimately changes.
  const Geometry geom(8, 8);
  auto schedule = uniform_churn(geom, 400, 2000, 0xA11);
  for (Injection& in : schedule) in.t += 500.0;

  const auto mean_latency = [&](NetEngine engine) {
    const RunResult r =
        run_schedule(schedule, geom, NetworkParams{3, 8, false, engine});
    double sum = 0;
    for (const Record& d : r.deliveries) sum += d.latency;
    return sum / static_cast<double>(r.deliveries.size());
  };
  const double simulated = mean_latency(NetEngine::kBatched);
  const double analytic = mean_latency(NetEngine::kAnalytic);

  // Contention-free lower bound: every analytic latency >= base latency.
  Simulator sim;
  WormholeNetwork probe(sim, geom, NetworkParams{3, 8, false});
  double base_sum = 0;
  for (const Injection& in : schedule)
    base_sum += probe.base_latency(probe.channels().hop_count(in.src, in.dst));
  const double base_mean = base_sum / static_cast<double>(schedule.size());

  EXPECT_GE(analytic, base_mean);
  EXPECT_GE(analytic, simulated / 3.0);
  EXPECT_LE(analytic, simulated * 3.0);
}

// ------------------------------------------------- integer-cycle helper

TEST(CycleArithmetic, BaseLatencyIsExactIntegerAtExtremes) {
  const Geometry geom(8, 8);
  Simulator sim;
  {
    WormholeNetwork net(sim, geom, NetworkParams{0, 1, false});
    // st=0, P_len=1: (h+1)*1 + 1 — the degenerate minimum everywhere.
    EXPECT_EQ(net.base_latency_cycles(0), 2);
    EXPECT_EQ(net.base_latency_cycles(14), 16);
    EXPECT_DOUBLE_EQ(net.base_latency(14), 16.0);
    EXPECT_EQ(net.channel_hold_cycles(), 2);
  }
  {
    // Large st and P_len: the product stays in int64, no double rounding.
    WormholeNetwork net(sim, geom, NetworkParams{1'000'000, 1'000'000, false});
    EXPECT_EQ(net.base_latency_cycles(1000), 1001LL * 1'000'001LL + 1'000'000LL);
    EXPECT_EQ(net.channel_hold_cycles(),
              1'000'000LL * 1'000'001LL + 1);
  }
}

TEST(CycleArithmetic, DegenerateParamsDeliverExactly) {
  // st=0 and P_len=1 end-to-end: every grant, slide and drain lands on an
  // exact integer cycle; the delivered latency must hit the closed form.
  const Geometry geom(8, 8);
  const Geometry& g = geom;
  std::vector<Injection> schedule;
  schedule.push_back({0.0, g.id(Coord{0, 0}), g.id(Coord{7, 7}), 1});
  for (const auto engine : {NetEngine::kStepped, NetEngine::kBatched}) {
    const RunResult r =
        run_schedule(schedule, geom, NetworkParams{0, 1, false, engine});
    ASSERT_EQ(r.deliveries.size(), 1u);
    EXPECT_EQ(r.deliveries[0].hops, 14);
    EXPECT_DOUBLE_EQ(r.deliveries[0].latency, 16.0);
    EXPECT_DOUBLE_EQ(r.deliveries[0].time, 16.0);
  }
  expect_engines_agree(schedule, geom, NetworkParams{0, 1, false});
}

// ------------------------------------------------------- engine registry

TEST(EngineRegistry, ParseAndNameRoundTrip) {
  using procsim::network::net_engine_name;
  using procsim::network::parse_net_engine;
  for (const auto engine : {NetEngine::kStepped, NetEngine::kBatched,
                            NetEngine::kVerify, NetEngine::kAnalytic}) {
    EXPECT_EQ(parse_net_engine(net_engine_name(engine)), engine);
  }
  EXPECT_THROW((void)parse_net_engine("flooded"), std::invalid_argument);
}

TEST(EngineRegistry, BatchedRunsAreCounted) {
  const Geometry geom(8, 8);
  const auto schedule = uniform_churn(geom, 50, 200, 0x11);
  const RunResult r =
      run_schedule(schedule, geom, NetworkParams{3, 8, false, NetEngine::kBatched});
  EXPECT_GT(r.runs_batched, 0u);
  const RunResult s =
      run_schedule(schedule, geom, NetworkParams{3, 8, false, NetEngine::kStepped});
  EXPECT_EQ(s.runs_batched, 0u);
}

}  // namespace
