#include <gtest/gtest.h>

#include <vector>

#include "des/distributions.hpp"
#include "des/event_queue.hpp"
#include "des/rng.hpp"
#include "des/simulator.hpp"
#include "stats/welford.hpp"

namespace {

using procsim::des::EventQueue;
using procsim::des::Simulator;
using procsim::des::Xoshiro256SS;

TEST(EventQueue, OrdersByTime) {
  EventQueue q;
  std::vector<int> fired;
  q.push(3.0, [&] { fired.push_back(3); });
  q.push(1.0, [&] { fired.push_back(1); });
  q.push(2.0, [&] { fired.push_back(2); });
  while (!q.empty()) q.pop().action();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesFireInScheduleOrder) {
  EventQueue q;
  std::vector<int> fired;
  for (int i = 0; i < 10; ++i) q.push(5.0, [&fired, i] { fired.push_back(i); });
  while (!q.empty()) q.pop().action();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(fired[static_cast<std::size_t>(i)], i);
}

TEST(Simulator, ClockAdvancesToEventTime) {
  Simulator sim;
  double seen = -1;
  sim.schedule_at(7.5, [&] { seen = sim.now(); });
  sim.run();
  EXPECT_DOUBLE_EQ(seen, 7.5);
  EXPECT_DOUBLE_EQ(sim.now(), 7.5);
}

TEST(Simulator, ScheduleInIsRelative) {
  Simulator sim;
  std::vector<double> times;
  sim.schedule_at(2.0, [&] {
    times.push_back(sim.now());
    sim.schedule_in(3.0, [&] { times.push_back(sim.now()); });
  });
  sim.run();
  ASSERT_EQ(times.size(), 2u);
  EXPECT_DOUBLE_EQ(times[1], 5.0);
}

TEST(Simulator, SchedulingIntoThePastThrows) {
  Simulator sim;
  sim.schedule_at(10.0, [&] {
    EXPECT_THROW(sim.schedule_at(5.0, [] {}), std::invalid_argument);
  });
  sim.run();
}

TEST(Simulator, StopHaltsExecution) {
  Simulator sim;
  int fired = 0;
  for (int i = 1; i <= 100; ++i)
    sim.schedule_at(i, [&] {
      ++fired;
      if (fired == 10) sim.stop();
    });
  sim.run();
  EXPECT_EQ(fired, 10);
  EXPECT_EQ(sim.queue().size(), 90u);
}

TEST(Simulator, RunUntilRespectsHorizon) {
  Simulator sim;
  int fired = 0;
  for (int i = 1; i <= 10; ++i) sim.schedule_at(i, [&] { ++fired; });
  sim.run_until(5.0);
  EXPECT_EQ(fired, 5);
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
  sim.run();
  EXPECT_EQ(fired, 10);
}

TEST(Simulator, ResetClearsEverything) {
  Simulator sim;
  sim.schedule_at(1.0, [] {});
  sim.run();
  sim.reset();
  EXPECT_DOUBLE_EQ(sim.now(), 0.0);
  EXPECT_TRUE(sim.queue().empty());
}

TEST(Simulator, BatchEndRunsOncePerTimestamp) {
  // Three events at t=1 each defer work; the deferred actions run after the
  // whole t=1 batch, before the t=2 event.
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 3; ++i)
    sim.schedule_at(1.0, [&sim, &order, i] {
      order.push_back(i);
      sim.at_batch_end([&order, i] { order.push_back(10 + i); });
    });
  sim.schedule_at(2.0, [&order] { order.push_back(99); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 10, 11, 12, 99}));
}

TEST(Simulator, BatchEndActionKeepsBatchOpenWhenSchedulingAtNow) {
  // A deferred action schedules a same-time event, which defers again: the
  // batch reopens and the second deferral still runs before time advances.
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(1.0, [&] {
    order.push_back(0);
    sim.at_batch_end([&] {
      order.push_back(1);
      sim.schedule_at(1.0, [&] {
        order.push_back(2);
        sim.at_batch_end([&] { order.push_back(3); });
      });
    });
  });
  sim.schedule_at(2.0, [&order] { order.push_back(99); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 99}));
}

TEST(Simulator, BatchEndDroppedOnStop) {
  Simulator sim;
  bool deferred_ran = false;
  sim.schedule_at(1.0, [&] {
    sim.at_batch_end([&] { deferred_ran = true; });
    sim.stop();
  });
  sim.run();
  EXPECT_FALSE(deferred_ran);
  // reset() forgets the dropped action: it must not leak into the next run.
  sim.reset();
  sim.schedule_at(1.0, [] {});
  sim.run();
  EXPECT_FALSE(deferred_ran);
}

TEST(Simulator, MaxEventsGuard) {
  Simulator sim;
  // A self-rescheduling event would run forever without the guard.
  std::function<void()> tick = [&] { sim.schedule_in(1.0, tick); };
  sim.schedule_at(0.0, tick);
  const auto fired = sim.run(1000);
  EXPECT_EQ(fired, 1000u);
}

TEST(Rng, DeterministicForSeed) {
  Xoshiro256SS a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Xoshiro256SS a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a() == b()) ++same;
  EXPECT_LT(same, 3);
}

TEST(Rng, JumpDecorrelatesStreams) {
  Xoshiro256SS a(7);
  Xoshiro256SS child = a.split();
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a() == child()) ++same;
  EXPECT_LT(same, 3);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Xoshiro256SS r(99);
  for (int i = 0; i < 10000; ++i) {
    const double x = r.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Distributions, ExponentialMeanConverges) {
  Xoshiro256SS r(5);
  procsim::stats::Welford w;
  for (int i = 0; i < 200000; ++i) w.add(procsim::des::sample_exponential(r, 42.0));
  EXPECT_NEAR(w.mean(), 42.0, 0.5);
}

TEST(Distributions, ExponentialRejectsBadMean) {
  Xoshiro256SS r(5);
  EXPECT_THROW((void)procsim::des::sample_exponential(r, 0.0), std::invalid_argument);
  EXPECT_THROW((void)procsim::des::sample_exponential(r, -1.0), std::invalid_argument);
}

TEST(Distributions, UniformIntCoversRangeUniformly) {
  Xoshiro256SS r(11);
  std::array<int, 6> counts{};
  for (int i = 0; i < 60000; ++i)
    ++counts[static_cast<std::size_t>(procsim::des::sample_uniform_int(r, 0, 5))];
  for (const int c : counts) EXPECT_NEAR(c, 10000, 500);
}

TEST(Distributions, UniformIntBoundsInclusive) {
  Xoshiro256SS r(13);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = procsim::des::sample_uniform_int(r, 3, 5);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 5);
    saw_lo |= v == 3;
    saw_hi |= v == 5;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Distributions, ExponentialCountAtLeastMin) {
  Xoshiro256SS r(17);
  procsim::stats::Welford w;
  for (int i = 0; i < 100000; ++i) {
    const auto n = procsim::des::sample_exponential_count(r, 5.0);
    EXPECT_GE(n, 1);
    w.add(static_cast<double>(n));
  }
  // Rounding + floor-at-1 nudges the mean slightly above 5.
  EXPECT_NEAR(w.mean(), 5.0, 0.5);
}

TEST(Distributions, NormalMoments) {
  Xoshiro256SS r(23);
  procsim::stats::Welford w;
  for (int i = 0; i < 200000; ++i) w.add(procsim::des::sample_normal(r));
  EXPECT_NEAR(w.mean(), 0.0, 0.02);
  EXPECT_NEAR(w.stddev(), 1.0, 0.02);
}

TEST(Distributions, LognormalMeanMatchesFormula) {
  Xoshiro256SS r(29);
  procsim::stats::Welford w;
  const double mu = 1.0, sigma = 0.5;
  for (int i = 0; i < 200000; ++i) w.add(procsim::des::sample_lognormal(r, mu, sigma));
  EXPECT_NEAR(w.mean(), std::exp(mu + sigma * sigma / 2), 0.05);
}

TEST(Distributions, DiscreteRespectsWeights) {
  Xoshiro256SS r(31);
  const std::vector<double> weights{1.0, 3.0, 6.0};
  std::array<int, 3> counts{};
  for (int i = 0; i < 100000; ++i)
    ++counts[procsim::des::sample_discrete(r, weights)];
  EXPECT_NEAR(counts[0], 10000, 600);
  EXPECT_NEAR(counts[1], 30000, 900);
  EXPECT_NEAR(counts[2], 60000, 900);
}

TEST(Distributions, DiscreteRejectsDegenerate) {
  Xoshiro256SS r(37);
  const std::vector<double> empty;
  EXPECT_THROW((void)procsim::des::sample_discrete(r, empty), std::invalid_argument);
  const std::vector<double> zeros{0.0, 0.0};
  EXPECT_THROW((void)procsim::des::sample_discrete(r, zeros), std::invalid_argument);
  const std::vector<double> negative{1.0, -0.5};
  EXPECT_THROW((void)procsim::des::sample_discrete(r, negative), std::invalid_argument);
}

}  // namespace
