#include <gtest/gtest.h>

#include <optional>

#include "des/distributions.hpp"
#include "des/rng.hpp"
#include "mesh/free_submesh_scan.hpp"
#include "mesh/mesh_state.hpp"

namespace {

using procsim::mesh::Coord;
using procsim::mesh::FreeSubmeshScan;
using procsim::mesh::Geometry;
using procsim::mesh::MeshState;
using procsim::mesh::SubMesh;

/// Brute-force reference: is the rectangle free, node by node?
bool ref_free(const MeshState& m, const SubMesh& s) { return m.all_free(s); }

TEST(Scan, EmptyMeshFirstFitAtOrigin) {
  MeshState m(Geometry(8, 6));
  const FreeSubmeshScan scan(m);
  const auto s = scan.first_fit(3, 2);
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(*s, SubMesh::from_base(Coord{0, 0}, 3, 2));
}

TEST(Scan, OversizedRequestFails) {
  MeshState m(Geometry(8, 6));
  const FreeSubmeshScan scan(m);
  EXPECT_FALSE(scan.first_fit(9, 1).has_value());
  EXPECT_FALSE(scan.first_fit(1, 7).has_value());
  EXPECT_THROW((void)scan.first_fit(0, 1), std::invalid_argument);
}

TEST(Scan, FirstFitSkipsBusyRegions) {
  MeshState m(Geometry(8, 6));
  m.allocate(SubMesh{0, 0, 7, 0});  // whole first row busy
  const FreeSubmeshScan scan(m);
  const auto s = scan.first_fit(8, 1);
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->y1, 1);
}

TEST(Scan, RotatableTriesBothOrientations) {
  MeshState m(Geometry(8, 4));
  const FreeSubmeshScan scan(m);
  // 2×6 does not fit upright in a length-4 mesh, but 6×2 does.
  EXPECT_FALSE(scan.first_fit(2, 6).has_value());
  const auto s = scan.first_fit_rotatable(2, 6);
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->width(), 6);
  EXPECT_EQ(s->length(), 2);
}

TEST(Scan, BusyInCountsExactly) {
  MeshState m(Geometry(5, 5));
  m.allocate(SubMesh{1, 1, 2, 2});  // 4 nodes
  const FreeSubmeshScan scan(m);
  EXPECT_EQ(scan.busy_in(SubMesh{0, 0, 4, 4}), 4);
  EXPECT_EQ(scan.busy_in(SubMesh{0, 0, 1, 1}), 1);
  EXPECT_EQ(scan.busy_in(SubMesh{3, 3, 4, 4}), 0);
  EXPECT_THROW((void)scan.busy_in(SubMesh{0, 0, 5, 5}), std::invalid_argument);
}

TEST(Scan, BestFitPrefersTightCorners) {
  MeshState m(Geometry(6, 6));
  // Busy L-shape leaves a snug 2×2 pocket at the origin corner.
  m.allocate(SubMesh{2, 0, 5, 1});
  m.allocate(SubMesh{0, 2, 1, 5});
  const FreeSubmeshScan scan(m);
  const auto s = scan.best_fit(2, 2);
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(*s, SubMesh::from_base(Coord{0, 0}, 2, 2));
}

TEST(Scan, LargestFreeFindsWholeEmptyMesh) {
  MeshState m(Geometry(7, 5));
  const FreeSubmeshScan scan(m);
  const auto s = scan.largest_free(100, 100);
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->area(), 35);
}

TEST(Scan, LargestFreeRespectsSideCaps) {
  MeshState m(Geometry(7, 5));
  const FreeSubmeshScan scan(m);
  const auto s = scan.largest_free(3, 2);
  ASSERT_TRUE(s.has_value());
  EXPECT_LE(s->width(), 3);
  EXPECT_LE(s->length(), 2);
  EXPECT_EQ(s->area(), 6);
}

TEST(Scan, LargestFreeRespectsAreaBudget) {
  MeshState m(Geometry(7, 5));
  const FreeSubmeshScan scan(m);
  const auto s = scan.largest_free(7, 5, 11);
  ASSERT_TRUE(s.has_value());
  EXPECT_LE(s->area(), 11);
  // The best area <= 11 within a free 7×5 is 10 (5×2 or 2×5 or 10×1...).
  EXPECT_GE(s->area(), 10);
}

TEST(Scan, LargestFreeNulloptWhenFull) {
  MeshState m(Geometry(3, 3));
  m.allocate(SubMesh{0, 0, 2, 2});
  const FreeSubmeshScan scan(m);
  EXPECT_FALSE(scan.largest_free(3, 3).has_value());
}

TEST(Scan, LargestFreeFindsSingleHole) {
  MeshState m(Geometry(4, 4));
  m.allocate(SubMesh{0, 0, 3, 3});
  m.release(m.geometry().id(Coord{2, 1}));
  const FreeSubmeshScan scan(m);
  const auto s = scan.largest_free(4, 4);
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(*s, (SubMesh{2, 1, 2, 1}));
}

/// Property: against random occupancy, scan results agree with brute force.
class ScanProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ScanProperty, AgreesWithBruteForce) {
  procsim::des::Xoshiro256SS rng(GetParam());
  const Geometry g(9, 7);
  MeshState m(g);
  for (std::int32_t n = 0; n < g.nodes(); ++n)
    if (procsim::des::sample_bernoulli(rng, 0.4)) m.allocate(n);
  const FreeSubmeshScan scan(m);

  for (std::int32_t a = 1; a <= g.width(); ++a) {
    for (std::int32_t b = 1; b <= g.length(); ++b) {
      // first_fit agrees with a row-major brute-force search.
      std::optional<SubMesh> ref;
      for (std::int32_t y = 0; y + b <= g.length() && !ref; ++y)
        for (std::int32_t x = 0; x + a <= g.width() && !ref; ++x) {
          const SubMesh cand = SubMesh::from_base(Coord{x, y}, a, b);
          if (ref_free(m, cand)) ref = cand;
        }
      EXPECT_EQ(scan.first_fit(a, b), ref) << "a=" << a << " b=" << b;
    }
  }

  // largest_free returns a genuinely free rectangle of maximal area.
  const auto best = scan.largest_free(g.width(), g.length());
  std::int64_t ref_best = 0;
  for (std::int32_t a = 1; a <= g.width(); ++a)
    for (std::int32_t b = 1; b <= g.length(); ++b)
      for (std::int32_t y = 0; y + b <= g.length(); ++y)
        for (std::int32_t x = 0; x + a <= g.width(); ++x) {
          const SubMesh cand = SubMesh::from_base(Coord{x, y}, a, b);
          if (ref_free(m, cand)) ref_best = std::max<std::int64_t>(ref_best, cand.area());
        }
  if (ref_best == 0) {
    EXPECT_FALSE(best.has_value());
  } else {
    ASSERT_TRUE(best.has_value());
    EXPECT_TRUE(ref_free(m, *best));
    EXPECT_EQ(best->area(), ref_best);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomOccupancies, ScanProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
