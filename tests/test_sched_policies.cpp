// The transactional scheduling policies: lookahead windows, EASY-style
// backfilling with a head reservation, and the regression guarantees of the
// interface refactor — FCFS/SSD behave event-for-event like the legacy
// single-head path, and the allocatability probe is exact for every shipped
// allocator (lookahead:1 is indistinguishable from blocking FCFS).

#include <gtest/gtest.h>

#include <optional>
#include <set>
#include <string>
#include <vector>

#include "alloc/gabl.hpp"
#include "core/experiment.hpp"
#include "core/system_sim.hpp"
#include "des/rng.hpp"
#include "sched/backfill.hpp"
#include "sched/lookahead.hpp"
#include "sched/ordered_scheduler.hpp"
#include "sched/registry.hpp"
#include "workload/stochastic.hpp"

namespace {

using procsim::sched::AllocProbe;
using procsim::sched::BackfillScheduler;
using procsim::sched::LookaheadScheduler;
using procsim::sched::OrderedScheduler;
using procsim::sched::Policy;
using procsim::sched::QueuedJob;
using procsim::sched::Scheduler;
using procsim::sched::SchedSnapshot;

QueuedJob job(std::uint64_t id, double demand, std::int64_t area, std::uint64_t seq) {
  QueuedJob q;
  q.job_id = id;
  q.demand = demand;
  q.area = area;
  q.processors = static_cast<std::int32_t>(area);  // square jobs: need == area
  q.seq = seq;
  q.arrival = static_cast<double>(seq);
  return q;
}

// --------------------------------------------------------------- lookahead

TEST(Lookahead, NameEncodesWindow) {
  EXPECT_EQ(LookaheadScheduler(3).name(), "lookahead:3");
  EXPECT_EQ(LookaheadScheduler(3).window(), 3u);
}

TEST(Lookahead, KeepsFcfsQueueOrderRegardlessOfEnqueueOrder) {
  LookaheadScheduler s(2);
  s.enqueue(job(1, 1, 1, 5));
  s.enqueue(job(2, 1, 1, 1));  // out-of-order seq: sorted insert handles it
  s.enqueue(job(3, 1, 1, 3));
  EXPECT_EQ(s.job_at(0).job_id, 2u);
  EXPECT_EQ(s.job_at(1).job_id, 3u);
  EXPECT_EQ(s.job_at(2).job_id, 1u);
}

TEST(Lookahead, FirstFittingPositionInWindowWins) {
  LookaheadScheduler s(3);
  for (std::uint64_t i = 0; i < 4; ++i) s.enqueue(job(i, 1, 10 + static_cast<std::int64_t>(i), i));
  // Head (area 10) does not fit; positions 1 and 2 do.
  const AllocProbe probe = [](const QueuedJob& q) { return q.area >= 11; };
  const auto pos = s.select(probe, SchedSnapshot{});
  ASSERT_TRUE(pos.has_value());
  EXPECT_EQ(*pos, 1u);
}

TEST(Lookahead, FittingHeadIsAlwaysPreferred) {
  LookaheadScheduler s(4);
  for (std::uint64_t i = 0; i < 4; ++i) s.enqueue(job(i, 1, 1, i));
  const AllocProbe any = [](const QueuedJob&) { return true; };
  const auto pos = s.select(any, SchedSnapshot{});
  ASSERT_TRUE(pos.has_value());
  EXPECT_EQ(*pos, 0u);
}

TEST(Lookahead, JobsBeyondWindowAreInvisible) {
  LookaheadScheduler s(2);
  for (std::uint64_t i = 0; i < 4; ++i) s.enqueue(job(i, 1, static_cast<std::int64_t>(i), i));
  // Only the job at position 3 fits — but the window ends at position 1.
  const AllocProbe probe = [](const QueuedJob& q) { return q.area == 3; };
  EXPECT_FALSE(s.select(probe, SchedSnapshot{}).has_value());
  LookaheadScheduler wide(4);
  for (std::uint64_t i = 0; i < 4; ++i) wide.enqueue(job(i, 1, static_cast<std::int64_t>(i), i));
  const auto pos = wide.select(probe, SchedSnapshot{});
  ASSERT_TRUE(pos.has_value());
  EXPECT_EQ(*pos, 3u);
}

// ---------------------------------------------------------------- backfill

TEST(Backfill, FittingHeadNeedsNoReservation) {
  BackfillScheduler s;
  s.enqueue(job(0, 10, 4, 0));
  s.enqueue(job(1, 1, 1, 1));
  const AllocProbe any = [](const QueuedJob&) { return true; };
  const auto pos = s.select(any, SchedSnapshot{0.0, 100});
  ASSERT_TRUE(pos.has_value());
  EXPECT_EQ(*pos, 0u);
}

// The canonical EASY scenario: 4 processors free now, a 16-processor job
// running until t=100 (estimate), the 16-processor head blocked. Shadow time
// = 100, extra = (4 + 16) - 16 = 4 backfill processors.
class BackfillReservation : public ::testing::Test {
 protected:
  void SetUp() override {
    sched_.on_start(job(99, 100, 16, 0), 0.0, 16);  // running: finish est. 100
    sched_.enqueue(job(0, 50, 16, 1));              // blocked head
  }
  BackfillScheduler sched_;
  const SchedSnapshot snap_{0.0, 4};
  // Probes pass for anything the 4 free processors could hold.
  const AllocProbe fits_now_ = [](const QueuedJob& q) { return q.area <= 4; };
};

TEST_F(BackfillReservation, ShortJobBackfillsWhenItEndsBeforeShadowTime) {
  sched_.enqueue(job(1, 50, 4, 2));  // ends at 50 <= shadow 100
  const auto pos = sched_.select(fits_now_, snap_);
  ASSERT_TRUE(pos.has_value());
  EXPECT_EQ(*pos, 1u);
}

TEST_F(BackfillReservation, LongJobBackfillsOnlyWithinTheExtraProcessors) {
  sched_.enqueue(job(1, 500, 4, 2));  // runs past shadow but extra = 4 covers it
  const auto pos = sched_.select(fits_now_, snap_);
  ASSERT_TRUE(pos.has_value());
  EXPECT_EQ(*pos, 1u);
}

TEST_F(BackfillReservation, JobThatWouldDelayTheHeadIsRefused) {
  // Needs 8 > extra 4 processors and runs past the shadow time: starting it
  // would leave the head short at t=100. The probe says it fits *now* —
  // the reservation is what refuses it.
  sched_.enqueue(job(1, 500, 8, 2));
  const AllocProbe generous = [](const QueuedJob& q) { return q.area <= 8; };
  EXPECT_FALSE(sched_.select(generous, snap_).has_value());
}

TEST_F(BackfillReservation, RefusedJobBackfillsOnceTheEstimateAllows) {
  // The same 8-processor job, but its demand now ends before the shadow time.
  sched_.enqueue(job(1, 100, 8, 2));
  const AllocProbe generous = [](const QueuedJob& q) { return q.area <= 8; };
  const auto pos = sched_.select(generous, snap_);
  ASSERT_TRUE(pos.has_value());
  EXPECT_EQ(*pos, 1u);
}

TEST_F(BackfillReservation, CompletionDissolvesTheReservation) {
  sched_.enqueue(job(1, 500, 8, 2));
  const AllocProbe generous = [](const QueuedJob& q) { return q.area <= 8; };
  ASSERT_FALSE(sched_.select(generous, snap_).has_value());
  // Once the running job is gone no estimate can ever seat the 16-processor
  // head from 4 free processors: with nothing to reserve against, plain
  // first-fit backfill applies.
  sched_.on_complete(99, 60.0);
  const auto pos = sched_.select(generous, SchedSnapshot{60.0, 4});
  ASSERT_TRUE(pos.has_value());
  EXPECT_EQ(*pos, 1u);
}

TEST(Backfill, EarlierFittingCandidateWinsInsideTheQueue) {
  BackfillScheduler s;
  s.on_start(job(99, 100, 16, 0), 0.0, 16);
  s.enqueue(job(0, 50, 16, 1));  // blocked head
  s.enqueue(job(1, 20, 4, 2));   // both candidates fit and end before shadow
  s.enqueue(job(2, 20, 4, 3));
  const AllocProbe fits = [](const QueuedJob& q) { return q.area <= 4; };
  const auto pos = s.select(fits, SchedSnapshot{0.0, 4});
  ASSERT_TRUE(pos.has_value());
  EXPECT_EQ(*pos, 1u);  // FCFS inside the backfill scan
}

TEST(Backfill, ClearForgetsTheRunningSet) {
  BackfillScheduler s;
  s.on_start(job(99, 100, 16, 0), 0.0, 16);
  s.clear();
  s.enqueue(job(0, 50, 16, 1));
  s.enqueue(job(1, 500, 8, 2));
  // No running jobs: the head is unreachable by estimates, so the fitting
  // candidate backfills immediately.
  const AllocProbe generous = [](const QueuedJob& q) { return q.area <= 8; };
  const auto pos = s.select(generous, SchedSnapshot{0.0, 4});
  ASSERT_TRUE(pos.has_value());
  EXPECT_EQ(*pos, 1u);
}

// ----------------------------------------------------- legacy equivalence

/// The pre-refactor OrderedScheduler, frozen: an ordered std::set whose
/// select() nominates the head unconditionally — the legacy single-head
/// blocking path expressed through the transactional interface. The
/// regression tests below assert the production scheduler drives SystemSim
/// to bit-identical results.
class LegacySingleHead final : public Scheduler {
 public:
  explicit LegacySingleHead(Policy policy) : policy_(policy), queue_(Less{policy}) {}

  void enqueue(const QueuedJob& j) override { queue_.insert(j); }
  [[nodiscard]] std::size_t size() const override { return queue_.size(); }
  [[nodiscard]] QueuedJob job_at(std::size_t pos) const override {
    return *std::next(queue_.begin(), static_cast<std::ptrdiff_t>(pos));
  }
  [[nodiscard]] std::optional<std::size_t> select(const AllocProbe&,
                                                  const SchedSnapshot&) override {
    if (queue_.empty()) return std::nullopt;
    return 0;
  }
  QueuedJob take(std::size_t pos) override {
    const auto it = std::next(queue_.begin(), static_cast<std::ptrdiff_t>(pos));
    QueuedJob j = *it;
    queue_.erase(it);
    return j;
  }
  [[nodiscard]] std::string name() const override { return "legacy"; }
  void clear() override { queue_.clear(); }

 private:
  struct Less {
    Policy policy;
    bool operator()(const QueuedJob& a, const QueuedJob& b) const {
      if (policy == Policy::kSsd && a.demand != b.demand) return a.demand < b.demand;
      return a.seq < b.seq;
    }
  };
  Policy policy_;
  std::set<QueuedJob, Less> queue_;
};

std::vector<procsim::workload::Job> stochastic_jobs(const procsim::mesh::Geometry& geom,
                                                    std::size_t count,
                                                    std::uint64_t seed) {
  procsim::des::Xoshiro256SS rng(seed);
  procsim::workload::StochasticParams params;
  params.load = 0.08;  // high enough that the queue actually backs up
  return procsim::workload::generate_stochastic(params, geom, count, rng);
}

void expect_bitwise_equal(const procsim::core::RunMetrics& a,
                          const procsim::core::RunMetrics& b) {
  EXPECT_EQ(a.events, b.events);  // event-for-event: same DES schedule length
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.packets, b.packets);
  EXPECT_EQ(a.turnaround.mean(), b.turnaround.mean());
  EXPECT_EQ(a.service.mean(), b.service.mean());
  EXPECT_EQ(a.utilization, b.utilization);
  EXPECT_EQ(a.mean_queue_length, b.mean_queue_length);
  EXPECT_EQ(a.makespan, b.makespan);
}

TEST(LegacyRegression, FcfsAndSsdMatchTheSingleHeadPathEventForEvent) {
  const procsim::mesh::Geometry geom(8, 8);
  for (const Policy policy : {Policy::kFcfs, Policy::kSsd}) {
    for (const std::uint64_t seed : {1ull, 7ull, 42ull}) {
      const auto jobs = stochastic_jobs(geom, 120, seed);
      procsim::core::SystemConfig cfg;
      cfg.geom = geom;
      cfg.target_completions = 100;

      procsim::alloc::GablAllocator a1(geom);
      OrderedScheduler s1(policy);
      const auto m1 = procsim::core::SystemSim(cfg, a1, s1).run(jobs);

      procsim::alloc::GablAllocator a2(geom);
      LegacySingleHead s2(policy);
      const auto m2 = procsim::core::SystemSim(cfg, a2, s2).run(jobs);

      SCOPED_TRACE("policy=" + std::string(procsim::sched::to_string(policy)) +
                   " seed=" + std::to_string(seed));
      expect_bitwise_equal(m1, m2);
    }
  }
}

// can_allocate is exact for every shipped strategy, so lookahead:1 — which
// starts the head iff the *probe* passes — must be indistinguishable from
// blocking FCFS, whose failed real attempt ends the pass. Any divergence
// means a probe lied.
TEST(ProbeExactness, LookaheadOneEqualsBlockingFcfsForEveryAllocator) {
  for (const char* alloc_name :
       {"GABL", "Paging(0)", "MBS", "FirstFit", "BestFit", "Random"}) {
    procsim::core::ExperimentConfig cfg;
    cfg.sys.geom = procsim::mesh::Geometry(8, 8);
    cfg.sys.target_completions = 150;
    cfg.workload.kind = procsim::core::WorkloadKind::kStochastic;
    cfg.workload.job_count = 180;
    cfg.workload.stochastic.load = 0.08;
    cfg.seed = 11;
    const auto spec = procsim::core::parse_allocator_spec(alloc_name);
    ASSERT_TRUE(spec.has_value()) << alloc_name;
    cfg.allocator = *spec;

    cfg.scheduler = Policy::kFcfs;
    const auto fcfs = procsim::core::run_once(cfg);
    cfg.scheduler = procsim::sched::SchedSpec{std::string("lookahead:1")};
    const auto look1 = procsim::core::run_once(cfg);

    SCOPED_TRACE(alloc_name);
    expect_bitwise_equal(fcfs, look1);
  }
}

// End-to-end sanity: every registered policy drives a full simulation and
// completes the workload (the transaction must not deadlock a policy whose
// select() can return nullopt while jobs still wait — completions re-run it).
TEST(Policies, EveryRegisteredPolicyCompletesAWorkload) {
  for (const char* name :
       {"FCFS", "SSD", "SJF", "LJF", "lookahead:4", "backfill"}) {
    procsim::core::ExperimentConfig cfg;
    cfg.sys.geom = procsim::mesh::Geometry(8, 8);
    cfg.sys.target_completions = 80;
    cfg.workload.kind = procsim::core::WorkloadKind::kStochastic;
    cfg.workload.job_count = 100;
    cfg.workload.stochastic.load = 0.08;
    cfg.seed = 3;
    const auto spec = procsim::sched::parse_sched_spec(name);
    ASSERT_TRUE(spec.has_value()) << name;
    cfg.scheduler = *spec;
    const auto m = procsim::core::run_once(cfg);
    SCOPED_TRACE(name);
    EXPECT_EQ(m.completed, 80u);
    EXPECT_GT(m.makespan, 0.0);
  }
}

// A small job may overtake a blocked head end to end: under saturation-like
// pressure backfill must strictly beat blocking FCFS on mean turnaround for
// a stream with a few huge jobs in front of many small ones, while every
// job still completes (no starvation).
TEST(Policies, BackfillImprovesTurnaroundUnderBlockedHeads) {
  procsim::core::ExperimentConfig cfg;
  cfg.sys.geom = procsim::mesh::Geometry(8, 8);
  cfg.sys.target_completions = 150;
  cfg.allocator.kind = procsim::core::AllocatorKind::kFirstFit;  // fragments
  cfg.workload.kind = procsim::core::WorkloadKind::kStochastic;
  cfg.workload.job_count = 180;
  cfg.workload.stochastic.load = 0.1;
  cfg.seed = 19;

  cfg.scheduler = Policy::kFcfs;
  const auto fcfs = procsim::core::run_once(cfg);
  cfg.scheduler = procsim::sched::SchedSpec{std::string("backfill")};
  const auto backfill = procsim::core::run_once(cfg);

  EXPECT_EQ(fcfs.completed, backfill.completed);
  EXPECT_LT(backfill.turnaround.mean(), fcfs.turnaround.mean());
}

}  // namespace
