// The transactional scheduling policies: lookahead windows, EASY-style
// backfilling with a head reservation, and the regression guarantees of the
// interface refactor — FCFS/SSD behave event-for-event like the legacy
// single-head path, and the allocatability probe is exact for every shipped
// allocator (lookahead:1 is indistinguishable from blocking FCFS).

#include <gtest/gtest.h>

#include <limits>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "des/distributions.hpp"

#include "alloc/gabl.hpp"
#include "core/experiment.hpp"
#include "core/system_sim.hpp"
#include "des/rng.hpp"
#include "sched/backfill.hpp"
#include "sched/lookahead.hpp"
#include "sched/ordered_scheduler.hpp"
#include "sched/registry.hpp"
#include "workload/stochastic.hpp"

namespace {

using procsim::sched::AllocProbe;
using procsim::sched::BackfillScheduler;
using procsim::sched::LookaheadScheduler;
using procsim::sched::OrderedScheduler;
using procsim::sched::Policy;
using procsim::sched::QueuedJob;
using procsim::sched::Scheduler;
using procsim::sched::SchedSnapshot;

QueuedJob job(std::uint64_t id, double demand, std::int64_t area, std::uint64_t seq) {
  QueuedJob q;
  q.job_id = id;
  q.demand = demand;
  q.area = area;
  q.processors = static_cast<std::int32_t>(area);  // square jobs: need == area
  q.seq = seq;
  q.arrival = static_cast<double>(seq);
  return q;
}

// --------------------------------------------------------------- lookahead

TEST(Lookahead, NameEncodesWindow) {
  EXPECT_EQ(LookaheadScheduler(3).name(), "lookahead:3");
  EXPECT_EQ(LookaheadScheduler(3).window(), 3u);
}

TEST(Lookahead, KeepsFcfsQueueOrderRegardlessOfEnqueueOrder) {
  LookaheadScheduler s(2);
  s.enqueue(job(1, 1, 1, 5));
  s.enqueue(job(2, 1, 1, 1));  // out-of-order seq: sorted insert handles it
  s.enqueue(job(3, 1, 1, 3));
  EXPECT_EQ(s.job_at(0).job_id, 2u);
  EXPECT_EQ(s.job_at(1).job_id, 3u);
  EXPECT_EQ(s.job_at(2).job_id, 1u);
}

TEST(Lookahead, FirstFittingPositionInWindowWins) {
  LookaheadScheduler s(3);
  for (std::uint64_t i = 0; i < 4; ++i) s.enqueue(job(i, 1, 10 + static_cast<std::int64_t>(i), i));
  // Head (area 10) does not fit; positions 1 and 2 do.
  const AllocProbe probe = [](const QueuedJob& q) { return q.area >= 11; };
  const auto pos = s.select(probe, SchedSnapshot{});
  ASSERT_TRUE(pos.has_value());
  EXPECT_EQ(*pos, 1u);
}

TEST(Lookahead, FittingHeadIsAlwaysPreferred) {
  LookaheadScheduler s(4);
  for (std::uint64_t i = 0; i < 4; ++i) s.enqueue(job(i, 1, 1, i));
  const AllocProbe any = [](const QueuedJob&) { return true; };
  const auto pos = s.select(any, SchedSnapshot{});
  ASSERT_TRUE(pos.has_value());
  EXPECT_EQ(*pos, 0u);
}

TEST(Lookahead, JobsBeyondWindowAreInvisible) {
  LookaheadScheduler s(2);
  for (std::uint64_t i = 0; i < 4; ++i) s.enqueue(job(i, 1, static_cast<std::int64_t>(i), i));
  // Only the job at position 3 fits — but the window ends at position 1.
  const AllocProbe probe = [](const QueuedJob& q) { return q.area == 3; };
  EXPECT_FALSE(s.select(probe, SchedSnapshot{}).has_value());
  LookaheadScheduler wide(4);
  for (std::uint64_t i = 0; i < 4; ++i) wide.enqueue(job(i, 1, static_cast<std::int64_t>(i), i));
  const auto pos = wide.select(probe, SchedSnapshot{});
  ASSERT_TRUE(pos.has_value());
  EXPECT_EQ(*pos, 3u);
}

// ---------------------------------------------------------------- backfill

TEST(Backfill, FittingHeadNeedsNoReservation) {
  BackfillScheduler s;
  s.enqueue(job(0, 10, 4, 0));
  s.enqueue(job(1, 1, 1, 1));
  const AllocProbe any = [](const QueuedJob&) { return true; };
  const auto pos = s.select(any, SchedSnapshot{0.0, 100});
  ASSERT_TRUE(pos.has_value());
  EXPECT_EQ(*pos, 0u);
}

// The canonical EASY scenario: 4 processors free now, a 16-processor job
// running until t=100 (estimate), the 16-processor head blocked. Shadow time
// = 100, extra = (4 + 16) - 16 = 4 backfill processors.
class BackfillReservation : public ::testing::Test {
 protected:
  void SetUp() override {
    sched_.on_start(job(99, 100, 16, 0), 0.0, 16, {});  // running: finish est. 100
    sched_.enqueue(job(0, 50, 16, 1));              // blocked head
  }
  BackfillScheduler sched_;
  const SchedSnapshot snap_{0.0, 4};
  // Probes pass for anything the 4 free processors could hold.
  const AllocProbe fits_now_ = [](const QueuedJob& q) { return q.area <= 4; };
};

TEST_F(BackfillReservation, ShortJobBackfillsWhenItEndsBeforeShadowTime) {
  sched_.enqueue(job(1, 50, 4, 2));  // ends at 50 <= shadow 100
  const auto pos = sched_.select(fits_now_, snap_);
  ASSERT_TRUE(pos.has_value());
  EXPECT_EQ(*pos, 1u);
}

TEST_F(BackfillReservation, LongJobBackfillsOnlyWithinTheExtraProcessors) {
  sched_.enqueue(job(1, 500, 4, 2));  // runs past shadow but extra = 4 covers it
  const auto pos = sched_.select(fits_now_, snap_);
  ASSERT_TRUE(pos.has_value());
  EXPECT_EQ(*pos, 1u);
}

TEST_F(BackfillReservation, JobThatWouldDelayTheHeadIsRefused) {
  // Needs 8 > extra 4 processors and runs past the shadow time: starting it
  // would leave the head short at t=100. The probe says it fits *now* —
  // the reservation is what refuses it.
  sched_.enqueue(job(1, 500, 8, 2));
  const AllocProbe generous = [](const QueuedJob& q) { return q.area <= 8; };
  EXPECT_FALSE(sched_.select(generous, snap_).has_value());
}

TEST_F(BackfillReservation, RefusedJobBackfillsOnceTheEstimateAllows) {
  // The same 8-processor job, but its demand now ends before the shadow time.
  sched_.enqueue(job(1, 100, 8, 2));
  const AllocProbe generous = [](const QueuedJob& q) { return q.area <= 8; };
  const auto pos = sched_.select(generous, snap_);
  ASSERT_TRUE(pos.has_value());
  EXPECT_EQ(*pos, 1u);
}

TEST_F(BackfillReservation, CompletionDissolvesTheReservation) {
  sched_.enqueue(job(1, 500, 8, 2));
  const AllocProbe generous = [](const QueuedJob& q) { return q.area <= 8; };
  ASSERT_FALSE(sched_.select(generous, snap_).has_value());
  // Once the running job is gone no estimate can ever seat the 16-processor
  // head from 4 free processors: with nothing to reserve against, plain
  // first-fit backfill applies.
  sched_.on_complete(99, 60.0);
  const auto pos = sched_.select(generous, SchedSnapshot{60.0, 4});
  ASSERT_TRUE(pos.has_value());
  EXPECT_EQ(*pos, 1u);
}

TEST(Backfill, EarlierFittingCandidateWinsInsideTheQueue) {
  BackfillScheduler s;
  s.on_start(job(99, 100, 16, 0), 0.0, 16, {});
  s.enqueue(job(0, 50, 16, 1));  // blocked head
  s.enqueue(job(1, 20, 4, 2));   // both candidates fit and end before shadow
  s.enqueue(job(2, 20, 4, 3));
  const AllocProbe fits = [](const QueuedJob& q) { return q.area <= 4; };
  const auto pos = s.select(fits, SchedSnapshot{0.0, 4});
  ASSERT_TRUE(pos.has_value());
  EXPECT_EQ(*pos, 1u);  // FCFS inside the backfill scan
}

TEST(Backfill, ClearForgetsTheRunningSet) {
  BackfillScheduler s;
  s.on_start(job(99, 100, 16, 0), 0.0, 16, {});
  s.clear();
  s.enqueue(job(0, 50, 16, 1));
  s.enqueue(job(1, 500, 8, 2));
  // No running jobs: the head is unreachable by estimates, so the fitting
  // candidate backfills immediately.
  const AllocProbe generous = [](const QueuedJob& q) { return q.area <= 8; };
  const auto pos = s.select(generous, SchedSnapshot{0.0, 4});
  ASSERT_TRUE(pos.has_value());
  EXPECT_EQ(*pos, 1u);
}

// ------------------------------------------------- conservative backfill

using procsim::sched::BackfillOptions;

BackfillScheduler conservative() {
  return BackfillScheduler{BackfillOptions{.conservative = true, .shape_aware = false}};
}

TEST(Conservative, NameEncodesTheVariant) {
  EXPECT_EQ(conservative().name(), "backfill:conservative");
  EXPECT_EQ(BackfillScheduler{}.name(), "backfill");
  EXPECT_EQ((BackfillScheduler{BackfillOptions{false, true}}.name()), "backfill;shape");
  EXPECT_EQ((BackfillScheduler{BackfillOptions{true, true}}.name()),
            "backfill:conservative;shape");
}

TEST(Conservative, FittingHeadStartsImmediately) {
  auto s = conservative();
  s.enqueue(job(0, 10, 4, 0));
  const AllocProbe any = [](const QueuedJob&) { return true; };
  const auto pos = s.select(any, SchedSnapshot{0.0, 100});
  ASSERT_TRUE(pos.has_value());
  EXPECT_EQ(*pos, 0u);
}

TEST(Conservative, ShortJobBackfillsAroundABlockedHead) {
  // 4 free, 16 running until t=100, head needs 16: a 4-processor job that
  // ends before the head's reservation backfills under both variants.
  auto s = conservative();
  s.on_start(job(99, 100, 16, 0), 0.0, 16, {});
  s.enqueue(job(0, 50, 16, 1));
  s.enqueue(job(1, 50, 4, 2));
  const AllocProbe fits = [](const QueuedJob& q) { return q.area <= 4; };
  const auto pos = s.select(fits, SchedSnapshot{0.0, 4});
  ASSERT_TRUE(pos.has_value());
  EXPECT_EQ(*pos, 1u);
}

TEST(Conservative, RefusesBackfillThatDelaysANonHeadReservation) {
  // Capacity 20: A holds 8 until t=5, B holds 8 until t=100, 4 free.
  // Queue: H needs 16 (reserved at t=100), M needs 12 (reserved [5,8) — the
  // only early 12-processor window), C needs 4 for 6 time units.
  // C fits now and ends long before H's shadow, so EASY starts it — but it
  // would hold 4 of the processors M's reservation counts on at t=5, so
  // conservative must refuse it.
  BackfillScheduler easy;
  auto cons = conservative();
  for (BackfillScheduler* s : {&easy, &cons}) {
    s->on_start(job(90, 5, 8, 0), 0.0, 8, {});    // A: releases 8 at t=5
    s->on_start(job(91, 100, 8, 1), 0.0, 8, {});  // B: releases 8 at t=100
    s->enqueue(job(0, 10, 16, 2));                // H
    s->enqueue(job(1, 3, 12, 3));                 // M
    s->enqueue(job(2, 6, 4, 4));                  // C
  }
  const AllocProbe fits_free = [](const QueuedJob& q) { return q.area <= 4; };
  const SchedSnapshot snap{0.0, 4};
  const auto easy_pos = easy.select(fits_free, snap);
  ASSERT_TRUE(easy_pos.has_value());
  EXPECT_EQ(*easy_pos, 2u);  // EASY only protects the head
  EXPECT_FALSE(cons.select(fits_free, snap).has_value());
}

TEST(Conservative, AllowsTheSameBackfillOnceItCannotDelayAnyone) {
  // Same scenario, but C now ends by t=5: nobody's reservation is touched.
  auto cons = conservative();
  cons.on_start(job(90, 5, 8, 0), 0.0, 8, {});
  cons.on_start(job(91, 100, 8, 1), 0.0, 8, {});
  cons.enqueue(job(0, 10, 16, 2));
  cons.enqueue(job(1, 3, 12, 3));
  cons.enqueue(job(2, 5, 4, 4));  // demand 5: finishes as A releases
  const AllocProbe fits_free = [](const QueuedJob& q) { return q.area <= 4; };
  const auto pos = cons.select(fits_free, SchedSnapshot{0.0, 4});
  ASSERT_TRUE(pos.has_value());
  EXPECT_EQ(*pos, 2u);
}

/// Count-based mini-machine: drives a scheduler exactly like SystemSim's
/// transactional pass, but service times equal the demand estimates — the
/// regime in which conservative backfilling provably delays nobody.
struct MiniRun {
  std::map<std::uint64_t, double> start;  ///< job id -> start instant
  double makespan{0};
};

MiniRun drive(Scheduler& sched, const std::vector<QueuedJob>& jobs,
              std::int64_t capacity) {
  struct Running {
    double finish;
    std::uint64_t id;
    std::int64_t procs;
    bool operator<(const Running& o) const {
      return finish != o.finish ? finish < o.finish : id < o.id;
    }
  };
  sched.clear();
  std::int64_t free = capacity;
  std::multiset<Running> running;
  MiniRun out;
  const AllocProbe probe = [&free](const QueuedJob& q) {
    return q.processors <= free;
  };
  std::size_t next_arrival = 0;
  double now = 0;
  const auto pass = [&] {
    for (;;) {
      const auto pos = sched.select(probe, SchedSnapshot{now, free});
      if (!pos) break;
      const QueuedJob c = sched.job_at(*pos);
      if (c.processors > free) break;  // mirrors a failed real allocation
      const QueuedJob taken = sched.take(*pos);
      sched.on_start(taken, now, taken.processors, {});
      free -= taken.processors;
      running.insert({now + taken.demand, taken.job_id, taken.processors});
      out.start[taken.job_id] = now;
    }
  };
  while (next_arrival < jobs.size() || !running.empty()) {
    const double t_arr = next_arrival < jobs.size()
                             ? jobs[next_arrival].arrival
                             : std::numeric_limits<double>::infinity();
    const double t_fin = !running.empty()
                             ? running.begin()->finish
                             : std::numeric_limits<double>::infinity();
    if (t_fin <= t_arr) {
      now = t_fin;
      const Running r = *running.begin();
      running.erase(running.begin());
      free += r.procs;
      sched.on_complete(r.id, now);
    } else {
      now = t_arr;
      sched.enqueue(jobs[next_arrival++]);
    }
    pass();
  }
  out.makespan = now;
  return out;
}

// With exact estimates, conservative backfilling never starts any job later
// than plain FCFS would — every job's reservation is at or before its FCFS
// start, and backfills only use capacity no reservation counts on.
TEST(Conservative, NeverDelaysAnyJobVersusFcfsUnderExactEstimates) {
  for (const std::uint64_t seed : {1ull, 5ull, 23ull, 77ull}) {
    procsim::des::Xoshiro256SS rng(seed);
    std::vector<QueuedJob> jobs;
    double t = 0;
    for (std::uint64_t i = 0; i < 80; ++i) {
      t += procsim::des::sample_exponential(rng, 3.0);
      QueuedJob q;
      q.job_id = i;
      q.seq = i;
      q.arrival = t;
      q.processors = static_cast<std::int32_t>(
          procsim::des::sample_uniform_int(rng, 1, 16));
      q.area = q.processors;
      q.demand = procsim::des::sample_exponential(rng, 20.0);
      jobs.push_back(q);
    }
    OrderedScheduler fcfs(Policy::kFcfs);
    const MiniRun base = drive(fcfs, jobs, 16);
    auto cons = conservative();
    const MiniRun backfilled = drive(cons, jobs, 16);
    ASSERT_EQ(base.start.size(), jobs.size());
    ASSERT_EQ(backfilled.start.size(), jobs.size());
    for (const auto& [id, t0] : base.start) {
      EXPECT_LE(backfilled.start.at(id), t0 + 1e-9)
          << "job " << id << " delayed (seed " << seed << ")";
    }
    EXPECT_LE(backfilled.makespan, base.makespan + 1e-9);
  }
}

// ------------------------------------------------- shape-aware backfill

TEST(ShapeAware, EasyShadowAdvancesUntilTheShapeFits) {
  // Two running jobs release at t=10 and t=20. Count-wise the head is
  // seated at t=10 (extra = 4, so the long 4-processor candidate may
  // backfill); shape-wise the head only fits once the *second* job's blocks
  // are back, pushing the shadow to t=20 with extra = 0 — the same
  // candidate must now be refused.
  using procsim::mesh::SubMesh;
  const SubMesh blk1{0, 0, 3, 3};  // 16 nodes
  const SubMesh blk2{4, 0, 7, 3};  // 16 nodes
  for (const bool shape_fits_early : {true, false}) {
    BackfillScheduler s{BackfillOptions{.conservative = false, .shape_aware = true}};
    s.on_start(job(90, 10, 16, 0), 0.0, 16, {blk1});
    s.on_start(job(91, 20, 16, 1), 0.0, 16, {blk2});
    s.enqueue(job(0, 50, 28, 2));   // head: needs 28 of 36
    s.enqueue(job(1, 500, 4, 3));   // long small candidate
    const AllocProbe fits_free = [](const QueuedJob& q) { return q.area <= 4; };
    const procsim::sched::ShapeProbe shape =
        [&](const QueuedJob& q, const std::vector<SubMesh>& released) {
          if (q.job_id != 0) return true;
          // The head "fits" after one release only in the early scenario.
          return shape_fits_early ? !released.empty() : released.size() >= 2;
        };
    SchedSnapshot snap{0.0, 4};
    snap.shape_fit = &shape;
    const auto pos = s.select(fits_free, snap);
    if (shape_fits_early) {
      // Shadow t=10, extra (4+16)-28... count still short; walk continues
      // until avail >= need, i.e. t=20 where shape already fit — extra 8.
      ASSERT_TRUE(pos.has_value());
      EXPECT_EQ(*pos, 1u);
    } else {
      // Shape only fits at t=20 where extra = (4+32)-28 = 8 >= 4: allowed
      // too. Distinguish via a candidate bigger than the late slack below.
      ASSERT_TRUE(pos.has_value());
    }
  }
}

TEST(ShapeAware, LateShadowShrinksTheBackfillWindow) {
  using procsim::mesh::SubMesh;
  const SubMesh blk1{0, 0, 3, 3};
  const SubMesh blk2{4, 0, 7, 3};
  // Head needs 20; count-wise seated at t=10 (avail 4+16=20, extra 0 — but
  // a candidate ending before t=10 is allowed). Shape-wise seated only at
  // t=20 — the same candidate (demand 15) now runs past no-longer-t=10
  // shadow... still ends before t=20? demand 15 < 20: allowed either way.
  // Use demand 15 vs 25 to bracket the two shadows.
  for (const double cand_demand : {8.0, 15.0, 25.0}) {
    BackfillScheduler count_only{};  // EASY, count model
    BackfillScheduler shaped{BackfillOptions{.conservative = false, .shape_aware = true}};
    for (BackfillScheduler* s : {&count_only, &shaped}) {
      s->on_start(job(90, 10, 16, 0), 0.0, 16, {blk1});
      s->on_start(job(91, 20, 16, 1), 0.0, 16, {blk2});
      s->enqueue(job(0, 50, 20, 2));            // head
      s->enqueue(job(1, cand_demand, 4, 3));    // candidate, fits in the 4 free
    }
    const AllocProbe fits_free = [](const QueuedJob& q) { return q.area <= 4; };
    const procsim::sched::ShapeProbe shape =
        [](const QueuedJob& q, const std::vector<SubMesh>& released) {
          if (q.job_id != 0) return true;
          return released.size() >= 2;  // head's sub-mesh needs both blocks back
        };
    const SchedSnapshot count_snap{0.0, 4};
    SchedSnapshot shape_snap{0.0, 4};
    shape_snap.shape_fit = &shape;
    const auto count_pos = count_only.select(fits_free, count_snap);
    const auto shape_pos = shaped.select(fits_free, shape_snap);
    if (cand_demand <= 10.0) {
      // Ends before both shadows: allowed by both.
      ASSERT_TRUE(count_pos.has_value());
      ASSERT_TRUE(shape_pos.has_value());
    } else if (cand_demand <= 20.0) {
      // Ends after the count shadow (t=10, extra 0 -> refused) but before
      // the shape shadow (t=20, extra 20-20+16... avail 36-20=16 >= 4 ->
      // allowed): the shape-aware variant finds the backfill the count
      // model wrongly refuses.
      EXPECT_FALSE(count_pos.has_value());
      ASSERT_TRUE(shape_pos.has_value());
      EXPECT_EQ(*shape_pos, 1u);
    } else {
      // Runs past both shadows; needs 4 <= shape extra 16 -> still allowed
      // by shape (slack survives), refused by count (extra 0).
      EXPECT_FALSE(count_pos.has_value());
      ASSERT_TRUE(shape_pos.has_value());
    }
  }
}

TEST(ShapeAware, ConservativeRefinesEvenWhenTheCountSaysFitsNow) {
  // The fragmentation trap: 16 free *nodes* cover the head's 12-processor
  // count, so the count profile puts its reservation at t = 0 — but no
  // rectangle exists until R1's blocks come back at t = 50. A wrong
  // reservation at [0, 10) starves the 8-processor candidate out of the 4
  // remaining free processors; the shape-refined reservation at [50, 60)
  // leaves room everywhere on C's interval, so C backfills now.
  using procsim::mesh::SubMesh;
  BackfillScheduler s{BackfillOptions{.conservative = true, .shape_aware = true}};
  s.on_start(job(90, 50, 8, 0), 0.0, 8, {SubMesh{0, 0, 3, 1}});  // R1
  s.enqueue(job(0, 10, 12, 1));   // H: count fits in the 16 free, shape does not
  s.enqueue(job(1, 100, 8, 2));   // C: fits now, runs long
  const AllocProbe probe = [](const QueuedJob& q) { return q.job_id == 1; };
  const procsim::sched::ShapeProbe shape =
      [](const QueuedJob& q, const std::vector<SubMesh>& released) {
        if (q.job_id != 0) return true;
        return !released.empty();  // H's rectangle needs R1's blocks back
      };
  SchedSnapshot snap{0.0, 16};
  snap.shape_fit = &shape;
  const auto pos = s.select(probe, snap);
  ASSERT_TRUE(pos.has_value());
  EXPECT_EQ(*pos, 1u);
}

// ----------------------------------------------------- legacy equivalence

/// The pre-refactor OrderedScheduler, frozen: an ordered std::set whose
/// select() nominates the head unconditionally — the legacy single-head
/// blocking path expressed through the transactional interface. The
/// regression tests below assert the production scheduler drives SystemSim
/// to bit-identical results.
class LegacySingleHead final : public Scheduler {
 public:
  explicit LegacySingleHead(Policy policy) : policy_(policy), queue_(Less{policy}) {}

  void enqueue(const QueuedJob& j) override { queue_.insert(j); }
  [[nodiscard]] std::size_t size() const override { return queue_.size(); }
  [[nodiscard]] QueuedJob job_at(std::size_t pos) const override {
    return *std::next(queue_.begin(), static_cast<std::ptrdiff_t>(pos));
  }
  [[nodiscard]] std::optional<std::size_t> select(const AllocProbe&,
                                                  const SchedSnapshot&) override {
    if (queue_.empty()) return std::nullopt;
    return 0;
  }
  QueuedJob take(std::size_t pos) override {
    const auto it = std::next(queue_.begin(), static_cast<std::ptrdiff_t>(pos));
    QueuedJob j = *it;
    queue_.erase(it);
    return j;
  }
  [[nodiscard]] std::string name() const override { return "legacy"; }
  void clear() override { queue_.clear(); }

 private:
  struct Less {
    Policy policy;
    bool operator()(const QueuedJob& a, const QueuedJob& b) const {
      if (policy == Policy::kSsd && a.demand != b.demand) return a.demand < b.demand;
      return a.seq < b.seq;
    }
  };
  Policy policy_;
  std::set<QueuedJob, Less> queue_;
};

std::vector<procsim::workload::Job> stochastic_jobs(const procsim::mesh::Geometry& geom,
                                                    std::size_t count,
                                                    std::uint64_t seed) {
  procsim::des::Xoshiro256SS rng(seed);
  procsim::workload::StochasticParams params;
  params.load = 0.08;  // high enough that the queue actually backs up
  return procsim::workload::generate_stochastic(params, geom, count, rng);
}

void expect_bitwise_equal(const procsim::core::RunMetrics& a,
                          const procsim::core::RunMetrics& b) {
  EXPECT_EQ(a.events, b.events);  // event-for-event: same DES schedule length
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.packets, b.packets);
  EXPECT_EQ(a.turnaround.mean(), b.turnaround.mean());
  EXPECT_EQ(a.service.mean(), b.service.mean());
  EXPECT_EQ(a.utilization, b.utilization);
  EXPECT_EQ(a.mean_queue_length, b.mean_queue_length);
  EXPECT_EQ(a.makespan, b.makespan);
}

TEST(LegacyRegression, FcfsAndSsdMatchTheSingleHeadPathEventForEvent) {
  const procsim::mesh::Geometry geom(8, 8);
  for (const Policy policy : {Policy::kFcfs, Policy::kSsd}) {
    for (const std::uint64_t seed : {1ull, 7ull, 42ull}) {
      const auto jobs = stochastic_jobs(geom, 120, seed);
      procsim::core::SystemConfig cfg;
      cfg.geom = geom;
      cfg.target_completions = 100;

      procsim::alloc::GablAllocator a1(geom);
      OrderedScheduler s1(policy);
      const auto m1 = procsim::core::SystemSim(cfg, a1, s1).run(jobs);

      procsim::alloc::GablAllocator a2(geom);
      LegacySingleHead s2(policy);
      const auto m2 = procsim::core::SystemSim(cfg, a2, s2).run(jobs);

      SCOPED_TRACE("policy=" + std::string(procsim::sched::to_string(policy)) +
                   " seed=" + std::to_string(seed));
      expect_bitwise_equal(m1, m2);
    }
  }
}

// can_allocate is exact for every shipped strategy, so lookahead:1 — which
// starts the head iff the *probe* passes — must be indistinguishable from
// blocking FCFS, whose failed real attempt ends the pass. Any divergence
// means a probe lied.
TEST(ProbeExactness, LookaheadOneEqualsBlockingFcfsForEveryAllocator) {
  for (const char* alloc_name :
       {"GABL", "Paging(0)", "MBS", "FirstFit", "BestFit", "Random"}) {
    procsim::core::ExperimentConfig cfg;
    cfg.sys.geom = procsim::mesh::Geometry(8, 8);
    cfg.sys.target_completions = 150;
    cfg.workload.kind = procsim::core::WorkloadKind::kStochastic;
    cfg.workload.job_count = 180;
    cfg.workload.stochastic.load = 0.08;
    cfg.seed = 11;
    const auto spec = procsim::core::parse_allocator_spec(alloc_name);
    ASSERT_TRUE(spec.has_value()) << alloc_name;
    cfg.allocator = *spec;

    cfg.scheduler = Policy::kFcfs;
    const auto fcfs = procsim::core::run_once(cfg);
    cfg.scheduler = procsim::sched::SchedSpec{std::string("lookahead:1")};
    const auto look1 = procsim::core::run_once(cfg);

    SCOPED_TRACE(alloc_name);
    expect_bitwise_equal(fcfs, look1);
  }
}

// End-to-end sanity: every registered policy drives a full simulation and
// completes the workload (the transaction must not deadlock a policy whose
// select() can return nullopt while jobs still wait — completions re-run it).
TEST(Policies, EveryRegisteredPolicyCompletesAWorkload) {
  for (const char* name :
       {"FCFS", "SSD", "SJF", "LJF", "lookahead:4", "backfill",
        "backfill:conservative", "backfill;shape", "backfill:conservative;shape"}) {
    procsim::core::ExperimentConfig cfg;
    cfg.sys.geom = procsim::mesh::Geometry(8, 8);
    cfg.sys.target_completions = 80;
    cfg.workload.kind = procsim::core::WorkloadKind::kStochastic;
    cfg.workload.job_count = 100;
    cfg.workload.stochastic.load = 0.08;
    cfg.seed = 3;
    const auto spec = procsim::sched::parse_sched_spec(name);
    ASSERT_TRUE(spec.has_value()) << name;
    cfg.scheduler = *spec;
    const auto m = procsim::core::run_once(cfg);
    SCOPED_TRACE(name);
    EXPECT_EQ(m.completed, 80u);
    EXPECT_GT(m.makespan, 0.0);
  }
}

// A small job may overtake a blocked head end to end: under saturation-like
// pressure backfill must strictly beat blocking FCFS on mean turnaround for
// a stream with a few huge jobs in front of many small ones, while every
// job still completes (no starvation).
TEST(Policies, BackfillImprovesTurnaroundUnderBlockedHeads) {
  procsim::core::ExperimentConfig cfg;
  cfg.sys.geom = procsim::mesh::Geometry(8, 8);
  cfg.sys.target_completions = 150;
  cfg.allocator = procsim::core::AllocatorSpec{"FirstFit"};  // fragments
  cfg.workload.kind = procsim::core::WorkloadKind::kStochastic;
  cfg.workload.job_count = 180;
  cfg.workload.stochastic.load = 0.1;
  cfg.seed = 19;

  cfg.scheduler = Policy::kFcfs;
  const auto fcfs = procsim::core::run_once(cfg);
  cfg.scheduler = procsim::sched::SchedSpec{std::string("backfill")};
  const auto backfill = procsim::core::run_once(cfg);

  EXPECT_EQ(fcfs.completed, backfill.completed);
  EXPECT_LT(backfill.turnaround.mean(), fcfs.turnaround.mean());
}

}  // namespace
