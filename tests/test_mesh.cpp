#include <gtest/gtest.h>

#include "mesh/coord.hpp"
#include "mesh/mesh_state.hpp"
#include "mesh/submesh.hpp"

namespace {

using procsim::mesh::Coord;
using procsim::mesh::Geometry;
using procsim::mesh::MeshState;
using procsim::mesh::NodeId;
using procsim::mesh::SubMesh;

TEST(Geometry, IdCoordRoundTrip) {
  const Geometry g(16, 22);
  EXPECT_EQ(g.nodes(), 352);
  for (std::int32_t y = 0; y < g.length(); ++y)
    for (std::int32_t x = 0; x < g.width(); ++x) {
      const auto id = g.id(Coord{x, y});
      EXPECT_EQ(g.coord(id), (Coord{x, y}));
    }
}

TEST(Geometry, ContainsBounds) {
  const Geometry g(4, 3);
  EXPECT_TRUE(g.contains(Coord{0, 0}));
  EXPECT_TRUE(g.contains(Coord{3, 2}));
  EXPECT_FALSE(g.contains(Coord{4, 0}));
  EXPECT_FALSE(g.contains(Coord{0, 3}));
  EXPECT_FALSE(g.contains(Coord{-1, 0}));
}

TEST(SubMesh, PaperExample) {
  // Definition 1's example: (0,0,2,1) is the 3×2 sub-mesh with base (0,0).
  const SubMesh s{0, 0, 2, 1};
  EXPECT_EQ(s.width(), 3);
  EXPECT_EQ(s.length(), 2);
  EXPECT_EQ(s.area(), 6);
  EXPECT_EQ(s.base(), (Coord{0, 0}));
  EXPECT_EQ(s.end(), (Coord{2, 1}));
}

TEST(SubMesh, FromBase) {
  const SubMesh s = SubMesh::from_base(Coord{3, 4}, 2, 5);
  EXPECT_EQ(s, (SubMesh{3, 4, 4, 8}));
  EXPECT_EQ(s.area(), 10);
}

TEST(SubMesh, ContainsCoordAndSubmesh) {
  const SubMesh s{1, 1, 4, 4};
  EXPECT_TRUE(s.contains(Coord{1, 1}));
  EXPECT_TRUE(s.contains(Coord{4, 4}));
  EXPECT_FALSE(s.contains(Coord{0, 1}));
  EXPECT_TRUE(s.contains(SubMesh{2, 2, 3, 3}));
  EXPECT_TRUE(s.contains(s));
  EXPECT_FALSE(s.contains(SubMesh{0, 0, 2, 2}));
}

TEST(SubMesh, OverlapIsSymmetricAndExact) {
  const SubMesh a{0, 0, 2, 2};
  const SubMesh b{2, 2, 4, 4};  // shares the corner node (2,2)
  const SubMesh c{3, 0, 5, 1};
  EXPECT_TRUE(a.overlaps(b));
  EXPECT_TRUE(b.overlaps(a));
  EXPECT_FALSE(a.overlaps(c));
  EXPECT_FALSE(c.overlaps(a));
}

TEST(SubMesh, SuitableMatchesDefinition4) {
  const SubMesh s{0, 0, 3, 2};  // 4×3
  EXPECT_TRUE(s.suitable_for(4, 3));
  EXPECT_TRUE(s.suitable_for(2, 2));
  EXPECT_FALSE(s.suitable_for(5, 1));
  EXPECT_FALSE(s.suitable_for(1, 4));
}

TEST(MeshState, StartsAllFree) {
  MeshState m(Geometry(4, 4));
  EXPECT_EQ(m.free_count(), 16);
  EXPECT_EQ(m.busy_count(), 0);
  for (std::int32_t n = 0; n < 16; ++n) EXPECT_FALSE(m.is_busy(n));
}

TEST(MeshState, AllocateReleaseRoundTrip) {
  MeshState m(Geometry(4, 4));
  const SubMesh s{1, 1, 2, 2};
  m.allocate(s);
  EXPECT_EQ(m.free_count(), 12);
  EXPECT_TRUE(m.is_busy(Coord{1, 1}));
  EXPECT_TRUE(m.is_busy(Coord{2, 2}));
  EXPECT_FALSE(m.is_busy(Coord{0, 0}));
  m.release(s);
  EXPECT_EQ(m.free_count(), 16);
  EXPECT_FALSE(m.is_busy(Coord{1, 1}));
}

TEST(MeshState, DoubleAllocationThrows) {
  MeshState m(Geometry(4, 4));
  m.allocate(0);
  EXPECT_THROW(m.allocate(0), std::logic_error);
}

TEST(MeshState, ReleasingFreeNodeThrows) {
  MeshState m(Geometry(4, 4));
  EXPECT_THROW(m.release(0), std::logic_error);
}

TEST(MeshState, OutOfRangeThrows) {
  MeshState m(Geometry(4, 4));
  EXPECT_THROW(m.allocate(16), std::out_of_range);
  EXPECT_THROW(m.allocate(-1), std::out_of_range);
  EXPECT_THROW((void)m.is_busy(99), std::out_of_range);
}

TEST(MeshState, AllFreeChecksBoundsAndOccupancy) {
  MeshState m(Geometry(4, 4));
  EXPECT_TRUE(m.all_free(SubMesh{0, 0, 3, 3}));
  EXPECT_FALSE(m.all_free(SubMesh{0, 0, 4, 3}));  // outside the mesh
  m.allocate(m.geometry().id(Coord{2, 2}));
  EXPECT_FALSE(m.all_free(SubMesh{1, 1, 2, 2}));
  EXPECT_TRUE(m.all_free(SubMesh{0, 0, 1, 1}));
}

TEST(MeshState, PaperFigure1Scenario) {
  // Fig. 1 of the paper: a 4×4 mesh where a 2×2 contiguous request fails
  // although 4 processors are free. Free nodes per the figure: (0,3), (1,2),
  // (2,1), (3,0) — an anti-diagonal.
  MeshState m(Geometry(4, 4));
  for (std::int32_t y = 0; y < 4; ++y)
    for (std::int32_t x = 0; x < 4; ++x)
      if (x + y != 3) m.allocate(m.geometry().id(Coord{x, y}));
  EXPECT_EQ(m.free_count(), 4);
  // No 2×2 free sub-mesh exists...
  bool any = false;
  for (std::int32_t y = 0; y + 2 <= 4 && !any; ++y)
    for (std::int32_t x = 0; x + 2 <= 4 && !any; ++x)
      any = m.all_free(SubMesh::from_base(Coord{x, y}, 2, 2));
  EXPECT_FALSE(any);
  // ...yet a non-contiguous strategy can hand out the 4 free processors.
  EXPECT_EQ(m.free_nodes().size(), 4u);
}

TEST(MeshState, FreeNodesRowMajorOrder) {
  MeshState m(Geometry(3, 2));
  m.allocate(m.geometry().id(Coord{1, 0}));
  const auto free = m.free_nodes();
  ASSERT_EQ(free.size(), 5u);
  EXPECT_EQ(free[0], m.geometry().id(Coord{0, 0}));
  EXPECT_EQ(free[1], m.geometry().id(Coord{2, 0}));
  EXPECT_EQ(free[2], m.geometry().id(Coord{0, 1}));
}

TEST(MeshState, ClearRestoresPristine) {
  MeshState m(Geometry(4, 4));
  m.allocate(SubMesh{0, 0, 3, 3});
  m.clear();
  EXPECT_EQ(m.free_count(), 16);
}

TEST(MeshState, FreeNodesIntoRetainsCapacityAcrossCalls) {
  // Paging(0) calls free_nodes_into on every scheduling pass with one reused
  // buffer; at a 512×512 mesh (262,144 nodes) a per-call reallocation would
  // be a malloc/free of a megabyte per event. The contract: after a first
  // call sized the buffer, later calls never reallocate (clear() + reserve()
  // within existing capacity keep the same heap block).
  MeshState m(Geometry(512, 512));
  ASSERT_EQ(m.geometry().nodes(), 262144);
  std::vector<NodeId> buf;
  m.free_nodes_into(buf);
  ASSERT_EQ(buf.size(), 262144u);
  const std::size_t cap = buf.capacity();
  const NodeId* data = buf.data();
  // Churn occupancy between calls so the free list genuinely changes size.
  m.allocate(SubMesh{0, 0, 255, 255});
  m.free_nodes_into(buf);
  EXPECT_EQ(buf.size(), 262144u - 65536u);
  EXPECT_EQ(buf.capacity(), cap);
  EXPECT_EQ(buf.data(), data);
  m.release(SubMesh{0, 0, 255, 255});
  m.free_nodes_into(buf);
  EXPECT_EQ(buf.size(), 262144u);
  EXPECT_EQ(buf.capacity(), cap);
  EXPECT_EQ(buf.data(), data);
}

TEST(MeshState, SubMeshOpsMatchPerNodeLoops) {
  // The row-wise allocate/release/all_free must agree with the single-node
  // path on every span alignment (start/middle/end of a row, full rows).
  MeshState rowwise(Geometry(7, 5));
  MeshState pernode(Geometry(7, 5));
  const SubMesh spans[] = {{0, 0, 2, 1}, {3, 1, 6, 3}, {0, 4, 6, 4}, {5, 0, 5, 0}};
  for (const SubMesh& s : spans) {
    rowwise.allocate(s);
    for (std::int32_t y = s.y1; y <= s.y2; ++y)
      for (std::int32_t x = s.x1; x <= s.x2; ++x)
        pernode.allocate(pernode.geometry().id(Coord{x, y}));
    EXPECT_EQ(rowwise.free_count(), pernode.free_count());
    for (NodeId n = 0; n < rowwise.geometry().nodes(); ++n)
      ASSERT_EQ(rowwise.is_busy(n), pernode.is_busy(n)) << "node " << n;
  }
  EXPECT_FALSE(rowwise.all_free(SubMesh{0, 0, 0, 0}));
  EXPECT_TRUE(rowwise.all_free(SubMesh{3, 0, 4, 0}));
  EXPECT_THROW(rowwise.allocate(SubMesh{0, 0, 2, 1}), std::logic_error);
  EXPECT_THROW(rowwise.release(SubMesh{2, 0, 3, 0}), std::logic_error);
  EXPECT_THROW(rowwise.allocate(SubMesh{5, 3, 8, 4}), std::out_of_range);
  for (const SubMesh& s : spans) rowwise.release(s);
  EXPECT_EQ(rowwise.free_count(), 35);
}

}  // namespace
