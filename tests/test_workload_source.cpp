#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "des/rng.hpp"
#include "mesh/coord.hpp"
#include "stats/welford.hpp"
#include "util/thread_pool.hpp"
#include "workload/source.hpp"
#include "workload/source_registry.hpp"

namespace {

using procsim::des::substream_seed;
using procsim::des::Xoshiro256SS;
using procsim::mesh::Geometry;
using procsim::stats::Welford;
using procsim::workload::BurstyParams;
using procsim::workload::BurstySource;
using procsim::workload::generate_paragon_trace;
using procsim::workload::generate_stochastic;
using procsim::workload::Job;
using procsim::workload::make_source;
using procsim::workload::make_trace_jobs;
using procsim::workload::known_sources;
using procsim::workload::ParagonModelParams;
using procsim::workload::parse_source_spec;
using procsim::workload::SaturationParams;
using procsim::workload::SaturationSource;
using procsim::workload::Source;
using procsim::workload::SourceOverrides;
using procsim::workload::StochasticParams;
using procsim::workload::StochasticSource;
using procsim::workload::TraceReplayParams;
using procsim::workload::TraceSource;
using procsim::workload::VectorSource;

std::string fixture_path() {
  return std::string(PROCSIM_TEST_DATA_DIR) + "/mini.swf";
}

std::vector<Job> drain(Source& src, std::uint64_t seed, std::size_t cap = 1 << 20) {
  src.reset(seed);
  std::vector<Job> out;
  while (out.size() < cap) {
    const auto peeked = src.peek_arrival();
    auto job = src.next_job();
    if (!job) {
      EXPECT_FALSE(peeked.has_value());
      break;
    }
    EXPECT_TRUE(peeked.has_value());
    if (peeked) {
      EXPECT_DOUBLE_EQ(*peeked, job->arrival);
    }
    out.push_back(std::move(*job));
  }
  return out;
}

void expect_same_jobs(const std::vector<Job>& a, const std::vector<Job>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id);
    EXPECT_DOUBLE_EQ(a[i].arrival, b[i].arrival);
    EXPECT_EQ(a[i].width, b[i].width);
    EXPECT_EQ(a[i].length, b[i].length);
    EXPECT_EQ(a[i].processors, b[i].processors);
    EXPECT_EQ(a[i].message_plan, b[i].message_plan);
    EXPECT_DOUBLE_EQ(a[i].demand, b[i].demand);
    EXPECT_DOUBLE_EQ(a[i].trace_runtime, b[i].trace_runtime);
  }
}

// ---------------------------------------------------------------- registry

TEST(SourceRegistry, KnownSourcesRoundTripThroughName) {
  // Mirrors test_registry: every listed kind constructs, and the constructed
  // source's name() is itself an accepted spec that reconstructs.
  const Geometry g(16, 22);
  for (std::string spec : known_sources()) {
    if (spec == "swf:<path>") spec = "swf:" + fixture_path();
    const auto s = make_source(spec, g);
    ASSERT_NE(s, nullptr) << spec;
    EXPECT_EQ(s->name(), spec);
    const auto again = make_source(s->name(), g);
    EXPECT_EQ(again->name(), s->name());
  }
}

TEST(SourceRegistry, CanonicalSpellingNormalisesCaseAndKeyOrder) {
  const auto spec = parse_source_spec("Bursty;PHASE=16;b=4");
  ASSERT_TRUE(spec.has_value());
  EXPECT_EQ(spec->kind, "bursty");
  EXPECT_EQ(spec->canonical, "bursty;b=4;phase=16");
  const auto s = make_source("Bursty;PHASE=16;b=4", Geometry(8, 8));
  EXPECT_EQ(s->name(), "bursty;b=4;phase=16");
}

TEST(SourceRegistry, ParseRejectsMalformedSpecs) {
  EXPECT_FALSE(parse_source_spec("").has_value());
  EXPECT_FALSE(parse_source_spec("nosuch").has_value());
  EXPECT_FALSE(parse_source_spec("uniform:arg").has_value());  // arg is swf-only
  EXPECT_FALSE(parse_source_spec("swf").has_value());          // missing path
  EXPECT_FALSE(parse_source_spec("uniform;load").has_value()); // no '='
  EXPECT_FALSE(parse_source_spec("uniform;=3").has_value());   // empty key
  EXPECT_FALSE(parse_source_spec("uniform;load=").has_value());      // empty value
  EXPECT_FALSE(parse_source_spec("uniform;load=1;load=2").has_value());  // dup
  EXPECT_TRUE(parse_source_spec("SWF:some/path.swf").has_value());
}

TEST(SourceRegistry, MakeSourceFailsFastListingKnownKinds) {
  try {
    (void)make_source("nosuch", Geometry(8, 8));
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("saturation"), std::string::npos);
  }
  EXPECT_THROW((void)make_source("uniform;bogus=1", Geometry(8, 8)),
               std::invalid_argument);
  EXPECT_THROW((void)make_source("uniform;load=oops", Geometry(8, 8)),
               std::invalid_argument);
  EXPECT_THROW((void)make_source("uniform;load=-1", Geometry(8, 8)),
               std::invalid_argument);
  EXPECT_THROW((void)make_source("saturation;dist=weird", Geometry(8, 8)),
               std::invalid_argument);
  EXPECT_THROW((void)make_source("saturation;n=2.5", Geometry(8, 8)),
               std::invalid_argument);
  EXPECT_THROW((void)make_source("swf:/nonexistent/trace.swf", Geometry(8, 8)),
               std::runtime_error);
}

TEST(SourceRegistry, SpecKeysWinOverDriverOverrides) {
  const Geometry g(16, 22);
  SourceOverrides o;
  o.load = 0.5;
  o.count = 7;
  // Spec pins both: the overrides must not leak through.
  auto pinned = make_source("uniform;load=0.02;jobs=3", g, o);
  auto jobs = drain(*pinned, 1);
  EXPECT_EQ(jobs.size(), 3u);
  // jobs=3 at load 0.02: expected spacing ~50 time units, not ~2.
  EXPECT_GT(jobs.back().arrival / 3.0, 10.0);
  // No spec keys: overrides apply.
  auto driven = make_source("uniform", g, o);
  EXPECT_EQ(drain(*driven, 1).size(), 7u);
}

TEST(SourceRegistry, UnboundedSyntheticStreamsCannotBeMaterialised) {
  const Geometry g(8, 8);
  // jobs=0 pins an unbounded stream: fine to simulate, fatal to drain.
  EXPECT_FALSE(make_source("uniform;jobs=0", g)->bounded());
  EXPECT_FALSE(make_source("bursty;jobs=0", g)->bounded());
  EXPECT_TRUE(make_source("uniform", g)->bounded());
  EXPECT_TRUE(make_source("swf:" + fixture_path(), g)->bounded());

  procsim::core::WorkloadSpec spec;
  spec.source_spec = "uniform;jobs=0";
  EXPECT_THROW((void)procsim::core::build_jobs(spec, g, 8, 1), std::invalid_argument);
}

// ------------------------------------------------- stream/eager equivalence

TEST(StochasticSource, StreamsTheExactEagerVector) {
  const Geometry g(16, 22);
  StochasticParams p;
  p.load = 0.02;
  p.mean_messages = 5;
  Xoshiro256SS rng(99);
  const auto eager = generate_stochastic(p, g, 300, rng);

  StochasticSource src(p, g, 300, "uniform");
  expect_same_jobs(drain(src, 99), eager);
}

TEST(TraceSource, ParagonStreamsTheExactEagerVector) {
  const Geometry g(16, 22);
  ParagonModelParams model;
  model.jobs = 400;
  TraceReplayParams replay;
  replay.prefix = 250;

  // The eager path: one RNG seeds trace generation then job conversion.
  Xoshiro256SS rng(4242);
  const auto trace = generate_paragon_trace(model, rng);
  TraceReplayParams scaled = replay;
  scaled.arrival_factor = procsim::workload::arrival_factor_for_load(
      0.01, procsim::workload::compute_stats(trace).mean_interarrival);
  const auto eager = make_trace_jobs(trace, scaled, g, rng);

  TraceSource src(model, replay, 0.01, g, "real");
  expect_same_jobs(drain(src, 4242), eager);
}

TEST(BuildJobs, DrainsTheWorkloadSource) {
  // core::build_jobs is now a drain of core::make_workload_source; the two
  // must agree job for job.
  procsim::core::WorkloadSpec spec;
  spec.kind = procsim::core::WorkloadKind::kStochastic;
  spec.job_count = 120;
  const Geometry g(16, 22);
  const auto eager = procsim::core::build_jobs(spec, g, 8, 5);
  const auto source = procsim::core::make_workload_source(spec, g, 8);
  const auto streamed = drain(*source, 5);
  expect_same_jobs(streamed, eager);
}

TEST(SystemSim, SourceRunMatchesVectorRun) {
  procsim::core::ExperimentConfig cfg;
  cfg.sys.geom = Geometry(16, 22);
  cfg.sys.target_completions = 80;
  cfg.workload.job_count = 80;
  cfg.workload.stochastic.load = 0.02;
  cfg.seed = 21;

  const auto allocator =
      procsim::core::make_allocator(cfg.allocator, cfg.sys.geom, cfg.seed);
  const auto scheduler = procsim::core::make_scheduler(cfg.scheduler);
  auto sys = cfg.sys;
  sys.seed = cfg.seed ^ 0x5EEDF00DULL;

  const auto jobs =
      procsim::core::build_jobs(cfg.workload, cfg.sys.geom, cfg.sys.net.packet_len, cfg.seed);
  procsim::core::SystemSim vec_sim(sys, *allocator, *scheduler);
  const auto vec_metrics = vec_sim.run(jobs);

  const auto source = procsim::core::make_workload_source(
      cfg.workload, cfg.sys.geom, cfg.sys.net.packet_len);
  source->reset(cfg.seed);
  const auto allocator2 =
      procsim::core::make_allocator(cfg.allocator, cfg.sys.geom, cfg.seed);
  const auto scheduler2 = procsim::core::make_scheduler(cfg.scheduler);
  procsim::core::SystemSim src_sim(sys, *allocator2, *scheduler2);
  const auto src_metrics = src_sim.run(*source);

  EXPECT_DOUBLE_EQ(vec_metrics.turnaround.mean(), src_metrics.turnaround.mean());
  EXPECT_DOUBLE_EQ(vec_metrics.service.mean(), src_metrics.service.mean());
  EXPECT_DOUBLE_EQ(vec_metrics.utilization, src_metrics.utilization);
  EXPECT_DOUBLE_EQ(vec_metrics.packet_latency.mean(), src_metrics.packet_latency.mean());
  EXPECT_EQ(vec_metrics.events, src_metrics.events);
}

// --------------------------------------------------------------- SWF / swf:

TEST(SwfSource, FixtureStreamsEndToEnd) {
  const Geometry g(16, 22);
  const auto src = make_source("swf:" + fixture_path() + ";f=1", g);
  const auto jobs = drain(*src, 3);
  // 352-node partition (16x22): the 400-proc record is dropped; 6 survive.
  ASSERT_EQ(jobs.size(), 6u);
  EXPECT_DOUBLE_EQ(jobs[0].arrival, 0);
  EXPECT_DOUBLE_EQ(jobs[5].arrival, 800);
  EXPECT_EQ(jobs[1].processors, 32);   // req-procs (field 8)
  EXPECT_EQ(jobs[2].processors, 25);   // used-procs fallback (field 5)
  EXPECT_DOUBLE_EQ(jobs[3].trace_runtime, 500);  // req-time fallback
  for (const Job& j : jobs) EXPECT_GE(j.total_messages(), 0);
}

TEST(SwfSource, ResetIsReproducibleAndSubstreamsDiffer) {
  const Geometry g(16, 22);
  const auto src = make_source("swf:" + fixture_path(), g);
  const auto a = drain(*src, substream_seed(42, 0));
  const auto b = drain(*src, substream_seed(42, 0));
  expect_same_jobs(a, b);
  const auto c = drain(*src, substream_seed(42, 1));
  ASSERT_EQ(a.size(), c.size());  // trace fixed; only message plans re-drawn
  bool any_differ = false;
  for (std::size_t i = 0; i < a.size(); ++i)
    any_differ |= a[i].message_plan != c[i].message_plan;
  EXPECT_TRUE(any_differ);
}

// ---------------------------------------------------------------- swf cache

TEST(SwfCache, SharedLoaderParsesOnceAndSharesTheVector) {
  procsim::workload::clear_swf_cache();
  const auto a = procsim::workload::load_swf_file_shared(fixture_path(), 352);
  const auto s0 = procsim::workload::swf_cache_stats();
  EXPECT_EQ(s0.entries, 1u);
  EXPECT_EQ(s0.hits, 0u);
  const auto b = procsim::workload::load_swf_file_shared(fixture_path(), 352);
  EXPECT_EQ(a.get(), b.get());  // one parse, aliased — not re-read
  const auto s1 = procsim::workload::swf_cache_stats();
  EXPECT_EQ(s1.entries, 1u);
  EXPECT_EQ(s1.hits, 1u);
  // A different partition cap filters records differently: its own entry.
  const auto c = procsim::workload::load_swf_file_shared(fixture_path(), 30);
  EXPECT_NE(a.get(), c.get());
  EXPECT_LT(c->size(), a->size());
  EXPECT_EQ(procsim::workload::swf_cache_stats().entries, 2u);
}

TEST(SwfCache, SharedAndPerReplicationParsesProduceIdenticalJobStreams) {
  const Geometry geom(16, 22);
  const TraceReplayParams replay;
  // The pre-cache behaviour: a private parse per source construction.
  TraceSource fresh(procsim::workload::load_swf_file(fixture_path(), geom.nodes()),
                    replay, 0.01, geom, "swf:fresh");
  // The shared path every replication of a sweep cell now takes.
  TraceSource shared(
      procsim::workload::load_swf_file_shared(fixture_path(), geom.nodes()), replay,
      0.01, geom, "swf:shared");
  for (const std::uint64_t seed : {1ull, 9ull, 42ull})
    expect_same_jobs(drain(fresh, seed), drain(shared, seed));
}

TEST(SwfCache, RegistrySourcesHitTheCacheAcrossConstructions) {
  procsim::workload::clear_swf_cache();
  const Geometry g(16, 22);
  const std::string spec = "swf:" + fixture_path();
  const auto one = make_source(spec, g);
  const auto before = procsim::workload::swf_cache_stats();
  // A second cell/replication constructing the same spec must not re-parse.
  const auto two = make_source(spec, g);
  const auto after = procsim::workload::swf_cache_stats();
  EXPECT_EQ(after.entries, before.entries);
  EXPECT_EQ(after.hits, before.hits + 1);
  expect_same_jobs(drain(*one, 5), drain(*two, 5));
}

// --------------------------------------------------------------- saturation

TEST(SaturationSource, EverythingArrivesAtTimeZero) {
  SaturationParams p;
  p.count = 500;
  SaturationSource src(p, Geometry(16, 22), "saturation");
  const auto jobs = drain(src, 7);
  ASSERT_EQ(jobs.size(), 500u);
  for (const Job& j : jobs) {
    EXPECT_DOUBLE_EQ(j.arrival, 0);
    EXPECT_GE(j.width, 1);
    EXPECT_LE(j.width, 16);
    EXPECT_GE(j.length, 1);
    EXPECT_LE(j.length, 22);
  }
  expect_same_jobs(jobs, drain(src, 7));
}

// ------------------------------------------------------------------- bursty

TEST(BurstySource, HitsTheLongRunLoadButOverdisperses) {
  BurstyParams p;
  p.load = 0.02;
  p.burst_ratio = 8;
  p.phase_jobs = 32;
  p.count = 40000;
  BurstySource src(p, Geometry(16, 22), "bursty");
  const auto jobs = drain(src, 11);
  ASSERT_EQ(jobs.size(), 40000u);
  Welford inter;
  for (std::size_t i = 1; i < jobs.size(); ++i) {
    EXPECT_GE(jobs[i].arrival, jobs[i - 1].arrival);
    inter.add(jobs[i].arrival - jobs[i - 1].arrival);
  }
  // Long-run rate pinned to `load` by the harmonic-mean construction.
  EXPECT_NEAR(inter.mean(), 50.0, 4.0);
  // Burstier than Poisson: coefficient of variation well above 1.
  const double cv = inter.stddev() / inter.mean();
  EXPECT_GT(cv, 1.3);
}

TEST(BurstySource, RatioOneDegeneratesToPoissonRate) {
  BurstyParams p;
  p.load = 0.05;
  p.burst_ratio = 1;
  p.count = 20000;
  BurstySource src(p, Geometry(8, 8), "bursty");
  const auto jobs = drain(src, 13);
  Welford inter;
  for (std::size_t i = 1; i < jobs.size(); ++i)
    inter.add(jobs[i].arrival - jobs[i - 1].arrival);
  EXPECT_NEAR(inter.mean(), 20.0, 1.0);
  const double cv = inter.stddev() / inter.mean();
  EXPECT_NEAR(cv, 1.0, 0.1);
}

// ----------------------------------------------------------- vector source

TEST(VectorSource, RewindsWithoutReseeding) {
  Xoshiro256SS rng(3);
  StochasticParams p;
  const auto jobs = generate_stochastic(p, Geometry(8, 8), 20, rng);
  VectorSource src(jobs);
  expect_same_jobs(drain(src, 0), jobs);
  expect_same_jobs(drain(src, 77), jobs);  // seed ignored: jobs are frozen
}

// --------------------------------- replication determinism across threads

TEST(SourceWorkloads, ReplicatedRunsAreThreadCountInvariant) {
  // The ParallelReplicationRunner contract extended to registry sources:
  // replication k seeds its source with substream_seed(seed, k) whether the
  // replications run serially or on a pool, so the aggregates match bitwise.
  for (const char* spec : {"saturation;n=150", "bursty;jobs=150", "exponential"}) {
    procsim::core::ExperimentConfig cfg;
    cfg.sys.geom = Geometry(16, 22);
    cfg.sys.target_completions = 150;
    cfg.workload.source_spec = spec;
    cfg.workload.job_count = 150;
    cfg.workload.load = 0.02;
    cfg.seed = 31;
    procsim::stats::ReplicationPolicy policy;
    policy.min_replications = 3;
    policy.max_replications = 3;
    const auto serial = procsim::core::run_replicated(cfg, policy, nullptr);
    procsim::util::ThreadPool pool(3);
    const auto parallel = procsim::core::run_replicated(cfg, policy, &pool);
    ASSERT_EQ(serial.replications, parallel.replications) << spec;
    for (const auto& [name, interval] : serial.metrics) {
      const auto& other = parallel.metrics.at(name);
      EXPECT_DOUBLE_EQ(interval.mean, other.mean) << spec << " " << name;
      EXPECT_DOUBLE_EQ(interval.half_width, other.half_width) << spec << " " << name;
    }
  }
}

}  // namespace
