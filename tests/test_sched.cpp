#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <vector>

#include "sched/ordered_scheduler.hpp"

namespace {

using procsim::sched::AllocProbe;
using procsim::sched::OrderedScheduler;
using procsim::sched::Policy;
using procsim::sched::QueuedJob;
using procsim::sched::SchedSnapshot;

QueuedJob job(std::uint64_t id, double demand, std::int64_t area, std::uint64_t seq) {
  QueuedJob q;
  q.job_id = id;
  q.demand = demand;
  q.area = area;
  q.processors = static_cast<std::int32_t>(area);
  q.seq = seq;
  q.arrival = static_cast<double>(seq);
  return q;
}

TEST(Fcfs, HeadIsArrivalOrder) {
  OrderedScheduler s(Policy::kFcfs);
  s.enqueue(job(10, 99, 5, 2));
  s.enqueue(job(11, 1, 50, 0));
  s.enqueue(job(12, 50, 1, 1));
  ASSERT_TRUE(s.head().has_value());
  EXPECT_EQ(s.head()->job_id, 11u);
  EXPECT_EQ(s.take(0).job_id, 11u);
  EXPECT_EQ(s.take(0).job_id, 12u);
  EXPECT_EQ(s.take(0).job_id, 10u);
  EXPECT_FALSE(s.head().has_value());
}

TEST(Ssd, HeadIsShortestDemand) {
  OrderedScheduler s(Policy::kSsd);
  s.enqueue(job(1, 300, 1, 0));
  s.enqueue(job(2, 10, 1, 1));
  s.enqueue(job(3, 100, 1, 2));
  EXPECT_EQ(s.take(0).job_id, 2u);
  EXPECT_EQ(s.take(0).job_id, 3u);
  EXPECT_EQ(s.take(0).job_id, 1u);
}

TEST(Ssd, TiesBreakFcfs) {
  OrderedScheduler s(Policy::kSsd);
  s.enqueue(job(1, 50, 1, 0));
  s.enqueue(job(2, 50, 1, 1));
  EXPECT_EQ(s.head()->job_id, 1u);
}

TEST(Ssd, LateShortJobOvertakes) {
  OrderedScheduler s(Policy::kSsd);
  s.enqueue(job(1, 500, 1, 0));
  s.enqueue(job(2, 5, 1, 1));  // arrives later, much shorter
  EXPECT_EQ(s.head()->job_id, 2u);
}

TEST(SmallestJob, OrdersByArea) {
  OrderedScheduler s(Policy::kSmallestJob);
  s.enqueue(job(1, 1, 100, 0));
  s.enqueue(job(2, 1, 4, 1));
  EXPECT_EQ(s.head()->job_id, 2u);
  EXPECT_EQ(s.name(), "SJF");
}

TEST(LargestJob, OrdersByAreaDescending) {
  OrderedScheduler s(Policy::kLargestJob);
  s.enqueue(job(1, 1, 4, 0));
  s.enqueue(job(2, 1, 100, 1));
  EXPECT_EQ(s.head()->job_id, 2u);
  EXPECT_EQ(s.name(), "LJF");
}

TEST(Scheduler, SizeAndClear) {
  OrderedScheduler s(Policy::kFcfs);
  EXPECT_TRUE(s.empty());
  s.enqueue(job(1, 1, 1, 0));
  s.enqueue(job(2, 1, 1, 1));
  EXPECT_EQ(s.size(), 2u);
  s.clear();
  EXPECT_TRUE(s.empty());
  EXPECT_FALSE(s.head().has_value());
}

TEST(Scheduler, Names) {
  EXPECT_EQ(OrderedScheduler(Policy::kFcfs).name(), "FCFS");
  EXPECT_EQ(OrderedScheduler(Policy::kSsd).name(), "SSD");
}

TEST(Scheduler, JobAtExposesDisciplineOrder) {
  OrderedScheduler s(Policy::kSsd);
  s.enqueue(job(1, 30, 1, 0));
  s.enqueue(job(2, 10, 1, 1));
  s.enqueue(job(3, 20, 1, 2));
  ASSERT_EQ(s.size(), 3u);
  EXPECT_EQ(s.job_at(0).job_id, 2u);
  EXPECT_EQ(s.job_at(1).job_id, 3u);
  EXPECT_EQ(s.job_at(2).job_id, 1u);
}

TEST(Scheduler, TakeFromMiddlePreservesOrder) {
  OrderedScheduler s(Policy::kFcfs);
  for (std::uint64_t i = 0; i < 5; ++i) s.enqueue(job(i, 1, 1, i));
  EXPECT_EQ(s.take(2).job_id, 2u);
  EXPECT_EQ(s.size(), 4u);
  EXPECT_EQ(s.job_at(0).job_id, 0u);
  EXPECT_EQ(s.job_at(2).job_id, 3u);
}

TEST(Scheduler, OrderedSelectNominatesHeadWithoutProbing) {
  OrderedScheduler s(Policy::kFcfs);
  const AllocProbe forbidden = [](const QueuedJob&) -> bool {
    ADD_FAILURE() << "blocking disciplines must not probe";
    return false;
  };
  const SchedSnapshot snap{0.0, 100};
  EXPECT_FALSE(s.select(forbidden, snap).has_value());  // empty queue
  s.enqueue(job(7, 1, 1, 0));
  const auto pos = s.select(forbidden, snap);
  ASSERT_TRUE(pos.has_value());
  EXPECT_EQ(*pos, 0u);  // always the head, even if it cannot be allocated
}

// ---------------------------------------------------------------------------
// Property tests: for every discipline, the queue view equals the jobs
// sorted by the discipline's key with `seq` as the final tie-breaker, no
// matter the enqueue order.
// ---------------------------------------------------------------------------

bool ordered_before(Policy policy, const QueuedJob& a, const QueuedJob& b) {
  switch (policy) {
    case Policy::kFcfs:
      break;
    case Policy::kSsd:
      if (a.demand != b.demand) return a.demand < b.demand;
      break;
    case Policy::kSmallestJob:
      if (a.area != b.area) return a.area < b.area;
      break;
    case Policy::kLargestJob:
      if (a.area != b.area) return a.area > b.area;
      break;
  }
  return a.seq < b.seq;
}

class OrderedPolicyProperty : public ::testing::TestWithParam<Policy> {};

TEST_P(OrderedPolicyProperty, QueueViewMatchesSortedOrder) {
  const Policy policy = GetParam();
  std::mt19937_64 rng(0xD15C1F11u + static_cast<unsigned>(policy));
  for (int round = 0; round < 20; ++round) {
    // Few distinct key values on purpose: ties must be commonplace so the
    // seq tie-break is actually exercised.
    std::vector<QueuedJob> jobs;
    const std::size_t n = 1 + rng() % 40;
    for (std::size_t i = 0; i < n; ++i)
      jobs.push_back(job(i, static_cast<double>(rng() % 5),
                         static_cast<std::int64_t>(1 + rng() % 4), i));
    std::vector<QueuedJob> shuffled = jobs;
    std::shuffle(shuffled.begin(), shuffled.end(), rng);

    OrderedScheduler s(policy);
    for (const QueuedJob& q : shuffled) s.enqueue(q);

    std::vector<QueuedJob> want = jobs;
    std::sort(want.begin(), want.end(),
              [policy](const QueuedJob& a, const QueuedJob& b) {
                return ordered_before(policy, a, b);
              });
    ASSERT_EQ(s.size(), want.size());
    for (std::size_t i = 0; i < want.size(); ++i)
      EXPECT_EQ(s.job_at(i).job_id, want[i].job_id) << "position " << i;
    // Draining through take(0) yields the same sequence.
    for (std::size_t i = 0; i < want.size(); ++i)
      EXPECT_EQ(s.take(0).job_id, want[i].job_id);
  }
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, OrderedPolicyProperty,
                         ::testing::Values(Policy::kFcfs, Policy::kSsd,
                                           Policy::kSmallestJob,
                                           Policy::kLargestJob),
                         [](const auto& info) {
                           return std::string(procsim::sched::to_string(info.param));
                         });

}  // namespace
