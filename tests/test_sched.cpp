#include <gtest/gtest.h>

#include "sched/ordered_scheduler.hpp"

namespace {

using procsim::sched::OrderedScheduler;
using procsim::sched::Policy;
using procsim::sched::QueuedJob;

QueuedJob job(std::uint64_t id, double demand, std::int64_t area, std::uint64_t seq) {
  QueuedJob q;
  q.job_id = id;
  q.demand = demand;
  q.area = area;
  q.seq = seq;
  q.arrival = static_cast<double>(seq);
  return q;
}

TEST(Fcfs, HeadIsArrivalOrder) {
  OrderedScheduler s(Policy::kFcfs);
  s.enqueue(job(10, 99, 5, 2));
  s.enqueue(job(11, 1, 50, 0));
  s.enqueue(job(12, 50, 1, 1));
  ASSERT_TRUE(s.head().has_value());
  EXPECT_EQ(s.head()->job_id, 11u);
  s.pop_head();
  EXPECT_EQ(s.head()->job_id, 12u);
  s.pop_head();
  EXPECT_EQ(s.head()->job_id, 10u);
  s.pop_head();
  EXPECT_FALSE(s.head().has_value());
}

TEST(Ssd, HeadIsShortestDemand) {
  OrderedScheduler s(Policy::kSsd);
  s.enqueue(job(1, 300, 1, 0));
  s.enqueue(job(2, 10, 1, 1));
  s.enqueue(job(3, 100, 1, 2));
  EXPECT_EQ(s.head()->job_id, 2u);
  s.pop_head();
  EXPECT_EQ(s.head()->job_id, 3u);
  s.pop_head();
  EXPECT_EQ(s.head()->job_id, 1u);
}

TEST(Ssd, TiesBreakFcfs) {
  OrderedScheduler s(Policy::kSsd);
  s.enqueue(job(1, 50, 1, 0));
  s.enqueue(job(2, 50, 1, 1));
  EXPECT_EQ(s.head()->job_id, 1u);
}

TEST(Ssd, LateShortJobOvertakes) {
  OrderedScheduler s(Policy::kSsd);
  s.enqueue(job(1, 500, 1, 0));
  s.enqueue(job(2, 5, 1, 1));  // arrives later, much shorter
  EXPECT_EQ(s.head()->job_id, 2u);
}

TEST(SmallestJob, OrdersByArea) {
  OrderedScheduler s(Policy::kSmallestJob);
  s.enqueue(job(1, 1, 100, 0));
  s.enqueue(job(2, 1, 4, 1));
  EXPECT_EQ(s.head()->job_id, 2u);
  EXPECT_EQ(s.name(), "SJF");
}

TEST(LargestJob, OrdersByAreaDescending) {
  OrderedScheduler s(Policy::kLargestJob);
  s.enqueue(job(1, 1, 4, 0));
  s.enqueue(job(2, 1, 100, 1));
  EXPECT_EQ(s.head()->job_id, 2u);
  EXPECT_EQ(s.name(), "LJF");
}

TEST(Scheduler, SizeAndClear) {
  OrderedScheduler s(Policy::kFcfs);
  EXPECT_TRUE(s.empty());
  s.enqueue(job(1, 1, 1, 0));
  s.enqueue(job(2, 1, 1, 1));
  EXPECT_EQ(s.size(), 2u);
  s.clear();
  EXPECT_TRUE(s.empty());
  EXPECT_FALSE(s.head().has_value());
}

TEST(Scheduler, Names) {
  EXPECT_EQ(OrderedScheduler(Policy::kFcfs).name(), "FCFS");
  EXPECT_EQ(OrderedScheduler(Policy::kSsd).name(), "SSD");
}

}  // namespace
