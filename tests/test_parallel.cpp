#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "core/figure_runner.hpp"
#include "des/rng.hpp"
#include "stats/parallel_replication.hpp"
#include "util/thread_pool.hpp"

namespace {

using procsim::core::AggregateResult;
using procsim::core::ExperimentConfig;
using procsim::core::FigureSpec;
using procsim::core::paper_series;
using procsim::core::run_figure;
using procsim::core::run_replicated;
using procsim::core::RunOptions;
using procsim::core::WorkloadKind;
using procsim::stats::ParallelReplicationRunner;
using procsim::stats::ReplicationController;
using procsim::stats::ReplicationPolicy;
using procsim::util::parallel_for;
using procsim::util::resolve_threads;
using procsim::util::ThreadPool;

TEST(ThreadPool, SubmitReturnsResults) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  auto f1 = pool.submit([] { return 21 * 2; });
  auto f2 = pool.submit([] { return std::string("ok"); });
  EXPECT_EQ(f1.get(), 42);
  EXPECT_EQ(f2.get(), "ok");
}

TEST(ThreadPool, ZeroRequestedStillRunsTasks) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
  auto f = pool.submit([] { return 7; });
  EXPECT_EQ(f.get(), 7);
}

TEST(ThreadPool, ParallelForCoversEveryIndexOnce) {
  ThreadPool pool(3);
  constexpr std::size_t kN = 100;  // far more tasks than workers
  std::vector<std::atomic<int>> hits(kN);
  parallel_for(&pool, kN, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPool, ParallelForInlineWithoutPool) {
  std::vector<int> order;
  parallel_for(nullptr, 5, [&](std::size_t i) { order.push_back(static_cast<int>(i)); });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ThreadPool, ParallelForPropagatesException) {
  ThreadPool pool(2);
  EXPECT_THROW(parallel_for(&pool, 8,
                            [](std::size_t i) {
                              if (i == 5) throw std::runtime_error("boom");
                            }),
               std::runtime_error);
}

TEST(ThreadPool, ResolveThreads) {
  EXPECT_EQ(resolve_threads(3), 3u);
  EXPECT_GE(resolve_threads(0), 1u);  // 0 = all hardware threads
}

TEST(SubstreamSeed, DistinctStreamsAndBases) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t base : {0ULL, 1ULL, 42ULL})
    for (std::uint64_t stream = 0; stream < 32; ++stream)
      seen.insert(procsim::des::substream_seed(base, stream));
  EXPECT_EQ(seen.size(), 3u * 32u);  // no collisions across nearby inputs
  EXPECT_EQ(procsim::des::substream_seed(7, 3), procsim::des::substream_seed(7, 3));
}

// A cheap deterministic "replication": observations are pure functions of the
// replication index, mimicking a simulation seeded by substream_seed(rep).
std::unordered_map<std::string, double> fake_rep(std::uint64_t rep) {
  const auto x = static_cast<double>(procsim::des::substream_seed(99, rep) >> 11);
  return {{"metric_a", 100.0 + x * 0x1.0p-53}, {"metric_b", 5.0 + rep * 0.001}};
}

ReplicationController run_with_threads(std::size_t threads, ReplicationPolicy policy) {
  if (threads <= 1) {
    const ParallelReplicationRunner runner(policy, nullptr);
    return runner.run(fake_rep);
  }
  ThreadPool pool(threads);
  const ParallelReplicationRunner runner(policy, &pool);
  return runner.run(fake_rep);
}

TEST(ParallelReplicationRunner, BitIdenticalAcrossThreadCounts) {
  ReplicationPolicy policy;
  policy.min_replications = 3;
  policy.max_replications = 12;
  const ReplicationController serial = run_with_threads(1, policy);
  for (const std::size_t threads : {2, 4, 7}) {
    const ReplicationController par = run_with_threads(threads, policy);
    EXPECT_EQ(par.replications(), serial.replications()) << threads << " threads";
    for (const std::string& m : serial.metric_names()) {
      // Bit-identical, not approximately equal: the parallel runner must feed
      // the controller the exact serial prefix of replications.
      EXPECT_EQ(par.interval(m).mean, serial.interval(m).mean) << m;
      EXPECT_EQ(par.interval(m).half_width, serial.interval(m).half_width) << m;
      EXPECT_EQ(par.interval(m).samples, serial.interval(m).samples) << m;
    }
  }
}

TEST(ParallelReplicationRunner, MinAboveMaxStillRunsMinLikeSerialLoop) {
  // done() never fires below min_replications even past max_replications, so
  // the serial loop runs min reps for this (degenerate) policy; the parallel
  // runner must match rather than stop at max.
  ReplicationPolicy policy;
  policy.min_replications = 5;
  policy.max_replications = 3;
  EXPECT_EQ(run_with_threads(1, policy).replications(), 5u);
  EXPECT_EQ(run_with_threads(4, policy).replications(), 5u);
}

TEST(ParallelReplicationRunner, HonorsReplicationCap) {
  ReplicationPolicy policy;
  policy.min_replications = 2;
  policy.max_replications = 4;
  policy.max_relative_error = 0.0;  // unattainable: always runs to the cap
  ThreadPool pool(8);               // more speculation width than the cap allows
  const ParallelReplicationRunner runner(policy, &pool);
  const ReplicationController c = runner.run(fake_rep);
  EXPECT_EQ(c.replications(), 4u);
}

TEST(ParallelReplicationRunner, MatchesRunReplicated) {
  ExperimentConfig cfg;
  cfg.sys.target_completions = 30;
  cfg.workload.job_count = 30;
  cfg.workload.stochastic.load = 0.02;
  cfg.seed = 5;
  ReplicationPolicy policy;
  policy.min_replications = 2;
  policy.max_replications = 3;
  const AggregateResult serial = run_replicated(cfg, policy, nullptr);
  ThreadPool pool(4);
  const AggregateResult par = run_replicated(cfg, policy, &pool);
  EXPECT_EQ(par.replications, serial.replications);
  ASSERT_EQ(par.metrics.size(), serial.metrics.size());
  for (const auto& [name, iv] : serial.metrics) {
    ASSERT_TRUE(par.metrics.contains(name)) << name;
    EXPECT_EQ(par.metrics.at(name).mean, iv.mean) << name;
    EXPECT_EQ(par.metrics.at(name).half_width, iv.half_width) << name;
  }
}

FigureSpec small_figure() {
  FigureSpec spec;
  spec.id = "figpar";
  spec.title = "parallel determinism";
  spec.metric = "turnaround";
  spec.loads = {0.005, 0.01, 0.02};
  spec.series = paper_series();
  spec.base.sys.target_completions = 25;
  spec.base.workload.kind = WorkloadKind::kStochastic;
  spec.base.workload.job_count = 25;
  return spec;
}

std::string figure_csv(const FigureSpec& spec, std::size_t threads, bool with_ci) {
  RunOptions opts;
  opts.min_reps = opts.max_reps = 2;
  opts.seed = 123;
  opts.threads = threads;
  std::ostringstream out;
  run_figure(spec, opts, out, with_ci);
  return out.str();
}

TEST(FigureRunner, ThreadCountDoesNotChangeCsvBytes) {
  const FigureSpec spec = small_figure();
  const std::string serial = figure_csv(spec, 1, true);
  EXPECT_EQ(figure_csv(spec, 2, true), serial);
  EXPECT_EQ(figure_csv(spec, 4, true), serial);
}

TEST(FigureRunner, StressMoreCellsThanThreads) {
  // 8 loads x 6 series = 48 cells on 3 workers: every worker cycles through
  // many queue pops, and the output must still match the serial bytes.
  FigureSpec spec = small_figure();
  spec.loads = {0.002, 0.004, 0.006, 0.008, 0.01, 0.015, 0.02, 0.03};
  spec.base.sys.target_completions = 15;
  spec.base.workload.job_count = 15;
  const std::string serial = figure_csv(spec, 1, false);
  const std::string par = figure_csv(spec, 3, false);
  EXPECT_EQ(par, serial);
  // 2 comment lines + header + 8 data rows.
  int rows = 0;
  for (const char c : par)
    if (c == '\n') ++rows;
  EXPECT_EQ(rows, 11);
}

TEST(FigureRunner, ParseThreadsOption) {
  const char* argv[] = {"bench", "--threads=4"};
  const RunOptions opts = procsim::core::parse_run_options(2, const_cast<char**>(argv));
  EXPECT_EQ(opts.threads, 4u);
  const RunOptions defaults = procsim::core::parse_run_options(0, nullptr);
  EXPECT_EQ(defaults.threads, 1u);
}

}  // namespace
