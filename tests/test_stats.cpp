#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "des/rng.hpp"
#include "stats/confidence.hpp"
#include "stats/histogram.hpp"
#include "stats/replication.hpp"
#include "stats/time_weighted.hpp"
#include "stats/welford.hpp"

namespace {

using procsim::stats::confidence_interval;
using procsim::stats::Histogram;
using procsim::stats::Interval;
using procsim::stats::ReplicationController;
using procsim::stats::ReplicationPolicy;
using procsim::stats::t_critical;
using procsim::stats::TimeWeighted;
using procsim::stats::Welford;

TEST(Welford, EmptyIsZeroMean) {
  Welford w;
  EXPECT_EQ(w.count(), 0u);
  EXPECT_DOUBLE_EQ(w.mean(), 0.0);
  EXPECT_DOUBLE_EQ(w.variance(), 0.0);
  EXPECT_TRUE(std::isnan(w.min()));
  EXPECT_TRUE(std::isnan(w.max()));
}

TEST(Welford, MeanAndVarianceExact) {
  Welford w;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) w.add(x);
  EXPECT_DOUBLE_EQ(w.mean(), 5.0);
  // Sample variance with n-1 = 7: sum of squared deviations = 32.
  EXPECT_NEAR(w.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(w.min(), 2.0);
  EXPECT_DOUBLE_EQ(w.max(), 9.0);
}

TEST(Welford, SingleSampleVarianceZero) {
  Welford w;
  w.add(3.5);
  EXPECT_DOUBLE_EQ(w.variance(), 0.0);
  EXPECT_DOUBLE_EQ(w.mean(), 3.5);
}

TEST(Welford, MergeEqualsSequential) {
  Welford a, b, all;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(i) * 10;
    (i % 2 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(Welford, MergeWithEmptyIsIdentity) {
  Welford a, empty;
  a.add(1);
  a.add(2);
  const double mean = a.mean();
  a.merge(empty);
  EXPECT_DOUBLE_EQ(a.mean(), mean);
  Welford b;
  b.merge(a);
  EXPECT_DOUBLE_EQ(b.mean(), mean);
}

TEST(Welford, NumericallyStableAroundLargeOffset) {
  Welford w;
  const double offset = 1e9;
  for (int i = 0; i < 1000; ++i) w.add(offset + (i % 2 ? 1.0 : -1.0));
  EXPECT_NEAR(w.mean(), offset, 1e-3);
  // Exactly alternating +-1: sample variance = n/(n-1).
  EXPECT_NEAR(w.variance(), 1000.0 / 999.0, 1e-6);
}

TEST(TimeWeighted, PiecewiseConstantAverage) {
  TimeWeighted tw;
  tw.set(0, 2);   // value 2 over [0, 10)
  tw.set(10, 6);  // value 6 over [10, 20)
  EXPECT_DOUBLE_EQ(tw.average(20), 4.0);
  EXPECT_DOUBLE_EQ(tw.integral(20), 80.0);
}

TEST(TimeWeighted, AddIsRelative) {
  TimeWeighted tw;
  tw.add(0, 5);
  tw.add(10, -3);
  EXPECT_DOUBLE_EQ(tw.current(), 2.0);
  EXPECT_DOUBLE_EQ(tw.average(20), (5 * 10 + 2 * 10) / 20.0);
}

TEST(TimeWeighted, RejectsTimeGoingBackwards) {
  TimeWeighted tw;
  tw.set(10, 1);
  EXPECT_THROW(tw.set(5, 2), std::invalid_argument);
  EXPECT_THROW((void)tw.integral(5), std::invalid_argument);
}

TEST(TimeWeighted, WindowResetDiscardsHistory) {
  TimeWeighted tw;
  tw.set(0, 100);     // transient
  tw.reset_window(10);
  tw.set(15, 100);    // steady state: 100 from t=15
  // Over [10, 20]: 100 for [10,15) (current value kept) + 100 for [15,20).
  EXPECT_DOUBLE_EQ(tw.average(20), 100.0);
}

TEST(TimeWeighted, EmptyWindowAverageIsZero) {
  TimeWeighted tw;
  EXPECT_DOUBLE_EQ(tw.average(0), 0.0);
}

TEST(Confidence, TCriticalKnownValues) {
  EXPECT_NEAR(t_critical(1, 0.95), 12.706, 1e-3);
  EXPECT_NEAR(t_critical(9, 0.95), 2.262, 1e-3);
  EXPECT_NEAR(t_critical(30, 0.95), 2.042, 1e-3);
  EXPECT_NEAR(t_critical(1000, 0.95), 1.960, 1e-3);
  EXPECT_NEAR(t_critical(9, 0.90), 1.833, 1e-3);
  EXPECT_NEAR(t_critical(9, 0.99), 3.250, 1e-3);
}

TEST(Confidence, TCriticalRejectsBadInputs) {
  EXPECT_THROW((void)t_critical(0, 0.95), std::invalid_argument);
  EXPECT_THROW((void)t_critical(5, 0.80), std::invalid_argument);
}

TEST(Confidence, IntervalInfiniteBelowTwoSamples) {
  Welford w;
  w.add(5);
  const Interval iv = confidence_interval(w);
  EXPECT_TRUE(std::isinf(iv.half_width));
}

TEST(Confidence, IntervalMatchesHandComputation) {
  Welford w;
  for (const double x : {10.0, 12.0, 14.0}) w.add(x);
  const Interval iv = confidence_interval(w, 0.95);
  EXPECT_DOUBLE_EQ(iv.mean, 12.0);
  const double se = 2.0 / std::sqrt(3.0);
  EXPECT_NEAR(iv.half_width, 4.303 * se, 1e-3);
  EXPECT_NEAR(iv.lo(), 12.0 - iv.half_width, 1e-12);
  EXPECT_NEAR(iv.hi(), 12.0 + iv.half_width, 1e-12);
}

TEST(Confidence, RelativeErrorEdgeCases) {
  Interval iv;
  iv.mean = 0;
  iv.half_width = 0;
  EXPECT_DOUBLE_EQ(iv.relative_error(), 0.0);
  iv.half_width = 1;
  EXPECT_TRUE(std::isinf(iv.relative_error()));
  iv.mean = 10;
  iv.half_width = 0.5;
  EXPECT_DOUBLE_EQ(iv.relative_error(), 0.05);
}

TEST(Replication, StopsWhenPreciseEnough) {
  ReplicationPolicy policy;
  policy.min_replications = 3;
  policy.max_replications = 100;
  policy.max_relative_error = 0.05;
  ReplicationController c(policy);
  // Identical observations: precise after the minimum count.
  for (int i = 0; i < 3; ++i) c.add_replication({{"m", 10.0}});
  EXPECT_TRUE(c.done());
  EXPECT_EQ(c.replications(), 3u);
  EXPECT_NEAR(c.interval("m").mean, 10.0, 1e-12);
}

TEST(Replication, KeepsGoingWhenNoisy) {
  ReplicationPolicy policy;
  policy.min_replications = 3;
  policy.max_replications = 100;
  ReplicationController c(policy);
  c.add_replication({{"m", 1.0}});
  c.add_replication({{"m", 100.0}});
  c.add_replication({{"m", 1.0}});
  EXPECT_FALSE(c.done());
}

TEST(Replication, RespectsMaxCap) {
  ReplicationPolicy policy;
  policy.min_replications = 1;
  policy.max_replications = 4;
  ReplicationController c(policy);
  procsim::des::Xoshiro256SS rng(3);
  for (int i = 0; i < 4; ++i)
    c.add_replication({{"m", rng.next_double() * 1e6}});
  EXPECT_TRUE(c.done());
}

TEST(Replication, TracksMultipleMetricsIndependently) {
  ReplicationPolicy policy;
  policy.min_replications = 3;
  ReplicationController c(policy);
  for (int i = 0; i < 3; ++i)
    c.add_replication({{"stable", 5.0}, {"noisy", i * 100.0}});
  EXPECT_FALSE(c.done());  // noisy holds it open
  EXPECT_EQ(c.metric_names().size(), 2u);
  EXPECT_THROW((void)c.interval("absent"), std::out_of_range);
}

TEST(Histogram, BinningAndClamping) {
  Histogram h(0, 10, 5);
  h.add(-100);  // clamps into bin 0
  h.add(0.5);
  h.add(9.5);
  h.add(100);  // clamps into last bin
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(4), 2u);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_DOUBLE_EQ(h.fraction(0), 0.5);
  EXPECT_DOUBLE_EQ(h.bin_lo(1), 2.0);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(5, 5, 3), std::invalid_argument);
  EXPECT_THROW(Histogram(0, 10, 0), std::invalid_argument);
}

}  // namespace
