#include <gtest/gtest.h>

#include <vector>

#include "des/rng.hpp"
#include "des/simulator.hpp"
#include "mesh/coord.hpp"
#include "network/routing.hpp"
#include "network/wormhole_network.hpp"

namespace {

using procsim::des::Simulator;
using procsim::mesh::Coord;
using procsim::mesh::Geometry;
using procsim::mesh::NodeId;
using procsim::network::ChannelMap;
using procsim::network::Delivery;
using procsim::network::Direction;
using procsim::network::NetworkParams;
using procsim::network::WormholeNetwork;

// ------------------------------------------------------------------ Routing

TEST(Routing, NeighboursOnMeshEdges) {
  const ChannelMap map(Geometry(4, 3));
  const Geometry& g = map.geometry();
  EXPECT_EQ(map.neighbour(g.id(Coord{0, 0}), Direction::kWest), -1);
  EXPECT_EQ(map.neighbour(g.id(Coord{0, 0}), Direction::kEast), g.id(Coord{1, 0}));
  EXPECT_EQ(map.neighbour(g.id(Coord{3, 2}), Direction::kNorth), -1);
  EXPECT_EQ(map.neighbour(g.id(Coord{3, 2}), Direction::kSouth), g.id(Coord{3, 1}));
}

TEST(Routing, TorusWrapsAround) {
  const ChannelMap map(Geometry(4, 3), /*torus=*/true);
  const Geometry& g = map.geometry();
  EXPECT_EQ(map.neighbour(g.id(Coord{0, 0}), Direction::kWest), g.id(Coord{3, 0}));
  EXPECT_EQ(map.neighbour(g.id(Coord{3, 2}), Direction::kNorth), g.id(Coord{3, 0}));
}

TEST(Routing, XYRouteGoesXThenY) {
  const ChannelMap map(Geometry(8, 8));
  const Geometry& g = map.geometry();
  const auto path = map.route(g.id(Coord{1, 1}), g.id(Coord{4, 5}));
  // injection + 3 east + 4 north + ejection
  ASSERT_EQ(path.size(), 9u);
  EXPECT_EQ(path.front(), map.injection(g.id(Coord{1, 1})));
  EXPECT_EQ(path[1], map.link(g.id(Coord{1, 1}), Direction::kEast));
  EXPECT_EQ(path[4], map.link(g.id(Coord{4, 1}), Direction::kNorth));
  EXPECT_EQ(path.back(), map.ejection(g.id(Coord{4, 5})));
}

TEST(Routing, HopCountIsManhattanOnMesh) {
  const ChannelMap map(Geometry(16, 22));
  const Geometry& g = map.geometry();
  EXPECT_EQ(map.hop_count(g.id(Coord{0, 0}), g.id(Coord{15, 21})), 36);
  EXPECT_EQ(map.hop_count(g.id(Coord{3, 3}), g.id(Coord{3, 3})), 0);
  EXPECT_EQ(map.hop_count(g.id(Coord{5, 7}), g.id(Coord{2, 7})), 3);
}

TEST(Routing, TorusTakesShorterWay) {
  const ChannelMap map(Geometry(16, 22), /*torus=*/true);
  const Geometry& g = map.geometry();
  // 0 -> 15 along x: 1 hop west on the torus, not 15 east.
  EXPECT_EQ(map.hop_count(g.id(Coord{0, 0}), g.id(Coord{15, 0})), 1);
  EXPECT_EQ(map.hop_count(g.id(Coord{0, 0}), g.id(Coord{0, 21})), 1);
  EXPECT_EQ(map.hop_count(g.id(Coord{0, 0}), g.id(Coord{8, 0})), 8);
}

TEST(Routing, SelfRouteThrows) {
  const ChannelMap map(Geometry(4, 4));
  EXPECT_THROW((void)map.route(3, 3), std::invalid_argument);
}

TEST(Routing, ChannelIdsAreDisjointRanges) {
  const ChannelMap map(Geometry(4, 4));
  EXPECT_FALSE(map.is_injection(map.link(0, Direction::kEast)));
  EXPECT_TRUE(map.is_injection(map.injection(5)));
  EXPECT_FALSE(map.is_ejection(map.injection(5)));
  EXPECT_TRUE(map.is_ejection(map.ejection(5)));
  EXPECT_EQ(map.channel_count(), 10 * 16);  // 8 link VCs + inj + ej per node
}

// ----------------------------------------------------------------- Wormhole

struct Harness {
  Simulator sim;
  WormholeNetwork net;
  std::vector<Delivery> deliveries;

  explicit Harness(Geometry g, NetworkParams p = NetworkParams{3, 8, false})
      : net(sim, g, p) {
    net.set_delivery_sink(
        [](void* ctx, const Delivery& d) {
          static_cast<Harness*>(ctx)->deliveries.push_back(d);
        },
        this);
  }
};

TEST(Wormhole, ContentionFreeLatencyMatchesFormula) {
  // One packet across D hops: latency = (D+1)(1+st) + P_len.
  for (const int st : {0, 1, 3}) {
    for (const int plen : {1, 4, 8}) {
      Harness h(Geometry(16, 22),
                NetworkParams{st, plen, false});
      const Geometry& g = h.net.channels().geometry();
      h.net.inject(g.id(Coord{2, 3}), g.id(Coord{9, 10}), 7);
      h.sim.run();
      ASSERT_EQ(h.deliveries.size(), 1u);
      const Delivery& d = h.deliveries[0];
      EXPECT_EQ(d.hops, 14);
      EXPECT_DOUBLE_EQ(d.latency, (14 + 1) * (1 + st) + plen);
      EXPECT_DOUBLE_EQ(d.latency, h.net.base_latency(14));
      EXPECT_DOUBLE_EQ(d.blocked, 0.0);
      EXPECT_EQ(d.tag, 7u);
    }
  }
}

TEST(Wormhole, AdjacentNodesMinimumLatency) {
  Harness h(Geometry(4, 4), NetworkParams{3, 8, false});
  const Geometry& g = h.net.channels().geometry();
  h.net.inject(g.id(Coord{0, 0}), g.id(Coord{1, 0}), 0);
  h.sim.run();
  ASSERT_EQ(h.deliveries.size(), 1u);
  EXPECT_DOUBLE_EQ(h.deliveries[0].latency, 2 * 4 + 8);  // 2 channels + drain
}

TEST(Wormhole, EveryInjectedPacketDeliveredExactlyOnce) {
  Harness h(Geometry(8, 8));
  const Geometry& g = h.net.channels().geometry();
  int count = 0;
  for (NodeId s = 0; s < g.nodes(); ++s)
    for (const NodeId t : {(s + 7) % g.nodes(), (s + 21) % g.nodes()})
      if (s != t) {
        h.net.inject(s, t, static_cast<std::uint64_t>(count++));
      }
  h.sim.run();
  EXPECT_EQ(h.deliveries.size(), static_cast<std::size_t>(count));
  EXPECT_EQ(h.net.in_flight(), 0u);
  EXPECT_EQ(h.net.metrics().delivered, static_cast<std::uint64_t>(count));
}

TEST(Wormhole, SameSourceSerialisesOnInjectionChannel) {
  Harness h(Geometry(8, 1), NetworkParams{0, 4, false});
  const Geometry& g = h.net.channels().geometry();
  // Two packets from node 0: the second must wait for the injection port.
  h.net.inject(g.id(Coord{0, 0}), g.id(Coord{7, 0}), 1);
  h.net.inject(g.id(Coord{0, 0}), g.id(Coord{7, 0}), 2);
  h.sim.run();
  ASSERT_EQ(h.deliveries.size(), 2u);
  EXPECT_DOUBLE_EQ(h.deliveries[0].blocked, 0.0);
  EXPECT_GT(h.deliveries[1].blocked, 0.0);
  EXPECT_GT(h.deliveries[1].latency, h.deliveries[0].latency);
}

TEST(Wormhole, ContentionOnSharedLinkBlocksSecondHeader) {
  Harness h(Geometry(4, 1), NetworkParams{0, 8, false});
  const Geometry& g = h.net.channels().geometry();
  // Both packets need link (1->2); injected same cycle from different nodes.
  h.net.inject(g.id(Coord{0, 0}), g.id(Coord{3, 0}), 1);
  h.net.inject(g.id(Coord{1, 0}), g.id(Coord{3, 0}), 2);
  h.sim.run();
  ASSERT_EQ(h.deliveries.size(), 2u);
  double total_blocked = 0;
  for (const auto& d : h.deliveries) total_blocked += d.blocked;
  EXPECT_GT(total_blocked, 0.0);
  EXPECT_GT(h.net.metrics().blocking.max(), 0.0);
}

TEST(Wormhole, DisjointPathsDoNotInteract) {
  Harness h(Geometry(8, 8), NetworkParams{3, 8, false});
  const Geometry& g = h.net.channels().geometry();
  h.net.inject(g.id(Coord{0, 0}), g.id(Coord{7, 0}), 1);  // row 0
  h.net.inject(g.id(Coord{0, 7}), g.id(Coord{7, 7}), 2);  // row 7
  h.sim.run();
  ASSERT_EQ(h.deliveries.size(), 2u);
  for (const auto& d : h.deliveries) EXPECT_DOUBLE_EQ(d.blocked, 0.0);
}

TEST(Wormhole, HeavyRandomTrafficDrainsCompletely) {
  Harness h(Geometry(16, 22));
  const Geometry& g = h.net.channels().geometry();
  procsim::des::Xoshiro256SS rng(17);
  for (int i = 0; i < 2000; ++i) {
    const auto s = static_cast<NodeId>(rng() % static_cast<std::uint64_t>(g.nodes()));
    auto t = static_cast<NodeId>(rng() % static_cast<std::uint64_t>(g.nodes()));
    if (t == s) t = (t + 1) % g.nodes();
    h.net.inject(s, t, static_cast<std::uint64_t>(i));
  }
  h.sim.run();
  EXPECT_EQ(h.deliveries.size(), 2000u);  // conservation, no deadlock
  EXPECT_EQ(h.net.in_flight(), 0u);
  // Latency never below the contention-free bound.
  for (const auto& d : h.deliveries)
    EXPECT_GE(d.latency, h.net.base_latency(d.hops) - 1e-9);
}

TEST(Wormhole, TorusTrafficDrainsCompletely) {
  Harness h(Geometry(8, 8), NetworkParams{3, 8, true});
  const Geometry& g = h.net.channels().geometry();
  procsim::des::Xoshiro256SS rng(23);
  for (int i = 0; i < 500; ++i) {
    const auto s = static_cast<NodeId>(rng() % static_cast<std::uint64_t>(g.nodes()));
    auto t = static_cast<NodeId>(rng() % static_cast<std::uint64_t>(g.nodes()));
    if (t == s) t = (t + 1) % g.nodes();
    h.net.inject(s, t, static_cast<std::uint64_t>(i));
  }
  h.sim.run();
  EXPECT_EQ(h.deliveries.size(), 500u);
}

TEST(Wormhole, FifoArbitrationOrdersWaiters) {
  Harness h(Geometry(4, 1), NetworkParams{0, 8, false});
  const Geometry& g = h.net.channels().geometry();
  // Three packets to the same destination: ejection port serialises; FIFO
  // order of arrival at the contended channel decides delivery order.
  h.net.inject(g.id(Coord{2, 0}), g.id(Coord{3, 0}), 1);  // closest, wins
  h.net.inject(g.id(Coord{1, 0}), g.id(Coord{3, 0}), 2);
  h.net.inject(g.id(Coord{0, 0}), g.id(Coord{3, 0}), 3);
  h.sim.run();
  ASSERT_EQ(h.deliveries.size(), 3u);
  EXPECT_EQ(h.deliveries[0].tag, 1u);
  EXPECT_EQ(h.deliveries[1].tag, 2u);
  EXPECT_EQ(h.deliveries[2].tag, 3u);
}

TEST(Wormhole, MetricsAccumulate) {
  Harness h(Geometry(8, 8));
  const Geometry& g = h.net.channels().geometry();
  h.net.inject(g.id(Coord{0, 0}), g.id(Coord{3, 4}), 1);
  h.sim.run();
  EXPECT_EQ(h.net.metrics().injected, 1u);
  EXPECT_EQ(h.net.metrics().delivered, 1u);
  EXPECT_DOUBLE_EQ(h.net.metrics().hops.mean(), 7.0);
}

TEST(Wormhole, ResetRejectsInFlightPackets) {
  Harness h(Geometry(8, 8));
  const Geometry& g = h.net.channels().geometry();
  h.net.inject(g.id(Coord{0, 0}), g.id(Coord{7, 7}), 1);
  EXPECT_THROW(h.net.reset(), std::logic_error);
  h.sim.run();
  h.net.reset();
  EXPECT_EQ(h.net.metrics().injected, 0u);
}

TEST(Wormhole, RejectsBadParams) {
  Simulator sim;
  EXPECT_THROW(WormholeNetwork(sim, Geometry(4, 4), NetworkParams{-1, 8, false}),
               std::invalid_argument);
  EXPECT_THROW(WormholeNetwork(sim, Geometry(4, 4), NetworkParams{3, 0, false}),
               std::invalid_argument);
}

}  // namespace
