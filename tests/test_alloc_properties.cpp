// Property suite shared by every allocation strategy: soundness of the
// occupancy bookkeeping, exactness of release, the non-contiguous
// completeness guarantee, and determinism — exercised under randomized
// allocate/release churn on several mesh shapes.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>
#include <tuple>
#include <vector>

#include "core/experiment.hpp"
#include "des/distributions.hpp"
#include "des/rng.hpp"
#include "workload/shape.hpp"

namespace {

using procsim::alloc::Allocator;
using procsim::alloc::Placement;
using procsim::alloc::Request;
using procsim::core::AllocatorSpec;
using procsim::core::make_allocator;
using procsim::mesh::Geometry;
using procsim::mesh::NodeId;
using procsim::mesh::SubMesh;

struct Shape {
  std::int32_t w;
  std::int32_t l;
};

using Param = std::tuple<const char*, Shape, std::uint64_t>;

class AllocProperty : public ::testing::TestWithParam<Param> {
 protected:
  [[nodiscard]] std::unique_ptr<Allocator> make() const {
    const auto [name, shape, seed] = GetParam();
    return make_allocator(AllocatorSpec{name}, Geometry(shape.w, shape.l), seed);
  }
  [[nodiscard]] std::uint64_t seed() const { return std::get<2>(GetParam()); }
};

/// Every block of a placement lies in the mesh and blocks are disjoint.
void expect_placement_sound(const Placement& p, const Geometry& g, const Request& req) {
  std::int32_t covered = 0;
  for (const SubMesh& b : p.blocks) {
    EXPECT_TRUE(b.valid());
    EXPECT_TRUE(g.contains(b.base()));
    EXPECT_TRUE(g.contains(b.end()));
    covered += b.area();
  }
  for (std::size_t i = 0; i < p.blocks.size(); ++i)
    for (std::size_t j = i + 1; j < p.blocks.size(); ++j)
      EXPECT_FALSE(p.blocks[i].overlaps(p.blocks[j]));
  EXPECT_EQ(covered, p.allocated);
  EXPECT_EQ(static_cast<std::int32_t>(p.compute_nodes.size()), req.processors);
  EXPECT_LE(req.processors, p.allocated);
  // Compute nodes are distinct and lie inside the blocks.
  std::set<NodeId> uniq(p.compute_nodes.begin(), p.compute_nodes.end());
  EXPECT_EQ(uniq.size(), p.compute_nodes.size());
  for (const NodeId n : p.compute_nodes) {
    bool inside = false;
    for (const SubMesh& b : p.blocks)
      if (b.contains(g.coord(n))) inside = true;
    EXPECT_TRUE(inside);
  }
}

Request random_request(procsim::des::Xoshiro256SS& rng, const Geometry& g) {
  const auto w = static_cast<std::int32_t>(
      procsim::des::sample_uniform_int(rng, 1, g.width()));
  const auto l = static_cast<std::int32_t>(
      procsim::des::sample_uniform_int(rng, 1, g.length()));
  return Request{w, l, w * l};
}

TEST_P(AllocProperty, ChurnKeepsBookkeepingConsistent) {
  const auto alloc = make();
  const Geometry g = alloc->geometry();
  procsim::des::Xoshiro256SS rng(seed());

  std::vector<std::pair<Request, Placement>> held;
  std::int64_t held_allocated = 0;
  for (int step = 0; step < 400; ++step) {
    if (held.empty() || procsim::des::sample_bernoulli(rng, 0.55)) {
      const Request req = random_request(rng, g);
      if (auto p = alloc->allocate(req)) {
        expect_placement_sound(*p, g, req);
        held_allocated += p->allocated;
        held.emplace_back(req, std::move(*p));
      }
    } else {
      const auto i = static_cast<std::size_t>(procsim::des::sample_uniform_int(
          rng, 0, static_cast<std::int64_t>(held.size()) - 1));
      held_allocated -= held[i].second.allocated;
      alloc->release(held[i].second);
      held[i] = std::move(held.back());
      held.pop_back();
    }
    // The ground-truth bitmap agrees with the running total.
    EXPECT_EQ(alloc->free_processors() + held_allocated, g.nodes());
  }
  for (const auto& [req, p] : held) alloc->release(p);
  EXPECT_EQ(alloc->free_processors(), g.nodes());
}

TEST_P(AllocProperty, HeldPlacementsNeverOverlap) {
  const auto alloc = make();
  const Geometry g = alloc->geometry();
  procsim::des::Xoshiro256SS rng(seed() ^ 0xABCDULL);

  std::vector<Placement> held;
  for (int step = 0; step < 100; ++step) {
    const Request req = random_request(rng, g);
    if (auto p = alloc->allocate(req)) held.push_back(std::move(*p));
  }
  std::set<NodeId> seen;
  for (const Placement& p : held)
    for (const SubMesh& b : p.blocks)
      for (std::int32_t y = b.y1; y <= b.y2; ++y)
        for (std::int32_t x = b.x1; x <= b.x2; ++x) {
          const auto [_, inserted] = seen.insert(g.id(procsim::mesh::Coord{x, y}));
          EXPECT_TRUE(inserted) << "node allocated to two jobs";
        }
  for (const Placement& p : held) alloc->release(p);
}

TEST_P(AllocProperty, NonContiguousSucceedsIffEnoughFree) {
  const auto alloc = make();
  if (!alloc->is_noncontiguous()) GTEST_SKIP() << "contiguous baseline";
  const Geometry g = alloc->geometry();
  procsim::des::Xoshiro256SS rng(seed() ^ 0x5555ULL);

  std::vector<Placement> held;
  for (int step = 0; step < 200; ++step) {
    const Request req = random_request(rng, g);
    const bool enough =
        alloc->free_processors() >= static_cast<std::int64_t>(req.width) * req.length;
    auto p = alloc->allocate(req);
    EXPECT_EQ(p.has_value(), enough)
        << "free=" << alloc->free_processors() << " req=" << req.width << "x"
        << req.length;
    if (p) held.push_back(std::move(*p));
    if (alloc->free_processors() < g.nodes() / 4 && !held.empty()) {
      alloc->release(held.back());
      held.pop_back();
    }
  }
  for (const Placement& p : held) alloc->release(p);
}

TEST_P(AllocProperty, DeterministicForIdenticalSequences) {
  const auto a1 = make();
  const auto a2 = make();
  procsim::des::Xoshiro256SS rng1(seed() ^ 0xD7ULL), rng2(seed() ^ 0xD7ULL);
  for (int step = 0; step < 120; ++step) {
    const Request r1 = random_request(rng1, a1->geometry());
    const Request r2 = random_request(rng2, a2->geometry());
    ASSERT_EQ(r1.width, r2.width);
    const auto p1 = a1->allocate(r1);
    const auto p2 = a2->allocate(r2);
    ASSERT_EQ(p1.has_value(), p2.has_value());
    if (p1) {
      EXPECT_EQ(p1->blocks, p2->blocks);
      EXPECT_EQ(p1->compute_nodes, p2->compute_nodes);
    }
  }
}

TEST_P(AllocProperty, ResetRestoresPristineMesh) {
  const auto alloc = make();
  procsim::des::Xoshiro256SS rng(seed());
  for (int i = 0; i < 10; ++i) (void)alloc->allocate(random_request(rng, alloc->geometry()));
  alloc->reset();
  EXPECT_EQ(alloc->free_processors(), alloc->geometry().nodes());
  // A full-mesh request must succeed on the pristine mesh (non-contiguous
  // strategies and contiguous alike).
  const Request full{alloc->geometry().width(), alloc->geometry().length(),
                     alloc->geometry().nodes()};
  EXPECT_TRUE(alloc->allocate(full).has_value());
}

constexpr const char* kAllKinds[] = {"GABL",     "Paging(0)", "MBS",
                                     "FirstFit", "BestFit",   "Random"};

INSTANTIATE_TEST_SUITE_P(
    AllStrategies, AllocProperty,
    ::testing::Combine(::testing::ValuesIn(kAllKinds),
                       ::testing::Values(Shape{16, 22}, Shape{8, 8}, Shape{5, 9}),
                       ::testing::Values(11u, 29u)),
    [](const ::testing::TestParamInfo<Param>& info) {
      const AllocatorSpec spec{std::get<0>(info.param)};
      const Shape s = std::get<1>(info.param);
      std::string name = spec.label() + "_" + std::to_string(s.w) + "x" +
                         std::to_string(s.l) + "_s" +
                         std::to_string(std::get<2>(info.param));
      for (char& c : name)
        if (c == '(' || c == ')') c = '_';
      return name;
    });

// Trace-style requests (p with derived near-square shape) keep the same
// guarantees — this is the path the real-workload experiments exercise.
TEST(AllocTraceShapes, AllNonContiguousHandleArbitraryP) {
  const Geometry g(16, 22);
  for (const char* name : {"GABL", "Paging(0)", "MBS"}) {
    const AllocatorSpec spec{name};
    const auto alloc = make_allocator(spec, g, 1);
    for (std::int32_t p = 1; p <= 352; p += 7) {
      const auto [w, l] = procsim::workload::shape_for_processors(p, g);
      const auto placement = alloc->allocate(Request{w, l, p});
      ASSERT_TRUE(placement.has_value()) << spec.label() << " p=" << p;
      EXPECT_EQ(static_cast<std::int32_t>(placement->compute_nodes.size()), p);
      alloc->release(*placement);
      EXPECT_EQ(alloc->free_processors(), g.nodes());
    }
  }
}

}  // namespace
