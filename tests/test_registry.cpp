#include <gtest/gtest.h>

#include <stdexcept>

#include "alloc/registry.hpp"
#include "core/experiment.hpp"
#include "sched/registry.hpp"

namespace {

using procsim::mesh::Geometry;

TEST(AllocRegistry, KnownNamesRoundTripThroughName) {
  for (const std::string& name : procsim::alloc::known_allocators()) {
    const auto a = procsim::alloc::make_allocator(name, Geometry(8, 8));
    ASSERT_NE(a, nullptr) << name;
    EXPECT_EQ(a->name(), name);
  }
}

TEST(AllocRegistry, ParsingIsCaseInsensitiveWithPagingVariants) {
  using procsim::alloc::parse_allocator_name;
  EXPECT_EQ(parse_allocator_name("gabl")->canonical, "GABL");
  EXPECT_EQ(parse_allocator_name("FIRSTFIT")->canonical, "FirstFit");
  EXPECT_EQ(parse_allocator_name("bestfit")->canonical, "BestFit");
  EXPECT_EQ(parse_allocator_name("Paging")->canonical, "Paging(0)");
  EXPECT_EQ(parse_allocator_name("paging(2)")->canonical, "Paging(2)");
  EXPECT_EQ(parse_allocator_name("paging(2)")->paging_size_index, 2);
  EXPECT_FALSE(parse_allocator_name("Paging(").has_value());
  EXPECT_FALSE(parse_allocator_name("Paging(x)").has_value());
  // Everything PageTable would reject at construction must already fail to
  // parse, so drivers' fail-fast name validation is airtight.
  EXPECT_TRUE(parse_allocator_name("Paging(15)").has_value());
  EXPECT_FALSE(parse_allocator_name("Paging(16)").has_value());
  EXPECT_FALSE(parse_allocator_name("Buddy").has_value());
}

TEST(AllocRegistry, UnknownNameThrowsListingKnown) {
  try {
    (void)procsim::alloc::make_allocator("NoSuch", Geometry(4, 4));
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("GABL"), std::string::npos);
  }
}

TEST(AllocRegistry, PagingSizeIndexReachesAllocatorName) {
  const auto a = procsim::alloc::make_allocator("Paging(1)", Geometry(8, 8));
  EXPECT_EQ(a->name(), "Paging(1)");
}

TEST(CoreRegistry, SpecLabelIsARegistryName) {
  // core::AllocatorSpec is a thin wrapper over the string registry: every
  // known name round-trips label() -> parse_allocator_spec -> label(), and
  // the constructed allocator reports the label verbatim.
  using procsim::core::AllocatorSpec;
  for (std::string name : procsim::alloc::known_allocators()) {
    if (name == "Paging(0)") name = "Paging(2)";  // exercise a parameterized name
    const AllocatorSpec spec{name};
    EXPECT_EQ(spec.label(), name);
    const auto parsed = procsim::core::parse_allocator_spec(spec.label());
    ASSERT_TRUE(parsed.has_value()) << spec.label();
    EXPECT_EQ(parsed->label(), spec.label());
    EXPECT_TRUE(*parsed == spec);
    const auto a = procsim::core::make_allocator(spec, Geometry(8, 8), 1);
    EXPECT_EQ(a->name(), spec.label());
  }
  // Case-insensitive input normalizes; unknown names don't parse.
  EXPECT_EQ(procsim::core::parse_allocator_spec("bestfit")->label(), "BestFit");
  EXPECT_FALSE(procsim::core::parse_allocator_spec("NoSuch").has_value());
}

TEST(SchedRegistry, PolicyNamesRoundTrip) {
  // Satellite: to_string and make_scheduler parsing share kPolicyNames, so
  // every policy's printed name must parse back to the same policy and the
  // constructed scheduler must report it verbatim.
  for (const auto& [policy, name] : procsim::sched::kPolicyNames) {
    EXPECT_EQ(procsim::sched::to_string(policy), std::string(name));
    const auto parsed = procsim::sched::parse_policy(name);
    ASSERT_TRUE(parsed.has_value()) << name;
    EXPECT_EQ(*parsed, policy);
    const auto s = procsim::sched::make_scheduler(std::string(name));
    EXPECT_EQ(s->name(), name);
  }
}

TEST(SchedRegistry, ParseIsCaseInsensitiveAndTotal) {
  EXPECT_EQ(procsim::sched::parse_policy("fcfs"),
            std::optional(procsim::sched::Policy::kFcfs));
  EXPECT_EQ(procsim::sched::parse_policy("ssd"),
            std::optional(procsim::sched::Policy::kSsd));
  EXPECT_FALSE(procsim::sched::parse_policy("LIFO").has_value());
  EXPECT_THROW((void)procsim::sched::make_scheduler(std::string("LIFO")),
               std::invalid_argument);
  // Ordered policies + lookahead:<k> + backfill.
  EXPECT_EQ(procsim::sched::known_schedulers().size(),
            procsim::sched::kPolicyNames.size() + 2);
}

TEST(SchedRegistry, SpecGrammarCanonicalisesAndRoundTrips) {
  using procsim::sched::parse_sched_spec;
  // Case-insensitive, canonical spelling, default lookahead window.
  EXPECT_EQ(parse_sched_spec("Backfill")->canonical, "backfill");
  EXPECT_EQ(parse_sched_spec("LOOKAHEAD:8")->canonical, "lookahead:8");
  EXPECT_EQ(parse_sched_spec("lookahead")->canonical, "lookahead:4");
  EXPECT_EQ(parse_sched_spec("fcfs")->canonical, "FCFS");
  // Bad windows fail to parse.
  EXPECT_FALSE(parse_sched_spec("lookahead:0").has_value());
  EXPECT_FALSE(parse_sched_spec("lookahead:-1").has_value());
  EXPECT_FALSE(parse_sched_spec("lookahead:x").has_value());
  EXPECT_FALSE(parse_sched_spec("lookahead:").has_value());
  // Backfill variants: ":easy" canonicalises away, ":conservative" and
  // ";shape" survive, bad variants fail to parse.
  EXPECT_EQ(parse_sched_spec("backfill:easy")->canonical, "backfill");
  EXPECT_EQ(parse_sched_spec("Backfill:Conservative")->canonical,
            "backfill:conservative");
  EXPECT_EQ(parse_sched_spec("backfill;SHAPE")->canonical, "backfill;shape");
  EXPECT_EQ(parse_sched_spec("backfill:conservative;shape")->canonical,
            "backfill:conservative;shape");
  EXPECT_FALSE(parse_sched_spec("backfill:bogus").has_value());
  EXPECT_FALSE(parse_sched_spec("backfill;").has_value());
  EXPECT_FALSE(parse_sched_spec("backfill;shape;shape").has_value());
  EXPECT_FALSE(parse_sched_spec("FCFS;shape").has_value());
  EXPECT_FALSE(parse_sched_spec("lookahead:4;shape").has_value());
  // Every spec round-trips through the factory: name() is the canonical spec.
  for (const char* spec : {"FCFS", "SSD", "SJF", "LJF", "lookahead:4",
                           "lookahead:16", "backfill", "backfill:conservative",
                           "backfill;shape", "backfill:conservative;shape"}) {
    const auto parsed = parse_sched_spec(spec);
    ASSERT_TRUE(parsed.has_value()) << spec;
    const auto s = procsim::sched::make_scheduler(*parsed);
    EXPECT_EQ(s->name(), parsed->canonical);
    const auto again = parse_sched_spec(s->name());
    ASSERT_TRUE(again.has_value()) << s->name();
    EXPECT_EQ(again->canonical, parsed->canonical);
  }
}

}  // namespace
