// The per-job metrics pipeline: P² sketch accuracy against an exact sort,
// the starvation report on a hand-built schedule, and the observation-only
// contract — attaching a MetricsSink to SystemSim changes nothing about the
// simulation while the record stream reproduces the aggregate statistics.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "alloc/gabl.hpp"
#include "core/experiment.hpp"
#include "core/metrics_sink.hpp"
#include "core/system_sim.hpp"
#include "des/distributions.hpp"
#include "des/rng.hpp"
#include "sched/ordered_scheduler.hpp"
#include "stats/job_metrics.hpp"
#include "stats/quantile_sketch.hpp"
#include "workload/stochastic.hpp"

namespace {

using procsim::core::JobRecord;
using procsim::stats::JobMetrics;
using procsim::stats::JobMetricsConfig;
using procsim::stats::P2Quantile;

double exact_quantile(std::vector<double> xs, double p) {
  std::sort(xs.begin(), xs.end());
  const auto rank = static_cast<std::size_t>(p * static_cast<double>(xs.size()));
  return xs[std::min(rank, xs.size() - 1)];
}

// ------------------------------------------------------------- P² sketch

TEST(P2Quantile, EmptySketchIsNaN) {
  EXPECT_TRUE(std::isnan(P2Quantile(0.5).estimate()));
}

TEST(P2Quantile, TinyStreamsAreExactOrderStatistics) {
  // Below five observations the markers are the sorted sample itself.
  P2Quantile median(0.5);
  median.add(7);
  EXPECT_EQ(median.estimate(), 7);
  median.add(1);
  median.add(9);
  EXPECT_EQ(median.estimate(), 7);  // sorted {1,7,9}, rank ceil(0.5*3)=1
  P2Quantile p99(0.99);
  for (const double x : {5.0, 3.0, 4.0, 1.0}) p99.add(x);
  EXPECT_EQ(p99.estimate(), 5.0);  // rank 3 of sorted {1,3,4,5}
}

TEST(P2Quantile, TracksUniformStreamWithinTolerance) {
  procsim::des::Xoshiro256SS rng(42);
  std::vector<double> xs;
  P2Quantile p50(0.5), p95(0.95), p99(0.99);
  for (int i = 0; i < 10000; ++i) {
    const double x = procsim::des::sample_uniform(rng, 0.0, 1000.0);
    xs.push_back(x);
    p50.add(x);
    p95.add(x);
    p99.add(x);
  }
  // Uniform[0,1000]: the exact quantiles are ~500/950/990; P² stays within
  // a few percent of the exact sort on this scale of stream.
  EXPECT_NEAR(p50.estimate(), exact_quantile(xs, 0.50), 25.0);
  EXPECT_NEAR(p95.estimate(), exact_quantile(xs, 0.95), 25.0);
  EXPECT_NEAR(p99.estimate(), exact_quantile(xs, 0.99), 25.0);
}

TEST(P2Quantile, TracksHeavyTailedStreamWithinRelativeTolerance) {
  procsim::des::Xoshiro256SS rng(7);
  std::vector<double> xs;
  P2Quantile p95(0.95);
  for (int i = 0; i < 20000; ++i) {
    const double x = procsim::des::sample_exponential(rng, 100.0);
    xs.push_back(x);
    p95.add(x);
  }
  const double exact = exact_quantile(xs, 0.95);  // ~ 300 for mean 100
  EXPECT_NEAR(p95.estimate(), exact, 0.10 * exact);
}

TEST(P2Quantile, DeterministicForIdenticalStreams) {
  P2Quantile a(0.95), b(0.95);
  procsim::des::Xoshiro256SS rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double x = procsim::des::sample_uniform(rng, 0.0, 1.0);
    a.add(x);
    b.add(x);
  }
  EXPECT_EQ(a.estimate(), b.estimate());
}

// ----------------------------------------------------------- JobMetrics

JobRecord record(std::uint64_t id, double arrival, double start, double finish) {
  JobRecord r;
  r.id = id;
  r.arrival = arrival;
  r.start = start;
  r.finish = finish;
  return r;
}

TEST(JobMetrics, EmptyRunYieldsZeroSummariesAndNoStarvation) {
  const JobMetrics m;
  EXPECT_EQ(m.wait().count, 0u);
  EXPECT_EQ(m.wait().p99, 0.0);
  EXPECT_EQ(m.starvation().count(), 0u);
}

TEST(JobMetrics, StarvationReportOnHandBuiltSchedule) {
  // Nine jobs wait 1..9; two pathological ones wait 50 and 80. The median
  // wait sits around 5-6, so with k = 4 the threshold is ~20-26: exactly the
  // two pathological jobs are flagged, identity and all.
  JobMetricsConfig cfg;
  cfg.starvation_factor = 4.0;
  JobMetrics m(cfg);
  for (int i = 1; i <= 9; ++i)
    m.on_job(record(static_cast<std::uint64_t>(i), 0, i, i + 10));
  m.on_job(record(50, 2, 52, 60));
  m.on_job(record(80, 3, 83, 90));

  const auto report = m.starvation();
  EXPECT_GE(report.median_wait, 4.0);
  EXPECT_LE(report.median_wait, 7.0);
  EXPECT_EQ(report.threshold, cfg.starvation_factor * report.median_wait);
  ASSERT_EQ(report.count(), 2u);
  EXPECT_EQ(report.jobs[0].id, 50u);
  EXPECT_EQ(report.jobs[0].wait, 50.0);
  EXPECT_EQ(report.jobs[0].arrival, 2.0);
  EXPECT_EQ(report.jobs[1].id, 80u);
  EXPECT_EQ(report.jobs[1].wait, 80.0);
}

TEST(JobMetrics, NoStarvationWhenWaitsAreHomogeneous) {
  JobMetrics m;
  for (int i = 0; i < 100; ++i)
    m.on_job(record(static_cast<std::uint64_t>(i), 0, 10, 20));
  EXPECT_EQ(m.starvation().count(), 0u);  // every wait equals the median
  EXPECT_EQ(m.wait().p50, 10.0);
  EXPECT_EQ(m.wait().max, 10.0);
}

TEST(JobMetrics, BoundedSlowdownUsesTheRuntimeFloor) {
  JobRecord r = record(1, 0, 10, 10.5);  // wait 10, service 0.5
  EXPECT_EQ(r.bounded_slowdown(1.0), 10.5);       // floor kicks in: 10.5 / 1
  EXPECT_EQ(r.bounded_slowdown(0.25), 21.0);      // 10.5 / 0.5
  JobRecord instant = record(2, 5, 5, 6);         // no wait, service 1
  EXPECT_EQ(instant.bounded_slowdown(1.0), 1.0);  // never below 1
}

TEST(JobMetrics, QuantilesMatchExactSortOnSmallStreams) {
  // 200 records with deterministic heterogeneous waits: sketch vs sort.
  procsim::des::Xoshiro256SS rng(11);
  JobMetrics m;
  std::vector<double> waits;
  for (int i = 0; i < 200; ++i) {
    const double wait = procsim::des::sample_uniform(rng, 0.0, 100.0);
    waits.push_back(wait);
    m.on_job(record(static_cast<std::uint64_t>(i), 0, wait, wait + 5));
  }
  EXPECT_EQ(m.wait().count, 200u);
  EXPECT_EQ(m.wait().max, *std::max_element(waits.begin(), waits.end()));
  EXPECT_NEAR(m.wait().p50, exact_quantile(waits, 0.50), 5.0);
  EXPECT_NEAR(m.wait().p95, exact_quantile(waits, 0.95), 5.0);
  EXPECT_NEAR(m.wait().p99, exact_quantile(waits, 0.99), 5.0);
}

// ------------------------------------------- SystemSim record emission

procsim::core::RunMetrics run_with(procsim::core::MetricsSink* sink,
                                   JobMetrics* metrics_out = nullptr) {
  const procsim::mesh::Geometry geom(8, 8);
  procsim::des::Xoshiro256SS rng(21);
  procsim::workload::StochasticParams params;
  params.load = 0.08;
  const auto jobs = procsim::workload::generate_stochastic(params, geom, 150, rng);
  procsim::core::SystemConfig cfg;
  cfg.geom = geom;
  cfg.target_completions = 120;
  procsim::alloc::GablAllocator alloc(geom);
  procsim::sched::OrderedScheduler sched(procsim::sched::Policy::kFcfs);
  procsim::core::SystemSim sim(cfg, alloc, sched);
  sim.set_metrics_sink(sink);
  const auto m = sim.run(jobs);
  if (metrics_out != nullptr && sink != nullptr)
    *metrics_out = *static_cast<JobMetrics*>(sink);
  return m;
}

TEST(MetricsSink, AttachingASinkIsObservationOnly) {
  const auto without = run_with(nullptr);
  JobMetrics sink;
  const auto with = run_with(&sink);
  // Bitwise-identical simulation either way.
  EXPECT_EQ(without.events, with.events);
  EXPECT_EQ(without.completed, with.completed);
  EXPECT_EQ(without.makespan, with.makespan);
  EXPECT_EQ(without.turnaround.mean(), with.turnaround.mean());
  EXPECT_EQ(without.service.mean(), with.service.mean());
  EXPECT_EQ(without.utilization, with.utilization);
}

TEST(MetricsSink, RecordStreamReproducesTheAggregates) {
  JobMetrics sink;
  const auto m = run_with(&sink);
  EXPECT_EQ(sink.completed(), m.completed);
  // The record-derived turnaround moments equal the Welford aggregates the
  // simulator keeps independently: same jobs, same instants.
  EXPECT_DOUBLE_EQ(sink.turnaround().mean, m.turnaround.mean());
  EXPECT_DOUBLE_EQ(sink.turnaround().max, m.turnaround.max());
  // Waits are non-negative and start <= finish for every record (spot-check
  // through the quantile summary invariants).
  EXPECT_GE(sink.wait().p50, 0.0);
  EXPECT_LE(sink.wait().p50, sink.wait().max);
}

TEST(MetricsSink, RunOnceExposesJobDistributions) {
  procsim::core::ExperimentConfig cfg;
  cfg.sys.geom = procsim::mesh::Geometry(8, 8);
  cfg.sys.target_completions = 100;
  cfg.workload.kind = procsim::core::WorkloadKind::kStochastic;
  cfg.workload.job_count = 120;
  cfg.workload.stochastic.load = 0.08;
  cfg.seed = 5;
  const auto m = procsim::core::run_once(cfg);
  EXPECT_EQ(m.jobs.wait.count, m.completed);
  EXPECT_EQ(m.jobs.turnaround.count, m.completed);
  EXPECT_GE(m.jobs.slowdown.p50, 1.0);  // bounded slowdown is floored at 1
  const auto obs = procsim::core::to_observations(m);
  EXPECT_EQ(obs.at("wait_p95"), m.jobs.wait.p95);
  EXPECT_EQ(obs.at("slowdown_p99"), m.jobs.slowdown.p99);
  EXPECT_EQ(obs.at("starved"), m.jobs.starved);
  // The stopping-rule gate is exactly the pre-analytics observation set.
  for (const std::string& name : procsim::core::precision_observation_names())
    EXPECT_TRUE(obs.count(name)) << name;
  EXPECT_EQ(procsim::core::precision_observation_names().size(), 7u);
}

}  // namespace
