#include <gtest/gtest.h>

#include <sstream>

#include "alloc/registry.hpp"
#include "core/experiment.hpp"
#include "core/figure_runner.hpp"

namespace {

using procsim::core::AggregateResult;
using procsim::core::AllocatorSpec;
using procsim::core::build_jobs;
using procsim::core::ExperimentConfig;
using procsim::core::FigureSpec;
using procsim::core::make_allocator;
using procsim::core::make_scheduler;
using procsim::core::paper_series;
using procsim::core::run_figure;
using procsim::core::run_once;
using procsim::core::run_replicated;
using procsim::core::RunMetrics;
using procsim::core::RunOptions;
using procsim::core::WorkloadKind;
using procsim::mesh::Geometry;

TEST(Factories, AllKnownAllocatorsConstructible) {
  for (const auto& name : procsim::alloc::known_allocators()) {
    const AllocatorSpec spec{name};
    const auto a = make_allocator(spec, Geometry(8, 8), 1);
    ASSERT_NE(a, nullptr);
    EXPECT_EQ(a->free_processors(), 64);
    EXPECT_EQ(a->name(), spec.label());
  }
}

TEST(Factories, AllocatorSpecValidatesAndNormalizes) {
  EXPECT_EQ(AllocatorSpec{"gabl"}.label(), "GABL");
  EXPECT_EQ(AllocatorSpec{"paging(2)"}.label(), "Paging(2)");
  EXPECT_THROW(AllocatorSpec{"no_such_allocator"}, std::invalid_argument);
  EXPECT_EQ(AllocatorSpec{}.label(), "GABL");  // default
}

TEST(Factories, SeriesLabels) {
  ExperimentConfig cfg;
  cfg.allocator = AllocatorSpec{"Paging(0)"};
  cfg.scheduler = procsim::sched::Policy::kSsd;
  EXPECT_EQ(cfg.series_label(), "Paging(0)(SSD)");
  cfg.allocator = AllocatorSpec{"GABL"};
  cfg.scheduler = procsim::sched::Policy::kFcfs;
  EXPECT_EQ(cfg.series_label(), "GABL(FCFS)");
}

TEST(Factories, PaperSeriesIsSixStrategyPairs) {
  const auto series = paper_series();
  ASSERT_EQ(series.size(), 6u);
}

TEST(BuildJobs, StochasticCountAndSorting) {
  procsim::core::WorkloadSpec spec;
  spec.kind = WorkloadKind::kStochastic;
  spec.job_count = 50;
  spec.stochastic.load = 0.01;
  const auto jobs = build_jobs(spec, Geometry(16, 22), 8, 7);
  ASSERT_EQ(jobs.size(), 50u);
  for (std::size_t i = 1; i < jobs.size(); ++i)
    EXPECT_GE(jobs[i].arrival, jobs[i - 1].arrival);
}

TEST(BuildJobs, TraceLoadControlsMeanInterarrival) {
  procsim::core::WorkloadSpec spec;
  spec.kind = WorkloadKind::kTrace;
  spec.load = 0.01;
  spec.paragon.jobs = 4000;
  const auto jobs = build_jobs(spec, Geometry(16, 22), 8, 7);
  ASSERT_EQ(jobs.size(), 4000u);
  const double mean_ia = jobs.back().arrival / static_cast<double>(jobs.size() - 1);
  EXPECT_NEAR(mean_ia, 100.0, 10.0);  // 1/load
}

TEST(RunOnce, ProducesConsistentMetrics) {
  ExperimentConfig cfg;
  cfg.sys.geom = Geometry(16, 22);
  cfg.sys.target_completions = 100;
  cfg.workload.kind = WorkloadKind::kStochastic;
  cfg.workload.job_count = 100;
  cfg.workload.stochastic.load = 0.01;
  cfg.seed = 3;
  const RunMetrics m = run_once(cfg);
  EXPECT_EQ(m.completed, 100u);
  EXPECT_GT(m.turnaround.mean(), 0);
  EXPECT_GE(m.turnaround.mean(), m.service.mean());  // wait >= 0
  EXPECT_GT(m.packet_latency.mean(), 0);
  EXPECT_GE(m.packet_latency.mean(), m.packet_blocking.mean());
  EXPECT_GT(m.utilization, 0);
  EXPECT_LE(m.utilization, 1.0);
  EXPECT_GT(m.packets, 0u);
}

TEST(RunOnce, SameSeedSameResults) {
  ExperimentConfig cfg;
  cfg.sys.target_completions = 60;
  cfg.workload.job_count = 60;
  cfg.workload.stochastic.load = 0.02;
  cfg.seed = 11;
  const RunMetrics a = run_once(cfg);
  const RunMetrics b = run_once(cfg);
  EXPECT_DOUBLE_EQ(a.turnaround.mean(), b.turnaround.mean());
  EXPECT_DOUBLE_EQ(a.utilization, b.utilization);
}

TEST(RunOnce, DifferentSeedsDiffer) {
  ExperimentConfig cfg;
  cfg.sys.target_completions = 60;
  cfg.workload.job_count = 60;
  cfg.workload.stochastic.load = 0.02;
  cfg.seed = 11;
  const RunMetrics a = run_once(cfg);
  cfg.seed = 12;
  const RunMetrics b = run_once(cfg);
  EXPECT_NE(a.turnaround.mean(), b.turnaround.mean());
}

TEST(Replicated, RunsAtLeastMinAndReportsIntervals) {
  ExperimentConfig cfg;
  cfg.sys.target_completions = 40;
  cfg.workload.job_count = 40;
  cfg.workload.stochastic.load = 0.01;
  procsim::stats::ReplicationPolicy policy;
  policy.min_replications = 2;
  policy.max_replications = 3;
  const AggregateResult res = run_replicated(cfg, policy);
  EXPECT_GE(res.replications, 2u);
  EXPECT_LE(res.replications, 3u);
  ASSERT_TRUE(res.metrics.contains("turnaround"));
  ASSERT_TRUE(res.metrics.contains("utilization"));
  EXPECT_GT(res.metrics.at("turnaround").mean, 0);
}

TEST(FigureRunner, EmitsCsvWithAllSeries) {
  FigureSpec spec;
  spec.id = "figtest";
  spec.title = "test figure";
  spec.metric = "turnaround";
  spec.loads = {0.005, 0.01};
  spec.series = paper_series();
  spec.base.sys.target_completions = 30;
  spec.base.workload.kind = WorkloadKind::kStochastic;
  spec.base.workload.job_count = 30;

  RunOptions opts;
  opts.fast = true;
  opts.min_reps = opts.max_reps = 1;

  std::ostringstream out;
  run_figure(spec, opts, out);
  const std::string text = out.str();
  EXPECT_NE(text.find("# figtest"), std::string::npos);
  EXPECT_NE(text.find("GABL(FCFS)"), std::string::npos);
  EXPECT_NE(text.find("MBS(SSD)"), std::string::npos);
  // Two header comment lines + column header + 2 data rows.
  int rows = 0;
  for (const char c : text)
    if (c == '\n') ++rows;
  EXPECT_EQ(rows, 5);
}

TEST(FigureRunner, ParseRunOptions) {
  const char* argv[] = {"bench", "--fast", "--jobs=123", "--seed=9"};
  const RunOptions opts =
      procsim::core::parse_run_options(4, const_cast<char**>(argv));
  EXPECT_TRUE(opts.fast);
  EXPECT_EQ(opts.jobs, 123u);
  EXPECT_EQ(opts.seed, 9u);
  EXPECT_EQ(opts.max_reps, 1u);  // fast forces single rep
}

TEST(FigureRunner, UnknownMetricThrows) {
  FigureSpec spec;
  spec.id = "bad";
  spec.metric = "no_such_metric";
  spec.loads = {0.01};
  spec.series = {paper_series()[0]};
  spec.base.sys.target_completions = 10;
  spec.base.workload.job_count = 10;
  RunOptions opts;
  opts.fast = true;
  std::ostringstream out;
  EXPECT_THROW(run_figure(spec, opts, out), std::logic_error);
}

}  // namespace
