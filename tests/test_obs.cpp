// The observability contract, pinned:
//  * attaching an obs::Recorder never changes a simulated trajectory
//    (to_observations bit-identical attached vs detached);
//  * the trace formats round-trip losslessly (binary <-> memory, JSONL <->
//    memory, including awkward doubles);
//  * the counter registry's tallies agree with the run's own metrics.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "core/job_record_store.hpp"
#include "obs/counters.hpp"
#include "obs/gauge_sampler.hpp"
#include "obs/recorder.hpp"
#include "obs/trace.hpp"
#include "sched/registry.hpp"

namespace {

using procsim::core::ExperimentConfig;
using procsim::core::JobRecordStore;
using procsim::core::RunMetrics;
using procsim::core::run_once;
using procsim::core::run_probed;
using procsim::core::to_observations;
using procsim::obs::GaugeSampler;
using procsim::obs::Recorder;
using procsim::obs::TraceBuffer;
using procsim::obs::TraceKind;
using procsim::obs::TraceRecord;

ExperimentConfig small_config(std::uint64_t seed = 7) {
  ExperimentConfig cfg;
  cfg.sys.target_completions = 80;
  cfg.workload.job_count = 80;
  cfg.workload.stochastic.load = 0.02;
  cfg.seed = seed;
  return cfg;
}

std::vector<TraceRecord> awkward_records() {
  std::vector<TraceRecord> recs;
  TraceRecord a;
  a.t = 1.0 / 3.0;  // not exactly representable in any short decimal
  a.v = 1e300;
  a.v2 = -0.0;
  a.id = 0xFFFF'FFFF'FFFF'FFFFull;
  a.kind = static_cast<std::uint32_t>(TraceKind::kPacketDeliver);
  a.a = 4294967295u;
  a.f0 = -2147483647 - 1;
  a.f1 = 2147483647;
  a.f2 = -1;
  a.f3 = 0;
  recs.push_back(a);
  TraceRecord b;
  b.t = 4.9406564584124654e-324;  // smallest subnormal
  b.kind = static_cast<std::uint32_t>(TraceKind::kArrival);
  recs.push_back(b);
  TraceRecord c;  // all-default fields, smallest valid kind
  c.kind = static_cast<std::uint32_t>(TraceKind::kArrival);
  recs.push_back(c);
  return recs;
}

// ---------------------------------------------------------------- formats --

TEST(Trace, KindNamesRoundTrip) {
  for (std::uint32_t k = 1; k <= 12; ++k) {
    const auto kind = static_cast<TraceKind>(k);
    const std::string name = procsim::obs::kind_name(kind);
    EXPECT_NE(name, "unknown") << k;
    TraceKind back{};
    ASSERT_TRUE(procsim::obs::kind_from_name(name, back)) << name;
    EXPECT_EQ(back, kind);
  }
  TraceKind out{};
  EXPECT_FALSE(procsim::obs::kind_from_name("no_such_kind", out));
  EXPECT_STREQ(procsim::obs::kind_name(static_cast<TraceKind>(999)), "unknown");
}

TEST(Trace, BinaryRoundTripIsLossless) {
  TraceBuffer buf;
  for (const TraceRecord& r : awkward_records()) buf.append(r);
  std::stringstream io(std::ios::in | std::ios::out | std::ios::binary);
  procsim::obs::write_binary(buf, io);
  std::vector<TraceRecord> back;
  std::string error;
  ASSERT_TRUE(procsim::obs::read_binary(io, back, &error)) << error;
  ASSERT_EQ(back.size(), buf.size());
  for (std::size_t i = 0; i < back.size(); ++i) EXPECT_EQ(back[i], buf.records()[i]);
  // -0.0 == 0.0 under operator==; pin the sign bit explicitly.
  EXPECT_TRUE(std::signbit(back[0].v2));
}

TEST(Trace, BinaryReaderRejectsCorruptStreams) {
  TraceBuffer buf;
  buf.append(TraceRecord{1.0, 0, 0, 1, 1, 0, 0, 0, 0, 0});
  std::stringstream io(std::ios::in | std::ios::out | std::ios::binary);
  procsim::obs::write_binary(buf, io);
  std::string bytes = io.str();

  std::vector<TraceRecord> out;
  std::string error;
  {  // truncated payload
    std::stringstream cut(bytes.substr(0, bytes.size() - 8),
                          std::ios::in | std::ios::binary);
    EXPECT_FALSE(procsim::obs::read_binary(cut, out, &error));
    EXPECT_FALSE(error.empty());
  }
  {  // bad magic
    std::string mangled = bytes;
    mangled[0] = 'X';
    std::stringstream bad(mangled, std::ios::in | std::ios::binary);
    EXPECT_FALSE(procsim::obs::read_binary(bad, out, &error));
  }
  {  // header alone, no records
    std::stringstream cut(bytes.substr(0, 10), std::ios::in | std::ios::binary);
    EXPECT_FALSE(procsim::obs::read_binary(cut, out, &error));
  }
}

TEST(Trace, JsonlRoundTripIsLossless) {
  const std::vector<TraceRecord> recs = awkward_records();
  std::stringstream io;
  procsim::obs::write_jsonl(recs, io);
  std::vector<TraceRecord> back;
  std::string error;
  ASSERT_TRUE(procsim::obs::read_jsonl(io, back, &error)) << error;
  ASSERT_EQ(back.size(), recs.size());
  for (std::size_t i = 0; i < back.size(); ++i) {
    EXPECT_EQ(back[i], recs[i]) << i;
    EXPECT_EQ(std::signbit(back[i].v2), std::signbit(recs[i].v2)) << i;
  }
}

TEST(Trace, JsonlReaderRejectsMalformedLines) {
  std::stringstream bad("{\"t\":1.0,\"kind\":\"arrival\"\n");
  std::vector<TraceRecord> out;
  std::string error;
  EXPECT_FALSE(procsim::obs::read_jsonl(bad, out, &error));
  EXPECT_FALSE(error.empty());
}

TEST(Trace, ChromeTraceLooksLikeTraceEvents) {
  std::vector<TraceRecord> recs;
  recs.push_back({0.0, 0, 0, 0, static_cast<std::uint32_t>(TraceKind::kPassBegin),
                  1, 0, 0, 0, 0});
  recs.push_back({2.0, 0, 0, 0, static_cast<std::uint32_t>(TraceKind::kPassEnd), 3,
                  1, 1, 0, 0});
  recs.push_back({2.0, 6.0, 0, 42, static_cast<std::uint32_t>(TraceKind::kAllocSuccess),
                  1, 0, 0, 2, 3});
  recs.push_back({9.0, 7.0, 0, 42, static_cast<std::uint32_t>(TraceKind::kComplete),
                  0, 0, 0, 0, 0});
  std::stringstream out;
  procsim::obs::write_chrome_trace(recs, out);
  const std::string s = out.str();
  // Object wrapper format: {"traceEvents": [...]} (chrome://tracing loads it).
  EXPECT_EQ(s.front(), '{');
  EXPECT_NE(s.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(s.find("\"ph\":\"B\""), std::string::npos);
  EXPECT_NE(s.find("\"ph\":\"E\""), std::string::npos);
  EXPECT_NE(s.find("job 42"), std::string::npos);
  EXPECT_EQ(s.back() == '\n' ? s[s.size() - 2] : s.back(), '}');
}

// --------------------------------------------------------------- sampler ---

TEST(GaugeSamplerT, RejectsNonPositiveInterval) {
  EXPECT_THROW(GaugeSampler(0.0), std::invalid_argument);
  EXPECT_THROW(GaugeSampler(-1.0), std::invalid_argument);
}

TEST(GaugeSamplerT, StoresAndExportsSamples) {
  GaugeSampler s(10.0);
  EXPECT_DOUBLE_EQ(s.interval(), 10.0);
  GaugeSampler::Sample a;
  a.t = 10;
  a.queue_depth = 3;
  a.running_jobs = 2;
  a.busy_nodes = 64;
  a.free_nodes = 288;
  a.max_free_run = 16;
  a.largest_rect = 224;
  a.external_frag = 1.0 - 224.0 / 288.0;
  s.append(a);
  ASSERT_EQ(s.size(), 1u);
  const GaugeSampler::Sample back = s.sample(0);
  EXPECT_DOUBLE_EQ(back.t, a.t);
  EXPECT_EQ(back.queue_depth, a.queue_depth);
  EXPECT_EQ(back.largest_rect, a.largest_rect);
  EXPECT_DOUBLE_EQ(back.external_frag, a.external_frag);

  std::stringstream csv;
  s.write_csv(csv);
  std::string header;
  ASSERT_TRUE(std::getline(csv, header));
  EXPECT_EQ(header, GaugeSampler::kCsvHeader);
  std::string row;
  ASSERT_TRUE(std::getline(csv, row));
  EXPECT_EQ(row.substr(0, 9), "10,3,2,64");

  s.clear();
  EXPECT_TRUE(s.empty());
}

// -------------------------------------------------------------- counters ---

TEST(CountersT, JsonHasFixedShapeAndExtras) {
  procsim::obs::Counters c;
  c.jobs_arrived = 5;
  c.schedule_passes = 2;
  c.add_extra("backfill_reservations_honored", 3);
  c.add_timer("run_wall_s", 0.25);
  std::stringstream out;
  c.write_json(out);
  const std::string s = out.str();
  EXPECT_NE(s.find("\"jobs_arrived\": 5"), std::string::npos);
  EXPECT_NE(s.find("\"schedule_passes\": 2"), std::string::npos);
  EXPECT_NE(s.find("backfill_reservations_honored"), std::string::npos);
  EXPECT_NE(s.find("run_wall_s"), std::string::npos);
  c.reset();
  EXPECT_EQ(c.jobs_arrived, 0u);
  EXPECT_TRUE(c.extras.empty());
  EXPECT_TRUE(c.timers.empty());
}

TEST(RecorderT, HooksTallyAndTraceIsOptIn) {
  Recorder rec;
  EXPECT_EQ(rec.trace(), nullptr);
  EXPECT_EQ(rec.sampler(), nullptr);
  rec.job_arrival(1.0, 1, 4, 4, 16);
  EXPECT_EQ(rec.counters().jobs_arrived, 1u);

  rec.enable_trace();
  ASSERT_NE(rec.trace(), nullptr);
  rec.job_arrival(2.0, 2, 4, 4, 16);
  rec.alloc_attempt(4, 4, 16);  // untimed hook stamps the last seen time
  ASSERT_EQ(rec.trace()->size(), 2u);
  EXPECT_DOUBLE_EQ(rec.trace()->records()[1].t, 2.0);

  rec.enable_telemetry(50.0);
  ASSERT_NE(rec.sampler(), nullptr);
  EXPECT_DOUBLE_EQ(rec.sampler()->interval(), 50.0);

  rec.reset_run();
  EXPECT_EQ(rec.counters().jobs_arrived, 0u);
  ASSERT_NE(rec.trace(), nullptr);  // enablement survives, data does not
  EXPECT_TRUE(rec.trace()->empty());
  EXPECT_TRUE(rec.sampler()->empty());
}

// ------------------------------------------------------------- invariance --

TEST(Invariance, ObsProbeLeavesObservationsBitIdentical) {
  ExperimentConfig cfg = small_config();
  const std::map<std::string, double> detached = to_observations(run_once(cfg));
  cfg.obs_probe = true;
  const std::map<std::string, double> probed = to_observations(run_once(cfg));
  EXPECT_EQ(detached, probed);  // bitwise: operator== on doubles
}

TEST(Invariance, TraceOnlyRecorderLeavesEveryMetricIdentical) {
  const ExperimentConfig cfg = small_config(11);
  const RunMetrics off = run_once(cfg);

  Recorder rec;
  rec.enable_trace();
  const RunMetrics on = run_probed(cfg, &rec, nullptr);

  EXPECT_EQ(off.completed, on.completed);
  EXPECT_EQ(off.packets, on.packets);
  EXPECT_EQ(off.events, on.events);  // no sampler -> no extra events either
  EXPECT_EQ(off.turnaround.mean(), on.turnaround.mean());
  EXPECT_EQ(off.service.mean(), on.service.mean());
  EXPECT_EQ(off.packet_latency.mean(), on.packet_latency.mean());
  EXPECT_EQ(off.utilization, on.utilization);
  EXPECT_EQ(off.makespan, on.makespan);
  EXPECT_FALSE(rec.trace()->empty());
}

TEST(Invariance, TelemetryChangesOnlyTheEventCount) {
  const ExperimentConfig cfg = small_config(13);
  const RunMetrics off = run_once(cfg);

  Recorder rec;
  rec.enable_telemetry(100.0);
  const RunMetrics on = run_probed(cfg, &rec, nullptr);

  EXPECT_EQ(off.completed, on.completed);
  EXPECT_EQ(off.turnaround.mean(), on.turnaround.mean());
  EXPECT_EQ(off.utilization, on.utilization);
  EXPECT_EQ(off.makespan, on.makespan);
  EXPECT_GE(on.events, off.events);  // sampler events ride along harmlessly

  ASSERT_NE(rec.sampler(), nullptr);
  ASSERT_FALSE(rec.sampler()->empty());
  EXPECT_EQ(rec.counters().telemetry_samples, rec.sampler()->size());
  double prev = -1;
  for (std::size_t i = 0; i < rec.sampler()->size(); ++i) {
    const GaugeSampler::Sample s = rec.sampler()->sample(i);
    EXPECT_GT(s.t, prev);
    prev = s.t;
    EXPECT_GE(s.external_frag, 0.0);
    EXPECT_LE(s.external_frag, 1.0);
    EXPECT_EQ(s.busy_nodes + s.free_nodes, 16 * 22);
  }
}

// ------------------------------------------------------------- accounting --

TEST(Accounting, CountersAgreeWithRunMetrics) {
  const ExperimentConfig cfg = small_config(17);
  Recorder rec;
  rec.enable_trace();
  const RunMetrics m = run_probed(cfg, &rec, nullptr);
  const procsim::obs::Counters& c = rec.counters();

  EXPECT_EQ(c.jobs_completed, m.completed);
  EXPECT_EQ(c.jobs_released, c.jobs_completed);
  EXPECT_EQ(c.jobs_started, c.alloc_successes);
  EXPECT_GE(c.jobs_arrived, c.jobs_started);
  EXPECT_EQ(c.packets_delivered, m.packets);
  EXPECT_GE(c.packets_injected, c.packets_delivered);
  EXPECT_GT(c.schedule_passes, 0u);
  // FCFS always nominates the head and never consults the probe.
  EXPECT_EQ(c.probe_calls, 0u);
  EXPECT_EQ(c.nominations, c.alloc_attempts);  // every nominee is attempted
  EXPECT_EQ(c.alloc_attempts, c.alloc_successes + c.alloc_failures);
  EXPECT_EQ(c.sim_events, m.events);
  EXPECT_GT(c.index_first_fit_queries, 0u);  // GABL probes via the index

  // Trace agrees with the registry where both saw the same stream.
  std::uint64_t completes = 0, arrivals = 0;
  for (const TraceRecord& r : rec.trace()->records()) {
    if (r.kind == static_cast<std::uint32_t>(TraceKind::kComplete)) ++completes;
    if (r.kind == static_cast<std::uint32_t>(TraceKind::kArrival)) ++arrivals;
  }
  EXPECT_EQ(completes, c.jobs_completed);
  EXPECT_EQ(arrivals, c.jobs_arrived);
}

TEST(Accounting, PhaseTimersAreOptIn) {
  const ExperimentConfig cfg = small_config(19);
  Recorder plain;
  (void)run_probed(cfg, &plain, nullptr);
  EXPECT_TRUE(plain.counters().timers.empty());

  Recorder timed;
  timed.enable_phase_timers();
  (void)run_probed(cfg, &timed, nullptr);
  ASSERT_FALSE(timed.counters().timers.empty());
  EXPECT_EQ(timed.counters().timers.front().first, "run_wall_s");
  EXPECT_GE(timed.counters().timers.front().second, 0.0);
}

TEST(Accounting, BackfillExportsReservationCounters) {
  ExperimentConfig cfg = small_config(23);
  cfg.scheduler = procsim::sched::SchedSpec(std::string("backfill"));
  cfg.workload.stochastic.load = 0.05;  // enough pressure to queue jobs
  Recorder rec;
  const RunMetrics m = run_probed(cfg, &rec, nullptr);
  EXPECT_EQ(m.completed, 80u);
  bool honored = false, broken = false;
  for (const auto& [name, value] : rec.counters().extras) {
    if (name == "backfill_reservations_honored") honored = true;
    if (name == "backfill_reservations_broken") broken = true;
    (void)value;
  }
  EXPECT_TRUE(honored);
  EXPECT_TRUE(broken);
  // Backfilling is probe-driven, unlike the ordered disciplines.
  EXPECT_GT(rec.counters().probe_calls, 0u);
}

TEST(Accounting, MbsRunBumpsFallbacksUnderPressure) {
  ExperimentConfig cfg = small_config(29);
  cfg.allocator = procsim::core::AllocatorSpec{"MBS"};
  cfg.workload.stochastic.load = 0.05;
  Recorder rec;
  (void)run_probed(cfg, &rec, nullptr);
  EXPECT_GT(rec.counters().alloc_attempts, 0u);
  // MBS on a non-power-of-two 16x22 mesh must split buddies sometimes.
  EXPECT_GT(rec.counters().alloc_fallbacks, 0u);
}

// ------------------------------------------------------------ job records --

TEST(JobRecords, JsonlMatchesCsvRowForRow) {
  const ExperimentConfig cfg = small_config(31);
  JobRecordStore store;
  Recorder rec;
  const RunMetrics m = run_probed(cfg, &rec, &store);
  ASSERT_EQ(store.size(), m.completed);

  std::stringstream csv, jsonl;
  store.write_csv(csv);
  store.write_jsonl(jsonl);

  std::string line;
  ASSERT_TRUE(std::getline(csv, line));  // header
  std::size_t csv_rows = 0;
  while (std::getline(csv, line)) ++csv_rows;
  std::size_t jsonl_rows = 0;
  while (std::getline(jsonl, line)) {
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_NE(line.find("\"id\":"), std::string::npos);
    EXPECT_NE(line.find("\"arrival\":"), std::string::npos);
    EXPECT_NE(line.find("\"alloc_length\":"), std::string::npos);
    ++jsonl_rows;
  }
  EXPECT_EQ(csv_rows, store.size());
  EXPECT_EQ(jsonl_rows, store.size());
}

}  // namespace
