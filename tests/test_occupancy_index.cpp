#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "alloc/registry.hpp"
#include "des/distributions.hpp"
#include "des/rng.hpp"
#include "mesh/free_submesh_scan.hpp"
#include "mesh/mesh_state.hpp"
#include "mesh/occupancy_index.hpp"

namespace {

using procsim::mesh::Coord;
using procsim::mesh::FreeSubmeshScan;
using procsim::mesh::Geometry;
using procsim::mesh::MeshState;
using procsim::mesh::OccupancyIndex;
using procsim::mesh::SubMesh;

TEST(OccupancyIndex, EmptyMeshFirstFitAtOrigin) {
  OccupancyIndex idx(Geometry(8, 6));
  const auto s = idx.first_fit(3, 2);
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(*s, SubMesh::from_base(Coord{0, 0}, 3, 2));
  EXPECT_EQ(idx.free_count(), 48);
}

TEST(OccupancyIndex, ValidationMirrorsLegacyScan) {
  OccupancyIndex idx(Geometry(8, 6));
  EXPECT_FALSE(idx.first_fit(9, 1).has_value());
  EXPECT_FALSE(idx.first_fit(1, 7).has_value());
  EXPECT_THROW((void)idx.first_fit(0, 1), std::invalid_argument);
  EXPECT_THROW((void)idx.best_fit(1, -1), std::invalid_argument);
  EXPECT_THROW((void)idx.busy_in(SubMesh{0, 0, 8, 5}), std::invalid_argument);
}

TEST(OccupancyIndex, AllocateReleaseRoundTripUpdatesCounts) {
  OccupancyIndex idx(Geometry(10, 4));
  const SubMesh s{2, 1, 5, 3};
  idx.allocate(s);
  EXPECT_EQ(idx.free_count(), 40 - 12);
  EXPECT_EQ(idx.busy_in(SubMesh{0, 0, 9, 3}), 12);
  EXPECT_TRUE(idx.is_busy(Coord{2, 1}));
  EXPECT_FALSE(idx.is_free(s));
  idx.release(s);
  EXPECT_EQ(idx.free_count(), 40);
  EXPECT_TRUE(idx.is_free(s));
}

TEST(OccupancyIndex, PreconditionViolationsThrow) {
  OccupancyIndex idx(Geometry(6, 6));
  idx.allocate(SubMesh{0, 0, 2, 2});
  EXPECT_THROW(idx.allocate(SubMesh{2, 2, 3, 3}), std::logic_error);
  EXPECT_THROW(idx.release(SubMesh{3, 3, 4, 4}), std::logic_error);
  EXPECT_THROW(idx.allocate(SubMesh{4, 4, 6, 6}), std::out_of_range);
}

TEST(OccupancyIndex, WordBoundaryMeshes) {
  // Widths of exactly 64 and just over one word exercise the multi-word
  // shift/mask paths (the scaling meshes are 64- and 128-wide).
  for (const std::int32_t w : {63, 64, 65, 128}) {
    OccupancyIndex idx(Geometry(w, 3));
    idx.allocate(SubMesh{0, 0, w - 2, 2});  // leave the last column free
    const auto s = idx.first_fit(1, 3);
    ASSERT_TRUE(s.has_value()) << "width " << w;
    EXPECT_EQ(s->x1, w - 1) << "width " << w;
    EXPECT_FALSE(idx.first_fit(2, 1).has_value()) << "width " << w;
    const auto big = idx.largest_free(w, 3);
    ASSERT_TRUE(big.has_value());
    EXPECT_EQ(big->area(), 3) << "width " << w;
  }
}

TEST(OccupancyIndex, ToMeshStateRoundTrips) {
  OccupancyIndex idx(Geometry(9, 5));
  idx.allocate(SubMesh{1, 1, 3, 2});
  idx.allocate(SubMesh{7, 4, 8, 4});
  const MeshState state = idx.to_mesh_state();
  EXPECT_EQ(state.free_count(), idx.free_count());
  for (std::int32_t y = 0; y < 5; ++y)
    for (std::int32_t x = 0; x < 9; ++x)
      EXPECT_EQ(state.is_busy(Coord{x, y}), idx.is_busy(Coord{x, y}));
}

/// Satellite: thousands of allocate/release steps on random geometries, with
/// the index's first/best/largest-fit answers checked against the legacy
/// FreeSubmeshScan oracle on every step.
class IndexEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IndexEquivalence, MatchesLegacyScanUnderChurn) {
  procsim::des::Xoshiro256SS rng(GetParam());
  // Geometry drawn at random, biased to include word-boundary widths.
  const std::int32_t widths[] = {5, 9, 16, 31, 33, 63, 64, 65};
  const std::int32_t w = widths[procsim::des::sample_uniform_int(rng, 0, 7)];
  const auto l =
      static_cast<std::int32_t>(procsim::des::sample_uniform_int(rng, 3, 24));
  const Geometry g(w, l);

  MeshState state(g);
  OccupancyIndex idx(g);
  std::vector<SubMesh> live;

  const std::int32_t side_cap_w = std::max(1, g.width() / 2);
  const std::int32_t side_cap_l = std::max(1, g.length() / 2);
  for (int step = 0; step < 500; ++step) {
    // Mutate: mostly allocate (via the oracle's own first_fit so the test
    // doesn't trust the index for placement), otherwise release.
    const auto a =
        static_cast<std::int32_t>(procsim::des::sample_uniform_int(rng, 1, side_cap_w));
    const auto b =
        static_cast<std::int32_t>(procsim::des::sample_uniform_int(rng, 1, side_cap_l));
    if (live.empty() || procsim::des::sample_bernoulli(rng, 0.6)) {
      const FreeSubmeshScan scan(state);
      if (const auto s = scan.first_fit(a, b)) {
        state.allocate(*s);
        idx.allocate(*s);
        live.push_back(*s);
      }
    } else {
      const auto i = static_cast<std::size_t>(procsim::des::sample_uniform_int(
          rng, 0, static_cast<std::int64_t>(live.size()) - 1));
      state.release(live[i]);
      idx.release(live[i]);
      live[i] = live.back();
      live.pop_back();
    }

    // Compare every query family against the oracle on the mutated state.
    const FreeSubmeshScan oracle(state);
    ASSERT_EQ(idx.free_count(), state.free_count()) << "step " << step;
    const auto qa =
        static_cast<std::int32_t>(procsim::des::sample_uniform_int(rng, 1, g.width()));
    const auto qb =
        static_cast<std::int32_t>(procsim::des::sample_uniform_int(rng, 1, g.length()));
    ASSERT_EQ(idx.first_fit(qa, qb), oracle.first_fit(qa, qb))
        << "step " << step << " q=" << qa << "x" << qb;
    ASSERT_EQ(idx.first_fit_rotatable(qa, qb), oracle.first_fit_rotatable(qa, qb))
        << "step " << step;
    ASSERT_EQ(idx.best_fit(qa, qb), oracle.best_fit(qa, qb))
        << "step " << step << " q=" << qa << "x" << qb;
    const auto cw = static_cast<std::int32_t>(
        procsim::des::sample_uniform_int(rng, 1, std::min(g.width(), 8)));
    const auto cl = static_cast<std::int32_t>(
        procsim::des::sample_uniform_int(rng, 1, std::min(g.length(), 8)));
    ASSERT_EQ(idx.largest_free(cw, cl), oracle.largest_free(cw, cl))
        << "step " << step << " caps=" << cw << "x" << cl;
    // Uncapped largest_free is the *oracle's* quadratic worst case, so it is
    // sampled rather than run every step; the capped variant above already
    // covers the index's search loop each step.
    if (step % 16 == 0) {
      const auto area_cap = procsim::des::sample_uniform_int(rng, 1, g.nodes());
      ASSERT_EQ(idx.largest_free(g.width(), g.length(), area_cap),
                oracle.largest_free(g.width(), g.length(), area_cap))
          << "step " << step << " area_cap=" << area_cap;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomChurn, IndexEquivalence,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

/// 512-scale word-boundary widths: 511 (eight words with a 63-bit tail) and
/// 512 (exactly eight full words, tail_mask all ones). Lengths stay small so
/// the quadratic legacy oracle stays affordable per step — the *width* is
/// what exercises the multi-word shift/mask/frontier arithmetic.
class WideIndexEquivalence : public ::testing::TestWithParam<std::int32_t> {};

TEST_P(WideIndexEquivalence, MatchesLegacyScanUnderChurn) {
  const std::int32_t w = GetParam();
  procsim::des::Xoshiro256SS rng(0x51DE + static_cast<std::uint64_t>(w));
  const Geometry g(w, 10);
  MeshState state(g);
  OccupancyIndex idx(g);
  std::vector<SubMesh> live;

  for (int step = 0; step < 150; ++step) {
    const auto a = static_cast<std::int32_t>(
        procsim::des::sample_uniform_int(rng, 1, g.width() / 2));
    const auto b = static_cast<std::int32_t>(
        procsim::des::sample_uniform_int(rng, 1, 5));
    if (live.empty() || procsim::des::sample_bernoulli(rng, 0.6)) {
      const FreeSubmeshScan scan(state);
      if (const auto s = scan.first_fit(a, b)) {
        state.allocate(*s);
        idx.allocate(*s);
        live.push_back(*s);
      }
    } else {
      const auto i = static_cast<std::size_t>(procsim::des::sample_uniform_int(
          rng, 0, static_cast<std::int64_t>(live.size()) - 1));
      state.release(live[i]);
      idx.release(live[i]);
      live[i] = live.back();
      live.pop_back();
    }

    const FreeSubmeshScan oracle(state);
    ASSERT_EQ(idx.free_count(), state.free_count()) << "step " << step;
    const auto qa = static_cast<std::int32_t>(
        procsim::des::sample_uniform_int(rng, 1, g.width()));
    const auto qb = static_cast<std::int32_t>(
        procsim::des::sample_uniform_int(rng, 1, g.length()));
    ASSERT_EQ(idx.first_fit(qa, qb), oracle.first_fit(qa, qb))
        << "step " << step << " q=" << qa << "x" << qb;
    ASSERT_EQ(idx.best_fit(qa, qb), oracle.best_fit(qa, qb))
        << "step " << step << " q=" << qa << "x" << qb;
    // Narrow caps take the descent path, wide caps the frontier pass; both
    // must reproduce the oracle at these widths.
    const auto cw = static_cast<std::int32_t>(
        procsim::des::sample_uniform_int(rng, 1, std::min(g.width(), 16)));
    const auto cl = static_cast<std::int32_t>(
        procsim::des::sample_uniform_int(rng, 1, 8));
    ASSERT_EQ(idx.largest_free(cw, cl), oracle.largest_free(cw, cl))
        << "step " << step << " caps=" << cw << "x" << cl;
    if (step % 25 == 0) {
      const auto area_cap = procsim::des::sample_uniform_int(rng, 1, g.nodes());
      ASSERT_EQ(idx.largest_free(g.width(), g.length(), area_cap),
                oracle.largest_free(g.width(), g.length(), area_cap))
          << "step " << step << " area_cap=" << area_cap;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(WordBoundary512, WideIndexEquivalence,
                         ::testing::Values(511, 512));

/// Hand-built fixtures pinning the documented largest_free preference order
/// (README "Allocators & the occupancy index"): (1) maximum capped area,
/// (2) smallest width among equal areas, (3) first row-major (y, x) base.
/// Each case also re-checks the claim against the oracle on the same state.
TEST(OccupancyIndex, LargestFreeTieBreaksMatchDocumentedOrder) {
  const Geometry g(16, 16);
  const auto oracle_agrees = [](const OccupancyIndex& idx, std::int32_t cw,
                                std::int32_t cl, std::int64_t cap) {
    return idx.largest_free(cw, cl, cap) ==
           FreeSubmeshScan(idx.to_mesh_state()).largest_free(cw, cl, cap);
  };

  {
    // Smallest width wins on equal areas, even though the wider 4×3 sits
    // earlier in row-major order than the 3×4.
    OccupancyIndex idx(g);
    idx.allocate(SubMesh{0, 0, 15, 15});
    idx.release(SubMesh{2, 1, 5, 3});    // 4 wide × 3 tall, area 12, early
    idx.release(SubMesh{10, 8, 12, 11});  // 3 wide × 4 tall, area 12, late
    const auto s = idx.largest_free(16, 16);
    ASSERT_TRUE(s.has_value());
    EXPECT_EQ(*s, (SubMesh{10, 8, 12, 11}));
    EXPECT_TRUE(oracle_agrees(idx, 16, 16,
                              std::numeric_limits<std::int64_t>::max()));
  }
  {
    // Equal area and equal width: the first (y, x) base in row-major order.
    OccupancyIndex idx(g);
    idx.allocate(SubMesh{0, 0, 15, 15});
    idx.release(SubMesh{9, 0, 11, 3});   // 3×4 at (9, 0)
    idx.release(SubMesh{2, 5, 4, 8});    // 3×4 at (2, 5) — later row
    const auto s = idx.largest_free(16, 16);
    ASSERT_TRUE(s.has_value());
    EXPECT_EQ(s->base(), (Coord{9, 0}));
    EXPECT_TRUE(oracle_agrees(idx, 16, 16,
                              std::numeric_limits<std::int64_t>::max()));
  }
  {
    // The area cap reshapes the winner: inside a free 5×5 block, max_area 12
    // admits 3×4 (w=3 reaches area 12 first; w=4×3 ties and loses on width).
    OccupancyIndex idx(g);
    idx.allocate(SubMesh{0, 0, 15, 15});
    idx.release(SubMesh{4, 4, 8, 8});
    const auto s = idx.largest_free(16, 16, 12);
    ASSERT_TRUE(s.has_value());
    EXPECT_EQ(*s, SubMesh::from_base(Coord{4, 4}, 3, 4));
    EXPECT_TRUE(oracle_agrees(idx, 16, 16, 12));
    // Width cap 2 forces the tall 2×5 strip instead.
    const auto t = idx.largest_free(2, 16);
    ASSERT_TRUE(t.has_value());
    EXPECT_EQ(*t, SubMesh::from_base(Coord{4, 4}, 2, 5));
    EXPECT_TRUE(oracle_agrees(idx, 2, 16,
                              std::numeric_limits<std::int64_t>::max()));
  }
}

/// The shape-aware reservation probe: first_fit under "these busy blocks
/// were released" must agree with a brute-force future-occupancy replay —
/// copy the index, actually release the blocks, query for real.
TEST(OccupancyIndex, AssumingFreeAgreesWithBruteForceReplayOn8x8) {
  const Geometry g(8, 8);
  procsim::des::Xoshiro256SS rng(4242);
  for (int round = 0; round < 50; ++round) {
    MeshState state(g);
    OccupancyIndex idx(g);
    std::vector<SubMesh> live;
    // Random occupancy.
    for (int step = 0; step < 30; ++step) {
      const auto a = static_cast<std::int32_t>(procsim::des::sample_uniform_int(rng, 1, 4));
      const auto b = static_cast<std::int32_t>(procsim::des::sample_uniform_int(rng, 1, 4));
      if (const auto s = idx.first_fit(a, b)) {
        idx.allocate(*s);
        live.push_back(*s);
      }
    }
    if (live.empty()) continue;
    // Random subset of live placements plays the projected releases.
    std::vector<SubMesh> released;
    for (const SubMesh& s : live)
      if (procsim::des::sample_bernoulli(rng, 0.5)) released.push_back(s);

    // Brute force: replay the releases on a copy, then query for real.
    OccupancyIndex future = idx;
    for (const SubMesh& s : released) future.release(s);

    for (int q = 0; q < 12; ++q) {
      const auto a = static_cast<std::int32_t>(procsim::des::sample_uniform_int(rng, 1, 8));
      const auto b = static_cast<std::int32_t>(procsim::des::sample_uniform_int(rng, 1, 8));
      ASSERT_EQ(idx.first_fit_assuming_free(a, b, released), future.first_fit(a, b))
          << "round " << round << " q=" << a << "x" << b;
      ASSERT_EQ(idx.first_fit_rotatable_assuming_free(a, b, released),
                future.first_fit_rotatable(a, b))
          << "round " << round << " q=" << a << "x" << b;
    }
    // The hypothetical query must not have perturbed the real index.
    ASSERT_EQ(idx.free_count(), state.geometry().nodes() -
                                    [&] {
                                      std::int32_t busy = 0;
                                      for (const SubMesh& s : live) busy += s.area();
                                      return busy;
                                    }());
  }
}

TEST(OccupancyIndex, AssumingFreeWithNoExtrasEqualsPlainFirstFit) {
  const Geometry g(9, 7);
  OccupancyIndex idx(g);
  idx.allocate(SubMesh{0, 0, 4, 3});
  EXPECT_EQ(idx.first_fit_assuming_free(3, 3, {}), idx.first_fit(3, 3));
  // Overlapping / already-free extras are tolerated (the union counts).
  const std::vector<SubMesh> extras{{0, 0, 4, 3}, {0, 0, 2, 2}, {5, 0, 6, 1}};
  EXPECT_EQ(idx.first_fit_assuming_free(5, 4, extras)->base(),
            (procsim::mesh::Coord{0, 0}));
}

/// The opt-in oracle mode: allocator-driven churn with cross-checking on
/// must never diverge (and must restore the flag afterwards).
TEST(OccupancyIndex, CrossCheckModeCleanOnAllocatorChurn) {
  struct Guard {
    ~Guard() { OccupancyIndex::set_cross_check(false); }
  } guard;
  OccupancyIndex::set_cross_check(true);
  ASSERT_TRUE(OccupancyIndex::cross_check_enabled());

  procsim::des::Xoshiro256SS rng(7);
  for (const std::string name : {"FirstFit", "BestFit", "GABL"}) {
    const auto allocator =
        procsim::alloc::make_allocator(name, Geometry(12, 10), {.seed = 7});
    std::vector<procsim::alloc::Placement> live;
    for (int step = 0; step < 120; ++step) {
      if (live.empty() || procsim::des::sample_bernoulli(rng, 0.6)) {
        const auto a =
            static_cast<std::int32_t>(procsim::des::sample_uniform_int(rng, 1, 6));
        const auto b =
            static_cast<std::int32_t>(procsim::des::sample_uniform_int(rng, 1, 5));
        if (auto p = allocator->allocate(procsim::alloc::Request{a, b, a * b}))
          live.push_back(std::move(*p));
      } else {
        allocator->release(live.back());
        live.pop_back();
      }
    }
  }
}

TEST(OccupancyIndex, CrossCheckDefaultsOff) {
  EXPECT_FALSE(OccupancyIndex::cross_check_enabled());
}

}  // namespace
