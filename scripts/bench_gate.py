#!/usr/bin/env python3
"""CI perf-regression gate over the BENCH_*.json emitters.

Compares a fresh bench run against the previous successful baseline and fails
(exit 1) when a gated throughput number regressed by more than the threshold.

Gated (hard-fail) rows, chosen for signal over CI noise:
  BENCH_alloc.json  queries[]    query in {first_fit, largest_free}
                                 -> index_ops_per_sec
  BENCH_alloc.json  allocators[] allocator in {FirstFit, GABL}
                                 -> events_per_sec   (the first_fit- and
                                 largest_free-backed churn paths)
  BENCH_event.json  queues[]     impl == calendar -> ops_per_sec
                                 (the production event engine; the heap
                                 oracle rows are report-only)
  BENCH_event.json  end_to_end[] engine == calendar -> events_per_sec
                                 (full-DES churn on the production path;
                                 the legacy configuration is report-only)
  BENCH_event.json  observability.overhead_frac <= 0.02 — an *absolute*
                                 budget (the obs::Recorder zero-overhead-off
                                 contract), checked on the current run even
                                 when no baseline exists yet.
  BENCH_network.json hold[]      engine == batched -> packets_per_sec
                                 (the production network fast path; the
                                 stepped-oracle rows are report-only)
  BENCH_network.json end_to_end[] engine == batched -> packets_per_sec
  BENCH_network.json speedup.speedup >= 3.0 — an *absolute* floor on the
                                 128x128 batched/stepped ratio, checked on
                                 the current run even without a baseline.
  BENCH_cluster.json dispatch[]  policy in {round_robin, shortest_queue}
                                 -> jobs_per_sec   (the deterministic fleet
                                 dispatch paths; the RNG/snapshot policies
                                 ride along report-only)

A malformed or truncated bench JSON (an interrupted baseline upload, a
half-written artifact) exits 3 with a one-line ERROR instead of a traceback,
so CI distinguishes "bad input" from "perf regressed" (exit 1).

Report-only rows (printed, never fail — source throughput swings more on
shared runners): BENCH_workload.json sources[] jobs_per_sec.

Usage:
  bench_gate.py --baseline DIR --current DIR [--threshold 0.25]
                [--summary FILE]
  bench_gate.py --self-test

--summary appends a markdown perf-profile table of every bench row (current
value, baseline, ratio, gated?) to FILE — pass $GITHUB_STEP_SUMMARY in CI.
It is written whether or not the gate trips, so a failing run still shows
the full profile.

A missing baseline passes with a notice (first run seeds the cache). The
--self-test mode proves the gate trips: it builds a synthetic current run 2x
slower than its baseline and asserts the comparison fails, then asserts an
identical run passes.
"""

import argparse
import copy
import json
import os
import sys

THRESHOLD_DEFAULT = 0.25
# Absolute ceiling on obs::Recorder attach cost (BENCH_event.json
# "observability" object) — the zero-overhead-off contract, not a ratio
# against a baseline.
OVERHEAD_MAX = 0.02
# Absolute floor on the 128x128 batched/stepped network speedup
# (BENCH_network.json "speedup" object) — the batched fast path must stay a
# multiple of the per-hop oracle, not merely not-regress.
NETWORK_SPEEDUP_MIN = 3.0

GATED_QUERIES = ("first_fit", "largest_free")
GATED_CHURN = ("FirstFit", "GABL")
GATED_QUEUE_IMPL = "calendar"
GATED_E2E_ENGINE = "calendar"
GATED_NET_ENGINE = "batched"
GATED_DISPATCH = ("round_robin", "shortest_queue")

EXIT_BAD_INPUT = 3


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (json.JSONDecodeError, UnicodeDecodeError, OSError) as e:
        print(f"ERROR: malformed or truncated bench JSON: {path}: {e}",
              file=sys.stderr)
        sys.exit(EXIT_BAD_INPUT)


def index_rows(rows, keys):
    """{(row[k] for k in keys): row} with duplicate keys rejected."""
    out = {}
    for row in rows:
        key = tuple(row[k] for k in keys)
        if key in out:
            raise SystemExit(f"duplicate bench row {key}")
        out[key] = row
    return out


def compare_rows(label, base_rows, cur_rows, keys, value, threshold, gate):
    """Returns the list of failure strings for one row family."""
    failures = []
    base = index_rows(base_rows, keys)
    cur = index_rows(cur_rows, keys)
    for key, cur_row in sorted(cur.items()):
        base_row = base.get(key)
        if base_row is None:
            print(f"  {label} {key}: new row (no baseline), skipped")
            continue
        old, new = base_row[value], cur_row[value]
        if old <= 0:
            print(f"  {label} {key}: baseline {value} <= 0, skipped")
            continue
        ratio = new / old
        gated = gate(key)
        verdict = "ok"
        if ratio < 1.0 - threshold:
            verdict = "REGRESSED" if gated else "regressed (report-only)"
            if gated:
                failures.append(
                    f"{label} {key}: {value} {old:.0f} -> {new:.0f} "
                    f"({ratio:.2f}x, limit {1.0 - threshold:.2f}x)"
                )
        print(f"  {label} {key}: {old:.0f} -> {new:.0f} ({ratio:.2f}x) {verdict}")
    return failures


def check_overhead(current_dir):
    """Absolute observability-overhead budget on the *current* run.

    Baseline-free by design: a freshly seeded cache must still hold the
    recorder to OVERHEAD_MAX. Missing file/section passes with a notice
    (older bench emitters had no observability row).
    """
    path = os.path.join(current_dir, "BENCH_event.json")
    if not os.path.exists(path):
        print("BENCH_event.json: absent, observability budget not checked")
        return []
    obs = load(path).get("observability")
    if obs is None:
        print("BENCH_event.json: no observability section, budget not checked")
        return []
    frac = obs["overhead_frac"]
    verdict = "ok" if frac <= OVERHEAD_MAX else "OVER BUDGET"
    print(f"  observability {obs.get('mesh', '?')}: recorder overhead "
          f"{frac:.1%} (budget {OVERHEAD_MAX:.0%}) {verdict}")
    if frac > OVERHEAD_MAX:
        return [f"observability: recorder attach overhead {frac:.1%} exceeds "
                f"the absolute {OVERHEAD_MAX:.0%} budget"]
    return []


def check_network_speedup(current_dir):
    """Absolute batched/stepped speedup floor on the *current* run.

    Baseline-free like check_overhead: a freshly seeded cache must still
    prove the batched engine is >= NETWORK_SPEEDUP_MIN x the stepped oracle
    on the 128x128 hold row. Missing file/section passes with a notice.
    """
    path = os.path.join(current_dir, "BENCH_network.json")
    if not os.path.exists(path):
        print("BENCH_network.json: absent, network speedup floor not checked")
        return []
    sp = load(path).get("speedup")
    if sp is None:
        print("BENCH_network.json: no speedup section, floor not checked")
        return []
    ratio = sp["speedup"]
    verdict = "ok" if ratio >= NETWORK_SPEEDUP_MIN else "UNDER FLOOR"
    print(f"  network speedup {sp.get('mesh', '?')}: batched/stepped "
          f"{ratio:.2f}x (floor {NETWORK_SPEEDUP_MIN:.1f}x) {verdict}")
    if ratio < NETWORK_SPEEDUP_MIN:
        return [f"network: 128x128 batched/stepped speedup {ratio:.2f}x is "
                f"under the absolute {NETWORK_SPEEDUP_MIN:.1f}x floor"]
    return []


def compare(baseline_dir, current_dir, threshold):
    failures = []
    alloc_base = os.path.join(baseline_dir, "BENCH_alloc.json")
    alloc_cur = os.path.join(current_dir, "BENCH_alloc.json")
    if os.path.exists(alloc_base) and os.path.exists(alloc_cur):
        base, cur = load(alloc_base), load(alloc_cur)
        if base.get("mode") != cur.get("mode"):
            print(f"  mode changed ({base.get('mode')} -> {cur.get('mode')}): "
                  "baseline not comparable, skipped")
        else:
            print("BENCH_alloc.json:")
            failures += compare_rows(
                "query", base["queries"], cur["queries"], ("mesh", "query"),
                "index_ops_per_sec", threshold,
                gate=lambda key: key[1] in GATED_QUERIES)
            failures += compare_rows(
                "churn", base["allocators"], cur["allocators"],
                ("mesh", "allocator"), "events_per_sec", threshold,
                gate=lambda key: key[1] in GATED_CHURN)
    else:
        print("BENCH_alloc.json: no baseline yet, seeding")

    event_base = os.path.join(baseline_dir, "BENCH_event.json")
    event_cur = os.path.join(current_dir, "BENCH_event.json")
    if os.path.exists(event_base) and os.path.exists(event_cur):
        base, cur = load(event_base), load(event_cur)
        if base.get("mode") != cur.get("mode"):
            print(f"  mode changed ({base.get('mode')} -> {cur.get('mode')}): "
                  "baseline not comparable, skipped")
        else:
            print("BENCH_event.json:")
            failures += compare_rows(
                "queue", base["queues"], cur["queues"], ("pending", "impl"),
                "ops_per_sec", threshold,
                gate=lambda key: key[1] == GATED_QUEUE_IMPL)
            failures += compare_rows(
                "end_to_end", base["end_to_end"], cur["end_to_end"],
                ("mesh", "allocator", "engine"), "events_per_sec", threshold,
                gate=lambda key: key[2] == GATED_E2E_ENGINE)
    else:
        print("BENCH_event.json: no baseline yet, seeding")

    net_base = os.path.join(baseline_dir, "BENCH_network.json")
    net_cur = os.path.join(current_dir, "BENCH_network.json")
    if os.path.exists(net_base) and os.path.exists(net_cur):
        base, cur = load(net_base), load(net_cur)
        if base.get("mode") != cur.get("mode"):
            print(f"  mode changed ({base.get('mode')} -> {cur.get('mode')}): "
                  "baseline not comparable, skipped")
        else:
            print("BENCH_network.json:")
            failures += compare_rows(
                "hold", base["hold"], cur["hold"], ("mesh", "engine"),
                "packets_per_sec", threshold,
                gate=lambda key: key[1] == GATED_NET_ENGINE)
            failures += compare_rows(
                "net_end_to_end", base["end_to_end"], cur["end_to_end"],
                ("mesh", "engine"), "packets_per_sec", threshold,
                gate=lambda key: key[1] == GATED_NET_ENGINE)
    else:
        print("BENCH_network.json: no baseline yet, seeding")

    cluster_base = os.path.join(baseline_dir, "BENCH_cluster.json")
    cluster_cur = os.path.join(current_dir, "BENCH_cluster.json")
    if os.path.exists(cluster_base) and os.path.exists(cluster_cur):
        base, cur = load(cluster_base), load(cluster_cur)
        if base.get("mode") != cur.get("mode"):
            print(f"  mode changed ({base.get('mode')} -> {cur.get('mode')}): "
                  "baseline not comparable, skipped")
        else:
            print("BENCH_cluster.json:")
            failures += compare_rows(
                "dispatch", base["dispatch"], cur["dispatch"],
                ("cluster", "policy"), "jobs_per_sec", threshold,
                gate=lambda key: key[1] in GATED_DISPATCH)
    else:
        print("BENCH_cluster.json: no baseline yet, seeding")

    workload_base = os.path.join(baseline_dir, "BENCH_workload.json")
    workload_cur = os.path.join(current_dir, "BENCH_workload.json")
    if os.path.exists(workload_base) and os.path.exists(workload_cur):
        base, cur = load(workload_base), load(workload_cur)
        print("BENCH_workload.json (report-only):")
        failures += compare_rows(
            "source", base["sources"], cur["sources"], ("source",),
            "jobs_per_sec", threshold, gate=lambda key: False)
    else:
        print("BENCH_workload.json: no baseline yet, seeding")
    return failures


SUMMARY_FAMILIES = (
    # (file, doc key, row keys, value field, gate predicate)
    ("BENCH_alloc.json", "queries", ("mesh", "query"), "index_ops_per_sec",
     lambda key: key[1] in GATED_QUERIES),
    ("BENCH_alloc.json", "allocators", ("mesh", "allocator"),
     "events_per_sec", lambda key: key[1] in GATED_CHURN),
    ("BENCH_event.json", "queues", ("pending", "impl"), "ops_per_sec",
     lambda key: key[1] == GATED_QUEUE_IMPL),
    ("BENCH_event.json", "end_to_end", ("mesh", "allocator", "engine"),
     "events_per_sec", lambda key: key[2] == GATED_E2E_ENGINE),
    ("BENCH_network.json", "hold", ("mesh", "engine"), "packets_per_sec",
     lambda key: key[1] == GATED_NET_ENGINE),
    ("BENCH_network.json", "end_to_end", ("mesh", "engine"),
     "packets_per_sec", lambda key: key[1] == GATED_NET_ENGINE),
    ("BENCH_cluster.json", "dispatch", ("cluster", "policy"), "jobs_per_sec",
     lambda key: key[1] in GATED_DISPATCH),
    ("BENCH_workload.json", "sources", ("source",), "jobs_per_sec",
     lambda key: False),
)


def write_summary(baseline_dir, current_dir, path):
    """Appends a markdown perf-profile table of every bench row to `path`."""
    lines = [
        "### Bench perf profile",
        "",
        "| bench | row | metric | current | baseline | ratio | gated |",
        "| --- | --- | --- | ---: | ---: | ---: | :---: |",
    ]
    for fname, doc_key, keys, value, gate in SUMMARY_FAMILIES:
        cur_path = os.path.join(current_dir, fname)
        if not os.path.exists(cur_path):
            continue
        cur = index_rows(load(cur_path).get(doc_key, []), keys)
        base_path = os.path.join(baseline_dir, fname) if baseline_dir else None
        base = {}
        if base_path and os.path.exists(base_path):
            base = index_rows(load(base_path).get(doc_key, []), keys)
        for key, row in sorted(cur.items(), key=lambda kv: tuple(map(str, kv[0]))):
            base_row = base.get(key)
            new = row[value]
            if base_row and base_row[value] > 0:
                old = base_row[value]
                base_s, ratio_s = f"{old:,.0f}", f"{new / old:.2f}x"
            else:
                base_s, ratio_s = "—", "—"
            label = f"{doc_key}: " + " ".join(str(k) for k in key)
            gated_s = "yes" if gate(key) else ""
            lines.append(f"| {fname} | {label} | {value} | {new:,.0f} "
                         f"| {base_s} | {ratio_s} | {gated_s} |")
    with open(path, "a") as f:
        f.write("\n".join(lines) + "\n")
    print(f"perf-profile summary appended to {path}")


def self_test():
    """The acceptance demonstration: an injected 2x slowdown must fail."""
    import tempfile

    baseline = {
        "bench": "bench_alloc_scaling",
        "mode": "fast",
        "queries": [
            {"mesh": "64x64", "query": "first_fit",
             "legacy_ops_per_sec": 5e4, "index_ops_per_sec": 1e6, "speedup": 20},
            {"mesh": "64x64", "query": "largest_free",
             "legacy_ops_per_sec": 1e4, "index_ops_per_sec": 6e4, "speedup": 6},
            {"mesh": "64x64", "query": "best_fit",
             "legacy_ops_per_sec": 5e4, "index_ops_per_sec": 3e5, "speedup": 6},
            # Large meshes carry no legacy figure (index-only timing);
            # index_ops_per_sec is still gated.
            {"mesh": "512x512", "query": "largest_free",
             "legacy_ops_per_sec": 0, "index_ops_per_sec": 4e4, "speedup": 0},
            {"mesh": "512x512", "query": "best_fit",
             "legacy_ops_per_sec": 0, "index_ops_per_sec": 2e4, "speedup": 0},
        ],
        "allocators": [
            {"mesh": "64x64", "allocator": "FirstFit", "events_per_sec": 5e4},
            {"mesh": "64x64", "allocator": "GABL", "events_per_sec": 2e4},
            {"mesh": "64x64", "allocator": "Random", "events_per_sec": 9e4},
            {"mesh": "512x512", "allocator": "GABL", "events_per_sec": 5e3},
            {"mesh": "512x512", "allocator": "Random", "events_per_sec": 2e4},
        ],
    }
    event_baseline = {
        "bench": "bench_event_engine",
        "mode": "fast",
        "queues": [
            {"pending": 10000, "impl": "heap", "ops_per_sec": 5e6},
            {"pending": 10000, "impl": "calendar", "ops_per_sec": 5e6},
            {"pending": 1000000, "impl": "heap", "ops_per_sec": 1.4e6},
            {"pending": 1000000, "impl": "calendar", "ops_per_sec": 1.4e6},
        ],
        "end_to_end": [
            {"mesh": "128x128", "allocator": "FirstFit", "engine": "legacy",
             "events_per_sec": 2.5e6, "events": 200000},
            {"mesh": "128x128", "allocator": "FirstFit", "engine": "calendar",
             "events_per_sec": 2.9e6, "events": 200000},
        ],
        "observability": {"mesh": "128x128",
                          "detached_events_per_sec": 2.9e6,
                          "attached_events_per_sec": 2.87e6,
                          "overhead_frac": 0.01},
    }
    network_baseline = {
        "bench": "bench_network",
        "mode": "fast",
        "hold": [
            {"mesh": "32x32", "engine": "stepped", "packets_per_sec": 2e5,
             "packets": 4000, "events": 100000},
            {"mesh": "32x32", "engine": "batched", "packets_per_sec": 4.5e5,
             "packets": 4000, "events": 40000},
            {"mesh": "128x128", "engine": "stepped", "packets_per_sec": 4.5e4,
             "packets": 4000, "events": 360000},
            {"mesh": "128x128", "engine": "batched", "packets_per_sec": 2e5,
             "packets": 4000, "events": 43000},
        ],
        "end_to_end": [
            {"mesh": "16x22", "engine": "stepped", "packets_per_sec": 3.5e5,
             "packets": 672, "events": 9500},
            {"mesh": "16x22", "engine": "batched", "packets_per_sec": 4.5e5,
             "packets": 672, "events": 4200},
        ],
        "speedup": {"mesh": "128x128", "traffic": "all_to_all",
                    "stepped_packets_per_sec": 4.5e4,
                    "batched_packets_per_sec": 2e5, "speedup": 4.4},
        "sink_dispatch": {"fn_pointer_ns": 2.3, "std_function_ns": 2.7},
    }
    cluster_baseline = {
        "bench": "bench_cluster",
        "mode": "fast",
        "dispatch": [
            {"cluster": "4x(64x64);balance=random", "policy": "random",
             "jobs_per_sec": 3.4e4, "events_per_sec": 3.1e6,
             "jobs": 1500, "events": 136779},
            {"cluster": "4x(64x64);balance=round_robin",
             "policy": "round_robin", "jobs_per_sec": 4.2e4,
             "events_per_sec": 3.8e6, "jobs": 1500, "events": 134339},
            {"cluster": "4x(64x64);balance=shortest_queue",
             "policy": "shortest_queue", "jobs_per_sec": 3.3e4,
             "events_per_sec": 3.2e6, "jobs": 1500, "events": 144330},
            {"cluster": "4x(64x64);balance=stale_queue;stale=10",
             "policy": "stale_queue", "jobs_per_sec": 3.1e4,
             "events_per_sec": 2.8e6, "jobs": 1500, "events": 136666},
            {"cluster": "4x(64x64);balance=improved;stale=10",
             "policy": "improved", "jobs_per_sec": 3.0e4,
             "events_per_sec": 2.9e6, "jobs": 1500, "events": 141521},
        ],
    }
    slowed = copy.deepcopy(baseline)
    for row in slowed["queries"]:
        row["index_ops_per_sec"] /= 2.0
    for row in slowed["allocators"]:
        row["events_per_sec"] /= 2.0
    event_slowed = copy.deepcopy(event_baseline)
    for row in event_slowed["queues"]:
        row["ops_per_sec"] /= 2.0
    for row in event_slowed["end_to_end"]:
        row["events_per_sec"] /= 2.0

    with tempfile.TemporaryDirectory() as tmp:
        base_dir = os.path.join(tmp, "base")
        cur_dir = os.path.join(tmp, "cur")
        os.makedirs(base_dir)
        os.makedirs(cur_dir)

        def write(directory, alloc_doc, event_doc, net_doc=None,
                  cluster_doc=None):
            with open(os.path.join(directory, "BENCH_alloc.json"), "w") as f:
                json.dump(alloc_doc, f)
            with open(os.path.join(directory, "BENCH_event.json"), "w") as f:
                json.dump(event_doc, f)
            if net_doc is not None:
                with open(os.path.join(directory,
                                       "BENCH_network.json"), "w") as f:
                    json.dump(net_doc, f)
            if cluster_doc is not None:
                with open(os.path.join(directory,
                                       "BENCH_cluster.json"), "w") as f:
                    json.dump(cluster_doc, f)

        write(base_dir, baseline, event_baseline, network_baseline,
              cluster_baseline)

        print("--- self-test: injected 2x slowdown must FAIL the gate")
        write(cur_dir, slowed, event_slowed)
        failures = compare(base_dir, cur_dir, THRESHOLD_DEFAULT)
        if not failures:
            print("self-test FAILED: the gate passed a 2x slowdown")
            return 1
        # Both families must contribute: a gate that only watches one file
        # would pass a regression in the other.
        if not any("queue" in f or "end_to_end" in f for f in failures):
            print("self-test FAILED: BENCH_event rows did not trip the gate")
            return 1
        print(f"  gate tripped as expected ({len(failures)} failures)")

        print("--- self-test: identical run must PASS the gate")
        write(cur_dir, baseline, event_baseline)
        failures = compare(base_dir, cur_dir, THRESHOLD_DEFAULT)
        if failures:
            print("self-test FAILED: the gate tripped on identical numbers")
            return 1
        print("  gate passed as expected")

        print("--- self-test: best_fit (ungated query) slowdown alone must PASS")
        best_only = copy.deepcopy(baseline)
        best_only["queries"][2]["index_ops_per_sec"] /= 2.0
        write(cur_dir, best_only, event_baseline)
        failures = compare(base_dir, cur_dir, THRESHOLD_DEFAULT)
        if failures:
            print("self-test FAILED: an ungated row tripped the gate")
            return 1
        print("  gate ignored the ungated row as expected")

        print("--- self-test: heap-oracle/legacy-only slowdown must PASS")
        oracle_only = copy.deepcopy(event_baseline)
        for row in oracle_only["queues"]:
            if row["impl"] == "heap":
                row["ops_per_sec"] /= 2.0
        for row in oracle_only["end_to_end"]:
            if row["engine"] == "legacy":
                row["events_per_sec"] /= 2.0
        write(cur_dir, baseline, oracle_only)
        failures = compare(base_dir, cur_dir, THRESHOLD_DEFAULT)
        if failures:
            print("self-test FAILED: oracle/legacy rows tripped the gate")
            return 1
        print("  gate ignored the oracle/legacy rows as expected")

        print("--- self-test: 512x512 largest_free + GABL-churn 2x slowdown "
              "must trip exactly those rows")
        large_only = copy.deepcopy(baseline)
        for row in large_only["queries"]:
            if row["mesh"] == "512x512" and row["query"] == "largest_free":
                row["index_ops_per_sec"] /= 2.0
        for row in large_only["allocators"]:
            if row["mesh"] == "512x512" and row["allocator"] == "GABL":
                row["events_per_sec"] /= 2.0
        write(cur_dir, large_only, event_baseline)
        failures = compare(base_dir, cur_dir, THRESHOLD_DEFAULT)
        if len(failures) != 2 or not all("512x512" in f for f in failures):
            print("self-test FAILED: 512x512 slowdown did not trip exactly "
                  f"the two new rows ({len(failures)} failures: {failures})")
            return 1
        print("  gate tripped on exactly the 512x512 rows as expected")

        print("--- self-test: 512x512 ungated-churn (Random) slowdown must PASS")
        large_ungated = copy.deepcopy(baseline)
        for row in large_ungated["allocators"]:
            if row["mesh"] == "512x512" and row["allocator"] == "Random":
                row["events_per_sec"] /= 2.0
        write(cur_dir, large_ungated, event_baseline)
        failures = compare(base_dir, cur_dir, THRESHOLD_DEFAULT)
        if failures:
            print("self-test FAILED: an ungated 512x512 row tripped the gate")
            return 1
        print("  gate ignored the ungated 512x512 row as expected")

        print("--- self-test: calendar-only 2x slowdown must FAIL")
        calendar_only = copy.deepcopy(event_baseline)
        for row in calendar_only["queues"]:
            if row["impl"] == "calendar":
                row["ops_per_sec"] /= 2.0
        for row in calendar_only["end_to_end"]:
            if row["engine"] == "calendar":
                row["events_per_sec"] /= 2.0
        write(cur_dir, baseline, calendar_only)
        failures = compare(base_dir, cur_dir, THRESHOLD_DEFAULT)
        if len(failures) != 3:  # 2 queue rows + 1 end_to_end row
            print("self-test FAILED: calendar rows did not all trip the gate "
                  f"({len(failures)} failures, expected 3)")
            return 1
        print("  gate tripped on exactly the calendar rows as expected")

        print("--- self-test: batched-network 2x slowdown must trip exactly "
              "the new rows")
        net_slowed = copy.deepcopy(network_baseline)
        for row in net_slowed["hold"]:
            if row["engine"] == "batched":
                row["packets_per_sec"] /= 2.0
        for row in net_slowed["end_to_end"]:
            if row["engine"] == "batched":
                row["packets_per_sec"] /= 2.0
        write(cur_dir, baseline, event_baseline, net_slowed)
        failures = compare(base_dir, cur_dir, THRESHOLD_DEFAULT)
        if len(failures) != 3:  # 2 hold rows + 1 end_to_end row
            print("self-test FAILED: batched network rows did not trip "
                  f"exactly the three new rows ({len(failures)} failures: "
                  f"{failures})")
            return 1
        if not all("hold" in f or "net_end_to_end" in f for f in failures):
            print(f"self-test FAILED: unexpected rows tripped: {failures}")
            return 1
        print("  gate tripped on exactly the batched network rows as expected")

        print("--- self-test: stepped-oracle-only network slowdown must PASS")
        net_oracle = copy.deepcopy(network_baseline)
        for row in net_oracle["hold"]:
            if row["engine"] == "stepped":
                row["packets_per_sec"] /= 2.0
        for row in net_oracle["end_to_end"]:
            if row["engine"] == "stepped":
                row["packets_per_sec"] /= 2.0
        write(cur_dir, baseline, event_baseline, net_oracle)
        failures = compare(base_dir, cur_dir, THRESHOLD_DEFAULT)
        if failures:
            print("self-test FAILED: stepped-oracle rows tripped the gate")
            return 1
        print("  gate ignored the stepped-oracle rows as expected")

        print("--- self-test: gated-dispatch (round_robin + shortest_queue) "
              "2x slowdown must trip exactly those rows")
        cluster_slowed = copy.deepcopy(cluster_baseline)
        for row in cluster_slowed["dispatch"]:
            if row["policy"] in GATED_DISPATCH:
                row["jobs_per_sec"] /= 2.0
        write(cur_dir, baseline, event_baseline, network_baseline,
              cluster_slowed)
        failures = compare(base_dir, cur_dir, THRESHOLD_DEFAULT)
        if len(failures) != 2 or not all("dispatch" in f for f in failures):
            print("self-test FAILED: cluster dispatch slowdown did not trip "
                  f"exactly the two gated rows ({len(failures)} failures: "
                  f"{failures})")
            return 1
        print("  gate tripped on exactly the gated dispatch rows as expected")

        print("--- self-test: RNG/snapshot-policy dispatch slowdown must PASS")
        cluster_ungated = copy.deepcopy(cluster_baseline)
        for row in cluster_ungated["dispatch"]:
            if row["policy"] not in GATED_DISPATCH:
                row["jobs_per_sec"] /= 2.0
        write(cur_dir, baseline, event_baseline, network_baseline,
              cluster_ungated)
        failures = compare(base_dir, cur_dir, THRESHOLD_DEFAULT)
        if failures:
            print("self-test FAILED: ungated dispatch rows tripped the gate")
            return 1
        print("  gate ignored the ungated dispatch rows as expected")

        print("--- self-test: a 3.5x network speedup must PASS the "
              "absolute floor")
        write(cur_dir, baseline, event_baseline, network_baseline)
        fast_net = copy.deepcopy(network_baseline)
        fast_net["speedup"]["speedup"] = 3.5
        write(cur_dir, baseline, event_baseline, fast_net)
        if check_network_speedup(cur_dir):
            print("self-test FAILED: the floor tripped on a 3.5x speedup")
            return 1
        print("  floor passed as expected")

        print("--- self-test: a 2.9x network speedup must FAIL the "
              "absolute floor")
        slow_net = copy.deepcopy(network_baseline)
        slow_net["speedup"]["speedup"] = 2.9
        write(cur_dir, baseline, event_baseline, slow_net)
        if not check_network_speedup(cur_dir):
            print("self-test FAILED: the floor passed a 2.9x speedup")
            return 1
        print("  floor tripped as expected")
        write(cur_dir, baseline, event_baseline, network_baseline)

        print("--- self-test: 1% recorder overhead must PASS the absolute budget")
        write(cur_dir, baseline, event_baseline)
        if check_overhead(cur_dir):
            print("self-test FAILED: the budget tripped on 1% overhead")
            return 1
        print("  budget passed as expected")

        print("--- self-test: 3% recorder overhead must FAIL the absolute budget")
        over = copy.deepcopy(event_baseline)
        over["observability"]["overhead_frac"] = 0.03
        write(cur_dir, baseline, over)
        if not check_overhead(cur_dir):
            print("self-test FAILED: the budget passed 3% overhead")
            return 1
        print("  budget tripped as expected")

        print("--- self-test: a truncated bench JSON must exit "
              f"{EXIT_BAD_INPUT}, not traceback")
        event_path = os.path.join(cur_dir, "BENCH_event.json")
        with open(event_path) as f:
            intact = f.read()
        with open(event_path, "w") as f:
            f.write(intact[: len(intact) // 2])
        try:
            compare(base_dir, cur_dir, THRESHOLD_DEFAULT)
        except SystemExit as e:
            if e.code != EXIT_BAD_INPUT:
                print(f"self-test FAILED: truncated JSON exited {e.code}, "
                      f"expected {EXIT_BAD_INPUT}")
                return 1
            print("  truncated JSON rejected with the distinct exit code")
        else:
            print("self-test FAILED: truncated JSON was not rejected")
            return 1
    print("self-test OK")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", help="directory holding the baseline JSONs")
    parser.add_argument("--current", help="directory holding the fresh JSONs")
    parser.add_argument("--threshold", type=float, default=THRESHOLD_DEFAULT,
                        help="maximum tolerated fractional regression")
    parser.add_argument("--self-test", action="store_true",
                        help="verify the gate trips on a synthetic 2x slowdown")
    parser.add_argument("--summary", metavar="FILE",
                        help="append a markdown perf-profile table to FILE "
                             "(e.g. $GITHUB_STEP_SUMMARY)")
    args = parser.parse_args()

    if args.self_test:
        sys.exit(self_test())
    if not args.baseline or not args.current:
        parser.error("--baseline and --current are required (or --self-test)")
    if not os.path.isdir(args.baseline):
        if args.summary:
            write_summary(None, args.current, args.summary)
        # The absolute budgets have no baseline to wait for.
        failures = check_overhead(args.current)
        failures += check_network_speedup(args.current)
        if failures:
            print("\nFAIL:")
            for f in failures:
                print(f"  {f}")
            sys.exit(1)
        print(f"no baseline directory at {args.baseline}: first run, passing")
        sys.exit(0)

    failures = compare(args.baseline, args.current, args.threshold)
    failures += check_overhead(args.current)
    failures += check_network_speedup(args.current)
    if args.summary:
        write_summary(args.baseline, args.current, args.summary)
    if failures:
        print("\nFAIL: throughput regressions beyond "
              f"{args.threshold:.0%} of baseline (or absolute budgets):")
        for f in failures:
            print(f"  {f}")
        sys.exit(1)
    print("\nbench gate passed")


if __name__ == "__main__":
    main()
