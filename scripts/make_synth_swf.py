#!/usr/bin/env python3
"""Deterministic synthetic SWF trace generator for the nightly replay.

Emits a Standard Workload Format file (Feitelson archive layout: ';' header
comments, then 18 whitespace-separated fields per record) that parse_swf()
accepts, sized for multi-million-job replays where shipping a real archive
in the repo would be absurd. The marginals are shaped like the paper's SDSC
Paragon stream: exponential interarrivals, lognormal runtimes, and a
power-of-two-heavy size distribution.

Everything derives from --seed via Python's Mersenne Twister, so the same
invocation always writes byte-identical output — the replay's
serial-vs-threaded determinism check depends on that.

Usage:
  make_synth_swf.py --jobs 1200000 --out nightly.swf [--seed 7]
      [--max-procs 256] [--mean-interarrival 8.0] [--runtime-median 40.0]
"""

from __future__ import annotations

import argparse
import math
import random


def parse_args() -> argparse.Namespace:
    p = argparse.ArgumentParser(description=__doc__)
    p.add_argument("--jobs", type=int, required=True, help="number of records")
    p.add_argument("--out", required=True, help="output .swf path")
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--max-procs", type=int, default=256,
                   help="largest job size emitted")
    p.add_argument("--mean-interarrival", type=float, default=8.0,
                   help="mean seconds between submits")
    p.add_argument("--runtime-median", type=float, default=40.0,
                   help="median recorded runtime, seconds")
    return p.parse_args()


def sample_size(rng: random.Random, max_procs: int) -> int:
    """Power-of-two-heavy job sizes, like the Paragon characterisation."""
    max_exp = int(math.log2(max_procs))
    if rng.random() < 0.7:
        # Small powers of two dominate real traces: weight 2^k by 1/(k+1).
        weights = [1.0 / (k + 1) for k in range(max_exp + 1)]
        (k,) = rng.choices(range(max_exp + 1), weights=weights)
        return 1 << k
    return rng.randint(1, max_procs)


def main() -> None:
    args = parse_args()
    rng = random.Random(args.seed)
    sigma = 1.1  # lognormal spread; keeps a realistic long runtime tail
    mu = math.log(args.runtime_median)
    runtime_cap = args.runtime_median * 50

    with open(args.out, "w", encoding="ascii", newline="\n") as out:
        out.write("; synthetic SWF trace (scripts/make_synth_swf.py)\n")
        out.write(f"; jobs={args.jobs} seed={args.seed} "
                  f"max_procs={args.max_procs} "
                  f"mean_interarrival={args.mean_interarrival} "
                  f"runtime_median={args.runtime_median}\n")
        out.write("; MaxProcs: %d\n" % args.max_procs)
        submit = 0.0
        for job in range(1, args.jobs + 1):
            submit += rng.expovariate(1.0 / args.mean_interarrival)
            runtime = min(rng.lognormvariate(mu, sigma), runtime_cap)
            procs = sample_size(rng, args.max_procs)
            # 18 SWF fields; the simulator reads submit (2), run (4),
            # used procs (5) and requested procs (8). Unknowns are -1.
            out.write(
                f"{job} {submit:.0f} -1 {runtime:.2f} {procs} -1 -1 "
                f"{procs} -1 -1 1 -1 -1 -1 -1 -1 -1 -1\n"
            )


if __name__ == "__main__":
    main()
